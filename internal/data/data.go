// Package data synthesizes deterministic 64-byte cache-line values with
// controllable compressibility. Every workload in the catalog carries a
// Profile tuned so that the fraction of lines compressing to <=32B, <=36B
// and pairs to <=68B under FPC+BDI matches the per-benchmark
// compressibility the paper reports in Figure 4. Values are pure
// functions of (seed, line address), so the simulated memory system never
// has to store data: any component can re-derive a line's bytes on
// demand, and compressed sizes are stable for the lifetime of a run.
//
// Compressibility is correlated within pages (a Profile's PageCoherence),
// which is the structure both DICE's insertion policy and the CIP
// predictor exploit (Section 5.2: lines within a page compress to similar
// sizes).
package data

import (
	"encoding/binary"
	"fmt"
)

// LineSize is the cache-line size in bytes.
const LineSize = 64

// Kind is a family of line values with a characteristic compressed size.
type Kind uint8

// Line value families.
const (
	// KindZero: all-zero line; ZCA compresses to 0B.
	KindZero Kind = iota
	// KindRep: one repeated 8-byte value; BDI-rep, 8B.
	KindRep
	// KindPtr64: 8-byte pointers near a per-page base; BDI b8d2, 24B.
	KindPtr64
	// KindPtr32: 4-byte offsets near a per-page base; BDI b4d2, 36B.
	KindPtr32
	// KindSmallInt: small signed 32-bit integers; FPC, ~14-22B.
	KindSmallInt
	// KindHalfword: 16-bit-ranged values; FPC 16-bit patterns, ~38B.
	KindHalfword
	// KindFloat: doubles with a common exponent but noisy mantissas;
	// effectively incompressible (64B) like lbm's stencil data.
	KindFloat
	// KindRandom: uniform random bytes; incompressible (64B).
	KindRandom
	// KindCount is the number of kinds.
	KindCount
)

// String names the kind.
func (k Kind) String() string {
	names := [...]string{"zero", "rep", "ptr64", "ptr32", "smallint", "halfword", "float", "random"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Profile is a distribution over kinds plus the probability that a line
// follows its page's kind rather than drawing independently.
type Profile struct {
	Weights       [KindCount]float64
	PageCoherence float64 // 0..1; 0.95 typical
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	sum := 0.0
	for _, w := range p.Weights {
		if w < 0 {
			return fmt.Errorf("data: negative weight")
		}
		sum += w
	}
	if sum == 0 {
		return fmt.Errorf("data: all weights zero")
	}
	if p.PageCoherence < 0 || p.PageCoherence > 1 {
		return fmt.Errorf("data: PageCoherence %v out of [0,1]", p.PageCoherence)
	}
	return nil
}

// Uniform returns a profile with the given kinds equally weighted.
func Uniform(kinds ...Kind) Profile {
	var p Profile
	for _, k := range kinds {
		p.Weights[k] = 1
	}
	p.PageCoherence = 0.95
	return p
}

// Incompressible is the profile of noise-like workloads (lbm, libq).
func Incompressible() Profile {
	var p Profile
	p.Weights[KindRandom] = 0.7
	p.Weights[KindFloat] = 0.3
	p.PageCoherence = 0.97
	return p
}

// HighlyCompressible is the profile of integer/pointer workloads (mcf).
func HighlyCompressible() Profile {
	var p Profile
	p.Weights[KindZero] = 0.15
	p.Weights[KindRep] = 0.1
	p.Weights[KindSmallInt] = 0.25
	p.Weights[KindPtr32] = 0.3
	p.Weights[KindPtr64] = 0.15
	p.Weights[KindRandom] = 0.05
	p.PageCoherence = 0.95
	return p
}

// Synth deterministically generates line values for one address space.
type Synth struct {
	seed    uint64
	profile Profile
	cum     [KindCount]float64 // cumulative weights, normalized
}

// NewSynth builds a synthesizer. It panics on an invalid profile
// (profiles are static catalog entries).
func NewSynth(seed uint64, p Profile) *Synth {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	s := &Synth{seed: seed, profile: p}
	sum := 0.0
	for _, w := range p.Weights {
		sum += w
	}
	acc := 0.0
	for i, w := range p.Weights {
		acc += w / sum
		s.cum[i] = acc
	}
	return s
}

// splitmix64 is the standard 64-bit mixing function; it drives all
// deterministic pseudo-randomness in this package.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

func (s *Synth) pickKind(h uint64) Kind {
	u := unitFloat(h)
	for k := Kind(0); k < KindCount; k++ {
		if u < s.cum[k] {
			return k
		}
	}
	return KindRandom
}

// KindOf returns the kind assigned to a line: its page's kind with
// probability PageCoherence, otherwise an independent draw.
func (s *Synth) KindOf(line uint64) Kind {
	page := line >> 6 // 4KB pages, 64 lines
	pageKind := s.pickKind(splitmix64(s.seed ^ page*0xA24BAED4963EE407))
	coin := unitFloat(splitmix64(s.seed ^ line*0x9FB21C651E98DF25 ^ 0x5851F42D4C957F2D))
	if coin < s.profile.PageCoherence {
		return pageKind
	}
	return s.pickKind(splitmix64(s.seed ^ line*0xD6E8FEB86659FD93))
}

// Line materializes the 64 bytes of a line.
func (s *Synth) Line(line uint64) []byte {
	buf := make([]byte, LineSize)
	s.FillLine(line, buf)
	return buf
}

// FillLine writes the line's bytes into buf (len 64), avoiding allocation
// in hot loops.
func (s *Synth) FillLine(line uint64, buf []byte) {
	if len(buf) != LineSize {
		panic("data: FillLine needs a 64-byte buffer")
	}
	kind := s.KindOf(line)
	page := line >> 6
	h := splitmix64(s.seed ^ line*0x2545F4914F6CDD1D)
	pageH := splitmix64(s.seed ^ page*0x9E3779B97F4A7C15)

	switch kind {
	case KindZero:
		clear(buf)
	case KindRep:
		v := pageH &^ 0xFF // page-stable repeated value
		for i := 0; i < LineSize; i += 8 {
			binary.LittleEndian.PutUint64(buf[i:], v)
		}
	case KindPtr64:
		// Pointers into a per-page region: common high bits, 16-bit
		// spread. Adjacent lines share the page base, so pair
		// base-sharing applies.
		base := pageH &^ 0xFFFFFF
		for i := 0; i < 8; i++ {
			d := splitmix64(h + uint64(i))
			binary.LittleEndian.PutUint64(buf[i*8:], base+d%30000)
		}
	case KindPtr32:
		base := uint32(pageH) &^ 0xFFFF
		if base == 0 {
			base = 0x40000000
		}
		for i := 0; i < 16; i++ {
			d := splitmix64(h + uint64(i))
			binary.LittleEndian.PutUint32(buf[i*4:], base+uint32(d%28000))
		}
	case KindSmallInt:
		// Values within the 8-bit sign-extended FPC pattern: 22B lines.
		for i := 0; i < 16; i++ {
			d := splitmix64(h + uint64(i))
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(d%120))
		}
	case KindHalfword:
		for i := 0; i < 16; i++ {
			d := splitmix64(h + uint64(i))
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(d%30000))
		}
	case KindFloat:
		// Same exponent byte pattern, noisy mantissa: defeats FPC and
		// BDI alike, like dense FP simulation data.
		for i := 0; i < 8; i++ {
			d := splitmix64(h + uint64(i))
			v := 0x3FF0000000000000 | d&0x000FFFFFFFFFFFFF
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
	default: // KindRandom
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], splitmix64(h+uint64(i)))
		}
	}
}
