package data

import (
	"bytes"
	"testing"
	"testing/quick"

	"dice/internal/compress"
)

func TestProfileValidate(t *testing.T) {
	if err := HighlyCompressible().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Incompressible().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{},
		{Weights: [KindCount]float64{KindZero: -1, KindRep: 2}, PageCoherence: 0.5},
		func() Profile { p := Uniform(KindZero); p.PageCoherence = 1.5; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad profile %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewSynth(7, HighlyCompressible())
	b := NewSynth(7, HighlyCompressible())
	for line := uint64(0); line < 500; line++ {
		if !bytes.Equal(a.Line(line), b.Line(line)) {
			t.Fatalf("line %d not deterministic", line)
		}
	}
	c := NewSynth(8, HighlyCompressible())
	same := 0
	for line := uint64(0); line < 500; line++ {
		if bytes.Equal(a.Line(line), c.Line(line)) {
			same++
		}
	}
	// Different seeds share only the all-zero lines.
	if same > 200 {
		t.Fatalf("different seeds produced %d/500 identical lines", same)
	}
}

func TestKindSizes(t *testing.T) {
	// Each kind must land in its characteristic compressed-size band.
	bands := map[Kind][2]int{
		KindZero:     {0, 0},
		KindRep:      {8, 8},
		KindPtr64:    {16, 24},
		KindPtr32:    {20, 36},
		KindSmallInt: {6, 28},
		KindHalfword: {24, 40},
		KindFloat:    {64, 64},
		KindRandom:   {64, 64},
	}
	for kind, band := range bands {
		p := Uniform(kind)
		s := NewSynth(11, p)
		for line := uint64(0); line < 200; line++ {
			sz := compress.CompressedSize(s.Line(line))
			if sz < band[0] || sz > band[1] {
				t.Fatalf("kind %v line %d size %d outside [%d,%d]",
					kind, line, sz, band[0], band[1])
			}
		}
	}
}

func TestPtr32PairsShareBase(t *testing.T) {
	s := NewSynth(13, Uniform(KindPtr32))
	shared := 0
	for line := uint64(0); line < 400; line += 2 {
		ps := compress.PairSize(s.Line(line), s.Line(line+1))
		if ps <= 68 {
			shared++
		}
	}
	if shared < 150 {
		t.Fatalf("only %d/200 ptr32 pairs fit 68B; base sharing broken", shared)
	}
}

func TestPageCoherence(t *testing.T) {
	p := HighlyCompressible()
	p.PageCoherence = 1.0
	s := NewSynth(17, p)
	// With full coherence, every line in a page has the page's kind.
	for page := uint64(0); page < 50; page++ {
		k0 := s.KindOf(page * 64)
		for off := uint64(1); off < 64; off++ {
			if s.KindOf(page*64+off) != k0 {
				t.Fatalf("page %d line %d broke full coherence", page, off)
			}
		}
	}
	// With zero coherence, pages mix kinds.
	p.PageCoherence = 0
	s0 := NewSynth(17, p)
	mixed := 0
	for page := uint64(0); page < 50; page++ {
		k0 := s0.KindOf(page * 64)
		for off := uint64(1); off < 64; off++ {
			if s0.KindOf(page*64+off) != k0 {
				mixed++
				break
			}
		}
	}
	if mixed < 40 {
		t.Fatalf("only %d/50 pages mixed with zero coherence", mixed)
	}
}

func TestProfileCompressibilityOrdering(t *testing.T) {
	frac36 := func(p Profile) float64 {
		s := NewSynth(23, p)
		n := 0
		for line := uint64(0); line < 2000; line++ {
			if compress.CompressedSize(s.Line(line)) <= 36 {
				n++
			}
		}
		return float64(n) / 2000
	}
	hi := frac36(HighlyCompressible())
	lo := frac36(Incompressible())
	if hi < 0.6 {
		t.Fatalf("HighlyCompressible frac<=36 = %v, want > 0.6", hi)
	}
	if lo > 0.1 {
		t.Fatalf("Incompressible frac<=36 = %v, want < 0.1", lo)
	}
}

func TestWeightsDistributionRoughlyHonored(t *testing.T) {
	var p Profile
	p.Weights[KindZero] = 0.5
	p.Weights[KindRandom] = 0.5
	p.PageCoherence = 0 // independent draws
	s := NewSynth(29, p)
	zero := 0
	const n = 4000
	for line := uint64(0); line < n; line++ {
		if s.KindOf(line) == KindZero {
			zero++
		}
	}
	if zero < n*4/10 || zero > n*6/10 {
		t.Fatalf("zero kind frequency %d/%d far from 50%%", zero, n)
	}
}

func TestFillLineMatchesLine(t *testing.T) {
	s := NewSynth(31, HighlyCompressible())
	buf := make([]byte, LineSize)
	for line := uint64(0); line < 300; line++ {
		s.FillLine(line, buf)
		if !bytes.Equal(buf, s.Line(line)) {
			t.Fatalf("FillLine mismatch at %d", line)
		}
	}
}

func TestFillLineBadBufferPanics(t *testing.T) {
	s := NewSynth(1, Uniform(KindZero))
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer accepted")
		}
	}()
	s.FillLine(0, make([]byte, 8))
}

func TestKindString(t *testing.T) {
	if KindZero.String() != "zero" || KindRandom.String() != "random" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind name wrong")
	}
}

// Property: lines are always 64 bytes, deterministic, and compressed
// sizes are within [0, 64].
func TestQuickLineInvariants(t *testing.T) {
	s := NewSynth(37, HighlyCompressible())
	f := func(line uint64) bool {
		l := s.Line(line)
		if len(l) != LineSize || !bytes.Equal(l, s.Line(line)) {
			return false
		}
		sz := compress.CompressedSize(l)
		return sz >= 0 && sz <= LineSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFillLine(b *testing.B) {
	s := NewSynth(41, HighlyCompressible())
	buf := make([]byte, LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FillLine(uint64(i), buf)
	}
}
