package dcache

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dice/internal/compress"
	"dice/internal/dram"
)

// testData is a DataSource with programmable per-line compressibility.
type testData struct {
	// sizes maps line -> one of: "zero", "small" (~36B b4d2), "random".
	kind map[uint64]string
	rng  *rand.Rand
}

func newTestData() *testData {
	return &testData{kind: make(map[uint64]string), rng: rand.New(rand.NewPCG(42, 43))}
}

func (d *testData) set(line uint64, kind string) { d.kind[line] = kind }

func (d *testData) setRange(lo, hi uint64, kind string) {
	for l := lo; l < hi; l++ {
		d.kind[l] = kind
	}
}

func (d *testData) Line(line uint64) []byte {
	buf := make([]byte, compress.LineSize)
	switch d.kind[line] {
	case "zero", "":
		// all zeros
	case "small":
		// 4-byte values near a big base: BDI b4d2 -> 36B.
		base := uint32(0x40000000) + uint32(line&0xFF)<<12
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], base+uint32(i*97%4000))
		}
	case "random":
		rng := rand.New(rand.NewPCG(line, 0xDEAD))
		for i := range buf {
			buf[i] = byte(rng.Uint32())
		}
	default:
		panic("unknown kind")
	}
	return buf
}

func newCache(policy Policy, sets int, data DataSource) *Cache {
	return New(Config{
		Sets:   sets,
		Policy: policy,
		Mem:    dram.New(dram.HBMConfig()),
		Data:   data,
	})
}

func TestConfigValidation(t *testing.T) {
	mem := dram.New(dram.HBMConfig())
	bad := []Config{
		{},
		{Sets: 3, Mem: mem},                      // odd
		{Sets: 16},                               // nil mem
		{Sets: 16, Mem: mem, Policy: PolicyDICE}, // nil data for compressed
		{Sets: 16, Mem: mem, Threshold: 100},     // threshold too big
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
	// Baseline needs no data source.
	New(Config{Sets: 16, Mem: mem, Policy: PolicyUncompressed})
}

func TestBaselineMissInstallHit(t *testing.T) {
	c := newCache(PolicyUncompressed, 64, nil)
	r := c.Read(0, 100)
	if r.Hit {
		t.Fatal("cold read must miss")
	}
	c.Install(r.Done, 100, false)
	r2 := c.Read(r.Done+1000, 100)
	if !r2.Hit {
		t.Fatal("installed line must hit")
	}
	if r2.HasExtra {
		t.Fatal("baseline never returns extras")
	}
	s := c.Stats()
	if s.Reads != 2 || s.ReadHits != 1 || s.ReadMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBaselineDirectMappedConflict(t *testing.T) {
	c := newCache(PolicyUncompressed, 64, nil)
	c.Install(0, 5, false)
	res := c.Install(0, 5+64, true) // same TSI set
	if len(res.Victims) != 1 || res.Victims[0].Line != 5 {
		t.Fatalf("victims = %+v, want line 5 evicted", res.Victims)
	}
	if c.Contains(5) {
		t.Fatal("conflicting line must be gone")
	}
}

func TestTSICompressionCapacity(t *testing.T) {
	data := newTestData()
	// Lines 0 and 64 map to the same TSI set (sets=64); both compress to
	// 36B: 8B tags + 72B data > 72 -> only if <= 32B each would two fit.
	// Zero lines (0B) certainly fit many.
	data.set(5, "zero")
	data.set(5+64, "zero")
	data.set(5+128, "zero")
	c := newCache(PolicyTSI, 64, data)
	c.Install(0, 5, false)
	c.Install(0, 5+64, false)
	c.Install(0, 5+128, false)
	for _, l := range []uint64{5, 5 + 64, 5 + 128} {
		if !c.Contains(l) {
			t.Fatalf("line %d should be co-resident (zero lines)", l)
		}
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("no evictions expected for three zero lines")
	}
}

func TestTSIIncompressibleActsDirectMapped(t *testing.T) {
	data := newTestData()
	data.set(5, "random")
	data.set(5+64, "random")
	c := newCache(PolicyTSI, 64, data)
	c.Install(0, 5, false)
	c.Install(0, 5+64, false)
	if c.Contains(5) {
		t.Fatal("incompressible conflict should evict the older line")
	}
	if !c.Contains(5 + 64) {
		t.Fatal("newer line must be resident")
	}
}

func TestTSINoExtras(t *testing.T) {
	data := newTestData()
	data.setRange(0, 256, "zero")
	c := newCache(PolicyTSI, 64, data)
	c.Install(0, 64, false)
	c.Install(0, 128, false)
	r := c.Read(10000, 64)
	if !r.Hit || r.HasExtra {
		t.Fatalf("TSI must not deliver spatial extras, got %+v", r)
	}
}

func TestBAIPairCoResidencyAndExtras(t *testing.T) {
	data := newTestData()
	data.setRange(0, 256, "small") // 36B singles, <=68B pairs
	c := newCache(PolicyBAI, 64, data)
	c.Install(0, 10, false)
	c.Install(0, 11, false) // buddy
	if !c.Contains(10) || !c.Contains(11) {
		t.Fatal("compressible buddies must co-reside under BAI")
	}
	r := c.Read(10000, 10)
	if !r.Hit {
		t.Fatal("hit expected")
	}
	if !r.HasExtra || r.Extra != 11 {
		t.Fatalf("extra = (%d, %t), want line 11", r.Extra, r.HasExtra)
	}
}

func TestBAIIncompressibleThrashes(t *testing.T) {
	data := newTestData()
	data.setRange(0, 256, "random")
	c := newCache(PolicyBAI, 64, data)
	c.Install(0, 10, false)
	c.Install(0, 11, false)
	if c.Contains(10) {
		t.Fatal("incompressible buddies must conflict under BAI")
	}
	if !c.Contains(11) {
		t.Fatal("newest line resident")
	}
}

func TestDICEInsertionThreshold(t *testing.T) {
	data := newTestData()
	sets := 64
	// Pick a non-invariant line.
	var line uint64
	for line = 0; Invariant(line, sets); line++ {
	}
	data.set(line, "small") // 36 <= 36 -> BAI
	c := newCache(PolicyDICE, sets, data)
	res := c.Install(0, line, false)
	if !res.UsedBAI || res.Invariant {
		t.Fatalf("36B line should install BAI, got %+v", res)
	}
	if got := Index(BAI, line, sets); c.sets[got].find(line) < 0 {
		t.Fatal("line not at BAI location")
	}

	var line2 uint64
	for line2 = line + 1; Invariant(line2, sets); line2++ {
	}
	data.set(line2, "random") // 64 > 36 -> TSI
	res2 := c.Install(0, line2, false)
	if res2.UsedBAI {
		t.Fatalf("incompressible line should install TSI, got %+v", res2)
	}
	st := c.Stats()
	if st.InstallBAI != 1 || st.InstallTSI != 1 {
		t.Fatalf("install stats = %+v", st)
	}
}

func TestDICEInvariantLinesNeedNoDecision(t *testing.T) {
	data := newTestData()
	sets := 64
	var line uint64
	for line = 0; !Invariant(line, sets); line++ {
	}
	c := newCache(PolicyDICE, sets, data)
	res := c.Install(0, line, false)
	if !res.Invariant {
		t.Fatal("invariant line should be flagged")
	}
	if c.Stats().InstallInvariant != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestDICEMispredictCostsSecondProbe(t *testing.T) {
	data := newTestData()
	sets := 64
	var line uint64
	for line = 0; Invariant(line, sets); line++ {
	}
	data.set(line, "small")
	c := newCache(PolicyDICE, sets, data)
	c.Install(0, line, false) // BAI install, trains CIP -> BAI

	// Force the predictor to TSI for this page, then read: the line is at
	// BAI, so the first (TSI) probe misses and the second finds it.
	c.cip.Train(line, false)
	r := c.Read(100000, line)
	if !r.Hit || !r.SecondProbe && c.Stats().SecondProbes == 0 {
		t.Fatalf("expected hit via second probe, got %+v stats %+v", r, c.Stats())
	}
	if c.Stats().HitInAlternate != 1 {
		t.Fatalf("HitInAlternate = %d", c.Stats().HitInAlternate)
	}
	// CIP must now have learned BAI for the page.
	if !c.cip.Predict(line) {
		t.Fatal("CIP should have been corrected to BAI")
	}
}

func TestDICECorrectPredictionSingleProbe(t *testing.T) {
	data := newTestData()
	sets := 64
	var line uint64
	for line = 0; Invariant(line, sets); line++ {
	}
	data.set(line, "small")
	c := newCache(PolicyDICE, sets, data)
	c.Install(0, line, false)
	before := c.Stats().Probes
	r := c.Read(100000, line)
	if !r.Hit {
		t.Fatal("hit expected")
	}
	if c.Stats().Probes != before+1 {
		t.Fatalf("correct prediction should cost one probe, got %d", c.Stats().Probes-before)
	}
}

func TestDICEMissSingleProbeOnAlloy(t *testing.T) {
	data := newTestData()
	c := newCache(PolicyDICE, 64, data)
	var line uint64
	for line = 0; Invariant(line, 64); line++ {
	}
	r := c.Read(0, line)
	if r.Hit {
		t.Fatal("cold miss expected")
	}
	if c.Stats().Probes != 1 {
		t.Fatalf("Alloy org resolves a miss in one probe, got %d", c.Stats().Probes)
	}
}

func TestKNLMissProbesBothSets(t *testing.T) {
	data := newTestData()
	c := New(Config{
		Sets: 64, Policy: PolicyDICE, Org: OrgKNL,
		Mem: dram.New(dram.HBMConfig()), Data: data,
	})
	var line uint64
	for line = 0; Invariant(line, 64); line++ {
	}
	r := c.Read(0, line)
	if r.Hit {
		t.Fatal("cold miss expected")
	}
	if c.Stats().Probes != 2 {
		t.Fatalf("KNL miss on non-invariant line needs 2 probes, got %d", c.Stats().Probes)
	}
	// Invariant lines still need only one probe.
	var inv uint64
	for inv = 0; !Invariant(inv, 64); inv++ {
	}
	before := c.Stats().Probes
	c.Read(0, inv)
	if c.Stats().Probes != before+1 {
		t.Fatal("invariant KNL miss should cost one probe")
	}
}

func TestSCCProbesFourPerRead(t *testing.T) {
	data := newTestData()
	c := newCache(PolicySCC, 64, data)
	c.Read(0, 100)
	if got := c.Stats().Probes; got != 4 {
		t.Fatalf("SCC read probes = %d, want 4 (3 tag + 1 data)", got)
	}
}

func TestWritebackHitUpdatesInPlace(t *testing.T) {
	data := newTestData()
	data.setRange(0, 256, "small")
	c := newCache(PolicyDICE, 64, data)
	c.Install(0, 20, false)
	res := c.Writeback(1000, 20)
	if len(res.Victims) != 0 {
		t.Fatal("writeback hit should not evict")
	}
	if c.Stats().WritebackHits != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// The line must now be dirty: evicting it yields a dirty victim.
	set := &c.sets[Index(BAI, 20, 64)]
	if i := set.find(20); i < 0 || !set.entries[i].dirty {
		t.Fatal("writeback must mark line dirty")
	}
}

func TestWritebackMissInstallsDirty(t *testing.T) {
	data := newTestData()
	c := newCache(PolicyDICE, 64, data)
	c.Writeback(0, 77)
	if !c.Contains(77) {
		t.Fatal("writeback miss must install")
	}
	if c.Stats().WritebackHits != 0 {
		t.Fatal("should have been a writeback miss")
	}
}

func TestDirtyEvictionReportsVictim(t *testing.T) {
	data := newTestData()
	data.setRange(0, 1024, "random")
	c := newCache(PolicyTSI, 64, data)
	c.Install(0, 5, true)            // dirty
	res := c.Install(0, 5+64, false) // conflicts
	if len(res.Victims) != 1 || !res.Victims[0].Dirty || res.Victims[0].Line != 5 {
		t.Fatalf("victims = %+v", res.Victims)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestSetPackingInvariants(t *testing.T) {
	data := newTestData()
	data.setRange(0, 1<<16, "small")
	c := newCache(PolicyDICE, 256, data)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 20000; i++ {
		line := uint64(rng.UintN(1 << 14))
		if !c.Contains(line) {
			c.Install(0, line, rng.UintN(8) == 0)
		}
	}
	for i := range c.sets {
		s := &c.sets[i]
		if u := s.usage(); u > SetBytes {
			t.Fatalf("set %d usage %d > %d", i, u, SetBytes)
		}
		if n := s.lineCount(); n > MaxLinesPerSet {
			t.Fatalf("set %d holds %d lines", i, n)
		}
		seen := map[uint64]bool{}
		for _, e := range s.entries {
			if seen[e.line] {
				t.Fatalf("duplicate line %d in set %d", e.line, i)
			}
			seen[e.line] = true
		}
	}
}

func TestNoDuplicateAcrossCandidateSets(t *testing.T) {
	data := newTestData()
	data.setRange(0, 1<<16, "small")
	c := newCache(PolicyDICE, 256, data)
	rng := rand.New(rand.NewPCG(5, 6))
	lines := make([]uint64, 0, 4000)
	for i := 0; i < 4000; i++ {
		line := uint64(rng.UintN(1 << 12))
		lines = append(lines, line)
		r := c.Read(0, line)
		if !r.Hit {
			c.Install(r.Done, line, false)
		}
		if i%3 == 0 {
			c.Writeback(0, line)
		}
	}
	for _, line := range lines {
		tsi := Index(TSI, line, 256)
		bai := Index(BAI, line, 256)
		if tsi != bai && c.sets[tsi].find(line) >= 0 && c.sets[bai].find(line) >= 0 {
			t.Fatalf("line %d resident in both candidate sets", line)
		}
	}
}

func TestEffectiveCapacityCompressibleBeatsBaseline(t *testing.T) {
	sets := 256
	zero := newTestData()
	zero.setRange(0, 1<<16, "zero")
	comp := newCache(PolicyBAI, sets, zero)
	rnd := newTestData()
	rnd.setRange(0, 1<<16, "random")
	incomp := newCache(PolicyBAI, sets, rnd)
	for line := uint64(0); line < uint64(8*sets); line++ {
		comp.Install(0, line, false)
		incomp.Install(0, line, false)
	}
	if cc := comp.EffectiveCapacity(); cc < 2 {
		t.Fatalf("zero-line capacity = %v, want >= 2x", cc)
	}
	if ic := incomp.EffectiveCapacity(); ic > 1.01 {
		t.Fatalf("incompressible capacity = %v, want ~1x", ic)
	}
}

func TestCIPAccuracyOnStablePages(t *testing.T) {
	data := newTestData()
	sets := 1 << 10
	// Pages alternate compressible/incompressible; within a page all
	// lines agree, the situation CIP exploits.
	for page := uint64(0); page < 64; page++ {
		kind := "small"
		if page%2 == 1 {
			kind = "random"
		}
		data.setRange(page*64, (page+1)*64, kind)
	}
	c := newCache(PolicyDICE, sets, data)
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 30000; i++ {
		line := uint64(rng.UintN(64 * 64))
		r := c.Read(0, line)
		if !r.Hit {
			c.Install(r.Done, line, false)
		}
	}
	if acc := c.CIP().Accuracy(); acc < 0.85 {
		t.Fatalf("CIP accuracy = %v on page-stable data, want > 0.85", acc)
	}
}

func TestReadTimingChargesDRAM(t *testing.T) {
	data := newTestData()
	c := newCache(PolicyDICE, 64, data)
	r := c.Read(0, 3)
	if r.Done == 0 {
		t.Fatal("read must take time")
	}
	if c.cfg.Mem.Stats().Accesses() == 0 {
		t.Fatal("read must touch the DRAM device")
	}
}

// Property: a freshly installed line is always Contains-visible and a
// subsequent Read hits, regardless of policy or compressibility.
func TestQuickInstallThenHit(t *testing.T) {
	policies := []Policy{PolicyUncompressed, PolicyTSI, PolicyNSI, PolicyBAI, PolicyDICE, PolicySCC}
	data := newTestData()
	rng := rand.New(rand.NewPCG(77, 78))
	kinds := []string{"zero", "small", "random"}
	for l := uint64(0); l < 1<<12; l++ {
		data.set(l, kinds[rng.UintN(3)])
	}
	caches := make([]*Cache, len(policies))
	for i, p := range policies {
		var d DataSource
		if p != PolicyUncompressed {
			d = data
		}
		caches[i] = newCache(p, 128, d)
	}
	f := func(lineRaw uint16) bool {
		line := uint64(lineRaw) % (1 << 12)
		for _, c := range caches {
			r := c.Read(0, line)
			if !r.Hit {
				c.Install(r.Done, line, false)
			}
			if !c.Contains(line) {
				return false
			}
			if r2 := c.Read(0, line); !r2.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		PolicyUncompressed: "base", PolicyTSI: "tsi", PolicyNSI: "nsi",
		PolicyBAI: "bai", PolicyDICE: "dice", PolicySCC: "scc",
		Policy(42): "policy(42)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("Policy(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestCIPTable(t *testing.T) {
	p := NewCIP(512)
	if p.StorageBits() != 512 {
		t.Fatal("storage bits")
	}
	line := uint64(12345)
	if p.Predict(line) {
		t.Fatal("fresh table predicts TSI")
	}
	p.Train(line, true)
	if !p.Predict(line) {
		t.Fatal("trained BAI not predicted")
	}
	p.Resolve(line, true, true)
	p.Resolve(line, true, false)
	if p.Predictions() != 2 || p.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %v over %d", p.Accuracy(), p.Predictions())
	}
	for _, n := range []int{0, 3, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCIP(%d) accepted", n)
				}
			}()
			NewCIP(n)
		}()
	}
}

func TestMAPITraining(t *testing.T) {
	m := NewMAPI(1024)
	line := uint64(999)
	if !m.PredictHit(line) {
		t.Fatal("fresh MAPI predicts hit (avoids useless parallel fetches)")
	}
	for i := 0; i < 6; i++ {
		m.Update(line, m.PredictHit(line), false)
	}
	if m.PredictHit(line) {
		t.Fatal("repeated misses must flip the prediction")
	}
	for i := 0; i < 8; i++ {
		m.Update(line, m.PredictHit(line), true)
	}
	if !m.PredictHit(line) {
		t.Fatal("repeated hits must flip back")
	}
	if m.Accuracy() <= 0 || m.Accuracy() > 1 {
		t.Fatalf("accuracy = %v", m.Accuracy())
	}
}

func TestThresholdDegenerates(t *testing.T) {
	data := newTestData()
	data.setRange(0, 1024, "small") // 36B
	sets := 64
	var line uint64
	for line = 0; Invariant(line, sets); line++ {
	}
	// Threshold -1: never BAI.
	alwaysTSI := New(Config{Sets: sets, Policy: PolicyDICE, Threshold: -1,
		Mem: dram.New(dram.HBMConfig()), Data: data})
	if res := alwaysTSI.Install(0, line, false); res.UsedBAI {
		t.Fatal("threshold -1 must degenerate to TSI")
	}
	// Threshold 64: always BAI (any line fits 64).
	rnd := newTestData()
	rnd.setRange(0, 1024, "random")
	alwaysBAI := New(Config{Sets: sets, Policy: PolicyDICE, Threshold: 64,
		Mem: dram.New(dram.HBMConfig()), Data: rnd})
	if res := alwaysBAI.Install(0, line, false); !res.UsedBAI {
		t.Fatal("threshold 64 must degenerate to BAI")
	}
}

func TestVerifyDataModeRoundTripsOnHits(t *testing.T) {
	data := newTestData()
	rng := rand.New(rand.NewPCG(31, 32))
	kinds := []string{"zero", "small", "random"}
	for l := uint64(0); l < 1<<12; l++ {
		data.set(l, kinds[rng.UintN(3)])
	}
	c := New(Config{
		Sets: 256, Policy: PolicyDICE, VerifyData: true,
		Mem: dram.New(dram.HBMConfig()), Data: data,
	})
	for i := 0; i < 8000; i++ {
		line := uint64(rng.UintN(1 << 10))
		r := c.Read(0, line)
		if !r.Hit {
			c.Install(r.Done, line, false)
		}
	}
	s := c.Stats()
	if s.VerifyChecks == 0 {
		t.Fatal("verify mode performed no checks")
	}
	if s.VerifyFailures != 0 {
		t.Fatalf("%d of %d verification checks failed: codec path broken",
			s.VerifyFailures, s.VerifyChecks)
	}
}

func TestVerifyDataConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VerifyData with custom sizers accepted")
		}
	}()
	New(Config{
		Sets: 16, Policy: PolicyDICE, VerifyData: true,
		Mem: dram.New(dram.HBMConfig()), Data: newTestData(),
		SingleSizer: func([]byte) int { return 64 },
		PairSizer:   func(a, b []byte) int { return 128 },
	})
}

func TestSizerPairValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lone SingleSizer accepted")
		}
	}()
	New(Config{
		Sets: 16, Policy: PolicyDICE,
		Mem: dram.New(dram.HBMConfig()), Data: newTestData(),
		SingleSizer: func([]byte) int { return 64 },
	})
}

func TestWritePredictionAccuracy(t *testing.T) {
	data := newTestData()
	// Page-stable compressibility: the write predictor (compressibility
	// rule) should be nearly perfect, as in the paper's 95%.
	for page := uint64(0); page < 64; page++ {
		kind := "small"
		if page%2 == 1 {
			kind = "random"
		}
		data.setRange(page*64, (page+1)*64, kind)
	}
	c := newCache(PolicyDICE, 1<<10, data)
	rng := rand.New(rand.NewPCG(41, 42))
	for i := 0; i < 20000; i++ {
		line := uint64(rng.UintN(64 * 64))
		if i%3 == 0 {
			c.Writeback(0, line)
			continue
		}
		r := c.Read(0, line)
		if !r.Hit {
			c.Install(r.Done, line, false)
		}
	}
	s := c.Stats()
	if s.WritePredictions == 0 {
		t.Fatal("no write predictions scored")
	}
	if acc := s.WriteAccuracy(); acc < 0.9 {
		t.Fatalf("write prediction accuracy = %.3f, want >= 0.9 (paper: 95%%)", acc)
	}
}

func TestInstallSizeBuckets(t *testing.T) {
	data := newTestData()
	data.set(1, "zero")   // 0B  -> bucket 0
	data.set(3, "small")  // 36B -> bucket 5
	data.set(5, "random") // 64B -> bucket 8
	c := newCache(PolicyDICE, 64, data)
	for _, l := range []uint64{1, 3, 5} {
		c.Install(0, l, false)
	}
	b := c.Stats().InstallSizeBuckets
	if b[0] != 1 || b[5] != 1 || b[8] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	var total uint64
	for _, n := range b {
		total += n
	}
	if total != c.Stats().Installs {
		t.Fatalf("bucket sum %d != installs %d", total, c.Stats().Installs)
	}
}

func BenchmarkDICEReadHit(b *testing.B) {
	data := newTestData()
	data.setRange(0, 1<<16, "small")
	c := newCache(PolicyDICE, 1<<12, data)
	for line := uint64(0); line < 1<<12; line++ {
		c.Install(0, line, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i)*4, uint64(i)%(1<<12))
	}
}

func BenchmarkDICEInstall(b *testing.B) {
	data := newTestData()
	data.setRange(0, 1<<20, "small")
	c := newCache(PolicyDICE, 1<<12, data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Install(uint64(i)*4, uint64(i)%(1<<18), false)
	}
}
