package dcache

import (
	"testing"

	"dice/internal/dram"
	"dice/internal/fault"
)

func newFaultCache(t *testing.T, policy Policy, ber float64, fp fault.Policy) *Cache {
	t.Helper()
	m, err := fault.New(fault.Config{BER: ber, Seed: 7, Policy: fp})
	if err != nil {
		t.Fatal(err)
	}
	// Zero lines compress to ZCA (0B + 4B tag), so compressed sets hold
	// many resident lines and reads actually hit.
	return New(Config{
		Sets:   64,
		Policy: policy,
		Mem:    dram.New(dram.HBMConfig()),
		Data:   newTestData(),
		Faults: m,
	})
}

// hammer installs a working set and re-reads it so would-be hits meet
// injected faults.
func hammer(c *Cache, lines uint64, rounds int) {
	now := uint64(0)
	for l := uint64(0); l < lines; l++ {
		now = c.Install(now, l, l%3 == 0).Done
	}
	for r := 0; r < rounds; r++ {
		for l := uint64(0); l < lines; l++ {
			res := c.Read(now, l)
			now = res.Done
			if !res.Hit {
				now = c.Install(now, l, false).Done
			}
		}
	}
}

func TestFaultDetectedFlushesAndQuarantines(t *testing.T) {
	c := newFaultCache(t, PolicyTSI, 0.01, fault.PolicyECCQuarantine)
	hammer(c, 512, 20)

	st := c.Stats()
	if st.FaultDetectedFrames == 0 {
		t.Fatal("no detected-uncorrectable frames at BER 1e-2")
	}
	if st.FaultRefetches == 0 {
		t.Fatal("no would-be hits converted to refetches")
	}
	if st.FaultFlushedLines == 0 || st.FaultDirtyLoss == 0 {
		t.Fatalf("flush accounting empty: flushed=%d dirtyLoss=%d",
			st.FaultFlushedLines, st.FaultDirtyLoss)
	}
	if st.FaultQuarantined == 0 {
		t.Fatal("no set reached the quarantine threshold")
	}
	if got := c.QuarantineCount(); uint64(got) != st.FaultQuarantined {
		t.Fatalf("QuarantineCount=%d, stat says %d", got, st.FaultQuarantined)
	}
	// Quarantined frames must have degraded to single-line storage.
	for setIdx := range c.quarantined {
		if n := c.sets[setIdx].lineCount(); n > 1 {
			t.Fatalf("quarantined set %d holds %d lines", setIdx, n)
		}
	}
}

func TestFaultECCPolicyNeverQuarantines(t *testing.T) {
	c := newFaultCache(t, PolicyTSI, 0.01, fault.PolicyECC)
	hammer(c, 512, 20)
	if st := c.Stats(); st.FaultQuarantined != 0 || c.QuarantineCount() != 0 {
		t.Fatalf("PolicyECC quarantined sets: stat=%d count=%d",
			st.FaultQuarantined, c.QuarantineCount())
	}
}

func TestFaultChecksumCatchesSilentOnCompressed(t *testing.T) {
	// PolicyNone makes every faulty frame Silent; compressed lines carry
	// a checksum, so silent corruption is caught and refetched.
	c := newFaultCache(t, PolicyTSI, 0.002, fault.PolicyNone)
	hammer(c, 512, 20)
	st := c.Stats()
	if st.FaultChecksumCaught == 0 {
		t.Fatal("no silent corruption caught by the line checksum")
	}
	if st.FaultSilentHits != 0 {
		t.Fatalf("%d silent hits served on a compressed policy", st.FaultSilentHits)
	}
	if st.FaultDetectedFrames != 0 {
		t.Fatalf("PolicyNone detected %d frames", st.FaultDetectedFrames)
	}
}

func TestFaultSilentHitsOnUncompressed(t *testing.T) {
	// Uncompressed lines have no checksum: silent corruption reaches the
	// core as a served hit.
	// One line per set so the direct-mapped baseline hits on re-reads.
	c := newFaultCache(t, PolicyUncompressed, 0.002, fault.PolicyNone)
	hammer(c, 64, 100)
	st := c.Stats()
	if st.FaultSilentHits == 0 {
		t.Fatal("no silent hits on the uncompressed baseline")
	}
	if st.FaultChecksumCaught != 0 {
		t.Fatalf("checksum caught %d faults without a checksum", st.FaultChecksumCaught)
	}
}

func TestFaultInjectsOnDemandReadsOnly(t *testing.T) {
	c := newFaultCache(t, PolicyDICE, 0.01, fault.PolicyECCQuarantine)
	m := c.Config().Faults

	now := uint64(0)
	for l := uint64(0); l < 64; l++ {
		now = c.Install(now, l, false).Done
		now = c.Writeback(now, l).Done
	}
	if got := m.Stats().Frames.Value(); got != 0 {
		t.Fatalf("installs/writebacks drew %d frames from the fault model", got)
	}
	c.Read(now, 0)
	if m.Stats().Frames.Value() == 0 {
		t.Fatal("demand read drew no frame from the fault model")
	}
}

func TestFaultNilModelKeepsCountersZero(t *testing.T) {
	c := newCache(PolicyDICE, 64, newTestData())
	hammer(c, 512, 5)
	st := c.Stats()
	if st.FaultDetectedFrames|st.FaultRefetches|st.FaultFlushedLines|
		st.FaultDirtyLoss|st.FaultChecksumCaught|st.FaultSilentHits|st.FaultQuarantined != 0 {
		t.Fatalf("fault counters moved without a fault model: %+v", st)
	}
}
