package dcache

import (
	"dice/internal/compress"
)

// Set-content model for the flexible tag-and-data format of Figure 5.
//
// Each physical set is one 72-byte Alloy TAD frame. The memory controller
// is free to interpret any byte as tag or data, so a set holds a variable
// number of compressed lines: each tag entry occupies 4 bytes (18-bit tag,
// valid, dirty, BAI, Next-Tag-Valid, Shared-Tag flags and up to 9
// compression-metadata bits), and spatially contiguous lines compressed
// into the same set share one tag entry. Data occupies whatever the
// compression produced; a shared-base BDI pair additionally drops the
// second line's base bytes. Capacity rules exercised by the tests:
//
//	1 uncompressed line:            4 + 64           = 68 <= 72
//	2 singles, separate tags:       8 + s1 + s2     -> s1+s2 <= 64
//	2 adjacent lines, shared tag:   4 + pairSize    -> pair  <= 68
//	up to MaxLinesPerSet entries in total.
const (
	// SetBytes is the physical size of one set frame (a 72B TAD).
	SetBytes = 72
	// TagBytes is the cost of one tag entry in the flexible format.
	TagBytes = 4
	// MaxLinesPerSet caps the logical lines one set may hold (Section 4.3).
	MaxLinesPerSet = 28
	// TransferBytes is the bus transfer per Alloy access: the 72B TAD
	// plus 8B of the neighboring set's tags (Figure 2).
	TransferBytes = 80
	// KNLTransferBytes is the bus transfer in the KNL organization: a
	// 72B TAD carried on ECC lanes over four bursts, with no neighbor
	// tag visibility (Section 6.6).
	KNLTransferBytes = 72
)

// entry is one logical line resident in a set, most recently used first.
type entry struct {
	line  uint64
	dirty bool
	bai   bool // stored at its BAI location (meaningful when not invariant)
	// size is the data bytes this entry currently occupies, after any
	// pair base-sharing discount. Maintained by repack.
	size int
	// singleP1 caches the line's single compressed size + 1 (0 = not yet
	// computed). Sizes are immutable per line, so once set, repack never
	// consults the sizer for this entry's single encoding again.
	singleP1 uint16
	// sharedTag marks the second member of an adjacent pair, which rides
	// on its buddy's tag entry.
	sharedTag bool
	// enc holds the line's stored encoding in verify mode (nil otherwise).
	enc *compress.Encoding
}

// set holds the resident lines of one physical set frame in LRU order
// (index 0 = most recent).
// entryArenaCap is the per-set entry capacity carved from the cache's
// shared arena at construction: four lines covers the typical
// compressed occupancy (two pairs per 72B TAD), so steady-state
// installs never grow the slice.
const entryArenaCap = 4

type set struct {
	entries []entry
}

// find returns the index of line in the set, or -1.
func (s *set) find(line uint64) int {
	for i := range s.entries {
		if s.entries[i].line == line {
			return i
		}
	}
	return -1
}

// touch moves entry i to the MRU position.
func (s *set) touch(i int) {
	if i == 0 {
		return
	}
	e := s.entries[i]
	copy(s.entries[1:i+1], s.entries[:i])
	s.entries[0] = e
}

// remove deletes entry i, preserving order.
func (s *set) remove(i int) entry {
	e := s.entries[i]
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	return e
}

// usage returns the physical bytes the set occupies: one 4B tag per
// non-shared entry plus all data bytes. repack must have run since the
// last mutation.
func (s *set) usage() int {
	u := 0
	for _, e := range s.entries {
		if !e.sharedTag {
			u += TagBytes
		}
		u += e.size
	}
	return u
}

// sizer resolves compressed sizes for lines; implemented by the cache with
// memoization over its data source.
type sizer interface {
	singleSize(line uint64) int
	pairSize(evenLine uint64) int
}

// repack recomputes entry sizes and tag sharing after any membership
// change: buddies present together compress as a shared-tag (and possibly
// shared-base) pair; lone lines revert to their single encoding.
func (s *set) repack(sz sizer) {
	// Reset to single encodings (cached per entry after the first pass).
	for i := range s.entries {
		e := &s.entries[i]
		if e.singleP1 == 0 {
			e.singleP1 = uint16(sz.singleSize(e.line)) + 1
		}
		e.size = int(e.singleP1) - 1
		e.sharedTag = false
	}
	// Apply pair sharing for co-resident buddies. The even member keeps
	// the tag; the odd member shares it and the pair discount lands on it.
	for i := range s.entries {
		e := &s.entries[i]
		if e.line&1 != 0 {
			continue
		}
		j := s.find(Buddy(e.line))
		if j < 0 {
			continue
		}
		pair := sz.pairSize(e.line)
		odd := &s.entries[j]
		odd.sharedTag = true
		// Split the pair size: even keeps its single size; the odd entry
		// absorbs the remainder (which includes any shared-base saving).
		oddSize := pair - e.size
		if oddSize < 0 {
			oddSize = 0
		}
		odd.size = oddSize
	}
}

// lineCount returns the number of resident logical lines.
func (s *set) lineCount() int { return len(s.entries) }

// evictLRU removes and returns the least recently used entry, skipping
// index `keep` when keep >= 0 (used so a just-updated line is never its
// own victim).
func (s *set) evictLRU(keep int) (entry, bool) {
	for i := len(s.entries) - 1; i >= 0; i-- {
		if i == keep {
			continue
		}
		return s.remove(i), true
	}
	return entry{}, false
}

// compressedSizeOf computes the hybrid compressed size of a data line,
// treating a nil line (unknown data) as incompressible. Exposed through
// the cache's sizer so tests can exercise it directly.
func compressedSizeOf(data []byte) int {
	if data == nil {
		return compress.LineSize
	}
	return compress.CompressedSize(data)
}

// pairCompressedSizeOf computes the pair encoding size of two adjacent
// data lines; nil data is incompressible.
func pairCompressedSizeOf(even, odd []byte) int {
	if even == nil || odd == nil {
		return 2 * compress.LineSize
	}
	return compress.PairSize(even, odd)
}
