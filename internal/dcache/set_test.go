package dcache

import (
	"testing"
	"testing/quick"
)

// fixedSizer assigns fixed single/pair sizes for codec-level tests.
type fixedSizer struct {
	single map[uint64]int
	pair   map[uint64]int // keyed by even line
}

func (f fixedSizer) singleSize(line uint64) int {
	if s, ok := f.single[line]; ok {
		return s
	}
	return 64
}

func (f fixedSizer) pairSize(evenLine uint64) int {
	if s, ok := f.pair[evenLine]; ok {
		return s
	}
	return f.singleSize(evenLine) + f.singleSize(evenLine|1)
}

func TestSetCodecSingleUncompressed(t *testing.T) {
	var s set
	sz := fixedSizer{single: map[uint64]int{}}
	s.entries = append(s.entries, entry{line: 10})
	s.repack(sz)
	// 4B tag + 64B data = 68 <= 72.
	if u := s.usage(); u != 68 {
		t.Fatalf("usage = %d, want 68", u)
	}
}

func TestSetCodecTwoSingles32B(t *testing.T) {
	// Fig 4: two <=32B singles with separate tags fit: 8 + 32 + 32 = 72.
	var s set
	sz := fixedSizer{single: map[uint64]int{100: 32, 200: 32}}
	s.entries = append(s.entries, entry{line: 100}, entry{line: 200})
	s.repack(sz)
	if u := s.usage(); u != 72 {
		t.Fatalf("usage = %d, want exactly 72", u)
	}
}

func TestSetCodecSharedTagPair(t *testing.T) {
	// Adjacent pair: one 4B tag + pair bytes. A 68B pair exactly fills
	// the set (Table 4 discussion).
	var s set
	sz := fixedSizer{
		single: map[uint64]int{40: 36, 41: 36},
		pair:   map[uint64]int{40: 68},
	}
	s.entries = append(s.entries, entry{line: 40}, entry{line: 41})
	s.repack(sz)
	if u := s.usage(); u != 72 {
		t.Fatalf("usage = %d, want 72 (4B tag + 68B pair)", u)
	}
	// The odd member must carry the shared-tag mark.
	i := s.find(41)
	if i < 0 || !s.entries[i].sharedTag {
		t.Fatal("odd buddy should share the even buddy's tag")
	}
	if j := s.find(40); j < 0 || s.entries[j].sharedTag {
		t.Fatal("even buddy holds the tag")
	}
}

func TestSetCodecPairSplitRevertsOnEviction(t *testing.T) {
	var s set
	sz := fixedSizer{
		single: map[uint64]int{40: 36, 41: 36},
		pair:   map[uint64]int{40: 60}, // strong base sharing
	}
	s.entries = append(s.entries, entry{line: 40}, entry{line: 41})
	s.repack(sz)
	if u := s.usage(); u != 64 { // 4 + 60
		t.Fatalf("paired usage = %d, want 64", u)
	}
	// Evict the even member: the odd survivor reverts to its single
	// encoding and needs its own tag.
	s.remove(s.find(40))
	s.repack(sz)
	if u := s.usage(); u != 40 { // 4 + 36
		t.Fatalf("survivor usage = %d, want 40", u)
	}
	if s.entries[0].sharedTag {
		t.Fatal("lone line cannot share a tag")
	}
}

func TestSetCodecManyZeroLines(t *testing.T) {
	// Zero lines cost only their tags; pairs share tags, so 28 lines
	// cost 14 tags = 56B <= 72. MaxLinesPerSet caps the count.
	var s set
	sz := fixedSizer{single: map[uint64]int{}, pair: map[uint64]int{}}
	for l := uint64(0); l < MaxLinesPerSet; l++ {
		sz.single[l] = 0
		if l%2 == 0 {
			sz.pair[l] = 0
		}
		s.entries = append(s.entries, entry{line: l})
	}
	s.repack(sz)
	if u := s.usage(); u != MaxLinesPerSet/2*TagBytes {
		t.Fatalf("usage = %d, want %d (14 shared tags)", u, MaxLinesPerSet/2*TagBytes)
	}
	if s.lineCount() != MaxLinesPerSet {
		t.Fatalf("lineCount = %d", s.lineCount())
	}
}

func TestSetLRUOrdering(t *testing.T) {
	var s set
	sz := fixedSizer{single: map[uint64]int{}}
	for l := uint64(1); l <= 4; l++ {
		s.entries = append([]entry{{line: l}}, s.entries...)
	}
	s.repack(sz)
	// MRU order is 4,3,2,1. Touch 2; evict LRU; 1 must go.
	s.touch(s.find(2))
	v, ok := s.evictLRU(-1)
	if !ok || v.line != 1 {
		t.Fatalf("evicted %+v, want line 1", v)
	}
	// keep=0 must protect the MRU entry.
	for s.lineCount() > 1 {
		if _, ok := s.evictLRU(0); !ok {
			break
		}
	}
	if s.lineCount() != 1 || s.entries[0].line != 2 {
		t.Fatalf("survivor = %+v, want line 2 (MRU-protected)", s.entries)
	}
}

func TestSetRemovePreservesOrder(t *testing.T) {
	var s set
	for l := uint64(1); l <= 5; l++ {
		s.entries = append(s.entries, entry{line: l})
	}
	s.remove(2) // line 3
	want := []uint64{1, 2, 4, 5}
	for i, w := range want {
		if s.entries[i].line != w {
			t.Fatalf("order broken at %d: %d", i, s.entries[i].line)
		}
	}
}

// Property: after any sequence of inserts and evictions with arbitrary
// sizes, usage never exceeds SetBytes once over-full sets are drained the
// way the cache drains them.
func TestQuickSetPackingNeverOverflows(t *testing.T) {
	f := func(ops []uint16) bool {
		var s set
		sz := fixedSizer{single: map[uint64]int{}, pair: map[uint64]int{}}
		for _, op := range ops {
			line := uint64(op % 512)
			size := int(op>>9) % 65
			sz.single[line] = size
			if s.find(line) < 0 {
				s.entries = append([]entry{{line: line}}, s.entries...)
			}
			s.repack(sz)
			for s.usage() > SetBytes || s.lineCount() > MaxLinesPerSet {
				if _, ok := s.evictLRU(0); !ok {
					return s.lineCount() == 1
				}
				s.repack(sz)
			}
			if s.usage() > SetBytes && s.lineCount() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSizeOfNil(t *testing.T) {
	if compressedSizeOf(nil) != 64 {
		t.Fatal("nil data must be incompressible")
	}
	if pairCompressedSizeOf(nil, nil) != 128 {
		t.Fatal("nil pair must be incompressible")
	}
	if pairCompressedSizeOf(make([]byte, 64), nil) != 128 {
		t.Fatal("half-nil pair must be incompressible")
	}
}
