package dcache

import "fmt"

// ParsePolicy maps a policy name — the same strings Policy.String
// emits and the CLIs accept ("base", "tsi", "nsi", "bai", "dice",
// "scc") — back to its Policy value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "base":
		return PolicyUncompressed, nil
	case "tsi":
		return PolicyTSI, nil
	case "nsi":
		return PolicyNSI, nil
	case "bai":
		return PolicyBAI, nil
	case "dice":
		return PolicyDICE, nil
	case "scc":
		return PolicySCC, nil
	default:
		return 0, fmt.Errorf("dcache: unknown policy %q (want base, tsi, nsi, bai, dice or scc)", s)
	}
}

// String names the organization.
func (o Org) String() string {
	switch o {
	case OrgAlloy:
		return "alloy"
	case OrgKNL:
		return "knl"
	default:
		return fmt.Sprintf("org(%d)", uint8(o))
	}
}

// ParseOrg maps a tag-organization name ("alloy" or "knl"; "" means
// alloy) back to its Org value.
func ParseOrg(s string) (Org, error) {
	switch s {
	case "", "alloy":
		return OrgAlloy, nil
	case "knl":
		return OrgKNL, nil
	default:
		return 0, fmt.Errorf("dcache: unknown org %q (want alloy or knl)", s)
	}
}
