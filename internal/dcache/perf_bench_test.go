package dcache

import (
	"testing"

	"dice/internal/data"
	"dice/internal/dram"
)

// benchSource adapts a data.Synth to the cache's DataSource, the same
// role the simulator's machine plays.
type benchSource struct {
	s *data.Synth
}

func (b *benchSource) Line(line uint64) []byte { return b.s.Line(line) }

// newBenchCache assembles a DICE cache over a mixed-compressibility
// synthetic data source, mirroring the sim's L4 wiring.
func newBenchCache() *Cache {
	var p data.Profile
	for k := data.Kind(0); k < data.KindCount; k++ {
		p.Weights[k] = 1
	}
	p.PageCoherence = 0.9
	return New(Config{
		Sets:   1 << 13,
		Policy: PolicyDICE,
		Mem:    dram.New(dram.HBMConfig()),
		Data:   &benchSource{s: data.NewSynth(0xD1CE, p)},
	})
}

// benchLine is a deterministic address stream with spatial locality:
// runs of sequential lines interleaved with jumps, over a footprint
// about 4x the cache's line capacity so misses and evictions are
// steady-state.
func benchLine(i int) uint64 {
	h := uint64(i) * 0x9E3779B97F4A7C15
	run := uint64(i) & 7
	return (h>>40)%(1<<15)*8 + run
}

// BenchmarkReadInstall measures the cache's demand path per reference:
// probe, and on a miss the policy decision, compression sizing, install
// and repack (ns/ref, allocs/ref).
func BenchmarkReadInstall(b *testing.B) {
	c := newBenchCache()
	now := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := benchLine(i)
		r := c.Read(now, line)
		if !r.Hit {
			c.Install(r.Done, line, false)
		}
		now += 12
	}
}
