package dcache

// MAPI is the Memory Access Predictor the baseline Alloy Cache is
// equipped with (Qureshi & Loh, MICRO 2012): it predicts whether an L4
// access will hit, so that on a predicted miss the main-memory fetch can
// start in parallel with the cache probe instead of after it. The
// original predictor is instruction-based (MAP-I); our traces carry no
// program counters, so we key the table by page (the MAP-G variant from
// the same paper), which tracks the same hit/miss regionality.
type MAPI struct {
	counters []uint8 // 3-bit saturating, >=4 predicts hit
	mask     uint64

	predictions uint64
	correct     uint64
}

// NewMAPI builds a predictor with n 3-bit counters (n a power of two).
// Counters start at the hit-predicting threshold so an empty predictor
// does not flood main memory with useless parallel fetches.
func NewMAPI(n int) *MAPI {
	if n <= 0 || n&(n-1) != 0 {
		panic("dcache: MAPI entries must be a positive power of two")
	}
	m := &MAPI{counters: make([]uint8, n), mask: uint64(n - 1)}
	for i := range m.counters {
		m.counters[i] = 4
	}
	return m
}

func (m *MAPI) slot(line uint64) uint64 {
	return (pageOf(line) * 0x9E3779B97F4A7C15) >> 33 & m.mask
}

// PredictHit returns true when the access is expected to hit the L4.
func (m *MAPI) PredictHit(line uint64) bool {
	return m.counters[m.slot(line)] >= 4
}

// Update trains the predictor with the actual outcome and scores the
// prediction that was made for this access.
func (m *MAPI) Update(line uint64, predictedHit, actualHit bool) {
	m.predictions++
	if predictedHit == actualHit {
		m.correct++
	}
	s := m.slot(line)
	if actualHit {
		if m.counters[s] < 7 {
			m.counters[s]++
		}
	} else {
		if m.counters[s] > 0 {
			m.counters[s]--
		}
	}
}

// Accuracy returns the fraction of correct predictions.
func (m *MAPI) Accuracy() float64 {
	if m.predictions == 0 {
		return 0
	}
	return float64(m.correct) / float64(m.predictions)
}
