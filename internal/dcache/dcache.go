package dcache

import (
	"fmt"

	"dice/internal/compress"
	"dice/internal/dram"
	"dice/internal/fault"
	"dice/internal/obs"
)

// Policy selects the DRAM-cache design under evaluation.
type Policy uint8

// Cache policies evaluated by the paper.
const (
	// PolicyUncompressed is the baseline Alloy Cache: direct-mapped, one
	// 64B line per 72B TAD, Traditional Set Indexing.
	PolicyUncompressed Policy = iota
	// PolicyTSI compresses within TSI sets: capacity-only benefits
	// (Section 4.4, Figure 7).
	PolicyTSI
	// PolicyNSI uses naive spatial indexing for every line (Section 4.5).
	PolicyNSI
	// PolicyBAI uses bandwidth-aware indexing for every line (Section 4.5).
	PolicyBAI
	// PolicyDICE dynamically picks BAI or TSI per line by compressed size
	// and predicts the index with CIP (Section 5).
	PolicyDICE
	// PolicySCC models a Skewed Compressed Cache on the DRAM substrate:
	// compression with superblock tags, paying three additional tag
	// accesses per request (Section 7.3, Figure 15).
	PolicySCC
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyUncompressed:
		return "base"
	case PolicyTSI:
		return "tsi"
	case PolicyNSI:
		return "nsi"
	case PolicyBAI:
		return "bai"
	case PolicyDICE:
		return "dice"
	case PolicySCC:
		return "scc"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Org selects the physical organization of tags.
type Org uint8

// Organizations.
const (
	// OrgAlloy transfers 80B per access: the 72B TAD plus the neighboring
	// set's tags, so one probe resolves both candidate locations.
	OrgAlloy Org = iota
	// OrgKNL stores tags in ECC lanes (72B over four bursts) with no
	// neighbor-tag visibility: misses on non-invariant lines must probe
	// both candidate sets (Section 6.6).
	OrgKNL
)

// DataSource supplies the 64 data bytes of a line so the cache can
// compress on install. Data is deterministic per line in this simulator;
// returning nil marks a line incompressible.
type DataSource interface {
	Line(line uint64) []byte
}

// Filler is an optional DataSource extension: FillLine writes the line's
// 64 bytes into buf and returns true, or returns false for an unknown
// (incompressible) line. Sources that implement it let the cache size
// lines through reusable scratch buffers instead of allocating a fresh
// slice per Line call — the sizing hot path holds the bytes only for
// the duration of the size computation.
type Filler interface {
	FillLine(line uint64, buf []byte) bool
}

// DefaultThreshold is the DICE insertion threshold (Section 5.2): lines
// compressing to <= 36B install at their BAI location.
const DefaultThreshold = 36

// Config describes a DRAM cache instance.
type Config struct {
	// Sets is the number of physical 72B set frames. Must be a positive
	// even number (a 1GB cache has 16M sets; scaled runs use 2^14..2^17).
	Sets int
	// Policy is the design under evaluation.
	Policy Policy
	// Org is the physical tag organization.
	Org Org
	// Threshold is the DICE BAI-insertion threshold in bytes; 0 selects
	// DefaultThreshold. A threshold of 0 is expressed as -1 (degenerates
	// to always-TSI); 64 degenerates to always-BAI (Section 6.2).
	Threshold int
	// CIPEntries sizes the Last-Time Table; 0 selects DefaultCIPEntries.
	CIPEntries int
	// Mem is the stacked-DRAM device timing model behind the cache.
	Mem *dram.Memory
	// Data resolves line contents for compression. Required for
	// compressed policies.
	Data DataSource
	// SingleSizer and PairSizer override the compressed-size functions
	// (hybrid FPC+BDI by default). Used by the compression-algorithm
	// ablation; both must be set together or neither.
	SingleSizer func(line []byte) int
	PairSizer   func(even, odd []byte) int
	// VerifyData makes the cache store each installed line's actual
	// encoding and, on every hit, decompress it and compare with the data
	// source — exercising the real codec path end to end. Costs memory
	// and time; intended for tests and debugging. Incompatible with
	// custom sizers.
	VerifyData bool
	// Faults, when non-nil, injects bit errors into every demand-read
	// frame transfer and applies the model's ECC policy: detected-
	// uncorrectable errors flush the untrusted frame (would-be hits are
	// refetched from main memory by the caller's normal miss path), and
	// under fault.PolicyECCQuarantine repeatedly faulting sets fall back
	// to uncompressed single-line storage.
	Faults *fault.Model
	// Trace, when non-nil, receives structured observability events
	// (CIP policy flips, fault outcomes, set flushes and quarantines).
	// The tracer is read-only with respect to the cache: enabling it
	// never changes any simulated outcome.
	Trace *obs.Tracer
}

func (c Config) validate() error {
	switch {
	case c.Sets <= 0 || c.Sets%2 != 0:
		return fmt.Errorf("dcache: Sets must be positive and even, got %d", c.Sets)
	case c.Mem == nil:
		return fmt.Errorf("dcache: Mem is required")
	case c.Policy != PolicyUncompressed && c.Data == nil:
		return fmt.Errorf("dcache: compressed policy %v requires a DataSource", c.Policy)
	case c.Threshold > 64:
		return fmt.Errorf("dcache: Threshold %d > 64", c.Threshold)
	case (c.SingleSizer == nil) != (c.PairSizer == nil):
		return fmt.Errorf("dcache: SingleSizer and PairSizer must be set together")
	case c.VerifyData && c.SingleSizer != nil:
		return fmt.Errorf("dcache: VerifyData requires the default hybrid sizers")
	}
	return nil
}

// Stats aggregates cache activity. Hit/miss counters refer to demand
// reads; install counters classify the index decisions (Figure 11).
type Stats struct {
	Reads      uint64
	ReadHits   uint64
	ReadMisses uint64
	// Probes counts DRAM-cache accesses for reads (second probes make
	// Probes > Reads).
	Probes       uint64
	SecondProbes uint64
	// HitInAlternate counts hits found at the unpredicted location.
	HitInAlternate uint64
	// Extras counts adjacent lines delivered for free alongside demand
	// hits (candidates for L3 installation).
	Extras uint64

	Installs          uint64
	InstallInvariant  uint64 // TSI == BAI, no decision needed
	InstallBAI        uint64
	InstallTSI        uint64
	Evictions         uint64
	DirtyEvictions    uint64
	WritebackHits     uint64 // L3 writebacks that found the line resident
	WritebackAccesses uint64 // DRAM accesses performed for writebacks
	WritePredictions  uint64 // scored write-index predictions (Sec 5.3)
	WriteMispredicts  uint64 // writes found at the unpredicted location

	// VerifyChecks/VerifyFailures count data-integrity checks performed
	// in verify mode (Config.VerifyData): every hit decompresses the
	// stored encoding and compares it with the data source.
	VerifyChecks   uint64
	VerifyFailures uint64

	// SizeMemoHits/SizeMemoMisses count lookups of the per-line
	// compressed-size memo table (hits return a previously computed size
	// without touching the data source or the compressors). They are
	// performance observability only: the memo never changes a simulated
	// outcome, since sizes are deterministic per line.
	SizeMemoHits   uint64
	SizeMemoMisses uint64

	// Fault-injection effects (Config.Faults). FaultDetectedFrames counts
	// demand-read transfers whose ECC flagged an uncorrectable error;
	// FaultRefetches counts would-be hits converted to main-memory
	// refetches (by a frame flush or a checksum catch); FaultFlushedLines
	// and FaultDirtyLoss count resident lines invalidated by flushes and
	// the dirty ones among them (unrecoverable data loss); FaultChecksumCaught
	// counts silent corruptions caught by the per-line compression
	// checksum; FaultSilentHits counts corrupt hits served to the core
	// (uncompressed lines carry no checksum); FaultQuarantined counts
	// sets demoted to uncompressed storage.
	FaultDetectedFrames uint64
	FaultRefetches      uint64
	FaultFlushedLines   uint64
	FaultDirtyLoss      uint64
	FaultChecksumCaught uint64
	FaultSilentHits     uint64
	FaultQuarantined    uint64

	// InstallSizeBuckets histograms the compressed sizes of installed
	// lines in 8-byte buckets: [0]=0B, [1]=1-8B, ..., [8]=57-64B.
	InstallSizeBuckets [9]uint64
}

// WriteAccuracy returns the write-index prediction accuracy.
func (s Stats) WriteAccuracy() float64 {
	if s.WritePredictions == 0 {
		return 0
	}
	return float64(s.WritePredictions-s.WriteMispredicts) / float64(s.WritePredictions)
}

// HitRate returns the demand-read hit rate.
func (s Stats) HitRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadHits) / float64(s.Reads)
}

// Cache is one DRAM cache instance.
type Cache struct {
	cfg       Config
	threshold int
	sets      []set
	cip       *CIP
	stats     Stats

	// sizeMemo caches single/pair compressed sizes per line address; data
	// is deterministic per line so the memo never invalidates.
	sizeMemo sizeMemo
	// sizeCache deduplicates hybrid size computations by line *content*
	// (distinct addresses frequently carry identical bytes — every
	// all-zero line, page-coherent kinds). Consulted only on sizeMemo
	// misses with the default sizers.
	sizeCache *compress.SizeCache
	// filler is cfg.Data's scratch-buffer interface when implemented;
	// scratchA/B are the reused line buffers.
	filler   Filler
	scratchA [compress.LineSize]byte
	scratchB [compress.LineSize]byte

	// faultCount tracks detected-uncorrectable faults per set and
	// quarantined marks sets demoted to uncompressed single-line storage
	// (fault.PolicyECCQuarantine). Both maps are membership-only — never
	// iterated — so they cannot perturb determinism.
	faultCount  map[uint64]uint8
	quarantined map[uint64]bool
}

// New builds a DRAM cache. It panics on invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.CIPEntries == 0 {
		cfg.CIPEntries = DefaultCIPEntries
	}
	c := &Cache{
		cfg:       cfg,
		threshold: cfg.Threshold,
		sets:      make([]set, cfg.Sets),
		cip:       NewCIP(cfg.CIPEntries),
	}
	// Seed every set with capacity for the common compressed occupancy
	// from one arena: the first installs into each set then append in
	// place instead of growing a fresh slice per set (visible as
	// growslice churn in simulation profiles). Sets needing more than
	// entryArenaCap lines fall back to ordinary append growth.
	arena := make([]entry, cfg.Sets*entryArenaCap)
	for i := range c.sets {
		base := i * entryArenaCap
		c.sets[i].entries = arena[base : base : base+entryArenaCap]
	}
	if cfg.Policy != PolicyUncompressed && cfg.SingleSizer == nil {
		c.sizeCache = compress.NewSizeCache(0)
	}
	if f, ok := cfg.Data.(Filler); ok {
		c.filler = f
	}
	if cfg.Faults != nil {
		c.faultCount = make(map[uint64]uint8)
		c.quarantined = make(map[uint64]bool)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes statistics (contents and predictor state persist).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// CIP exposes the index predictor (for accuracy reporting).
func (c *Cache) CIP() *CIP { return c.cip }

// transferBytes returns the burst size of one cache access.
func (c *Cache) transferBytes() int {
	if c.cfg.Org == OrgKNL {
		return KNLTransferBytes
	}
	return TransferBytes
}

// frameLoc maps a set index to its DRAM location. Set frames are 72B and
// packed into 2KB rows, so ~28 consecutive sets share a row buffer —
// giving BAI's neighbor-set property its single-row guarantee.
func (c *Cache) frameLoc(setIdx uint64) dram.Loc {
	return c.cfg.Mem.Decode(setIdx * SetBytes)
}

// access charges one DRAM-cache access and returns its completion cycle.
func (c *Cache) access(now uint64, setIdx uint64, write bool) uint64 {
	return c.cfg.Mem.Access(now, c.frameLoc(setIdx), write, c.transferBytes())
}

// probeRead charges one demand-read access of setIdx and runs the frame
// transfer through the fault model. A detected-uncorrectable error means
// nothing in the frame — tags included — can be trusted: the whole set
// is flushed before the caller inspects it (a resident demand line
// becomes a main-memory refetch via the normal miss path), and under the
// quarantine policy repeat offenders are demoted to uncompressed
// storage. Only demand reads inject faults; writebacks and SCC tag
// probes are left clean so the model stays simple and comparable across
// policies (see DESIGN.md).
func (c *Cache) probeRead(now uint64, setIdx, line uint64) (uint64, fault.Outcome) {
	done := c.access(now, setIdx, false)
	c.stats.Probes++
	if c.cfg.Faults == nil {
		return done, fault.Clean
	}
	out := c.cfg.Faults.ReadFrame(c.transferBytes())
	if out == fault.Detected {
		c.stats.FaultDetectedFrames++
		if c.sets[setIdx].find(line) >= 0 {
			c.stats.FaultRefetches++
		}
		c.cfg.Trace.Emitf(done, obs.CompFault, "detected-frame",
			"set %d: uncorrectable ECC error, frame untrusted", setIdx)
		lines, dirty := c.flushSet(setIdx)
		if c.cfg.Trace.Enabled(obs.CompDCache) && lines > 0 {
			c.cfg.Trace.Emitf(done, obs.CompDCache, "flush",
				"set %d: %d lines invalidated (%d dirty, unrecoverable)", setIdx, lines, dirty)
		}
		c.noteFrameFault(done, setIdx)
	}
	return done, out
}

// flushSet discards every resident line of a set after an uncorrectable
// fault. This is where compression amplifies the blast radius: an
// uncompressed frame loses at most one line, a DICE frame up to
// MaxLinesPerSet. Dirty residents are unrecoverable data loss.
func (c *Cache) flushSet(setIdx uint64) (lines, dirty int) {
	s := &c.sets[setIdx]
	for i := range s.entries {
		lines++
		c.stats.FaultFlushedLines++
		if s.entries[i].dirty {
			dirty++
			c.stats.FaultDirtyLoss++
		}
	}
	s.entries = nil
	return lines, dirty
}

// noteFrameFault records a detected-uncorrectable fault against a set
// and quarantines it once it has faulted fault.QuarantineAfter times.
func (c *Cache) noteFrameFault(now uint64, setIdx uint64) {
	if c.cfg.Faults.Policy() != fault.PolicyECCQuarantine || c.quarantined[setIdx] {
		return
	}
	c.faultCount[setIdx]++
	if c.faultCount[setIdx] >= fault.QuarantineAfter {
		c.quarantined[setIdx] = true
		c.stats.FaultQuarantined++
		c.cfg.Trace.Emitf(now, obs.CompDCache, "quarantine",
			"set %d: %d faults, demoted to uncompressed storage", setIdx, c.faultCount[setIdx])
	}
}

// QuarantineCount returns the number of sets currently demoted to
// uncompressed single-line storage.
func (c *Cache) QuarantineCount() int { return len(c.quarantined) }

// cipResolve is CIP.Resolve plus a policy-flip trace event when the
// update changes the page's stored policy. The flip check (one table
// read) runs only with cip tracing enabled.
func (c *Cache) cipResolve(now uint64, line uint64, predictedBAI, actualBAI bool) {
	if c.cfg.Trace.Enabled(obs.CompCIP) && c.cip.Predict(line) != actualBAI {
		c.cfg.Trace.Emitf(now, obs.CompCIP, "flip",
			"page %#x -> %s (line %#x)", line>>6, schemeLabel(actualBAI), line)
	}
	c.cip.Resolve(line, predictedBAI, actualBAI)
}

// cipTrain is CIP.Train plus the same policy-flip trace event.
func (c *Cache) cipTrain(now uint64, line uint64, actualBAI bool) {
	if c.cfg.Trace.Enabled(obs.CompCIP) && c.cip.Predict(line) != actualBAI {
		c.cfg.Trace.Emitf(now, obs.CompCIP, "flip",
			"page %#x -> %s (line %#x, install)", line>>6, schemeLabel(actualBAI), line)
	}
	c.cip.Train(line, actualBAI)
}

// schemeLabel names an index decision for trace output.
func schemeLabel(bai bool) string {
	if bai {
		return "bai"
	}
	return "tsi"
}

// --- compressed-size resolution (memoized) ---

// lineData resolves a line's bytes for sizing, preferring the source's
// scratch-buffer path. The returned slice is only valid until the next
// lineData call with the same buf.
func (c *Cache) lineData(line uint64, buf []byte) []byte {
	if c.filler != nil {
		if c.filler.FillLine(line, buf) {
			return buf
		}
		return nil
	}
	return c.cfg.Data.Line(line)
}

func (c *Cache) singleSize(line uint64) int {
	if c.cfg.Policy == PolicyUncompressed {
		return 64
	}
	cell := c.sizeMemo.cell(line)
	if cell.single != 0 {
		c.stats.SizeMemoHits++
		return int(cell.single) - 1
	}
	c.stats.SizeMemoMisses++
	data := c.lineData(line, c.scratchA[:])
	var sz int
	switch {
	case data == nil:
		sz = 64
	case c.cfg.SingleSizer != nil:
		sz = c.cfg.SingleSizer(data)
	default:
		sz = c.sizeCache.Single(data)
	}
	cell.single = uint8(sz) + 1
	return sz
}

func (c *Cache) pairSize(evenLine uint64) int {
	cell := c.sizeMemo.cell(evenLine)
	if cell.pair != 0 {
		c.stats.SizeMemoHits++
		return (int(cell.pair) - 1) * 2
	}
	c.stats.SizeMemoMisses++
	even := c.lineData(evenLine, c.scratchA[:])
	odd := c.lineData(evenLine|1, c.scratchB[:])
	var sz int
	switch {
	case even == nil || odd == nil:
		sz = 128
	case c.cfg.PairSizer != nil:
		sz = c.cfg.PairSizer(even, odd)
	default:
		sz = c.sizeCache.Pair(even, odd)
	}
	// Pair sizes span 0..128; store /2 rounded up to fit a byte
	// losslessly enough (sizes are even in practice; odd sizes round
	// up by one byte, which only ever under-packs, never over-packs).
	cell.pair = uint8((sz+1)/2) + 1
	return (int(cell.pair) - 1) * 2
}

// SizeCacheStats returns the content-keyed size cache's counters (zero
// when the cache runs uncompressed or with custom sizers).
func (c *Cache) SizeCacheStats() compress.SizeCacheStats {
	if c.sizeCache == nil {
		return compress.SizeCacheStats{}
	}
	return c.sizeCache.Stats()
}

// schemeFor returns the indexing scheme the policy uses for installs of a
// given line, plus whether the line is invariant (TSI set == BAI set).
func (c *Cache) schemeFor(line uint64) (s Scheme, invariant bool) {
	switch c.cfg.Policy {
	case PolicyUncompressed, PolicyTSI, PolicySCC:
		return TSI, true // single location designs
	case PolicyNSI:
		return NSI, true
	case PolicyBAI:
		return BAI, true
	case PolicyDICE:
		if Invariant(line, c.cfg.Sets) {
			return TSI, true
		}
		if c.singleSize(line) <= c.threshold {
			return BAI, false
		}
		return TSI, false
	default:
		panic("dcache: unhandled policy")
	}
}

// setsFor returns the candidate set(s) of a line under the policy: the
// primary (install-time) location plus, for DICE, the alternate.
func (c *Cache) setsFor(line uint64) (tsiSet, baiSet uint64, dual bool) {
	switch c.cfg.Policy {
	case PolicyUncompressed, PolicyTSI, PolicySCC:
		s := Index(TSI, line, c.cfg.Sets)
		return s, s, false
	case PolicyNSI:
		s := Index(NSI, line, c.cfg.Sets)
		return s, s, false
	case PolicyBAI:
		s := Index(BAI, line, c.cfg.Sets)
		return s, s, false
	case PolicyDICE:
		t := Index(TSI, line, c.cfg.Sets)
		b := Index(BAI, line, c.cfg.Sets)
		return t, b, t != b
	default:
		panic("dcache: unhandled policy")
	}
}

// spatialPolicy reports whether this policy co-locates adjacent lines, so
// that a demand hit can deliver the buddy as a useful extra line.
func (c *Cache) spatialPolicy() bool {
	switch c.cfg.Policy {
	case PolicyNSI, PolicyBAI, PolicyDICE:
		return true
	default:
		return false
	}
}

// sccExtraProbes is the additional tag accesses SCC performs per request
// (three tag reads besides the data access, Section 7.3).
const sccExtraProbes = 3

// sccTagBytes is the transfer size of one SCC tag lookup: the superblock
// tag group of a skewed location, not a full TAD.
const sccTagBytes = 16

// sccProbe charges SCC's extra tag lookups at skewed set locations. The
// three lookups are independent skewed hash locations, so they proceed in
// parallel across banks; the request waits for all of them.
func (c *Cache) sccProbe(now uint64, line uint64) uint64 {
	done := now
	for i := 1; i <= sccExtraProbes; i++ {
		skew := Index(TSI, line*0x9E3779B9+uint64(i)*0x85EBCA6B, c.cfg.Sets)
		d := c.cfg.Mem.Access(now, c.frameLoc(skew), false, sccTagBytes)
		if d > done {
			done = d
		}
		c.stats.Probes++
	}
	return done
}

// ReadResult reports one demand read.
type ReadResult struct {
	// Done is the cycle the demand data is available (hit) or the cycle
	// the miss determination completed (miss) — the caller then fetches
	// from main memory.
	Done uint64
	Hit  bool
	// Extra is the adjacent line delivered by the same access (an
	// install candidate for L3), valid when HasExtra is set. A spatial
	// hit delivers at most the buddy, so a scalar avoids allocating a
	// slice on the simulator's per-read path.
	Extra    uint64
	HasExtra bool
	// UsedBAI reports where a hit was found (for CIP studies).
	UsedBAI bool
	// SecondProbe is true when the alternate location had to be accessed.
	SecondProbe bool
}

// Read performs a demand lookup of line at cycle now.
func (c *Cache) Read(now uint64, line uint64) ReadResult {
	c.stats.Reads++
	tsiSet, baiSet, dual := c.setsFor(line)

	if c.cfg.Policy == PolicySCC {
		now = c.sccProbe(now, line)
	}

	if !dual {
		done, out := c.probeRead(now, tsiSet, line)
		return c.finishRead(done, tsiSet, line, false, out)
	}

	// DICE: predict which location to probe first.
	predictBAI := c.cip.Predict(line)
	first, second := tsiSet, baiSet
	if predictBAI {
		first, second = baiSet, tsiSet
	}
	done, out := c.probeRead(now, first, line)

	if i := c.sets[first].find(line); i >= 0 {
		c.cipResolve(done, line, predictBAI, c.sets[first].entries[i].bai)
		return c.finishRead(done, first, line, predictBAI, out)
	}

	// Not in the predicted set. Whether we must touch the second set
	// depends on the organization:
	//   Alloy: the 80B transfer exposed the alternate set's tags, so we
	//   know residency; a second access happens only to fetch data.
	//   KNL: no neighbor tags; the alternate must be probed to decide.
	inAlternate := c.sets[second].find(line) >= 0
	if inAlternate {
		var out2 fault.Outcome
		done, out2 = c.probeRead(done, second, line)
		c.stats.SecondProbes++
		res := c.finishRead(done, second, line, !predictBAI, out2)
		if res.Hit {
			c.stats.HitInAlternate++
			c.cipResolve(done, line, predictBAI, !predictBAI)
		} else {
			// A fault destroyed the alternate copy mid-lookup; train CIP
			// toward where the imminent refill will go.
			c.cipResolve(done, line, predictBAI, c.predictInstallBAI(line))
		}
		return res
	}
	if c.cfg.Org == OrgKNL {
		// Must verify the alternate before declaring a miss. Same row as
		// the first probe, so the device model prices it as a row hit;
		// the controller merges adjacent probes when it can.
		done, _ = c.probeRead(done, second, line)
		c.stats.SecondProbes++
	}
	c.cipResolve(done, line, predictBAI, c.predictInstallBAI(line))
	c.stats.ReadMisses++
	return ReadResult{Done: done, Hit: false}
}

// predictInstallBAI returns the index policy an install of this line
// would pick right now — used to train CIP on misses so the table
// reflects the location the imminent fill will use.
func (c *Cache) predictInstallBAI(line uint64) bool {
	if c.cfg.Policy != PolicyDICE || Invariant(line, c.cfg.Sets) {
		return false
	}
	return c.singleSize(line) <= c.threshold
}

// finishRead completes a hit/miss determination against a probed set,
// applying the probe's fault outcome to a would-be hit.
func (c *Cache) finishRead(done uint64, setIdx uint64, line uint64, usedBAI bool, out fault.Outcome) ReadResult {
	s := &c.sets[setIdx]
	i := s.find(line)
	if i < 0 {
		c.stats.ReadMisses++
		return ReadResult{Done: done, Hit: false}
	}
	if out == fault.Silent {
		if c.cfg.Policy == PolicyUncompressed || c.quarantined[setIdx] {
			// Raw lines carry no checksum: the corruption reaches the core
			// undetected (silent data corruption).
			c.stats.FaultSilentHits++
			c.cfg.Trace.Emitf(done, obs.CompFault, "silent-hit",
				"set %d line %#x: corrupt raw line served to the core", setIdx, line)
		} else {
			// Compressed lines carry a checksum (compress.LineSum): the
			// decode notices, the untrusted line is dropped, and the caller
			// refetches from main memory via the normal miss path.
			c.stats.FaultChecksumCaught++
			c.stats.FaultRefetches++
			c.cfg.Trace.Emitf(done, obs.CompFault, "checksum-caught",
				"set %d line %#x: corrupt encoding dropped, refetching", setIdx, line)
			e := s.remove(i)
			s.repack(c)
			if e.dirty {
				c.stats.FaultDirtyLoss++
			}
			c.stats.ReadMisses++
			return ReadResult{Done: done, Hit: false}
		}
	}
	s.touch(i)
	c.stats.ReadHits++
	if c.cfg.VerifyData {
		c.verifyEntry(&s.entries[0])
	}
	res := ReadResult{Done: done, Hit: true, UsedBAI: usedBAI}
	if c.spatialPolicy() {
		if j := s.find(Buddy(line)); j >= 0 {
			res.Extra = Buddy(line)
			res.HasExtra = true
			c.stats.Extras++
			s.touch(j)
		}
	}
	return res
}

// verifyEntry decompresses a stored encoding and checks it against the
// data source (verify mode): the full codec path runs on every hit.
func (c *Cache) verifyEntry(e *entry) {
	if e.enc == nil {
		return
	}
	c.stats.VerifyChecks++
	want := c.cfg.Data.Line(e.line)
	got, err := compress.DecompressChecked(*e.enc)
	if err != nil || want == nil || len(got) != len(want) {
		c.stats.VerifyFailures++
		return
	}
	for i := range got {
		if got[i] != want[i] {
			c.stats.VerifyFailures++
			return
		}
	}
}

// Victim is a line displaced from the cache.
type Victim struct {
	Line  uint64
	Dirty bool
}

// InstallResult reports one fill or writeback-install.
type InstallResult struct {
	Done    uint64
	Victims []Victim
	// UsedBAI reports the index decision for non-invariant lines.
	UsedBAI   bool
	Invariant bool
}

// Install fills line after a demand miss. The set was already read by the
// failed probe, so only the TAD write is charged. dirty marks lines
// installed by a write-allocate fill.
func (c *Cache) Install(now uint64, line uint64, dirty bool) InstallResult {
	return c.install(now, line, dirty, false)
}

// Writeback handles a dirty line arriving from L3. If the line is
// resident it is updated in place; otherwise it is installed under the
// current policy. A writeback must first read the target set (the probe
// was not part of a demand read), then write it: two accesses.
func (c *Cache) Writeback(now uint64, line uint64) InstallResult {
	tsiSet, baiSet, dual := c.setsFor(line)

	// Write-index prediction (Section 5.3): the data is in hand, so the
	// predicted index comes from its compressibility — the same rule the
	// insertion policy uses (95% accurate in the paper, since the line
	// usually re-installs where the rule already placed it).
	first, second := tsiSet, baiSet
	predictBAI := dual && c.predictInstallBAI(line)
	if predictBAI {
		first, second = baiSet, tsiSet
	}
	done := c.access(now, first, false)
	c.stats.WritebackAccesses++

	if i := c.sets[first].find(line); i >= 0 {
		if dual {
			c.stats.WritePredictions++
		}
		c.sets[first].entries[i].dirty = true
		c.sets[first].touch(i)
		c.stats.WritebackHits++
		done = c.access(done, first, true)
		c.stats.WritebackAccesses++
		return InstallResult{Done: done}
	}
	if dual {
		// The Alloy transfer exposes the neighbor set's tags; on KNL the
		// alternate must be probed explicitly before concluding.
		inAlternate := c.sets[second].find(line) >= 0
		if inAlternate || c.cfg.Org == OrgKNL {
			done = c.access(done, second, false)
			c.stats.WritebackAccesses++
		}
		if inAlternate {
			c.stats.WritePredictions++
			c.stats.WriteMispredicts++
			i := c.sets[second].find(line)
			c.sets[second].entries[i].dirty = true
			c.sets[second].touch(i)
			c.stats.WritebackHits++
			done = c.access(done, second, true)
			c.stats.WritebackAccesses++
			return InstallResult{Done: done}
		}
	}
	res := c.install(done, line, true, true)
	c.stats.WritebackAccesses++
	return res
}

// install places line into its policy-selected set, evicting residents
// until it fits, then charges the TAD write.
func (c *Cache) install(now uint64, line uint64, dirty bool, fromWriteback bool) InstallResult {
	scheme, invariant := c.schemeFor(line)
	setIdx := Index(scheme, line, c.cfg.Sets)
	usedBAI := scheme == BAI && !invariant

	c.stats.Installs++
	switch {
	case c.cfg.Policy != PolicyDICE:
		// Static policies have no decision to record.
	case invariant:
		c.stats.InstallInvariant++
	case usedBAI:
		c.stats.InstallBAI++
		c.cipTrain(now, line, true)
	default:
		c.stats.InstallTSI++
		c.cipTrain(now, line, false)
	}

	s := &c.sets[setIdx]
	var victims []Victim

	// Duplicate safety: an install always follows a lookup that proved
	// absence, but a policy flip between lookup and install (sizes are
	// stable, so only possible through direct API use) could strand a
	// stale copy at the alternate location. Drop it.
	if c.cfg.Policy == PolicyDICE && !invariant {
		alt := Index(TSI, line, c.cfg.Sets)
		if usedBAI {
			// alt is TSI set already.
		} else {
			alt = Index(BAI, line, c.cfg.Sets)
		}
		if i := c.sets[alt].find(line); i >= 0 {
			e := c.sets[alt].remove(i)
			c.sets[alt].repack(c)
			if e.dirty {
				victims = append(victims, Victim{Line: e.line, Dirty: true})
			}
		}
	}

	// Insert at MRU, then evict LRU entries until the set fits both the
	// byte budget and the line-count cap. The demand line itself (index
	// 0) is never selected as victim; a single line always fits (4+64).
	if i := s.find(line); i >= 0 {
		s.entries[i].dirty = s.entries[i].dirty || dirty
		s.touch(i)
	} else {
		s.entries = append(s.entries, entry{})
		copy(s.entries[1:], s.entries)
		e := entry{line: line, dirty: dirty, bai: usedBAI}
		if c.cfg.VerifyData && c.cfg.Policy != PolicyUncompressed {
			if data := c.cfg.Data.Line(line); data != nil {
				enc := compress.CompressBest(data)
				e.enc = &enc
			}
		}
		s.entries[0] = e
		c.stats.InstallSizeBuckets[(c.singleSize(line)+7)/8]++
	}
	s.repack(c)
	for s.usage() > SetBytes || s.lineCount() > MaxLinesPerSet {
		v, ok := s.evictLRU(0)
		if !ok {
			panic("dcache: single line exceeds set frame")
		}
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyEvictions++
		}
		victims = append(victims, Victim{Line: v.line, Dirty: v.dirty})
		s.repack(c)
	}

	// A quarantined frame falls back to uncompressed storage: one line
	// per set, so the next fault corrupts a single raw line instead of a
	// whole compressed set.
	if len(c.quarantined) > 0 && c.quarantined[setIdx] {
		for s.lineCount() > 1 {
			v, _ := s.evictLRU(0)
			c.stats.Evictions++
			if v.dirty {
				c.stats.DirtyEvictions++
			}
			victims = append(victims, Victim{Line: v.line, Dirty: v.dirty})
			s.repack(c)
		}
	}

	if c.cfg.Policy == PolicySCC && !fromWriteback {
		now = c.sccProbe(now, line)
	}
	done := c.access(now, setIdx, true)
	return InstallResult{Done: done, Victims: victims, UsedBAI: usedBAI, Invariant: invariant}
}

// Contains reports whether line is resident at either candidate location
// (no statistics, no LRU effects).
func (c *Cache) Contains(line uint64) bool {
	tsiSet, baiSet, _ := c.setsFor(line)
	if c.sets[tsiSet].find(line) >= 0 {
		return true
	}
	return tsiSet != baiSet && c.sets[baiSet].find(line) >= 0
}

// OccupiedLines counts resident logical lines; the ratio to Sets is the
// effective capacity multiplier of Table 5 (the uncompressed cache holds
// exactly one line per set when warm).
func (c *Cache) OccupiedLines() int {
	n := 0
	for i := range c.sets {
		n += c.sets[i].lineCount()
	}
	return n
}

// EffectiveCapacity returns occupied lines / sets.
func (c *Cache) EffectiveCapacity() float64 {
	return float64(c.OccupiedLines()) / float64(c.cfg.Sets)
}
