package dcache

import (
	"testing"
	"testing/quick"
)

const testSets = 1 << 10

func TestIndexTSI(t *testing.T) {
	for line := uint64(0); line < 4*testSets; line++ {
		if got := Index(TSI, line, testSets); got != line%testSets {
			t.Fatalf("TSI(%d) = %d", line, got)
		}
	}
}

func TestIndexNSIPairsShareSets(t *testing.T) {
	for line := uint64(0); line < 4*testSets; line += 2 {
		a := Index(NSI, line, testSets)
		b := Index(NSI, line+1, testSets)
		if a != b {
			t.Fatalf("NSI pair (%d,%d) split: %d vs %d", line, line+1, a, b)
		}
	}
}

func TestIndexBAIFigure6(t *testing.T) {
	// Figure 6(c): 8 sets, lines A0-A15.
	want := map[uint64]uint64{
		0: 0, 1: 0, 2: 2, 3: 2, 4: 4, 5: 4, 6: 6, 7: 6,
		8: 1, 9: 1, 10: 3, 11: 3, 12: 5, 13: 5, 14: 7, 15: 7,
	}
	for line, set := range want {
		if got := Index(BAI, line, 8); got != set {
			t.Fatalf("BAI(A%d) = %d, want %d", line, got, set)
		}
	}
}

func TestBAIPairsShareSets(t *testing.T) {
	for line := uint64(0); line < 8*testSets; line += 2 {
		a := Index(BAI, line, testSets)
		b := Index(BAI, line+1, testSets)
		if a != b {
			t.Fatalf("BAI pair (%d,%d) split: %d vs %d", line, line+1, a, b)
		}
	}
}

func TestBAIHalfInvariant(t *testing.T) {
	// Exactly half of all lines must keep their TSI set (Section 4.5).
	n := uint64(16 * testSets)
	invariant := 0
	for line := uint64(0); line < n; line++ {
		if Invariant(line, testSets) {
			invariant++
		}
	}
	if invariant*2 != int(n) {
		t.Fatalf("invariant lines = %d of %d, want exactly half", invariant, n)
	}
}

func TestBAINeighborProperty(t *testing.T) {
	// For non-invariant lines, the BAI set is the TSI set +/- 1, so both
	// candidate locations share a DRAM row.
	for line := uint64(0); line < 16*testSets; line++ {
		tsi := Index(TSI, line, testSets)
		bai := Index(BAI, line, testSets)
		d := int64(bai) - int64(tsi)
		if d < -1 || d > 1 {
			t.Fatalf("line %d: BAI %d not a neighbor of TSI %d", line, bai, tsi)
		}
	}
}

func TestBAIInBounds(t *testing.T) {
	f := func(line uint64, setsPow uint8) bool {
		n := 1 << (1 + setsPow%16) // 2..65536 sets
		for _, s := range []Scheme{TSI, NSI, BAI} {
			if Index(s, line, n) >= uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: buddies always share a BAI set and a NSI set, and Buddy is an
// involution.
func TestQuickBuddyProperties(t *testing.T) {
	f := func(line uint64) bool {
		if Buddy(Buddy(line)) != line {
			return false
		}
		return Index(BAI, line, testSets) == Index(BAI, Buddy(line), testSets) &&
			Index(NSI, line, testSets) == Index(NSI, Buddy(line), testSets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: within any window of 2*nsets consecutive lines, BAI uses every
// set exactly twice (no capacity loss from the remapping).
func TestBAIUniformCoverage(t *testing.T) {
	counts := make(map[uint64]int)
	for line := uint64(0); line < 2*testSets; line++ {
		counts[Index(BAI, line, testSets)]++
	}
	if len(counts) != testSets {
		t.Fatalf("BAI used %d distinct sets, want %d", len(counts), testSets)
	}
	for set, n := range counts {
		if n != 2 {
			t.Fatalf("set %d used %d times, want 2", set, n)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if TSI.String() != "TSI" || NSI.String() != "NSI" || BAI.String() != "BAI" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Fatal("unknown scheme name wrong")
	}
}
