package dcache

// Per-line-address compressed-size memoization. Line data is a pure
// function of the address in this simulator, so a size computed once is
// valid for the whole run; the memo's only job is to make the lookup as
// cheap as possible. The previous implementation was a Go map keyed by
// line address — a hash, a bucket probe and a write per repack touch.
// This one is a two-level page table: simulated physical lines are
// allocated densely from zero (first-touch page allocation), so
// line>>lineShift indexes a small slice of 64-cell pages directly.
// Arbitrary sparse addresses (direct API use in tests) fall back to an
// overflow map of single cells.

// sizeCell memoizes one line's sizes, biased by one so the zero value
// means "unset": single holds the line's compressed size + 1, and pair
// (meaningful for even lines only) holds the pair size /2, rounded up,
// + 1.
type sizeCell struct {
	single uint8
	pair   uint8
}

const (
	// memoLineShift: 64 lines (one 4KB page) per memo page.
	memoLineShift = 6
	memoPageLines = 1 << memoLineShift
	// memoMaxDensePages bounds the dense level-one table (256K pages =
	// 16M lines, 2MB of pointers worst case); higher pages overflow to
	// the map.
	memoMaxDensePages = 1 << 18
)

// sizeMemo is the two-level size table. The zero value is ready to use.
type sizeMemo struct {
	pages    []*[memoPageLines]sizeCell
	overflow map[uint64]*sizeCell
}

// cell returns the memo cell for a line, materializing its page on first
// touch. The pointer stays valid for the memo's lifetime.
func (m *sizeMemo) cell(line uint64) *sizeCell {
	page := line >> memoLineShift
	if page < memoMaxDensePages {
		for uint64(len(m.pages)) <= page {
			m.pages = append(m.pages, nil)
		}
		p := m.pages[page]
		if p == nil {
			p = new([memoPageLines]sizeCell)
			m.pages[page] = p
		}
		return &p[line&(memoPageLines-1)]
	}
	if m.overflow == nil {
		m.overflow = make(map[uint64]*sizeCell)
	}
	c := m.overflow[line]
	if c == nil {
		c = new(sizeCell)
		m.overflow[line] = c
	}
	return c
}
