package dcache

// CIP is the Cache Index Predictor of Section 5.3: a Last-Time Table
// (LTT) of single-bit entries indexed by a hash of the page number. Lines
// within a page compress similarly, so the index policy last observed for
// a page predicts the policy of its next access with high accuracy
// (93-94% in the paper across 512-8192 entries). The default 2048-entry
// table costs 256 bytes of SRAM — the bulk of DICE's <1KB overhead.
type CIP struct {
	ltt  []bool // true = BAI
	mask uint64

	predictions uint64
	correct     uint64
	flips       uint64
}

// DefaultCIPEntries is the paper's default LTT size (2048 entries, 256B).
const DefaultCIPEntries = 2048

// NewCIP builds a predictor with n single-bit entries; n must be a power
// of two (the paper sweeps 512..8192).
func NewCIP(n int) *CIP {
	if n <= 0 || n&(n-1) != 0 {
		panic("dcache: CIP entries must be a positive power of two")
	}
	return &CIP{ltt: make([]bool, n), mask: uint64(n - 1)}
}

// pageOf maps a line address to its 4KB page number (64 lines per page).
func pageOf(line uint64) uint64 { return line >> 6 }

// slot hashes a page number into the LTT.
func (p *CIP) slot(page uint64) uint64 {
	// Fibonacci hashing spreads consecutive pages across the table.
	return (page * 0x9E3779B97F4A7C15) >> 32 & p.mask
}

// Predict returns true when the line's next access should probe the BAI
// location first.
func (p *CIP) Predict(line uint64) bool {
	return p.ltt[p.slot(pageOf(line))]
}

// Resolve records the actual index policy observed for a line (on a hit:
// where it was found; on an install: where it was placed) and whether the
// preceding prediction was correct.
func (p *CIP) Resolve(line uint64, predictedBAI, actualBAI bool) {
	p.predictions++
	if predictedBAI == actualBAI {
		p.correct++
	}
	p.set(pageOf(line), actualBAI)
}

// Train updates the table without scoring a prediction (used for install
// decisions that did not consult the predictor).
func (p *CIP) Train(line uint64, actualBAI bool) {
	p.set(pageOf(line), actualBAI)
}

// set stores a page's observed policy, counting entry flips for the
// observability layer (the counter is never read by the simulation).
func (p *CIP) set(page uint64, bai bool) {
	s := p.slot(page)
	if p.ltt[s] != bai {
		p.flips++
		p.ltt[s] = bai
	}
}

// Accuracy returns the fraction of scored predictions that were correct.
func (p *CIP) Accuracy() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.predictions)
}

// Predictions returns the number of scored predictions.
func (p *CIP) Predictions() uint64 { return p.predictions }

// Flips returns how many table updates changed a stored entry — each
// one is a page whose indexing policy flipped between TSI and BAI.
func (p *CIP) Flips() uint64 { return p.flips }

// BAIFraction returns the fraction of LTT entries currently predicting
// BAI: the predictor's aggregate policy bias, the observable analogue
// of a set-dueling PSEL counter.
func (p *CIP) BAIFraction() float64 {
	n := 0
	for _, bai := range p.ltt {
		if bai {
			n++
		}
	}
	return float64(n) / float64(len(p.ltt))
}

// StorageBits returns the predictor's SRAM cost in bits.
func (p *CIP) StorageBits() int { return len(p.ltt) }
