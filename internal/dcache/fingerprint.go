package dcache

// Fingerprint digests the cache's complete architectural state — every
// set's resident lines in LRU order with their flags and sizes, plus
// per-set fault/quarantine state — into one FNV-1a hash. Two caches
// that processed identical access streams have identical fingerprints;
// the differential tests use it to prove the event-driven and
// cycle-stepped simulator cores leave byte-identical cache contents,
// not merely matching counters. Map state is folded in by iterating
// set indices in order, never by map iteration, so the digest is
// deterministic.
func (c *Cache) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mixBool := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	for si := range c.sets {
		s := &c.sets[si]
		mix(uint64(len(s.entries)))
		for i := range s.entries {
			e := &s.entries[i]
			mix(e.line)
			mixBool(e.dirty)
			mixBool(e.bai)
			mix(uint64(e.size))
			mix(uint64(e.singleP1))
			mixBool(e.sharedTag)
		}
	}
	if c.faultCount != nil {
		for si := range c.sets {
			if n := c.faultCount[uint64(si)]; n != 0 {
				mix(uint64(si))
				mix(uint64(n))
			}
			if c.quarantined[uint64(si)] {
				mix(uint64(si))
			}
		}
	}
	return h
}
