// Package dcache implements the paper's DRAM cache family: the baseline
// uncompressed Alloy Cache, compressed caches under Traditional Set
// Indexing (TSI), Naive Spatial Indexing (NSI) and Bandwidth-Aware
// Indexing (BAI), the dynamic DICE design with its Cache Index Predictor
// (CIP), the Knights-Landing-style organization (tags in ECC bits), and a
// Skewed-Compressed-Cache (SCC) comparison point. Timing is charged
// against a dram.Memory device; set contents are modeled with the
// flexible tag-and-data format of Figure 5.
package dcache

import "fmt"

// Scheme selects how a line address maps to a cache set.
type Scheme uint8

// Indexing schemes (Figure 6).
const (
	TSI Scheme = iota // consecutive lines -> consecutive sets
	NSI               // consecutive line pairs -> one set, naive
	BAI               // pairs share a set, half the lines stay at TSI
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case TSI:
		return "TSI"
	case NSI:
		return "NSI"
	case BAI:
		return "BAI"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// Index computes the set for a line address under scheme s in a cache of
// nsets sets. nsets must be even (it is a power of two in practice).
//
// TSI: set = line mod S — consecutive lines land in consecutive sets.
//
// NSI: set = (line/2) mod S — the pair (2i, 2i+1) shares set (i mod S).
// Nearly every line moves relative to TSI (Figure 6b), which is what makes
// switching costly.
//
// BAI: the pair (2i, 2i+1) shares a set, chosen to be the TSI set of one
// of the two members, alternating each time the pair index wraps the
// cache (Figure 6c):
//
//	set = (2i mod S) + ((2i / S) mod 2)
//
// Consequences, proved in the tests: exactly half of all lines keep their
// TSI set ("invariant" lines), and for the other half the BAI set is the
// TSI set ± 1 — the neighboring set, guaranteed to share a DRAM row with
// the TSI location.
func Index(s Scheme, line uint64, nsets int) uint64 {
	n := uint64(nsets)
	switch s {
	case TSI:
		return line % n
	case NSI:
		return (line / 2) % n
	case BAI:
		even := line &^ 1
		return even%n + (even/n)%2
	default:
		panic("dcache: unknown scheme " + s.String())
	}
}

// Invariant reports whether a line has the same set under TSI and BAI, in
// which case no insertion decision or index prediction is needed.
func Invariant(line uint64, nsets int) bool {
	return Index(TSI, line, nsets) == Index(BAI, line, nsets)
}

// Buddy returns the spatially adjacent line that BAI maps into the same
// set: lines 2i and 2i+1 are buddies.
func Buddy(line uint64) uint64 { return line ^ 1 }
