package dcache

import (
	"testing"

	"dice/internal/compress"
	"dice/internal/data"
	"dice/internal/dram"
)

// synthSource adapts data.Synth to DataSource (Line only, no Filler),
// like the simulator's machine before the scratch-buffer path existed.
type synthSource struct{ s *data.Synth }

func (ss *synthSource) Line(line uint64) []byte { return ss.s.Line(line) }

// fillSource additionally implements Filler, exercising the
// scratch-buffer path.
type fillSource struct{ s *data.Synth }

func (fs *fillSource) Line(line uint64) []byte { return fs.s.Line(line) }
func (fs *fillSource) FillLine(line uint64, buf []byte) bool {
	fs.s.FillLine(line, buf)
	return true
}

func memoTestCache(t *testing.T, src DataSource, cfg Config) *Cache {
	t.Helper()
	cfg.Sets = 1 << 8
	cfg.Mem = dram.New(dram.HBMConfig())
	cfg.Data = src
	return New(cfg)
}

// TestSizeMemoMatchesDirect pins the memoized size path to the direct
// compressor result for every line, on both the Line and FillLine data
// paths, across repeated lookups (the second pass must be all hits).
func TestSizeMemoMatchesDirect(t *testing.T) {
	synth := data.NewSynth(0xABCD, data.HighlyCompressible())
	sources := map[string]DataSource{
		"line-alloc":   &synthSource{s: synth},
		"fill-scratch": &fillSource{s: synth},
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			c := memoTestCache(t, src, Config{Policy: PolicyDICE})
			for pass := 0; pass < 2; pass++ {
				for line := uint64(0); line < 512; line++ {
					want := compress.CompressedSize(synth.Line(line))
					if got := c.singleSize(line); got != want {
						t.Fatalf("pass %d line %d: singleSize=%d, direct=%d", pass, line, got, want)
					}
					if line%2 == 0 {
						wantPair := compress.PairSize(synth.Line(line), synth.Line(line|1))
						wantPair = (wantPair + 1) &^ 1 // memo rounds odd pair sizes up to even
						if got := c.pairSize(line); got != wantPair {
							t.Fatalf("pass %d line %d: pairSize=%d, direct=%d", pass, line, got, wantPair)
						}
					}
				}
			}
			st := c.Stats()
			if st.SizeMemoMisses != 512+256 {
				t.Fatalf("SizeMemoMisses=%d, want %d (one per distinct single + pair)", st.SizeMemoMisses, 512+256)
			}
			if st.SizeMemoHits != 512+256 {
				t.Fatalf("SizeMemoHits=%d, want %d (the whole second pass)", st.SizeMemoHits, 512+256)
			}
		})
	}
}

// TestSizeMemoMatchesDirectPerAlgorithm covers the custom-sizer path:
// the memoized sizes under the FPC-only and BDI-only ablation sizers
// must match direct SizeWith/PairSizeWith calls.
func TestSizeMemoMatchesDirectPerAlgorithm(t *testing.T) {
	for _, alg := range []compress.AlgID{compress.AlgFPC, compress.AlgBDI} {
		synth := data.NewSynth(0x600D, data.HighlyCompressible())
		c := memoTestCache(t, &fillSource{s: synth}, Config{
			Policy:      PolicyDICE,
			SingleSizer: func(l []byte) int { return compress.SizeWith(alg, l) },
			PairSizer:   func(a, b []byte) int { return compress.PairSizeWith(alg, a, b) },
		})
		for line := uint64(0); line < 256; line++ {
			if got, want := c.singleSize(line), compress.SizeWith(alg, synth.Line(line)); got != want {
				t.Fatalf("alg %v line %d: singleSize=%d, direct=%d", alg, line, got, want)
			}
			if line%2 == 0 {
				want := (compress.PairSizeWith(alg, synth.Line(line), synth.Line(line|1)) + 1) &^ 1
				if got := c.pairSize(line); got != want {
					t.Fatalf("alg %v line %d: pairSize=%d, direct=%d", alg, line, got, want)
				}
			}
		}
	}
}

// TestSizeMemoSparseAddresses exercises the overflow level of the
// two-level memo table: line addresses far beyond the dense page range
// must memoize correctly too.
func TestSizeMemoSparseAddresses(t *testing.T) {
	synth := data.NewSynth(0xFEED, data.HighlyCompressible())
	c := memoTestCache(t, &fillSource{s: synth}, Config{Policy: PolicyDICE})
	sparse := []uint64{
		memoMaxDensePages << memoLineShift,
		(memoMaxDensePages << memoLineShift) * 7,
		1 << 40, 1<<40 | 1, 1 << 62,
	}
	for pass := 0; pass < 2; pass++ {
		for _, line := range sparse {
			if got, want := c.singleSize(line), compress.CompressedSize(synth.Line(line)); got != want {
				t.Fatalf("pass %d sparse line %#x: singleSize=%d, direct=%d", pass, line, got, want)
			}
		}
	}
	if st := c.Stats(); st.SizeMemoHits != uint64(len(sparse)) {
		t.Fatalf("SizeMemoHits=%d, want %d (overflow cells must memoize)", st.SizeMemoHits, len(sparse))
	}
}

// nilOddSource serves real data for even lines but reports odd lines
// unknown, modelling a pair whose second member falls outside the data
// image at an end-of-set boundary.
type nilOddSource struct{ s *data.Synth }

func (n *nilOddSource) Line(line uint64) []byte {
	if line&1 == 1 {
		return nil
	}
	return n.s.Line(line)
}

// TestPairSizeNilOddBoundary pins the end-of-set boundary behavior: a
// pair whose odd member has no data is incompressible (128B, rounding
// to 2*LineSize), matching pairCompressedSizeOf's nil contract, and the
// even member still sizes alone.
func TestPairSizeNilOddBoundary(t *testing.T) {
	synth := data.NewSynth(0xB00, data.HighlyCompressible())
	c := memoTestCache(t, &nilOddSource{s: synth}, Config{Policy: PolicyDICE})
	for line := uint64(0); line < 64; line += 2 {
		if got := c.pairSize(line); got != 128 {
			t.Fatalf("line %d: pairSize with nil odd member = %d, want 128", line, got)
		}
		if got, want := c.singleSize(line), compress.CompressedSize(synth.Line(line)); got != want {
			t.Fatalf("line %d: even member singleSize=%d, want %d", line, got, want)
		}
		if got := c.singleSize(line | 1); got != 64 {
			t.Fatalf("line %d: nil odd member singleSize=%d, want 64", line|1, got)
		}
	}
}

// TestPairSizeOddRoundsUp pins the memo's storage quirk: odd pair sizes
// (possible only through custom sizers) round up to the next even byte
// count — the memo packs pair sizes /2 into a byte — and the rounded
// value is what every caller observes, first computation included.
func TestPairSizeOddRoundsUp(t *testing.T) {
	synth := data.NewSynth(0x0DD, data.HighlyCompressible())
	c := memoTestCache(t, &fillSource{s: synth}, Config{
		Policy:      PolicyDICE,
		SingleSizer: func([]byte) int { return 33 },
		PairSizer:   func(_, _ []byte) int { return 67 },
	})
	if got := c.pairSize(0); got != 68 {
		t.Fatalf("first pairSize(0)=%d, want 68 (67 rounded up)", got)
	}
	if got := c.pairSize(0); got != 68 {
		t.Fatalf("memoized pairSize(0)=%d, want 68", got)
	}
}

// TestSizeCacheStatsExposed checks the content-keyed cache is active on
// the default hybrid path (hits from duplicate contents across
// addresses) and inert with custom sizers.
func TestSizeCacheStatsExposed(t *testing.T) {
	zeros := data.Uniform(data.KindZero) // every line identical: all zero
	c := memoTestCache(t, &fillSource{s: data.NewSynth(1, zeros)}, Config{Policy: PolicyDICE})
	for line := uint64(0); line < 128; line++ {
		if got := c.singleSize(line); got != 0 {
			t.Fatalf("zero line sized %d", got)
		}
	}
	st := c.SizeCacheStats()
	if st.Misses != 1 || st.Hits != 127 {
		t.Fatalf("content cache stats = %+v, want 1 miss + 127 hits for identical lines", st)
	}

	custom := memoTestCache(t, &fillSource{s: data.NewSynth(1, zeros)}, Config{
		Policy:      PolicyDICE,
		SingleSizer: func(l []byte) int { return compress.SizeWith(compress.AlgFPC, l) },
		PairSizer:   func(a, b []byte) int { return compress.PairSizeWith(compress.AlgFPC, a, b) },
	})
	custom.singleSize(0)
	if st := custom.SizeCacheStats(); st != (compress.SizeCacheStats{}) {
		t.Fatalf("custom-sizer cache should not use the content cache, got %+v", st)
	}
}
