package dcache

import (
	"math/rand/v2"
	"testing"
)

// driveStream replays one deterministic access stream on c.
func driveStream(c *Cache, seed uint64, n int) {
	rng := rand.New(rand.NewPCG(seed, 5))
	now := uint64(0)
	for i := 0; i < n; i++ {
		line := uint64(rng.UintN(256))
		now += uint64(rng.UintN(40))
		if rng.UintN(4) == 0 {
			c.Writeback(now, line)
		} else if r := c.Read(now, line); !r.Hit {
			c.Install(r.Done, line, false)
		}
	}
}

// TestFingerprintEqualStreams: two caches fed the identical stream must
// digest identically — the property the sim differential tests build
// equality of full cache state on.
func TestFingerprintEqualStreams(t *testing.T) {
	for _, pol := range []Policy{PolicyUncompressed, PolicyTSI, PolicyDICE} {
		d := newTestData()
		d.setRange(0, 128, "small")
		d.setRange(128, 256, "random")
		a := newCache(pol, 64, d)
		b := newCache(pol, 64, d)
		driveStream(a, 7, 3000)
		driveStream(b, 7, 3000)
		if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
			t.Fatalf("policy %v: identical streams digest differently: %#x vs %#x", pol, fa, fb)
		}
	}
}

// TestFingerprintSensitive: the digest must move when cache contents
// differ — a diverged stream, and a single extra access.
func TestFingerprintSensitive(t *testing.T) {
	d := newTestData()
	d.setRange(0, 256, "small")
	a := newCache(PolicyDICE, 64, d)
	b := newCache(PolicyDICE, 64, d)
	driveStream(a, 7, 3000)
	driveStream(b, 8, 3000) // different stream
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("diverged streams produced equal fingerprints")
	}

	c1 := newCache(PolicyDICE, 64, d)
	c2 := newCache(PolicyDICE, 64, d)
	driveStream(c1, 7, 3000)
	driveStream(c2, 7, 3000)
	d.set(1000, "small")
	c2.Install(1_000_000, 1000, false) // one extra line installed
	if c1.Fingerprint() == c2.Fingerprint() {
		t.Fatal("extra access did not change the fingerprint")
	}
}

// TestFingerprintIgnoresStats: statistics are observational, not
// architectural — resetting them must not move the digest (the sim
// resets shared-structure stats at the warm boundary, and both cores
// must fingerprint identically across it).
func TestFingerprintIgnoresStats(t *testing.T) {
	d := newTestData()
	d.setRange(0, 256, "small")
	c := newCache(PolicyDICE, 64, d)
	driveStream(c, 7, 2000)
	before := c.Fingerprint()
	c.ResetStats()
	if after := c.Fingerprint(); after != before {
		t.Fatalf("ResetStats moved the fingerprint: %#x -> %#x", before, after)
	}
}
