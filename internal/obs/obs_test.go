package obs

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
)

// fakeSnapshot builds a fully-populated snapshot with value-bearing
// fields derived from i, including awkward floats that must survive a
// lossless round-trip.
func fakeSnapshot(i int) Snapshot {
	f := float64(i)
	return Snapshot{
		Refs:             uint64(1000 + i),
		IPC:              1.0/3.0 + f,
		CoreIPC:          []float64{f + 0.1, f + 0.2, math.Pi * f},
		L4Reads:          uint64(10 * i),
		L4HitRate:        1 / (f + 2),
		L4Queue:          uint64(i),
		L4BusUtil:        0.5 + f/1000,
		L4BytesPerAccess: 96.5,
		DDRReads:         uint64(3 * i),
		DDRWrites:        uint64(i / 2),
		DDRQueue:         uint64(i % 5),
		DDRBusUtil:       f / 7,
		EffCapacity:      1.37,
		InstallBAI:       uint64(i),
		InstallTSI:       uint64(2 * i),
		InstallInvariant: uint64(3 * i),
		CIPBAIFrac:       f / 13,
		CIPPolicyBAI:     uint64(i % 2),
		CIPAccuracy:      0.93,
		CIPPredictions:   uint64(100 * i),
		CIPFlips:         uint64(i),
		FaultCorrected:   uint64(i),
		FaultDetected:    uint64(i + 1),
		FaultSilent:      uint64(i + 2),
		FaultRefetches:   uint64(i + 3),
		QuarantinedSets:  uint64(i % 3),
	}
}

// recordSeries pushes n fake snapshots through a recorder and returns
// its series.
func recordSeries(t *testing.T, epoch uint64, cap, n int) Series {
	t.Helper()
	r := NewRecorder(epoch, cap)
	for i := 0; i < n; i++ {
		r.Record(fakeSnapshot(i))
	}
	return r.Series()
}

// TestExportRoundTrip checks that both export formats reconstruct the
// recorded snapshots exactly — CSV relies on the lossless float
// formatting, JSON on the schema tags.
func TestExportRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		write  func(Series, *bytes.Buffer) error
		read   func(*bytes.Buffer) (Series, error)
		series Series
		// csvOnly marks fields CSV cannot carry (Dropped); JSON must.
		lossy bool
	}{
		{"json-empty", func(s Series, b *bytes.Buffer) error { return s.WriteJSON(b) },
			func(b *bytes.Buffer) (Series, error) { return ReadJSON(b) },
			recordSeries(t, 100, 8, 0), false},
		{"json-small", func(s Series, b *bytes.Buffer) error { return s.WriteJSON(b) },
			func(b *bytes.Buffer) (Series, error) { return ReadJSON(b) },
			recordSeries(t, 100, 8, 5), false},
		{"json-overflowed", func(s Series, b *bytes.Buffer) error { return s.WriteJSON(b) },
			func(b *bytes.Buffer) (Series, error) { return ReadJSON(b) },
			recordSeries(t, 7, 4, 9), false},
		{"csv-small", func(s Series, b *bytes.Buffer) error { return s.WriteCSV(b) },
			func(b *bytes.Buffer) (Series, error) { return ReadCSV(b) },
			recordSeries(t, 100, 8, 5), true},
		{"csv-overflowed", func(s Series, b *bytes.Buffer) error { return s.WriteCSV(b) },
			func(b *bytes.Buffer) (Series, error) { return ReadCSV(b) },
			recordSeries(t, 7, 4, 9), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b bytes.Buffer
			if err := tc.write(tc.series, &b); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, err := tc.read(&b)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !reflect.DeepEqual(got.Epochs, tc.series.Epochs) {
				t.Fatalf("epochs did not round-trip:\ngot  %+v\nwant %+v", got.Epochs, tc.series.Epochs)
			}
			if got.SchemaVersion != tc.series.SchemaVersion {
				t.Fatalf("schema version %d, want %d", got.SchemaVersion, tc.series.SchemaVersion)
			}
			if !tc.lossy {
				if got.Dropped != tc.series.Dropped || got.EpochCycles != tc.series.EpochCycles {
					t.Fatalf("metadata did not round-trip: got %+v want %+v", got, tc.series)
				}
			}
		})
	}
}

// TestRecorderRingOverflow fills a tiny ring past capacity and checks
// flight-recorder semantics: the most recent snapshots survive, the
// drop count is exact, and epoch stamping keeps counting.
func TestRecorderRingOverflow(t *testing.T) {
	r := NewRecorder(50, 4)
	for i := 0; i < 10; i++ {
		r.Record(fakeSnapshot(i))
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped %d, want 6", got)
	}
	snaps := r.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("retained %d snapshots, want 4", len(snaps))
	}
	for i, s := range snaps {
		wantEpoch := uint64(6 + i)
		if s.Epoch != wantEpoch {
			t.Fatalf("snapshot %d has epoch %d, want %d", i, s.Epoch, wantEpoch)
		}
		if want := (wantEpoch + 1) * 50; s.EndCycle != want {
			t.Fatalf("snapshot %d ends at %d, want %d", i, s.EndCycle, want)
		}
	}
}

// TestRecorderDue checks boundary arithmetic, including several
// boundaries crossed by one time jump, and nil safety.
func TestRecorderDue(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Due(1 << 40) {
		t.Fatal("nil recorder must never be due")
	}
	r := NewRecorder(100, 8)
	if r.Due(99) {
		t.Fatal("due before first boundary")
	}
	// A jump past three boundaries drains three records.
	n := 0
	for r.Due(350) {
		r.Record(Snapshot{})
		n++
	}
	if n != 3 {
		t.Fatalf("drained %d boundaries, want 3", n)
	}
	if r.Boundary() != 400 {
		t.Fatalf("next boundary %d, want 400", r.Boundary())
	}
}

// TestTracerFilter checks that enabling "cip,fault" collects exactly
// those components' events and Enabled gates the rest.
func TestTracerFilter(t *testing.T) {
	tr, err := NewTracer("cip,fault", 16)
	if err != nil {
		t.Fatal(err)
	}
	all := []Component{CompCIP, CompFault, CompDCache, CompDRAM, CompSim}
	for i, c := range all {
		if want := c == CompCIP || c == CompFault; tr.Enabled(c) != want {
			t.Fatalf("Enabled(%v) = %v, want %v", c, tr.Enabled(c), want)
		}
		tr.Emit(uint64(i), c, "kind", "detail")
		tr.Emitf(uint64(i), c, "kindf", "i=%d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("collected %d events, want 4 (2 components x 2 emits)", len(evs))
	}
	for _, e := range evs {
		if e.Comp != CompCIP && e.Comp != CompFault {
			t.Fatalf("event from disabled component %v leaked through", e.Comp)
		}
	}

	var nilTr *Tracer
	if nilTr.Enabled(CompCIP) {
		t.Fatal("nil tracer must report disabled")
	}
	nilTr.Emit(0, CompCIP, "k", "d") // must not panic
}

// TestTracerParseAndOverflow covers component-list parsing (including
// errors) and the bounded log's drop accounting.
func TestTracerParseAndOverflow(t *testing.T) {
	if _, err := ParseComponents("cip,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want error naming the bad component, got %v", err)
	}
	mask, err := ParseComponents("all")
	if err != nil {
		t.Fatal(err)
	}
	for c := Component(0); c < numComponents; c++ {
		if mask&(1<<c) == 0 {
			t.Fatalf("'all' must enable %v", c)
		}
	}

	tr, err := NewTracer("all", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tr.Emitf(uint64(i), CompSim, "tick", "%d", i)
	}
	if tr.Dropped() != 5 {
		t.Fatalf("dropped %d, want 5", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Detail != "5" || evs[2].Detail != "7" {
		t.Fatalf("ring should retain the newest 3 events, got %v", evs)
	}
	var b bytes.Buffer
	if err := tr.WriteTimeline(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "5 dropped") {
		t.Fatalf("timeline should note drops:\n%s", b.String())
	}
}

// TestMetricsDocCoversSchema enumerates the export schema and greps
// METRICS.md for each field, so the reference doc cannot silently
// drift from the code. Trace components and event kinds must be
// documented too.
func TestMetricsDocCoversSchema(t *testing.T) {
	doc, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatalf("METRICS.md must exist at the repo root: %v", err)
	}
	text := string(doc)
	fields := SchemaFields()
	if len(fields) == 0 {
		t.Fatal("schema has no fields")
	}
	for _, f := range fields {
		if !strings.Contains(text, "`"+f+"`") {
			t.Errorf("METRICS.md does not document schema field `%s`", f)
		}
	}
	for _, top := range []string{"schema_version", "epoch_cycles", "dropped", "epochs"} {
		if !strings.Contains(text, "`"+top+"`") {
			t.Errorf("METRICS.md does not document series field `%s`", top)
		}
	}
	for c := Component(0); c < numComponents; c++ {
		if !strings.Contains(text, "`"+c.String()+"`") {
			t.Errorf("METRICS.md does not document trace component `%s`", c)
		}
	}
}

// TestSchemaFieldsMatchCSVHeader pins the CSV column order to the
// schema declaration order (with core_ipc flattened).
func TestSchemaFieldsMatchCSVHeader(t *testing.T) {
	var want []string
	for _, f := range SchemaFields() {
		if f == "core_ipc" {
			want = append(want, "core_ipc0", "core_ipc1")
			continue
		}
		want = append(want, f)
	}
	if got := csvHeader(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("csvHeader(2) = %v, want %v", got, want)
	}
}

// TestSelfSampleMonotone sanity-checks the runtime/metrics plumbing:
// allocating between two captures must move the counters forward.
func TestSelfSampleMonotone(t *testing.T) {
	before := CaptureSelf()
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	after := CaptureSelf()
	if after.AllocBytes <= before.AllocBytes || after.AllocObjects <= before.AllocObjects {
		t.Fatalf("allocation counters did not advance: %+v -> %+v", before, after)
	}
	rep := SelfReport(before, after, 2_000_000)
	if !strings.Contains(rep, "per M-tick") {
		t.Fatalf("normalized report missing rate: %q", rep)
	}
	if rep0 := SelfReport(before, after, 0); strings.Contains(rep0, "per M-tick") {
		t.Fatalf("zero-tick report must omit rates: %q", rep0)
	}
}

// TestRecorderValidation pins constructor error behavior.
func TestRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder(0, ...) must panic")
		}
	}()
	NewRecorder(0, 4)
}

// TestCSVHeaderMismatch checks that a CSV with a foreign header is
// rejected rather than misparsed.
func TestCSVHeaderMismatch(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n"))
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("want header mismatch error, got %v", err)
	}
}

// Example of the event rendering format, pinned because operators
// grep these lines.
func ExampleEvent_String() {
	e := Event{Cycle: 123456, Comp: CompCIP, Kind: "flip", Detail: "page 0x1f -> BAI"}
	fmt.Println(e.String())
	// Output: [      123456] cip    flip             page 0x1f -> BAI
}
