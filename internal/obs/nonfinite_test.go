package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// nonFiniteSeries builds a two-epoch series whose second epoch carries
// NaN and both infinities in float fields, including inside the
// core_ipc vector.
func nonFiniteSeries() Series {
	return Series{
		SchemaVersion: SchemaVersion,
		EpochCycles:   100,
		Epochs: []Snapshot{
			{Epoch: 0, EndCycle: 100, Cycles: 100, IPC: 1.5, CoreIPC: []float64{1, 2}},
			{
				Epoch: 1, EndCycle: 200, Cycles: 100,
				IPC:         math.NaN(),
				CoreIPC:     []float64{math.Inf(1), 0.25},
				L4HitRate:   math.Inf(-1),
				EffCapacity: 2.5,
			},
		},
	}
}

// TestJSONRejectsNonFinite pins the JSON export's behavior on NaN/Inf:
// a clear error naming the epoch and field, instead of encoding/json's
// unlocated "unsupported value: NaN".
func TestJSONRejectsNonFinite(t *testing.T) {
	s := nonFiniteSeries()
	err := s.WriteJSON(&bytes.Buffer{})
	if err == nil {
		t.Fatal("WriteJSON accepted a NaN sample")
	}
	for _, want := range []string{"epoch 1", "ipc", "NaN"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	// The error locates the first offender in schema order; a vector
	// element is named with its index.
	s.Epochs[1].IPC = 1
	err = s.WriteJSON(&bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "core_ipc[0]") {
		t.Fatalf("error %v does not locate the vector element", err)
	}

	// Finite series still encode.
	s.Epochs[1].CoreIPC[0] = 3
	s.Epochs[1].L4HitRate = 0.5
	if err := s.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("WriteJSON rejected a finite series: %v", err)
	}
}

// TestCSVNonFiniteRoundTrip pins the CSV export's behavior on NaN/Inf:
// strconv renders them as NaN/+Inf/-Inf and ReadCSV parses them back to
// the identical values, so no sample is ever silently altered.
func TestCSVNonFiniteRoundTrip(t *testing.T) {
	s := nonFiniteSeries()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got.Epochs) != 2 {
		t.Fatalf("round-trip returned %d epochs, want 2", len(got.Epochs))
	}
	e := got.Epochs[1]
	if !math.IsNaN(e.IPC) {
		t.Fatalf("IPC round-tripped to %v, want NaN", e.IPC)
	}
	if !math.IsInf(e.CoreIPC[0], 1) {
		t.Fatalf("CoreIPC[0] round-tripped to %v, want +Inf", e.CoreIPC[0])
	}
	if !math.IsInf(e.L4HitRate, -1) {
		t.Fatalf("L4HitRate round-tripped to %v, want -Inf", e.L4HitRate)
	}
	if e.CoreIPC[1] != 0.25 || e.EffCapacity != 2.5 {
		t.Fatalf("finite fields altered: %+v", e)
	}
}
