package obs

import (
	"fmt"
	"io"
	"strings"
)

// Component identifies which simulator component emitted an event.
// Components double as the trace level system: enabling a component
// enables all of its events, so `-trace-events cip,fault` is both a
// filter and a verbosity control.
type Component uint8

// Trace components.
const (
	// CompCIP traces Cache Index Predictor activity (policy flips).
	CompCIP Component = iota
	// CompFault traces fault-injection outcomes (detected frames,
	// checksum catches, silent hits).
	CompFault
	// CompDCache traces DRAM-cache structural events (set flushes,
	// quarantines).
	CompDCache
	// CompDRAM traces DRAM device events (row-buffer conflict runs
	// over threshold).
	CompDRAM
	// CompSim traces simulator phase events (measurement start).
	CompSim

	// numComponents bounds the component space.
	numComponents
)

// String names the component with the spelling ParseComponents accepts.
func (c Component) String() string {
	switch c {
	case CompCIP:
		return "cip"
	case CompFault:
		return "fault"
	case CompDCache:
		return "dcache"
	case CompDRAM:
		return "dram"
	case CompSim:
		return "sim"
	default:
		return fmt.Sprintf("component(%d)", uint8(c))
	}
}

// ParseComponents resolves a comma-separated component list ("cip,fault")
// into an enable mask. "all" enables every component; the empty string
// enables none.
func ParseComponents(s string) (uint32, error) {
	var mask uint32
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "":
		case "all":
			mask |= 1<<numComponents - 1
		case "cip":
			mask |= 1 << CompCIP
		case "fault":
			mask |= 1 << CompFault
		case "dcache":
			mask |= 1 << CompDCache
		case "dram":
			mask |= 1 << CompDRAM
		case "sim":
			mask |= 1 << CompSim
		default:
			return 0, fmt.Errorf("obs: unknown trace component %q (have cip, fault, dcache, dram, sim, all)", name)
		}
	}
	return mask, nil
}

// Event is one structured trace record.
type Event struct {
	// Cycle is the simulated cycle the event occurred at.
	Cycle uint64
	// Comp identifies the emitting component.
	Comp Component
	// Kind is the event type within the component (e.g. "flip", "flush").
	Kind string
	// Detail is the human-readable payload.
	Detail string
}

// String renders the event as one timeline line.
func (e Event) String() string {
	return fmt.Sprintf("[%12d] %-6s %-16s %s", e.Cycle, e.Comp, e.Kind, e.Detail)
}

// DefaultTraceCap is the default bounded event-log capacity. Like the
// epoch ring, a full log drops its oldest events (flight-recorder
// semantics) and counts them, bounding trace memory regardless of run
// length.
const DefaultTraceCap = 8192

// Tracer is a bounded, component-filtered event log. Like Recorder it
// belongs to exactly one simulation and is used from that simulation's
// goroutine only. Emission sites guard with Enabled before formatting,
// so a disabled component costs one inlined mask test.
type Tracer struct {
	mask    uint32
	ring    []Event
	head    int
	n       int
	dropped uint64
}

// NewTracer returns a tracer enabling the given components
// (ParseComponents syntax) with a ring of cap events (cap <= 0 selects
// DefaultTraceCap).
func NewTracer(components string, cap int) (*Tracer, error) {
	mask, err := ParseComponents(components)
	if err != nil {
		return nil, err
	}
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracer{mask: mask, ring: make([]Event, cap)}, nil
}

// Enabled reports whether component c's events are being collected.
// Safe on a nil receiver (always false), so call sites need no
// additional nil guard.
func (t *Tracer) Enabled(c Component) bool {
	return t != nil && t.mask&(1<<c) != 0
}

// Emit records one event if its component is enabled. Callers on hot
// paths should guard with Enabled before building Detail, so the
// disabled path never formats.
func (t *Tracer) Emit(cycle uint64, c Component, kind, detail string) {
	if !t.Enabled(c) {
		return
	}
	e := Event{Cycle: cycle, Comp: c, Kind: kind, Detail: detail}
	if t.n == len(t.ring) {
		t.ring[t.head] = e
		t.head = (t.head + 1) % len(t.ring)
		t.dropped++
		return
	}
	t.ring[(t.head+t.n)%len(t.ring)] = e
	t.n++
}

// Emitf is Emit with deferred formatting: the format executes only
// when the component is enabled.
func (t *Tracer) Emitf(cycle uint64, c Component, kind, format string, args ...any) {
	if !t.Enabled(c) {
		return
	}
	t.Emit(cycle, c, kind, fmt.Sprintf(format, args...))
}

// Dropped returns how many events the full ring has discarded.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(t.head+i)%len(t.ring)]
	}
	return out
}

// WriteTimeline renders the retained events as a human-readable
// timeline, noting how many earlier events the bounded log dropped.
func (t *Tracer) WriteTimeline(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace: %d events (%d dropped by the bounded log)\n", t.n, t.dropped); err != nil {
		return err
	}
	for i := 0; i < t.n; i++ {
		if _, err := fmt.Fprintln(w, t.ring[(t.head+i)%len(t.ring)]); err != nil {
			return err
		}
	}
	return nil
}
