package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Latencies is a simple latency sample set with tail-quantile
// extraction — the p99/p999 axis for the daemon's submission path.
// Observations are stored exactly (the sets here are thousands of
// samples, not millions), so quantiles are exact nearest-rank values
// rather than sketch approximations. Safe for concurrent use.
type Latencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one sample.
func (l *Latencies) Observe(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// Count returns how many samples have been observed.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Quantile returns the nearest-rank q-quantile (0 < q <= 1) of the
// samples observed so far, or 0 when empty. Quantile(0.5) is the
// median; Quantile(1) the maximum.
func (l *Latencies) Quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return quantileLocked(l.sortedLocked(), q)
}

// LatencySummary is one snapshot of the distribution's headline
// quantiles plus mean and count.
type LatencySummary struct {
	// Count is the number of samples summarized.
	Count int `json:"count"`
	// Mean is the arithmetic mean.
	Mean time.Duration `json:"mean_ns"`
	// P50 is the nearest-rank median.
	P50 time.Duration `json:"p50_ns"`
	// P90 is the nearest-rank 90th percentile.
	P90 time.Duration `json:"p90_ns"`
	// P99 is the nearest-rank 99th percentile.
	P99 time.Duration `json:"p99_ns"`
	// P999 is the nearest-rank 99.9th percentile.
	P999 time.Duration `json:"p999_ns"`
	// Max is the largest sample.
	Max time.Duration `json:"max_ns"`
}

// String renders the summary as one human-readable line.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}

// Summary snapshots the distribution. The zero value (no samples)
// summarizes to all zeros.
func (l *Latencies) Summary() LatencySummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	sorted := l.sortedLocked()
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	s := LatencySummary{
		Count: len(sorted),
		P50:   quantileLocked(sorted, 0.50),
		P90:   quantileLocked(sorted, 0.90),
		P99:   quantileLocked(sorted, 0.99),
		P999:  quantileLocked(sorted, 0.999),
	}
	if len(sorted) > 0 {
		s.Mean = sum / time.Duration(len(sorted))
		s.Max = sorted[len(sorted)-1]
	}
	return s
}

// sortedLocked returns the samples in ascending order. Caller holds
// l.mu; the sort happens in place (observation order is never needed).
func (l *Latencies) sortedLocked() []time.Duration {
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	return l.samples
}

// quantileLocked is the nearest-rank quantile of an ascending-sorted
// sample set: the ceil(q*n)-th smallest value.
func quantileLocked(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(math.Ceil(float64(n) * q))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
