package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"strconv"
	"strings"
)

// Snapshot is one epoch's metrics sample. Counter-style fields
// (cycles, refs, reads, installs, fault counts, cip_predictions) are
// per-epoch deltas; gauge-style fields (queue depths, eff_capacity,
// cip_bai_frac, quarantined_sets) are point-in-time values at the
// epoch boundary; rate/accuracy fields are computed over the epoch
// unless noted. METRICS.md documents every field; the obs tests
// enforce that the document and this struct never drift apart.
type Snapshot struct {
	// Epoch is the zero-based epoch index.
	Epoch uint64 `json:"epoch"`
	// EndCycle is the simulated cycle of the epoch boundary.
	EndCycle uint64 `json:"end_cycle"`
	// Cycles is the epoch length in simulated cycles.
	Cycles uint64 `json:"cycles"`
	// Refs is the number of memory references processed this epoch.
	Refs uint64 `json:"refs"`
	// IPC is the aggregate instructions-per-cycle over the epoch.
	IPC float64 `json:"ipc"`
	// CoreIPC is the per-core IPC over the epoch.
	CoreIPC []float64 `json:"core_ipc"`
	// L4Reads is the number of L4 demand reads this epoch.
	L4Reads uint64 `json:"l4_reads"`
	// L4HitRate is the L4 demand-read hit rate over the epoch.
	L4HitRate float64 `json:"l4_hit_rate"`
	// L4Queue is the stacked-DRAM in-flight request count at the boundary.
	L4Queue uint64 `json:"l4_queue"`
	// L4BusUtil is the stacked-DRAM data-bus utilization over the epoch.
	L4BusUtil float64 `json:"l4_bus_util"`
	// L4BytesPerAccess is stacked-DRAM bytes moved per access this epoch.
	L4BytesPerAccess float64 `json:"l4_bytes_per_access"`
	// DDRReads is the main-memory read count this epoch.
	DDRReads uint64 `json:"ddr_reads"`
	// DDRWrites is the main-memory write count this epoch.
	DDRWrites uint64 `json:"ddr_writes"`
	// DDRQueue is the main-memory in-flight request count at the boundary.
	DDRQueue uint64 `json:"ddr_queue"`
	// DDRBusUtil is the main-memory data-bus utilization over the epoch.
	DDRBusUtil float64 `json:"ddr_bus_util"`
	// EffCapacity is the L4 effective-capacity multiplier at the boundary.
	EffCapacity float64 `json:"eff_capacity"`
	// InstallBAI counts BAI-indexed installs this epoch.
	InstallBAI uint64 `json:"install_bai"`
	// InstallTSI counts TSI-indexed installs this epoch.
	InstallTSI uint64 `json:"install_tsi"`
	// InstallInvariant counts index-invariant installs this epoch.
	InstallInvariant uint64 `json:"install_invariant"`
	// CIPBAIFrac is the fraction of CIP Last-Time-Table entries
	// currently predicting BAI — the PSEL-analogue policy bias.
	CIPBAIFrac float64 `json:"cip_bai_frac"`
	// CIPPolicyBAI is 1 when the predictor's current dominant indexing
	// policy is BAI (CIPBAIFrac >= 0.5), else 0.
	CIPPolicyBAI uint64 `json:"cip_policy_bai"`
	// CIPAccuracy is the cumulative CIP prediction accuracy so far.
	CIPAccuracy float64 `json:"cip_accuracy"`
	// CIPPredictions counts scored CIP predictions this epoch.
	CIPPredictions uint64 `json:"cip_predictions"`
	// CIPFlips counts Last-Time-Table entries that changed value this
	// epoch (a page's indexing policy flipped).
	CIPFlips uint64 `json:"cip_flips"`
	// FaultCorrected counts ECC-corrected words this epoch.
	FaultCorrected uint64 `json:"fault_corrected"`
	// FaultDetected counts detected-uncorrectable words this epoch.
	FaultDetected uint64 `json:"fault_detected"`
	// FaultSilent counts silently corrupt words this epoch.
	FaultSilent uint64 `json:"fault_silent"`
	// FaultRefetches counts would-be hits converted to main-memory
	// refetches by faults this epoch.
	FaultRefetches uint64 `json:"fault_refetches"`
	// QuarantinedSets is the number of quarantined L4 sets at the boundary.
	QuarantinedSets uint64 `json:"quarantined_sets"`
}

// SchemaFields returns the JSON field names of the epoch snapshot
// schema, in declaration order. METRICS.md must document every one;
// the metrics-demo golden pins the list so schema drift is visible in
// review.
func SchemaFields() []string {
	t := reflect.TypeOf(Snapshot{})
	fields := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" {
			fields = append(fields, name)
		}
	}
	return fields
}

// DefaultRingCap is the default epoch-ring capacity. At ~300B per
// snapshot the ring's memory bound is ~1.2MB regardless of run length:
// once full, the oldest epochs are dropped (and counted) rather than
// growing without bound.
const DefaultRingCap = 4096

// Recorder samples epoch metrics into a bounded ring. It is attached
// to exactly one simulation and used from that simulation's goroutine
// only (like fault.Model, it is not safe for concurrent use). The
// recorder never mutates simulated state: the sim layer copies its
// component statistics into a Snapshot and hands it over.
type Recorder struct {
	epoch   uint64
	next    uint64
	count   uint64
	dropped uint64

	ring []Snapshot
	head int
	n    int

	// OnRecord, when non-nil, observes every recorded snapshot (with
	// Epoch/EndCycle/Cycles stamped) the moment Record runs — the hook
	// behind incremental metric export. It fires for every epoch, even
	// ones a full ring later drops, and runs on the simulation
	// goroutine: keep it fast and non-blocking.
	OnRecord func(Snapshot)
}

// NewRecorder returns a recorder sampling every epochCycles of
// simulated time into a ring of ringCap snapshots (ringCap <= 0
// selects DefaultRingCap). It panics if epochCycles is zero.
func NewRecorder(epochCycles uint64, ringCap int) *Recorder {
	if epochCycles == 0 {
		panic("obs: epochCycles must be positive")
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Recorder{epoch: epochCycles, next: epochCycles, ring: make([]Snapshot, ringCap)}
}

// EpochCycles returns the sampling period in simulated cycles.
func (r *Recorder) EpochCycles() uint64 { return r.epoch }

// Due reports whether simulated time now has reached the next epoch
// boundary. Safe on a nil receiver (never due).
func (r *Recorder) Due(now uint64) bool { return r != nil && now >= r.next }

// Boundary returns the cycle of the next epoch boundary.
func (r *Recorder) Boundary() uint64 { return r.next }

// Record appends one snapshot, stamping its epoch index and boundary
// cycle, and advances the boundary. When the ring is full the oldest
// snapshot is dropped and counted in Dropped.
func (r *Recorder) Record(s Snapshot) {
	s.Epoch = r.count
	s.EndCycle = r.next
	s.Cycles = r.epoch
	r.count++
	r.next += r.epoch
	if r.OnRecord != nil {
		r.OnRecord(s)
	}
	if r.n == len(r.ring) {
		r.ring[r.head] = s
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
		return
	}
	r.ring[(r.head+r.n)%len(r.ring)] = s
	r.n++
}

// Dropped returns how many snapshots the full ring has discarded.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Snapshots returns the retained snapshots in chronological order.
func (r *Recorder) Snapshots() []Snapshot {
	out := make([]Snapshot, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(r.head+i)%len(r.ring)]
	}
	return out
}

// Series returns the recorder's contents as an exportable value.
func (r *Recorder) Series() Series {
	return Series{
		SchemaVersion: SchemaVersion,
		EpochCycles:   r.epoch,
		Dropped:       r.dropped,
		Epochs:        r.Snapshots(),
	}
}

// SchemaVersion identifies the epoch-series export schema; bump it
// when Snapshot fields change incompatibly.
const SchemaVersion = 1

// Series is the exportable form of one run's epoch metrics.
type Series struct {
	// SchemaVersion identifies the snapshot schema of Epochs.
	SchemaVersion int `json:"schema_version"`
	// EpochCycles is the sampling period in simulated cycles.
	EpochCycles uint64 `json:"epoch_cycles"`
	// Dropped counts epochs lost to ring overflow (the oldest ones).
	Dropped uint64 `json:"dropped"`
	// Epochs holds the retained snapshots in chronological order.
	Epochs []Snapshot `json:"epochs"`
}

// WriteJSON writes the series as indented JSON. JSON has no encoding
// for NaN or infinities, so a non-finite sample is rejected up front
// with an error naming the epoch and field — previously it surfaced as
// encoding/json's opaque "unsupported value: NaN" with no indication of
// where the value came from. (CSV export round-trips non-finite values
// losslessly; see WriteCSV.)
func (s Series) WriteJSON(w io.Writer) error {
	if err := s.checkFinite(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// checkFinite returns an error naming the first non-finite float in the
// series, walking the snapshot schema reflectively so new float fields
// are covered automatically.
func (s Series) checkFinite() error {
	for _, e := range s.Epochs {
		v := reflect.ValueOf(e)
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
			f := v.Field(i)
			switch {
			case f.Kind() == reflect.Float64:
				if err := finiteErr(f.Float(), e.Epoch, name); err != nil {
					return err
				}
			case f.Kind() == reflect.Slice && f.Type().Elem().Kind() == reflect.Float64:
				for j := 0; j < f.Len(); j++ {
					if err := finiteErr(f.Index(j).Float(), e.Epoch, fmt.Sprintf("%s[%d]", name, j)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// finiteErr reports a non-finite sample value as a located error.
func finiteErr(v float64, epoch uint64, field string) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("obs: epoch %d field %q is %v: JSON cannot encode non-finite floats (CSV export round-trips them)", epoch, field, v)
	}
	return nil
}

// ReadJSON parses a series previously written by WriteJSON.
func ReadJSON(r io.Reader) (Series, error) {
	var s Series
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Series{}, fmt.Errorf("obs: parsing series JSON: %w", err)
	}
	return s, nil
}

// csvHeader returns the flattened CSV column names: the schema fields
// with core_ipc expanded to one column per core.
func csvHeader(cores int) []string {
	var cols []string
	for _, f := range SchemaFields() {
		if f == "core_ipc" {
			for i := 0; i < cores; i++ {
				cols = append(cols, fmt.Sprintf("core_ipc%d", i))
			}
			continue
		}
		cols = append(cols, f)
	}
	return cols
}

// fu formats a uint64 losslessly for CSV.
func fu(v uint64) string { return strconv.FormatUint(v, 10) }

// ff formats a float64 so that parsing it back returns the identical
// value (shortest round-trip representation).
func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes the series as CSV: one header row, one row per
// epoch, with the per-core IPC vector flattened into core_ipcN
// columns. Numbers are formatted losslessly — including NaN and the
// infinities, which strconv renders as "NaN"/"+Inf"/"-Inf" — so
// ReadCSV reconstructs the exact snapshots (pinned by
// TestCSVNonFiniteRoundTrip).
func (s Series) WriteCSV(w io.Writer) error {
	cores := 0
	if len(s.Epochs) > 0 {
		cores = len(s.Epochs[0].CoreIPC)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader(cores)); err != nil {
		return err
	}
	for _, e := range s.Epochs {
		row := []string{fu(e.Epoch), fu(e.EndCycle), fu(e.Cycles), fu(e.Refs), ff(e.IPC)}
		for _, ipc := range e.CoreIPC {
			row = append(row, ff(ipc))
		}
		row = append(row,
			fu(e.L4Reads), ff(e.L4HitRate), fu(e.L4Queue), ff(e.L4BusUtil), ff(e.L4BytesPerAccess),
			fu(e.DDRReads), fu(e.DDRWrites), fu(e.DDRQueue), ff(e.DDRBusUtil),
			ff(e.EffCapacity),
			fu(e.InstallBAI), fu(e.InstallTSI), fu(e.InstallInvariant),
			ff(e.CIPBAIFrac), fu(e.CIPPolicyBAI), ff(e.CIPAccuracy), fu(e.CIPPredictions), fu(e.CIPFlips),
			fu(e.FaultCorrected), fu(e.FaultDetected), fu(e.FaultSilent), fu(e.FaultRefetches),
			fu(e.QuarantinedSets))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series previously written by WriteCSV. Only the
// epoch rows survive a CSV round-trip; SchemaVersion, EpochCycles and
// Dropped are derived (version current, period from the first two
// rows, dropped unknown and left zero).
func ReadCSV(r io.Reader) (Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return Series{}, fmt.Errorf("obs: parsing series CSV: %w", err)
	}
	if len(rows) == 0 {
		return Series{}, fmt.Errorf("obs: series CSV has no header")
	}
	header := rows[0]
	cores := 0
	for _, c := range header {
		if strings.HasPrefix(c, "core_ipc") {
			cores++
		}
	}
	if want := csvHeader(cores); !reflect.DeepEqual(header, want) {
		return Series{}, fmt.Errorf("obs: series CSV header %v does not match schema %v", header, want)
	}
	s := Series{SchemaVersion: SchemaVersion}
	for _, row := range rows[1:] {
		e, err := parseCSVRow(row, cores)
		if err != nil {
			return Series{}, err
		}
		s.Epochs = append(s.Epochs, e)
	}
	if len(s.Epochs) > 0 {
		s.EpochCycles = s.Epochs[0].Cycles
	}
	return s, nil
}

// parseCSVRow parses one epoch row in WriteCSV's column order.
func parseCSVRow(row []string, cores int) (Snapshot, error) {
	var e Snapshot
	i := 0
	next := func() string { v := row[i]; i++; return v }
	var err error
	u := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = strconv.ParseUint(next(), 10, 64)
		return v
	}
	f := func() float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(next(), 64)
		return v
	}
	e.Epoch, e.EndCycle, e.Cycles, e.Refs, e.IPC = u(), u(), u(), u(), f()
	for c := 0; c < cores; c++ {
		e.CoreIPC = append(e.CoreIPC, f())
	}
	e.L4Reads, e.L4HitRate, e.L4Queue, e.L4BusUtil, e.L4BytesPerAccess = u(), f(), u(), f(), f()
	e.DDRReads, e.DDRWrites, e.DDRQueue, e.DDRBusUtil = u(), u(), u(), f()
	e.EffCapacity = f()
	e.InstallBAI, e.InstallTSI, e.InstallInvariant = u(), u(), u()
	e.CIPBAIFrac, e.CIPPolicyBAI, e.CIPAccuracy, e.CIPPredictions, e.CIPFlips = f(), u(), f(), u(), u()
	e.FaultCorrected, e.FaultDetected, e.FaultSilent, e.FaultRefetches = u(), u(), u(), u()
	e.QuarantinedSets = u()
	if err != nil {
		return Snapshot{}, fmt.Errorf("obs: parsing series CSV row: %w", err)
	}
	return e, nil
}
