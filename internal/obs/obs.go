// Package obs is the simulator's time-series observability layer: an
// epoch-sampled metrics recorder (Recorder), a bounded structured event
// tracer (Tracer), and profiling helpers (CPU/heap profiles plus
// runtime/metrics self-stats).
//
// The package is deliberately dependency-free within the simulator: it
// defines only plain snapshot/event values, and the sim layer adapts
// component statistics into them. That keeps the import direction
// one-way (dcache/dram/sim import obs, never the reverse) and makes the
// observer physically unable to reach into simulated state.
//
// Determinism contract: observation is read-only. A Recorder or Tracer
// attached to a run may copy statistics and append to its own buffers,
// but it never feeds anything back into the simulation, so results are
// byte-identical with observation on or off, at any worker count. The
// determinism tests in internal/sim and internal/experiments enforce
// this.
package obs

// Observer bundles the optional observation hooks one simulation
// carries: an epoch metrics recorder and/or an event tracer. A nil
// *Observer (or nil fields) disables observation entirely; the hot
// paths guard with nil-safe accessors so the disabled cost is one
// pointer compare.
type Observer struct {
	// Rec, when non-nil, samples an epoch metrics snapshot every
	// Rec.EpochCycles() of simulated time.
	Rec *Recorder
	// Trace, when non-nil, collects structured component events.
	Trace *Tracer
}

// Recorder returns the observer's epoch recorder; safe on a nil
// receiver (returns nil).
func (o *Observer) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.Rec
}

// Tracer returns the observer's event tracer; safe on a nil receiver
// (returns nil).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}
