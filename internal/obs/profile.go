package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns a
// stop function that ends the profile and closes the file. Wire it to
// a CLI's -cpuprofile flag:
//
//	stop, err := obs.StartCPUProfile(*cpuprofile)
//	defer stop()
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation (heap) profile to path, after
// a GC so the profile reflects live objects. Wire it to a CLI's
// -memprofile flag at exit.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// SelfSample is a point-in-time capture of the Go runtime's own
// allocation and GC counters (via runtime/metrics). Two samples
// bracket a run; SelfReport turns their difference into the
// simulator's self-cost summary.
type SelfSample struct {
	// AllocBytes is cumulative heap bytes allocated (/gc/heap/allocs:bytes).
	AllocBytes uint64
	// AllocObjects is cumulative heap objects allocated (/gc/heap/allocs:objects).
	AllocObjects uint64
	// GCCycles is cumulative completed GC cycles (/gc/cycles/total:gc-cycles).
	GCCycles uint64
}

// selfMetricNames are the runtime/metrics keys CaptureSelf reads, in
// SelfSample field order.
var selfMetricNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
}

// CaptureSelf reads the runtime's current allocation and GC counters.
func CaptureSelf() SelfSample {
	samples := make([]metrics.Sample, len(selfMetricNames))
	for i, n := range selfMetricNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	var s SelfSample
	vals := make([]uint64, len(samples))
	for i, m := range samples {
		if m.Value.Kind() == metrics.KindUint64 {
			vals[i] = m.Value.Uint64()
		}
	}
	s.AllocBytes, s.AllocObjects, s.GCCycles = vals[0], vals[1], vals[2]
	return s
}

// SelfStatus is a point-in-time health snapshot of the running
// process: the goroutine count plus the cumulative allocation and GC
// counters of SelfSample. The experiment daemon serves it from
// /healthz; long-lived processes watch AllocBytes/GCCycles deltas and
// Goroutines for leaks.
type SelfStatus struct {
	// Goroutines is the current goroutine count (runtime.NumGoroutine).
	Goroutines int `json:"goroutines"`
	// AllocBytes is cumulative heap bytes allocated.
	AllocBytes uint64 `json:"alloc_bytes"`
	// AllocObjects is cumulative heap objects allocated.
	AllocObjects uint64 `json:"alloc_objects"`
	// GCCycles is cumulative completed GC cycles.
	GCCycles uint64 `json:"gc_cycles"`
}

// CaptureSelfStatus reads the process's current self-stats: goroutine
// count plus the allocation/GC counters of CaptureSelf.
func CaptureSelfStatus() SelfStatus {
	s := CaptureSelf()
	return SelfStatus{
		Goroutines:   runtime.NumGoroutine(),
		AllocBytes:   s.AllocBytes,
		AllocObjects: s.AllocObjects,
		GCCycles:     s.GCCycles,
	}
}

// SelfReport renders the runtime cost between two samples, normalized
// per million simulated ticks (simTicks is the summed simulated-cycle
// count of the work in between; 0 suppresses the normalized figures).
func SelfReport(before, after SelfSample, simTicks uint64) string {
	db := after.AllocBytes - before.AllocBytes
	do := after.AllocObjects - before.AllocObjects
	dg := after.GCCycles - before.GCCycles
	if simTicks == 0 {
		return fmt.Sprintf("self: allocated %.1fMB in %d objects, %d GC cycles",
			float64(db)/(1<<20), do, dg)
	}
	mt := float64(simTicks) / 1e6
	return fmt.Sprintf("self: allocated %.1fMB in %d objects, %d GC cycles over %.1fM simulated ticks (%.1fKB, %.0f objects per M-tick)",
		float64(db)/(1<<20), do, dg, mt, float64(db)/1024/mt, float64(do)/mt)
}
