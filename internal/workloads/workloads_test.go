package workloads

import (
	"testing"

	"dice/internal/compress"
)

func TestCatalogShape(t *testing.T) {
	all := All26()
	if len(all) != 26 {
		t.Fatalf("All26 returned %d workloads", len(all))
	}
	suites := map[Suite]int{}
	for _, w := range all {
		suites[w.Suite]++
		if len(w.Cores) != 8 {
			t.Fatalf("%s has %d cores, want 8", w.Name, len(w.Cores))
		}
	}
	if suites[SuiteRate] != 16 || suites[SuiteMix] != 4 || suites[SuiteGAP] != 6 {
		t.Fatalf("suite counts = %v", suites)
	}
	if len(LowMPKI13()) != 13 {
		t.Fatal("low-MPKI set wrong size")
	}
}

func TestTable3Values(t *testing.T) {
	// Spot-check published MPKI and footprints survive in the catalog.
	checks := map[string]struct {
		mpki      float64
		footprint uint64 // per-core bytes (8-copy value / 8)
	}{
		"mcf":    {53.6, 13200 * mb / 8},
		"libq":   {22.2, 256 * mb / 8},
		"xalanc": {2.2, 1900 * mb / 8},
		"pr_twi": {112.9, 23100 * mb / 8},
	}
	for _, w := range All26() {
		c, ok := checks[w.Name]
		if !ok {
			continue
		}
		if w.Cores[0].MPKI != c.mpki {
			t.Fatalf("%s MPKI = %v, want %v", w.Name, w.Cores[0].MPKI, c.mpki)
		}
		if w.Cores[0].FootprintBytes != c.footprint {
			t.Fatalf("%s footprint = %d, want %d", w.Name, w.Cores[0].FootprintBytes, c.footprint)
		}
	}
}

func TestMixesDrawFromSPEC(t *testing.T) {
	spec := map[string]bool{}
	for _, name := range rateOrder {
		spec[name] = true
	}
	for _, w := range Mixes() {
		seen := map[string]bool{}
		for _, c := range w.Cores {
			if !spec[c.Name] {
				t.Fatalf("%s includes non-SPEC %q", w.Name, c.Name)
			}
			if seen[c.Name] {
				t.Fatalf("%s repeats %q", w.Name, c.Name)
			}
			seen[c.Name] = true
		}
	}
}

func TestBuildSyntheticInstances(t *testing.T) {
	w, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	insts := w.Build(10)
	if len(insts) != 8 {
		t.Fatalf("built %d instances", len(insts))
	}
	for i, in := range insts {
		if in.FootprintLines == 0 {
			t.Fatalf("core %d footprint zero", i)
		}
		for j := 0; j < 100; j++ {
			r, ok := in.Gen.Next()
			if !ok {
				t.Fatalf("core %d stream exhausted", i)
			}
			if r.Line >= in.FootprintLines {
				t.Fatalf("core %d line %d beyond footprint %d", i, r.Line, in.FootprintLines)
			}
		}
		if len(in.Data(3)) != 64 {
			t.Fatal("data line must be 64 bytes")
		}
	}
	// Different cores get different data copies (different seeds).
	a, b := insts[0].Data(5), insts[1].Data(5)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			diff = true
		}
	}
	if !diff {
		t.Log("cores share identical data at line 5 (possible for zero lines)")
	}
}

func TestBuildGAPInstance(t *testing.T) {
	w, err := ByName("cc_twi")
	if err != nil {
		t.Fatal(err)
	}
	insts := w.Build(10)
	if len(insts) != 8 {
		t.Fatalf("built %d instances", len(insts))
	}
	in := insts[0]
	if in.FootprintLines == 0 {
		t.Fatal("GAP footprint zero")
	}
	seen := 0
	for j := 0; j < 1000; j++ {
		r, ok := in.Gen.Next()
		if !ok {
			t.Fatal("looping GAP stream exhausted")
		}
		if r.Line <= in.FootprintLines {
			seen++
		}
	}
	if seen != 1000 {
		t.Fatalf("only %d/1000 requests within footprint", seen)
	}
}

func TestCompressibilityOrdering(t *testing.T) {
	// The catalog must reproduce Figure 4's ordering: gcc/mcf highly
	// compressible, lbm/libq not.
	frac := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in := w.Build(10)[0]
		ok := 0
		const n = 1500
		for line := uint64(0); line < n; line++ {
			if compress.CompressedSize(in.Data(line)) <= 36 {
				ok++
			}
		}
		return float64(ok) / n
	}
	gcc, mcf := frac("gcc"), frac("mcf")
	lbm, libq := frac("lbm"), frac("libq")
	if gcc < 0.6 || mcf < 0.6 {
		t.Fatalf("gcc=%.2f mcf=%.2f should be highly compressible", gcc, mcf)
	}
	if lbm > 0.25 || libq > 0.15 {
		t.Fatalf("lbm=%.2f libq=%.2f should be incompressible", lbm, libq)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := ByName("povray"); err != nil {
		t.Fatalf("low-MPKI lookup failed: %v", err)
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 26+13 {
		t.Fatalf("Names returned %d entries", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestBuildDeterministic(t *testing.T) {
	w, _ := ByName("soplex")
	a := w.Build(10)[0]
	b := w.Build(10)[0]
	for i := 0; i < 500; i++ {
		ra, _ := a.Gen.Next()
		rb, _ := b.Gen.Next()
		if ra != rb {
			t.Fatalf("request %d differs between builds", i)
		}
	}
}
