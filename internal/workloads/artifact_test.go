package workloads

import (
	"sync"
	"testing"
)

// testScale keeps GAP builds small enough for unit tests while still
// exercising the real graph/kernel path.
const testScale = 12

// withColdCache runs the test against an empty, enabled cache and
// restores the enabled-by-default state afterwards (the cache is
// process-global, so tests must not leak entries or toggles).
func withColdCache(t *testing.T) {
	t.Helper()
	DropCache()
	SetCacheEnabled(true)
	t.Cleanup(func() {
		DropCache()
		SetCacheEnabled(true)
	})
}

// drain pulls n requests from an instance's generator.
func drain(in Instance, n int) []struct {
	line  uint64
	write bool
} {
	out := make([]struct {
		line  uint64
		write bool
	}, n)
	for i := range out {
		r, _ := in.Gen.Next()
		out[i] = struct {
			line  uint64
			write bool
		}{r.Line, r.Write}
	}
	return out
}

// assertSameStreams checks two instance sets produce identical request
// streams and data images — the observable surface a simulation consumes.
func assertSameStreams(t *testing.T, a, b []Instance) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("instance counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].MPKI != b[i].MPKI ||
			a[i].FootprintLines != b[i].FootprintLines {
			t.Fatalf("core %d metadata differs: %+v vs %+v", i, a[i], b[i])
		}
		ra, rb := drain(a[i], 512), drain(b[i], 512)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("core %d request %d differs: %+v vs %+v", i, j, ra[j], rb[j])
			}
		}
		for _, line := range []uint64{0, 1, 63, a[i].FootprintLines - 1} {
			da, db := a[i].Data(line), b[i].Data(line)
			if string(da) != string(db) {
				t.Fatalf("core %d line %d data differs", i, line)
			}
		}
	}
}

// TestCachedBuildMatchesCold: a Build served from the artifact cache is
// observably identical to a cold build, for both a GAP workload (shared
// graph artifacts) and a synthetic SPEC workload.
func TestCachedBuildMatchesCold(t *testing.T) {
	withColdCache(t)
	for _, name := range []string{"cc_twi", "gcc"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		SetCacheEnabled(false)
		cold := w.Build(testScale)
		SetCacheEnabled(true)
		warmA := w.Build(testScale) // miss: builds the entry
		warmB := w.Build(testScale) // hit: shares it
		assertSameStreams(t, cold, warmA)
		SetCacheEnabled(false)
		cold2 := w.Build(testScale)
		SetCacheEnabled(true)
		assertSameStreams(t, cold2, warmB)
	}
}

// TestCacheCounters: misses count cold builds, hits count served Builds,
// distinct scales are distinct entries, and disabling bypasses both.
func TestCacheCounters(t *testing.T) {
	withColdCache(t)
	w, err := ByName("cc_twi")
	if err != nil {
		t.Fatal(err)
	}
	w.Build(testScale)
	w.Build(testScale)
	w.Build(testScale + 1)
	if h, m := CacheStats(); h != 1 || m != 2 {
		t.Fatalf("hits, misses = %d, %d; want 1, 2", h, m)
	}
	SetCacheEnabled(false)
	w.Build(testScale)
	if h, m := CacheStats(); h != 1 || m != 2 {
		t.Fatalf("disabled Build touched the cache: hits, misses = %d, %d", h, m)
	}
	SetCacheEnabled(true)
	if !CacheEnabled() {
		t.Fatal("CacheEnabled did not reflect SetCacheEnabled")
	}
	w.Warm(testScale)
	if h, m := CacheStats(); h != 2 || m != 2 {
		t.Fatalf("warm of a built entry should hit: hits, misses = %d, %d", h, m)
	}
}

// TestCacheSingleflight: concurrent Builds of one cold key perform
// exactly one construction; everyone else blocks and shares it. Run
// with -race this is also the cache's data-race check.
func TestCacheSingleflight(t *testing.T) {
	withColdCache(t)
	w, err := ByName("pr_twi")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([][]Instance, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = w.Build(testScale)
		}(g)
	}
	wg.Wait()
	if _, m := CacheStats(); m != 1 {
		t.Fatalf("%d concurrent Builds performed %d constructions, want 1", goroutines, m)
	}
	// Drain each result exactly once (draining advances the generators,
	// so one snapshot per instantiation) and compare against the first.
	snap := func(ins []Instance) [][]struct {
		line  uint64
		write bool
	} {
		out := make([][]struct {
			line  uint64
			write bool
		}, len(ins))
		for i := range ins {
			out[i] = drain(ins[i], 512)
		}
		return out
	}
	ref := snap(results[0])
	for g := 1; g < goroutines; g++ {
		got := snap(results[g])
		for i := range ref {
			for j := range ref[i] {
				if ref[i][j] != got[i][j] {
					t.Fatalf("goroutine %d core %d request %d differs: %+v vs %+v",
						g, i, j, ref[i][j], got[i][j])
				}
			}
		}
	}
}

// TestInstantiateIndependentState: instances handed out by one cached
// entry must not share generator positions — advancing one stream must
// not perturb a sibling.
func TestInstantiateIndependentState(t *testing.T) {
	withColdCache(t)
	w, err := ByName("cc_twi")
	if err != nil {
		t.Fatal(err)
	}
	a := w.Build(testScale)
	b := w.Build(testScale)
	// Advance a's first core far ahead, then check b still replays from
	// the start, identical to a third fresh instantiation.
	for i := 0; i < 10_000; i++ {
		if _, ok := a[0].Gen.Next(); !ok {
			a[0].Gen.Reset()
		}
	}
	c := w.Build(testScale)
	rb, rc := drain(b[0], 256), drain(c[0], 256)
	for j := range rb {
		if rb[j] != rc[j] {
			t.Fatalf("sibling instantiation was perturbed at request %d", j)
		}
	}
}

// BenchmarkBuildCold measures the full artifact construction of one GAP
// workload — the cost the cache amortizes across an experiment matrix.
func BenchmarkBuildCold(b *testing.B) {
	w, err := ByName("cc_twi")
	if err != nil {
		b.Fatal(err)
	}
	SetCacheEnabled(false)
	defer SetCacheEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Build(testScale)
	}
}

// BenchmarkBuildWarm measures Build against a warm cache: the per-run
// instantiation cost every simulation after the first actually pays.
func BenchmarkBuildWarm(b *testing.B) {
	w, err := ByName("cc_twi")
	if err != nil {
		b.Fatal(err)
	}
	SetCacheEnabled(true)
	w.Warm(testScale)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Build(testScale)
	}
}
