// Package workloads is the catalog of the paper's evaluation workloads
// (Table 3): the 16 memory-intensive SPEC 2006 rate-mode benchmarks, the
// 6 GAP graph workloads (bc/cc/pr on twitter-like and web-like inputs),
// the 4 random 8-benchmark mixes, and the 13 non-memory-intensive SPEC
// benchmarks of Figure 13. Each entry carries the published L3 MPKI and
// 8-copy footprint, an access-pattern model, and a data-value profile
// tuned to the benchmark's measured compressibility (Figure 4).
//
// The paper's Pin-based instruction traces are proprietary; these models
// reproduce the four axes its results depend on — memory intensity,
// footprint:capacity ratio, spatial locality, and data compressibility —
// as documented in DESIGN.md.
package workloads

import (
	"fmt"

	"dice/internal/data"
	"dice/internal/graph"
	"dice/internal/trace"
)

// Suite labels the aggregation groups used in the paper's tables.
type Suite string

// Aggregation groups.
const (
	SuiteRate    Suite = "RATE"    // 16 SPEC rate-mode workloads
	SuiteMix     Suite = "MIX"     // 4 mixed workloads
	SuiteGAP     Suite = "GAP"     // 6 graph workloads
	SuiteLowMPKI Suite = "LOWMPKI" // 13 non-memory-intensive (Fig 13)
)

// pattern bundles the synthetic access-pattern weights of one benchmark.
type pattern struct {
	seq, stride, rand, hot float64
	seqRun                 int
	strideLines            uint64
	hotFrac                float64 // hot region as a fraction of footprint
	writeFrac              float64
}

// gapInput selects a graph topology for GAP workloads.
type gapInput uint8

const (
	inputTwitter gapInput = iota // RMAT power-law
	inputWeb                     // clustered web graph
)

// CoreLoad describes what one core runs.
type CoreLoad struct {
	// Name is the benchmark name (e.g. "mcf", "pr_twi").
	Name string
	// MPKI is the published L3 misses per kilo-instruction (Table 3),
	// which sets the stream's memory intensity.
	MPKI float64
	// FootprintBytes is this core's share of the published 8-copy
	// footprint at full (1GB-cache) scale.
	FootprintBytes uint64

	pat     pattern
	profile data.Profile
	kernel  *gapKernel
}

type gapKernel struct {
	k     graph.Kernel
	input gapInput
}

// Workload is one 8-core experiment unit.
type Workload struct {
	Name  string
	Suite Suite
	Cores []CoreLoad
}

// Instance is a built, runnable per-core load: a request generator over a
// private virtual line space plus the data image behind it.
type Instance struct {
	Name           string
	MPKI           float64
	FootprintLines uint64
	Gen            trace.Generator
	// Data returns the 64 bytes of a virtual line.
	Data func(line uint64) []byte
	// Fill writes the 64 bytes of a virtual line into a caller-provided
	// buffer, the allocation-free variant of Data. May be nil, in which
	// case callers fall back to Data.
	Fill func(line uint64, buf []byte)
}

// builtGAP is the shared, immutable build product of one GAP (kernel,
// input) pair: the graph workspace (its Line/FillLine closures are pure
// reads over the finished kernel arrays) and the recorded request trace.
type builtGAP struct {
	ws             *graph.Workspace
	reqs           []trace.Request
	footprintLines uint64
}

// buildGAP sizes a graph so the kernel's footprint matches the scaled
// per-core Table 3 footprint, runs the kernel, and returns its trace and
// data image.
func buildGAP(cl CoreLoad, scaleShift uint) *builtGAP {
	target := cl.FootprintBytes >> scaleShift
	if target < 1<<21 {
		target = 1 << 21
	}
	var g *graph.CSR
	seed := hashName(cl.Name)
	if cl.kernel.input == inputTwitter {
		// RMAT footprint ~ N*(arrays) + 64N (col): ~92B per vertex at
		// edge factor 8.
		scale := 10
		for (uint64(92)<<uint(scale)) < target && scale < 22 {
			scale++
		}
		g = graph.RMAT(scale, 8, seed)
	} else {
		n := int(target / 92)
		if n < 1024 {
			n = 1024
		}
		g = graph.Web(n, 8, seed)
	}
	const traceBudget = 600_000
	ws := graph.Trace(cl.kernel.k, g, traceBudget)
	return &builtGAP{
		ws:             ws,
		reqs:           ws.Requests(),
		footprintLines: ws.FootprintBytes() >> 6,
	}
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// mix builds a data profile from kind weights in the fixed order: zero,
// rep, ptr64, ptr32, smallint, halfword, float, random.
func mix(zero, rep, ptr64, ptr32, small, half, fl, random float64) data.Profile {
	var p data.Profile
	p.Weights[data.KindZero] = zero
	p.Weights[data.KindRep] = rep
	p.Weights[data.KindPtr64] = ptr64
	p.Weights[data.KindPtr32] = ptr32
	p.Weights[data.KindSmallInt] = small
	p.Weights[data.KindHalfword] = half
	p.Weights[data.KindFloat] = fl
	p.Weights[data.KindRandom] = random
	p.PageCoherence = 0.9
	return p
}

const gb = 1 << 30
const mb = 1 << 20

// spec defines one SPEC benchmark's model. Footprints and MPKI follow
// Table 3 (8-copy totals); the pattern and profile encode the
// benchmark's qualitative behavior and Figure 4 compressibility.
func spec(name string, mpki float64, footprint uint64, pat pattern, prof data.Profile) CoreLoad {
	return CoreLoad{
		Name: name, MPKI: mpki,
		FootprintBytes: footprint / 8,
		pat:            pat, profile: prof,
	}
}

// specTable returns the 16 memory-intensive SPEC models keyed by name.
func specTable() map[string]CoreLoad {
	t := map[string]CoreLoad{}
	add := func(cl CoreLoad) { t[cl.Name] = cl }

	// Pointer-chasing integer code; highly compressible small values and
	// pointers (Fig 4: among the most compressible).
	add(spec("mcf", 53.6, 13200*mb,
		pattern{seq: 0.10, stride: 0.05, rand: 0.45, hot: 0.40, seqRun: 8, strideLines: 16, hotFrac: 0.04, writeFrac: 0.22},
		mix(0.12, 0.08, 0.20, 0.30, 0.20, 0.02, 0.00, 0.08)))
	// Streaming FP stencil; essentially incompressible.
	add(spec("lbm", 27.5, 3200*mb,
		pattern{seq: 0.72, stride: 0.05, rand: 0.05, hot: 0.18, seqRun: 48, strideLines: 8, hotFrac: 0.05, writeFrac: 0.45},
		mix(0.02, 0.00, 0.00, 0.03, 0.00, 0.05, 0.55, 0.35)))
	// LP solver; mixed sparse-matrix data, quite compressible.
	add(spec("soplex", 26.8, 1900*mb,
		pattern{seq: 0.32, stride: 0.10, rand: 0.20, hot: 0.38, seqRun: 20, strideLines: 12, hotFrac: 0.06, writeFrac: 0.15},
		mix(0.10, 0.05, 0.12, 0.25, 0.15, 0.08, 0.10, 0.15)))
	// Lattice QCD; FP-heavy with moderate structure.
	add(spec("milc", 25.7, 2900*mb,
		pattern{seq: 0.42, stride: 0.10, rand: 0.16, hot: 0.32, seqRun: 24, strideLines: 16, hotFrac: 0.05, writeFrac: 0.30},
		mix(0.08, 0.02, 0.05, 0.15, 0.05, 0.10, 0.30, 0.25)))
	// Compiler; small working set, very compressible int/pointer data.
	add(spec("gcc", 22.7, 264*mb,
		pattern{seq: 0.40, stride: 0.10, rand: 0.15, hot: 0.35, seqRun: 16, strideLines: 8, hotFrac: 0.10, writeFrac: 0.25},
		mix(0.20, 0.08, 0.15, 0.25, 0.20, 0.05, 0.00, 0.07)))
	// Quantum simulation; long streams of incompressible state.
	add(spec("libq", 22.2, 256*mb,
		pattern{seq: 0.82, stride: 0.02, rand: 0.03, hot: 0.13, seqRun: 64, strideLines: 8, hotFrac: 0.05, writeFrac: 0.35},
		mix(0.02, 0.00, 0.00, 0.02, 0.02, 0.04, 0.30, 0.60)))
	// GemsFDTD; FP fields, little compression.
	add(spec("Gems", 17.2, 6400*mb,
		pattern{seq: 0.45, stride: 0.15, rand: 0.13, hot: 0.27, seqRun: 32, strideLines: 24, hotFrac: 0.04, writeFrac: 0.35},
		mix(0.04, 0.00, 0.02, 0.06, 0.02, 0.06, 0.45, 0.35)))
	// Discrete-event simulator; pointer structures, compressible.
	add(spec("omnetpp", 16.4, 1300*mb,
		pattern{seq: 0.08, stride: 0.04, rand: 0.45, hot: 0.43, seqRun: 8, strideLines: 8, hotFrac: 0.05, writeFrac: 0.28},
		mix(0.12, 0.06, 0.22, 0.25, 0.15, 0.05, 0.02, 0.13)))
	// CFD; structured FP with some smooth regions (a DICE standout).
	add(spec("leslie3d", 14.6, 624*mb,
		pattern{seq: 0.50, stride: 0.12, rand: 0.10, hot: 0.28, seqRun: 28, strideLines: 16, hotFrac: 0.06, writeFrac: 0.30},
		mix(0.08, 0.02, 0.08, 0.22, 0.08, 0.12, 0.20, 0.20)))
	// Speech recognition; mixed, mostly incompressible FP models.
	add(spec("sphinx", 12.9, 128*mb,
		pattern{seq: 0.25, stride: 0.08, rand: 0.35, hot: 0.32, seqRun: 12, strideLines: 8, hotFrac: 0.08, writeFrac: 0.10},
		mix(0.04, 0.02, 0.04, 0.10, 0.06, 0.09, 0.35, 0.30)))
	// Astrophysics CFD; compressible structured fields (DICE standout).
	add(spec("zeusmp", 5.2, 2900*mb,
		pattern{seq: 0.45, stride: 0.12, rand: 0.13, hot: 0.30, seqRun: 24, strideLines: 16, hotFrac: 0.05, writeFrac: 0.30},
		mix(0.15, 0.05, 0.10, 0.25, 0.10, 0.10, 0.10, 0.15)))
	// Weather model; moderate compressibility (DICE standout).
	add(spec("wrf", 5.1, 1400*mb,
		pattern{seq: 0.42, stride: 0.12, rand: 0.14, hot: 0.32, seqRun: 20, strideLines: 12, hotFrac: 0.06, writeFrac: 0.25},
		mix(0.10, 0.03, 0.10, 0.22, 0.10, 0.10, 0.15, 0.20)))
	// Relativity solver; moderate (DICE standout).
	add(spec("cactus", 4.9, 3300*mb,
		pattern{seq: 0.45, stride: 0.12, rand: 0.13, hot: 0.30, seqRun: 24, strideLines: 16, hotFrac: 0.05, writeFrac: 0.30},
		mix(0.08, 0.02, 0.10, 0.20, 0.08, 0.12, 0.20, 0.20)))
	// Path search; pointer graph, compressible, reuse-heavy.
	add(spec("astar", 4.5, 1100*mb,
		pattern{seq: 0.10, stride: 0.05, rand: 0.40, hot: 0.45, seqRun: 8, strideLines: 8, hotFrac: 0.06, writeFrac: 0.20},
		mix(0.15, 0.06, 0.18, 0.25, 0.15, 0.06, 0.00, 0.15)))
	// Compression benchmark; its buffers are already high-entropy.
	add(spec("bzip2", 3.6, 2500*mb,
		pattern{seq: 0.35, stride: 0.10, rand: 0.25, hot: 0.30, seqRun: 16, strideLines: 8, hotFrac: 0.05, writeFrac: 0.30},
		mix(0.06, 0.02, 0.06, 0.14, 0.08, 0.09, 0.10, 0.45)))
	// XML transform; pointer/string structures, compressible.
	add(spec("xalanc", 2.2, 1900*mb,
		pattern{seq: 0.22, stride: 0.08, rand: 0.30, hot: 0.40, seqRun: 12, strideLines: 8, hotFrac: 0.08, writeFrac: 0.18},
		mix(0.14, 0.05, 0.15, 0.22, 0.15, 0.07, 0.02, 0.20)))
	return t
}

// rateOrder is the presentation order of Table 3 / Figures 7 and 10.
var rateOrder = []string{
	"mcf", "lbm", "soplex", "milc", "gcc", "libq", "Gems", "omnetpp",
	"leslie3d", "sphinx", "zeusmp", "wrf", "cactus", "astar", "bzip2", "xalanc",
}

// gapTable returns the 6 GAP workload models (Table 3).
func gapTable() []CoreLoad {
	mk := func(name string, mpki float64, fp uint64, k graph.Kernel, in gapInput) CoreLoad {
		return CoreLoad{
			Name: name, MPKI: mpki, FootprintBytes: fp / 8,
			kernel: &gapKernel{k: k, input: in},
		}
	}
	return []CoreLoad{
		mk("bc_twi", 69.7, 19700*mb, graph.BetweennessCentrality, inputTwitter),
		mk("bc_web", 17.7, 25000*mb, graph.BetweennessCentrality, inputWeb),
		mk("cc_twi", 93.9, 14300*mb, graph.ConnectedComponents, inputTwitter),
		mk("cc_web", 9.4, 16000*mb, graph.ConnectedComponents, inputWeb),
		mk("pr_twi", 112.9, 23100*mb, graph.PageRank, inputTwitter),
		mk("pr_web", 16.7, 25200*mb, graph.PageRank, inputWeb),
	}
}

// lowMPKITable returns the 13 non-memory-intensive benchmarks (Fig 13):
// small footprints that mostly fit on-chip, MPKI < 2.
func lowMPKITable() []CoreLoad {
	mk := func(name string, mpki float64, fpMB uint64, prof data.Profile) CoreLoad {
		return spec(name, mpki, fpMB*mb,
			pattern{seq: 0.4, stride: 0.1, rand: 0.2, hot: 0.3, seqRun: 16,
				strideLines: 8, hotFrac: 0.25, writeFrac: 0.2},
			prof)
	}
	c := mix(0.12, 0.05, 0.12, 0.2, 0.15, 0.08, 0.08, 0.2) // generic mix
	f := mix(0.05, 0.01, 0.04, 0.1, 0.05, 0.1, 0.35, 0.3)  // FP-leaning
	return []CoreLoad{
		mk("bwaves", 1.8, 96, f),
		mk("calculix", 0.6, 48, f),
		mk("dealII", 1.1, 64, c),
		mk("gamess", 0.2, 16, f),
		mk("gobmk", 0.5, 24, c),
		mk("gromacs", 0.7, 32, f),
		mk("h264", 0.9, 40, c),
		mk("hmmer", 0.4, 24, c),
		mk("namd", 0.3, 32, f),
		mk("perlbench", 0.8, 48, c),
		mk("povray", 0.1, 8, f),
		mk("sjeng", 0.4, 24, c),
		mk("tonto", 0.6, 40, f),
	}
}

// rate builds an 8-copy rate-mode workload of one benchmark.
func rate(cl CoreLoad, suite Suite) Workload {
	cores := make([]CoreLoad, 8)
	for i := range cores {
		cores[i] = cl
	}
	return Workload{Name: cl.Name, Suite: suite, Cores: cores}
}

// Rate16 returns the 16 SPEC rate-mode workloads in table order.
func Rate16() []Workload {
	t := specTable()
	out := make([]Workload, 0, len(rateOrder))
	for _, name := range rateOrder {
		out = append(out, rate(t[name], SuiteRate))
	}
	return out
}

// Mixes returns the 4 mixed workloads: fixed random draws of 8 of the 16
// SPEC benchmarks (Section 3.2).
func Mixes() []Workload {
	t := specTable()
	defs := map[string][]string{
		"mix1": {"mcf", "gcc", "lbm", "xalanc", "soplex", "astar", "libq", "wrf"},
		"mix2": {"milc", "omnetpp", "Gems", "bzip2", "leslie3d", "zeusmp", "sphinx", "cactus"},
		"mix3": {"mcf", "libq", "omnetpp", "sphinx", "gcc", "Gems", "astar", "bzip2"},
		"mix4": {"soplex", "lbm", "leslie3d", "xalanc", "milc", "wrf", "zeusmp", "cactus"},
	}
	names := []string{"mix1", "mix2", "mix3", "mix4"}
	out := make([]Workload, 0, 4)
	for _, name := range names {
		cores := make([]CoreLoad, 8)
		for i, bench := range defs[name] {
			cores[i] = t[bench]
		}
		out = append(out, Workload{Name: name, Suite: SuiteMix, Cores: cores})
	}
	return out
}

// GAP6 returns the 6 graph workloads in table order.
func GAP6() []Workload {
	out := make([]Workload, 0, 6)
	for _, cl := range gapTable() {
		out = append(out, rate(cl, SuiteGAP))
	}
	return out
}

// All26 returns the paper's full evaluation set in presentation order:
// 16 SPEC rate + 4 mixes + 6 GAP.
func All26() []Workload {
	out := Rate16()
	out = append(out, Mixes()...)
	out = append(out, GAP6()...)
	return out
}

// LowMPKI13 returns the non-memory-intensive set of Figure 13.
func LowMPKI13() []Workload {
	out := make([]Workload, 0, 13)
	for _, cl := range lowMPKITable() {
		out = append(out, rate(cl, SuiteLowMPKI))
	}
	return out
}

// ByName looks up any cataloged workload.
func ByName(name string) (Workload, error) {
	for _, w := range All26() {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range LowMPKI13() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists all workload names (evaluation set then low-MPKI set).
func Names() []string {
	var out []string
	for _, w := range All26() {
		out = append(out, w.Name)
	}
	for _, w := range LowMPKI13() {
		out = append(out, w.Name)
	}
	return out
}
