package workloads

import (
	"sync"
	"sync/atomic"

	"dice/internal/data"
	"dice/internal/graph"
	"dice/internal/trace"
)

// Artifacts is the immutable build product of one (workload, scaleShift)
// pair: sized graphs, recorded kernel request traces, and the synthetic
// generator/data parameters of every core. Everything reachable from an
// Artifacts value is read-only after construction — graph workspaces and
// replay traces are shared by reference across any number of concurrent
// simulations, while the stateful parts of a run (trace generator
// positions, RNG streams) are created fresh by Instantiate. That split
// is what lets the process-wide cache hand one build to the whole
// experiment matrix without perturbing a single result.
type Artifacts struct {
	name       string
	scaleShift uint
	cores      []coreArtifact
}

// coreArtifact captures one core's share of the build. Exactly one of
// gap (shared graph trace) or synth-config fields is meaningful.
type coreArtifact struct {
	name           string
	mpki           float64
	footprintLines uint64

	// GAP cores: the built graph workspace and its recorded request
	// trace, shared read-only across every instantiation.
	gap *builtGAP

	// Synthetic cores: the generator configuration (including seed) and
	// the data-image parameters. Generators and Synth values are rebuilt
	// per instantiation — both are O(1) — so no run-local state leaks
	// between concurrent simulations.
	synthCfg trace.SynthConfig
	dataSeed uint64
	profile  data.Profile
}

// Instantiate materializes runnable per-core instances around the shared
// artifacts: fresh replay/synthetic generators (stateful), fresh data
// synthesizers (cheap), shared graph workspaces and request slices
// (immutable). It is safe to call concurrently from any number of
// goroutines and each call returns fully independent generator state, so
// simulations built from one Artifacts value are byte-identical to ones
// built cold.
func (a *Artifacts) Instantiate() []Instance {
	out := make([]Instance, len(a.cores))
	for i, c := range a.cores {
		if c.gap != nil {
			out[i] = Instance{
				Name: c.name, MPKI: c.mpki,
				FootprintLines: c.footprintLines,
				Gen:            trace.NewLooping(trace.NewReplay(c.gap.reqs)),
				Data:           c.gap.ws.Line,
				Fill:           c.gap.ws.FillLine,
			}
			continue
		}
		synth := data.NewSynth(c.dataSeed, c.profile)
		out[i] = Instance{
			Name: c.name, MPKI: c.mpki,
			FootprintLines: c.footprintLines,
			Gen:            trace.NewSynthetic(c.synthCfg),
			Data:           synth.Line,
			Fill:           synth.FillLine,
		}
	}
	return out
}

// buildArtifacts does the expensive, one-time construction work for a
// workload at 1/2^scaleShift of full scale: graph generation and kernel
// trace recording for GAP cores (cached per (kernel, input) within the
// workload, as rate mode runs identical copies), synthetic parameter
// derivation for SPEC cores.
func (w Workload) buildArtifacts(scaleShift uint) *Artifacts {
	a := &Artifacts{name: w.Name, scaleShift: scaleShift,
		cores: make([]coreArtifact, len(w.Cores))}
	type gapKey struct {
		k     graph.Kernel
		input gapInput
	}
	gapCache := map[gapKey]*builtGAP{}
	for i, cl := range w.Cores {
		seed := uint64(0xD1CE)<<32 ^ hashName(cl.Name) ^ uint64(i)*0x9E3779B97F4A7C15
		if cl.kernel != nil {
			key := gapKey{cl.kernel.k, cl.kernel.input}
			bg, ok := gapCache[key]
			if !ok {
				bg = buildGAP(cl, scaleShift)
				gapCache[key] = bg
			}
			a.cores[i] = coreArtifact{
				name: cl.Name, mpki: cl.MPKI,
				footprintLines: bg.footprintLines,
				gap:            bg,
			}
			continue
		}
		fp := cl.FootprintBytes >> scaleShift / 64
		if fp < 1024 {
			fp = 1024
		}
		hot := uint64(float64(fp) * cl.pat.hotFrac)
		if hot < 64 {
			hot = 64
		}
		a.cores[i] = coreArtifact{
			name: cl.Name, mpki: cl.MPKI,
			footprintLines: fp,
			synthCfg: trace.SynthConfig{
				FootprintLines: fp,
				SeqWeight:      cl.pat.seq, SeqRunLen: cl.pat.seqRun,
				StrideWeight: cl.pat.stride, StrideLines: cl.pat.strideLines,
				RandWeight: cl.pat.rand,
				HotWeight:  cl.pat.hot, HotLines: hot,
				WriteFrac: cl.pat.writeFrac,
				Seed:      seed,
			},
			dataSeed: seed ^ 0xDA7A,
			profile:  cl.profile,
		}
	}
	return a
}

// artifactKey identifies one cache entry. Workload names are unique
// within the catalog; callers constructing ad-hoc Workload values that
// reuse a cataloged name must disable the cache (SetCacheEnabled) or the
// cataloged build will shadow theirs.
type artifactKey struct {
	name       string
	scaleShift uint
}

// artifactEntry is one singleflight slot: the first goroutine to claim a
// key builds while holding the entry (not the cache lock); everyone else
// waits on done. A panic during the build is recorded and re-raised in
// every waiter, mirroring the experiment runner's flight semantics.
type artifactEntry struct {
	done     chan struct{}
	art      *Artifacts
	panicked any
}

var (
	cacheMu      sync.Mutex
	cacheEntries = map[artifactKey]*artifactEntry{}

	cacheOn     atomic.Bool
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

func init() { cacheOn.Store(true) }

// SetCacheEnabled turns the process-wide artifact cache on or off. It is
// on by default; off forces every Build back to cold construction (the
// -artifact-cache=off escape hatch). Disabling does not drop entries
// already built — re-enabling serves them again.
func SetCacheEnabled(on bool) { cacheOn.Store(on) }

// CacheEnabled reports whether Build serves from the artifact cache.
func CacheEnabled() bool { return cacheOn.Load() }

// CacheStats returns the artifact cache's lifetime hit and miss
// counters. A miss is a cold build performed (and stored) by this
// process; a hit is a Build or Warm served from an existing entry,
// including waits on a build already in flight. See METRICS.md.
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetCacheStats zeroes the hit/miss counters (entries are kept).
func ResetCacheStats() {
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// DropCache discards every cached artifact and zeroes the counters.
// Tests use it to force cold builds; production code never needs it
// (artifacts are bounded by catalog size x distinct scales).
func DropCache() {
	cacheMu.Lock()
	cacheEntries = map[artifactKey]*artifactEntry{}
	cacheMu.Unlock()
	ResetCacheStats()
}

// cachedArtifacts returns the shared build for (w.Name, scaleShift),
// constructing it exactly once per process (singleflight): concurrent
// callers for the same key block until the one builder finishes.
func cachedArtifacts(w Workload, scaleShift uint) *Artifacts {
	key := artifactKey{w.Name, scaleShift}
	cacheMu.Lock()
	e, ok := cacheEntries[key]
	if !ok {
		e = &artifactEntry{done: make(chan struct{})}
		cacheEntries[key] = e
		cacheMu.Unlock()
		cacheMisses.Add(1)
		defer func() {
			if r := recover(); r != nil {
				e.panicked = r
				close(e.done)
				panic(r)
			}
		}()
		e.art = w.buildArtifacts(scaleShift)
		close(e.done)
		return e.art
	}
	cacheMu.Unlock()
	<-e.done
	cacheHits.Add(1)
	if e.panicked != nil {
		panic(e.panicked)
	}
	return e.art
}

// Warm ensures the artifacts for (w, scaleShift) are built and cached,
// blocking until they are. Experiment runners call it for each distinct
// workload before fanning out the config matrix, so workers never
// duplicate a graph build racing on a cold cache. No-op (cold Build
// semantics apply later) when the cache is disabled.
func (w Workload) Warm(scaleShift uint) {
	if !CacheEnabled() {
		return
	}
	cachedArtifacts(w, scaleShift)
}

// Build instantiates the workload's cores at 1/2^scaleShift of full
// scale. GAP workloads build their graph and kernel trace once and share
// it across cores (rate mode runs identical copies). With the artifact
// cache enabled (the default) the expensive build products are further
// shared process-wide across every Build of the same (name, scaleShift)
// — each call still returns fresh, independent generator state, so
// results are byte-identical either way.
func (w Workload) Build(scaleShift uint) []Instance {
	if CacheEnabled() {
		return cachedArtifacts(w, scaleShift).Instantiate()
	}
	return w.buildArtifacts(scaleShift).Instantiate()
}
