package dram

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := HBMConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		func() Config { c := HBMConfig(); c.Channels = 0; return c }(),
		func() Config { c := HBMConfig(); c.Banks = -1; return c }(),
		func() Config { c := HBMConfig(); c.QueueDepth = 0; return c }(),
		func() Config { c := HBMConfig(); c.BeatBytes = 0; return c }(),
		func() Config { c := HBMConfig(); c.RowBytes = 0; return c }(),
		func() Config { c := HBMConfig(); c.InterleaveBytes = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestPeakBandwidthRatio(t *testing.T) {
	hbm := New(HBMConfig())
	ddr := New(DDRConfig())
	ratio := hbm.PeakBandwidth() / ddr.PeakBandwidth()
	if ratio != 8 {
		t.Fatalf("stacked:DDR bandwidth ratio = %v, want 8 (4x channels, 2x width)", ratio)
	}
}

func TestRowBufferHit(t *testing.T) {
	m := New(HBMConfig())
	loc := Loc{Channel: 0, Bank: 0, Row: 5}
	// First access: closed row -> tRCD + tCAS + burst.
	done1 := m.Access(0, loc, false, 80)
	wantFirst := uint64(44+44) + m.BurstCycles(80)
	if done1 != wantFirst {
		t.Fatalf("first access done = %d, want %d", done1, wantFirst)
	}
	// Second access to same row, issued after the first completes: tCAS only.
	done2 := m.Access(done1, loc, false, 80)
	if got := done2 - done1; got != uint64(44)+m.BurstCycles(80) {
		t.Fatalf("row hit latency = %d, want %d", got, uint64(44)+m.BurstCycles(80))
	}
	s := m.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 || s.RowConflicts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	cfg := HBMConfig()
	cfg.BatchFactor = 1 // every row switch pays the full row cycle
	m := New(cfg)
	a := Loc{Channel: 0, Bank: 0, Row: 1}
	b := Loc{Channel: 0, Bank: 0, Row: 2}
	done1 := m.Access(0, a, false, 80)
	// Conflict long after tRAS has elapsed: tRP + tRCD + tCAS.
	late := done1 + 1000
	done2 := m.Access(late, b, false, 80)
	want := uint64(44*3) + m.BurstCycles(80)
	if got := done2 - late; got != want {
		t.Fatalf("conflict latency = %d, want %d", got, want)
	}
	if m.Stats().RowConflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", m.Stats().RowConflicts)
	}
}

func TestConflictRespectsTRAS(t *testing.T) {
	cfg := HBMConfig()
	cfg.BatchFactor = 1
	m := New(cfg)
	a := Loc{Channel: 0, Bank: 0, Row: 1}
	b := Loc{Channel: 0, Bank: 0, Row: 2}
	m.Access(0, a, false, 16)
	// Activate happened at 0. A conflicting access right after the bank
	// frees must wait until tRAS (112) before precharging.
	burst := m.BurstCycles(16)
	firstDone := uint64(88) + burst
	done := m.Access(firstDone, b, false, 16)
	// Precharge start = max(firstDone, 0+112) = 112.
	want := uint64(112) + uint64(44*3) + burst
	if done != want {
		t.Fatalf("done = %d, want %d", done, want)
	}
}

func TestBusSerializesBursts(t *testing.T) {
	m := New(HBMConfig())
	// Two accesses to different banks on the same channel at the same time:
	// their core latencies overlap but the bursts must serialize on the bus.
	locA := Loc{Channel: 0, Bank: 0, Row: 1}
	locB := Loc{Channel: 0, Bank: 1, Row: 1}
	d1 := m.Access(0, locA, false, 80)
	d2 := m.Access(0, locB, false, 80)
	if d2 < d1+m.BurstCycles(80) {
		t.Fatalf("bursts overlapped: d1=%d d2=%d", d1, d2)
	}
	// Different channels do overlap fully.
	m2 := New(HBMConfig())
	e1 := m2.Access(0, Loc{Channel: 0, Bank: 0, Row: 1}, false, 80)
	e2 := m2.Access(0, Loc{Channel: 1, Bank: 0, Row: 1}, false, 80)
	if e1 != e2 {
		t.Fatalf("independent channels should complete together: %d vs %d", e1, e2)
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := HBMConfig()
	cfg.QueueDepth = 4
	m := New(cfg)
	loc := Loc{Channel: 0, Bank: 0, Row: 1}
	// Issue far more than QueueDepth requests at cycle 0; the 5th must be
	// pushed past the completion of the 1st.
	var dones []uint64
	for i := 0; i < 6; i++ {
		dones = append(dones, m.Access(0, loc, false, 80))
	}
	if m.Stats().QueueStallCycles == 0 {
		t.Fatal("expected queue stalls with depth 4 and 6 concurrent requests")
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] {
			t.Fatal("completions must be monotonic for same-bank requests")
		}
	}
}

func TestFRFCFSBatchingAbsorbsConflicts(t *testing.T) {
	m := New(HBMConfig()) // default BatchFactor 4
	a := Loc{Channel: 0, Bank: 0, Row: 1}
	b := Loc{Channel: 0, Bank: 0, Row: 2}
	now := uint64(0)
	for i := 0; i < 16; i++ { // alternate rows: every access conflicts
		loc := a
		if i%2 == 1 {
			loc = b
		}
		now = m.Access(now, loc, false, 80)
	}
	s := m.Stats()
	if s.RowConflicts == 0 {
		t.Fatal("alternating rows must conflict")
	}
	if s.RowBatched == 0 {
		t.Fatal("batching must absorb some conflicts")
	}
	// ~3/4 of conflicts ride a batch.
	frac := float64(s.RowBatched) / float64(s.RowConflicts)
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("batched fraction = %.2f, want ~0.75", frac)
	}
	// BatchFactor 1 must cost strictly more time for the same pattern.
	cfg := HBMConfig()
	cfg.BatchFactor = 1
	m1 := New(cfg)
	now1 := uint64(0)
	for i := 0; i < 16; i++ {
		loc := a
		if i%2 == 1 {
			loc = b
		}
		now1 = m1.Access(now1, loc, false, 80)
	}
	if now1 <= now {
		t.Fatalf("unbatched chain (%d) should be slower than batched (%d)", now1, now)
	}
}

func TestDecodeRowGranularityKeepsNeighborsTogether(t *testing.T) {
	m := New(HBMConfig()) // 2KB interleave
	// Addresses within one 2KB chunk decode identically.
	a := m.Decode(0)
	b := m.Decode(2047)
	if a != b {
		t.Fatalf("same-row addresses split: %+v vs %+v", a, b)
	}
	// Next chunk moves to the next channel.
	c := m.Decode(2048)
	if c.Channel != (a.Channel+1)%4 {
		t.Fatalf("chunk interleave broken: %+v -> %+v", a, c)
	}
}

func TestDecodeLineGranularity(t *testing.T) {
	m := New(DDRConfig()) // 64B interleave, 1 channel
	a := m.Decode(0)
	b := m.Decode(64)
	if a.Channel != 0 || b.Channel != 0 {
		t.Fatal("single channel config must always use channel 0")
	}
	// 2KB row / 64B = 32 chunks per row; address 64*32 starts bank 1.
	c := m.Decode(64 * 32)
	if c.Bank != 1 || c.Row != 0 {
		t.Fatalf("bank rotation broken: %+v", c)
	}
}

// Property: bus reservations never overlap and stay sorted — the
// gap-filling scheduler must behave like a real single data bus.
func TestQuickBusReservationsDisjoint(t *testing.T) {
	f := func(times []uint16, durs []uint8) bool {
		ch := &channel{}
		for i, tr := range times {
			dur := uint64(1)
			if i < len(durs) {
				dur += uint64(durs[i]) % 16
			}
			start := ch.reserveBus(uint64(tr), dur)
			if start < uint64(tr) {
				return false
			}
		}
		for i := 1; i < ch.busyLen; i++ {
			if ch.busAt(i).start < ch.busAt(i-1).end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBusGapFilling(t *testing.T) {
	ch := &channel{}
	// Reserve a late window, then an early one: the early transfer must
	// land in the idle gap before it, not behind it.
	late := ch.reserveBus(1000, 10)
	early := ch.reserveBus(5, 10)
	if late != 1000 {
		t.Fatalf("late start = %d", late)
	}
	if early != 5 {
		t.Fatalf("early transfer should use the idle gap, started at %d", early)
	}
	// A transfer that does not fit before the late window goes after it.
	big := ch.reserveBus(995, 10)
	if big != 1010 {
		t.Fatalf("conflicting transfer start = %d, want 1010", big)
	}
}

func TestInFlight(t *testing.T) {
	m := New(HBMConfig())
	loc := Loc{Channel: 2, Bank: 3, Row: 7}
	if m.InFlight(0, loc) != 0 {
		t.Fatal("fresh device has nothing in flight")
	}
	var done uint64
	for i := 0; i < 5; i++ {
		done = m.Access(0, loc, false, 80)
	}
	if n := m.InFlight(0, loc); n != 5 {
		t.Fatalf("in flight at 0 = %d, want 5", n)
	}
	if n := m.InFlight(done, loc); n != 0 {
		t.Fatalf("in flight after completion = %d, want 0", n)
	}
	// Other channels are independent.
	if n := m.InFlight(0, Loc{Channel: 0}); n != 0 {
		t.Fatalf("unused channel reports %d in flight", n)
	}
}

func TestWriteStats(t *testing.T) {
	m := New(DDRConfig())
	m.Access(0, Loc{}, true, 64)
	m.Access(0, Loc{}, false, 64)
	s := m.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.BytesWritten != 64 || s.BytesRead != 64 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Accesses() != 2 {
		t.Fatalf("Accesses = %d", s.Accesses())
	}
	m.ResetStats()
	if m.Stats().Accesses() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestBurstCycles(t *testing.T) {
	m := New(HBMConfig()) // 16B beats, 2 cycles each
	cases := map[int]uint64{80: 10, 64: 8, 16: 2, 1: 2, 17: 4}
	for bytes, want := range cases {
		if got := m.BurstCycles(bytes); got != want {
			t.Fatalf("BurstCycles(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestUtilizationBounded(t *testing.T) {
	m := New(HBMConfig())
	rng := rand.New(rand.NewPCG(1, 1))
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		loc := Loc{Channel: int(rng.UintN(4)), Bank: int(rng.UintN(16)), Row: uint64(rng.UintN(64))}
		done := m.Access(now, loc, rng.UintN(4) == 0, 80)
		if done <= now {
			t.Fatal("completion must be after issue")
		}
		now += uint64(rng.UintN(20))
	}
	final := now + 10000
	if u := m.Utilization(final); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v, want (0, 1]", u)
	}
}

// Property: completion time is always strictly greater than issue time and
// at least the burst length; statistics balance.
func TestQuickAccessInvariants(t *testing.T) {
	m := New(HBMConfig())
	f := func(chRaw, bankRaw uint8, row uint16, now uint32, write bool) bool {
		loc := Loc{Channel: int(chRaw) % 4, Bank: int(bankRaw) % 16, Row: uint64(row)}
		done := m.Access(uint64(now), loc, write, 80)
		return done >= uint64(now)+m.BurstCycles(80)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.RowHits+s.RowMisses+s.RowConflicts != s.Accesses() {
		t.Fatalf("row outcome counts %d do not sum to accesses %d",
			s.RowHits+s.RowMisses+s.RowConflicts, s.Accesses())
	}
}

// Property: Decode is stable and within geometry bounds for arbitrary
// addresses.
func TestQuickDecodeBounds(t *testing.T) {
	m := New(HBMConfig())
	f := func(addr uint64) bool {
		loc := m.Decode(addr)
		if loc != m.Decode(addr) {
			return false
		}
		return loc.Channel >= 0 && loc.Channel < 4 && loc.Bank >= 0 && loc.Bank < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	m := New(HBMConfig())
	rng := rand.New(rand.NewPCG(1, 2))
	locs := make([]Loc, 1024)
	for i := range locs {
		locs[i] = Loc{Channel: int(rng.UintN(4)), Bank: int(rng.UintN(16)), Row: uint64(rng.UintN(256))}
	}
	b.ResetTimer()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		m.Access(now, locs[i%len(locs)], false, 80)
		now += 4
	}
}
