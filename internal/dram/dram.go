// Package dram models the timing of a banked DRAM device — channels,
// banks, row buffers, command timing (tCAS/tRCD/tRP/tRAS), data-bus burst
// occupancy and finite read/write queues. One model instance serves as the
// stacked-DRAM array behind the L4 cache (HBM-like: wide bus, many
// channels) and another as the DDR main memory (narrow bus, one channel),
// reproducing the 8x bandwidth asymmetry the paper's configuration
// establishes (Table 2).
//
// The model is a resource-reservation simulator: every access reserves its
// bank and channel bus at the earliest cycle both are free, pays the
// row-buffer hit/miss/conflict latency, and returns the CPU cycle at which
// the full burst has transferred. Callers provide the clock; the model
// keeps no global time, so out-of-order issue from multiple cores works
// naturally. Refresh is not modeled; it costs both configurations the same
// small utilization fraction and cancels out of all normalized results.
package dram

import (
	"fmt"

	"dice/internal/obs"
)

// Config describes one DRAM device. All latencies are in CPU cycles.
type Config struct {
	Channels      int // independent channels, each with its own bus
	Banks         int // banks per channel
	RowBytes      int // row-buffer size per bank
	CyclesPerBeat int // CPU cycles per bus beat (DDR at half CPU clock: 2)
	BeatBytes     int // bytes per bus beat (bus width / 8)
	TCAS          int // column access (read latency from open row)
	TRCD          int // row activate to column
	TRP           int // precharge
	TRAS          int // min activate-to-precharge
	QueueDepth    int // in-flight requests per channel before stalling
	// InterleaveBytes is the channel-interleave granularity for Decode.
	// The DRAM cache interleaves at row granularity so neighboring sets
	// share a row buffer; main memory interleaves at line granularity.
	InterleaveBytes int
	// BatchFactor approximates FR-FCFS scheduling: a real controller
	// reorders its queue to serve several same-row requests per row
	// activation, so when rows of one bank are accessed alternately only
	// ~1/BatchFactor of the switches pay the full precharge+activate+tRAS
	// row cycle; the rest are charged as activate+column (they ride an
	// already-scheduled row turn). This model serves requests in arrival
	// order, so the batching is applied statistically. 0 means 4.
	BatchFactor int
	// Name labels this device in trace events (e.g. "l4", "ddr").
	Name string
	// Trace, when non-nil, receives row-buffer-conflict-run events
	// (obs.CompDRAM). Observability only: enabling it never changes
	// any timing outcome.
	Trace *obs.Tracer
}

// HBMConfig returns the stacked-DRAM configuration of Table 2: 4 channels,
// 128-bit bus at DDR-1.6GHz under a 3.2GHz core clock (16B per 2 CPU
// cycles per channel ≈ 100GB/s aggregate), 16 banks, 2KB rows,
// 44-44-44-112 timing.
func HBMConfig() Config {
	return Config{
		Channels: 4, Banks: 16, RowBytes: 2048,
		CyclesPerBeat: 2, BeatBytes: 16,
		TCAS: 44, TRCD: 44, TRP: 44, TRAS: 112,
		QueueDepth:      96,
		InterleaveBytes: 2048,
	}
}

// DDRConfig returns the main-memory configuration of Table 2: 1 channel,
// 64-bit bus (8B per 2 CPU cycles = 12.8GB/s), 16 banks, identical
// latencies to the stacked DRAM (per stacked-memory specifications).
func DDRConfig() Config {
	return Config{
		Channels: 1, Banks: 16, RowBytes: 2048,
		CyclesPerBeat: 2, BeatBytes: 8,
		TCAS: 44, TRCD: 44, TRP: 44, TRAS: 112,
		QueueDepth:      96,
		InterleaveBytes: 64,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: Channels must be positive, got %d", c.Channels)
	case c.Banks <= 0:
		return fmt.Errorf("dram: Banks must be positive, got %d", c.Banks)
	case c.RowBytes <= 0:
		return fmt.Errorf("dram: RowBytes must be positive, got %d", c.RowBytes)
	case c.BeatBytes <= 0 || c.CyclesPerBeat <= 0:
		return fmt.Errorf("dram: bus geometry must be positive")
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram: QueueDepth must be positive, got %d", c.QueueDepth)
	case c.InterleaveBytes <= 0:
		return fmt.Errorf("dram: InterleaveBytes must be positive")
	}
	return nil
}

// Loc addresses one row of one bank on one channel.
type Loc struct {
	Channel int
	Bank    int
	Row     uint64
}

// Stats aggregates device activity. Byte and cycle counters feed the
// energy model; row-buffer counters diagnose locality.
type Stats struct {
	Reads            uint64
	Writes           uint64
	RowHits          uint64
	RowMisses        uint64 // closed-row activates
	RowConflicts     uint64 // row switches (see RowBatched)
	RowBatched       uint64 // conflicts absorbed by FR-FCFS batching
	BytesRead        uint64
	BytesWritten     uint64
	BusBusyCycles    uint64
	QueueStallCycles uint64
}

// bank tracks one bank's row-buffer and timing state.
type bank struct {
	openRow      uint64
	rowOpen      bool
	nextFree     uint64 // earliest cycle a new command may start
	lastActivate uint64 // for tRAS
	confRun      uint32 // consecutive conflicts, for FR-FCFS batching
}

// span is one reserved data-bus transfer window.
type span struct{ start, end uint64 }

// channel tracks one channel's bus and queue occupancy.
type channel struct {
	banks []bank
	// busy holds the channel bus's reserved transfer windows in a fixed
	// ring of the most recent busWindow reservations, sorted by start
	// time. Transfers are scheduled into the earliest idle gap at or
	// after their data-ready time (a data bus serves whatever is ready,
	// not arrival order). Reservations are disjoint and durations are
	// positive, so the windows are sorted by end time too — which is
	// what lets reserveBus skip the already-elapsed prefix with a
	// binary search instead of a rescan.
	busy     [busWindow]span
	busyHead int
	busyLen  int
	// queue holds completion times of in-flight requests, a ring used to
	// model the finite read/write queue of Table 2. The backing arrays
	// are padded to a power of two so every wraparound is a mask
	// (ringMask) instead of a divide; fullness is still judged against
	// the configured QueueDepth, never the padded capacity.
	queue    []uint64
	head     int
	count    int
	ringMask int
	// minq is a monotonic min-deque over the completion times currently
	// in queue (a ring of the same capacity, values nondecreasing from
	// front to back, front == minimum). Maintained in O(1) amortized by
	// every queue push/pop, it gives InFlight its fast path: when the
	// probe time is before the earliest completion, every queued request
	// is still in flight and the answer is count, no scan.
	minq     []uint64
	minqHead int
	minqLen  int
}

// busWindow bounds the per-channel reservation history. Power of two:
// ring positions wrap with a mask.
const busWindow = 64

// busAt returns the i-th oldest busy span (0 <= i < busyLen).
func (ch *channel) busAt(i int) span {
	return ch.busy[(ch.busyHead+i)&(busWindow-1)]
}

// busPush appends a span after every existing reservation, dropping the
// oldest when the window is full.
func (ch *channel) busPush(b span) {
	if ch.busyLen == busWindow {
		ch.busyHead = (ch.busyHead + 1) & (busWindow - 1)
		ch.busyLen--
	}
	ch.busy[(ch.busyHead+ch.busyLen)&(busWindow-1)] = b
	ch.busyLen++
}

// busInsert places a span before the current position i, keeping start
// order. When the window is full the oldest reservation is dropped
// first — and an insert at position 0 of a full window drops the new
// span itself, reproducing the bounded-history semantics of the
// original slice implementation (insert, then trim to the newest
// busWindow entries).
func (ch *channel) busInsert(i int, b span) {
	if ch.busyLen == busWindow {
		if i == 0 {
			return // trimmed away immediately: oldest of 65 is the new span
		}
		ch.busyHead = (ch.busyHead + 1) & (busWindow - 1)
		ch.busyLen--
		i--
	}
	for j := ch.busyLen; j > i; j-- {
		ch.busy[(ch.busyHead+j)&(busWindow-1)] = ch.busy[(ch.busyHead+j-1)&(busWindow-1)]
	}
	ch.busy[(ch.busyHead+i)&(busWindow-1)] = b
	ch.busyLen++
}

// reserveBus books the first idle window of length dur at or after
// earliest and returns its start time.
//
// Two fast paths cover almost every call: a transfer that becomes ready
// after every recorded reservation appends in O(1), and one that lands
// amid the reserved history binary-searches the first window still
// relevant to it (windows are sorted by end time) instead of rescanning
// the elapsed prefix. Only the walk across still-overlapping windows —
// bounded by busWindow, typically one or two iterations — remains.
func (ch *channel) reserveBus(earliest, dur uint64) uint64 {
	n := ch.busyLen
	if n == 0 || earliest >= ch.busAt(n-1).end {
		ch.busPush(span{earliest, earliest + dur})
		return earliest
	}
	// First window with end > earliest; everything before it has fully
	// elapsed and cannot constrain this transfer.
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ch.busAt(mid).end <= earliest {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s := earliest
	insertAt := n
	for i := lo; i < n; i++ {
		b := ch.busAt(i)
		if b.start >= s+dur {
			insertAt = i
			break
		}
		s = b.end
	}
	if insertAt == n {
		ch.busPush(span{s, s + dur})
	} else {
		ch.busInsert(insertAt, span{s, s + dur})
	}
	return s
}

// minqPush records a newly queued completion time in the min-deque.
func (ch *channel) minqPush(done uint64) {
	for ch.minqLen > 0 &&
		ch.minq[(ch.minqHead+ch.minqLen-1)&ch.ringMask] > done {
		ch.minqLen--
	}
	ch.minq[(ch.minqHead+ch.minqLen)&ch.ringMask] = done
	ch.minqLen++
}

// minqPop retires a completion time that left the queue (FIFO head).
func (ch *channel) minqPop(done uint64) {
	if ch.minqLen > 0 && ch.minq[ch.minqHead] == done {
		ch.minqHead = (ch.minqHead + 1) & ch.ringMask
		ch.minqLen--
	}
}

// popHead removes the queue's FIFO head, keeping the min-deque in sync.
func (ch *channel) popHead() {
	ch.minqPop(ch.queue[ch.head])
	ch.head = (ch.head + 1) & ch.ringMask
	ch.count--
}

// inFlight counts queued requests still incomplete at cycle now. When
// now precedes the earliest queued completion (the loaded-channel case
// the callers care about) the answer is the maintained count, O(1);
// otherwise a branch-per-entry scan over the ring's two contiguous
// segments resolves the partially drained tail.
func (ch *channel) inFlight(now uint64) int {
	if ch.count == 0 {
		return 0
	}
	if now < ch.minq[ch.minqHead] {
		return ch.count
	}
	n := 0
	depth := len(ch.queue)
	first := ch.head + ch.count
	if first > depth {
		first = depth
	}
	for _, t := range ch.queue[ch.head:first] {
		if t > now {
			n++
		}
	}
	if wrapped := ch.head + ch.count - depth; wrapped > 0 {
		for _, t := range ch.queue[:wrapped] {
			if t > now {
				n++
			}
		}
	}
	return n
}

// Memory is one DRAM device instance.
type Memory struct {
	cfg      Config
	channels []channel
	stats    Stats
	// Decode fast path: when every geometry term is a power of two
	// (true for all shipped configs), the address split becomes three
	// shift/mask pairs instead of four hardware divides. decodeShifts
	// is false for exotic geometries, which fall back to the divides.
	decodeShifts bool
	ivShift      uint   // log2(InterleaveBytes)
	chMask       uint64 // Channels-1
	chShift      uint   // log2(Channels)
	rowChunkBits uint   // log2(chunksPerRow)
	bankMask     uint64 // Banks-1
	bankShift    uint   // log2(Banks)
}

// log2OfPow2 returns (log2(n), true) when n is a positive power of two.
func log2OfPow2(n uint64) (uint, bool) {
	if n == 0 || n&(n-1) != 0 {
		return 0, false
	}
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s, true
}

// New builds a Memory from cfg. It panics on invalid configuration:
// configurations are static experiment inputs, not runtime data.
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{cfg: cfg, channels: make([]channel, cfg.Channels)}
	ringCap := 1
	for ringCap < cfg.QueueDepth {
		ringCap <<= 1
	}
	for i := range m.channels {
		m.channels[i].banks = make([]bank, cfg.Banks)
		m.channels[i].queue = make([]uint64, ringCap)
		m.channels[i].minq = make([]uint64, ringCap)
		m.channels[i].ringMask = ringCap - 1
	}
	chunksPerRow := uint64(cfg.RowBytes / cfg.InterleaveBytes)
	if chunksPerRow == 0 {
		chunksPerRow = 1
	}
	ivs, ok1 := log2OfPow2(uint64(cfg.InterleaveBytes))
	chs, ok2 := log2OfPow2(uint64(cfg.Channels))
	rcs, ok3 := log2OfPow2(chunksPerRow)
	bks, ok4 := log2OfPow2(uint64(cfg.Banks))
	if ok1 && ok2 && ok3 && ok4 {
		m.decodeShifts = true
		m.ivShift = ivs
		m.chMask = uint64(cfg.Channels) - 1
		m.chShift = chs
		m.rowChunkBits = rcs
		m.bankMask = uint64(cfg.Banks) - 1
		m.bankShift = bks
	}
	return m
}

// Config returns the device configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the statistics (timing state is preserved).
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Decode maps a physical byte address to a device location using the
// configured interleave granularity: consecutive interleave chunks rotate
// across channels, then across banks, with the row advancing last. With
// row-granularity interleave, addresses within one row share a bank and
// row — the property the DRAM cache relies on for BAI's neighbor sets.
func (m *Memory) Decode(addr uint64) Loc {
	if m.decodeShifts {
		chunk := addr >> m.ivShift
		rowChunk := (chunk >> m.chShift) >> m.rowChunkBits
		return Loc{
			Channel: int(chunk & m.chMask),
			Bank:    int(rowChunk & m.bankMask),
			Row:     rowChunk >> m.bankShift,
		}
	}
	chunk := addr / uint64(m.cfg.InterleaveBytes)
	ch := int(chunk % uint64(m.cfg.Channels))
	rest := chunk / uint64(m.cfg.Channels)
	chunksPerRow := uint64(m.cfg.RowBytes / m.cfg.InterleaveBytes)
	if chunksPerRow == 0 {
		chunksPerRow = 1
	}
	rowChunk := rest / chunksPerRow
	b := int(rowChunk % uint64(m.cfg.Banks))
	row := rowChunk / uint64(m.cfg.Banks)
	return Loc{Channel: ch, Bank: b, Row: row}
}

// BurstCycles returns the bus occupancy for transferring n bytes.
func (m *Memory) BurstCycles(n int) uint64 {
	beats := (n + m.cfg.BeatBytes - 1) / m.cfg.BeatBytes
	return uint64(beats * m.cfg.CyclesPerBeat)
}

// Access issues a request at CPU cycle now and returns the cycle at which
// the last beat of the burst has transferred. Writes reserve the same
// resources as reads (the model does not give writes a latency advantage;
// the memory controller above decides whether to wait on them).
func (m *Memory) Access(now uint64, loc Loc, write bool, burstBytes int) uint64 {
	ch := &m.channels[loc.Channel]
	bk := &ch.banks[loc.Bank]

	start := now
	// Finite queue: if all slots hold requests that complete after now,
	// the new request cannot enter the channel until the earliest one
	// drains.
	if ch.count == m.cfg.QueueDepth {
		oldest := ch.queue[ch.head]
		if oldest > start {
			m.stats.QueueStallCycles += oldest - start
			start = oldest
		}
		ch.popHead()
	} else {
		// Drain any completed entries so the ring reflects in-flight work.
		for ch.count > 0 && ch.queue[ch.head] <= start {
			ch.popHead()
		}
	}

	cmdStart := max64(start, bk.nextFree)
	var coreLat uint64
	switch {
	case bk.rowOpen && bk.openRow == loc.Row:
		m.stats.RowHits++
		coreLat = uint64(m.cfg.TCAS)
	case !bk.rowOpen:
		m.stats.RowMisses++
		coreLat = uint64(m.cfg.TRCD + m.cfg.TCAS)
		bk.lastActivate = cmdStart
	default:
		m.stats.RowConflicts++
		bk.confRun++
		// The Enabled guard keeps the disabled path free of the varargs
		// boxing Emitf's own guard cannot avoid (conflict runs are
		// common enough for the allocation to show in profiles).
		if bk.confRun >= TraceConflictRun && bk.confRun%TraceConflictRun == 0 &&
			m.cfg.Trace.Enabled(obs.CompDRAM) {
			m.cfg.Trace.Emitf(cmdStart, obs.CompDRAM, "row-conflict-run",
				"%s ch%d bank%d: %d row switches on this bank (latest row %d)",
				m.cfg.Name, loc.Channel, loc.Bank, bk.confRun, loc.Row)
		}
		batch := m.cfg.BatchFactor
		if batch == 0 {
			batch = 4
		}
		if bk.confRun%uint32(batch) != 0 {
			// FR-FCFS batching approximation: this switch is assumed to
			// have been grouped with other requests of its row, so it
			// pays activate+column but no serialized precharge/tRAS.
			m.stats.RowBatched++
			coreLat = uint64(m.cfg.TRCD + m.cfg.TCAS)
			bk.lastActivate = cmdStart
		} else {
			// Precharge may not start before tRAS has elapsed since the
			// activate.
			preStart := max64(cmdStart, bk.lastActivate+uint64(m.cfg.TRAS))
			coreLat = (preStart - cmdStart) + uint64(m.cfg.TRP+m.cfg.TRCD+m.cfg.TCAS)
			bk.lastActivate = preStart + uint64(m.cfg.TRP)
		}
	}
	bk.rowOpen = true
	bk.openRow = loc.Row

	dataReady := cmdStart + coreLat
	burst := m.BurstCycles(burstBytes)
	busStart := ch.reserveBus(dataReady, burst)
	done := busStart + burst
	// Column commands pipeline on an open row: the bank can accept the
	// next command once this one's column/burst slot frees, not after the
	// full access latency (tCAS overlaps across back-to-back row hits).
	colSlotFree := dataReady - uint64(m.cfg.TCAS) + burst
	bk.nextFree = max64(cmdStart+1, colSlotFree)
	m.stats.BusBusyCycles += burst

	// Record in-flight completion in the queue ring.
	tail := (ch.head + ch.count) & ch.ringMask
	ch.queue[tail] = done
	ch.count++
	ch.minqPush(done)

	if write {
		m.stats.Writes++
		m.stats.BytesWritten += uint64(burstBytes)
	} else {
		m.stats.Reads++
		m.stats.BytesRead += uint64(burstBytes)
	}
	return done
}

// InFlight returns how many requests are queued on loc's channel and
// still incomplete at cycle now. Memory controllers drop or defer
// low-priority traffic (prefetches) under queue pressure; callers use
// this to model that throttle. O(1) whenever the channel is fully
// loaded or empty (the cases that drive throttling decisions); see
// channel.inFlight.
func (m *Memory) InFlight(now uint64, loc Loc) int {
	return m.channels[loc.Channel].inFlight(now)
}

// TraceConflictRun is the per-bank row-switch count threshold at which
// an obs.CompDRAM "row-conflict-run" trace event fires (and again at
// every multiple, so a pathological bank stays visible without
// flooding the bounded log).
const TraceConflictRun = 16

// InFlightTotal returns how many requests are queued across every
// channel and still incomplete at cycle now. Read-only: a queue-depth
// gauge the epoch metrics recorder calls once per epoch — previously an
// O(channels×queue) rescan, now the per-channel fast path summed.
func (m *Memory) InFlightTotal(now uint64) int {
	n := 0
	for c := range m.channels {
		n += m.channels[c].inFlight(now)
	}
	return n
}

// AccessAddr is Access with address decoding.
func (m *Memory) AccessAddr(now uint64, addr uint64, write bool, burstBytes int) uint64 {
	return m.Access(now, m.Decode(addr), write, burstBytes)
}

// NextBusFree returns the cycle by which every current bus reservation
// on loc's channel has drained — the channel's next bus-free epoch,
// equal to the largest completion cycle Access has returned for the
// channel (0 before any access). The busy ring is kept sorted by both
// start and end, so this is the last span's end, O(1). Event
// schedulers use it (with NextCompletion) as a channel ready-time: no
// new request on the channel can finish a burst before it.
func (m *Memory) NextBusFree(loc Loc) uint64 {
	ch := &m.channels[loc.Channel]
	if ch.busyLen == 0 {
		return 0
	}
	return ch.busAt(ch.busyLen - 1).end
}

// NextCompletion returns the earliest completion cycle among requests
// currently queued on loc's channel — the channel's next in-flight-
// completion epoch, the front of the monotonic min-deque, O(1). ok is
// false when the queue is empty (no epoch pending). Event schedulers
// use it as the wakeup time at which queue-full stalls can unblock.
func (m *Memory) NextCompletion(loc Loc) (done uint64, ok bool) {
	ch := &m.channels[loc.Channel]
	if ch.count == 0 {
		return 0, false
	}
	return ch.minq[ch.minqHead], true
}

// PeakBandwidth returns the aggregate peak bus bandwidth in bytes per CPU
// cycle, used for reporting and sanity checks.
func (m *Memory) PeakBandwidth() float64 {
	return float64(m.cfg.Channels*m.cfg.BeatBytes) / float64(m.cfg.CyclesPerBeat)
}

// Utilization returns the fraction of total bus cycles busy over an
// elapsed window of cycles.
func (m *Memory) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	total := elapsed * uint64(m.cfg.Channels)
	return float64(m.stats.BusBusyCycles) / float64(total)
}

// Activates returns the number of row activations (for the energy model).
func (s Stats) Activates() uint64 { return s.RowMisses + s.RowConflicts }

// Accesses returns total reads+writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
