// Package dram models the timing of a banked DRAM device — channels,
// banks, row buffers, command timing (tCAS/tRCD/tRP/tRAS), data-bus burst
// occupancy and finite read/write queues. One model instance serves as the
// stacked-DRAM array behind the L4 cache (HBM-like: wide bus, many
// channels) and another as the DDR main memory (narrow bus, one channel),
// reproducing the 8x bandwidth asymmetry the paper's configuration
// establishes (Table 2).
//
// The model is a resource-reservation simulator: every access reserves its
// bank and channel bus at the earliest cycle both are free, pays the
// row-buffer hit/miss/conflict latency, and returns the CPU cycle at which
// the full burst has transferred. Callers provide the clock; the model
// keeps no global time, so out-of-order issue from multiple cores works
// naturally. Refresh is not modeled; it costs both configurations the same
// small utilization fraction and cancels out of all normalized results.
package dram

import (
	"fmt"

	"dice/internal/obs"
)

// Config describes one DRAM device. All latencies are in CPU cycles.
type Config struct {
	Channels      int // independent channels, each with its own bus
	Banks         int // banks per channel
	RowBytes      int // row-buffer size per bank
	CyclesPerBeat int // CPU cycles per bus beat (DDR at half CPU clock: 2)
	BeatBytes     int // bytes per bus beat (bus width / 8)
	TCAS          int // column access (read latency from open row)
	TRCD          int // row activate to column
	TRP           int // precharge
	TRAS          int // min activate-to-precharge
	QueueDepth    int // in-flight requests per channel before stalling
	// InterleaveBytes is the channel-interleave granularity for Decode.
	// The DRAM cache interleaves at row granularity so neighboring sets
	// share a row buffer; main memory interleaves at line granularity.
	InterleaveBytes int
	// BatchFactor approximates FR-FCFS scheduling: a real controller
	// reorders its queue to serve several same-row requests per row
	// activation, so when rows of one bank are accessed alternately only
	// ~1/BatchFactor of the switches pay the full precharge+activate+tRAS
	// row cycle; the rest are charged as activate+column (they ride an
	// already-scheduled row turn). This model serves requests in arrival
	// order, so the batching is applied statistically. 0 means 4.
	BatchFactor int
	// Name labels this device in trace events (e.g. "l4", "ddr").
	Name string
	// Trace, when non-nil, receives row-buffer-conflict-run events
	// (obs.CompDRAM). Observability only: enabling it never changes
	// any timing outcome.
	Trace *obs.Tracer
}

// HBMConfig returns the stacked-DRAM configuration of Table 2: 4 channels,
// 128-bit bus at DDR-1.6GHz under a 3.2GHz core clock (16B per 2 CPU
// cycles per channel ≈ 100GB/s aggregate), 16 banks, 2KB rows,
// 44-44-44-112 timing.
func HBMConfig() Config {
	return Config{
		Channels: 4, Banks: 16, RowBytes: 2048,
		CyclesPerBeat: 2, BeatBytes: 16,
		TCAS: 44, TRCD: 44, TRP: 44, TRAS: 112,
		QueueDepth:      96,
		InterleaveBytes: 2048,
	}
}

// DDRConfig returns the main-memory configuration of Table 2: 1 channel,
// 64-bit bus (8B per 2 CPU cycles = 12.8GB/s), 16 banks, identical
// latencies to the stacked DRAM (per stacked-memory specifications).
func DDRConfig() Config {
	return Config{
		Channels: 1, Banks: 16, RowBytes: 2048,
		CyclesPerBeat: 2, BeatBytes: 8,
		TCAS: 44, TRCD: 44, TRP: 44, TRAS: 112,
		QueueDepth:      96,
		InterleaveBytes: 64,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: Channels must be positive, got %d", c.Channels)
	case c.Banks <= 0:
		return fmt.Errorf("dram: Banks must be positive, got %d", c.Banks)
	case c.RowBytes <= 0:
		return fmt.Errorf("dram: RowBytes must be positive, got %d", c.RowBytes)
	case c.BeatBytes <= 0 || c.CyclesPerBeat <= 0:
		return fmt.Errorf("dram: bus geometry must be positive")
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram: QueueDepth must be positive, got %d", c.QueueDepth)
	case c.InterleaveBytes <= 0:
		return fmt.Errorf("dram: InterleaveBytes must be positive")
	}
	return nil
}

// Loc addresses one row of one bank on one channel.
type Loc struct {
	Channel int
	Bank    int
	Row     uint64
}

// Stats aggregates device activity. Byte and cycle counters feed the
// energy model; row-buffer counters diagnose locality.
type Stats struct {
	Reads            uint64
	Writes           uint64
	RowHits          uint64
	RowMisses        uint64 // closed-row activates
	RowConflicts     uint64 // row switches (see RowBatched)
	RowBatched       uint64 // conflicts absorbed by FR-FCFS batching
	BytesRead        uint64
	BytesWritten     uint64
	BusBusyCycles    uint64
	QueueStallCycles uint64
}

// bank tracks one bank's row-buffer and timing state.
type bank struct {
	openRow      uint64
	rowOpen      bool
	nextFree     uint64 // earliest cycle a new command may start
	lastActivate uint64 // for tRAS
	confRun      uint32 // consecutive conflicts, for FR-FCFS batching
}

// span is one reserved data-bus transfer window.
type span struct{ start, end uint64 }

// channel tracks one channel's bus and queue occupancy.
type channel struct {
	banks []bank
	// busy holds the channel bus's reserved transfer windows, sorted by
	// start time. Transfers are scheduled into the earliest idle gap at
	// or after their data-ready time (a data bus serves whatever is
	// ready, not arrival order), bounded to the most recent busWindow
	// reservations.
	busy []span
	// queue holds completion times of in-flight requests, a ring used to
	// model the finite read/write queue of Table 2.
	queue []uint64
	head  int
	count int
}

// busWindow bounds the per-channel reservation history.
const busWindow = 64

// reserveBus books the first idle window of length dur at or after
// earliest and returns its start time.
func (ch *channel) reserveBus(earliest, dur uint64) uint64 {
	s := earliest
	insertAt := len(ch.busy)
	for i, b := range ch.busy {
		if b.end <= s {
			continue
		}
		if b.start >= s+dur {
			insertAt = i
			break
		}
		s = b.end
	}
	// Insert keeping sort order (s >= busy[insertAt-1].end by scan).
	if insertAt == len(ch.busy) {
		ch.busy = append(ch.busy, span{s, s + dur})
	} else {
		ch.busy = append(ch.busy, span{})
		copy(ch.busy[insertAt+1:], ch.busy[insertAt:])
		ch.busy[insertAt] = span{s, s + dur}
	}
	if len(ch.busy) > busWindow {
		ch.busy = ch.busy[len(ch.busy)-busWindow:]
	}
	return s
}

// Memory is one DRAM device instance.
type Memory struct {
	cfg      Config
	channels []channel
	stats    Stats
}

// New builds a Memory from cfg. It panics on invalid configuration:
// configurations are static experiment inputs, not runtime data.
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{cfg: cfg, channels: make([]channel, cfg.Channels)}
	for i := range m.channels {
		m.channels[i].banks = make([]bank, cfg.Banks)
		m.channels[i].queue = make([]uint64, cfg.QueueDepth)
	}
	return m
}

// Config returns the device configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a copy of the accumulated statistics.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the statistics (timing state is preserved).
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Decode maps a physical byte address to a device location using the
// configured interleave granularity: consecutive interleave chunks rotate
// across channels, then across banks, with the row advancing last. With
// row-granularity interleave, addresses within one row share a bank and
// row — the property the DRAM cache relies on for BAI's neighbor sets.
func (m *Memory) Decode(addr uint64) Loc {
	chunk := addr / uint64(m.cfg.InterleaveBytes)
	ch := int(chunk % uint64(m.cfg.Channels))
	rest := chunk / uint64(m.cfg.Channels)
	chunksPerRow := uint64(m.cfg.RowBytes / m.cfg.InterleaveBytes)
	if chunksPerRow == 0 {
		chunksPerRow = 1
	}
	rowChunk := rest / chunksPerRow
	b := int(rowChunk % uint64(m.cfg.Banks))
	row := rowChunk / uint64(m.cfg.Banks)
	return Loc{Channel: ch, Bank: b, Row: row}
}

// BurstCycles returns the bus occupancy for transferring n bytes.
func (m *Memory) BurstCycles(n int) uint64 {
	beats := (n + m.cfg.BeatBytes - 1) / m.cfg.BeatBytes
	return uint64(beats * m.cfg.CyclesPerBeat)
}

// Access issues a request at CPU cycle now and returns the cycle at which
// the last beat of the burst has transferred. Writes reserve the same
// resources as reads (the model does not give writes a latency advantage;
// the memory controller above decides whether to wait on them).
func (m *Memory) Access(now uint64, loc Loc, write bool, burstBytes int) uint64 {
	ch := &m.channels[loc.Channel]
	bk := &ch.banks[loc.Bank]

	start := now
	// Finite queue: if all slots hold requests that complete after now,
	// the new request cannot enter the channel until the earliest one
	// drains.
	if ch.count == m.cfg.QueueDepth {
		oldest := ch.queue[ch.head]
		if oldest > start {
			m.stats.QueueStallCycles += oldest - start
			start = oldest
		}
		ch.head = (ch.head + 1) % m.cfg.QueueDepth
		ch.count--
	} else {
		// Drain any completed entries so the ring reflects in-flight work.
		for ch.count > 0 && ch.queue[ch.head] <= start {
			ch.head = (ch.head + 1) % m.cfg.QueueDepth
			ch.count--
		}
	}

	cmdStart := max64(start, bk.nextFree)
	var coreLat uint64
	switch {
	case bk.rowOpen && bk.openRow == loc.Row:
		m.stats.RowHits++
		coreLat = uint64(m.cfg.TCAS)
	case !bk.rowOpen:
		m.stats.RowMisses++
		coreLat = uint64(m.cfg.TRCD + m.cfg.TCAS)
		bk.lastActivate = cmdStart
	default:
		m.stats.RowConflicts++
		bk.confRun++
		if bk.confRun >= TraceConflictRun && bk.confRun%TraceConflictRun == 0 {
			m.cfg.Trace.Emitf(cmdStart, obs.CompDRAM, "row-conflict-run",
				"%s ch%d bank%d: %d row switches on this bank (latest row %d)",
				m.cfg.Name, loc.Channel, loc.Bank, bk.confRun, loc.Row)
		}
		batch := m.cfg.BatchFactor
		if batch == 0 {
			batch = 4
		}
		if bk.confRun%uint32(batch) != 0 {
			// FR-FCFS batching approximation: this switch is assumed to
			// have been grouped with other requests of its row, so it
			// pays activate+column but no serialized precharge/tRAS.
			m.stats.RowBatched++
			coreLat = uint64(m.cfg.TRCD + m.cfg.TCAS)
			bk.lastActivate = cmdStart
		} else {
			// Precharge may not start before tRAS has elapsed since the
			// activate.
			preStart := max64(cmdStart, bk.lastActivate+uint64(m.cfg.TRAS))
			coreLat = (preStart - cmdStart) + uint64(m.cfg.TRP+m.cfg.TRCD+m.cfg.TCAS)
			bk.lastActivate = preStart + uint64(m.cfg.TRP)
		}
	}
	bk.rowOpen = true
	bk.openRow = loc.Row

	dataReady := cmdStart + coreLat
	burst := m.BurstCycles(burstBytes)
	busStart := ch.reserveBus(dataReady, burst)
	done := busStart + burst
	// Column commands pipeline on an open row: the bank can accept the
	// next command once this one's column/burst slot frees, not after the
	// full access latency (tCAS overlaps across back-to-back row hits).
	colSlotFree := dataReady - uint64(m.cfg.TCAS) + burst
	bk.nextFree = max64(cmdStart+1, colSlotFree)
	m.stats.BusBusyCycles += burst

	// Record in-flight completion in the queue ring.
	tail := (ch.head + ch.count) % m.cfg.QueueDepth
	ch.queue[tail] = done
	ch.count++

	if write {
		m.stats.Writes++
		m.stats.BytesWritten += uint64(burstBytes)
	} else {
		m.stats.Reads++
		m.stats.BytesRead += uint64(burstBytes)
	}
	return done
}

// InFlight returns how many requests are queued on loc's channel and
// still incomplete at cycle now. Memory controllers drop or defer
// low-priority traffic (prefetches) under queue pressure; callers use
// this to model that throttle.
func (m *Memory) InFlight(now uint64, loc Loc) int {
	ch := &m.channels[loc.Channel]
	n := 0
	for i := 0; i < ch.count; i++ {
		if ch.queue[(ch.head+i)%m.cfg.QueueDepth] > now {
			n++
		}
	}
	return n
}

// TraceConflictRun is the per-bank row-switch count threshold at which
// an obs.CompDRAM "row-conflict-run" trace event fires (and again at
// every multiple, so a pathological bank stays visible without
// flooding the bounded log).
const TraceConflictRun = 16

// InFlightTotal returns how many requests are queued across every
// channel and still incomplete at cycle now. Read-only: a queue-depth
// gauge for the epoch metrics recorder.
func (m *Memory) InFlightTotal(now uint64) int {
	n := 0
	for c := range m.channels {
		ch := &m.channels[c]
		for i := 0; i < ch.count; i++ {
			if ch.queue[(ch.head+i)%m.cfg.QueueDepth] > now {
				n++
			}
		}
	}
	return n
}

// AccessAddr is Access with address decoding.
func (m *Memory) AccessAddr(now uint64, addr uint64, write bool, burstBytes int) uint64 {
	return m.Access(now, m.Decode(addr), write, burstBytes)
}

// PeakBandwidth returns the aggregate peak bus bandwidth in bytes per CPU
// cycle, used for reporting and sanity checks.
func (m *Memory) PeakBandwidth() float64 {
	return float64(m.cfg.Channels*m.cfg.BeatBytes) / float64(m.cfg.CyclesPerBeat)
}

// Utilization returns the fraction of total bus cycles busy over an
// elapsed window of cycles.
func (m *Memory) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	total := elapsed * uint64(m.cfg.Channels)
	return float64(m.stats.BusBusyCycles) / float64(total)
}

// Activates returns the number of row activations (for the energy model).
func (s Stats) Activates() uint64 { return s.RowMisses + s.RowConflicts }

// Accesses returns total reads+writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
