package dram

import (
	"math/rand/v2"
	"testing"
)

// Quick-checks for the channel ready-time surfaces the event-driven
// simulator core leans on. Each is pinned against an independent mirror
// model driven purely by Access's observable behavior: NextBusFree must
// equal the running maximum of every completion cycle Access has
// returned on the channel, and NextCompletion must equal a mirror FIFO
// that replicates Access's drain rules exactly.

// TestQuickNextBusFreeMatchesAccessMax drives random access streams
// (forward jumps and MLP-style replays of earlier cycles, as in the
// reserveBus quick-checks) and asserts NextBusFree(ch) equals the
// largest Access return seen on that channel so far.
func TestQuickNextBusFreeMatchesAccessMax(t *testing.T) {
	cfg := HBMConfig()
	cfg.QueueDepth = 8
	m := New(cfg)
	rng := rand.New(rand.NewPCG(13, 37))
	maxDone := make([]uint64, cfg.Channels)
	// Before any access every channel reports 0: no pending reservations.
	for c := 0; c < cfg.Channels; c++ {
		if got := m.NextBusFree(Loc{Channel: c}); got != 0 {
			t.Fatalf("pristine channel %d: NextBusFree = %d, want 0", c, got)
		}
	}
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		loc := Loc{Channel: int(rng.UintN(4)), Bank: int(rng.UintN(16)), Row: uint64(rng.UintN(32))}
		switch rng.UintN(4) {
		case 0:
			now += uint64(rng.UintN(500))
		case 1:
			if now > 200 {
				now -= uint64(rng.UintN(200))
			}
		}
		done := m.Access(now, loc, rng.UintN(4) == 0, 80)
		if done > maxDone[loc.Channel] {
			maxDone[loc.Channel] = done
		}
		for c := 0; c < cfg.Channels; c++ {
			if got := m.NextBusFree(Loc{Channel: c}); got != maxDone[c] {
				t.Fatalf("step %d: NextBusFree(ch%d) = %d, want %d (running max of Access returns)",
					i, c, got, maxDone[c])
			}
		}
	}
}

// mirrorQueue replicates Access's queue drain logic observably: the
// same pops on full-queue stalls and completed-entry drains, fed only
// by (now, done) pairs taken from Access calls.
type mirrorQueue struct {
	depth int
	fifo  []uint64
}

// access mirrors one Access(now)->done on the queue: a full queue pops
// its FIFO head (the stalled-entry drain), otherwise completed entries
// drain from the head.
func (q *mirrorQueue) access(now, done uint64) {
	if len(q.fifo) == q.depth {
		q.fifo = q.fifo[1:]
	} else {
		for len(q.fifo) > 0 && q.fifo[0] <= now {
			q.fifo = q.fifo[1:]
		}
	}
	q.fifo = append(q.fifo, done)
}

// next returns the minimum pending completion.
func (q *mirrorQueue) next() (uint64, bool) {
	if len(q.fifo) == 0 {
		return 0, false
	}
	min := q.fifo[0]
	for _, d := range q.fifo[1:] {
		if d < min {
			min = d
		}
	}
	return min, true
}

// TestQuickNextCompletionMatchesMirror pins NextCompletion against the
// mirror FIFO over the same adversarial access stream, including the
// full-queue stall path (depth 8 forces it) and the empty case.
func TestQuickNextCompletionMatchesMirror(t *testing.T) {
	cfg := HBMConfig()
	cfg.QueueDepth = 8
	m := New(cfg)
	rng := rand.New(rand.NewPCG(99, 7))
	mirrors := make([]mirrorQueue, cfg.Channels)
	for c := range mirrors {
		mirrors[c].depth = cfg.QueueDepth
	}
	for c := 0; c < cfg.Channels; c++ {
		if _, ok := m.NextCompletion(Loc{Channel: c}); ok {
			t.Fatalf("pristine channel %d: NextCompletion reports a pending epoch", c)
		}
	}
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		loc := Loc{Channel: int(rng.UintN(4)), Bank: int(rng.UintN(16)), Row: uint64(rng.UintN(32))}
		switch rng.UintN(4) {
		case 0:
			now += uint64(rng.UintN(500))
		case 1:
			if now > 200 {
				now -= uint64(rng.UintN(200))
			}
		}
		done := m.Access(now, loc, rng.UintN(4) == 0, 80)
		mirrors[loc.Channel].access(now, done)
		for c := 0; c < cfg.Channels; c++ {
			want, wantOK := mirrors[c].next()
			got, gotOK := m.NextCompletion(Loc{Channel: c})
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("step %d: NextCompletion(ch%d) = (%d,%v), want (%d,%v)",
					i, c, got, gotOK, want, wantOK)
			}
		}
	}
}

// TestNextBusFreeDominatesCompletions pins the relationship between the
// two ready-times an event scheduler composes: every pending completion
// is a bus transfer, so the next in-flight completion can never lie
// past the bus-free epoch.
func TestNextBusFreeDominatesCompletions(t *testing.T) {
	cfg := HBMConfig()
	cfg.QueueDepth = 8
	m := New(cfg)
	rng := rand.New(rand.NewPCG(3, 21))
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		loc := Loc{Channel: int(rng.UintN(4)), Bank: int(rng.UintN(16)), Row: uint64(rng.UintN(32))}
		now += uint64(rng.UintN(200))
		m.Access(now, loc, false, 80)
		for c := 0; c < cfg.Channels; c++ {
			cloc := Loc{Channel: c}
			if next, ok := m.NextCompletion(cloc); ok {
				if free := m.NextBusFree(cloc); next > free {
					t.Fatalf("step %d: ch%d NextCompletion %d past NextBusFree %d",
						i, c, next, free)
				}
			}
		}
	}
}
