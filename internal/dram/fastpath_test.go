package dram

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// refChannel is the pre-fast-path bus scheduler: an append/copy slice
// scanned linearly from the start on every reservation. It is kept here
// verbatim as the executable specification that the ring implementation
// must match reservation-for-reservation — the experiment goldens were
// produced by this code.
type refChannel struct {
	busy []span
}

func (ch *refChannel) reserveBus(earliest, dur uint64) uint64 {
	s := earliest
	insertAt := len(ch.busy)
	for i, b := range ch.busy {
		if b.end <= s {
			continue
		}
		if b.start >= s+dur {
			insertAt = i
			break
		}
		s = b.end
	}
	if insertAt == len(ch.busy) {
		ch.busy = append(ch.busy, span{s, s + dur})
	} else {
		ch.busy = append(ch.busy, span{})
		copy(ch.busy[insertAt+1:], ch.busy[insertAt:])
		ch.busy[insertAt] = span{s, s + dur}
	}
	if len(ch.busy) > busWindow {
		ch.busy = ch.busy[len(ch.busy)-busWindow:]
	}
	return s
}

// Property: the ring scheduler returns the same start time as the
// reference for every reservation of an arbitrary stream AND retains an
// identical busy window afterwards — bit-exactness of every golden
// depends on this.
func TestQuickReserveBusMatchesReference(t *testing.T) {
	f := func(times []uint16, durs []uint8, jumps []uint32) bool {
		ch := &channel{}
		ref := &refChannel{}
		base := uint64(0)
		for i, tr := range times {
			dur := uint64(1)
			if i < len(durs) {
				dur += uint64(durs[i]) % 24
			}
			// Occasional large forward jumps exercise the append fast
			// path; small offsets exercise gap filling and the full-window
			// insert/trim edge cases.
			if i < len(jumps) && jumps[i]%7 == 0 {
				base += uint64(jumps[i] % 100_000)
			}
			earliest := base + uint64(tr)
			if ch.reserveBus(earliest, dur) != ref.reserveBus(earliest, dur) {
				return false
			}
		}
		if ch.busyLen != len(ref.busy) {
			return false
		}
		for i := range ref.busy {
			if ch.busAt(i) != ref.busy[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestReserveBusFullWindowEdge pins the bounded-history edge case: with
// a full 64-entry window, a reservation that would insert at position 0
// gets its start time honored but is immediately trimmed out of the
// retained history (oldest of 65). The ring must reproduce that, not
// "fix" it.
func TestReserveBusFullWindowEdge(t *testing.T) {
	ch := &channel{}
	ref := &refChannel{}
	// Fill the window with spans [100,110), [200,210), ... leaving gaps.
	for i := 1; i <= busWindow; i++ {
		at := uint64(i * 100)
		ch.reserveBus(at, 10)
		ref.reserveBus(at, 10)
	}
	if ch.busyLen != busWindow {
		t.Fatalf("window len = %d, want %d", ch.busyLen, busWindow)
	}
	// An early reservation fits in the gap before the oldest span.
	got, want := ch.reserveBus(5, 10), ref.reserveBus(5, 10)
	if got != want || got != 5 {
		t.Fatalf("early start = %d, ref = %d, want 5", got, want)
	}
	if ch.busyLen != len(ref.busy) {
		t.Fatalf("window len = %d, ref = %d", ch.busyLen, len(ref.busy))
	}
	for i := range ref.busy {
		if ch.busAt(i) != ref.busy[i] {
			t.Fatalf("window[%d] = %+v, ref %+v", i, ch.busAt(i), ref.busy[i])
		}
	}
	// The trimmed-away span must NOT appear: the retained oldest is still
	// the original [100,110).
	if first := ch.busAt(0); first.start != 100 {
		t.Fatalf("oldest retained span starts at %d, want 100", first.start)
	}
}

// refInFlight is the pre-fast-path query: a modulo scan over the whole
// queue ring.
func refInFlight(ch *channel, now uint64) int {
	n := 0
	for i := 0; i < ch.count; i++ {
		if ch.queue[(ch.head+i)%len(ch.queue)] > now {
			n++
		}
	}
	return n
}

// Property: InFlight and InFlightTotal match the reference scan at
// arbitrary probe times — including times older than queued completions
// (the MLP-window replays that make a purely maintained counter
// impossible) — throughout a random access stream.
func TestQuickInFlightMatchesReference(t *testing.T) {
	cfg := HBMConfig()
	cfg.QueueDepth = 8 // small depth: exercises full-queue pops and wrap
	m := New(cfg)
	rng := rand.New(rand.NewPCG(7, 11))
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		loc := Loc{Channel: int(rng.UintN(4)), Bank: int(rng.UintN(16)), Row: uint64(rng.UintN(32))}
		// Non-monotone issue times: jump forward, occasionally replay an
		// earlier cycle the way the MLP window and far-future DDR fills do.
		switch rng.UintN(4) {
		case 0:
			now += uint64(rng.UintN(500))
		case 1:
			if now > 200 {
				now -= uint64(rng.UintN(200))
			}
		}
		m.Access(now, loc, rng.UintN(4) == 0, 80)
		probe := now
		if rng.UintN(2) == 0 {
			probe += uint64(rng.UintN(2000))
		}
		wantTotal := 0
		for c := range m.channels {
			ch := &m.channels[c]
			want := refInFlight(ch, probe)
			wantTotal += want
			if got := m.InFlight(probe, Loc{Channel: c}); got != want {
				t.Fatalf("step %d: InFlight(ch%d, %d) = %d, want %d", i, c, probe, got, want)
			}
		}
		if got := m.InFlightTotal(probe); got != wantTotal {
			t.Fatalf("step %d: InFlightTotal(%d) = %d, want %d", i, probe, got, wantTotal)
		}
	}
}

// BenchmarkReserveBus measures the scheduler under a saturated bus: the
// window is always full, so the pre-fast-path code rescanned all 64
// spans while the ring appends or binary-searches.
func BenchmarkReserveBus(b *testing.B) {
	for _, mode := range []string{"append", "gapfill"} {
		b.Run(mode, func(b *testing.B) {
			ch := &channel{}
			now := uint64(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if mode == "append" {
					now += 10
					ch.reserveBus(now, 10)
				} else {
					// Alternate far/near so half the calls land amid the
					// retained history.
					if i%2 == 0 {
						now += 40
						ch.reserveBus(now+1000, 10)
					} else {
						ch.reserveBus(now, 10)
					}
				}
			}
		})
	}
}

// BenchmarkInFlight shows the query no longer scales with queue depth:
// the loaded-channel probe answers from the min-deque front in O(1)
// regardless of how many completions are queued.
func BenchmarkInFlight(b *testing.B) {
	for _, depth := range []int{96, 384, 1536} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := HBMConfig()
			cfg.QueueDepth = depth
			m := New(cfg)
			loc := Loc{Channel: 0, Bank: 0, Row: 1}
			// Fill the queue with incomplete requests, all issued at 0.
			for i := 0; i < depth; i++ {
				m.Access(0, loc, false, 80)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InFlight(0, loc)
			}
		})
	}
}

// BenchmarkInFlightTotal is the per-epoch metrics gauge: previously
// O(channels x queue) per epoch, now a per-channel O(1) sum.
func BenchmarkInFlightTotal(b *testing.B) {
	for _, depth := range []int{96, 384, 1536} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := HBMConfig()
			cfg.QueueDepth = depth
			m := New(cfg)
			for c := 0; c < cfg.Channels; c++ {
				for i := 0; i < depth; i++ {
					m.Access(0, Loc{Channel: c, Bank: 0, Row: 1}, false, 80)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InFlightTotal(0)
			}
		})
	}
}
