package commitlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// collect opens the log at path and returns the replayed payloads as
// strings alongside the replay summary.
func collect(t *testing.T, path string, opt Options) (*Log, []string, Replay) {
	t.Helper()
	var got []string
	l, rep, err := Open(path, opt, func(payload []byte) bool {
		got = append(got, string(payload))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got, rep
}

// Appended payloads replay intact, in file order, across close/reopen.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"a":1}`, `{"b":2}`, `{"c":3}`}
	for _, p := range want {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != 3 {
		t.Fatalf("Appends = %d, want 3", st.Appends)
	}
	if st.Syncs == 0 || st.Syncs > 3 {
		t.Fatalf("Syncs = %d, want 1..3", st.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got, rep := collect(t, path, Options{})
	defer l2.Close()
	if rep.TruncatedBytes != 0 || rep.Records != 3 {
		t.Fatalf("replay = %+v", rep)
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

// A torn final line (SIGKILL mid-append) is dropped and physically
// truncated; appends afterwards extend a valid file.
func TestTornTailTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"to`)
	f.Close()

	l2, got, rep := collect(t, path, Options{})
	if rep.TruncatedBytes == 0 || rep.Records != 1 || len(got) != 1 {
		t.Fatalf("torn replay = %+v, %v", rep, got)
	}
	if err := l2.Append([]byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, got3, rep3 := collect(t, path, Options{})
	defer l3.Close()
	if rep3.TruncatedBytes != 0 || len(got3) != 2 {
		t.Fatalf("post-truncation replay = %+v, %v", rep3, got3)
	}
}

// A CRC-corrupt line mid-file — or a CRC-valid payload the caller's
// apply rejects — ends the trusted prefix.
func TestCorruptAndRejectedLinesEndPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(fmt.Appendf(nil, `{"i":%d}`, i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x01
	if err := os.WriteFile(path, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got, rep := collect(t, path, Options{})
	l2.Close()
	if len(got) != 1 || rep.TruncatedBytes == 0 {
		t.Fatalf("corrupt-middle replay kept %v (%+v)", got, rep)
	}

	// Rebuild a clean 3-record file, then reject the second payload
	// from apply: same longest-valid-prefix outcome.
	os.Remove(path)
	l3, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l3.Append(fmt.Appendf(nil, `{"i":%d}`, i)); err != nil {
			t.Fatal(err)
		}
	}
	l3.Close()
	n := 0
	l4, rep4, err := Open(path, Options{}, func(payload []byte) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l4.Close()
	if rep4.Records != 1 || rep4.TruncatedBytes == 0 {
		t.Fatalf("apply-rejection replay = %+v", rep4)
	}
}

// slowFile injects a fixed Sync latency so concurrent appends
// provably pile into shared batches regardless of machine speed.
type slowFile struct {
	f     *os.File
	delay time.Duration
}

func (s *slowFile) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *slowFile) Sync() error {
	time.Sleep(s.delay)
	return s.f.Sync()
}
func (s *slowFile) Close() error { return s.f.Close() }

// The group-commit bar: 64 concurrent appenders against a slow sync
// must be acknowledged with far fewer syncs than appends, every
// record durable and replayable, per-goroutine enqueue order
// preserved in the file.
func TestGroupCommitAmortizesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l := newWithFile(&slowFile{f: f, delay: 2 * time.Millisecond}, Options{})
	const workers, per = 64, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(fmt.Appendf(nil, `{"w":%d,"i":%d}`, w, i)); err != nil {
					t.Errorf("append w%d i%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != workers*per {
		t.Fatalf("Appends = %d, want %d", st.Appends, workers*per)
	}
	if st.Syncs >= st.Appends/2 {
		t.Fatalf("group commit did not amortize: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if st.MaxBatchRecords < 2 {
		t.Fatalf("MaxBatchRecords = %d, want >= 2", st.MaxBatchRecords)
	}
	var hist uint64
	for _, n := range st.BatchHist {
		hist += n
	}
	if hist != st.Syncs {
		t.Fatalf("batch histogram holds %d batches for %d syncs", hist, st.Syncs)
	}

	// Replay: all records present, each goroutine's order preserved.
	seen := map[int]int{} // worker -> next expected i
	_, rep, err := Open(path, Options{}, func(payload []byte) bool {
		var w, i int
		if _, err := fmt.Sscanf(string(payload), `{"w":%d,"i":%d}`, &w, &i); err != nil {
			t.Fatalf("bad payload %q", payload)
		}
		if i != seen[w] {
			t.Fatalf("worker %d record %d arrived out of order (want %d)", w, i, seen[w])
		}
		seen[w]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != workers*per || rep.TruncatedBytes != 0 {
		t.Fatalf("replay = %+v", rep)
	}
}

// failFile fails Sync from the Nth call on, and optionally fails
// Close, to exercise the no-false-acks and joined-error contracts.
type failFile struct {
	mu        sync.Mutex
	syncs     int
	failFrom  int // 1-based sync call index that starts failing (0 = never)
	failClose bool
}

var errSyncBroken = errors.New("injected sync failure")
var errCloseBroken = errors.New("injected close failure")

func (f *failFile) Write(p []byte) (int, error) { return len(p), nil }
func (f *failFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failFrom > 0 && f.syncs >= f.failFrom {
		return errSyncBroken
	}
	return nil
}
func (f *failFile) Close() error {
	if f.failClose {
		return errCloseBroken
	}
	return nil
}

// A failed sync must fail every waiter in its batch — durability is
// never acknowledged off the back of a failed fsync — and the log
// goes sticky-broken so later appends fail fast.
func TestSyncFailureFailsWholeBatch(t *testing.T) {
	ff := &failFile{failFrom: 1}
	l := newWithFile(ff, Options{})
	const n = 16
	// Enqueue the whole batch before any Wait: with the committer
	// blocked behind the enqueues' wake signal, all n records land in
	// one or few batches, every one of which must fail.
	tickets := make([]Ticket, n)
	for i := range tickets {
		tickets[i] = l.Enqueue(fmt.Appendf(nil, `{"i":%d}`, i))
	}
	for i, tk := range tickets {
		if err := tk.Wait(); !errors.Is(err, errSyncBroken) {
			t.Fatalf("waiter %d: %v, want injected sync failure", i, err)
		}
	}
	if err := l.Append([]byte(`{"late":1}`)); !errors.Is(err, errSyncBroken) {
		t.Fatalf("append after sync failure: %v, want fail-fast with the original error", err)
	}
	if st := l.Stats(); st.Appends != 0 {
		t.Fatalf("%d appends acknowledged past a failed sync", st.Appends)
	}
	l.Close()
}

// Close must report BOTH a failed sync and a failed close, joined —
// the close error used to be discarded.
func TestCloseJoinsSyncAndCloseErrors(t *testing.T) {
	l := newWithFile(&failFile{failFrom: 1, failClose: true}, Options{})
	err := l.Close()
	if !errors.Is(err, errSyncBroken) {
		t.Fatalf("Close() = %v, want the sync error reported", err)
	}
	if !errors.Is(err, errCloseBroken) {
		t.Fatalf("Close() = %v, want the close error reported too", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close() = %v, want nil no-op", err)
	}
}

// NoGroupCommit is the reference discipline: one sync per append.
func TestNoGroupCommitSyncsEveryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := Open(path, Options{NoGroupCommit: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(fmt.Appendf(nil, `{"i":%d}`, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != 5 || st.Syncs != 5 || st.MaxBatchRecords != 1 {
		t.Fatalf("reference mode stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, rep := collect(t, path, Options{})
	if len(got) != 5 || rep.TruncatedBytes != 0 {
		t.Fatalf("replay = %v, %+v", got, rep)
	}
}

// MaxLinger holds the committer for batch-mates: two enqueues inside
// the window share one sync.
func TestLingerGathersBatchMates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := Open(path, Options{MaxLinger: 50 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1 := l.Enqueue([]byte(`{"a":1}`))
	t2 := l.Enqueue([]byte(`{"b":2}`))
	if err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 2 || st.Syncs > 2 {
		t.Fatalf("linger stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// Appends racing Close either complete durably or fail with ErrClosed
// — never hang, never get a false ack.
func TestCloseDrainsPendingBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]Ticket, 8)
	for i := range tickets {
		tickets[i] = l.Enqueue(fmt.Appendf(nil, `{"i":%d}`, i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i, tk := range tickets {
		err := tk.Wait()
		if err == nil {
			acked++
		} else if !errors.Is(err, ErrClosed) {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	_, got, _ := collect(t, path, Options{})
	if len(got) != acked {
		t.Fatalf("%d records on disk, %d acknowledged", len(got), acked)
	}
	if err := l.Append([]byte(`{"late":1}`)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}
