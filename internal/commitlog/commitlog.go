// Package commitlog is the shared crash-safe append-only log under
// the daemon job journal (internal/serve) and the sweep results log
// (internal/dse): one CRC-32C framed JSON record per line, replayed
// to the longest valid prefix with the torn tail truncated away.
//
// What it adds over the fsync-per-append logs it replaced is group
// commit — the same amortization DICE applies to cache bandwidth
// (batch small operations into one larger transfer), applied to
// durability. Appenders do not sync the file themselves: they enqueue
// a framed record and block on a commit ticket while a single
// committer goroutine drains everything queued, issues ONE write and
// ONE fsync for the whole batch, and then releases every ticket. N
// concurrent appenders therefore pay ~1 fsync instead of N, and the
// durability contract is unchanged: an acknowledged append has always
// been fsynced (the ticket resolves only after the Sync covering its
// record returns), and a failed sync fails every waiter in its batch
// — no record is ever acknowledged off the back of a failed sync.
//
// File order equals enqueue order, so callers that need record A
// durable-before-B in the file simply enqueue A before B (the
// enqueue itself is cheap and non-blocking; only Wait blocks).
//
// After a sync failure the log is broken: the kernel may have dropped
// the unwritten pages, so the tail state on disk is unknowable and
// every later append fails fast with the original error rather than
// pretending durability. Replay on the next open recovers the longest
// valid prefix, exactly as after a crash.
package commitlog

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// crcTable is the Castagnoli table shared by every framed line (the
// same polynomial the compressed-line checksums use).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends issued after Close.
var ErrClosed = errors.New("commitlog: log is closed")

// Options are the group-commit tunables. The zero value is the
// recommended configuration: commit as soon as the committer is free,
// so a lone appender pays one uncontended fsync and concurrent
// appenders batch naturally behind the sync in progress.
type Options struct {
	// MaxBatchBytes bounds how many framed bytes one commit batch may
	// accumulate before the committer is forced to flush regardless of
	// linger (default 1 MiB). Larger batches amortize further; the
	// bound keeps a flood's commit units — and the write the kernel
	// must sync — from growing without limit.
	MaxBatchBytes int
	// MaxLinger is how long the committer waits after the first
	// enqueue of a batch for more appenders to join it (default 0:
	// never wait — batching comes only from appends arriving while a
	// sync is in flight, which keeps the uncontended append latency at
	// exactly one fsync). A small positive linger trades that latency
	// for bigger batches on bursty workloads.
	MaxLinger time.Duration
	// NoGroupCommit selects the pre-batching reference behavior: every
	// append performs its own write+fsync under a mutex, exactly the
	// fsync-per-append discipline this package replaced. It exists for
	// A/B measurement (cmd/perfbench, the bench-smoke regression
	// guard), not production use.
	NoGroupCommit bool
}

// withDefaults resolves zero fields to their documented defaults.
func (o Options) withDefaults() Options {
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	return o
}

// syncFile is the slice of *os.File the committer needs; tests inject
// failing implementations through newWithFile.
type syncFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Stats are the log's monotone group-commit counters; see METRICS.md
// "Commit-log counters".
type Stats struct {
	// Appends counts records durably acknowledged (ticket resolved nil).
	Appends uint64 `json:"appends"`
	// Syncs counts fsync calls issued. Appends/Syncs is the
	// amortization factor group commit achieved.
	Syncs uint64 `json:"syncs"`
	// BytesWritten counts framed bytes durably written.
	BytesWritten uint64 `json:"bytes_written"`
	// MaxBatchRecords is the largest number of records one sync covered.
	MaxBatchRecords int `json:"max_batch_records"`
	// BatchHist is the committed-batch size distribution: bucket i
	// counts batches of [2^i, 2^(i+1)) records (1, 2-3, 4-7, ... ,
	// 128+ in the last bucket).
	BatchHist [8]uint64 `json:"batch_hist"`
}

// observeBatch folds one committed batch into the counters.
func (s *Stats) observeBatch(records, bytes int) {
	s.Appends += uint64(records)
	s.Syncs++
	s.BytesWritten += uint64(bytes)
	if records > s.MaxBatchRecords {
		s.MaxBatchRecords = records
	}
	b := 0
	for n := records; n > 1 && b < len(s.BatchHist)-1; n >>= 1 {
		b++
	}
	s.BatchHist[b]++
}

// Ticket is one enqueued record's claim on a future commit. Wait
// blocks until the sync covering the record returns and reports its
// outcome. The zero Ticket is resolved-nil (used by no-op appends on
// nil logs).
type Ticket struct {
	ch  chan error
	err error
}

// Wait blocks until the record's commit batch has been synced,
// returning nil only if the record is durable on disk.
func (t Ticket) Wait() error {
	if t.ch == nil {
		return t.err
	}
	return <-t.ch
}

// Resolved returns an already-resolved Ticket carrying err. Callers
// layering their own encoding above Enqueue use it to surface a
// marshal failure through the same Ticket path as a real append.
func Resolved(err error) Ticket { return Ticket{err: err} }

// Log is the append handle. Safe for concurrent use.
type Log struct {
	opt Options

	mu      sync.Mutex
	f       syncFile
	pending []byte       // framed records awaiting the next commit
	spare   []byte       // recycled batch buffer
	waiters []chan error // one per pending record, enqueue order
	records int
	closed  bool
	broken  error // sticky first sync/write failure
	stats   Stats

	wake chan struct{} // buffered(1): pending work for the committer
	full chan struct{} // buffered(1): MaxBatchBytes reached, stop lingering
	quit chan struct{}
	done chan struct{} // committer exited
}

// Replay summarizes what Open recovered from an existing file.
type Replay struct {
	// Records counts valid framed lines replayed.
	Records int
	// TruncatedBytes counts bytes dropped as a torn or corrupt tail
	// (0 for a cleanly closed log).
	TruncatedBytes int64
}

// Open opens (creating if absent) the log at path, replays its valid
// prefix — calling apply once per CRC-valid payload, in file order —
// truncates any torn tail, and returns the handle positioned for
// appending. apply returns false to reject a payload it cannot
// decode: the line and everything after it are treated as the torn
// tail, mirroring a CRC mismatch. A nil apply accepts every valid
// frame.
func Open(path string, opt Options, apply func(payload []byte) bool) (*Log, Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Replay{}, fmt.Errorf("commitlog: %w", err)
	}
	rep, validLen, err := scan(f, apply)
	if err != nil {
		f.Close()
		return nil, Replay{}, err
	}
	if fi, serr := f.Stat(); serr == nil && fi.Size() > validLen {
		rep.TruncatedBytes = fi.Size() - validLen
		if terr := f.Truncate(validLen); terr != nil {
			f.Close()
			return nil, Replay{}, fmt.Errorf("commitlog: truncating torn tail: %w", terr)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, Replay{}, fmt.Errorf("commitlog: %w", err)
	}
	return newWithFile(f, opt), rep, nil
}

// newWithFile builds a running Log over an already-positioned file;
// the exported path in is Open, tests inject failing files here.
func newWithFile(f syncFile, opt Options) *Log {
	l := &Log{
		f:    f,
		opt:  opt.withDefaults(),
		wake: make(chan struct{}, 1),
		full: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	if !l.opt.NoGroupCommit {
		l.done = make(chan struct{})
		go l.commitLoop()
	}
	return l
}

// scan reads the file from the start, returning the replay summary
// and the byte length of the valid prefix. Scanning stops — without
// error — at the first line that is torn (no trailing newline),
// CRC-mismatched, or rejected by apply.
func scan(f *os.File, apply func([]byte) bool) (Replay, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return Replay{}, 0, fmt.Errorf("commitlog: %w", err)
	}
	var (
		rep      Replay
		validLen int64
		r        = bufio.NewReaderSize(f, 1<<16)
	)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				break // a partial trailing line is a torn tail — drop it
			}
			return Replay{}, 0, fmt.Errorf("commitlog: %w", err)
		}
		payload, ok := ParseFrame(line[:len(line)-1])
		if !ok {
			break
		}
		if apply != nil && !apply(payload) {
			break
		}
		validLen += int64(len(line))
		rep.Records++
	}
	return rep, validLen, nil
}

// Frame wraps a JSON payload in the shared "crc8hex space json\n"
// line framing (CRC-32C over the payload) used by the journal, the
// results log, and the job stream wire format.
func Frame(payload []byte) []byte {
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	return append(line, '\n')
}

// ParseFrame validates one framed line (without its trailing newline)
// and returns the payload; ok is false on any framing or checksum
// violation — the reader's signal that the trusted prefix ends here.
func ParseFrame(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, false
	}
	return payload, true
}

// Append frames payload, commits it with whatever batch-mates are
// queued, and returns once the covering fsync has succeeded — the
// blocking form of Enqueue followed by Wait.
func (l *Log) Append(payload []byte) error {
	return l.Enqueue(payload).Wait()
}

// Enqueue frames payload and stakes its place in file order, returning
// a Ticket that resolves when the batch containing it has been synced.
// Enqueue itself never blocks on I/O (NoGroupCommit mode excepted),
// so callers may enqueue under locks that must not wait out an fsync
// and Wait after releasing them.
func (l *Log) Enqueue(payload []byte) Ticket {
	line := Frame(payload)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Ticket{err: ErrClosed}
	}
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return Ticket{err: err}
	}
	if l.opt.NoGroupCommit {
		// Reference mode: the old discipline, one write+fsync per
		// record under the lock.
		var err error
		if _, err = l.f.Write(line); err == nil {
			err = l.f.Sync()
		}
		if err != nil {
			l.broken = err
		} else {
			l.stats.observeBatch(1, len(line))
		}
		l.mu.Unlock()
		return Ticket{err: err}
	}
	l.pending = append(l.pending, line...)
	l.records++
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, ch)
	notifyFull := len(l.pending) >= l.opt.MaxBatchBytes
	l.mu.Unlock()

	select {
	case l.wake <- struct{}{}:
	default:
	}
	if notifyFull {
		select {
		case l.full <- struct{}{}:
		default:
		}
	}
	return Ticket{ch: ch}
}

// commitLoop is the committer goroutine: it sleeps until records are
// pending, optionally lingers for batch-mates, then commits the whole
// queue with one write and one fsync.
func (l *Log) commitLoop() {
	defer close(l.done)
	for {
		select {
		case <-l.wake:
		case <-l.quit:
			l.commit() // drain whatever Close raced in
			return
		}
		if l.opt.MaxLinger > 0 {
			t := time.NewTimer(l.opt.MaxLinger)
			select {
			case <-t.C:
			case <-l.full:
			case <-l.quit:
			}
			t.Stop()
		}
		l.commit()
	}
}

// commit takes the pending batch, writes and syncs it, and resolves
// every ticket in it with the outcome. A write or sync failure marks
// the log broken and fails the entire batch — durability is never
// acknowledged past a failed sync.
func (l *Log) commit() {
	l.mu.Lock()
	if l.records == 0 {
		l.mu.Unlock()
		return
	}
	batch, waiters, n := l.pending, l.waiters, l.records
	l.pending, l.spare = l.spare[:0], batch
	l.waiters = nil
	l.records = 0
	broken := l.broken
	l.mu.Unlock()

	err := broken
	if err == nil {
		if _, werr := l.f.Write(batch); werr != nil {
			err = fmt.Errorf("commitlog: %w", werr)
		} else if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("commitlog: sync: %w", serr)
		}
	}
	l.mu.Lock()
	if err != nil {
		if l.broken == nil {
			l.broken = err
		}
	} else {
		l.stats.observeBatch(n, len(batch))
	}
	l.mu.Unlock()
	for _, ch := range waiters {
		ch <- err
	}
}

// Stats snapshots the group-commit counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close drains the pending batch, stops the committer, syncs, and
// closes the file. Both the sync and the close error are reported
// (joined) — a failed sync no longer swallows the close outcome.
// Closing twice is a no-op.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	broken := l.broken
	l.mu.Unlock()

	if l.done != nil {
		close(l.quit)
		<-l.done
	}
	var syncErr error
	if broken == nil {
		// The final defensive sync; the committer already synced every
		// acknowledged record.
		syncErr = l.f.Sync()
		if syncErr != nil {
			syncErr = fmt.Errorf("commitlog: sync: %w", syncErr)
		}
	}
	closeErr := l.f.Close()
	if closeErr != nil {
		closeErr = fmt.Errorf("commitlog: close: %w", closeErr)
	}
	return errors.Join(syncErr, closeErr)
}
