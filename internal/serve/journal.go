package serve

import (
	"encoding/json"
	"fmt"
	"sort"

	"dice/internal/commitlog"
)

// The journal is the daemon's crash-safety backbone: an append-only
// file of one JSON record per line, each prefixed with its CRC-32C
// (the same Castagnoli polynomial the compressed-line checksums use).
// Every job writes at most three records — submit (with the full
// spec), start, finish (with the final state and output) — so the
// file replays into the exact job table at the moment of the crash: a
// submit without a finish is a job the crash interrupted, and the
// daemon re-enqueues it in sequence order.
//
// Durability and framing live in internal/commitlog, which group-
// commits appends: concurrent submits enqueue records and share one
// write+fsync, so N simultaneous submits pay ~1 sync instead of N. An
// acknowledged record has still always been fsynced, and torn writes
// are still expected (SIGKILL can land mid-append): replay accepts
// the longest valid prefix and truncates the rest before the daemon
// appends again. A mismatched CRC therefore never poisons the file;
// it just marks where the crash cut it.

// record is one journal line. T is "submit", "start", or "finish";
// the other fields are populated per type (Spec on submit; State,
// Output and Error on finish).
type record struct {
	T      string   `json:"t"`
	ID     string   `json:"id"`
	Seq    uint64   `json:"seq,omitempty"`
	Spec   *JobSpec `json:"spec,omitempty"`
	State  JobState `json:"state,omitempty"`
	Output string   `json:"output,omitempty"`
	Error  string   `json:"error,omitempty"`
}

// Journal is the append handle over the shared commit log. Safe for
// concurrent use; file order equals enqueue order, so a caller that
// enqueues a submit record before a start record gets them in that
// order on disk.
type Journal struct {
	log *commitlog.Log
}

// Replay is what a journal file parses back into: the job table in
// submission order, the next unused sequence number, and how many
// bytes of torn tail were discarded.
type Replay struct {
	// Jobs holds one entry per valid submit record, in sequence order.
	Jobs []ReplayJob
	// NextSeq is one past the highest sequence number seen.
	NextSeq uint64
	// TruncatedBytes counts journal bytes dropped as a torn or
	// corrupt tail (0 for a cleanly closed journal).
	TruncatedBytes int64
}

// ReplayJob is one job reconstructed from the journal.
type ReplayJob struct {
	// ID identifies the job as originally assigned.
	ID string
	// Seq is the job's original journal sequence number.
	Seq uint64
	// Spec is the job's submitted spec.
	Spec JobSpec
	// Started reports whether a start record was journaled (the crash
	// caught the job mid-run rather than still queued).
	Started bool
	// Finished reports whether a finish record was journaled; when
	// true State/Output/Error carry the final status and the job is
	// NOT re-run on restart.
	Finished bool
	// State mirrors the finish record's terminal state.
	State JobState
	// Output mirrors the finish record's report bytes.
	Output string
	// Error mirrors the finish record's failure message.
	Error string
}

// Unfinished reports whether the job needs re-running after a restart.
func (rj ReplayJob) Unfinished() bool { return !rj.Finished }

// OpenJournal opens the journal at path with default group-commit
// options; see OpenJournalWith.
func OpenJournal(path string) (*Journal, *Replay, error) {
	return OpenJournalWith(path, commitlog.Options{})
}

// OpenJournalWith opens (creating if absent) the journal at path,
// replays its valid prefix, truncates any torn tail, and returns the
// handle positioned for appending plus the replayed job table. opt
// carries the group-commit tunables (Config.JournalBatchBytes etc.).
func OpenJournalWith(path string, opt commitlog.Options) (*Journal, *Replay, error) {
	var (
		jobs []*ReplayJob
		byID = map[string]*ReplayJob{}
		rep  = &Replay{NextSeq: 1}
	)
	l, crep, err := commitlog.Open(path, opt, func(payload []byte) bool {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return false
		}
		jobs = applyRecord(rep, jobs, byID, rec)
		return true
	})
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	rep.TruncatedBytes = crep.TruncatedBytes
	// Order by sequence for deterministic re-enqueue (records are
	// already appended in order; the sort makes it an invariant).
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Seq < jobs[j].Seq })
	rep.Jobs = make([]ReplayJob, len(jobs))
	for i, j := range jobs {
		rep.Jobs[i] = *j
	}
	return &Journal{log: l}, rep, nil
}

// applyRecord folds one valid record into the replay state. Records
// referencing unknown jobs (possible only if a submit was lost to a
// truncated prefix, which cannot happen in an append-only file) are
// ignored rather than fatal.
func applyRecord(rep *Replay, jobs []*ReplayJob, byID map[string]*ReplayJob, rec record) []*ReplayJob {
	switch rec.T {
	case "submit":
		if rec.Spec == nil || rec.ID == "" {
			return jobs
		}
		j := &ReplayJob{ID: rec.ID, Seq: rec.Seq, Spec: *rec.Spec, State: StateQueued}
		jobs = append(jobs, j)
		byID[rec.ID] = j
		if rec.Seq >= rep.NextSeq {
			rep.NextSeq = rec.Seq + 1
		}
	case "start":
		if j := byID[rec.ID]; j != nil {
			j.Started = true
			j.State = StateRunning
		}
	case "finish":
		if j := byID[rec.ID]; j != nil {
			j.Finished = true
			j.State = rec.State
			j.Output = rec.Output
			j.Error = rec.Error
		}
	}
	return jobs
}

// enqueue stakes one record's place in journal file order and returns
// its commit ticket; the caller Waits after releasing any locks the
// fsync must not be held under. A nil journal (daemon running without
// persistence) returns a resolved no-op ticket.
func (j *Journal) enqueue(rec record) commitlog.Ticket {
	if j == nil {
		return commitlog.Ticket{}
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return commitlog.Resolved(fmt.Errorf("serve: journal: %w", err))
	}
	return j.log.Enqueue(payload)
}

// append journals one record and blocks until it is durable (enqueue
// + wait). A nil journal is a no-op.
func (j *Journal) append(rec record) error {
	return j.enqueue(rec).Wait()
}

// Stats snapshots the journal's group-commit counters; nil for a
// daemon running without persistence.
func (j *Journal) Stats() *commitlog.Stats {
	if j == nil {
		return nil
	}
	st := j.log.Stats()
	return &st
}

// Close drains pending appends, syncs, and closes the journal file,
// reporting both the sync and close outcomes (errors.Join). A nil
// journal is a no-op.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.log.Close(); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	return nil
}
