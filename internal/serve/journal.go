package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// The journal is the daemon's crash-safety backbone: an append-only
// file of one JSON record per line, each prefixed with its CRC-32C
// (the same Castagnoli polynomial the compressed-line checksums use),
// fsynced per append. Every job writes at most three records —
// submit (with the full spec), start, finish (with the final state
// and output) — so the file replays into the exact job table at the
// moment of the crash: a submit without a finish is a job the crash
// interrupted, and the daemon re-enqueues it in sequence order.
//
// Torn writes are expected (SIGKILL can land mid-append): replay
// accepts the longest valid prefix — records parse, CRCs match, the
// line is newline-terminated — and truncates the rest before the
// daemon appends again. A mismatched CRC therefore never poisons the
// file; it just marks where the crash cut it.

// crcTable is the Castagnoli table shared by every journal record.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one journal line. T is "submit", "start", or "finish";
// the other fields are populated per type (Spec on submit; State,
// Output and Error on finish).
type record struct {
	T      string   `json:"t"`
	ID     string   `json:"id"`
	Seq    uint64   `json:"seq,omitempty"`
	Spec   *JobSpec `json:"spec,omitempty"`
	State  JobState `json:"state,omitempty"`
	Output string   `json:"output,omitempty"`
	Error  string   `json:"error,omitempty"`
}

// Journal is the append handle. Safe for concurrent use; each append
// is one write + fsync under the lock, so records never interleave
// and an acknowledged record survives power loss.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Replay is what a journal file parses back into: the job table in
// submission order, the next unused sequence number, and how many
// bytes of torn tail were discarded.
type Replay struct {
	// Jobs holds one entry per valid submit record, in sequence order.
	Jobs []ReplayJob
	// NextSeq is one past the highest sequence number seen.
	NextSeq uint64
	// TruncatedBytes counts journal bytes dropped as a torn or
	// corrupt tail (0 for a cleanly closed journal).
	TruncatedBytes int64
}

// ReplayJob is one job reconstructed from the journal.
type ReplayJob struct {
	// ID identifies the job as originally assigned.
	ID string
	// Seq is the job's original journal sequence number.
	Seq uint64
	// Spec is the job's submitted spec.
	Spec JobSpec
	// Started reports whether a start record was journaled (the crash
	// caught the job mid-run rather than still queued).
	Started bool
	// Finished reports whether a finish record was journaled; when
	// true State/Output/Error carry the final status and the job is
	// NOT re-run on restart.
	Finished bool
	// State mirrors the finish record's terminal state.
	State JobState
	// Output mirrors the finish record's report bytes.
	Output string
	// Error mirrors the finish record's failure message.
	Error string
}

// Unfinished reports whether the job needs re-running after a restart.
func (rj ReplayJob) Unfinished() bool { return !rj.Finished }

// OpenJournal opens (creating if absent) the journal at path, replays
// its valid prefix, truncates any torn tail, and returns the handle
// positioned for appending plus the replayed job table.
func OpenJournal(path string) (*Journal, *Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	rep, validLen, err := replayFrom(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validLen {
		rep.TruncatedBytes = fi.Size() - validLen
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("serve: journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &Journal{f: f, path: path}, rep, nil
}

// replayFrom scans the journal from the start, returning the
// reconstructed job table and the byte length of the valid prefix.
// Scanning stops — without error — at the first record that is torn
// (no trailing newline), malformed, or CRC-mismatched; everything
// before it is trusted.
func replayFrom(f *os.File) (*Replay, int64, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	var (
		validLen int64
		jobs     []*ReplayJob
		byID     = map[string]*ReplayJob{}
		rep      = &Replay{NextSeq: 1}
		r        = bufio.NewReaderSize(f, 1<<16)
	)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				break // a partial trailing line is a torn tail — drop it
			}
			return nil, 0, fmt.Errorf("serve: journal: %w", err)
		}
		rec, ok := parseLine(line[:len(line)-1])
		if !ok {
			break
		}
		validLen += int64(len(line))
		jobs = applyRecord(rep, jobs, byID, rec)
	}
	// Order by sequence for deterministic re-enqueue (records are
	// already appended in order; the sort makes it an invariant).
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Seq < jobs[j].Seq })
	rep.Jobs = make([]ReplayJob, len(jobs))
	for i, j := range jobs {
		rep.Jobs[i] = *j
	}
	return rep, validLen, nil
}

// parseLine validates one "crc8hex space json" line (framing shared
// with the stream wire format — see stream.go's parseFrame).
func parseLine(line []byte) (record, bool) {
	payload, ok := parseFrame(line)
	if !ok {
		return record{}, false
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, false
	}
	return rec, true
}

// applyRecord folds one valid record into the replay state. Records
// referencing unknown jobs (possible only if a submit was lost to a
// truncated prefix, which cannot happen in an append-only file) are
// ignored rather than fatal.
func applyRecord(rep *Replay, jobs []*ReplayJob, byID map[string]*ReplayJob, rec record) []*ReplayJob {
	switch rec.T {
	case "submit":
		if rec.Spec == nil || rec.ID == "" {
			return jobs
		}
		j := &ReplayJob{ID: rec.ID, Seq: rec.Seq, Spec: *rec.Spec, State: StateQueued}
		jobs = append(jobs, j)
		byID[rec.ID] = j
		if rec.Seq >= rep.NextSeq {
			rep.NextSeq = rec.Seq + 1
		}
	case "start":
		if j := byID[rec.ID]; j != nil {
			j.Started = true
			j.State = StateRunning
		}
	case "finish":
		if j := byID[rec.ID]; j != nil {
			j.Finished = true
			j.State = rec.State
			j.Output = rec.Output
			j.Error = rec.Error
		}
	}
	return jobs
}

// append journals one record: marshal, CRC, write, fsync. A nil
// journal (daemon running without persistence) is a no-op.
func (j *Journal) append(rec record) error {
	if j == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	line := frameLine(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file. A nil journal is a no-op.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("serve: journal: %w", err)
	}
	return j.f.Close()
}
