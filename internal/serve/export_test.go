package serve

import "context"

// SetExecuteForTest swaps the daemon's job executor. Test-binary only:
// the soak (package serve_test) wraps the real executor with a gate on
// its prefill jobs so backpressure engages deterministically instead of
// racing job runtime against submission rate — the simulator is now
// fast enough that real prefill jobs can drain as quickly as the
// journal-fsync'd submissions arrive.
func SetExecuteForTest(d *Daemon, fn func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error)) {
	d.execute = fn
}
