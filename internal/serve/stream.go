package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dice/internal/commitlog"
	"dice/internal/obs"
)

// The streaming wire format: GET /jobs/{id}/stream answers NDJSON,
// one StreamEvent per line, framed exactly like the journal and the
// dse results log — "crc8hex space json", CRC-32C over the payload —
// so a reader can apply the same longest-valid-prefix discipline: a
// torn tail (connection cut mid-line) parses as "stop here and
// reconnect", never as corrupt data.
//
// Delivery contract. Events are ordered and numbered: the Offset of
// each event is its index in the job's event sequence, and a client
// reconnecting with ?offset=N&gen=G receives the suffix starting at N
// — provided G still names the sequence the daemon is serving. Every
// daemon process (and every post-restart synthesis of a finished
// job's stream) mints a fresh generation token, because a re-run
// job's cells may complete in a different order: offsets are only
// meaningful within one generation. On a generation mismatch the
// daemon streams from 0 and the client re-delivers; consumers
// deduplicate on the canonical cell key (see internal/dse), which the
// determinism contract makes safe — a re-delivered cell is
// byte-identical to the first delivery.
//
// Cell events and the final done event are replayed on reconnect (the
// daemon re-derives them from the journal after a crash). Epoch
// events are live telemetry: best-effort, bounded by StreamBufferCap,
// and not replayed for a job that finished in a previous process.

// StreamKind discriminates the event types on a job stream.
type StreamKind string

// The three stream event kinds: a completed cell's result, one epoch
// metrics snapshot, and the terminal marker that ends the stream.
const (
	StreamCell  StreamKind = "cell"
	StreamEpoch StreamKind = "epoch"
	StreamDone  StreamKind = "done"
)

// EpochEvent is one per-epoch metrics snapshot from a running
// simulation, tagged with the simulation's memoization key
// ("<config>|<workload>") so a multi-cell job's interleaved epochs
// remain attributable.
type EpochEvent struct {
	// Key is the simulation's memoization key.
	Key string `json:"key"`
	// Snap is the epoch snapshot (see METRICS.md for the schema).
	Snap obs.Snapshot `json:"snap"`
}

// StreamEvent is one line of a job's NDJSON stream. Exactly one of
// Cell and Epoch is set for the corresponding kinds; State and Error
// are set on the done event only.
type StreamEvent struct {
	// Kind is the event type (cell, epoch, or done).
	Kind StreamKind `json:"kind"`
	// Gen is the generation token of the sequence this event belongs
	// to; offsets are only comparable within one generation.
	Gen string `json:"gen"`
	// Offset is the event's index in its generation's sequence.
	Offset int `json:"offset"`
	// Cell carries a completed cell's result (kind "cell").
	Cell *CellResult `json:"cell,omitempty"`
	// Epoch carries one epoch metrics snapshot (kind "epoch").
	Epoch *EpochEvent `json:"epoch,omitempty"`
	// State is the job's terminal state (kind "done").
	State JobState `json:"state,omitempty"`
	// Error is the job's error text, if any (kind "done").
	Error string `json:"error,omitempty"`
}

// EncodeStreamEvent renders one event as a framed stream line,
// trailing newline included.
func EncodeStreamEvent(ev StreamEvent) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding stream event: %w", err)
	}
	return frameLine(payload), nil
}

// DecodeStreamLine parses one framed stream line (without its
// trailing newline). ok is false for a torn, malformed, or
// CRC-mismatched line — the reader's signal to stop and reconnect,
// mirroring the journal's longest-valid-prefix replay.
func DecodeStreamLine(line []byte) (StreamEvent, bool) {
	payload, ok := parseFrame(line)
	if !ok {
		return StreamEvent{}, false
	}
	var ev StreamEvent
	if err := json.Unmarshal(payload, &ev); err != nil || ev.Kind == "" {
		return StreamEvent{}, false
	}
	return ev, true
}

// frameLine wraps a JSON payload in the shared "crc8hex space json\n"
// framing (CRC-32C, same discipline as the journal and results log —
// the canonical implementation lives in internal/commitlog).
func frameLine(payload []byte) []byte {
	return commitlog.Frame(payload)
}

// parseFrame validates the "crc8hex space json" framing and returns
// the payload; ok is false on any framing or checksum violation.
func parseFrame(line []byte) ([]byte, bool) {
	return commitlog.ParseFrame(line)
}

// genCounter disambiguates generation tokens minted within one clock
// tick (e.g. two daemons constructed in the same test).
var genCounter atomic.Uint64

// newGen mints a process-unique generation token.
func newGen() string {
	return fmt.Sprintf("g%x-%x", time.Now().UnixNano(), genCounter.Add(1))
}

// progress is one live job's stream buffer: the ordered event
// sequence, a closed flag once the done event has been appended, and
// a broadcast channel for blocked streamers. Cell and done events are
// always retained (bounded by MaxCellsPerJob+1); epoch events beyond
// the buffer cap are dropped at append time — they are telemetry, and
// dropping them before assignment keeps offsets contiguous.
type progress struct {
	mu     sync.Mutex
	gen    string
	cap    int
	events []StreamEvent
	closed bool
	// notify is closed and replaced on every append, waking every
	// streamer blocked in snapshot.
	notify chan struct{}
	// droppedEpochs counts epoch events the buffer cap discarded.
	droppedEpochs uint64
}

// newProgress returns an empty stream buffer for one job.
func newProgress(gen string, bufCap int) *progress {
	return &progress{gen: gen, cap: bufCap, notify: make(chan struct{})}
}

// add appends one event, stamping its generation and offset, and
// wakes blocked streamers. Epoch events are dropped once the buffer
// cap is reached; cell and done events always append. Appending after
// close is ignored (defensive: the executor has no events to emit
// after the outcome is recorded).
func (p *progress) add(ev StreamEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if ev.Kind == StreamEpoch && p.cap > 0 && len(p.events) >= p.cap {
		p.droppedEpochs++
		return
	}
	ev.Gen = p.gen
	ev.Offset = len(p.events)
	p.events = append(p.events, ev)
	close(p.notify)
	p.notify = make(chan struct{})
}

// finish appends the terminal done event and closes the buffer.
func (p *progress) finish(state JobState, errMsg string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.events = append(p.events, StreamEvent{
		Kind: StreamDone, Gen: p.gen, Offset: len(p.events),
		State: state, Error: errMsg,
	})
	p.closed = true
	close(p.notify)
	p.notify = make(chan struct{})
}

// snapshot returns the events at and after offset from (clamped into
// range), whether the stream is complete, and a channel that is
// closed on the next append — the streamer blocks on it when it has
// written everything and the job is still running.
func (p *progress) snapshot(from int) (evs []StreamEvent, closed bool, wait <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(p.events) {
		from = len(p.events)
	}
	// The tail slice is safe to return: events are append-only and
	// individual entries are never mutated after publication.
	return p.events[from:], p.closed, p.notify
}

// synthesizeStream rebuilds a finished job's event sequence from its
// status — used for jobs whose live buffer is gone (journal-replayed
// finished jobs, or outputs evicted by retention). Cell results decode
// from Output in spec order; epoch events are not reconstructable and
// are omitted. The sequence is deterministic per process, so it gets
// a stable per-daemon replay generation and reconnect offsets remain
// valid against it.
func synthesizeStream(gen string, st JobStatus) []StreamEvent {
	var evs []StreamEvent
	if len(st.Spec.Cells) > 0 && st.Output != "" {
		if cells, err := DecodeCellResults(strings.NewReader(st.Output)); err == nil {
			for i := range cells {
				evs = append(evs, StreamEvent{Kind: StreamCell, Cell: &cells[i]})
			}
		}
	}
	evs = append(evs, StreamEvent{Kind: StreamDone, State: st.State, Error: st.Error})
	for i := range evs {
		evs[i].Gen = gen
		evs[i].Offset = i
	}
	return evs
}
