package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.journal")
}

// A journal written by one process must replay into the same job
// table in a second one: finished jobs with their outputs, unfinished
// ones flagged for re-run, sequence numbering continuing where it
// left off.
func TestJournalRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 0 || rep.NextSeq != 1 {
		t.Fatalf("fresh journal replayed %d jobs, NextSeq %d", len(rep.Jobs), rep.NextSeq)
	}

	spec1 := JobSpec{Experiments: []string{"fig10"}, Refs: 1000}
	spec2 := JobSpec{Experiments: []string{"table4"}, Workers: 1}
	records := []record{
		{T: "submit", ID: "j1", Seq: 1, Spec: &spec1},
		{T: "start", ID: "j1"},
		{T: "finish", ID: "j1", State: StateDone, Output: "line one\nline two\n"},
		{T: "submit", ID: "j2", Seq: 2, Spec: &spec2},
		{T: "start", ID: "j2"},
	}
	for _, rec := range records {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rep2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep2.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported %d truncated bytes", rep2.TruncatedBytes)
	}
	if len(rep2.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(rep2.Jobs))
	}
	if rep2.NextSeq != 3 {
		t.Fatalf("NextSeq = %d, want 3", rep2.NextSeq)
	}
	j1 := rep2.Jobs[0]
	if !j1.Finished || j1.State != StateDone || j1.Output != "line one\nline two\n" {
		t.Fatalf("j1 replayed wrong: %+v", j1)
	}
	if j1.Spec.Refs != 1000 || j1.Spec.Experiments[0] != "fig10" {
		t.Fatalf("j1 spec replayed wrong: %+v", j1.Spec)
	}
	jb2 := rep2.Jobs[1]
	if jb2.Finished || !jb2.Started || !jb2.Unfinished() {
		t.Fatalf("j2 must replay as started-but-unfinished: %+v", jb2)
	}
}

// A SIGKILL can land mid-append. The torn final line must be dropped
// and truncated away; everything before it replays, and the journal
// accepts new appends afterwards.
func TestJournalTornTail(t *testing.T) {
	path := tmpJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Experiments: []string{"fig4"}}
	if err := j.append(record{T: "submit", ID: "j1", Seq: 1, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn write: half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"t":"fini`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].Finished {
		t.Fatalf("replay after torn tail: %+v", rep.Jobs)
	}
	// The tail must be physically gone so appends extend a valid file.
	if err := j2.append(record{T: "finish", ID: "j1", State: StateDone, Output: "ok"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, rep3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.TruncatedBytes != 0 {
		t.Fatalf("journal still torn after truncation: %d bytes", rep3.TruncatedBytes)
	}
	if len(rep3.Jobs) != 1 || !rep3.Jobs[0].Finished || rep3.Jobs[0].Output != "ok" {
		t.Fatalf("post-truncation append lost: %+v", rep3.Jobs)
	}
}

// A CRC mismatch marks the end of the trusted prefix: replay keeps
// everything before it and discards the rest (append-only journals
// cannot have valid data after a corrupt record that the daemon
// should trust).
func TestJournalCorruptLineEndsPrefix(t *testing.T) {
	path := tmpJournal(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Experiments: []string{"fig4"}}
	for i, rec := range []record{
		{T: "submit", ID: "j1", Seq: 1, Spec: &spec},
		{T: "submit", ID: "j2", Seq: 2, Spec: &spec},
		{T: "submit", ID: "j3", Seq: 3, Spec: &spec},
	} {
		if err := j.append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	j.Close()

	// Corrupt one byte inside the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines", len(lines))
	}
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x01
	corrupted := lines[0] + string(mid) + lines[2]
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "j1" {
		t.Fatalf("replay past a corrupt record: %+v", rep.Jobs)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("corrupt suffix not counted as truncated")
	}
	if rep.NextSeq != 2 {
		t.Fatalf("NextSeq = %d, want 2", rep.NextSeq)
	}
}

// Group commit must not change what a journal replays to: the same
// job lifecycles appended by 1 worker and by 64 concurrent workers
// produce byte-identical replayed job tables (sorted by seq). This is
// the append-path analogue of the daemon's SIGKILL-restart smoke.
func TestJournalConcurrencyReplayParity(t *testing.T) {
	const jobs = 64
	run := func(workers int) []ReplayJob {
		t.Helper()
		path := filepath.Join(t.TempDir(), "jobs.journal")
		j, _, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		// Deal complete job lifecycles (submit, start, finish) out to
		// the workers; each job's three records stay ordered because
		// one worker owns the whole lifecycle and file order follows
		// enqueue order.
		ids := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := range ids {
					id := fmt.Sprintf("j%d", n)
					spec := JobSpec{Experiments: []string{"fig4"}, Refs: n}
					for _, rec := range []record{
						{T: "submit", ID: id, Seq: uint64(n), Spec: &spec},
						{T: "start", ID: id},
						{T: "finish", ID: id, State: StateDone, Output: fmt.Sprintf("out-%d", n)},
					} {
						if err := j.append(rec); err != nil {
							t.Errorf("append %s: %v", id, err)
							return
						}
					}
				}
			}()
		}
		for n := 1; n <= jobs; n++ {
			ids <- n
		}
		close(ids)
		wg.Wait()
		if st := j.Stats(); st.Appends != 3*jobs {
			t.Fatalf("workers=%d: %d appends acknowledged, want %d", workers, st.Appends, 3*jobs)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, rep, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TruncatedBytes != 0 {
			t.Fatalf("workers=%d: clean journal reported %d truncated bytes", workers, rep.TruncatedBytes)
		}
		return rep.Jobs
	}

	serial := run(1)
	concurrent := run(64)
	// The replayed tables are seq-sorted, so equality is byte-for-byte.
	sb, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(concurrent)
	if err != nil {
		t.Fatal(err)
	}
	if string(sb) != string(cb) {
		t.Fatalf("replayed job tables diverge between 1 and 64 workers:\n%s\n%s", sb, cb)
	}
	if len(serial) != jobs || !serial[0].Finished {
		t.Fatalf("replayed table wrong: %d jobs, first %+v", len(serial), serial[0])
	}
}

// A nil journal (persistence disabled) must be a safe no-op.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.append(record{T: "start", ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
