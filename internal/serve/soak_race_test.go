//go:build race

package serve_test

// raceEnabled reports whether this test binary carries the race
// detector, which multiplies the soak flood's cost roughly tenfold
// (every channel and mutex operation across thousands of client
// goroutines is instrumented) and caps the scale it can reach in
// bounded wall-clock.
const raceEnabled = true
