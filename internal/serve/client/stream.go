package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"dice/internal/serve"
)

// Stream follows one job's event stream (GET /jobs/{id}/stream) to
// completion, invoking fn for every event — cells, epochs, and the
// final done event — and returning the done event. Disconnects are
// absorbed by the client's jittered-backoff retry loop: the stream
// reconnects at the last consumed offset of the last seen generation,
// so a transient cut costs nothing. When the daemon answers with a
// different generation (it restarted, or re-derived a finished job's
// stream), the sequence restarts from 0 and fn sees earlier events
// again — callers must deduplicate cell events on their canonical
// cell key (serve.CellSpec.Key), which determinism makes safe: a
// re-delivered cell is byte-identical to the first delivery. A non-nil
// error from fn aborts the stream permanently and is returned
// wrapped. Torn tail lines (connection cut mid-frame) are not errors;
// they mark the reconnect point, mirroring the journal's
// longest-valid-prefix discipline.
func (c *Client) Stream(ctx context.Context, id string, fn func(serve.StreamEvent) error) (serve.StreamEvent, error) {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 10
	}
	var (
		gen      string
		offset   int
		failures int
		lastErr  error
	)
	for {
		n, final, err := c.streamOnce(ctx, id, &gen, &offset, fn)
		if err == nil && final != nil {
			return *final, nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return serve.StreamEvent{}, perm.err
		}
		if ctx.Err() != nil {
			return serve.StreamEvent{}, ctx.Err()
		}
		if err == nil {
			err = fmt.Errorf("client: stream %s: connection ended before the done event", id)
		}
		lastErr = err
		// A connection that delivered events made progress: reset the
		// failure budget so a long stream with occasional cuts is not
		// charged as consecutive failures.
		if n > 0 {
			failures = 0
		}
		failures++
		if failures >= attempts {
			return serve.StreamEvent{}, fmt.Errorf("client: stream %s: giving up after %d attempts: %w", id, attempts, lastErr)
		}
		select {
		case <-ctx.Done():
			return serve.StreamEvent{}, ctx.Err()
		case <-time.After(c.backoff(failures)):
		}
	}
}

// streamOnce runs one stream connection: request the suffix at
// *offset/*gen, consume framed events until the done event, a torn
// line, or a cut. It advances *offset and *gen as events arrive so
// the caller's next connection resumes precisely. Returns the number
// of events consumed and, when the done event arrived, that event.
func (c *Client) streamOnce(ctx context.Context, id string, gen *string, offset *int, fn func(serve.StreamEvent) error) (int, *serve.StreamEvent, error) {
	u := fmt.Sprintf("%s/jobs/%s/stream?offset=%d&gen=%s", c.Base, id, *offset, url.QueryEscape(*gen))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, errPermanent{fmt.Errorf("client: %w", err)}
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("client: stream %s: %w", id, err) // transport errors retry
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, nil, errPermanent{fmt.Errorf("client: stream %s: %s", id, resp.Status)}
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("client: stream %s: %s", id, resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	events := 0
	for sc.Scan() {
		ev, ok := serve.DecodeStreamLine(sc.Bytes())
		if !ok {
			// Torn or corrupt line — the valid prefix ends here;
			// reconnect at the offset we have.
			return events, nil, fmt.Errorf("client: stream %s: torn frame at offset %d", id, *offset)
		}
		if ev.Gen != *gen {
			// New generation: the sequence restarted (daemon restart or
			// synthesized replay). Adopt it; earlier events re-deliver.
			*gen = ev.Gen
			*offset = 0
		}
		if ev.Offset != *offset {
			// A gap would mean lost events; resync by reconnecting.
			return events, nil, fmt.Errorf("client: stream %s: offset %d, want %d", id, ev.Offset, *offset)
		}
		*offset = ev.Offset + 1
		events++
		if err := fn(ev); err != nil {
			return events, nil, errPermanent{fmt.Errorf("client: stream %s: %w", id, err)}
		}
		if ev.Kind == serve.StreamDone {
			done := ev
			return events, &done, nil
		}
	}
	if err := sc.Err(); err != nil {
		return events, nil, fmt.Errorf("client: stream %s: %w", id, err)
	}
	return events, nil, nil // clean EOF without done: daemon shut down mid-stream
}
