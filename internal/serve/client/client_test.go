package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dice/internal/serve"
)

// newTestClient points a fast-retrying client at a test server.
func newTestClient(ts *httptest.Server) *Client {
	c := New(ts.URL, 1)
	c.HTTPClient = ts.Client()
	c.BaseDelay = time.Millisecond
	c.MaxDelay = 5 * time.Millisecond
	return c
}

func writeStatus(w http.ResponseWriter, code int, st serve.JobStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}

// A 429 with Retry-After must be retried — and the server's hint must
// override a shorter computed backoff: the wait before the successful
// attempt is at least the full Retry-After.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		writeStatus(w, http.StatusAccepted, serve.JobStatus{ID: "j1", State: serve.StateQueued})
	}))
	defer ts.Close()

	c := newTestClient(ts) // backoff caps at 5ms: only the hint explains a 1s wait
	start := time.Now()
	st, err := c.Submit(context.Background(), serve.JobSpec{Experiments: []string{"metrics-demo"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" {
		t.Fatalf("submit returned %+v", st)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, before the 1s Retry-After hint", elapsed)
	}
}

// 5xx responses and 429s without a hint retry on the backoff schedule
// alone until the server recovers.
func TestRetryTransientServerErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests) // no Retry-After
			w.Write([]byte(`{"error":"queue full"}`))
		default:
			writeStatus(w, http.StatusOK, serve.JobStatus{ID: "j2", State: serve.StateDone, Output: "out"})
		}
	}))
	defer ts.Close()

	st, err := newTestClient(ts).Status(context.Background(), "j2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Output != "out" || calls.Load() != 3 {
		t.Fatalf("status %+v after %d calls", st, calls.Load())
	}
}

// 4xx client errors (other than 429) are permanent: one attempt, the
// daemon's error message surfaced.
func TestPermanentClientErrorNoRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown experiment \"nope\""}`))
	}))
	defer ts.Close()

	_, err := newTestClient(ts).Submit(context.Background(), serve.JobSpec{Experiments: []string{"nope"}})
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("daemon error message lost: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("permanent 400 retried: %d calls", got)
	}
}

// Retries give up after MaxAttempts with the last error attached, and
// a cancelled context ends the loop early.
func TestRetryBounds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newTestClient(ts)
	c.MaxAttempts = 3
	_, err := c.Status(context.Background(), "j1")
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("exhaustion error = %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}

	calls.Store(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Status(ctx, "j1"); err != context.Canceled {
		t.Fatalf("cancelled retry loop returned %v", err)
	}
}

// The jittered backoff stays inside [d/2, d] with d capped at
// MaxDelay, and identical seeds give identical schedules.
func TestBackoffBoundsAndDeterminism(t *testing.T) {
	a := New("http://x", 7)
	a.BaseDelay = 10 * time.Millisecond
	a.MaxDelay = 80 * time.Millisecond
	b := New("http://x", 7)
	b.BaseDelay = a.BaseDelay
	b.MaxDelay = a.MaxDelay

	for attempt := 1; attempt <= 10; attempt++ {
		d := a.BaseDelay << uint(attempt-1)
		if d > a.MaxDelay || d <= 0 {
			d = a.MaxDelay
		}
		got := a.backoff(attempt)
		if got < d/2 || got > d {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, d/2, d)
		}
		if other := b.backoff(attempt); other != got {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, got, other)
		}
	}
}

// Wait polls through non-terminal states and returns the terminal one.
func TestWaitPollsToTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := serve.JobStatus{ID: "j1", State: serve.StateRunning}
		if calls.Add(1) >= 3 {
			st.State = serve.StateDone
			st.Output = "final"
		}
		writeStatus(w, http.StatusOK, st)
	}))
	defer ts.Close()

	st, err := newTestClient(ts).Wait(context.Background(), "j1", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.Output != "final" || calls.Load() < 3 {
		t.Fatalf("wait returned %+v after %d polls", st, calls.Load())
	}
}
