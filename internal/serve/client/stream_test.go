package client

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dice/internal/serve"
)

// Retry-After must parse both RFC 9110 forms: delta-seconds and
// HTTP-date (all three date formats), with past dates and garbage
// degrading to 0 rather than poisoning the backoff.
func TestParseRetryAfterForms(t *testing.T) {
	now := time.Now()
	cases := []struct {
		name string
		v    string
		min  time.Duration // inclusive
		max  time.Duration // inclusive
	}{
		{"empty", "", 0, 0},
		{"seconds", "5", 5 * time.Second, 5 * time.Second},
		{"zero-seconds", "0", 0, 0},
		{"negative-seconds", "-3", 0, 0},
		{"garbage", "soon", 0, 0},
		{"rfc1123-future", now.Add(30 * time.Second).UTC().Format(http.TimeFormat), time.Second, 30 * time.Second},
		{"rfc850-future", now.Add(30 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), time.Second, 30 * time.Second},
		{"asctime-future", now.Add(30 * time.Second).UTC().Format(time.ANSIC), time.Second, 30 * time.Second},
		{"rfc1123-past", now.Add(-30 * time.Second).UTC().Format(http.TimeFormat), 0, 0},
		{"malformed-date", "Wed, 99 Foo 2020", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parseRetryAfter(tc.v)
			if got < tc.min || got > tc.max {
				t.Fatalf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.v, got, tc.min, tc.max)
			}
		})
	}
}

// frame renders one stream event exactly as the daemon does.
func frame(t *testing.T, ev serve.StreamEvent) []byte {
	t.Helper()
	line, err := serve.EncodeStreamEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	return line
}

// cellEv builds a framed cell event.
func cellEv(t *testing.T, gen string, off int, key string) []byte {
	cr := serve.CellResult{Key: key}
	return frame(t, serve.StreamEvent{Kind: serve.StreamCell, Gen: gen, Offset: off, Cell: &cr})
}

// doneEv builds a framed done event.
func doneEv(t *testing.T, gen string, off int) []byte {
	return frame(t, serve.StreamEvent{Kind: serve.StreamDone, Gen: gen, Offset: off, State: serve.StateDone})
}

// scriptedStream serves a scripted sequence of responses, one per
// connection, and records each connection's offset/gen query.
type scriptedStream struct {
	mu    sync.Mutex
	conns []string // "offset=N gen=G" per connection, in order
	body  [][]byte // bytes to write per connection
}

func (s *scriptedStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.conns)
	s.conns = append(s.conns, fmt.Sprintf("offset=%s gen=%s", r.URL.Query().Get("offset"), r.URL.Query().Get("gen")))
	var body []byte
	if n < len(s.body) {
		body = s.body[n]
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(body)
}

func (s *scriptedStream) queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.conns...)
}

// A stream cut mid-flight — including a torn final frame — must
// reconnect at the last consumed offset and deliver the remainder
// exactly once.
func TestStreamReconnectsAtOffsetAfterTornFrame(t *testing.T) {
	var first []byte
	first = append(first, cellEv(t, "gA", 0, "c0")...)
	first = append(first, cellEv(t, "gA", 1, "c1")...)
	first = append(first, cellEv(t, "gA", 2, "c2")...)
	first = append(first, []byte("deadbeef {torn-mid-frame\n")...) // cut lands mid-append
	var second []byte
	second = append(second, cellEv(t, "gA", 3, "c3")...)
	second = append(second, doneEv(t, "gA", 4)...)

	s := &scriptedStream{body: [][]byte{first, second}}
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := newTestClient(ts)

	var keys []string
	final, err := c.Stream(t.Context(), "j1", func(ev serve.StreamEvent) error {
		if ev.Kind == serve.StreamCell {
			keys = append(keys, ev.Cell.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Kind != serve.StreamDone || final.State != serve.StateDone || final.Offset != 4 {
		t.Fatalf("final = %+v", final)
	}
	if got, want := strings.Join(keys, ","), "c0,c1,c2,c3"; got != want {
		t.Fatalf("cells = %s, want %s (no dups, no gaps)", got, want)
	}
	q := s.queries()
	if len(q) != 2 || q[0] != "offset=0 gen=" || q[1] != "offset=3 gen=gA" {
		t.Fatalf("connection queries = %v", q)
	}
}

// A generation change (daemon restart) restarts the sequence: the
// client adopts the new generation, re-consumes from 0, and the
// caller sees re-delivered cells — dedup is the consumer's job.
func TestStreamGenerationChangeRedelivers(t *testing.T) {
	var first []byte
	first = append(first, cellEv(t, "g1", 0, "c0")...)
	first = append(first, cellEv(t, "g1", 1, "c1")...)
	var second []byte
	second = append(second, cellEv(t, "g2", 0, "c0")...)
	second = append(second, cellEv(t, "g2", 1, "c1")...)
	second = append(second, doneEv(t, "g2", 2)...)

	s := &scriptedStream{body: [][]byte{first, second}}
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := newTestClient(ts)

	var keys []string
	final, err := c.Stream(t.Context(), "j1", func(ev serve.StreamEvent) error {
		if ev.Kind == serve.StreamCell {
			keys = append(keys, ev.Cell.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Gen != "g2" {
		t.Fatalf("final gen = %q, want g2", final.Gen)
	}
	if got, want := strings.Join(keys, ","), "c0,c1,c0,c1"; got != want {
		t.Fatalf("cells = %s, want %s (redelivery on gen change)", got, want)
	}
	q := s.queries()
	// The second connection asks to resume the old generation; the
	// server answers with the new one and the client adapts.
	if len(q) != 2 || q[1] != "offset=2 gen=g1" {
		t.Fatalf("connection queries = %v", q)
	}
}

// 404 is permanent: one attempt, no retries.
func TestStreamPermanentOn404(t *testing.T) {
	conns := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	if _, err := c.Stream(t.Context(), "nope", func(serve.StreamEvent) error { return nil }); err == nil {
		t.Fatal("want error for 404 stream")
	}
	if conns != 1 {
		t.Fatalf("404 retried: %d connections", conns)
	}
}

// A server that keeps cutting the stream without progress exhausts
// MaxAttempts and surfaces a giving-up error.
func TestStreamGivesUpWithoutProgress(t *testing.T) {
	conns := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++ // 200 with an empty body: a cut before any event
	}))
	defer ts.Close()
	c := newTestClient(ts)
	c.MaxAttempts = 3
	_, err := c.Stream(t.Context(), "j1", func(serve.StreamEvent) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if conns != 3 {
		t.Fatalf("connections = %d, want 3", conns)
	}
}

// An fn error aborts the stream permanently — no reconnect loop
// around a consumer that cannot accept events.
func TestStreamFnErrorAborts(t *testing.T) {
	var body []byte
	body = append(body, cellEv(t, "g", 0, "c0")...)
	body = append(body, doneEv(t, "g", 1)...)
	s := &scriptedStream{body: [][]byte{body, body, body}}
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := newTestClient(ts)
	_, err := c.Stream(t.Context(), "j1", func(ev serve.StreamEvent) error {
		return fmt.Errorf("consumer rejected %s", ev.Kind)
	})
	if err == nil || !strings.Contains(err.Error(), "consumer rejected") {
		t.Fatalf("err = %v, want consumer error", err)
	}
	if len(s.queries()) != 1 {
		t.Fatalf("fn error retried: %v", s.queries())
	}
}
