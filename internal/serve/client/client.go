// Package client is the retrying HTTP client for the dicebenchd
// experiment daemon (internal/serve). It speaks the daemon's JSON API
// and absorbs the daemon's explicit backpressure: a 429 with
// Retry-After — or a transient transport/5xx failure — is retried
// with jittered exponential backoff, honoring the server's
// Retry-After hint when it is longer than the backoff. Client errors
// (400/404) are permanent and returned immediately.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dice/internal/serve"
)

// Client talks to one daemon. The zero value is not usable; construct
// with New. Fields may be adjusted before first use.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8377".
	Base string
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, first included (default 10).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms); the
	// delay before attempt k is jittered in [d/2, d] where
	// d = min(BaseDelay<<k, MaxDelay), then raised to any Retry-After
	// the server sent.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration

	// rng drives the jitter; seeded so tests can pin schedules.
	// Guarded by rngMu: one Client may be shared across goroutines.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// New returns a client for the daemon at base with the default retry
// policy. seed pins the jitter stream (any value is fine; identical
// seeds give identical backoff schedules).
func New(base string, seed int64) *Client {
	return &Client{
		Base:        base,
		HTTPClient:  http.DefaultClient,
		MaxAttempts: 10,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// errPermanent wraps an error the retry loop must not retry.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// retryAfterError carries a server Retry-After hint up to the retry
// loop alongside the retryable error.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e retryAfterError) Error() string { return e.err.Error() }
func (e retryAfterError) Unwrap() error { return e.err }

// Submit submits a job spec, retrying through backpressure, and
// returns the accepted job's status (its ID in particular).
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, fmt.Errorf("client: %w", err)
	}
	var st serve.JobStatus
	err = c.retry(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/jobs", body, &st)
	})
	return st, err
}

// Status fetches one job's status (output included once terminal).
func (c *Client) Status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.retry(ctx, func() error {
		return c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	})
	return st, err
}

// Cancel asks the daemon to cancel a job.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.retry(ctx, func() error {
		return c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st)
	})
	return st, err
}

// Health fetches the daemon's /healthz self-stats.
func (c *Client) Health(ctx context.Context) (serve.Health, error) {
	var h serve.Health
	err := c.retry(ctx, func() error {
		return c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	})
	return h, err
}

// Wait polls a job until it reaches a terminal state (or ctx ends),
// returning the final status. poll <= 0 defaults to 50ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (serve.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// retry runs one call with jittered exponential backoff. Permanent
// errors (4xx other than 429) and context cancellation end the loop
// immediately; everything else retries up to MaxAttempts.
func (c *Client) retry(ctx context.Context, call func() error) error {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 10
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt)
			var ra retryAfterError
			if errors.As(err, &ra) && ra.after > delay {
				delay = ra.after
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		err = call()
		if err == nil {
			return nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return perm.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", attempts, err)
}

// backoff returns the jittered delay before the given (1-based) retry
// attempt: uniform in [d/2, d] with d = min(BaseDelay<<attempt, MaxDelay).
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(attempt-1)
	if d > max || d <= 0 {
		d = max
	}
	half := d / 2
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// do performs one HTTP exchange, decoding a 2xx JSON body into out.
// Non-2xx statuses become errors: 429 retryable with the Retry-After
// hint attached, 5xx retryable, other 4xx permanent.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return errPermanent{fmt.Errorf("client: %w", err)}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err) // transport errors retry
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("client: reading %s %s: %w", method, path, err)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(payload, out); err != nil {
			return errPermanent{fmt.Errorf("client: decoding %s %s: %w", method, path, err)}
		}
		return nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return retryAfterError{
			err:   fmt.Errorf("client: %s %s: %s (%s)", method, path, resp.Status, apiError(payload)),
			after: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable:
		return fmt.Errorf("client: %s %s: %s (%s)", method, path, resp.Status, apiError(payload))
	default:
		return errPermanent{fmt.Errorf("client: %s %s: %s (%s)", method, path, resp.Status, apiError(payload))}
	}
}

// apiError extracts the daemon's {"error": ...} message, falling back
// to the raw body.
func apiError(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(payload)
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delta-seconds (what the daemon emits) or an HTTP-date (what a
// fronting proxy or load balancer may substitute). Dates in the past
// and unparseable values yield 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	// http.ParseTime accepts all three HTTP-date formats (RFC 5322,
	// RFC 850, ANSI C asctime).
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
