// Package serve is the experiment daemon behind cmd/dicebenchd: a
// bounded job queue with explicit backpressure, per-job deadlines and
// cancellation, panic isolation, a crash-safe append-only journal,
// and an HTTP/JSON API to submit, query, and cancel experiment jobs.
//
// The robustness envelope, in one paragraph: submissions beyond the
// queue bound are rejected immediately with 429 + Retry-After (memory
// stays bounded no matter the offered load); each job runs under its
// own context with an optional deadline, so a stuck or oversized job
// times out alone; a panicking job fails alone, with the stack in its
// status, and never takes the daemon down; SIGTERM stops admission,
// drains in-flight jobs within a configured bound, and leaves queued
// jobs checkpointed in the journal; and because every job's lifecycle
// is journaled with per-record CRCs, a restarted daemon — even after
// SIGKILL — replays the journal and deterministically re-enqueues the
// jobs that were interrupted. Simulations are pure functions of their
// configuration, so a re-run job produces byte-identical output.
package serve

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dice/internal/experiments"
	"dice/internal/obs"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// JobState is the lifecycle state of a job. Terminal states are
// StateDone, StateFailed, and StateCancelled; StateInterrupted is the
// in-memory marker for a job a daemon shutdown abandoned (the journal
// holds no finish record for it, so a restart re-enqueues it).
type JobState string

// The job lifecycle: Submit puts a job in StateQueued; a worker moves
// it to StateRunning; it ends StateDone (output ready), StateFailed
// (error, deadline, or panic — see JobStatus.Error), or
// StateCancelled (client cancel). StateInterrupted marks jobs a
// shutdown abandoned mid-run; they re-run on restart.
const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateCancelled   JobState = "cancelled"
	StateInterrupted JobState = "interrupted"
)

// Terminal reports whether a state is final — no worker will touch
// the job again in this daemon process.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is the client-supplied description of one job: either a
// named-experiment job (Experiments set — regenerate paper tables) or
// a batch cell job (Cells set — simulate raw sweep cells for the
// design-space-exploration engine). The zero value of every other
// field defers to the daemon's defaults, so
// {"experiments":["fig10"]} and {"cells":[{"workload":"gcc"}]} are
// complete specs. Exactly one of Experiments and Cells must be set.
type JobSpec struct {
	// Experiments lists experiment IDs (see experiments.All), or the
	// single element "all" for the full evaluation.
	Experiments []string `json:"experiments,omitempty"`
	// Cells, when non-empty, makes this a batch cell job: the daemon
	// simulates every cell (memoized and fanned out like an
	// experiment's matrix) and the job's Output is one JSON line per
	// cell, in spec order (EncodeCellResults). Bounded by
	// MaxCellsPerJob; sweeps submit multiple jobs.
	Cells []CellSpec `json:"cells,omitempty"`
	// Refs is the measured references per core (0 = daemon default).
	Refs int `json:"refs,omitempty"`
	// Scale is the system scale shift (0 = default 10).
	Scale uint `json:"scale,omitempty"`
	// Workers bounds the job's concurrent simulations (0 = one per
	// CPU, 1 = the bit-exact serial reference schedule; results are
	// byte-identical at every setting).
	Workers int `json:"workers,omitempty"`
	// DeadlineMS is the per-job wall-clock deadline in milliseconds
	// (0 = daemon default; the daemon default 0 means no deadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// FaultBER is the injected bit-error rate, 0 disables fault
	// injection (see internal/fault).
	FaultBER float64 `json:"fault_ber,omitempty"`
	// FaultSeed pins the deterministic fault stream.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// FaultPolicy selects the fault-handling policy ("" = default).
	FaultPolicy string `json:"fault_policy,omitempty"`
	// MetricsEpoch, when nonzero, attaches an epoch-metrics recorder
	// (sampling every MetricsEpoch simulated cycles) to the job's
	// simulations and emits each snapshot as an "epoch" event on the
	// job's stream (GET /jobs/{id}/stream). Recording never changes
	// results. Epoch events are live telemetry: best-effort and not
	// replayed for jobs that finished in an earlier daemon process.
	MetricsEpoch uint64 `json:"metrics_epoch,omitempty"`
}

// Validate rejects specs the daemon could only fail on mid-run: an
// empty or unknown experiment list, a negative worker count or
// deadline, or fault parameters sim.Config.Validate rejects. Admission
// is the one place a bad spec can be turned into a 400 instead of a
// failed job.
func (s JobSpec) Validate() error {
	if len(s.Experiments) == 0 && len(s.Cells) == 0 {
		return fmt.Errorf("serve: job spec lists no experiments and no cells")
	}
	if len(s.Experiments) > 0 && len(s.Cells) > 0 {
		return fmt.Errorf("serve: job spec lists both experiments and cells (want one)")
	}
	if len(s.Cells) > MaxCellsPerJob {
		return fmt.Errorf("serve: job spec: %d cells exceed the per-job bound %d",
			len(s.Cells), MaxCellsPerJob)
	}
	for i, c := range s.Cells {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("serve: job spec: cell %d (%s): %w", i, c.Key(), err)
		}
	}
	if len(s.Experiments) > 0 && (len(s.Experiments) != 1 || s.Experiments[0] != "all") {
		for _, id := range s.Experiments {
			if _, err := experiments.ByID(id); err != nil {
				return fmt.Errorf("serve: job spec: %w", err)
			}
		}
	}
	if s.Refs < 0 {
		return fmt.Errorf("serve: job spec: refs must be >= 0, got %d", s.Refs)
	}
	if s.Workers < 0 {
		return fmt.Errorf("serve: job spec: workers must be >= 0, got %d", s.Workers)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("serve: job spec: deadline_ms must be >= 0, got %d", s.DeadlineMS)
	}
	if err := (sim.Config{FaultBER: s.FaultBER, FaultPolicy: s.FaultPolicy}).Validate(); err != nil {
		return fmt.Errorf("serve: job spec: %w", err)
	}
	return nil
}

// selected resolves the spec's experiment list against the catalog.
// Validate has already vetted the IDs; a lookup failure here is a
// programming error.
func (s JobSpec) selected() []experiments.Experiment {
	if len(s.Experiments) == 1 && s.Experiments[0] == "all" {
		return experiments.All()
	}
	sel := make([]experiments.Experiment, 0, len(s.Experiments))
	for _, id := range s.Experiments {
		e, err := experiments.ByID(id)
		if err != nil {
			panic(err)
		}
		sel = append(sel, e)
	}
	return sel
}

// JobStatus is the externally visible snapshot of one job, as served
// by GET /jobs/{id}. Output carries the job's report bytes once the
// job is done — identical to what `dicebench -run <experiments>`
// prints for the same settings, because both render the same Report
// values in the same order.
type JobStatus struct {
	// ID is the daemon-assigned job identifier ("j<seq>").
	ID string `json:"id"`
	// Seq is the job's journal sequence number; replay preserves it.
	Seq uint64 `json:"seq"`
	// State is the lifecycle state (see JobState).
	State JobState `json:"state"`
	// Spec echoes the submitted job spec.
	Spec JobSpec `json:"spec"`
	// Output is the rendered report text (terminal states only; empty
	// if the retention cap evicted it — the journal still has it).
	Output string `json:"output,omitempty"`
	// OutputDropped is set when the in-memory retention cap evicted
	// this job's output.
	OutputDropped bool `json:"output_dropped,omitempty"`
	// Error describes the failure for StateFailed (deadline, panic
	// with stack, or run error) and the reason for StateCancelled.
	Error string `json:"error,omitempty"`
	// Replayed marks a job restored from the journal by a restart
	// rather than submitted to this process.
	Replayed bool `json:"replayed,omitempty"`
	// SubmittedAt is the admission wall-clock time (zero on replayed
	// jobs: the journal keeps states, not the original times).
	SubmittedAt time.Time `json:"submitted_at,omitempty"`
	// StartedAt is when a worker picked the job up (zero until then).
	StartedAt time.Time `json:"started_at,omitempty"`
	// FinishedAt is when the job reached a terminal state.
	FinishedAt time.Time `json:"finished_at,omitempty"`
}

// RunSpec executes one job spec to completion and returns the report
// bytes. This is the daemon's executor and also the reference the
// tests compare against: a fresh Runner per job. Experiment jobs
// render reports in selection order, each followed by a blank line —
// exactly the table bytes `dicebench -run ...` prints. Batch cell
// jobs emit one JSON line per cell in spec order (EncodeCellResults).
// Deterministic at any Workers setting. Cancellation and deadlines
// arrive via ctx; a cancelled run returns the partial output
// alongside ctx's error.
func RunSpec(ctx context.Context, spec JobSpec, defaultRefs int) (string, error) {
	return RunSpecStream(ctx, spec, defaultRefs, nil)
}

// RunSpecStream is RunSpec with incremental delivery: when emit is
// non-nil it receives a StreamCell event the moment each cell of a
// batch job completes (in completion order — the returned Output
// stays in spec order) and a StreamEpoch event per recorded metrics
// epoch when the spec sets MetricsEpoch. emit may be called from
// concurrent worker goroutines and must be safe for concurrent use;
// the daemon passes the job's stream buffer, which serializes
// internally. The emitted events carry no Gen/Offset — the buffer
// stamps them on append. Final output bytes are identical with and
// without emit (delivery is observation, not computation).
func RunSpecStream(ctx context.Context, spec JobSpec, defaultRefs int, emit func(StreamEvent)) (string, error) {
	refs := spec.Refs
	if refs == 0 {
		refs = defaultRefs
	}
	r := experiments.NewRunner(refs)
	r.Scale = spec.Scale
	r.Workers = spec.Workers
	r.FaultBER = spec.FaultBER
	r.FaultSeed = spec.FaultSeed
	r.FaultPolicy = spec.FaultPolicy
	if spec.MetricsEpoch > 0 {
		r.MetricsEpoch = spec.MetricsEpoch
		if emit != nil {
			r.MetricsEmit = func(key string, s obs.Snapshot) {
				emit(StreamEvent{Kind: StreamEpoch, Epoch: &EpochEvent{Key: key, Snap: s}})
			}
		}
	}

	if len(spec.Cells) > 0 {
		return runCells(ctx, r, spec.Cells, refs, emit)
	}

	reports, err := experiments.RunAllCtx(ctx, r, spec.selected())
	var b strings.Builder
	for _, rep := range reports {
		b.WriteString(rep.String())
		b.WriteByte('\n')
	}
	return b.String(), err
}

// runCells executes a batch cell job: fan the cells out across the
// runner's pool (memoized, so duplicate keys simulate once), then
// encode each cell's metrics snapshot in spec order. When ctx is
// cancelled mid-batch the completed prefix still encodes — a
// re-submitted batch re-runs only because the daemon journals no
// finish record, and determinism makes the re-run byte-identical.
// emit, when non-nil, receives one StreamCell event per cell as it
// completes; duplicate keys in one spec each get their own event.
func runCells(ctx context.Context, r *experiments.Runner, specs []CellSpec, defaultRefs int, emit func(StreamEvent)) (string, error) {
	cells := make([]experiments.Cell, len(specs))
	for i, cs := range specs {
		cfg, err := cs.Config(defaultRefs)
		if err != nil {
			return "", fmt.Errorf("serve: cell %d: %w", i, err)
		}
		w, err := workloads.ByName(cs.Workload)
		if err != nil {
			return "", fmt.Errorf("serve: cell %d: %w", i, err)
		}
		cells[i] = experiments.Cell{Key: cs.Key(), Cfg: cfg, W: w}
	}
	var done func(i int, res sim.Result)
	if emit != nil {
		done = func(i int, res sim.Result) {
			cr := CellResultFrom(cells[i].Key, res)
			emit(StreamEvent{Kind: StreamCell, Cell: &cr})
		}
	}
	err := r.ForEachCellCtx(ctx, cells, done)
	results := make([]CellResult, 0, len(cells))
	for i := range cells {
		res, ok := r.Peek(cells[i].Key)
		if !ok {
			continue // skipped by cancellation; later cells may still have run
		}
		results = append(results, CellResultFrom(cells[i].Key, res))
	}
	var b strings.Builder
	if eerr := EncodeCellResults(&b, results); eerr != nil {
		return "", eerr
	}
	return b.String(), err
}

// job is the daemon's internal job record: the public status plus the
// cancellation plumbing. Mutable fields are guarded by the daemon's
// mutex.
type job struct {
	status JobStatus
	// cancel cancels the job's run context (nil until running).
	cancel context.CancelFunc
	// cancelRequested marks a client cancel of a queued job: the
	// worker discards it on dequeue (its finish record was already
	// journaled at cancel time).
	cancelRequested bool
	// shutdownAbandon marks that the run context was cancelled by
	// daemon shutdown, not by a client or deadline: the worker must
	// leave the job unfinished in the journal (StateInterrupted) so a
	// restart re-runs it.
	shutdownAbandon bool
	// prog is the job's live stream buffer (nil for jobs that finished
	// in an earlier process — their streams are synthesized from the
	// status — and for jobs whose buffer retention evicted).
	prog *progress
}
