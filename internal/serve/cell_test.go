package serve

import (
	"context"
	"strings"
	"testing"

	"dice/internal/sim"
	"dice/internal/workloads"
)

// Admission-time validation of batch cell jobs: exactly one of
// Experiments/Cells, bounded batch size, per-cell vocabulary checks.
func TestJobSpecCellValidation(t *testing.T) {
	ok := CellSpec{Workload: "gcc", Policy: "dice", Refs: 100}
	cases := []struct {
		name    string
		spec    JobSpec
		wantErr string
	}{
		{"cells ok", JobSpec{Cells: []CellSpec{ok}}, ""},
		{"neither", JobSpec{}, "no experiments and no cells"},
		{"both", JobSpec{Experiments: []string{"fig10"}, Cells: []CellSpec{ok}}, "both experiments and cells"},
		{"no workload", JobSpec{Cells: []CellSpec{{Policy: "dice"}}}, "no workload"},
		{"unknown workload", JobSpec{Cells: []CellSpec{{Workload: "nosuch"}}}, "nosuch"},
		{"unknown policy", JobSpec{Cells: []CellSpec{{Workload: "gcc", Policy: "lru"}}}, "unknown policy"},
		{"unknown org", JobSpec{Cells: []CellSpec{{Workload: "gcc", Org: "weird"}}}, "unknown org"},
		{"unknown compress", JobSpec{Cells: []CellSpec{{Workload: "gcc", Compress: "lz4"}}}, "unknown compress"},
		{"unknown prefetch", JobSpec{Cells: []CellSpec{{Workload: "gcc", Prefetch: "stride"}}}, "prefetch"},
		{"bad ber", JobSpec{Cells: []CellSpec{{Workload: "gcc", BER: 2}}}, "ber"},
		{"negative refs", JobSpec{Cells: []CellSpec{{Workload: "gcc", Refs: -1}}}, "refs"},
		{"oversized batch", JobSpec{Cells: make([]CellSpec, MaxCellsPerJob+1)}, "exceed the per-job bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "oversized batch" {
				for i := range tc.spec.Cells {
					tc.spec.Cells[i] = ok
				}
			}
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// The wire round trip preserves every field, and a truncated final
// line (a cancelled batch's partial output) decodes to the complete
// prefix rather than an error.
func TestCellResultsEncodeDecodeRoundTrip(t *testing.T) {
	in := []CellResult{
		{Key: "w=gcc,p=dice", Workload: "gcc", IPC: []float64{0.5, 0.25}, Cycles: 99, Energy: 1.5, EDP: 3, FaultUnrecovered: 2},
		{Key: "w=mcf,p=tsi", Workload: "mcf", IPC: []float64{0.125}, Cycles: 7, L4HitRate: 0.5},
	}
	var b strings.Builder
	if err := EncodeCellResults(&b, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeCellResults(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Key != in[0].Key || out[1].L4HitRate != 0.5 || out[0].IPC[1] != 0.25 {
		t.Fatalf("round trip: %+v", out)
	}

	cut := b.String()
	cut = cut[:len(cut)-10] // tear the final record mid-JSON
	partial, err := DecodeCellResults(strings.NewReader(cut))
	if err == nil && len(partial) != 1 {
		t.Fatalf("torn final line decoded to %d results", len(partial))
	}
}

// A batch cell job's output is exactly the direct simulation's
// metrics snapshot, cell for cell in spec order — the equivalence
// that makes daemon-sharded sweeps byte-identical to local ones.
func TestRunSpecCellsMatchesDirectSim(t *testing.T) {
	cells := []CellSpec{
		{Workload: "gcc", Policy: "dice", Refs: 150},
		{Workload: "gcc", Policy: "base", Refs: 150},
		{Workload: "gcc", Policy: "dice", Refs: 150}, // duplicate key: memoized, still answered
	}
	out, err := RunSpec(context.Background(), JobSpec{Cells: cells, Workers: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCellResults(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("%d results for %d cells", len(got), len(cells))
	}
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range cells {
		cfg, err := cs.Config(0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		want := CellResultFrom(cs.Key(), res)
		if got[i].Key != want.Key || got[i].Cycles != want.Cycles || got[i].Energy != want.Energy {
			t.Fatalf("cell %d diverges from direct sim:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
	if got[0].Key != got[2].Key || got[0].Cycles != got[2].Cycles {
		t.Fatal("duplicate cells answered differently")
	}
}
