package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dice/internal/dcache"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// MaxCellsPerJob bounds a batch cell job. A sweep that needs more
// cells submits more jobs; one oversized job would defeat the
// per-job deadline and cancellation granularity the daemon promises.
const MaxCellsPerJob = 4096

// CellSpec is the wire form of one sweep cell: a full sim.Config
// spelled in the CLI's vocabulary plus the workload name. It is the
// single definition both execution paths share — the sweep engine
// (internal/dse) expands specs into CellSpecs and the daemon's batch
// jobs carry them — so a cell produces identical bytes no matter
// where it runs. Zero values mean the simulator defaults, exactly as
// the dicesim flags do.
type CellSpec struct {
	// Workload names a cataloged workload (workloads.ByName).
	Workload string `json:"workload"`
	// Policy is the L4 design: base|tsi|nsi|bai|dice|scc ("" = base).
	Policy string `json:"policy,omitempty"`
	// Org is the tag organization: alloy|knl ("" = alloy).
	Org string `json:"org,omitempty"`
	// Threshold is the DICE BAI-insertion threshold in bytes (0 = 36).
	Threshold int `json:"threshold,omitempty"`
	// Compress restricts the compression algorithm: fpc|bdi ("" = hybrid).
	Compress string `json:"compress,omitempty"`
	// BER is the injected raw bit-error rate (0 = no fault injection).
	BER float64 `json:"ber,omitempty"`
	// FaultSeed pins the deterministic fault stream.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// FaultPolicy is the recovery policy: none|ecc|ecc+quarantine ("" = default).
	FaultPolicy string `json:"fault_policy,omitempty"`
	// Capacity is the L4 capacity multiplier (0 = 1).
	Capacity int `json:"capacity,omitempty"`
	// BW is the L4 bandwidth (channel) multiplier (0 = 1).
	BW int `json:"bw,omitempty"`
	// HalfLat halves the L4 DRAM timing (Table 8's latency knob).
	HalfLat bool `json:"half_lat,omitempty"`
	// Prefetch is the L3 prefetch mode: none|nextline|wide128 ("" = none).
	Prefetch string `json:"prefetch,omitempty"`
	// MLP is the per-core outstanding-reference window (0 = 6).
	MLP int `json:"mlp,omitempty"`
	// Refs is the measured reference count per core (0 = job default).
	Refs int `json:"refs,omitempty"`
	// Scale is the system scale shift (0 = 10).
	Scale uint `json:"scale,omitempty"`
}

// Key is the cell's canonical identity: every field spelled in a
// fixed order with canonical number formatting. It keys the sweep
// engine's dedup, its results log, and the runner memoization of a
// batch job, so "the same cell" means the same string everywhere.
// The format is distinct from the experiment runner's
// "<config>|<workload>" keys (those never contain '='), so the two
// never collide in a shared Runner.
func (c CellSpec) Key() string {
	var b strings.Builder
	b.Grow(96)
	b.WriteString("w=")
	b.WriteString(c.Workload)
	b.WriteString(",p=")
	b.WriteString(c.Policy)
	b.WriteString(",o=")
	b.WriteString(c.Org)
	b.WriteString(",t=")
	b.WriteString(strconv.Itoa(c.Threshold))
	b.WriteString(",c=")
	b.WriteString(c.Compress)
	b.WriteString(",ber=")
	b.WriteString(strconv.FormatFloat(c.BER, 'g', -1, 64))
	b.WriteString(",fs=")
	b.WriteString(strconv.FormatUint(c.FaultSeed, 10))
	b.WriteString(",fp=")
	b.WriteString(c.FaultPolicy)
	b.WriteString(",cap=")
	b.WriteString(strconv.Itoa(c.Capacity))
	b.WriteString(",bw=")
	b.WriteString(strconv.Itoa(c.BW))
	b.WriteString(",lat=")
	if c.HalfLat {
		b.WriteString("half")
	} else {
		b.WriteString("full")
	}
	b.WriteString(",pf=")
	b.WriteString(c.Prefetch)
	b.WriteString(",mlp=")
	b.WriteString(strconv.Itoa(c.MLP))
	b.WriteString(",r=")
	b.WriteString(strconv.Itoa(c.Refs))
	b.WriteString(",sc=")
	b.WriteString(strconv.FormatUint(uint64(c.Scale), 10))
	return b.String()
}

// Validate rejects cells the simulator could only fail on mid-run:
// unknown workload, policy, org, compression algorithm or prefetch
// mode, plus everything sim.Config.Validate covers (BER range, fault
// policy, scale bound).
func (c CellSpec) Validate() error {
	if c.Workload == "" {
		return fmt.Errorf("serve: cell names no workload")
	}
	if _, err := workloads.ByName(c.Workload); err != nil {
		return fmt.Errorf("serve: cell: %w", err)
	}
	if c.Refs < 0 {
		return fmt.Errorf("serve: cell: refs must be >= 0, got %d", c.Refs)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("serve: cell: threshold must be >= 0, got %d", c.Threshold)
	}
	if c.MLP < 0 {
		return fmt.Errorf("serve: cell: mlp must be >= 0, got %d", c.MLP)
	}
	cfg, err := c.Config(0)
	if err != nil {
		return fmt.Errorf("serve: cell: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("serve: cell: %w", err)
	}
	return nil
}

// Config materializes the cell as a sim.Config, resolving a zero Refs
// to defaultRefs (the daemon's per-job default; the sweep engine
// always sets Refs explicitly so keys stay portable across daemons).
func (c CellSpec) Config(defaultRefs int) (sim.Config, error) {
	policy := c.Policy
	if policy == "" {
		policy = "base"
	}
	pol, err := dcache.ParsePolicy(policy)
	if err != nil {
		return sim.Config{}, err
	}
	org, err := dcache.ParseOrg(c.Org)
	if err != nil {
		return sim.Config{}, err
	}
	pf, err := sim.ParsePrefetchMode(c.Prefetch)
	if err != nil {
		return sim.Config{}, err
	}
	switch c.Compress {
	case "", "hybrid", "fpc", "bdi":
	default:
		return sim.Config{}, fmt.Errorf("unknown compress %q (want hybrid, fpc or bdi)", c.Compress)
	}
	alg := c.Compress
	if alg == "hybrid" {
		alg = "" // sim.Config spells the default hybrid as ""
	}
	refs := c.Refs
	if refs == 0 {
		refs = defaultRefs
	}
	return sim.Config{
		Policy:       pol,
		Org:          org,
		Threshold:    c.Threshold,
		ScaleShift:   c.Scale,
		CapacityMult: c.Capacity,
		BWMult:       c.BW,
		HalfLatency:  c.HalfLat,
		Prefetch:     pf,
		CompressAlg:  alg,
		FaultBER:     c.BER,
		FaultSeed:    c.FaultSeed,
		FaultPolicy:  c.FaultPolicy,
		MLPWindow:    c.MLP,
		RefsPerCore:  refs,
	}, nil
}

// Baseline returns the cell this cell's speedup and relative
// energy/EDP are normalized against: the uncompressed Alloy design on
// the same workload with the same scale, reference budget and
// idealized capacity/bandwidth/latency/prefetch/MLP knobs, with
// compression and fault injection off. The sweep engine adds every
// distinct baseline to the matrix automatically.
func (c CellSpec) Baseline() CellSpec {
	return CellSpec{
		Workload: c.Workload,
		Policy:   "base",
		Capacity: c.Capacity,
		BW:       c.BW,
		HalfLat:  c.HalfLat,
		Prefetch: c.Prefetch,
		MLP:      c.MLP,
		Refs:     c.Refs,
		Scale:    c.Scale,
	}
}

// IsBaseline reports whether the cell is its own normalization point.
func (c CellSpec) IsBaseline() bool { return c == c.Baseline() }

// CellResult is the metrics snapshot of one simulated cell — the
// fields the Pareto post-processing consumes, extracted from
// sim.Result by the one shared function CellResultFrom so local and
// daemon execution produce identical values (and therefore identical
// exported bytes).
type CellResult struct {
	// Key is the cell's canonical identity (CellSpec.Key).
	Key string `json:"key"`
	// Workload echoes the cell's workload name.
	Workload string `json:"workload"`
	// IPC is the per-core IPC vector — the weighted-speedup inputs.
	IPC []float64 `json:"ipc"`
	// Cycles is the measured-window length.
	Cycles uint64 `json:"cycles"`
	// L3HitRate and L4HitRate are end-of-run hit rates.
	L3HitRate float64 `json:"l3_hit_rate"`
	// L4HitRate is the DRAM-cache hit rate over the measured window.
	L4HitRate float64 `json:"l4_hit_rate"`
	// EffCapacity is the average L4 effective-capacity multiplier.
	EffCapacity float64 `json:"eff_capacity"`
	// Energy is the total memory-system energy (internal/energy units).
	Energy float64 `json:"energy"`
	// EDP is the energy-delay product.
	EDP float64 `json:"edp"`
	// CIPAccuracy is the index predictor's accuracy (0 when unused).
	CIPAccuracy float64 `json:"cip_accuracy,omitempty"`
	// FaultInjected counts injected bit flips over the measured window.
	FaultInjected uint64 `json:"fault_injected,omitempty"`
	// FaultUnrecovered counts the faults no mechanism repaired: silent
	// corruptions served to the core plus dirty lines lost to flushes —
	// the (lower-is-better) reliability objective.
	FaultUnrecovered uint64 `json:"fault_unrecovered,omitempty"`
}

// CellResultFrom extracts a cell's metrics snapshot from its
// simulation result.
func CellResultFrom(key string, res sim.Result) CellResult {
	ipc := make([]float64, len(res.IPC))
	copy(ipc, res.IPC)
	return CellResult{
		Key:              key,
		Workload:         res.Workload,
		IPC:              ipc,
		Cycles:           res.Cycles,
		L3HitRate:        res.L3.HitRate(),
		L4HitRate:        res.L4.HitRate(),
		EffCapacity:      res.EffCapacity,
		Energy:           res.Energy.Total(),
		EDP:              res.Energy.EDP(),
		CIPAccuracy:      res.CIPAccuracy,
		FaultInjected:    res.Fault.Flipped.Value(),
		FaultUnrecovered: res.L4.FaultSilentHits + res.L4.FaultDirtyLoss,
	}
}

// EncodeCellResults renders a batch job's output: one compact JSON
// object per line, in the order given. This is the byte format a
// batch job's Output carries; both sides of the wire share it through
// this pair of functions.
func EncodeCellResults(w io.Writer, results []CellResult) error {
	enc := json.NewEncoder(w) // Encode appends exactly one '\n' per value
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			return fmt.Errorf("serve: encoding cell result: %w", err)
		}
	}
	return nil
}

// DecodeCellResults parses EncodeCellResults output back into cell
// results, tolerating a truncated final line (a cancelled batch job
// returns its completed prefix).
func DecodeCellResults(r io.Reader) ([]CellResult, error) {
	var out []CellResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var res CellResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			return nil, fmt.Errorf("serve: decoding cell result: %w", err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: decoding cell results: %w", err)
	}
	return out, nil
}
