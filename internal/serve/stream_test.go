package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dice/internal/leakcheck"
)

// Stream-layer tests: wire framing, the progress buffer, the HTTP
// handler's resume/generation semantics, the slowloris drop, and
// goroutine hygiene for dropped stream connections. End-to-end
// streaming through the real binaries lives in cmd/dicebenchd and
// cmd/dicesweep.

// streamCells is a small valid cell batch for streaming tests.
func streamCells() []CellSpec {
	return []CellSpec{
		{Workload: "gcc", Refs: 300, Scale: 12},
		{Workload: "mcf", Policy: "dice", Refs: 300, Scale: 12},
		{Workload: "bzip2", Policy: "tsi", Refs: 300, Scale: 12},
	}
}

// openStream connects to a daemon's stream endpoint and returns the
// response body with a line reader.
func openStream(t *testing.T, base, id string, offset int, gen string) (io.ReadCloser, *bufio.Reader) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/stream?offset=%d&gen=%s", base, id, offset, gen))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}
	return resp.Body, bufio.NewReaderSize(resp.Body, 1<<20)
}

// readEvent reads and decodes one framed stream line.
func readEvent(t *testing.T, r *bufio.Reader) StreamEvent {
	t.Helper()
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading stream line: %v", err)
	}
	ev, ok := DecodeStreamLine(line[:len(line)-1])
	if !ok {
		t.Fatalf("undecodable stream line: %q", line)
	}
	return ev
}

// The wire format round-trips, and torn or corrupted lines are
// rejected rather than misparsed — the reconnect discipline.
func TestStreamWireFormat(t *testing.T) {
	cr := CellResult{Key: "k1", Workload: "gcc", IPC: []float64{0.5}, Cycles: 123}
	line, err := EncodeStreamEvent(StreamEvent{Kind: StreamCell, Gen: "g1", Offset: 7, Cell: &cr})
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatalf("frame missing trailing newline: %q", line)
	}
	ev, ok := DecodeStreamLine(line[:len(line)-1])
	if !ok {
		t.Fatalf("round trip failed for %q", line)
	}
	if ev.Kind != StreamCell || ev.Gen != "g1" || ev.Offset != 7 || ev.Cell == nil || ev.Cell.Key != "k1" {
		t.Fatalf("round trip mangled event: %+v", ev)
	}
	for _, bad := range [][]byte{
		nil,
		[]byte("short"),
		line[:len(line)/2],                       // torn mid-frame
		append([]byte("00000000 "), line[9:]...), // CRC mismatch
		[]byte("zzzzzzzz " + `{"kind":"cell"}`),  // non-hex CRC
		frameLine([]byte(`{"not":"an event"}`)),  // valid frame, no kind
	} {
		if _, ok := DecodeStreamLine(bad); ok {
			t.Errorf("DecodeStreamLine accepted invalid line %q", bad)
		}
	}
}

// The progress buffer drops epoch events beyond its cap — telemetry
// degrades — while cell and done events always land, and offsets stay
// contiguous through the drops.
func TestProgressBufferBoundsEpochs(t *testing.T) {
	p := newProgress("g", 3)
	p.add(StreamEvent{Kind: StreamEpoch, Epoch: &EpochEvent{Key: "a"}})
	p.add(StreamEvent{Kind: StreamEpoch, Epoch: &EpochEvent{Key: "b"}})
	p.add(StreamEvent{Kind: StreamEpoch, Epoch: &EpochEvent{Key: "c"}})
	p.add(StreamEvent{Kind: StreamEpoch, Epoch: &EpochEvent{Key: "dropped"}})
	cr := CellResult{Key: "cell"}
	p.add(StreamEvent{Kind: StreamCell, Cell: &cr})
	p.finish(StateDone, "")
	evs, closed, _ := p.snapshot(0)
	if !closed {
		t.Fatal("buffer not closed after finish")
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5 (3 epochs + cell + done)", len(evs))
	}
	for i, ev := range evs {
		if ev.Offset != i {
			t.Fatalf("event %d has offset %d", i, ev.Offset)
		}
	}
	if evs[3].Kind != StreamCell || evs[4].Kind != StreamDone {
		t.Fatalf("cell/done events displaced: %+v", evs)
	}
	if p.droppedEpochs != 1 {
		t.Fatalf("droppedEpochs = %d, want 1", p.droppedEpochs)
	}
}

// A real cell job's stream delivers every cell result, interleaved
// epoch snapshots, and a final done event — with one generation and
// contiguous offsets — and the cell payloads are byte-equal to what
// the polling path decodes from the job output.
func TestStreamDeliversCellsEpochsAndDone(t *testing.T) {
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	spec := JobSpec{Cells: streamCells(), Workers: 1, MetricsEpoch: 5000}
	st := mustSubmit(t, d, spec)

	body, r := openStream(t, base, st.ID, 0, "")
	defer body.Close()

	var (
		gen    string
		cells  = map[string]CellResult{}
		epochs int
		events int
		done   StreamEvent
	)
	for {
		ev := readEvent(t, r)
		if events == 0 {
			gen = ev.Gen
		} else if ev.Gen != gen {
			t.Fatalf("generation changed mid-stream: %q -> %q", gen, ev.Gen)
		}
		if ev.Offset != events {
			t.Fatalf("event %d has offset %d", events, ev.Offset)
		}
		events++
		switch ev.Kind {
		case StreamCell:
			cells[ev.Cell.Key] = *ev.Cell
		case StreamEpoch:
			if ev.Epoch == nil || ev.Epoch.Key == "" {
				t.Fatalf("epoch event without key: %+v", ev)
			}
			epochs++
		case StreamDone:
			done = ev
		}
		if ev.Kind == StreamDone {
			break
		}
	}
	if done.State != StateDone {
		t.Fatalf("done event state = %s (%s)", done.State, done.Error)
	}
	if epochs == 0 {
		t.Fatal("no epoch events streamed despite MetricsEpoch")
	}

	// Byte-identity with the polling path: the same CellResult values
	// decode from the terminal output.
	fin := waitState(t, d, st.ID, StateDone)
	polled, err := DecodeCellResults(strings.NewReader(fin.Output))
	if err != nil {
		t.Fatal(err)
	}
	if len(polled) != len(spec.Cells) || len(cells) != len(spec.Cells) {
		t.Fatalf("streamed %d cells, polled %d, want %d", len(cells), len(polled), len(spec.Cells))
	}
	for _, want := range polled {
		got, ok := cells[want.Key]
		if !ok {
			t.Fatalf("stream missed cell %s", want.Key)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("cell %s differs:\nstream: %+v\npoll:   %+v", want.Key, got, want)
		}
	}
}

// fakeStreamExec returns an executor that emits staged cell events:
// the first batch immediately, the rest after release is closed.
func fakeStreamExec(first, rest []string, started chan<- struct{}, release <-chan struct{}) func(context.Context, JobSpec, func(StreamEvent)) (string, error) {
	return func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) {
		for _, k := range first {
			cr := CellResult{Key: k}
			emit(StreamEvent{Kind: StreamCell, Cell: &cr})
		}
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
			return "", ctx.Err()
		}
		for _, k := range rest {
			cr := CellResult{Key: k}
			emit(StreamEvent{Kind: StreamCell, Cell: &cr})
		}
		return "", nil
	}
}

// A client that drops mid-stream and reconnects with ?offset=N&gen=G
// resumes exactly at event N: no duplicates, no gaps.
func TestStreamResumeAtOffset(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	d.execute = fakeStreamExec([]string{"c0", "c1", "c2"}, []string{"c3", "c4"}, started, release)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	st := mustSubmit(t, d, JobSpec{Experiments: []string{"fig4"}})
	<-started

	// First connection: consume the three emitted events, then drop.
	body, r := openStream(t, base, st.ID, 0, "")
	var gen string
	for i := 0; i < 3; i++ {
		ev := readEvent(t, r)
		gen = ev.Gen
		if ev.Offset != i || ev.Cell.Key != fmt.Sprintf("c%d", i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	body.Close()

	// Reconnect at offset 3 with the generation we saw; release the
	// executor; the stream must continue with c3, c4, done — never
	// re-delivering c0..c2.
	body2, r2 := openStream(t, base, st.ID, 3, gen)
	defer body2.Close()
	close(release)
	for i, want := range []string{"c3", "c4"} {
		ev := readEvent(t, r2)
		if ev.Gen != gen || ev.Offset != 3+i || ev.Kind != StreamCell || ev.Cell.Key != want {
			t.Fatalf("resumed event %d = %+v, want cell %s at offset %d", i, ev, want, 3+i)
		}
	}
	fin := readEvent(t, r2)
	if fin.Kind != StreamDone || fin.State != StateDone || fin.Offset != 5 {
		t.Fatalf("final event = %+v", fin)
	}
}

// A reconnect bearing a stale generation token must restart from 0 —
// offsets from another daemon process's sequence are meaningless.
func TestStreamStaleGenerationRestartsFromZero(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	close(release) // emit everything immediately
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	d.execute = fakeStreamExec([]string{"c0", "c1"}, nil, started, release)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	st := mustSubmit(t, d, JobSpec{Experiments: []string{"fig4"}})
	waitState(t, d, st.ID, StateDone)

	body, r := openStream(t, base, st.ID, 2, "not-this-daemons-gen")
	defer body.Close()
	ev := readEvent(t, r)
	if ev.Offset != 0 || ev.Kind != StreamCell || ev.Cell.Key != "c0" {
		t.Fatalf("first event after stale-gen reconnect = %+v, want c0 at offset 0", ev)
	}
}

// After a restart, a journal-finished job's stream is synthesized
// from its output: every cell re-delivered in spec order under the
// replay generation, then the done event.
func TestStreamSynthesizedAfterRestart(t *testing.T) {
	journal := tmpJournal(t)
	cells := streamCells()[:2]
	var enc strings.Builder
	results := []CellResult{{Key: cells[0].Key(), Workload: "gcc"}, {Key: cells[1].Key(), Workload: "mcf"}}
	if err := EncodeCellResults(&enc, results); err != nil {
		t.Fatal(err)
	}

	d1, _, err := New(Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d1.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) {
		return enc.String(), nil
	}
	st, err := d1.Submit(JobSpec{Cells: cells, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d1, st.ID, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	d2, _, err := New(Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		d2.Shutdown(sctx)
	}()
	addr, err := d2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	body, r := openStream(t, "http://"+addr.String(), st.ID, 0, "")
	defer body.Close()
	for i, want := range results {
		ev := readEvent(t, r)
		if ev.Kind != StreamCell || ev.Offset != i || ev.Cell.Key != want.Key {
			t.Fatalf("synthesized event %d = %+v, want cell %s", i, ev, want.Key)
		}
		if !strings.HasSuffix(ev.Gen, "-replay") {
			t.Fatalf("synthesized event carries gen %q, want a replay generation", ev.Gen)
		}
	}
	fin := readEvent(t, r)
	if fin.Kind != StreamDone || fin.State != StateDone {
		t.Fatalf("synthesized final event = %+v", fin)
	}
}

// Streaming an unknown job is a 404, not a hung connection.
func TestStreamUnknownJob(t *testing.T) {
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/jobs/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}

// The slowloris defense: a connection that sends a partial request
// and stalls must be dropped once ReadHeaderTimeout expires, not held
// open forever.
func TestStalledHeaderConnDropped(t *testing.T) {
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1, HTTPReadHeaderTimeout: 200 * time.Millisecond})
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /jobs HTT")); err != nil { // stalls mid-request-line
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server closed the connection (or test deadline hit)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled-header connection survived %v, want drop near the 200ms ReadHeaderTimeout", elapsed)
	}
}

// Dropped stream connections must not leak handler goroutines, and a
// daemon with live streams must still shut down cleanly.
func TestStreamDroppedConnNoLeak(t *testing.T) {
	verify := leakcheck.Check(t)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	d, _, err := New(Config{JournalPath: tmpJournal(t), QueueCap: 4, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.execute = fakeStreamExec([]string{"c0"}, []string{"c1"}, started, release)
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	st, err := d.Submit(JobSpec{Experiments: []string{"fig4"}})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Open several streams mid-job and drop them all: each handler
	// goroutine must unblock on the closed request context.
	for i := 0; i < 4; i++ {
		body, r := openStream(t, base, st.ID, 0, "")
		readEvent(t, r) // ensure the handler is past its first write
		body.Close()
	}

	// A second job stays queued (the single worker is busy) and its
	// stream has no events to deliver: the handler blocks. Shutdown
	// must wake it via stopStreams, not hang the HTTP drain on it.
	queued, err := d.Submit(JobSpec{Experiments: []string{"fig10"}})
	if err != nil {
		t.Fatal(err)
	}
	blocked, _ := openStream(t, base, queued.ID, 0, "")

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownDone <- d.Shutdown(ctx)
	}()
	// Admission is closed the moment Shutdown begins; only then
	// release the running job so the worker exits without ever
	// picking up the queued one.
	deadline := time.Now().Add(10 * time.Second)
	for !d.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("shutdown never started draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatal(err)
	}
	// The remaining goroutines to drain are the *client's*: the
	// still-open stream body and the transport's keep-alive loops.
	blocked.Close()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	verify()
}
