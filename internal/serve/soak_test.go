// Load/soak proof for the daemon, in the external test package so it
// can exercise the real HTTP surface through internal/serve/client
// (which imports serve) without an import cycle.
package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dice/internal/leakcheck"
	"dice/internal/obs"
	"dice/internal/serve"
	"dice/internal/serve/client"
)

// TestSoakConcurrentSubmissions floods the daemon with concurrent
// submissions through the retrying client — far more than the queue
// holds — and proves the robustness contract end to end:
//
//   - backpressure engaged: some submissions were rejected with 429
//     and absorbed by client retries (no job was lost);
//   - queue depth stayed bounded at QueueCap;
//   - every job's output is byte-identical to a serial (workers=1)
//     reference run of the same spec — concurrency changes timing,
//     never results;
//   - no goroutines leak once the daemon shuts down.
//
// The default size keeps tier-1 wall-clock small; DICE_SMOKE=1 (the
// same gate as bench-smoke) raises it to the full 2000-job soak used
// by `make soak` and CI's daemon job. At that scale the poll interval
// and retry budget stretch too: two thousand clients polling every
// 10ms would measure the HTTP mux, not the daemon contract. Under the
// race detector the smoke tier stays at the hundreds scale — `make
// soak` runs both a race pass and a plain thousands pass.
func TestSoakConcurrentSubmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	verifyLeaks := leakcheck.Check(t)

	jobs := 60
	poll := 10 * time.Millisecond
	maxDelay := 100 * time.Millisecond
	maxAttempts := 400
	timeout := 3 * time.Minute
	if os.Getenv("DICE_SMOKE") == "1" {
		jobs = 2000
		if raceEnabled {
			// The detector's instrumentation cost scales with goroutine
			// count times synchronization volume; 2000 clients with
			// tens of thousands of backpressure retries does not finish
			// in bounded wall-clock on a small machine. The race pass
			// proves the concurrency contract at the hundreds scale;
			// the plain pass carries the thousands-scale proof.
			jobs = 200
		}
		poll = time.Second
		maxDelay = 250 * time.Millisecond
		maxAttempts = 600
		timeout = 25 * time.Minute
	}
	const queueCap = 32

	d, _, err := serve.New(serve.Config{
		JournalPath: filepath.Join(t.TempDir(), "soak.journal"),
		QueueCap:    queueCap,
		JobWorkers:  4,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gate the prefill jobs (recognized by their distinctive ref
	// budget) inside the executor: they hold their worker until the
	// flood below has provably met a full queue. Without the gate the
	// 429 assertion races job runtime against submission rate — the
	// simulator is fast enough that prefill jobs can drain as quickly
	// as the journal-fsync'd submissions arrive, and the queue never
	// fills on a loaded machine.
	gate := make(chan struct{})
	serve.SetExecuteForTest(d, func(ctx context.Context, spec serve.JobSpec, emit func(serve.StreamEvent)) (string, error) {
		if spec.Refs >= 3_000 {
			select {
			case <-gate:
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		return serve.RunSpecStream(ctx, spec, 0, emit)
	})

	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Four distinct flood specs so the byte-equality check is not
	// trivially one cached string; metrics-demo at tiny ref budgets
	// keeps each flood job in the low milliseconds. The prefill below
	// uses a fifth, slower shape.
	specFor := func(i int) serve.JobSpec {
		return serve.JobSpec{
			Experiments: []string{"metrics-demo"},
			Refs:        300 + (i%4)*50,
			Scale:       12,
			Workers:     2,
		}
	}
	// Serial references: workers=1, same spec, computed outside the
	// daemon. The acceptance bar is byte-identity per job.
	refs := make(map[int]string)
	refFor := func(i int) string {
		spec := specFor(i)
		if out, ok := refs[spec.Refs]; ok {
			return out
		}
		spec.Workers = 1
		out, err := serve.RunSpec(context.Background(), spec, 0)
		if err != nil {
			t.Fatalf("reference run refs=%d: %v", spec.Refs, err)
		}
		refs[spec.Refs] = out
		return out
	}

	httpClient := &http.Client{}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Prefill: stuff the queue to its cap with gated jobs (held by the
	// executor wrapper above) through a retrying client, so the flood
	// below is guaranteed to meet a full queue and take 429s. Each
	// prefill job keeps a distinct ref budget: the ≥3000 band is the
	// gate's recognition key, and the process-wide workload artifact
	// cache would otherwise collapse identical specs once released.
	prefillSpec := func(i int) serve.JobSpec {
		return serve.JobSpec{
			Experiments: []string{"metrics-demo"}, Refs: 3_000 + i*7, Scale: 12, Workers: 2,
		}
	}
	prefill := client.New("http://"+addr.String(), 99)
	prefill.HTTPClient = httpClient
	prefill.BaseDelay = 5 * time.Millisecond
	prefill.MaxDelay = maxDelay
	prefill.MaxAttempts = maxAttempts
	prefillIDs := make([]string, 0, queueCap+4)
	for i := 0; i < queueCap+4; i++ {
		st, err := prefill.Submit(ctx, prefillSpec(i))
		if err != nil {
			t.Fatalf("prefill %d: %v", i, err)
		}
		prefillIDs = append(prefillIDs, st.ID)
	}

	type result struct {
		idx int
		st  serve.JobStatus
		err error
	}
	results := make(chan result, jobs)
	// Per-submission latency as seen through the retrying client —
	// backpressure retries included, so the tail is the backpressure
	// story, not just the handler.
	var submitLat obs.Latencies
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New("http://"+addr.String(), int64(i))
			c.HTTPClient = httpClient
			c.BaseDelay = 5 * time.Millisecond
			c.MaxDelay = maxDelay
			c.MaxAttempts = maxAttempts
			t0 := time.Now()
			st, err := c.Submit(ctx, specFor(i))
			submitLat.Observe(time.Since(t0))
			if err == nil {
				st, err = c.Wait(ctx, st.ID, poll)
			}
			results <- result{i, st, err}
		}(i)
	}

	// Release the gated prefill workers only once the flood has taken
	// at least one 429 — from here the backpressure assertion below is
	// a certainty, not a timing accident.
	for d.Stats().Rejected == 0 {
		if ctx.Err() != nil {
			t.Fatal("flood never met a full queue before the context deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	for i, id := range prefillIDs {
		st, err := prefill.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("prefill job %d: %v", i, err)
		}
		if st.State != serve.StateDone {
			t.Fatalf("prefill job %d finished %s (%s)", i, st.State, st.Error)
		}
		// Byte-identity spot check on the first two prefill jobs (a
		// serial reference per distinct budget would double the test).
		if i < 2 && !st.OutputDropped {
			spec := prefillSpec(i)
			spec.Workers = 1
			want, err := serve.RunSpec(context.Background(), spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.Output != want {
				t.Fatalf("prefill job %d diverged from serial reference", i)
			}
		}
	}

	mismatches := 0
	for r := range results {
		if r.err != nil {
			t.Fatalf("job %d: %v", r.idx, r.err)
		}
		if r.st.State != serve.StateDone {
			t.Fatalf("job %d finished %s (%s)", r.idx, r.st.State, r.st.Error)
		}
		if r.st.OutputDropped {
			continue // retention evicted it; equality checked via the rest
		}
		if want := refFor(r.idx); r.st.Output != want {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("job %d output diverges from serial reference:\n got %d bytes\nwant %d bytes", r.idx, len(r.st.Output), len(want))
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d jobs diverged from the serial reference", mismatches, jobs)
	}

	st := d.Stats()
	if st.Rejected == 0 {
		t.Errorf("no 429s with %d submissions against a %d-deep queue: backpressure never engaged", jobs, queueCap)
	}
	if st.MaxQueueDepth > queueCap {
		t.Errorf("queue depth peaked at %d, above its %d bound", st.MaxQueueDepth, queueCap)
	}
	if want := uint64(jobs + len(prefillIDs)); st.Done != want {
		t.Errorf("daemon completed %d jobs, want %d", st.Done, want)
	}
	t.Logf("soak: %d jobs, %d rejections absorbed by retry, peak queue depth %d",
		jobs, st.Rejected, st.MaxQueueDepth)
	if submitLat.Count() != jobs {
		t.Errorf("latency histogram holds %d samples for %d jobs", submitLat.Count(), jobs)
	}
	t.Logf("soak: submit latency %v", submitLat.Summary())

	// Drop the client's pooled connections first so the server's own
	// shutdown never waits on idle keep-alives.
	httpClient.CloseIdleConnections()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := d.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	verifyLeaks()
}

// TestRestartReplayMatchesUninterrupted proves the crash-safety bar
// with the real executor: a daemon killed with work outstanding (here:
// shut down with a queued job checkpointed, the journal's crash
// image) re-runs it on restart and produces bytes identical to a run
// that was never interrupted. The SIGKILL variant of this lives in
// cmd/dicebenchd's smoke test; this covers the journal/replay half
// in-process.
func TestRestartReplayMatchesUninterrupted(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "restart.journal")
	spec := serve.JobSpec{Experiments: []string{"metrics-demo"}, Refs: 400, Scale: 12}

	want, err := serve.RunSpec(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}

	// First life: zero workers would be ideal, but the minimum is one;
	// instead submit while draining is not yet possible — so submit,
	// then shut down immediately with a zero drain budget so the job
	// is checkpointed rather than run.
	d1, _, err := serve.New(serve.Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := d1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	d1.Shutdown(ctx)
	cancel()

	// Second life: the journal replays the unfinished job and runs it.
	d2, rep, err := serve.New(serve.Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		d2.Shutdown(sctx)
	}()
	if len(rep.Jobs) != 1 {
		t.Fatalf("replay saw %d jobs, want 1", len(rep.Jobs))
	}
	deadline := time.Now().Add(time.Minute)
	for {
		got, err := d2.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			if got.State != serve.StateDone {
				t.Fatalf("replayed job finished %s (%s)", got.State, got.Error)
			}
			if !got.Replayed {
				t.Fatal("job not marked replayed")
			}
			if got.Output != want {
				t.Fatalf("replayed run diverged from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got.Output), len(want))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Example-shaped guard that the exported API stays wired: a daemon
// with persistence disabled accepts and runs a job purely in memory.
func TestInMemoryDaemonNoJournal(t *testing.T) {
	d, rep, err := serve.New(serve.Config{QueueCap: 2, JobWorkers: 1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		d.Shutdown(sctx)
	}()
	if rep != nil && len(rep.Jobs) != 0 {
		t.Fatalf("journal-less daemon replayed jobs: %+v", rep)
	}
	st, err := d.Submit(serve.JobSpec{Experiments: []string{"metrics-demo"}, Refs: 300, Scale: 12})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		got, err := d.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			if got.State != serve.StateDone || got.Output == "" {
				t.Fatalf("in-memory job: %+v", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(fmt.Sprintf("in-memory job stuck in %s", got.State))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
