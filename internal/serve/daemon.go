package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"dice/internal/commitlog"
	"dice/internal/obs"
)

// Sentinel errors the HTTP layer maps to status codes; exported so
// programmatic users of Submit/Cancel can distinguish them too.
var (
	// ErrQueueFull is returned when admission would exceed the queue
	// bound; the HTTP layer maps it to 429 + Retry-After.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned once shutdown has begun; the HTTP layer
	// maps it to 503.
	ErrDraining = errors.New("serve: daemon is draining")
	// ErrNotFound is returned for an unknown job ID (404).
	ErrNotFound = errors.New("serve: no such job")
)

// abandonSlack bounds how long Shutdown waits, after cancelling
// in-flight jobs at the drain deadline, for their workers to observe
// the cancellation (granularity: one simulation cell).
const abandonSlack = 30 * time.Second

// Config parameterizes a Daemon. Zero values take the documented
// defaults.
type Config struct {
	// JournalPath is the crash-safe job journal ("" = no persistence:
	// jobs live only in memory and a restart forgets them).
	JournalPath string
	// JournalBatchBytes bounds one journal group-commit batch (default
	// 1 MiB; see commitlog.Options.MaxBatchBytes).
	JournalBatchBytes int
	// JournalLinger is how long the journal committer waits for
	// batch-mates after the first enqueue of a batch (default 0: commit
	// immediately; batching comes from appends arriving while a sync is
	// in flight — see commitlog.Options.MaxLinger).
	JournalLinger time.Duration
	// JournalNoGroupCommit selects the reference fsync-per-append
	// journal discipline. For A/B measurement (perfbench, bench-smoke),
	// not production use.
	JournalNoGroupCommit bool
	// QueueCap bounds the number of queued-but-not-started jobs
	// (default 64). Submissions beyond it fail with ErrQueueFull —
	// the explicit backpressure signal — rather than growing memory.
	QueueCap int
	// JobWorkers is how many jobs run concurrently (default 1). Each
	// job additionally fans its simulations out per its spec's
	// Workers field; results are byte-identical at any setting.
	JobWorkers int
	// DefaultRefs is the per-core reference budget for specs that
	// leave Refs zero (default 60000, matching dicebench).
	DefaultRefs int
	// DefaultDeadline applies to specs that leave DeadlineMS zero
	// (0 = no deadline).
	DefaultDeadline time.Duration
	// RetainOutputs caps how many terminal jobs keep their output
	// bytes in memory (default 256). Older outputs are evicted from
	// the status map — the journal still holds them — so a long-lived
	// daemon's memory stays bounded by the cap, not by its history.
	RetainOutputs int
	// HTTPReadHeaderTimeout bounds how long a connection may take to
	// send its request headers before being dropped (default 5s) —
	// the slowloris defense.
	HTTPReadHeaderTimeout time.Duration
	// HTTPReadTimeout bounds reading one whole request, body included
	// (default 1m; specs are capped at maxSpecBytes anyway).
	HTTPReadTimeout time.Duration
	// HTTPIdleTimeout bounds how long an idle keep-alive connection is
	// kept open (default 2m).
	HTTPIdleTimeout time.Duration
	// HTTPWriteTimeout bounds writing one non-streaming response
	// (default 1m). It is applied per request via ResponseController,
	// NOT as http.Server.WriteTimeout — a server-wide write timeout
	// would kill long-lived /stream responses.
	HTTPWriteTimeout time.Duration
	// StreamWriteTimeout bounds each individual write on a job stream
	// (default 15s): a streaming client that stops reading is dropped
	// — the job itself is unaffected and the client can reconnect at
	// its last offset.
	StreamWriteTimeout time.Duration
	// StreamBufferCap bounds each job's in-memory stream event buffer
	// (default 65536). Cell and done events always fit (cells are
	// bounded by MaxCellsPerJob); epoch events beyond the cap are
	// dropped — they are best-effort telemetry.
	StreamBufferCap int
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Daemon is the experiment job daemon: a bounded queue feeding
// JobWorkers workers, a journal, and an HTTP handler. Create with
// New, serve with Start (or mount Handler yourself), stop with
// Shutdown.
type Daemon struct {
	cfg     Config
	journal *Journal
	execute func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error)

	// gen is this process's stream generation token; replayGen is the
	// stable token for synthesized streams of jobs that finished in an
	// earlier process (see stream.go's delivery contract).
	gen       string
	replayGen string

	queue       chan *job
	stopPick    chan struct{}
	stopStreams chan struct{}
	workers     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission/replay order, for GET /jobs
	retained []string // terminal jobs still holding output, oldest first
	depth    int      // queued jobs (reserved admission slots)
	maxDepth int
	active   int
	seq      uint64
	draining bool
	stopped  bool
	stats    statsCounters

	srv   *http.Server
	start time.Time
}

// statsCounters are the daemon's monotone self-stats, guarded by
// Daemon.mu (every mutation site already holds it).
type statsCounters struct {
	submitted, rejected, started uint64
	done, failed, cancelled      uint64
	replayed                     uint64
}

// Stats is a point-in-time snapshot of the daemon's self-stats, as
// exposed on /healthz (see METRICS.md "Daemon self-stats").
type Stats struct {
	// Submitted counts accepted submissions (replayed re-enqueues
	// excluded).
	Submitted uint64 `json:"jobs_submitted"`
	// Rejected counts ErrQueueFull backpressure rejections.
	Rejected uint64 `json:"jobs_rejected"`
	// Started counts jobs a worker picked up in this process.
	Started uint64 `json:"jobs_started"`
	// Done counts jobs that finished successfully.
	Done uint64 `json:"jobs_done"`
	// Failed counts jobs that errored, panicked, or overran a deadline.
	Failed uint64 `json:"jobs_failed"`
	// Cancelled counts jobs cancelled by clients.
	Cancelled uint64 `json:"jobs_cancelled"`
	// Replayed counts jobs restored from the journal on startup.
	Replayed uint64 `json:"jobs_replayed"`
	// QueueDepth is the current number of queued jobs.
	QueueDepth int `json:"queue_depth"`
	// MaxQueueDepth is the queue-depth high-water mark.
	MaxQueueDepth int `json:"queue_max_depth"`
	// QueueCap is the configured queue bound.
	QueueCap int `json:"queue_cap"`
	// Active is the number of jobs running right now.
	Active int `json:"jobs_active"`
}

// New builds a Daemon, replays its journal (re-enqueueing every job
// the previous process never finished, in sequence order), and starts
// the job workers. The returned Replay reports what was restored; nil
// when cfg.JournalPath is empty.
func New(cfg Config) (*Daemon, *Replay, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.DefaultRefs <= 0 {
		cfg.DefaultRefs = 60_000
	}
	if cfg.RetainOutputs <= 0 {
		cfg.RetainOutputs = 256
	}
	if cfg.HTTPReadHeaderTimeout <= 0 {
		cfg.HTTPReadHeaderTimeout = 5 * time.Second
	}
	if cfg.HTTPReadTimeout <= 0 {
		cfg.HTTPReadTimeout = time.Minute
	}
	if cfg.HTTPIdleTimeout <= 0 {
		cfg.HTTPIdleTimeout = 2 * time.Minute
	}
	if cfg.HTTPWriteTimeout <= 0 {
		cfg.HTTPWriteTimeout = time.Minute
	}
	if cfg.StreamWriteTimeout <= 0 {
		cfg.StreamWriteTimeout = 15 * time.Second
	}
	if cfg.StreamBufferCap <= 0 {
		cfg.StreamBufferCap = 1 << 16
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	var (
		journal *Journal
		rep     *Replay
		err     error
	)
	if cfg.JournalPath != "" {
		journal, rep, err = OpenJournalWith(cfg.JournalPath, commitlog.Options{
			MaxBatchBytes: cfg.JournalBatchBytes,
			MaxLinger:     cfg.JournalLinger,
			NoGroupCommit: cfg.JournalNoGroupCommit,
		})
		if err != nil {
			return nil, nil, err
		}
	}

	d := &Daemon{
		cfg:         cfg,
		journal:     journal,
		jobs:        make(map[string]*job),
		stopPick:    make(chan struct{}),
		stopStreams: make(chan struct{}),
		gen:         newGen(),
		seq:         1,
		start:       time.Now(),
	}
	d.replayGen = d.gen + "-replay"
	d.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) {
		return RunSpecStream(ctx, spec, d.cfg.DefaultRefs, emit)
	}

	// The channel needs room for the admission bound plus whatever
	// backlog replay restores (the backlog was itself admitted under
	// the bound by the previous process, so memory stays bounded).
	backlog := 0
	if rep != nil {
		for _, rj := range rep.Jobs {
			if rj.Unfinished() {
				backlog++
			}
		}
	}
	d.queue = make(chan *job, cfg.QueueCap+backlog)

	if rep != nil {
		d.restore(rep)
	}
	for i := 0; i < cfg.JobWorkers; i++ {
		d.workers.Add(1)
		go d.worker()
	}
	return d, rep, nil
}

// restore rebuilds the job table from a journal replay: finished jobs
// become queryable terminal statuses; unfinished ones re-enter the
// queue in sequence order and will re-run. Simulations are pure
// functions of their spec, so the re-run's output is byte-identical
// to what the interrupted run would have produced.
func (d *Daemon) restore(rep *Replay) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq = rep.NextSeq
	for _, rj := range rep.Jobs {
		jb := &job{status: JobStatus{
			ID: rj.ID, Seq: rj.Seq, Spec: rj.Spec, Replayed: true,
		}}
		d.jobs[rj.ID] = jb
		d.order = append(d.order, rj.ID)
		d.stats.replayed++
		if rj.Finished {
			jb.status.State = rj.State
			jb.status.Output = rj.Output
			jb.status.Error = rj.Error
			// No live stream buffer: streams of journal-finished jobs
			// are synthesized from the status under d.replayGen.
			d.retainLocked(jb)
			continue
		}
		jb.status.State = StateQueued
		jb.prog = newProgress(d.gen, d.cfg.StreamBufferCap)
		d.depth++
		if d.depth > d.maxDepth {
			d.maxDepth = d.depth
		}
		d.queue <- jb // capacity reserved for the backlog in New
		d.cfg.Logf("serve: replay re-enqueued %s (%v)", rj.ID, rj.Spec.Experiments)
	}
	if rep.TruncatedBytes > 0 {
		d.cfg.Logf("serve: journal: dropped %d bytes of torn tail", rep.TruncatedBytes)
	}
}

// Submit admits one job: validate, journal, enqueue. It fails fast
// with ErrQueueFull once QueueCap jobs are waiting (the backpressure
// contract — memory never grows with offered load) and ErrDraining
// once shutdown has begun.
func (d *Daemon) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if d.depth >= d.cfg.QueueCap {
		d.stats.rejected++
		d.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	d.depth++
	if d.depth > d.maxDepth {
		d.maxDepth = d.depth
	}
	seq := d.seq
	d.seq++
	id := fmt.Sprintf("j%d", seq)
	jb := &job{status: JobStatus{
		ID: id, Seq: seq, State: StateQueued, Spec: spec, SubmittedAt: time.Now(),
	}}
	jb.prog = newProgress(d.gen, d.cfg.StreamBufferCap)
	d.jobs[id] = jb
	d.order = append(d.order, id)
	d.stats.submitted++
	// Enqueue the journal record while holding the lock — that stakes
	// the record's place in journal file order, so a job's submit
	// record always precedes its start record (the worker can only see
	// the job after the queue send below). The fsync itself is awaited
	// AFTER unlocking: holding d.mu across the sync would serialize
	// concurrent submits and defeat group commit.
	ticket := d.journal.enqueue(record{T: "submit", ID: id, Seq: seq, Spec: &spec})
	st := jb.status
	d.mu.Unlock()

	if err := ticket.Wait(); err != nil {
		// Admission without a durable record would break the restart
		// contract; undo and surface the error. The job was transiently
		// visible to Status while the sync was in flight — harmless, it
		// never reached a worker.
		d.mu.Lock()
		delete(d.jobs, id)
		for i := len(d.order) - 1; i >= 0; i-- {
			if d.order[i] == id {
				d.order = append(d.order[:i], d.order[i+1:]...)
				break
			}
		}
		d.depth--
		d.mu.Unlock()
		return JobStatus{}, err
	}

	d.queue <- jb // never blocks: depth reservation <= channel capacity
	d.cfg.Logf("serve: %s submitted (%v)", id, spec.Experiments)
	return st, nil
}

// worker pulls jobs until shutdown. The stopPick channel — not queue
// closure — ends the loop, so queued jobs survive in the channel (and
// in the journal) as the shutdown checkpoint.
func (d *Daemon) worker() {
	defer d.workers.Done()
	for {
		select {
		case <-d.stopPick:
			return
		default:
		}
		select {
		case <-d.stopPick:
			return
		case jb := <-d.queue:
			d.mu.Lock()
			d.depth--
			skip := jb.cancelRequested // cancelled while queued; finish already journaled
			if !skip {
				jb.status.State = StateRunning
				jb.status.StartedAt = time.Now()
				d.active++
				d.stats.started++
			}
			d.mu.Unlock()
			if skip {
				continue
			}
			d.runJob(jb)
		}
	}
}

// runJob executes one job under its own context, with panic isolation
// and deadline enforcement, then records the outcome.
func (d *Daemon) runJob(jb *job) {
	spec := jb.status.Spec
	ctx, cancel := context.WithCancel(context.Background())
	deadline := d.cfg.DefaultDeadline
	if spec.DeadlineMS > 0 {
		deadline = time.Duration(spec.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	}
	defer cancel()

	d.mu.Lock()
	jb.cancel = cancel
	requested := jb.cancelRequested
	d.mu.Unlock()
	if requested {
		// A cancel raced the dequeue (it saw StateRunning before the
		// cancel func was registered); honor it before doing work.
		cancel()
	}

	if err := d.journal.append(record{T: "start", ID: jb.status.ID}); err != nil {
		d.finish(jb, StateFailed, "", err.Error(), true)
		return
	}

	emit := func(StreamEvent) {}
	if jb.prog != nil {
		emit = jb.prog.add
	}

	// Panic isolation: a crashing job fails alone, with its stack in
	// the status, and the worker (and daemon) live on.
	output, err := func() (out string, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
			}
		}()
		return d.execute(ctx, spec, emit)
	}()

	d.mu.Lock()
	abandoned := jb.shutdownAbandon
	userCancelled := jb.cancelRequested
	d.mu.Unlock()

	switch {
	case abandoned && err != nil:
		// Shutdown took the context away: leave the journal without a
		// finish record so a restart re-runs the job (checkpoint). The
		// stream buffer stays open too — no done event is emitted, and
		// blocked streamers wake on stopStreams; the restarted daemon
		// serves the re-run under a fresh generation.
		d.mu.Lock()
		jb.status.State = StateInterrupted
		jb.status.Error = "interrupted by daemon shutdown; will re-run on restart"
		d.active--
		d.mu.Unlock()
		d.cfg.Logf("serve: %s interrupted by shutdown", jb.status.ID)
	case err == nil:
		d.finish(jb, StateDone, output, "", true)
	case userCancelled && errors.Is(err, context.Canceled):
		d.finish(jb, StateCancelled, output, "cancelled by client", true)
	case errors.Is(err, context.DeadlineExceeded):
		d.finish(jb, StateFailed, output, fmt.Sprintf("deadline exceeded after %v", deadline), true)
	default:
		d.finish(jb, StateFailed, output, err.Error(), true)
	}
}

// finish moves a job to a terminal state, journals it (unless
// journalIt is false — used when the journal itself failed), applies
// output retention, and updates the counters.
func (d *Daemon) finish(jb *job, state JobState, output, errMsg string, journalIt bool) {
	if journalIt {
		if jerr := d.journal.append(record{
			T: "finish", ID: jb.status.ID, State: state, Output: output, Error: errMsg,
		}); jerr != nil {
			// The in-memory state is still authoritative for this
			// process; a restart will re-run the job, which is safe
			// (deterministic) if wasteful.
			d.cfg.Logf("serve: %s: journal finish failed: %v", jb.status.ID, jerr)
		}
	}
	d.mu.Lock()
	wasRunning := jb.status.State == StateRunning
	jb.status.State = state
	jb.status.Output = output
	jb.status.Error = errMsg
	jb.status.FinishedAt = time.Now()
	if wasRunning {
		d.active--
	}
	switch state {
	case StateDone:
		d.stats.done++
	case StateFailed:
		d.stats.failed++
	case StateCancelled:
		d.stats.cancelled++
	}
	d.retainLocked(jb)
	prog := jb.prog
	d.mu.Unlock()
	if prog != nil {
		prog.finish(state, errMsg)
	}
	d.cfg.Logf("serve: %s %s", jb.status.ID, state)
}

// retainLocked enforces the bounded-output retention: the newest
// RetainOutputs terminal jobs keep their output bytes and stream
// buffer, older ones are evicted to the journal (their streams
// degrade to the synthesized done-only replay). Caller holds d.mu.
func (d *Daemon) retainLocked(jb *job) {
	if jb.status.Output == "" && jb.prog == nil {
		return
	}
	d.retained = append(d.retained, jb.status.ID)
	for len(d.retained) > d.cfg.RetainOutputs {
		old := d.jobs[d.retained[0]]
		d.retained = d.retained[1:]
		if old == nil {
			continue
		}
		if old.status.Output != "" {
			old.status.Output = ""
			old.status.OutputDropped = true
		}
		old.prog = nil
	}
}

// Cancel cancels a job: a queued job is finished as cancelled on the
// spot (the worker discards it on dequeue); a running job has its
// context cancelled and the worker records the outcome. Cancelling a
// terminal job is a no-op returning its status.
func (d *Daemon) Cancel(id string) (JobStatus, error) {
	d.mu.Lock()
	jb, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return JobStatus{}, ErrNotFound
	}
	switch jb.status.State {
	case StateQueued:
		jb.cancelRequested = true
		jb.status.State = StateCancelled
		jb.status.Error = "cancelled by client while queued"
		jb.status.FinishedAt = time.Now()
		d.stats.cancelled++
		rec := record{T: "finish", ID: id, State: StateCancelled, Error: jb.status.Error}
		st := jb.status
		// Enqueue under the lock: the finish must precede any later
		// record for this id in journal file order. The sync is awaited
		// after unlocking.
		ticket := d.journal.enqueue(rec)
		d.retainLocked(jb)
		prog := jb.prog
		d.mu.Unlock()
		if err := ticket.Wait(); err != nil {
			d.cfg.Logf("serve: %s: journal cancel failed: %v", id, err)
		}
		if prog != nil {
			prog.finish(StateCancelled, st.Error)
		}
		d.cfg.Logf("serve: %s cancelled while queued", id)
		return st, nil
	case StateRunning:
		jb.cancelRequested = true
		cancel := jb.cancel
		st := jb.status
		d.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return st, nil
	default:
		st := jb.status
		d.mu.Unlock()
		return st, nil
	}
}

// Status returns one job's status.
func (d *Daemon) Status(id string) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	jb, ok := d.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return jb.status, nil
}

// Statuses returns every job's status in submission order, with
// outputs elided (fetch a single job for its output).
func (d *Daemon) Statuses() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		st := d.jobs[id].status
		st.Output = ""
		out = append(out, st)
	}
	return out
}

// Stats snapshots the daemon's self-stats.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Submitted: d.stats.submitted, Rejected: d.stats.rejected,
		Started: d.stats.started, Done: d.stats.done,
		Failed: d.stats.failed, Cancelled: d.stats.cancelled,
		Replayed:   d.stats.replayed,
		QueueDepth: d.depth, MaxQueueDepth: d.maxDepth,
		QueueCap: d.cfg.QueueCap, Active: d.active,
	}
}

// Draining reports whether shutdown has begun (admission closed).
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Start listens on addr ("" or host:0 pick an ephemeral port) and
// serves the HTTP API until Shutdown. It returns the bound address.
func (d *Daemon) Start(addr string) (net.Addr, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	// WriteTimeout stays zero on purpose: it would cut long-lived
	// /stream responses. Non-streaming responses get a per-request
	// write deadline in Handler, and streams a per-write deadline in
	// handleStream.
	d.srv = &http.Server{
		Handler:           d.Handler(),
		ReadHeaderTimeout: d.cfg.HTTPReadHeaderTimeout,
		ReadTimeout:       d.cfg.HTTPReadTimeout,
		IdleTimeout:       d.cfg.HTTPIdleTimeout,
	}
	go d.srv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown stops the daemon within a bound: admission closes
// immediately (submits → 503, /readyz → 503), workers finish their
// current job and exit, and queued jobs stay checkpointed in the
// journal for the next start. If ctx expires before the drain
// completes, in-flight jobs are cancelled and left unfinished in the
// journal — also checkpointed — and Shutdown waits a short slack for
// the workers to observe it. Safe to call more than once.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return nil
	}
	d.stopped = true
	d.draining = true
	d.mu.Unlock()
	close(d.stopPick)

	done := make(chan struct{})
	go func() {
		d.workers.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		// Drain bound reached: checkpoint the in-flight jobs by
		// cancelling their contexts without journaling a finish.
		d.mu.Lock()
		var cancels []context.CancelFunc
		for _, id := range d.order {
			jb := d.jobs[id]
			if jb.status.State == StateRunning {
				jb.shutdownAbandon = true
				if jb.cancel != nil {
					cancels = append(cancels, jb.cancel)
				}
			}
		}
		d.mu.Unlock()
		for _, cancel := range cancels {
			cancel()
		}
		select {
		case <-done:
		case <-time.After(abandonSlack):
			drainErr = fmt.Errorf("serve: %d jobs still running %v after cancellation", len(cancels), abandonSlack)
		}
	}

	// Wake every blocked streamer so the HTTP shutdown below is not
	// held open by long-lived /stream responses.
	close(d.stopStreams)

	if d.srv != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := d.srv.Shutdown(sctx); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("serve: http shutdown: %w", err)
		}
	}
	if err := d.journal.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs               submit (202; 429 + Retry-After on queue-full; 503 draining)
//	GET    /jobs               list statuses, outputs elided
//	GET    /jobs/{id}          one status, output included
//	GET    /jobs/{id}/stream   NDJSON event stream (see stream.go; ?offset=N&gen=G resumes)
//	DELETE /jobs/{id}          cancel
//	GET    /healthz            process self-stats + daemon counters (always 200 while serving)
//	GET    /readyz             200 while admitting, 503 once draining
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", d.handleList)
	mux.HandleFunc("GET /jobs/{id}", d.handleGet)
	mux.HandleFunc("GET /jobs/{id}/stream", d.handleStream)
	mux.HandleFunc("DELETE /jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /healthz", d.handleHealth)
	mux.HandleFunc("GET /readyz", d.handleReady)
	return d.withWriteDeadline(mux)
}

// withWriteDeadline bounds response writes for the non-streaming
// endpoints via ResponseController (streams manage their own
// per-write deadlines in handleStream). Writers that do not support
// deadlines — httptest recorders — are silently unbounded.
func (d *Daemon) withWriteDeadline(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/stream") {
			_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(d.cfg.HTTPWriteTimeout))
		}
		h.ServeHTTP(w, r)
	})
}

// handleStream serves GET /jobs/{id}/stream: the job's event sequence
// as framed NDJSON, flushed as events arrive, blocking while the job
// runs. ?offset=N resumes at event N of generation ?gen=G; a stale or
// absent generation restarts from 0 (the client re-delivers and the
// consumer dedups on cell key).
func (d *Daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	jb, ok := d.jobs[id]
	var prog *progress
	var st JobStatus
	if ok {
		prog = jb.prog
		st = jb.status
	}
	d.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, ErrNotFound)
		return
	}

	offset := 0
	if v := r.URL.Query().Get("offset"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			offset = n
		}
	}
	gen := r.URL.Query().Get("gen")

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush() // headers out before the first (possibly delayed) event

	if prog == nil {
		// The live buffer is gone (job finished in a previous process,
		// or retention evicted it): serve the synthesized deterministic
		// replay sequence under the stable replay generation.
		evs := synthesizeStream(d.replayGen, st)
		if gen != d.replayGen {
			offset = 0
		}
		if offset > len(evs) {
			offset = len(evs)
		}
		d.writeStreamEvents(w, rc, evs[offset:])
		return
	}

	if gen != d.gen {
		offset = 0 // another process's sequence (or first connect): restart
	}
	for {
		evs, closed, wait := prog.snapshot(offset)
		if len(evs) > 0 {
			if err := d.writeStreamEvents(w, rc, evs); err != nil {
				return // client gone or stalled past StreamWriteTimeout
			}
			offset += len(evs)
		}
		if closed {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		case <-d.stopStreams:
			return
		}
	}
}

// writeStreamEvents writes a batch of framed events, arming the
// per-write StreamWriteTimeout deadline before each one, and flushes
// once at the end of the batch.
func (d *Daemon) writeStreamEvents(w http.ResponseWriter, rc *http.ResponseController, evs []StreamEvent) error {
	for _, ev := range evs {
		line, err := EncodeStreamEvent(ev)
		if err != nil {
			return err
		}
		// Ignore ErrNotSupported (httptest recorders); real
		// connections enforce the deadline.
		_ = rc.SetWriteDeadline(time.Now().Add(d.cfg.StreamWriteTimeout))
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	rc.Flush()
	return nil
}

// maxSpecBytes bounds a submitted spec body; anything bigger is a
// client error, not a reason to grow daemon memory.
const maxSpecBytes = 1 << 20

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad job spec: %w", err))
		return
	}
	st, err := d.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Statuses())
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := d.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := d.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// Health is the /healthz payload: process self-stats (internal/obs)
// plus the daemon's job counters.
type Health struct {
	// Status is "ok" whenever the handler answers.
	Status string `json:"status"`
	// UptimeMS is milliseconds since the daemon was constructed.
	UptimeMS int64 `json:"uptime_ms"`
	// Draining is true once shutdown has closed admission.
	Draining bool `json:"draining"`
	// Self carries goroutine/allocation/GC self-stats.
	Self obs.SelfStatus `json:"self"`
	// Stats carries the daemon's job and queue counters.
	Stats Stats `json:"stats"`
	// Journal carries the journal's group-commit counters (see
	// METRICS.md "Commit-log counters"); omitted when the daemon runs
	// without persistence.
	Journal *commitlog.Stats `json:"journal,omitempty"`
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:   "ok",
		UptimeMS: time.Since(d.start).Milliseconds(),
		Draining: d.Draining(),
		Self:     obs.CaptureSelfStatus(),
		Stats:    d.Stats(),
		Journal:  d.journal.Stats(),
	})
}

func (d *Daemon) handleReady(w http.ResponseWriter, r *http.Request) {
	if d.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr writes a JSON error envelope.
func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
