//go:build !race

package serve_test

// raceEnabled reports whether this test binary carries the race
// detector; see soak_race_test.go.
const raceEnabled = false
