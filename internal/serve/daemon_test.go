package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dice/internal/leakcheck"
)

// Daemon unit tests. These run with a controllable fake executor
// (package-internal access to d.execute) so queue-full, deadline,
// panic, cancel, and drain timing are deterministic rather than
// dependent on simulation wall-clock. The end-to-end paths with the
// real executor live in soak_test.go and cmd/dicebenchd's smoke test.

// testDaemon builds a daemon on a temp journal and registers cleanup.
func testDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.JournalPath == "" {
		cfg.JournalPath = tmpJournal(t)
	}
	d, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return d
}

// blockingExec returns an executor that signals started and blocks
// until released or its context ends (returning ctx.Err() like the
// real RunAllCtx-based executor does).
func blockingExec(started chan<- string, release <-chan struct{}) func(context.Context, JobSpec, func(StreamEvent)) (string, error) {
	return func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) {
		select {
		case started <- spec.Experiments[0]:
		default:
		}
		select {
		case <-release:
			return "released:" + spec.Experiments[0], nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, d *Daemon, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := d.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustSubmit(t *testing.T, d *Daemon, spec JobSpec) JobStatus {
	t.Helper()
	st, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// Admission beyond QueueCap must fail fast with ErrQueueFull (and 429
// + Retry-After over HTTP) while earlier jobs are unaffected — the
// backpressure contract: bounded queue, never bounded-less memory.
func TestBackpressureQueueFull(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	d := testDaemon(t, Config{QueueCap: 2, JobWorkers: 1})
	d.execute = blockingExec(started, release)

	spec := JobSpec{Experiments: []string{"fig4"}}
	running := mustSubmit(t, d, spec)
	<-started // the worker holds job 1; the queue is empty again
	q1 := mustSubmit(t, d, spec)
	q2 := mustSubmit(t, d, spec)

	if _, err := d.Submit(spec); err != ErrQueueFull {
		t.Fatalf("submit over capacity: err = %v, want ErrQueueFull", err)
	}
	if st := d.Stats(); st.Rejected != 1 || st.QueueDepth != 2 || st.MaxQueueDepth != 2 {
		t.Fatalf("stats after rejection: %+v", st)
	}

	// Over HTTP the same rejection is a 429 with Retry-After.
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"experiments":["fig4"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(release)
	for _, id := range []string{running.ID, q1.ID, q2.ID} {
		if st := waitState(t, d, id, StateDone); !strings.HasPrefix(st.Output, "released:") {
			t.Fatalf("job %s output %q", id, st.Output)
		}
	}
	if st := d.Stats(); st.Done != 3 || st.QueueDepth != 0 || st.Active != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// A job that overruns its deadline fails alone, with the deadline in
// its error, and the worker moves on to the next job.
func TestDeadlineEnforced(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	d.execute = blockingExec(started, release)

	slow := mustSubmit(t, d, JobSpec{Experiments: []string{"fig4"}, DeadlineMS: 30})
	st := waitState(t, d, slow.ID, StateFailed)
	if !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("deadline failure error = %q", st.Error)
	}

	// The worker survives to run the next job.
	quick := mustSubmit(t, d, JobSpec{Experiments: []string{"fig4"}})
	<-started
	go func() { release <- struct{}{} }()
	waitState(t, d, quick.ID, StateDone)
	if s := d.Stats(); s.Failed != 1 || s.Done != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// A panicking job must fail alone — stack captured in its status —
// and the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	d.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) {
		if spec.Experiments[0] == "fig4" {
			panic("synthetic job crash")
		}
		return "survived", nil
	}

	crash := mustSubmit(t, d, JobSpec{Experiments: []string{"fig4"}})
	st := waitState(t, d, crash.ID, StateFailed)
	if !strings.Contains(st.Error, "panic: synthetic job crash") {
		t.Fatalf("panic not captured: %q", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("stack not captured: %q", st.Error)
	}

	next := mustSubmit(t, d, JobSpec{Experiments: []string{"fig10"}})
	if st := waitState(t, d, next.ID, StateDone); st.Output != "survived" {
		t.Fatalf("daemon did not survive the panic: %+v", st)
	}
}

// Cancelling a queued job finishes it without running; cancelling a
// running job cancels its context and records the partial output.
func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	d.execute = blockingExec(started, release)

	spec := JobSpec{Experiments: []string{"fig4"}}
	run := mustSubmit(t, d, spec)
	<-started
	queued := mustSubmit(t, d, spec)

	if _, err := d.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, d, queued.ID, StateCancelled)
	if !strings.Contains(st.Error, "while queued") {
		t.Fatalf("queued cancel error = %q", st.Error)
	}

	if _, err := d.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, d, run.ID, StateCancelled); !strings.Contains(st.Error, "cancelled by client") {
		t.Fatalf("running cancel error = %q", st.Error)
	}

	if _, err := d.Cancel("j999"); err != ErrNotFound {
		t.Fatalf("cancel unknown job: err = %v, want ErrNotFound", err)
	}
	// The cancelled-while-queued job must be discarded, not run: the
	// next submission proves the worker is idle and skipped it.
	again := mustSubmit(t, d, spec)
	<-started
	go func() { release <- struct{}{} }()
	waitState(t, d, again.ID, StateDone)
	if s := d.Stats(); s.Cancelled != 2 || s.Done != 1 || s.Started != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// Graceful shutdown: admission closes (503 on submit, /readyz 503),
// the in-flight job drains, queued jobs stay checkpointed in the
// journal, and a restarted daemon re-enqueues and runs them.
func TestShutdownDrainsAndCheckpointsQueue(t *testing.T) {
	journal := tmpJournal(t)
	started := make(chan string, 1)
	release := make(chan struct{})
	d, _, err := New(Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.execute = blockingExec(started, release)

	spec := JobSpec{Experiments: []string{"fig4"}}
	running := mustSubmit(t, d, spec)
	<-started
	queued := mustSubmit(t, d, spec)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- d.Shutdown(ctx)
	}()
	// Admission must close promptly even while the drain is pending.
	deadline := time.Now().Add(5 * time.Second)
	for !d.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("draining flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := d.Submit(spec); err != ErrDraining {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	close(release) // let the in-flight job finish the drain
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st, _ := d.Status(running.ID); st.State != StateDone {
		t.Fatalf("in-flight job drained to %s, want done", st.State)
	}
	if st, _ := d.Status(queued.ID); st.State != StateQueued {
		t.Fatalf("queued job state after shutdown = %s, want queued (checkpointed)", st.State)
	}

	// Restart: the queued job replays, re-enqueues, and runs.
	d2, rep, err := New(Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) { return "rerun", nil }
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d2.Shutdown(ctx)
	}()
	if len(rep.Jobs) != 2 {
		t.Fatalf("replay saw %d jobs, want 2", len(rep.Jobs))
	}
	reenqueued := 0
	for _, rj := range rep.Jobs {
		if rj.Unfinished() {
			reenqueued++
		}
	}
	if reenqueued != 1 {
		t.Fatalf("replay re-enqueued %d jobs, want 1 (only the checkpointed one)", reenqueued)
	}
	if st := waitState(t, d2, queued.ID, StateDone); st.Output != "rerun" || !st.Replayed {
		t.Fatalf("replayed job: %+v", st)
	}
	if st, _ := d2.Status(running.ID); st.State != StateDone || st.Output == "" {
		t.Fatalf("finished job lost its output across restart: %+v", st)
	}
}

// When the drain bound expires, in-flight jobs are cancelled and left
// unfinished in the journal — the checkpoint — and the restart
// re-runs them.
func TestShutdownDrainTimeoutCheckpointsInFlight(t *testing.T) {
	journal := tmpJournal(t)
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	d, _, err := New(Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.execute = blockingExec(started, release) // never released: only ctx ends it

	st := mustSubmit(t, d, JobSpec{Experiments: []string{"fig4"}})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after drain timeout: %v", err)
	}
	if got, _ := d.Status(st.ID); got.State != StateInterrupted {
		t.Fatalf("abandoned job state = %s, want interrupted", got.State)
	}

	d2, rep, err := New(Config{JournalPath: journal, QueueCap: 4, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) { return "rerun", nil }
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		d2.Shutdown(sctx)
	}()
	if len(rep.Jobs) != 1 || !rep.Jobs[0].Unfinished() || !rep.Jobs[0].Started {
		t.Fatalf("replay of interrupted job: %+v", rep.Jobs)
	}
	waitState(t, d2, st.ID, StateDone)
}

// The HTTP surface end to end: submit → 202, status → 200 with
// output, list elides outputs, bad spec → 400, unknown id → 404,
// healthz carries the self-stats, readyz flips on drain.
func TestHTTPAPI(t *testing.T) {
	d := testDaemon(t, Config{QueueCap: 4, JobWorkers: 1})
	d.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) {
		return "report for " + spec.Experiments[0], nil
	}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()

	// Submit.
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"experiments":["fig10"],"workers":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, d, st.ID, StateDone)

	// Status with output.
	resp, err = ts.Client().Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != StateDone || got.Output != "report for fig10" {
		t.Fatalf("GET /jobs/%s = %+v", st.ID, got)
	}

	// List elides outputs.
	resp, err = ts.Client().Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].Output != "" {
		t.Fatalf("GET /jobs = %+v", list)
	}

	// Bad spec and unknown id.
	resp, _ = ts.Client().Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"experiments":["no-such-experiment"]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = ts.Client().Get(ts.URL + "/jobs/j999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// healthz + readyz.
	resp, _ = ts.Client().Get(ts.URL + "/healthz")
	var h Health
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" || h.Stats.Done != 1 || h.Self.Goroutines <= 0 {
		t.Fatalf("healthz = %+v", h)
	}
	resp, _ = ts.Client().Get(ts.URL + "/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ = ts.Client().Get(ts.URL + "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// Output retention must stay bounded: with RetainOutputs=2, the
// oldest terminal job loses its bytes (journal keeps them) and is
// flagged output_dropped.
func TestOutputRetentionBounded(t *testing.T) {
	d := testDaemon(t, Config{QueueCap: 8, JobWorkers: 1, RetainOutputs: 2})
	d.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) {
		return "output-" + spec.Experiments[0], nil
	}
	ids := []string{}
	for _, e := range []string{"fig4", "fig10", "table4"} {
		st := mustSubmit(t, d, JobSpec{Experiments: []string{e}})
		waitState(t, d, st.ID, StateDone)
		ids = append(ids, st.ID)
	}
	first, _ := d.Status(ids[0])
	if first.Output != "" || !first.OutputDropped {
		t.Fatalf("oldest output not evicted: %+v", first)
	}
	for _, id := range ids[1:] {
		st, _ := d.Status(id)
		if st.Output == "" || st.OutputDropped {
			t.Fatalf("recent output evicted: %+v", st)
		}
	}
}

// Start/Shutdown cycles must not leak goroutines — workers, the HTTP
// server, and the journal all shut down clean.
func TestDaemonStartStopNoGoroutineLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	for i := 0; i < 3; i++ {
		d, _, err := New(Config{JournalPath: tmpJournal(t), QueueCap: 4, JobWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		d.execute = func(ctx context.Context, spec JobSpec, emit func(StreamEvent)) (string, error) { return "ok", nil }
		addr, err := d.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		st := mustSubmit(t, d, JobSpec{Experiments: []string{"fig4"}})
		waitState(t, d, st.ID, StateDone)
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := d.Shutdown(ctx); err != nil {
			t.Fatalf("cycle %d shutdown: %v", i, err)
		}
		cancel()
	}
	http.DefaultClient.CloseIdleConnections()
}
