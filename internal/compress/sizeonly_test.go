package compress

import (
	"math/rand"
	"testing"

	"dice/internal/data"
)

// sizeCorpus builds a line set spanning every synthetic data kind plus
// adversarial hand-built and uniformly random lines, so the size-only
// paths are checked across the whole compressibility spectrum.
func sizeCorpus(t testing.TB) [][]byte {
	t.Helper()
	var p data.Profile
	for k := data.Kind(0); k < data.KindCount; k++ {
		p.Weights[k] = 1
	}
	p.PageCoherence = 0.9
	s := data.NewSynth(0x5EED, p)
	var lines [][]byte
	for i := 0; i < 2048; i++ {
		lines = append(lines, s.Line(uint64(i)))
	}
	// Hand-built edges: all zero, single trailing byte, repeated word,
	// near-overflow deltas, incompressible noise.
	zero := make([]byte, LineSize)
	lines = append(lines, zero)
	one := make([]byte, LineSize)
	one[LineSize-1] = 1
	lines = append(lines, one)
	rep := make([]byte, LineSize)
	for i := 0; i < LineSize; i += 8 {
		copy(rep[i:], []byte{0xEF, 0xBE, 0xAD, 0xDE, 0xEF, 0xBE, 0xAD, 0xDE})
	}
	lines = append(lines, rep)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 512; i++ {
		l := make([]byte, LineSize)
		rng.Read(l)
		lines = append(lines, l)
	}
	return lines
}

// TestSizeOnlyMatchesCodec pins the allocation-free size paths to the
// real codecs: every public size function must return exactly what
// compressing (and for pairs, pair-compressing) would report.
func TestSizeOnlyMatchesCodec(t *testing.T) {
	lines := sizeCorpus(t)
	for i, l := range lines {
		if got, want := CompressedSize(l), CompressBest(l).Size(); got != want {
			t.Fatalf("line %d: CompressedSize=%d, CompressBest().Size()=%d", i, got, want)
		}
		// Per-algorithm sizers against their codecs.
		wantFPC := LineSize
		if isZero(l) {
			wantFPC = 0
		} else if enc, ok := (FPC{}).Compress(l); ok {
			wantFPC = enc.Size()
		}
		if got := SizeWith(AlgFPC, l); got != wantFPC {
			t.Fatalf("line %d: SizeWith(FPC)=%d, codec=%d", i, got, wantFPC)
		}
		wantBDI := LineSize
		if isZero(l) {
			wantBDI = 0
		} else if enc, ok := (BDI{}).Compress(l); ok {
			wantBDI = enc.Size()
		}
		if got := SizeWith(AlgBDI, l); got != wantBDI {
			t.Fatalf("line %d: SizeWith(BDI)=%d, codec=%d", i, got, wantBDI)
		}
		if got, want := SizeWith(AlgNone, l), CompressBest(l).Size(); got != want {
			t.Fatalf("line %d: SizeWith(hybrid)=%d, codec=%d", i, got, want)
		}
	}
}

// TestPairSizeOnlyMatchesCodec checks pair sizing, including the
// shared-base path, against CompressPair across adjacent corpus lines.
func TestPairSizeOnlyMatchesCodec(t *testing.T) {
	lines := sizeCorpus(t)
	for i := 0; i+1 < len(lines); i++ {
		a, b := lines[i], lines[i+1]
		if got, want := PairSize(a, b), CompressPair(a, b).Size(); got != want {
			t.Fatalf("pair %d: PairSize=%d, CompressPair().Size()=%d", i, got, want)
		}
		if got, want := PairSize(b, a), CompressPair(b, a).Size(); got != want {
			t.Fatalf("pair %d reversed: PairSize=%d, codec=%d", i, got, want)
		}
	}
}

// TestPairSizeWithMatchesReference pins the per-algorithm pair sizers:
// FPC pairs never share data bytes; BDI pairs share a base exactly when
// re-encoding both lines with BDI alone would.
func TestPairSizeWithMatchesReference(t *testing.T) {
	lines := sizeCorpus(t)
	for i := 0; i+1 < len(lines); i++ {
		a, b := lines[i], lines[i+1]
		if got, want := PairSizeWith(AlgFPC, a, b), SizeWith(AlgFPC, a)+SizeWith(AlgFPC, b); got != want {
			t.Fatalf("pair %d: PairSizeWith(FPC)=%d, want %d", i, got, want)
		}
		// Reference BDI pair size via the codec: compress each alone,
		// then try the shared-base re-encode like CompressPair does.
		want := SizeWith(AlgBDI, a) + SizeWith(AlgBDI, b)
		if !isZero(a) {
			if encA, ok := (BDI{}).Compress(a); ok && encA.Mode != BDIRep {
				k, _ := bdiGeometry(encA.Mode)
				base := int64(readUint(encA.Payload[:k], k))
				if payload, ok := bdiTryModeWithBase(b, encA.Mode, base); ok {
					if s := encA.Size() + len(payload); s < want {
						want = s
					}
				}
			}
		}
		if got := PairSizeWith(AlgBDI, a, b); got != want {
			t.Fatalf("pair %d: PairSizeWith(BDI)=%d, want %d", i, got, want)
		}
		if got, want := PairSizeWith(AlgNone, a, b), PairSize(a, b); got != want {
			t.Fatalf("pair %d: PairSizeWith(hybrid)=%d, want %d", i, got, want)
		}
	}
}

// TestSizeChoiceMatchesCompressBest pins the selector outcome — the
// algorithm and BDI mode, which pair base-sharing depends on — to the
// codec's choice, not just the size.
func TestSizeChoiceMatchesCompressBest(t *testing.T) {
	for i, l := range sizeCorpus(t) {
		size, alg, mode := sizeChoice(l)
		enc := CompressBest(l)
		if size != enc.Size() || alg != enc.Alg {
			t.Fatalf("line %d: sizeChoice=(%d,%v), CompressBest=(%d,%v)", i, size, alg, enc.Size(), enc.Alg)
		}
		if alg == AlgBDI && mode != enc.Mode {
			t.Fatalf("line %d: sizeChoice mode=%d, CompressBest mode=%d", i, mode, enc.Mode)
		}
	}
}

// TestSizeCacheMatchesDirect runs every memoized sizer against its
// direct counterpart across the corpus, repeated so the second pass is
// all cache hits, and checks the counters add up.
func TestSizeCacheMatchesDirect(t *testing.T) {
	lines := sizeCorpus(t)
	c := NewSizeCache(1 << 14)
	for pass := 0; pass < 2; pass++ {
		for i, l := range lines {
			if got, want := c.Single(l), CompressedSize(l); got != want {
				t.Fatalf("pass %d line %d: memo Single=%d, direct=%d", pass, i, got, want)
			}
			for _, alg := range []AlgID{AlgFPC, AlgBDI} {
				if got, want := c.SingleWith(alg, l), SizeWith(alg, l); got != want {
					t.Fatalf("pass %d line %d: memo SingleWith(%v)=%d, direct=%d", pass, i, alg, got, want)
				}
			}
			if i+1 < len(lines) {
				a, b := l, lines[i+1]
				if got, want := c.Pair(a, b), PairSize(a, b); got != want {
					t.Fatalf("pass %d pair %d: memo Pair=%d, direct=%d", pass, i, got, want)
				}
				if got, want := c.PairWith(AlgBDI, a, b), PairSizeWith(AlgBDI, a, b); got != want {
					t.Fatalf("pass %d pair %d: memo PairWith(BDI)=%d, direct=%d", pass, i, got, want)
				}
			}
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

// TestSizeCacheBounded fills a tiny cache far past capacity and checks
// occupancy stays bounded, evictions are counted, and results remain
// correct under churn.
func TestSizeCacheBounded(t *testing.T) {
	c := NewSizeCache(64)
	lines := sizeCorpus(t)
	for _, l := range lines {
		if got, want := c.Single(l), CompressedSize(l); got != want {
			t.Fatalf("churn: memo=%d, direct=%d", got, want)
		}
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("cache holds %d entries, capacity 64", n)
	}
	if c.Stats().Evictions == 0 {
		t.Fatalf("expected evictions under churn, got %+v", c.Stats())
	}
}

// TestHashLineDeterministic pins the content hash: it must be a pure
// function of the bytes (no per-process seed) so cached runs reproduce.
func TestHashLineDeterministic(t *testing.T) {
	l := make([]byte, LineSize)
	for i := range l {
		l[i] = byte(i * 7)
	}
	h1, h2 := hashLine(l), hashLine(l)
	if h1 != h2 {
		t.Fatalf("hashLine not deterministic: %x vs %x", h1, h2)
	}
	l[63] ^= 1
	if hashLine(l) == h1 {
		t.Fatalf("hashLine ignored a byte flip")
	}
}
