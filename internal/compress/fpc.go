package compress

import "encoding/binary"

// FPC implements Frequent Pattern Compression (Alameldeen & Wood, 2004).
// The line is treated as sixteen 32-bit words; each word is encoded as a
// 3-bit pattern prefix followed by a variable-width payload. The patterns
// capture the frequent cases of small integers, zero words, half-word
// values and repeated bytes. Compressed size is rounded up to whole bytes,
// matching how the DRAM-cache set format allocates space.
type FPC struct{}

// FPC word patterns (3-bit prefixes).
const (
	fpcZero         = 0 // all-zero word, no payload
	fpcSE4          = 1 // 4-bit sign-extended
	fpcSE8          = 2 // 8-bit sign-extended
	fpcSE16         = 3 // 16-bit sign-extended
	fpcHalfZero     = 4 // low half-word, upper half zero (16-bit payload)
	fpcHalfSE8      = 5 // two half-words, each a sign-extended byte (16-bit)
	fpcRepByte      = 6 // word of one repeated byte (8-bit payload)
	fpcUncompressed = 7 // raw 32-bit word
)

// fpcPayloadBits gives the payload width for each pattern.
var fpcPayloadBits = [8]uint{0, 4, 8, 16, 16, 16, 8, 32}

// Name implements Compressor.
func (FPC) Name() string { return "fpc" }

// Compress implements Compressor. ok is false when the encoded size would
// be >= the raw line size.
func (FPC) Compress(line []byte) (Encoding, bool) {
	mustLine(line)
	var w bitWriter
	for i := 0; i < LineSize; i += 4 {
		word := binary.LittleEndian.Uint32(line[i : i+4])
		pat, payload := fpcClassify(word)
		w.WriteBits(uint64(pat), 3)
		w.WriteBits(uint64(payload), fpcPayloadBits[pat])
	}
	size := int((w.Bits() + 7) / 8)
	if size >= LineSize {
		return Encoding{}, false
	}
	return Encoding{Alg: AlgFPC, Payload: w.Bytes()}, true
}

// Decompress implements Compressor.
func (FPC) Decompress(enc Encoding) []byte {
	if enc.Alg != AlgFPC {
		panic("compress: FPC.Decompress on " + enc.Alg.String())
	}
	r := bitReader{buf: enc.Payload}
	out := make([]byte, LineSize)
	for i := 0; i < LineSize; i += 4 {
		pat := uint8(r.ReadBits(3))
		payload := r.ReadBits(fpcPayloadBits[pat])
		binary.LittleEndian.PutUint32(out[i:i+4], fpcExpand(pat, payload))
	}
	return out
}

// fpcClassify picks the cheapest pattern that represents word exactly.
func fpcClassify(word uint32) (pat uint8, payload uint32) {
	s := int64(int32(word))
	switch {
	case word == 0:
		return fpcZero, 0
	case fitsSigned(s, 4):
		return fpcSE4, word & 0xF
	case fitsSigned(s, 8):
		return fpcSE8, word & 0xFF
	case fitsSigned(s, 16):
		return fpcSE16, word & 0xFFFF
	case word&0xFFFF0000 == word: // low half zero, value in upper half
		return fpcHalfZero, word >> 16
	case fpcHalvesAreBytes(word):
		lo := word & 0xFFFF
		hi := word >> 16
		return fpcHalfSE8, (hi&0xFF)<<8 | lo&0xFF
	case fpcIsRepeatedByte(word):
		return fpcRepByte, word & 0xFF
	default:
		return fpcUncompressed, word
	}
}

// fpcExpand reverses fpcClassify.
func fpcExpand(pat uint8, payload uint64) uint32 {
	switch pat {
	case fpcZero:
		return 0
	case fpcSE4:
		return uint32(signExtend(payload, 4))
	case fpcSE8:
		return uint32(signExtend(payload, 8))
	case fpcSE16:
		return uint32(signExtend(payload, 16))
	case fpcHalfZero:
		return uint32(payload) << 16
	case fpcHalfSE8:
		lo := uint32(signExtend(payload&0xFF, 8)) & 0xFFFF
		hi := uint32(signExtend(payload>>8, 8)) & 0xFFFF
		return hi<<16 | lo
	case fpcRepByte:
		b := uint32(payload) & 0xFF
		return b | b<<8 | b<<16 | b<<24
	default:
		return uint32(payload)
	}
}

// fpcHalvesAreBytes reports whether each 16-bit half of word is a
// sign-extended byte.
func fpcHalvesAreBytes(word uint32) bool {
	lo := int64(int16(word & 0xFFFF))
	hi := int64(int16(word >> 16))
	return fitsSigned(lo, 8) && fitsSigned(hi, 8)
}

// fpcIsRepeatedByte reports whether all four bytes of word are equal.
func fpcIsRepeatedByte(word uint32) bool {
	b := word & 0xFF
	return word == b|b<<8|b<<16|b<<24
}
