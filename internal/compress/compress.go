// Package compress implements the low-latency cache-line compression
// algorithms DICE builds on: Frequent Pattern Compression (FPC),
// Base-Delta-Immediate (BDI), zero-content (ZCA), and the hybrid FPC+BDI
// selector the paper evaluates with. All algorithms are real round-trip
// codecs operating on 64-byte lines; compressed sizes are what the DRAM
// cache's flexible TAD format stores and what the DICE insertion threshold
// tests against.
package compress

import (
	"bytes"
	"fmt"
)

// LineSize is the cache-line size in bytes used throughout the system.
const LineSize = 64

// AlgID identifies the compression scheme used for a line. It is stored in
// the per-line metadata bits of the TAD format (the paper budgets up to 9
// metadata bits per entry; our IDs plus BDI mode fit comfortably).
type AlgID uint8

// Algorithm identifiers.
const (
	AlgNone    AlgID = iota // stored uncompressed (64B)
	AlgZCA                  // all-zero line (0B payload)
	AlgFPC                  // frequent-pattern compression
	AlgBDI                  // base-delta-immediate
	AlgBDIPair              // one BDI encoding covering two adjacent lines
)

// String returns the conventional name of the algorithm.
func (a AlgID) String() string {
	switch a {
	case AlgNone:
		return "none"
	case AlgZCA:
		return "zca"
	case AlgFPC:
		return "fpc"
	case AlgBDI:
		return "bdi"
	case AlgBDIPair:
		return "bdi-pair"
	default:
		return fmt.Sprintf("alg(%d)", uint8(a))
	}
}

// Encoding is one compressed line: the algorithm, a compact mode field
// (BDI base/delta geometry), and the encoded payload. Size() is the number
// of data bytes the line occupies in the cache set.
type Encoding struct {
	Alg     AlgID
	Mode    uint8 // algorithm-specific sub-mode (BDI geometry)
	Payload []byte
	// Sum is a checksum of the original 64-byte line (see LineSum), set
	// by CompressBest/CompressPair. DecompressChecked verifies it, so
	// payload corruption is detected instead of silently decoded. Zero
	// means "no checksum" (encodings built directly by the per-algorithm
	// Compress methods); LineSum never returns zero.
	Sum uint32
}

// Size returns the number of payload bytes the encoding occupies in a set.
func (e Encoding) Size() int { return len(e.Payload) }

// Compressor compresses and decompresses single cache lines.
type Compressor interface {
	// Name identifies the compressor.
	Name() string
	// Compress encodes a 64-byte line. ok is false when the algorithm
	// cannot beat the uncompressed size, in which case the caller should
	// store the line raw.
	Compress(line []byte) (enc Encoding, ok bool)
	// Decompress reverses Compress. It panics on malformed input produced
	// outside this package: encodings live only inside the simulated cache,
	// so corruption is a simulator bug, not an input error.
	Decompress(enc Encoding) []byte
}

// CompressBest encodes line with the hybrid FPC+BDI policy used by DICE:
// try ZCA, FPC and BDI, keep whichever yields the smallest payload, and
// fall back to an uncompressed encoding when nothing beats 64 bytes.
func CompressBest(line []byte) Encoding {
	mustLine(line)
	if isZero(line) {
		return Encoding{Alg: AlgZCA, Sum: LineSum(line)}
	}
	best := Encoding{Alg: AlgNone, Payload: cloneBytes(line)}
	if enc, ok := (BDI{}).Compress(line); ok && enc.Size() < best.Size() {
		best = enc
	}
	if enc, ok := (FPC{}).Compress(line); ok && enc.Size() < best.Size() {
		best = enc
	}
	best.Sum = LineSum(line)
	return best
}

// Decompress decodes any encoding produced by CompressBest or the
// individual compressors.
func Decompress(enc Encoding) []byte {
	switch enc.Alg {
	case AlgNone:
		if len(enc.Payload) != LineSize {
			panic("compress: AlgNone payload must be 64 bytes")
		}
		return cloneBytes(enc.Payload)
	case AlgZCA:
		return make([]byte, LineSize)
	case AlgFPC:
		return FPC{}.Decompress(enc)
	case AlgBDI:
		return BDI{}.Decompress(enc)
	default:
		panic("compress: cannot decompress " + enc.Alg.String())
	}
}

// CompressedSize returns the hybrid compressed size of a line in bytes
// (0 for an all-zero line, 64 for incompressible). It takes the
// allocation-free size-only path — always equal to
// CompressBest(line).Size(), which the equivalence tests enforce.
func CompressedSize(line []byte) int {
	s, _, _ := sizeChoice(line)
	return s
}

func isZero(line []byte) bool {
	for _, b := range line {
		if b != 0 {
			return false
		}
	}
	return true
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func mustLine(line []byte) {
	if len(line) != LineSize {
		panic(fmt.Sprintf("compress: line must be %d bytes, got %d", LineSize, len(line)))
	}
}

// equalLines reports whether two lines hold identical bytes.
func equalLines(a, b []byte) bool { return bytes.Equal(a, b) }
