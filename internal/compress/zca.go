package compress

// ZCA implements zero-content augmentation (Dusser et al., ICS 2009): an
// all-zero line is represented with no payload at all. The hybrid selector
// checks for zero lines first, so ZCA exists mostly as a standalone
// Compressor for analysis tools and tests.
type ZCA struct{}

// Name implements Compressor.
func (ZCA) Name() string { return "zca" }

// Compress implements Compressor: only all-zero lines compress.
func (ZCA) Compress(line []byte) (Encoding, bool) {
	mustLine(line)
	if !isZero(line) {
		return Encoding{}, false
	}
	return Encoding{Alg: AlgZCA}, true
}

// Decompress implements Compressor.
func (ZCA) Decompress(enc Encoding) []byte {
	if enc.Alg != AlgZCA {
		panic("compress: ZCA.Decompress on " + enc.Alg.String())
	}
	return make([]byte, LineSize)
}
