package compress

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Validated decompression. The panicking Decompress path documents its
// inputs as trusted simulator state; this file is the boundary for
// encodings that may have been corrupted (the fault model flips bits in
// stored frames, and fuzzing feeds arbitrary bytes). DecompressChecked
// never panics and never over-reads: malformed algorithms, modes,
// payload lengths and checksum mismatches all come back as errors.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// LineSum is the per-line checksum carried by checked encodings: CRC-32C
// over the original 64 bytes, with zero remapped so that Sum == 0 always
// means "no checksum present". (The remap costs one alias in 2^32 —
// negligible next to the SECDED escape rate it backstops.)
func LineSum(line []byte) uint32 {
	s := crc32.Checksum(line, crcTable)
	if s == 0 {
		s = 1
	}
	return s
}

// DecompressChecked decodes any single-line encoding produced by
// CompressBest, validating structure before touching the payload and
// verifying the line checksum (when present) after decoding. Unlike
// Decompress it returns an error instead of panicking, so corrupted
// cache frames are detected rather than crashing the simulator.
func DecompressChecked(enc Encoding) ([]byte, error) {
	var out []byte
	switch enc.Alg {
	case AlgNone:
		if len(enc.Payload) != LineSize {
			return nil, fmt.Errorf("compress: raw payload is %d bytes, want %d", len(enc.Payload), LineSize)
		}
		out = cloneBytes(enc.Payload)
	case AlgZCA:
		if len(enc.Payload) != 0 {
			return nil, fmt.Errorf("compress: zero-line encoding carries %d payload bytes", len(enc.Payload))
		}
		out = make([]byte, LineSize)
	case AlgFPC:
		var err error
		if out, err = fpcDecompressChecked(enc.Payload); err != nil {
			return nil, err
		}
	case AlgBDI:
		var err error
		if out, err = bdiDecompressChecked(enc.Mode, enc.Payload); err != nil {
			return nil, err
		}
	case AlgBDIPair:
		// A pair member's base lives in its buddy's encoding; it cannot be
		// decoded standalone, so reaching here means corrupt metadata.
		return nil, fmt.Errorf("compress: %v encoding cannot be decompressed standalone", enc.Alg)
	default:
		return nil, fmt.Errorf("compress: unknown algorithm %v", enc.Alg)
	}
	if enc.Sum != 0 && LineSum(out) != enc.Sum {
		return nil, fmt.Errorf("compress: %v payload fails line checksum", enc.Alg)
	}
	return out, nil
}

// fpcDecompressChecked decodes an FPC payload with framing validation: a
// compressed payload is under 64 bytes, every word's bits must come from
// inside the buffer, and at most the final byte's padding may go unused.
func fpcDecompressChecked(payload []byte) ([]byte, error) {
	if len(payload) >= LineSize {
		return nil, fmt.Errorf("compress: FPC payload %d bytes, must be under %d", len(payload), LineSize)
	}
	r := bitReader{buf: payload}
	out := make([]byte, LineSize)
	for i := 0; i < LineSize; i += 4 {
		pat := uint8(r.ReadBits(3))
		payloadBits := r.ReadBits(fpcPayloadBits[pat])
		if r.nbit > 8*uint(len(payload)) {
			return nil, fmt.Errorf("compress: FPC payload truncated at word %d", i/4)
		}
		binary.LittleEndian.PutUint32(out[i:i+4], fpcExpand(pat, payloadBits))
	}
	if slack := 8*uint(len(payload)) - r.nbit; slack >= 8 {
		return nil, fmt.Errorf("compress: FPC payload has %d trailing bits", slack)
	}
	return out, nil
}

// bdiDecompressChecked decodes a BDI payload after validating the mode
// and the exact payload length that mode implies.
func bdiDecompressChecked(mode uint8, payload []byte) ([]byte, error) {
	if mode >= bdiModeCount {
		return nil, fmt.Errorf("compress: unknown BDI mode %d", mode)
	}
	if want := bdiEncodedSize(mode); len(payload) != want {
		return nil, fmt.Errorf("compress: BDI mode %d payload is %d bytes, want %d", mode, len(payload), want)
	}
	if mode == BDIRep {
		out := make([]byte, LineSize)
		for i := 0; i < LineSize; i += 8 {
			copy(out[i:i+8], payload[:8])
		}
		return out, nil
	}
	k, _ := bdiGeometry(mode)
	base := int64(readUint(payload[:k], k))
	return bdiDecodeWithBase(payload[k:], mode, base), nil
}
