package compress

import "encoding/binary"

// SizeCache memoizes compressed-size results keyed by line content.
// Synthetic data generation is deterministic per address, and the cache
// re-sizes the same lines on every repack, so identical 64-byte
// contents recur constantly; hashing the content once is far cheaper
// than re-running the FPC/BDI fit checks. The cache is a bounded
// hash-indexed store with CLOCK-style second-chance eviction —
// deterministic (no map iteration, no randomized hashing) so cached
// and uncached runs produce byte-identical simulation results.
//
// A SizeCache is not safe for concurrent use; give each goroutine
// (each parallel experiment already has its own cache instance) its
// own.
type SizeCache struct {
	entries []sizeCacheEntry
	mask    uint64
	hand    int
	stats   SizeCacheStats
}

type sizeCacheEntry struct {
	key  uint64
	size int32
	live bool
	used bool
}

// SizeCacheStats counts cache traffic since construction.
type SizeCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// NewSizeCache returns a cache bounded to capacity entries (rounded up
// to a power of two, minimum 64). A capacity of 0 picks a default that
// comfortably covers a simulated workload's working set of distinct
// line contents.
func NewSizeCache(capacity int) *SizeCache {
	if capacity <= 0 {
		capacity = 1 << 15
	}
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &SizeCache{
		entries: make([]sizeCacheEntry, n),
		mask:    uint64(n - 1),
	}
}

// Stats returns the hit/miss/eviction counters.
func (c *SizeCache) Stats() SizeCacheStats { return c.stats }

// Len returns the number of live entries.
func (c *SizeCache) Len() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].live {
			n++
		}
	}
	return n
}

// hashLine mixes the 64 line bytes into one 64-bit key. It is a fixed
// function of the content (xxhash-style avalanche over eight words), so
// results are reproducible across runs and machines — unlike
// hash/maphash, whose seed varies per process.
func hashLine(line []byte) uint64 {
	const (
		m1 = 0x9E3779B185EBCA87
		m2 = 0xC2B2AE3D27D4EB4F
	)
	h := uint64(m1)
	h *= LineSize
	for i := 0; i < LineSize; i += 8 {
		w := binary.LittleEndian.Uint64(line[i : i+8])
		h ^= (w * m1) ^ ((w >> 29) * m2)
		h = (h<<31 | h>>33) * m1
	}
	h ^= h >> 33
	h *= m2
	h ^= h >> 29
	return h
}

// PairKey combines two line hashes into one pair key, order-sensitive
// (pair compression is asymmetric: A donates the base).
func pairKey(ha, hb uint64) uint64 {
	h := ha*0x9E3779B185EBCA87 + 0x27D4EB2F165667C5
	h ^= hb * 0xC2B2AE3D27D4EB4F
	h ^= h >> 31
	h *= 0x9E3779B185EBCA87
	h ^= h >> 29
	return h
}

// lookup returns the memoized size for key, or computes it via f and
// stores it. Probing is open-addressed with a small bounded window;
// when the window is full, the CLOCK hand evicts the first
// not-recently-used entry.
func (c *SizeCache) lookup(key uint64, f func() int) int {
	const window = 8
	idx := key & c.mask
	free := -1
	for i := 0; i < window; i++ {
		j := (idx + uint64(i)) & c.mask
		e := &c.entries[j]
		if !e.live {
			if free < 0 {
				free = int(j)
			}
			continue
		}
		if e.key == key {
			e.used = true
			c.stats.Hits++
			return int(e.size)
		}
	}
	c.stats.Misses++
	size := f()
	if free < 0 {
		free = c.evictFrom(idx, window)
	}
	c.entries[free] = sizeCacheEntry{key: key, size: int32(size), live: true, used: true}
	return size
}

// evictFrom frees one slot inside the probe window starting at idx,
// giving recently used entries a second chance.
func (c *SizeCache) evictFrom(idx uint64, window int) int {
	for {
		j := (idx + uint64(c.hand)) & c.mask
		c.hand = (c.hand + 1) % window
		e := &c.entries[j]
		if e.used {
			e.used = false
			continue
		}
		e.live = false
		c.stats.Evictions++
		return int(j)
	}
}

// Single returns CompressedSize(line), memoized by content.
func (c *SizeCache) Single(line []byte) int {
	mustLine(line)
	return c.lookup(hashLine(line), func() int { return CompressedSize(line) })
}

// Pair returns PairSize(a, b), memoized by the ordered content pair.
func (c *SizeCache) Pair(a, b []byte) int {
	mustLine(a)
	mustLine(b)
	return c.lookup(pairKey(hashLine(a), hashLine(b)), func() int { return PairSize(a, b) })
}

// SingleWith returns SizeWith(alg, line), memoized. The algorithm is
// folded into the key so one cache can serve multiple sizers.
func (c *SizeCache) SingleWith(alg AlgID, line []byte) int {
	mustLine(line)
	key := hashLine(line) ^ (uint64(alg)+1)*0xBF58476D1CE4E5B9
	return c.lookup(key, func() int { return SizeWith(alg, line) })
}

// PairWith returns PairSizeWith(alg, a, b), memoized.
func (c *SizeCache) PairWith(alg AlgID, a, b []byte) int {
	mustLine(a)
	mustLine(b)
	key := pairKey(hashLine(a), hashLine(b)) ^ (uint64(alg)+1)*0xBF58476D1CE4E5B9
	return c.lookup(key, func() int { return PairSizeWith(alg, a, b) })
}
