package compress

import (
	"bytes"
	"testing"
)

// FuzzDecompressChecked feeds arbitrary encodings to the validated
// decompress path: whatever the bytes, it must return a 64-byte line or
// an error — never panic, never over-read.
func FuzzDecompressChecked(f *testing.F) {
	for _, line := range sampleLines() {
		enc := CompressBest(line)
		f.Add(uint8(enc.Alg), enc.Mode, enc.Sum, enc.Payload)
	}
	f.Add(uint8(AlgBDI), uint8(42), uint32(0), []byte{1, 2, 3})
	f.Add(uint8(AlgFPC), uint8(0), uint32(7), bytes.Repeat([]byte{0xFF}, 63))
	f.Add(uint8(200), uint8(200), uint32(1), []byte(nil))
	f.Fuzz(func(t *testing.T, alg, mode uint8, sum uint32, payload []byte) {
		enc := Encoding{Alg: AlgID(alg), Mode: mode, Payload: payload, Sum: sum}
		out, err := DecompressChecked(enc)
		if err != nil {
			return
		}
		if len(out) != LineSize {
			t.Fatalf("accepted encoding decoded to %d bytes", len(out))
		}
		if sum != 0 && LineSum(out) != sum {
			t.Fatal("accepted encoding violates its own checksum")
		}
	})
}

// FuzzCompressRoundtrip: any 64-byte line must survive CompressBest ->
// DecompressChecked bit-exactly, and the adjacent-pair encoder's sizes
// must stay within physical bounds.
func FuzzCompressRoundtrip(f *testing.F) {
	for _, line := range sampleLines() {
		f.Add(line, line)
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		for _, raw := range [][]byte{a, b} {
			line := make([]byte, LineSize)
			copy(line, raw)
			enc := CompressBest(line)
			if enc.Size() > LineSize {
				t.Fatalf("compressed size %d exceeds line size", enc.Size())
			}
			got, err := DecompressChecked(enc)
			if err != nil {
				t.Fatalf("own encoding rejected: %v", err)
			}
			if !bytes.Equal(got, line) {
				t.Fatal("round trip mismatch")
			}
		}

		la, lb := make([]byte, LineSize), make([]byte, LineSize)
		copy(la, a)
		copy(lb, b)
		p := CompressPair(la, lb)
		if p.Size() > 2*LineSize {
			t.Fatalf("pair size %d exceeds two lines", p.Size())
		}
		da, db := DecompressPair(p)
		if !bytes.Equal(da, la) || !bytes.Equal(db, lb) {
			t.Fatal("pair round trip mismatch")
		}
	})
}
