package compress

// bitWriter packs values MSB-first into a byte slice. FPC encodings are
// bit-granular (3-bit prefixes, 4-bit payloads), so a real round-trip codec
// needs sub-byte packing.
type bitWriter struct {
	buf  []byte
	nbit uint // number of bits written so far
}

// WriteBits appends the low n bits of v, most significant first.
func (w *bitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		byteIdx := w.nbit / 8
		if int(byteIdx) == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[byteIdx] |= 1 << (7 - w.nbit%8)
		}
		w.nbit++
	}
}

// Bytes returns the packed bytes written so far.
func (w *bitWriter) Bytes() []byte { return w.buf }

// Bits returns the number of bits written.
func (w *bitWriter) Bits() uint { return w.nbit }

// bitReader unpacks values MSB-first from a byte slice.
type bitReader struct {
	buf  []byte
	nbit uint
}

// ReadBits reads n bits and returns them in the low bits of the result.
// Reading past the end returns zero bits, which callers treat as a framing
// error via their own length checks.
func (r *bitReader) ReadBits(n uint) uint64 {
	var v uint64
	for i := uint(0); i < n; i++ {
		byteIdx := r.nbit / 8
		var bit uint64
		if int(byteIdx) < len(r.buf) {
			bit = uint64(r.buf[byteIdx]>>(7-r.nbit%8)) & 1
		}
		v = v<<1 | bit
		r.nbit++
	}
	return v
}

// signExtend interprets the low n bits of v as a two's-complement signed
// value and returns it widened to int64.
func signExtend(v uint64, n uint) int64 {
	shift := 64 - n
	return int64(v<<shift) >> shift
}

// fitsSigned reports whether the signed value x is representable in n bits
// of two's complement.
func fitsSigned(x int64, n uint) bool {
	min := int64(-1) << (n - 1)
	max := -min - 1
	return x >= min && x <= max
}
