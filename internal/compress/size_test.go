package compress

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSizeWithZeroLine(t *testing.T) {
	zero := make([]byte, LineSize)
	for _, alg := range []AlgID{AlgFPC, AlgBDI, AlgNone} {
		if SizeWith(alg, zero) != 0 {
			t.Fatalf("%v: zero line must be free", alg)
		}
	}
}

func TestSizeWithAlgorithmRestriction(t *testing.T) {
	// Pointer-like data: BDI compresses it, FPC cannot.
	ptr := lineFromQwords(0x7FFE00112200, 0x7FFE00112208, 0x7FFE00112240)
	if s := SizeWith(AlgBDI, ptr); s >= LineSize {
		t.Fatalf("BDI should compress pointers, got %d", s)
	}
	if f, b := SizeWith(AlgFPC, ptr), SizeWith(AlgBDI, ptr); f <= b {
		t.Fatalf("BDI (%d) should beat FPC (%d) on pointers", b, f)
	}
	// Small ints: FPC excels.
	small := lineFromWords(1, 2, 3)
	if s := SizeWith(AlgFPC, small); s >= 30 {
		t.Fatalf("FPC should crush small ints, got %d", s)
	}
}

func TestSizeWithHybridIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for i := 0; i < 200; i++ {
		var line []byte
		if i%2 == 0 {
			line = randomLine(rng)
		} else {
			base := rng.Uint64() >> 20
			line = lineFromQwords(base, base+uint64(rng.UintN(500)))
		}
		h := SizeWith(AlgNone, line) // hybrid
		if f := SizeWith(AlgFPC, line); f < h {
			t.Fatalf("hybrid (%d) must be <= FPC-only (%d)", h, f)
		}
		if b := SizeWith(AlgBDI, line); b < h {
			t.Fatalf("hybrid (%d) must be <= BDI-only (%d)", h, b)
		}
	}
}

func TestPairSizeWithBaseSharingOnlyForBDI(t *testing.T) {
	a := lineFromQwords(1<<50, 1<<50+4)
	b := lineFromQwords(1<<50+100, 1<<50+104)
	sa, sb := SizeWith(AlgBDI, a), SizeWith(AlgBDI, b)
	pair := PairSizeWith(AlgBDI, a, b)
	if pair >= sa+sb {
		t.Fatalf("BDI pair (%d) should save base bytes over %d", pair, sa+sb)
	}
	// FPC pair is just the sum.
	fa := lineFromWords(1, 2)
	fb := lineFromWords(3, 4)
	if PairSizeWith(AlgFPC, fa, fb) != SizeWith(AlgFPC, fa)+SizeWith(AlgFPC, fb) {
		t.Fatal("FPC pair must be the plain sum")
	}
}

// Property: single-algorithm pair sizes are bounded by the sum of their
// singles and by 128 bytes.
func TestQuickPairSizeWithBounds(t *testing.T) {
	f := func(seed uint64, alg uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		mk := func() []byte {
			if rng.UintN(2) == 0 {
				return randomLine(rng)
			}
			base := rng.Uint64() >> 24
			return lineFromQwords(base, base+uint64(rng.UintN(90)))
		}
		a, b := mk(), mk()
		id := []AlgID{AlgFPC, AlgBDI, AlgNone}[alg%3]
		p := PairSizeWith(id, a, b)
		return p <= SizeWith(id, a)+SizeWith(id, b) && p <= 2*LineSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
