package compress

// Single-algorithm sizing, used by the compression-algorithm ablation:
// DICE is orthogonal to the compression scheme (Section 7.1), and these
// helpers let the cache run with FPC alone or BDI alone instead of the
// hybrid selector.

// SizeWith returns the compressed size of a line under one algorithm
// family: AlgFPC (FPC + zero lines), AlgBDI (BDI + zero lines), or
// anything else for the full hybrid.
func SizeWith(alg AlgID, line []byte) int {
	mustLine(line)
	if isZero(line) {
		return 0
	}
	switch alg {
	case AlgFPC:
		if enc, ok := (FPC{}).Compress(line); ok {
			return enc.Size()
		}
		return LineSize
	case AlgBDI:
		if enc, ok := (BDI{}).Compress(line); ok {
			return enc.Size()
		}
		return LineSize
	default:
		return CompressedSize(line)
	}
}

// PairSizeWith returns the adjacent-pair size under one algorithm
// family. Base sharing applies only to BDI-encoded pairs; FPC pairs
// still share the tag (a set-format property) but not data bytes.
func PairSizeWith(alg AlgID, a, b []byte) int {
	switch alg {
	case AlgFPC:
		return SizeWith(AlgFPC, a) + SizeWith(AlgFPC, b)
	case AlgBDI:
		mustLine(a)
		mustLine(b)
		encA, okA := (BDI{}).Compress(a)
		sa, sb := SizeWith(AlgBDI, a), SizeWith(AlgBDI, b)
		if okA && encA.Mode != BDIRep {
			k, _ := bdiGeometry(encA.Mode)
			base := int64(readUint(encA.Payload[:k], k))
			if payload, ok := bdiTryModeWithBase(b, encA.Mode, base); ok {
				if shared := sa + len(payload); shared < sa+sb {
					return shared
				}
			}
		}
		return sa + sb
	default:
		return PairSize(a, b)
	}
}
