package compress

// Single-algorithm sizing, used by the compression-algorithm ablation:
// DICE is orthogonal to the compression scheme (Section 7.1), and these
// helpers let the cache run with FPC alone or BDI alone instead of the
// hybrid selector. Both take the allocation-free size-only paths; the
// equivalence tests pin them to the codec-produced sizes.

// SizeWith returns the compressed size of a line under one algorithm
// family: AlgFPC (FPC + zero lines), AlgBDI (BDI + zero lines), or
// anything else for the full hybrid.
func SizeWith(alg AlgID, line []byte) int {
	mustLine(line)
	if isZero(line) {
		return 0
	}
	switch alg {
	case AlgFPC:
		if s, ok := fpcSizeOnly(line); ok {
			return s
		}
		return LineSize
	case AlgBDI:
		if s, _, ok := bdiSizeOnly(line); ok {
			return s
		}
		return LineSize
	default:
		return CompressedSize(line)
	}
}

// PairSizeWith returns the adjacent-pair size under one algorithm
// family. Base sharing applies only to BDI-encoded pairs; FPC pairs
// still share the tag (a set-format property) but not data bytes.
func PairSizeWith(alg AlgID, a, b []byte) int {
	switch alg {
	case AlgFPC:
		return SizeWith(AlgFPC, a) + SizeWith(AlgFPC, b)
	case AlgBDI:
		mustLine(a)
		mustLine(b)
		sa, sb := SizeWith(AlgBDI, a), SizeWith(AlgBDI, b)
		if szA, modeA, okA := bdiSizeOnly(a); okA {
			if shared, ok := pairSharedSize(a, b, szA, AlgBDI, modeA); ok && shared < sa+sb {
				return shared
			}
		}
		return sa + sb
	default:
		return PairSize(a, b)
	}
}
