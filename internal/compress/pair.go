package compress

// Pair compression: when BAI places two spatially adjacent lines in the
// same set, DICE compresses them together. Adjacent lines usually have
// similar value structure, so when both compress with the same BDI
// geometry the second line can reuse the first line's base, saving the
// base bytes — this is the base sharing the paper credits for two 36B
// BDI lines fitting in the 68 data bytes a shared-tag TAD provides
// (Section 4.2 and Table 4 discussion: single line → 36B, double line →
// 68B with shared tags).

// PairEncoding holds two adjacent lines compressed together. When
// SharedBase is true, B's payload omits its base and must be decoded with
// A's base.
type PairEncoding struct {
	A, B       Encoding
	SharedBase bool
}

// Size returns the total data bytes the pair occupies in a set.
func (p PairEncoding) Size() int { return p.A.Size() + p.B.Size() }

// CompressPair encodes two adjacent 64-byte lines, preferring a shared-base
// BDI encoding when it is smaller than compressing each line independently.
func CompressPair(a, b []byte) PairEncoding {
	mustLine(a)
	mustLine(b)
	encA := CompressBest(a)
	encB := CompressBest(b)
	best := PairEncoding{A: encA, B: encB}

	// Shared base applies when A is a base+delta BDI encoding; re-encode B
	// against A's base with the same geometry and drop B's base bytes.
	if encA.Alg == AlgBDI && encA.Mode != BDIRep {
		k, _ := bdiGeometry(encA.Mode)
		base := int64(readUint(encA.Payload[:k], k))
		if payload, ok := bdiTryModeWithBase(b, encA.Mode, base); ok {
			shared := PairEncoding{
				A:          encA,
				B:          Encoding{Alg: AlgBDIPair, Mode: encA.Mode, Payload: payload, Sum: LineSum(b)},
				SharedBase: true,
			}
			if shared.Size() < best.Size() {
				best = shared
			}
		}
	}
	return best
}

// DecompressPair reverses CompressPair, returning the two original lines.
func DecompressPair(p PairEncoding) (a, b []byte) {
	a = Decompress(p.A)
	if !p.SharedBase {
		return a, Decompress(p.B)
	}
	if p.A.Alg != AlgBDI || p.B.Alg != AlgBDIPair {
		panic("compress: malformed shared-base pair")
	}
	k, _ := bdiGeometry(p.A.Mode)
	base := int64(readUint(p.A.Payload[:k], k))
	return a, bdiDecodeWithBase(p.B.Payload, p.B.Mode, base)
}

// PairSize returns just the combined compressed size of two adjacent lines
// under the pairing policy. The DRAM cache uses this to decide whether a
// BAI pair fits a set. It takes the allocation-free size-only path —
// always equal to CompressPair(a, b).Size(), which the equivalence
// tests enforce.
func PairSize(a, b []byte) int {
	sa, algA, modeA := sizeChoice(a)
	sb, _, _ := sizeChoice(b)
	best := sa + sb
	if shared, ok := pairSharedSize(a, b, sa, algA, modeA); ok && shared < best {
		best = shared
	}
	return best
}

// bdiTryModeWithBase encodes line's deltas against a caller-supplied base
// (base bytes omitted from the payload). Used both by single-line BDI
// (with the line's own base) and for pair base sharing.
func bdiTryModeWithBase(line []byte, mode uint8, base int64) ([]byte, bool) {
	k, d := bdiGeometry(mode)
	n := LineSize / k
	deltaBits := uint(d * 8)

	payload := make([]byte, n*d)
	for i := 0; i < n; i++ {
		v := int64(readUint(line[i*k:(i+1)*k], k))
		delta := v - base
		// Wrap deltas modulo the base width so that e.g. 2-byte values
		// 0xFFFF and 0x0001 are one apart, matching hardware arithmetic.
		if k < 8 {
			delta = signExtend(uint64(delta), uint(k*8))
		}
		if !fitsSigned(delta, deltaBits) {
			return nil, false
		}
		writeUint(payload[i*d:(i+1)*d], uint64(delta), d)
	}
	return payload, true
}

// bdiDecodeWithBase decodes a delta payload produced by bdiTryModeWithBase.
func bdiDecodeWithBase(payload []byte, mode uint8, base int64) []byte {
	k, d := bdiGeometry(mode)
	n := LineSize / k
	out := make([]byte, LineSize)
	for i := 0; i < n; i++ {
		delta := signExtend(readUint(payload[i*d:(i+1)*d], d), uint(d*8))
		writeUint(out[i*k:(i+1)*k], uint64(base+delta), k)
	}
	return out
}
