package compress

import "encoding/binary"

// Size-only compression: the DRAM cache consults compressed sizes on
// every install, repack and index decision, but it only needs the
// *size* — the payload bytes are simulator-internal and discarded
// immediately (verify mode aside). These paths compute the exact sizes
// the codecs would produce without materializing any payload, which
// removes all allocation from the cache's sizing hot path. Equivalence
// with the codec paths is enforced by TestSizeOnlyMatchesCodec over
// the full data-kind corpus plus random lines, and end-to-end by the
// byte-identical experiment goldens.

// fpcSizeOnly returns FPC's encoded size in bytes without building the
// payload; ok is false when FPC cannot beat the raw line (mirrors
// FPC.Compress).
func fpcSizeOnly(line []byte) (int, bool) {
	bits := uint(0)
	for i := 0; i < LineSize; i += 4 {
		word := binary.LittleEndian.Uint32(line[i : i+4])
		pat, _ := fpcClassify(word)
		bits += 3 + fpcPayloadBits[pat]
	}
	size := int((bits + 7) / 8)
	if size >= LineSize {
		return 0, false
	}
	return size, true
}

// bdiIsRep reports whether the line is one repeated 8-byte value
// (mirrors bdiTryRep without building the payload).
func bdiIsRep(line []byte) bool {
	first := binary.LittleEndian.Uint64(line[:8])
	for i := 8; i < LineSize; i += 8 {
		if binary.LittleEndian.Uint64(line[i:i+8]) != first {
			return false
		}
	}
	return true
}

// bdiFitsWithBase reports whether every k-byte value of line is within
// mode's delta width of base — bdiTryModeWithBase's fit check without
// the payload write.
func bdiFitsWithBase(line []byte, mode uint8, base int64) bool {
	k, d := bdiGeometry(mode)
	n := LineSize / k
	deltaBits := uint(d * 8)
	for i := 0; i < n; i++ {
		v := int64(readUint(line[i*k:(i+1)*k], k))
		delta := v - base
		if k < 8 {
			delta = signExtend(uint64(delta), uint(k*8))
		}
		if !fitsSigned(delta, deltaBits) {
			return false
		}
	}
	return true
}

// bdiSizeOnly returns BDI's encoded size and chosen mode without
// building the payload. The mode order mirrors BDI.Compress exactly,
// so the chosen mode (which pair base-sharing depends on) is identical.
func bdiSizeOnly(line []byte) (size int, mode uint8, ok bool) {
	if bdiIsRep(line) {
		return 8, BDIRep, true
	}
	for mode := BDIB8D1; mode < bdiModeCount; mode++ {
		k, _ := bdiGeometry(mode)
		base := int64(readUint(line[:k], k))
		if bdiFitsWithBase(line, mode, base) {
			return bdiEncodedSize(mode), mode, true
		}
	}
	return 0, 0, false
}

// sizeChoice returns the hybrid selector's outcome for a line without
// allocating: the compressed size, the algorithm CompressBest would
// pick, and the BDI mode (meaningful only when alg is AlgBDI). The
// tie-breaking matches CompressBest: BDI replaces the raw encoding
// when smaller, FPC replaces the current best only when strictly
// smaller, so BDI wins size ties.
func sizeChoice(line []byte) (size int, alg AlgID, bdiMode uint8) {
	mustLine(line)
	if isZero(line) {
		return 0, AlgZCA, 0
	}
	size, alg = LineSize, AlgNone
	if s, m, ok := bdiSizeOnly(line); ok && s < size {
		size, alg, bdiMode = s, AlgBDI, m
	}
	if s, ok := fpcSizeOnly(line); ok && s < size {
		size, alg = s, AlgFPC
	}
	return size, alg, bdiMode
}

// pairSharedSize returns the shared-base pair size for b riding on a's
// BDI encoding (alg/mode/size from sizeChoice(a)), or ok=false when
// base sharing does not apply — the size-only mirror of CompressPair's
// sharing attempt.
func pairSharedSize(a, b []byte, sizeA int, algA AlgID, modeA uint8) (int, bool) {
	if algA != AlgBDI || modeA == BDIRep {
		return 0, false
	}
	k, d := bdiGeometry(modeA)
	base := int64(readUint(a[:k], k))
	if !bdiFitsWithBase(b, modeA, base) {
		return 0, false
	}
	return sizeA + (LineSize/k)*d, true
}
