package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func lineOf(b byte) []byte {
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = b
	}
	return line
}

func lineFromWords(words ...uint32) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%len(words)])
	}
	return line
}

func lineFromQwords(qs ...uint64) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], qs[i%len(qs)])
	}
	return line
}

func randomLine(rng *rand.Rand) []byte {
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = byte(rng.Uint32())
	}
	return line
}

func TestZCACompressesOnlyZeroLines(t *testing.T) {
	enc, ok := (ZCA{}).Compress(make([]byte, LineSize))
	if !ok {
		t.Fatal("ZCA should compress a zero line")
	}
	if enc.Size() != 0 {
		t.Fatalf("ZCA payload size = %d, want 0", enc.Size())
	}
	if got := (ZCA{}).Decompress(enc); !bytes.Equal(got, make([]byte, LineSize)) {
		t.Fatal("ZCA round trip failed")
	}
	if _, ok := (ZCA{}).Compress(lineOf(1)); ok {
		t.Fatal("ZCA must reject a non-zero line")
	}
}

func TestFPCKnownPatterns(t *testing.T) {
	tests := []struct {
		name    string
		line    []byte
		maxSize int
	}{
		// 16 words x (3-bit prefix + payload) rounded up to bytes.
		{"all zero words", lineFromWords(0), 6},                   // 16*3 bits = 6B
		{"small 4-bit ints", lineFromWords(3, 7, 0xFFFFFFFF), 14}, // 16*7 bits
		{"8-bit ints", lineFromWords(100, 0xFFFFFF85), 22},        // 16*11 bits
		{"16-bit ints", lineFromWords(30000, 0xFFFF8000), 38},     // 16*19 bits
		{"repeated bytes", lineFromWords(0xABABABAB), 22},         // 16*11 bits
		{"halfwords", lineFromWords(0x00050003), 38},              // 16*19 bits
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			enc, ok := (FPC{}).Compress(tc.line)
			if !ok {
				t.Fatal("expected compressible")
			}
			if enc.Size() > tc.maxSize {
				t.Fatalf("size = %d, want <= %d", enc.Size(), tc.maxSize)
			}
			if got := (FPC{}).Decompress(enc); !bytes.Equal(got, tc.line) {
				t.Fatalf("round trip failed: got %x want %x", got, tc.line)
			}
		})
	}
}

func TestFPCRejectsRandomLine(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	rejected := 0
	for i := 0; i < 100; i++ {
		line := randomLine(rng)
		if enc, ok := (FPC{}).Compress(line); ok {
			// If it claims success it must still round-trip and be smaller.
			if enc.Size() >= LineSize {
				t.Fatal("accepted encoding not smaller than line")
			}
			if got := (FPC{}).Decompress(enc); !bytes.Equal(got, line) {
				t.Fatal("round trip failed")
			}
		} else {
			rejected++
		}
	}
	if rejected < 90 {
		t.Fatalf("only %d/100 random lines rejected; FPC should not compress noise", rejected)
	}
}

func TestBDIModesAndSizes(t *testing.T) {
	tests := []struct {
		name string
		line []byte
		mode uint8
		size int
	}{
		{"repeated qword", lineFromQwords(0xDEADBEEFCAFEBABE), BDIRep, 8},
		{"b8d1", lineFromQwords(1<<40, 1<<40+100, 1<<40+7), BDIB8D1, 16},
		{"b8d2", lineFromQwords(1<<40, 1<<40+1000, 1<<40+30000), BDIB8D2, 24},
		{"b8d4", lineFromQwords(1<<40, 1<<40+1<<30, 1<<40+12345678), BDIB8D4, 40},
		{"b4d1 pointers", lineFromWords(0x10000000, 0x10000004, 0x10000010), BDIB4D1, 20},
		{"b4d2", lineFromWords(0x10000000, 0x10004000, 0x10007FFF), BDIB4D2, 36},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			enc, ok := (BDI{}).Compress(tc.line)
			if !ok {
				t.Fatal("expected compressible")
			}
			if enc.Mode != tc.mode {
				t.Fatalf("mode = %d, want %d", enc.Mode, tc.mode)
			}
			if enc.Size() != tc.size {
				t.Fatalf("size = %d, want %d", enc.Size(), tc.size)
			}
			if got := (BDI{}).Decompress(enc); !bytes.Equal(got, tc.line) {
				t.Fatalf("round trip failed")
			}
		})
	}
}

func TestBDIMixedZeroPointerLineRejected(t *testing.T) {
	// Half the values near a large base, half near zero. Full B∆I's
	// zero-immediate second base would catch this; our single-base
	// variant (canonical sizes) deliberately rejects it, and the hybrid
	// must still round-trip the line via the raw fallback.
	line := lineFromQwords(0xDEADBEEF12345678, 3, 0xDEADBEEF87654321, 7)
	if _, ok := (BDI{}).Compress(line); ok {
		t.Fatal("single-base BDI should reject mixed zero/pointer line")
	}
	enc := CompressBest(line)
	if got := Decompress(enc); !bytes.Equal(got, line) {
		t.Fatal("hybrid round trip failed")
	}
}

func TestBDIRejectsRandomLine(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	rejected := 0
	for i := 0; i < 100; i++ {
		if _, ok := (BDI{}).Compress(randomLine(rng)); !ok {
			rejected++
		}
	}
	if rejected < 95 {
		t.Fatalf("only %d/100 random lines rejected", rejected)
	}
}

func TestCompressBestPicksSmallest(t *testing.T) {
	// A zero line must be ZCA with size 0.
	if enc := CompressBest(make([]byte, LineSize)); enc.Alg != AlgZCA || enc.Size() != 0 {
		t.Fatalf("zero line: got %v size %d", enc.Alg, enc.Size())
	}
	// Small 4-bit integers: FPC (14B) beats BDI b4d1 (22B) and b2d1.
	line := lineFromWords(1, 2, 3)
	enc := CompressBest(line)
	if enc.Alg != AlgFPC {
		t.Fatalf("small ints: alg = %v, want fpc", enc.Alg)
	}
	// Large-base pointers: BDI wins, FPC cannot compress them.
	ptr := lineFromQwords(0x7FFE00112200, 0x7FFE00112208, 0x7FFE00112240)
	enc = CompressBest(ptr)
	if enc.Alg != AlgBDI {
		t.Fatalf("pointers: alg = %v, want bdi", enc.Alg)
	}
	// Random data: stored uncompressed.
	rng := rand.New(rand.NewPCG(5, 6))
	var sawNone bool
	for i := 0; i < 20; i++ {
		if CompressBest(randomLine(rng)).Alg == AlgNone {
			sawNone = true
		}
	}
	if !sawNone {
		t.Fatal("random lines should mostly be incompressible")
	}
}

func TestDecompressAllAlgs(t *testing.T) {
	lines := [][]byte{
		make([]byte, LineSize),
		lineFromWords(5, 6),
		lineFromQwords(1<<45, 1<<45+3),
		lineOf(0xA5),
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 50; i++ {
		lines = append(lines, randomLine(rng))
	}
	for _, line := range lines {
		enc := CompressBest(line)
		if got := Decompress(enc); !bytes.Equal(got, line) {
			t.Fatalf("round trip failed for alg %v", enc.Alg)
		}
	}
}

// Property: hybrid compression round-trips arbitrary lines, and the
// compressed size never exceeds the line size.
func TestQuickHybridRoundTrip(t *testing.T) {
	f := func(seed uint64, structured bool) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9E3779B9))
		var line []byte
		if structured {
			// Generate BDI-friendly structured data to exercise the
			// compressible paths, not just the AlgNone fallback.
			base := rng.Uint64() >> (rng.UintN(40) + 8)
			qs := make([]uint64, 8)
			for i := range qs {
				qs[i] = base + uint64(rng.UintN(200))
			}
			line = lineFromQwords(qs...)
		} else {
			line = randomLine(rng)
		}
		enc := CompressBest(line)
		if enc.Size() > LineSize {
			return false
		}
		return bytes.Equal(Decompress(enc), line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FPC round-trips any line it accepts.
func TestQuickFPCRoundTrip(t *testing.T) {
	f := func(words [16]uint32) bool {
		line := make([]byte, LineSize)
		for i, w := range words {
			binary.LittleEndian.PutUint32(line[i*4:], w)
		}
		enc, ok := (FPC{}).Compress(line)
		if !ok {
			return true
		}
		return bytes.Equal((FPC{}).Decompress(enc), line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: BDI round-trips any line it accepts.
func TestQuickBDIRoundTrip(t *testing.T) {
	f := func(qs [8]uint64, narrow uint8) bool {
		line := make([]byte, LineSize)
		mask := uint64(1)<<((narrow%56)+8) - 1
		for i, q := range qs {
			binary.LittleEndian.PutUint64(line[i*8:], q&mask|qs[0]&^mask)
		}
		enc, ok := (BDI{}).Compress(line)
		if !ok {
			return true
		}
		return bytes.Equal((BDI{}).Decompress(enc), line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPairSharedBaseSavesBaseBytes(t *testing.T) {
	// Two adjacent lines of values near the same large base: shared base
	// should save the base bytes of the second line.
	a := lineFromQwords(1<<50, 1<<50+4, 1<<50+9)
	b := lineFromQwords(1<<50+100, 1<<50+104, 1<<50+90)
	p := CompressPair(a, b)
	if !p.SharedBase {
		t.Fatal("expected shared-base pair")
	}
	encA, _ := (BDI{}).Compress(a)
	encB, _ := (BDI{}).Compress(b)
	if p.Size() >= encA.Size()+encB.Size() {
		t.Fatalf("pair size %d not smaller than separate %d",
			p.Size(), encA.Size()+encB.Size())
	}
	gotA, gotB := DecompressPair(p)
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("pair round trip failed")
	}
}

func TestPairFallsBackToSeparate(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	a := randomLine(rng)
	b := lineFromWords(1, 2)
	p := CompressPair(a, b)
	if p.SharedBase {
		t.Fatal("random + fpc lines should not share a base")
	}
	gotA, gotB := DecompressPair(p)
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("pair round trip failed")
	}
}

// Property: pairs always round-trip and never exceed 128 bytes.
func TestQuickPairRoundTrip(t *testing.T) {
	f := func(seed uint64, kind uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		mk := func() []byte {
			switch kind % 3 {
			case 0:
				return randomLine(rng)
			case 1:
				base := rng.Uint64() >> 16
				return lineFromQwords(base, base+uint64(rng.UintN(100)))
			default:
				return lineFromWords(uint32(rng.UintN(16)))
			}
		}
		a, b := mk(), mk()
		p := CompressPair(a, b)
		if p.Size() > 2*LineSize {
			return false
		}
		gotA, gotB := DecompressPair(p)
		return bytes.Equal(gotA, a) && bytes.Equal(gotB, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperThresholds(t *testing.T) {
	// The paper's DICE threshold story: BDI b4d2 compresses a single line
	// to 36B, and with shared tag+base two such lines fit in 68B.
	line := lineFromWords(0x10000000, 0x10004000, 0x10002345)
	enc, ok := (BDI{}).Compress(line)
	if !ok || enc.Size() != 36 {
		t.Fatalf("b4d2 line size = %d (ok=%v), want 36", enc.Size(), ok)
	}
	next := lineFromWords(0x10001000, 0x10005000, 0x10003345)
	if ps := PairSize(line, next); ps > 68 {
		t.Fatalf("pair size = %d, want <= 68", ps)
	}
}

func TestCompressedSizeHelper(t *testing.T) {
	if CompressedSize(make([]byte, LineSize)) != 0 {
		t.Fatal("zero line size should be 0")
	}
	rng := rand.New(rand.NewPCG(21, 22))
	if CompressedSize(randomLine(rng)) != LineSize {
		t.Fatal("random line should be 64B")
	}
}

func TestAlgIDString(t *testing.T) {
	names := map[AlgID]string{
		AlgNone: "none", AlgZCA: "zca", AlgFPC: "fpc",
		AlgBDI: "bdi", AlgBDIPair: "bdi-pair", AlgID(99): "alg(99)",
	}
	for id, want := range names {
		if id.String() != want {
			t.Fatalf("AlgID(%d).String() = %q, want %q", id, id.String(), want)
		}
	}
}

func TestBitIO(t *testing.T) {
	var w bitWriter
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0b11, 2)
	r := bitReader{buf: w.Bytes()}
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("got %b", got)
	}
	if got := r.ReadBits(8); got != 0xFF {
		t.Fatalf("got %b", got)
	}
	if got := r.ReadBits(5); got != 0 {
		t.Fatalf("got %b", got)
	}
	if got := r.ReadBits(2); got != 0b11 {
		t.Fatalf("got %b", got)
	}
}

func TestSignExtend(t *testing.T) {
	if signExtend(0xF, 4) != -1 {
		t.Fatal("0xF as 4-bit should be -1")
	}
	if signExtend(0x7, 4) != 7 {
		t.Fatal("0x7 as 4-bit should be 7")
	}
	if !fitsSigned(-8, 4) || fitsSigned(-9, 4) || !fitsSigned(7, 4) || fitsSigned(8, 4) {
		t.Fatal("fitsSigned 4-bit boundaries wrong")
	}
}
