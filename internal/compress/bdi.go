package compress

import "encoding/binary"

// BDI implements Base-Delta compression in the style of Base-Delta-
// Immediate (Pekhimenko et al., PACT 2012). A line is viewed as an array
// of k-byte values; if every value is within a small signed delta of the
// line's base (its first value), the line is stored as the base plus
// narrow per-value deltas:
//
//	[base: k bytes][deltas: n*d bytes]   n = 64/k values
//
// This yields the canonical BDI sizes the DICE paper's thresholds are
// built around: b8d1=16, b4d1=20, b8d2=24, b2d1=34, b4d2=36, b8d4=40 and
// rep=8 bytes. (The "immediate" zero-base of full B∆I needs a per-value
// base-select bitmap; we omit it so that on-disk sizes match the
// published ones — mixed pointer/zero lines fall back to FPC or raw.)
type BDI struct{}

// BDI sub-modes (stored in Encoding.Mode).
const (
	BDIRep  uint8 = iota // line is one repeated 8-byte value (8B payload)
	BDIB8D1              // 8-byte base, 1-byte deltas (16B)
	BDIB4D1              // 4-byte base, 1-byte deltas (20B)
	BDIB8D2              // 8-byte base, 2-byte deltas (24B)
	BDIB2D1              // 2-byte base, 1-byte deltas (34B)
	BDIB4D2              // 4-byte base, 2-byte deltas (36B)
	BDIB8D4              // 8-byte base, 4-byte deltas (40B)
	bdiModeCount
)

// bdiGeometry returns (base bytes, delta bytes) for a mode. BDIRep is
// special-cased by the codec.
func bdiGeometry(mode uint8) (k, d int) {
	switch mode {
	case BDIB8D1:
		return 8, 1
	case BDIB8D2:
		return 8, 2
	case BDIB8D4:
		return 8, 4
	case BDIB4D1:
		return 4, 1
	case BDIB4D2:
		return 4, 2
	case BDIB2D1:
		return 2, 1
	default:
		panic("compress: bad BDI mode")
	}
}

// bdiEncodedSize returns the payload size in bytes for a mode.
func bdiEncodedSize(mode uint8) int {
	if mode == BDIRep {
		return 8
	}
	k, d := bdiGeometry(mode)
	return k + (LineSize/k)*d
}

// Name implements Compressor.
func (BDI) Name() string { return "bdi" }

// Compress implements Compressor: modes are ordered by encoded size, so
// the first success is the smallest encoding.
func (BDI) Compress(line []byte) (Encoding, bool) {
	mustLine(line)
	if payload, ok := bdiTryRep(line); ok {
		return Encoding{Alg: AlgBDI, Mode: BDIRep, Payload: payload}, true
	}
	for mode := BDIB8D1; mode < bdiModeCount; mode++ {
		if payload, ok := bdiTryMode(line, mode); ok {
			return Encoding{Alg: AlgBDI, Mode: mode, Payload: payload}, true
		}
	}
	return Encoding{}, false
}

// Decompress implements Compressor.
func (BDI) Decompress(enc Encoding) []byte {
	if enc.Alg != AlgBDI {
		panic("compress: BDI.Decompress on " + enc.Alg.String())
	}
	if enc.Mode == BDIRep {
		out := make([]byte, LineSize)
		for i := 0; i < LineSize; i += 8 {
			copy(out[i:i+8], enc.Payload[:8])
		}
		return out
	}
	k, _ := bdiGeometry(enc.Mode)
	base := int64(readUint(enc.Payload[:k], k))
	return bdiDecodeWithBase(enc.Payload[k:], enc.Mode, base)
}

// bdiTryRep checks for a line consisting of one repeated 8-byte value.
func bdiTryRep(line []byte) ([]byte, bool) {
	first := binary.LittleEndian.Uint64(line[:8])
	for i := 8; i < LineSize; i += 8 {
		if binary.LittleEndian.Uint64(line[i:i+8]) != first {
			return nil, false
		}
	}
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, first)
	return payload, true
}

// bdiTryMode attempts one base+delta geometry with the line's first value
// as the base.
func bdiTryMode(line []byte, mode uint8) ([]byte, bool) {
	k, _ := bdiGeometry(mode)
	base := int64(readUint(line[:k], k))
	rest, ok := bdiTryModeWithBase(line, mode, base)
	if !ok {
		return nil, false
	}
	payload := make([]byte, bdiEncodedSize(mode))
	writeUint(payload[:k], uint64(base), k)
	copy(payload[k:], rest)
	return payload, true
}

// readUint reads a little-endian unsigned integer of size k from b. The
// value is NOT sign extended; for k == 8 the full word is returned.
func readUint(b []byte, k int) uint64 {
	var v uint64
	for i := k - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// writeUint writes the low k bytes of v little-endian into b.
func writeUint(b []byte, v uint64, k int) {
	for i := 0; i < k; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
