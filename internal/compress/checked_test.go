package compress

import (
	"bytes"
	"strings"
	"testing"
)

// sampleLines covers every encoding family: zero (ZCA), repeated value
// (BDIRep), base+delta (BDI), small integers (FPC), and incompressible.
func sampleLines() [][]byte {
	zero := make([]byte, LineSize)
	rep := bytes.Repeat([]byte{0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89}, 8)
	bdi := make([]byte, LineSize)
	for i := 0; i < 8; i++ {
		writeUint(bdi[i*8:], 0x1000_0000_0000+uint64(i*3), 8)
	}
	// Wildly varying word values defeat every BDI geometry, but each word
	// matches a cheap FPC pattern (zero, half-zero, repeated byte, SE16).
	fpc := make([]byte, LineSize)
	fpcWords := []uint32{0, 0x1234_0000, 0x5555_5555, 0x0000_7FFF}
	for i := 0; i < LineSize; i += 4 {
		writeUint(fpc[i:], uint64(fpcWords[(i/4)%len(fpcWords)]), 4)
	}
	raw := make([]byte, LineSize)
	for i := range raw {
		raw[i] = byte(splitmixByte(i))
	}
	return [][]byte{zero, rep, bdi, fpc, raw}
}

// splitmixByte gives incompressible-looking deterministic bytes.
func splitmixByte(i int) uint64 {
	x := uint64(i)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	x ^= x >> 29
	return x * 0x94D049BB133111EB >> 56
}

func TestLineSumNeverZero(t *testing.T) {
	for _, line := range sampleLines() {
		if LineSum(line) == 0 {
			t.Fatal("LineSum returned the no-checksum sentinel")
		}
	}
}

func TestDecompressCheckedRoundTrip(t *testing.T) {
	for i, line := range sampleLines() {
		enc := CompressBest(line)
		if enc.Sum == 0 {
			t.Fatalf("line %d: CompressBest left no checksum", i)
		}
		got, err := DecompressChecked(enc)
		if err != nil {
			t.Fatalf("line %d (%v): %v", i, enc.Alg, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("line %d (%v): round trip mismatch", i, enc.Alg)
		}
	}
}

func TestDecompressCheckedRejectsCorruption(t *testing.T) {
	bdiLine := sampleLines()[2]
	bdiEnc := CompressBest(bdiLine)
	if bdiEnc.Alg != AlgBDI {
		t.Fatalf("setup: expected a BDI line, got %v", bdiEnc.Alg)
	}
	fpcLine := sampleLines()[3]
	fpcEnc := CompressBest(fpcLine)
	if fpcEnc.Alg != AlgFPC {
		t.Fatalf("setup: expected an FPC line, got %v", fpcEnc.Alg)
	}

	flip := func(enc Encoding, byteIdx int) Encoding {
		p := cloneBytes(enc.Payload)
		p[byteIdx] ^= 0x10
		enc.Payload = p
		return enc
	}
	truncate := func(enc Encoding, n int) Encoding {
		enc.Payload = cloneBytes(enc.Payload)[:n]
		return enc
	}

	cases := []struct {
		name string
		enc  Encoding
		want string // error substring
	}{
		{"unknown alg", Encoding{Alg: AlgID(200), Payload: make([]byte, 8)}, "unknown algorithm"},
		{"pair member standalone", Encoding{Alg: AlgBDIPair, Mode: BDIB8D1, Payload: make([]byte, 8)}, "standalone"},
		{"raw short payload", Encoding{Alg: AlgNone, Payload: make([]byte, 63)}, "raw payload"},
		{"zca with payload", Encoding{Alg: AlgZCA, Payload: []byte{0}}, "zero-line"},
		{"bdi bad mode", Encoding{Alg: AlgBDI, Mode: 42, Payload: make([]byte, 16)}, "BDI mode"},
		{"bdi length mismatch", truncate(bdiEnc, bdiEnc.Size()-1), "payload is"},
		{"bdi payload flip", flip(bdiEnc, 0), "checksum"},
		{"fpc oversize", Encoding{Alg: AlgFPC, Payload: make([]byte, LineSize)}, "must be under"},
		{"fpc truncated", truncate(fpcEnc, 2), "truncated"},
		{"fpc payload flip", flip(fpcEnc, 0), ""},
		{"wrong checksum", Encoding{Alg: AlgZCA, Sum: 12345}, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecompressChecked(tc.enc)
			if err == nil {
				t.Fatal("corrupt encoding accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecompressCheckedSkipsAbsentChecksum(t *testing.T) {
	// Per-algorithm Compress leaves Sum zero; checked decode must still
	// validate structure and succeed.
	line := sampleLines()[2]
	enc, ok := (BDI{}).Compress(line)
	if !ok {
		t.Fatal("setup: BDI failed")
	}
	if enc.Sum != 0 {
		t.Fatal("setup: raw Compress set a checksum")
	}
	got, err := DecompressChecked(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Fatal("round trip mismatch")
	}
}
