package compress

import (
	"testing"

	"dice/internal/data"
)

// benchCorpus builds a deterministic stream of profiled lines covering
// the compressibility spectrum the workload catalog exercises: zeros,
// repeats, pointers, small ints, halfwords, floats and noise.
func benchCorpus(n int) [][]byte {
	var p data.Profile
	for k := data.Kind(0); k < data.KindCount; k++ {
		p.Weights[k] = 1
	}
	p.PageCoherence = 0.9
	s := data.NewSynth(0xD1CE, p)
	lines := make([][]byte, n)
	for i := range lines {
		lines[i] = s.Line(uint64(i))
	}
	return lines
}

// BenchmarkSizeSingle measures the hybrid single-line sizing path the
// DRAM cache calls on every memoization miss (ns/ref, allocs/ref).
func BenchmarkSizeSingle(b *testing.B) {
	lines := benchCorpus(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompressedSize(lines[i%len(lines)])
	}
}

// BenchmarkSizePair measures the adjacent-pair sizing path (tag and
// base sharing) the cache calls when buddies co-reside in a set.
func BenchmarkSizePair(b *testing.B) {
	lines := benchCorpus(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * 2) % (len(lines) - 1)
		PairSize(lines[j], lines[j+1])
	}
}

// BenchmarkSizeWithFPC measures single-algorithm sizing used by the
// compression-algorithm ablation.
func BenchmarkSizeWithFPC(b *testing.B) {
	lines := benchCorpus(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SizeWith(AlgFPC, lines[i%len(lines)])
	}
}

// BenchmarkSizeWithBDI measures single-algorithm BDI sizing.
func BenchmarkSizeWithBDI(b *testing.B) {
	lines := benchCorpus(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SizeWith(AlgBDI, lines[i%len(lines)])
	}
}
