package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	reqs := []Request{{1, false}, {2, true}, {1 << 40, false}, {0, true}}
	var buf bytes.Buffer
	if err := Write(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("len = %d, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

func TestFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace read back %d records", len(got))
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("shrt"),
		[]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad magic
		[]byte("DTRC\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad version
		[]byte("DTRC\x01\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00"), // truncated records
		[]byte("DTRC\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"), // absurd count
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestFileRejectsOversizeLine(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Request{{Line: 1 << 63}}); err == nil {
		t.Fatal("oversize line accepted")
	}
}

// Property: arbitrary traces round-trip exactly.
func TestQuickFileRoundTrip(t *testing.T) {
	f := func(raw []uint32, writes []bool) bool {
		reqs := make([]Request, len(raw))
		for i, v := range raw {
			reqs[i] = Request{Line: uint64(v), Write: i < len(writes) && writes[i]}
		}
		var buf bytes.Buffer
		if err := Write(&buf, reqs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileReplayIntegration(t *testing.T) {
	// A synthetic stream saved and reloaded drives a Replay identically.
	g := NewSynthetic(baseCfg())
	orig := Generate(g, 2000)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplay(loaded)
	for i := 0; i < len(orig); i++ {
		req, ok := r.Next()
		if !ok || req != orig[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
