package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	reqs := []Request{{1, false}, {2, true}, {1 << 40, false}, {0, true}}
	var buf bytes.Buffer
	if err := Write(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("len = %d, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

func TestFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace read back %d records", len(got))
	}
}

// header builds a trace header claiming count records, followed by body.
func header(version uint32, count uint64, body ...byte) []byte {
	b := []byte("DTRC")
	b = binary.LittleEndian.AppendUint32(b, version)
	b = binary.LittleEndian.AppendUint64(b, count)
	return append(b, body...)
}

func TestFileRejectsGarbage(t *testing.T) {
	oneRecord := make([]byte, 8)
	cases := []struct {
		name string
		in   []byte
		want string // error substring
	}{
		{"empty input", nil, "magic"},
		{"short magic", []byte("shrt"), "magic"},
		{"bad magic", append([]byte("XXXX"), header(1, 0)[4:]...), "bad magic"},
		{"truncated header", []byte("DTRC\x01\x00"), "header"},
		{"bad version", header(9, 0), "version"},
		{"truncated records", header(1, 5), "record 0 of 5"},
		{"absurd count", header(1, ^uint64(0)), "implausible"},
		// A count that passes the plausibility cap but promises ~16GB of
		// records over an empty body: the allocation guard means this
		// fails at record 0 instead of preallocating the whole claim.
		{"huge plausible count, truncated body", header(1, 1<<31), "record 0 of"},
		{"mid-stream truncation", header(1, 2, oneRecord...), "record 1 of 2"},
		{"trailing garbage", header(1, 1, append(oneRecord, 0xEE)...), "trailing garbage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.in))
			if err == nil {
				t.Fatal("corrupt trace accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFileRejectsOversizeLine(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Request{{Line: 1 << 63}}); err == nil {
		t.Fatal("oversize line accepted")
	}
}

// Property: arbitrary traces round-trip exactly.
func TestQuickFileRoundTrip(t *testing.T) {
	f := func(raw []uint32, writes []bool) bool {
		reqs := make([]Request, len(raw))
		for i, v := range raw {
			reqs[i] = Request{Line: uint64(v), Write: i < len(writes) && writes[i]}
		}
		var buf bytes.Buffer
		if err := Write(&buf, reqs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileReplayIntegration(t *testing.T) {
	// A synthetic stream saved and reloaded drives a Replay identically.
	g := NewSynthetic(baseCfg())
	orig := Generate(g, 2000)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplay(loaded)
	for i := 0; i < len(orig); i++ {
		req, ok := r.Next()
		if !ok || req != orig[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
