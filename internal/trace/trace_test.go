package trace

import (
	"testing"
	"testing/quick"
)

func baseCfg() SynthConfig {
	return SynthConfig{
		FootprintLines: 10000,
		SeqWeight:      0.5, SeqRunLen: 16,
		StrideWeight: 0.1, StrideLines: 8,
		RandWeight: 0.2,
		HotWeight:  0.2, HotLines: 500,
		WriteFrac: 0.25,
		Seed:      99,
	}
}

func TestValidate(t *testing.T) {
	if err := baseCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SynthConfig{
		{},
		func() SynthConfig { c := baseCfg(); c.FootprintLines = 0; return c }(),
		func() SynthConfig { c := baseCfg(); c.SeqWeight = -1; return c }(),
		func() SynthConfig {
			c := baseCfg()
			c.SeqWeight, c.StrideWeight, c.RandWeight, c.HotWeight = 0, 0, 0, 0
			return c
		}(),
		func() SynthConfig { c := baseCfg(); c.WriteFrac = 1.5; return c }(),
		func() SynthConfig { c := baseCfg(); c.HotLines = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDeterminismAndReset(t *testing.T) {
	g := NewSynthetic(baseCfg())
	first := Generate(g, 1000)
	g.Reset()
	second := Generate(g, 1000)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d differs after Reset", i)
		}
	}
	h := NewSynthetic(baseCfg())
	third := Generate(h, 1000)
	for i := range first {
		if first[i] != third[i] {
			t.Fatalf("request %d differs across instances", i)
		}
	}
}

func TestFootprintBound(t *testing.T) {
	cfg := baseCfg()
	g := NewSynthetic(cfg)
	for _, r := range Generate(g, 20000) {
		if r.Line >= cfg.FootprintLines {
			t.Fatalf("line %d outside footprint %d", r.Line, cfg.FootprintLines)
		}
	}
}

func TestWriteFraction(t *testing.T) {
	cfg := baseCfg()
	cfg.WriteFrac = 0.3
	g := NewSynthetic(cfg)
	writes := 0
	const n = 20000
	for _, r := range Generate(g, n) {
		if r.Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("write fraction = %v, want ~0.3", frac)
	}
}

// spatialAdjacency measures the fraction of requests whose line is
// exactly the previous line + 1 — the locality BAI exploits.
func spatialAdjacency(reqs []Request) float64 {
	adj := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Line == reqs[i-1].Line+1 {
			adj++
		}
	}
	return float64(adj) / float64(len(reqs)-1)
}

func TestSequentialDominantHasHighAdjacency(t *testing.T) {
	cfg := baseCfg()
	cfg.SeqWeight, cfg.StrideWeight, cfg.RandWeight, cfg.HotWeight = 1, 0, 0, 0
	seq := spatialAdjacency(Generate(NewSynthetic(cfg), 20000))
	if seq < 0.8 {
		t.Fatalf("pure-seq adjacency = %v, want > 0.8", seq)
	}
	cfg2 := baseCfg()
	cfg2.SeqWeight, cfg2.StrideWeight, cfg2.RandWeight, cfg2.HotWeight = 0, 0, 1, 0
	rnd := spatialAdjacency(Generate(NewSynthetic(cfg2), 20000))
	if rnd > 0.01 {
		t.Fatalf("pure-random adjacency = %v, want ~0", rnd)
	}
}

func TestHotRegionConcentratesReuse(t *testing.T) {
	// Hot mode draws from a skewed distribution with a uniform hottest
	// prefix: most accesses land in a small fraction of the footprint,
	// but reuse tapers across the whole working set (no hard cutoff).
	cfg := baseCfg()
	cfg.SeqWeight, cfg.StrideWeight, cfg.RandWeight, cfg.HotWeight = 0, 0, 0, 1
	cfg.HotLines = 100
	g := NewSynthetic(cfg)
	inPrefix, inTenth := 0, 0
	const n = 5000
	for _, r := range Generate(g, n) {
		if r.Line < 100 {
			inPrefix++
		}
		if r.Line < cfg.FootprintLines/10 {
			inTenth++
		}
	}
	if inPrefix < n/3 {
		t.Fatalf("only %d/%d hot accesses in the hottest prefix", inPrefix, n)
	}
	if inTenth < n*6/10 {
		t.Fatalf("only %d/%d hot accesses in the hottest tenth", inTenth, n)
	}
	if inPrefix == n {
		t.Fatal("skewed reuse must also touch the tail")
	}
}

func TestStrideMode(t *testing.T) {
	cfg := baseCfg()
	cfg.SeqWeight, cfg.StrideWeight, cfg.RandWeight, cfg.HotWeight = 0, 1, 0, 0
	cfg.StrideLines = 4
	reqs := Generate(NewSynthetic(cfg), 1000)
	strided := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Line == reqs[i-1].Line+4 {
			strided++
		}
	}
	if float64(strided)/float64(len(reqs)) < 0.7 {
		t.Fatalf("stride-4 steps = %d/%d, want > 70%%", strided, len(reqs))
	}
}

func TestReplay(t *testing.T) {
	reqs := []Request{{1, false}, {2, true}, {3, false}}
	r := NewReplay(reqs)
	if r.Len() != 3 {
		t.Fatal("len")
	}
	got := Generate(r, 10)
	if len(got) != 3 {
		t.Fatalf("replay returned %d requests", len(got))
	}
	if _, ok := r.Next(); ok {
		t.Fatal("exhausted replay must return false")
	}
	r.Reset()
	if again := Generate(r, 10); len(again) != 3 || again[1] != reqs[1] {
		t.Fatal("reset replay broken")
	}
}

func TestLoopingNeverExhausts(t *testing.T) {
	r := NewReplay([]Request{{1, false}, {2, false}})
	l := NewLooping(r)
	got := Generate(l, 7)
	if len(got) != 7 {
		t.Fatalf("looping stream returned %d of 7", len(got))
	}
	want := []uint64{1, 2, 1, 2, 1, 2, 1}
	for i, r := range got {
		if r.Line != want[i] {
			t.Fatalf("looping order wrong at %d: %d", i, r.Line)
		}
	}
}

// Property: generators always respect the footprint and never exhaust.
func TestQuickSyntheticBounds(t *testing.T) {
	f := func(seed uint64, fpRaw uint16) bool {
		cfg := baseCfg()
		cfg.Seed = seed
		cfg.FootprintLines = uint64(fpRaw)%50000 + 1
		if cfg.HotLines > cfg.FootprintLines {
			cfg.HotLines = cfg.FootprintLines
		}
		g := NewSynthetic(cfg)
		for i := 0; i < 200; i++ {
			r, ok := g.Next()
			if !ok || r.Line >= cfg.FootprintLines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSyntheticNext(b *testing.B) {
	g := NewSynthetic(baseCfg())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
