// Package trace defines the memory-reference streams the simulator
// replays, plus synthetic generators that reproduce the access-pattern
// axes DICE is sensitive to: footprint (working set vs. cache capacity),
// spatial locality (how often the next reference is an adjacent line —
// what BAI converts into bandwidth), temporal reuse (hot sets), striding,
// and write fraction. Streams are produced at the L3-access level: each
// request is a reference that missed the private L1/L2 levels, which is
// the traffic the shared L3 / L4 / main-memory system observes.
package trace

import "fmt"

// Request is one memory reference: a 64-byte-line address within the
// issuing core's virtual address space, and whether it stores.
type Request struct {
	Line  uint64
	Write bool
}

// Generator produces a request stream.
type Generator interface {
	// Next returns the next request. ok is false when the stream is
	// exhausted (synthetic streams never exhaust; kernel traces do).
	Next() (Request, bool)
	// Reset rewinds the stream to its beginning.
	Reset()
}

// Generate materializes up to n requests from g.
func Generate(g Generator, n int) []Request {
	out := make([]Request, 0, n)
	for len(out) < n {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// SynthConfig parameterizes the synthetic generator. Pattern weights need
// not sum to 1; they are normalized.
type SynthConfig struct {
	// FootprintLines is the size of the touched region in 64B lines.
	FootprintLines uint64
	// SeqWeight selects streaming bursts of consecutive lines.
	SeqWeight float64
	// SeqRunLen is the mean burst length of a streaming run, in lines.
	SeqRunLen int
	// StrideWeight selects constant-stride runs.
	StrideWeight float64
	// StrideLines is the stride distance in lines.
	StrideLines uint64
	// RandWeight selects uniform random references over the footprint
	// (pointer-chasing behavior).
	RandWeight float64
	// HotWeight selects references into a small hot region (temporal
	// reuse that the L3/L4 capture).
	HotWeight float64
	// HotLines is the hot-region size in lines.
	HotLines uint64
	// WriteFrac is the store fraction (0..1).
	WriteFrac float64
	// Seed drives all pseudo-randomness.
	Seed uint64
}

// Validate reports configuration errors.
func (c SynthConfig) Validate() error {
	switch {
	case c.FootprintLines == 0:
		return fmt.Errorf("trace: FootprintLines must be positive")
	case c.SeqWeight < 0 || c.StrideWeight < 0 || c.RandWeight < 0 || c.HotWeight < 0:
		return fmt.Errorf("trace: negative pattern weight")
	case c.SeqWeight+c.StrideWeight+c.RandWeight+c.HotWeight == 0:
		return fmt.Errorf("trace: all pattern weights zero")
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("trace: WriteFrac %v out of [0,1]", c.WriteFrac)
	case c.HotWeight > 0 && c.HotLines == 0:
		return fmt.Errorf("trace: HotWeight set but HotLines zero")
	}
	return nil
}

// mode identifies the active access pattern of the generator's state
// machine.
type mode uint8

const (
	modeSeq mode = iota
	modeStride
	modeRand
	modeHot
)

// Synthetic is a deterministic state-machine generator: it picks a
// pattern by weight, runs it for a burst, then re-draws.
type Synthetic struct {
	cfg  SynthConfig
	cum  [4]float64
	rng  uint64
	mode mode
	pos  uint64 // current line for seq/stride runs
	left int    // requests remaining in the current burst
}

// NewSynthetic builds a generator; it panics on invalid configuration.
func NewSynthetic(cfg SynthConfig) *Synthetic {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.SeqRunLen <= 0 {
		cfg.SeqRunLen = 16
	}
	if cfg.StrideLines == 0 {
		cfg.StrideLines = 8
	}
	g := &Synthetic{cfg: cfg}
	total := cfg.SeqWeight + cfg.StrideWeight + cfg.RandWeight + cfg.HotWeight
	g.cum[0] = cfg.SeqWeight / total
	g.cum[1] = g.cum[0] + cfg.StrideWeight/total
	g.cum[2] = g.cum[1] + cfg.RandWeight/total
	g.cum[3] = 1
	g.Reset()
	return g
}

// Reset implements Generator.
func (g *Synthetic) Reset() {
	g.rng = g.cfg.Seed | 1
	g.left = 0
	g.pos = 0
}

func (g *Synthetic) next64() uint64 {
	// splitmix64 stream.
	g.rng += 0x9E3779B97F4A7C15
	x := g.rng
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

func (g *Synthetic) unit() float64 { return float64(g.next64()>>11) / (1 << 53) }

// skewed draws a line from a power-law distribution over the footprint:
// P(line < x) = (x/F)^(1/k). Low line numbers are re-referenced heavily
// while reuse tapers smoothly across the whole working set — the shape
// of real miss-rate curves, avoiding artificial capacity cliffs.
func (g *Synthetic) skewed(k int) uint64 {
	u := g.unit()
	v := u
	for i := 1; i < k; i++ {
		v *= u
	}
	line := uint64(v * float64(g.cfg.FootprintLines))
	if line >= g.cfg.FootprintLines {
		line = g.cfg.FootprintLines - 1
	}
	return line
}

// Next implements Generator. Synthetic streams never exhaust.
func (g *Synthetic) Next() (Request, bool) {
	if g.left == 0 {
		g.redraw()
	}
	g.left--
	var line uint64
	switch g.mode {
	case modeSeq:
		line = g.pos % g.cfg.FootprintLines
		g.pos++
	case modeStride:
		line = g.pos % g.cfg.FootprintLines
		g.pos += g.cfg.StrideLines
	case modeRand:
		line = g.skewed(6)
	case modeHot:
		line = g.skewed(6)
		if hot := g.cfg.HotLines; hot > 0 && line < hot {
			// Within the hottest prefix, spread uniformly so the prefix
			// acts as the classic hot region.
			line = g.next64() % hot
		}
	}
	return Request{Line: line, Write: g.unit() < g.cfg.WriteFrac}, true
}

// redraw selects the next burst's pattern and length.
func (g *Synthetic) redraw() {
	u := g.unit()
	switch {
	case u < g.cum[0]:
		g.mode = modeSeq
		// Run starts follow the same skewed reuse distribution as the
		// other modes: sweeps revisit the hotter parts of the working
		// set more often than its cold tail.
		g.pos = g.skewed(4)
		// Burst lengths vary 0.5x..1.5x around the mean.
		g.left = 1 + int(float64(g.cfg.SeqRunLen)*(0.5+g.unit()))
	case u < g.cum[1]:
		g.mode = modeStride
		g.pos = g.skewed(4)
		g.left = 1 + int(8*(0.5+g.unit()))
	case u < g.cum[2]:
		g.mode = modeRand
		g.left = 1 + int(4*g.unit())
	default:
		g.mode = modeHot
		g.left = 1 + int(8*g.unit())
	}
}

// Replay replays a fixed request slice (used for kernel-generated
// traces). The slice is borrowed, not copied, and never written: many
// Replay values may share one backing trace — the workload artifact
// cache hands the same recorded kernel trace to every concurrent
// simulation — while each carries its own position.
type Replay struct {
	reqs []Request
	pos  int
}

// NewReplay wraps a materialized trace. The caller must not mutate reqs
// afterwards (see the sharing contract on Replay).
func NewReplay(reqs []Request) *Replay { return &Replay{reqs: reqs} }

// Next implements Generator.
func (r *Replay) Next() (Request, bool) {
	if r.pos >= len(r.reqs) {
		return Request{}, false
	}
	req := r.reqs[r.pos]
	r.pos++
	return req, true
}

// Reset implements Generator.
func (r *Replay) Reset() { r.pos = 0 }

// Len returns the trace length.
func (r *Replay) Len() int { return len(r.reqs) }

// Looping wraps a finite generator so it restarts when exhausted,
// producing an endless stream (kernel traces shorter than the simulation
// window loop, matching how the paper re-executes fixed-work regions).
type Looping struct {
	g Generator
}

// NewLooping wraps g.
func NewLooping(g Generator) *Looping { return &Looping{g: g} }

// Next implements Generator.
func (l *Looping) Next() (Request, bool) {
	r, ok := l.g.Next()
	if ok {
		return r, true
	}
	l.g.Reset()
	return l.g.Next()
}

// Reset implements Generator.
func (l *Looping) Reset() { l.g.Reset() }
