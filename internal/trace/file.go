package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace file format, for saving kernel-generated or captured
// streams and replaying them later (or feeding them to other tools):
//
//	magic   [4]byte  "DTRC"
//	version uint32   1
//	count   uint64   number of requests
//	records count x {
//	    lineAndWrite uint64   // line<<1 | writeBit
//	}
//
// Lines are delta-unfriendly in general, so records are stored raw; the
// format favors simplicity and deterministic round-trips over size.

var traceMagic = [4]byte{'D', 'T', 'R', 'C'}

const traceVersion = 1

// maxTraceLine keeps line<<1 within uint64.
const maxTraceLine = 1<<63 - 1

// Write serializes a request stream.
func Write(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(reqs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var rec [8]byte
	for _, r := range reqs {
		if r.Line > maxTraceLine {
			return fmt.Errorf("trace: line %#x exceeds format range", r.Line)
		}
		v := r.Line << 1
		if r.Write {
			v |= 1
		}
		binary.LittleEndian.PutUint64(rec[:], v)
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	return bw.Flush()
}

// Read deserializes a request stream written by Write.
func Read(r io.Reader) ([]Request, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[4:])
	const maxReasonable = 1 << 31
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Preallocate conservatively: the count is attacker-controlled (a
	// flipped header byte can claim billions of records), so capacity is
	// earned by actual bytes in the stream, not promised by the header.
	// A plausible-but-huge count over a truncated body then fails at the
	// first missing record instead of allocating gigabytes up front.
	const maxPrealloc = 1 << 16
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	reqs := make([]Request, 0, prealloc)
	var rec [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d of %d: %w", i, count, err)
		}
		v := binary.LittleEndian.Uint64(rec[:])
		reqs = append(reqs, Request{Line: v >> 1, Write: v&1 == 1})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing garbage after %d records", count)
	}
	return reqs, nil
}
