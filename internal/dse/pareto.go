package dse

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"dice/internal/serve"
)

// Point is one sweep cell positioned in the objective space the
// frontier is computed over: speedup (higher is better) against
// relative energy, relative EDP and unrecovered faults (each lower is
// better), all normalized to the cell's baseline (serve.CellSpec.
// Baseline — the uncompressed Alloy design on the same workload and
// machine knobs).
type Point struct {
	// Key is the cell's canonical identity.
	Key string `json:"key"`
	// Workload names the cell's workload; frontiers are per-workload.
	Workload string `json:"workload"`
	// Speedup is the mean per-core IPC ratio versus the baseline.
	Speedup float64 `json:"speedup"`
	// EnergyRel is total energy relative to the baseline.
	EnergyRel float64 `json:"energy_rel"`
	// EDPRel is energy-delay product relative to the baseline.
	EDPRel float64 `json:"edp_rel"`
	// FaultUnrecovered counts faults no mechanism repaired.
	FaultUnrecovered uint64 `json:"fault_unrecovered"`
	// Frontier marks the cell Pareto-optimal within its workload: no
	// other cell is at least as good on every objective and strictly
	// better on one.
	Frontier bool `json:"frontier"`
}

// Frontier positions every expanded cell against its baseline and
// marks the per-workload Pareto-optimal set. It requires a result for
// every cell (an incomplete sweep has no frontier — resume it first)
// and returns points sorted by (workload, key), so the same results
// always render the same bytes regardless of execution order, worker
// count, or which shards ran which cells.
func Frontier(cells []serve.CellSpec, results map[string]serve.CellResult) ([]Point, error) {
	points := make([]Point, 0, len(cells))
	for _, c := range cells {
		key := c.Key()
		res, ok := results[key]
		if !ok {
			return nil, fmt.Errorf("dse: no result for cell %s (incomplete sweep; resume it first)", key)
		}
		base, ok := results[c.Baseline().Key()]
		if !ok {
			return nil, fmt.Errorf("dse: no baseline result for cell %s (incomplete sweep; resume it first)", key)
		}
		points = append(points, Point{
			Key:              key,
			Workload:         c.Workload,
			Speedup:          speedup(base, res),
			EnergyRel:        ratio(res.Energy, base.Energy),
			EDPRel:           ratio(res.EDP, base.EDP),
			FaultUnrecovered: res.FaultUnrecovered,
		})
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Workload != points[j].Workload {
			return points[i].Workload < points[j].Workload
		}
		return points[i].Key < points[j].Key
	})
	markFrontier(points)
	return points, nil
}

// speedup is the mean per-core IPC ratio test/base — the same
// weighted-speedup definition sim.Speedup uses for experiment tables,
// recomputed here from the wire-format IPC vectors.
func speedup(base, test serve.CellResult) float64 {
	n := len(test.IPC)
	if n == 0 || len(base.IPC) != n {
		return math.NaN()
	}
	sum := 0.0
	for i := range test.IPC {
		sum += ratio(test.IPC[i], base.IPC[i])
	}
	return sum / float64(n)
}

// ratio is a/b, tolerating a zero denominator (1 when both are zero,
// +Inf otherwise) so degenerate cells position deterministically
// instead of poisoning the frontier with NaN comparisons.
func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// markFrontier sets Frontier on the per-workload Pareto-optimal
// points. points must be sorted by workload; each workload group is
// scanned O(n²), fine at sweep scale where a workload rarely holds
// more than a few thousand cells.
func markFrontier(points []Point) {
	for lo := 0; lo < len(points); {
		hi := lo
		for hi < len(points) && points[hi].Workload == points[lo].Workload {
			hi++
		}
		group := points[lo:hi]
		for i := range group {
			group[i].Frontier = !dominated(group, i)
		}
		lo = hi
	}
}

// dominated reports whether some other point in group beats point i:
// at least as good on every objective, strictly better on one.
func dominated(group []Point, i int) bool {
	p := group[i]
	for j := range group {
		if j == i {
			continue
		}
		q := group[j]
		if q.Speedup >= p.Speedup && q.EnergyRel <= p.EnergyRel &&
			q.EDPRel <= p.EDPRel && q.FaultUnrecovered <= p.FaultUnrecovered &&
			(q.Speedup > p.Speedup || q.EnergyRel < p.EnergyRel ||
				q.EDPRel < p.EDPRel || q.FaultUnrecovered < p.FaultUnrecovered) {
			return true
		}
	}
	return false
}

// WriteCSV renders the points as CSV: a fixed header then one row per
// point in the given order. Keys contain commas, so fields are
// RFC 4180-quoted by encoding/csv; floats are formatted losslessly
// (strconv 'g', like the obs exports), so the bytes are a pure
// function of the values.
func WriteCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"key", "workload", "speedup", "energy_rel", "edp_rel", "fault_unrecovered", "frontier"}); err != nil {
		return err
	}
	for _, p := range points {
		err := cw.Write([]string{
			p.Key, p.Workload,
			strconv.FormatFloat(p.Speedup, 'g', -1, 64),
			strconv.FormatFloat(p.EnergyRel, 'g', -1, 64),
			strconv.FormatFloat(p.EDPRel, 'g', -1, 64),
			strconv.FormatUint(p.FaultUnrecovered, 10),
			strconv.FormatBool(p.Frontier),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the points as an indented JSON array in the given
// order. Non-finite values (possible only from degenerate zero-IPC
// cells) are rejected up front with the offending cell named, rather
// than surfacing encoding/json's unlocated "unsupported value".
func WriteJSON(w io.Writer, points []Point) error {
	for _, p := range points {
		for _, v := range [...]float64{p.Speedup, p.EnergyRel, p.EDPRel} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dse: cell %s has a non-finite objective; use CSV for raw dumps", p.Key)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
