package dse

import (
	"bytes"
	"strings"
	"testing"

	"dice/internal/serve"
)

// paretoFixture builds a two-cell-plus-baseline matrix with hand-set
// metrics: cellA dominates cellB on every objective.
func paretoFixture() ([]serve.CellSpec, map[string]serve.CellResult) {
	base := serve.CellSpec{Workload: "gcc", Policy: "base", Refs: 100}
	cellA := serve.CellSpec{Workload: "gcc", Policy: "dice", Refs: 100}
	cellB := serve.CellSpec{Workload: "gcc", Policy: "tsi", Refs: 100}
	results := map[string]serve.CellResult{
		base.Key():  {Key: base.Key(), Workload: "gcc", IPC: []float64{1, 1}, Energy: 100, EDP: 100},
		cellA.Key(): {Key: cellA.Key(), Workload: "gcc", IPC: []float64{1.5, 1.5}, Energy: 80, EDP: 60},
		cellB.Key(): {Key: cellB.Key(), Workload: "gcc", IPC: []float64{1.2, 1.2}, Energy: 90, EDP: 80, FaultUnrecovered: 3},
	}
	return []serve.CellSpec{cellA, cellB, base}, results
}

// Speedup/energy/EDP normalize against the baseline cell, and a point
// beaten on every objective is off the frontier.
func TestFrontierDomination(t *testing.T) {
	cells, results := paretoFixture()
	points, err := Frontier(cells, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	byKey := map[string]Point{}
	for _, p := range points {
		byKey[p.Key] = p
	}
	a := byKey[cells[0].Key()]
	b := byKey[cells[1].Key()]
	base := byKey[cells[2].Key()]
	if a.Speedup != 1.5 || a.EnergyRel != 0.8 || a.EDPRel != 0.6 {
		t.Fatalf("cellA objectives = %+v", a)
	}
	if base.Speedup != 1 || base.EnergyRel != 1 || base.EDPRel != 1 {
		t.Fatalf("baseline not its own normalization point: %+v", base)
	}
	if !a.Frontier {
		t.Fatal("dominating point off the frontier")
	}
	if b.Frontier {
		t.Fatal("dominated point on the frontier")
	}
	if base.Frontier {
		t.Fatal("baseline (dominated by cellA) on the frontier")
	}
}

// Missing results (cell or baseline) are an incomplete sweep, not a
// silent hole in the export.
func TestFrontierRequiresCompleteResults(t *testing.T) {
	cells, results := paretoFixture()
	delete(results, cells[1].Key())
	if _, err := Frontier(cells, results); err == nil || !strings.Contains(err.Error(), "incomplete sweep") {
		t.Fatalf("missing result not reported: %v", err)
	}
}

// Frontier output order is (workload, key), independent of input
// order — the determinism the byte-equality bar rests on.
func TestFrontierDeterministicOrder(t *testing.T) {
	cells, results := paretoFixture()
	fwd, err := Frontier(cells, results)
	if err != nil {
		t.Fatal(err)
	}
	rev := append([]serve.CellSpec{}, cells...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	back, err := Frontier(rev, results)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2, j1, j2 bytes.Buffer
	if err := WriteCSV(&b1, fwd); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b2, back); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&j1, fwd); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&j2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) || !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("export bytes depend on cell input order")
	}
}

// Cell keys contain commas; the CSV export must quote them so the
// rows keep their seven columns.
func TestWriteCSVQuotesKeys(t *testing.T) {
	cells, results := paretoFixture()
	points, err := Frontier(cells, results)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], `"`) {
		t.Fatalf("comma-bearing key not quoted: %s", lines[1])
	}
}
