package dse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dice/internal/serve"
)

func testResult(key string, energy float64) serve.CellResult {
	return serve.CellResult{
		Key:      key,
		Workload: "gcc",
		IPC:      []float64{0.5, 0.25},
		Cycles:   1000,
		Energy:   energy,
		EDP:      energy * 2,
	}
}

// Appended cells replay intact across a close/reopen, duplicates
// first-wins.
func TestResultLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.results")
	l, rep, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 0 || len(rep.Results) != 0 {
		t.Fatalf("fresh log replayed %+v", rep)
	}
	for i, key := range []string{"w=a", "w=b", "w=a"} { // w=a delivered twice
		if err := l.Append(testResult(key, float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep2, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep2.Cells != 3 || len(rep2.Results) != 2 || rep2.TruncatedBytes != 0 {
		t.Fatalf("replay = %d lines, %d cells, %d truncated", rep2.Cells, len(rep2.Results), rep2.TruncatedBytes)
	}
	if rep2.Results["w=a"].Energy != 1 {
		t.Fatalf("duplicate delivery did not replay first-wins: %+v", rep2.Results["w=a"])
	}
}

// The torn-tail contract, mirroring the daemon journal's: a log cut
// mid-line (SIGKILL during an append) replays its valid prefix,
// truncates the torn bytes, and appends cleanly afterwards.
func TestResultLogTornTailTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.results")
	l, _, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"w=a", "w=b"} {
		if err := l.Append(testResult(key, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-record: a valid prefix plus half an append.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{}, whole...)
	torn = append(torn, []byte("deadbeef {\"key\":\"w=c\"")...) // no newline, bogus CRC
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.TruncatedBytes == 0 {
		t.Fatalf("torn replay: %d cells, %d truncated bytes", len(rep.Results), rep.TruncatedBytes)
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(len(whole)) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", fi.Size(), len(whole))
	}
	// Appending after truncation lands on a clean boundary.
	if err := l2.Append(testResult("w=c", 3)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep3, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Results) != 3 || rep3.TruncatedBytes != 0 {
		t.Fatalf("post-truncation replay: %d cells, %d truncated", len(rep3.Results), rep3.TruncatedBytes)
	}
}

// A corrupted byte mid-file cuts replay at the corruption (longest
// valid prefix), never poisons earlier records.
func TestResultLogCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.results")
	l, _, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"w=a", "w=b", "w=c"} {
		if err := l.Append(testResult(key, 1)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip one payload byte of the second record.
	mut := []byte(lines[1])
	mut[len(mut)/2] ^= 0xff
	corrupted := lines[0] + string(mut) + lines[2]
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results["w=a"].Key != "w=a" {
		t.Fatalf("corrupt-middle replay kept %d cells, want just the prefix", len(rep.Results))
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncation")
	}
}
