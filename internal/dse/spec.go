// Package dse is the design-space-exploration engine: it parses a
// declarative sweep spec into configuration axes, expands the axes
// into a deduplicated matrix of simulation cells, executes the matrix
// either in-process (through the experiment runner's memoizing pool)
// or sharded across dicebenchd daemons, checkpoints every completed
// cell to a CRC-32C results log so an interrupted sweep resumes
// without re-running, and post-processes the results into per-workload
// Pareto frontiers over speedup, energy, EDP and fault resilience.
//
// The invariant the whole package is built around: a cell's canonical
// key (serve.CellSpec.Key) is its identity everywhere — matrix dedup,
// the results log, runner memoization and daemon batch jobs all agree
// on what "the same cell" means — and every execution path derives a
// cell's metrics through the one shared serve.CellResultFrom, so
// frontier exports are byte-identical at any worker count and whether
// cells ran locally or on daemons. See SWEEPS.md for the spec grammar
// and DESIGN.md §14 for the architecture.
package dse

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dice/internal/dcache"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// DefaultRefs is the per-core reference budget a spec gets when it
// does not set one. Every expanded cell carries the resolved value
// explicitly, so cell keys never depend on a daemon's local default.
const DefaultRefs = 2000

// Spec is a parsed sweep: one or more values per configuration axis,
// plus the scalars that apply to every cell. Absent axes hold their
// single zero value, so the expanded matrix is always the full cross
// product of what the spec declares.
type Spec struct {
	// Name labels the sweep ("" = unnamed); exports echo it.
	Name string
	// Refs is the per-core reference budget stamped into every cell.
	Refs int
	// Workloads is the expanded workload axis (suite keywords already
	// resolved to names, deduplicated first-wins). Required.
	Workloads []string
	// Policies is the L4 design axis (base|tsi|nsi|bai|dice|scc).
	Policies []string
	// Orgs is the tag-organization axis (alloy|knl).
	Orgs []string
	// Thresholds is the DICE BAI-insertion threshold axis, in bytes.
	Thresholds []int
	// Compress is the compression-algorithm axis (hybrid|fpc|bdi).
	Compress []string
	// BERs is the injected raw bit-error-rate axis.
	BERs []float64
	// FaultSeeds is the deterministic fault-stream seed axis.
	FaultSeeds []uint64
	// FaultPolicies is the fault-recovery-policy axis (none|ecc|ecc+quarantine).
	FaultPolicies []string
	// Capacities is the L4 capacity-multiplier axis.
	Capacities []int
	// BWs is the L4 bandwidth-multiplier axis.
	BWs []int
	// HalfLats is the L4 timing axis (false = full latency, true = half).
	HalfLats []bool
	// Prefetches is the L3 prefetch-mode axis (none|nextline|wide128).
	Prefetches []string
	// MLPs is the per-core outstanding-reference-window axis.
	MLPs []int
	// Scales is the system scale-shift axis (0 = default 10).
	Scales []uint
}

// suites maps the workload-axis suite keywords to their catalogs.
var suites = map[string]func() []workloads.Workload{
	"rate":    workloads.Rate16,
	"mix":     workloads.Mixes,
	"gap":     workloads.GAP6,
	"all26":   workloads.All26,
	"lowmpki": workloads.LowMPKI13,
}

// ParseFile parses the sweep spec at path.
func ParseFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("dse: %s: %w", path, err)
	}
	return s, nil
}

// Parse reads a sweep spec: one "key = values" assignment per line,
// values separated by commas and/or spaces, '#' starting a comment.
// Scalars (name, refs) take exactly one value; every other key is an
// axis and takes one or more. Assigning a key twice, assigning no
// values, or naming an unknown key or value is an error citing the
// line number. See SWEEPS.md for the grammar and axis semantics.
func Parse(r io.Reader) (*Spec, error) {
	s := &Spec{Refs: DefaultRefs}
	seen := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, rest, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: want \"key = values\", got %q", lineno, line)
		}
		key = strings.TrimSpace(key)
		vals := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("line %d: %q already assigned on line %d", lineno, key, prev)
		}
		seen[key] = lineno
		if len(vals) == 0 {
			return nil, fmt.Errorf("line %d: %q lists no values", lineno, key)
		}
		if err := s.assign(key, vals); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("spec declares no workload axis (required)")
	}
	return s, nil
}

// assign folds one parsed assignment into the spec, validating every
// value against the vocabulary its axis accepts.
func (s *Spec) assign(key string, vals []string) error {
	one := func() (string, error) {
		if len(vals) != 1 {
			return "", fmt.Errorf("%q takes one value, got %d", key, len(vals))
		}
		return vals[0], nil
	}
	switch key {
	case "name":
		v, err := one()
		if err != nil {
			return err
		}
		s.Name = v
		return nil
	case "refs":
		v, err := one()
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("refs: want a positive integer, got %q", v)
		}
		s.Refs = n
		return nil
	case "workload":
		return s.assignWorkloads(vals)
	case "policy":
		return assignEnum(&s.Policies, key, vals, func(v string) error {
			_, err := dcache.ParsePolicy(v)
			return err
		})
	case "org":
		return assignEnum(&s.Orgs, key, vals, func(v string) error {
			_, err := dcache.ParseOrg(v)
			return err
		})
	case "threshold":
		return assignInts(&s.Thresholds, key, vals, 0)
	case "compress":
		return assignEnum(&s.Compress, key, vals, func(v string) error {
			switch v {
			case "hybrid", "fpc", "bdi":
				return nil
			}
			return fmt.Errorf("unknown compress %q (want hybrid, fpc or bdi)", v)
		})
	case "ber":
		for _, v := range vals {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("ber: want a rate in [0,1], got %q", v)
			}
			s.BERs = append(s.BERs, f)
		}
		return nil
	case "fault-seed":
		for _, v := range vals {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("fault-seed: want an unsigned integer, got %q", v)
			}
			s.FaultSeeds = append(s.FaultSeeds, n)
		}
		return nil
	case "fault-policy":
		return assignEnum(&s.FaultPolicies, key, vals, func(v string) error {
			return (sim.Config{FaultBER: 1e-9, FaultPolicy: v}).Validate()
		})
	case "capacity":
		return assignInts(&s.Capacities, key, vals, 1)
	case "bw":
		return assignInts(&s.BWs, key, vals, 1)
	case "latency":
		for _, v := range vals {
			switch v {
			case "full":
				s.HalfLats = append(s.HalfLats, false)
			case "half":
				s.HalfLats = append(s.HalfLats, true)
			default:
				return fmt.Errorf("latency: want full or half, got %q", v)
			}
		}
		return nil
	case "prefetch":
		return assignEnum(&s.Prefetches, key, vals, func(v string) error {
			_, err := sim.ParsePrefetchMode(v)
			return err
		})
	case "mlp":
		return assignInts(&s.MLPs, key, vals, 1)
	case "scale":
		vals, err := expandRanges(key, vals)
		if err != nil {
			return err
		}
		for _, v := range vals {
			n, err := strconv.ParseUint(v, 10, 8)
			if err != nil {
				return fmt.Errorf("scale: want a small unsigned integer, got %q", v)
			}
			s.Scales = append(s.Scales, uint(n))
		}
		return nil
	default:
		return fmt.Errorf("unknown key %q", key)
	}
}

// assignWorkloads resolves the workload axis: each value is a suite
// keyword (rate, mix, gap, all26, lowmpki) or a cataloged workload
// name; duplicates collapse first-wins so suite overlaps do not
// inflate the matrix.
func (s *Spec) assignWorkloads(vals []string) error {
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			s.Workloads = append(s.Workloads, name)
		}
	}
	for _, v := range vals {
		if suite, ok := suites[v]; ok {
			for _, w := range suite() {
				add(w.Name)
			}
			continue
		}
		if _, err := workloads.ByName(v); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		add(v)
	}
	return nil
}

// assignEnum appends string axis values after validating each.
func assignEnum(dst *[]string, key string, vals []string, check func(string) error) error {
	for _, v := range vals {
		if err := check(v); err != nil {
			return fmt.Errorf("%s: %w", key, err)
		}
		*dst = append(*dst, v)
	}
	return nil
}

// assignInts appends integer axis values — enumerated or lo..hi
// ranges — each at least min.
func assignInts(dst *[]int, key string, vals []string, min int) error {
	vals, err := expandRanges(key, vals)
	if err != nil {
		return err
	}
	for _, v := range vals {
		n, err := strconv.Atoi(v)
		if err != nil || n < min {
			return fmt.Errorf("%s: want an integer >= %d, got %q", key, min, v)
		}
		*dst = append(*dst, n)
	}
	return nil
}

// maxRangeValues bounds what one lo..hi range may expand to; a typo
// like "0..1000000" should be an error, not a million-cell axis.
const maxRangeValues = 4096

// expandRanges rewrites numeric range tokens on an integer axis into
// the values they enumerate: "lo..hi" denotes every integer from lo
// to hi inclusive, and "lo..hi step N" strides by N (the last value
// is the largest lo+k*N <= hi). Ranges expand before validation, so
// they are pure spec-file shorthand — a spec written with a range and
// one written with the enumerated values produce identical axes and
// therefore identical canonical cell keys (memoization, results-log
// dedup and -resume are unaffected). Non-range tokens pass through
// untouched; "step" is only meaningful directly after a range.
func expandRanges(key string, vals []string) ([]string, error) {
	out := make([]string, 0, len(vals))
	for i := 0; i < len(vals); i++ {
		v := vals[i]
		if v == "step" {
			return nil, fmt.Errorf("%s: \"step\" must directly follow a lo..hi range", key)
		}
		if !strings.Contains(v, "..") {
			out = append(out, v)
			continue
		}
		loStr, hiStr, _ := strings.Cut(v, "..")
		lo, loErr := strconv.Atoi(loStr)
		hi, hiErr := strconv.Atoi(hiStr)
		if loErr != nil || hiErr != nil {
			return nil, fmt.Errorf("%s: want lo..hi with integer bounds, got %q", key, v)
		}
		if lo > hi {
			return nil, fmt.Errorf("%s: range %q is empty (lo > hi)", key, v)
		}
		step := 1
		if i+1 < len(vals) && vals[i+1] == "step" {
			if i+2 >= len(vals) {
				return nil, fmt.Errorf("%s: range %q: \"step\" needs a value", key, v)
			}
			n, err := strconv.Atoi(vals[i+2])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%s: range %q: step wants a positive integer, got %q", key, v, vals[i+2])
			}
			step = n
			i += 2
		}
		if (hi-lo)/step+1 > maxRangeValues {
			return nil, fmt.Errorf("%s: range %q expands to more than %d values", key, v, maxRangeValues)
		}
		for n := lo; n <= hi; n += step {
			out = append(out, strconv.Itoa(n))
		}
	}
	return out, nil
}
