package dse

import (
	"encoding/json"
	"fmt"

	"dice/internal/commitlog"
	"dice/internal/serve"
)

// The results log is the sweep's checkpoint: one completed cell per
// line, appended the moment the cell finishes, in the same
// crash-tolerant format as the daemon journal — "crc8hex space json",
// CRC-32C over the payload. Durability rides internal/commitlog's
// group commit: concurrent shard pollers enqueue cells and share one
// write+fsync per batch, and an acknowledged append has still always
// been synced. Replay accepts the longest valid prefix and truncates
// the rest, so a sweep killed mid-append (or a daemon shard that died
// after delivering half a batch) leaves a log that -resume can trust:
// every replayed cell ran to completion, and every missing cell
// re-runs. Duplicate keys — possible when a retried batch re-delivers
// cells — replay first-wins; determinism makes the duplicates
// byte-identical anyway.

// ResultLog is the append handle for a sweep's results log, over the
// shared commit log. Safe for concurrent use.
type ResultLog struct {
	log *commitlog.Log
}

// LogReplay is what an existing results log parses back into.
type LogReplay struct {
	// Results holds the replayed cells keyed by canonical cell key,
	// first occurrence winning.
	Results map[string]serve.CellResult
	// Cells counts valid lines replayed (duplicates included).
	Cells int
	// TruncatedBytes counts bytes dropped as a torn or corrupt tail.
	TruncatedBytes int64
}

// OpenResultLog opens the results log at path with default
// group-commit options; see OpenResultLogWith.
func OpenResultLog(path string) (*ResultLog, *LogReplay, error) {
	return OpenResultLogWith(path, commitlog.Options{})
}

// OpenResultLogWith opens (creating if absent) the results log at
// path, replays its valid prefix, truncates any torn tail, and
// returns the handle positioned for appending plus the replayed
// results. opt carries the group-commit tunables (dicesweep's
// -log-linger / -log-batch-bytes flags).
func OpenResultLogWith(path string, opt commitlog.Options) (*ResultLog, *LogReplay, error) {
	rep := &LogReplay{Results: map[string]serve.CellResult{}}
	l, crep, err := commitlog.Open(path, opt, func(payload []byte) bool {
		var res serve.CellResult
		if err := json.Unmarshal(payload, &res); err != nil || res.Key == "" {
			return false
		}
		rep.Cells++
		if _, dup := rep.Results[res.Key]; !dup {
			rep.Results[res.Key] = res
		}
		return true
	})
	if err != nil {
		return nil, nil, fmt.Errorf("dse: results log: %w", err)
	}
	rep.TruncatedBytes = crep.TruncatedBytes
	return &ResultLog{log: l}, rep, nil
}

// Append checkpoints one completed cell, returning once the sync
// covering it has succeeded — batched with whatever other cells are
// in flight. An acknowledged append survives power loss. A nil log
// (dry runs) is a no-op.
func (l *ResultLog) Append(res serve.CellResult) error {
	if l == nil {
		return nil
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dse: results log: %w", err)
	}
	if err := l.log.Append(payload); err != nil {
		return fmt.Errorf("dse: results log: %w", err)
	}
	return nil
}

// Stats snapshots the log's group-commit counters; nil for a nil log.
func (l *ResultLog) Stats() *commitlog.Stats {
	if l == nil {
		return nil
	}
	st := l.log.Stats()
	return &st
}

// Close drains pending appends, syncs, and closes the log file,
// reporting both the sync and close outcomes (errors.Join). A nil log
// is a no-op.
func (l *ResultLog) Close() error {
	if l == nil {
		return nil
	}
	if err := l.log.Close(); err != nil {
		return fmt.Errorf("dse: results log: %w", err)
	}
	return nil
}
