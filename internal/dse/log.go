package dse

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"dice/internal/serve"
)

// The results log is the sweep's checkpoint: one completed cell per
// line, appended the moment the cell finishes, in the same
// crash-tolerant format as the daemon journal — "crc8hex space json",
// CRC-32C over the payload, fsync per append. Replay accepts the
// longest valid prefix and truncates the rest, so a sweep killed
// mid-append (or a daemon shard that died after delivering half a
// batch) leaves a log that -resume can trust: every replayed cell ran
// to completion, and every missing cell re-runs. Duplicate keys —
// possible when a retried batch re-delivers cells — replay first-wins;
// determinism makes the duplicates byte-identical anyway.

// logCRC is the Castagnoli table shared by every results-log line.
var logCRC = crc32.MakeTable(crc32.Castagnoli)

// ResultLog is the append handle for a sweep's results log. Safe for
// concurrent use: each append is one write + fsync under the lock.
type ResultLog struct {
	mu sync.Mutex
	f  *os.File
}

// LogReplay is what an existing results log parses back into.
type LogReplay struct {
	// Results holds the replayed cells keyed by canonical cell key,
	// first occurrence winning.
	Results map[string]serve.CellResult
	// Cells counts valid lines replayed (duplicates included).
	Cells int
	// TruncatedBytes counts bytes dropped as a torn or corrupt tail.
	TruncatedBytes int64
}

// OpenResultLog opens (creating if absent) the results log at path,
// replays its valid prefix, truncates any torn tail, and returns the
// handle positioned for appending plus the replayed results.
func OpenResultLog(path string) (*ResultLog, *LogReplay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dse: results log: %w", err)
	}
	rep, validLen, err := replayResults(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validLen {
		rep.TruncatedBytes = fi.Size() - validLen
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dse: results log: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dse: results log: %w", err)
	}
	return &ResultLog{f: f}, rep, nil
}

// replayResults scans the log from the start, returning the replayed
// results and the byte length of the valid prefix. Scanning stops —
// without error — at the first line that is torn (no trailing
// newline), malformed, or CRC-mismatched.
func replayResults(f *os.File) (*LogReplay, int64, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, 0, fmt.Errorf("dse: results log: %w", err)
	}
	rep := &LogReplay{Results: map[string]serve.CellResult{}}
	var validLen int64
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				break // a partial trailing line is a torn tail — drop it
			}
			return nil, 0, fmt.Errorf("dse: results log: %w", err)
		}
		res, ok := parseResultLine(line[:len(line)-1])
		if !ok {
			break
		}
		validLen += int64(len(line))
		rep.Cells++
		if _, dup := rep.Results[res.Key]; !dup {
			rep.Results[res.Key] = res
		}
	}
	return rep, validLen, nil
}

// parseResultLine validates one "crc8hex space json" line.
func parseResultLine(line []byte) (serve.CellResult, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return serve.CellResult{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return serve.CellResult{}, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, logCRC) != want {
		return serve.CellResult{}, false
	}
	var res serve.CellResult
	if err := json.Unmarshal(payload, &res); err != nil || res.Key == "" {
		return serve.CellResult{}, false
	}
	return res, true
}

// Append checkpoints one completed cell: marshal, CRC, write, fsync.
// An acknowledged append survives power loss. A nil log (dry runs)
// is a no-op.
func (l *ResultLog) Append(res serve.CellResult) error {
	if l == nil {
		return nil
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("dse: results log: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.Checksum(payload, logCRC), payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.WriteString(line); err != nil {
		return fmt.Errorf("dse: results log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("dse: results log: %w", err)
	}
	return nil
}

// Close syncs and closes the log file. A nil log is a no-op.
func (l *ResultLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("dse: results log: %w", err)
	}
	return l.f.Close()
}
