package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dice/internal/obs"
	"dice/internal/serve"
)

// The streaming invariant: consuming partial results over the job
// stream produces frontier exports byte-identical to the pre-streaming
// poll-to-terminal path, at both the serial and parallel schedules.
func TestFrontierByteEqualStreamVsPollOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round trip skipped in -short mode")
	}
	cells := smokeCells(t)
	d, _, err := serve.New(serve.Config{
		JournalPath: filepath.Join(t.TempDir(), "d.journal"),
		DefaultRefs: 999_999,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	}()
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{
		Daemons: []string{"http://" + addr.String()},
		Batch:   3,
		Poll:    5 * time.Millisecond,
	}
	for _, workers := range []int{1, 8} {
		stream, poll := base, base
		stream.Workers, poll.Workers = workers, workers
		poll.PollOnly = true
		sCSV, sJSON := exportBytes(t, cells, stream)
		pCSV, pJSON := exportBytes(t, cells, poll)
		if !bytes.Equal(sCSV, pCSV) {
			t.Fatalf("workers=%d: CSV diverges between stream and poll paths:\n--- stream ---\n%s--- poll ---\n%s", workers, sCSV, pCSV)
		}
		if !bytes.Equal(sJSON, pJSON) {
			t.Fatalf("workers=%d: JSON diverges between stream and poll paths", workers)
		}
	}
}

// Epoch snapshots flow from the simulations to the sink over the job
// stream, tagged with the cell's memoization key — and the same wiring
// works in-process.
func TestEpochSinkReceivesSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round trip skipped in -short mode")
	}
	cells := smokeCells(t)[:2]
	keys := make(map[string]bool, len(cells))
	for _, cs := range cells {
		keys[cs.Key()] = true
	}
	run := func(t *testing.T, opt Options) map[string]int {
		var mu sync.Mutex
		epochs := map[string]int{}
		opt.MetricsEpoch = 500
		opt.EpochSink = func(key string, s obs.Snapshot) {
			mu.Lock()
			defer mu.Unlock()
			if s.Cycles == 0 {
				t.Errorf("epoch snapshot for %s spans zero cycles", key)
			}
			epochs[key]++
		}
		rlog, rep, err := OpenResultLog(filepath.Join(t.TempDir(), "sweep.results"))
		if err != nil {
			t.Fatal(err)
		}
		defer rlog.Close()
		if _, err := Run(context.Background(), cells, rlog, rep.Results, opt); err != nil {
			t.Fatal(err)
		}
		return epochs
	}

	t.Run("local", func(t *testing.T) {
		epochs := run(t, Options{Workers: 2})
		for key := range keys {
			if epochs[key] == 0 {
				t.Errorf("no epochs for cell %s", key)
			}
		}
	})
	t.Run("daemon", func(t *testing.T) {
		d, _, err := serve.New(serve.Config{
			JournalPath: filepath.Join(t.TempDir(), "d.journal"),
			DefaultRefs: 999_999,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			d.Shutdown(ctx)
		}()
		addr, err := d.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		epochs := run(t, Options{Workers: 2, Daemons: []string{"http://" + addr.String()}})
		for key := range keys {
			if epochs[key] == 0 {
				t.Errorf("no epochs streamed for cell %s", key)
			}
		}
	})
}

// restartingDaemon fakes the wire protocol of a daemon that is
// SIGKILLed mid-stream and restarted: the first stream connection
// delivers every cell under one generation and cuts before the done
// event; the reconnect finds a new generation that re-delivers
// everything and finishes. The sweep must checkpoint each cell exactly
// once despite seeing it twice.
type restartingDaemon struct {
	t       *testing.T
	results []serve.CellResult

	mu      sync.Mutex
	streams int
}

func (f *restartingDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/jobs":
		var spec serve.JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "j1", State: serve.StateQueued, Spec: spec})
	case r.Method == http.MethodGet && r.URL.Path == "/jobs/j1/stream":
		f.mu.Lock()
		f.streams++
		n := f.streams
		f.mu.Unlock()
		gen := fmt.Sprintf("g%d", n)
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i, res := range f.results {
			cr := res
			line, err := serve.EncodeStreamEvent(serve.StreamEvent{
				Kind: serve.StreamCell, Gen: gen, Offset: i, Cell: &cr,
			})
			if err != nil {
				f.t.Error(err)
				return
			}
			w.Write(line)
		}
		if n == 1 {
			return // SIGKILL: the connection dies before the done event
		}
		line, err := serve.EncodeStreamEvent(serve.StreamEvent{
			Kind: serve.StreamDone, Gen: gen, Offset: len(f.results), State: serve.StateDone,
		})
		if err != nil {
			f.t.Error(err)
			return
		}
		w.Write(line)
	default:
		http.Error(w, `{"error":"unexpected request"}`, http.StatusNotFound)
	}
}

// Satellite regression: a daemon killed mid-stream and restarted
// re-delivers already-streamed cells under a new generation; the sweep
// must not replay them into the results log as duplicates.
func TestRestartRedeliveryNoDuplicateCells(t *testing.T) {
	cells := smokeCells(t)
	fake := &restartingDaemon{t: t}
	for i, cs := range cells {
		fake.results = append(fake.results, serve.CellResult{
			Key:    cs.Key(),
			Cycles: uint64(1000 + i), // distinct payloads so a mixed-up log would show
			Energy: float64(i),
		})
	}
	ts := httptest.NewServer(fake)
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "sweep.results")
	rlog, rep, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), cells, rlog, rep.Results, Options{
		Daemons: []string{ts.URL},
		Poll:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rlog.Close()
	if fake.streams < 2 {
		t.Fatalf("stream reconnected %d times, want >= 2 (restart not exercised)", fake.streams)
	}
	if len(results) != len(cells) {
		t.Fatalf("run returned %d results, want %d", len(results), len(cells))
	}

	// The log must hold each cell exactly once — line count equals the
	// cell count, and the replay agrees with the first delivery.
	_, rep2, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cells != len(cells) {
		t.Fatalf("results log holds %d lines for %d cells (duplicates replayed)", rep2.Cells, len(cells))
	}
	for _, want := range fake.results {
		got, ok := rep2.Results[want.Key]
		if !ok {
			t.Fatalf("cell %s missing from log replay", want.Key)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cell %s replayed as %+v, want %+v", want.Key, got, want)
		}
	}
}
