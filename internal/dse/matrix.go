package dse

import (
	"fmt"

	"dice/internal/serve"
)

// MaxCells bounds the expanded matrix. A product past this is almost
// always a spec mistake (axes multiply fast), and every cell costs a
// simulation — erroring at expansion keeps the mistake cheap.
const MaxCells = 1 << 20

// Expand crosses every axis into the cell matrix: nested loops in a
// fixed canonical order (workload outermost, then policy, org,
// threshold, compress, ber, fault-seed, fault-policy, capacity, bw,
// latency, prefetch, mlp, scale — the order the axes are documented
// in, independent of spec line order), deduplicated by canonical key,
// then augmented with every distinct baseline cell the Pareto
// normalization needs that the spec did not already request. The
// result's order is deterministic, so two expansions of the same spec
// are identical element-for-element.
func (s *Spec) Expand() ([]serve.CellSpec, error) {
	if s.Refs <= 0 {
		return nil, fmt.Errorf("dse: spec refs must be positive, got %d", s.Refs)
	}
	// An absent axis contributes its single zero value, keeping the
	// cross product total and the loop structure uniform.
	policies := orDefault(s.Policies, "")
	orgs := orDefault(s.Orgs, "")
	thresholds := orDefault(s.Thresholds, 0)
	compress := orDefault(s.Compress, "")
	bers := orDefault(s.BERs, 0)
	seeds := orDefault(s.FaultSeeds, 0)
	fpols := orDefault(s.FaultPolicies, "")
	caps := orDefault(s.Capacities, 0)
	bws := orDefault(s.BWs, 0)
	lats := orDefault(s.HalfLats, false)
	pfs := orDefault(s.Prefetches, "")
	mlps := orDefault(s.MLPs, 0)
	scales := orDefault(s.Scales, 0)

	var cells []serve.CellSpec
	seen := map[string]bool{}
	add := func(c serve.CellSpec) error {
		key := c.Key()
		if seen[key] {
			return nil
		}
		if len(cells) >= MaxCells {
			return fmt.Errorf("dse: sweep expands past %d cells; split the spec", MaxCells)
		}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("dse: cell %s: %w", key, err)
		}
		seen[key] = true
		cells = append(cells, c)
		return nil
	}
	for _, w := range s.Workloads {
		for _, pol := range policies {
			for _, org := range orgs {
				for _, th := range thresholds {
					for _, alg := range compress {
						for _, ber := range bers {
							for _, seed := range seeds {
								for _, fp := range fpols {
									for _, capm := range caps {
										for _, bw := range bws {
											for _, half := range lats {
												for _, pf := range pfs {
													for _, mlp := range mlps {
														for _, sc := range scales {
															err := add(serve.CellSpec{
																Workload:    w,
																Policy:      pol,
																Org:         org,
																Threshold:   th,
																Compress:    alg,
																BER:         ber,
																FaultSeed:   seed,
																FaultPolicy: fp,
																Capacity:    capm,
																BW:          bw,
																HalfLat:     half,
																Prefetch:    pf,
																MLP:         mlp,
																Refs:        s.Refs,
																Scale:       sc,
															})
															if err != nil {
																return nil, err
															}
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	// Baseline augmentation: appended after the requested cells, in
	// first-need order, so the requested matrix keeps its positions.
	for _, c := range cells {
		if len(cells) >= MaxCells {
			break
		}
		b := c.Baseline()
		if !seen[b.Key()] {
			if err := add(b); err != nil {
				return nil, err
			}
		}
	}
	return cells, nil
}

// orDefault returns vals, or a one-element slice of def when the axis
// was not declared.
func orDefault[T any](vals []T, def T) []T {
	if len(vals) == 0 {
		return []T{def}
	}
	return vals
}
