package dse

import (
	"strings"
	"testing"
)

// Parser rejection paths, table-driven: each bad spec must fail with
// an error naming the offending line or rule, never expand to a
// surprising matrix.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"no workload axis", "policy = dice\n", "no workload axis"},
		{"unknown key", "workload = gcc\nsets = 4\n", "unknown key"},
		{"duplicate key", "workload = gcc\npolicy = dice\npolicy = base\n", "already assigned on line 2"},
		{"empty values", "workload = gcc\npolicy =\n", "lists no values"},
		{"bad line", "workload = gcc\njust some words\n", "want \"key = values\""},
		{"unknown workload", "workload = nosuch\n", "nosuch"},
		{"unknown policy", "workload = gcc\npolicy = lru\n", "unknown policy"},
		{"unknown org", "workload = gcc\norg = sectored\n", "unknown org"},
		{"unknown compress", "workload = gcc\ncompress = lz4\n", "unknown compress"},
		{"ber out of range", "workload = gcc\nber = 2\n", "rate in [0,1]"},
		{"ber not a number", "workload = gcc\nber = lots\n", "rate in [0,1]"},
		{"bad latency", "workload = gcc\nlatency = quarter\n", "full or half"},
		{"bad prefetch", "workload = gcc\nprefetch = stride\n", "prefetch"},
		{"bad fault policy", "workload = gcc\nfault-policy = parity\n", "policy"},
		{"zero refs", "workload = gcc\nrefs = 0\n", "positive integer"},
		{"multi-value refs", "workload = gcc\nrefs = 100 200\n", "takes one value"},
		{"negative threshold", "workload = gcc\nthreshold = -1\n", "integer >= 0"},
		{"zero capacity", "workload = gcc\ncapacity = 0\n", "integer >= 1"},
		{"range bad bounds", "workload = gcc\nthreshold = 24..x\n", "integer bounds"},
		{"range empty", "workload = gcc\nthreshold = 48..24\n", "lo > hi"},
		{"range zero step", "workload = gcc\nthreshold = 24..48 step 0\n", "positive integer"},
		{"range missing step value", "workload = gcc\nthreshold = 24..48 step\n", "needs a value"},
		{"stray step", "workload = gcc\nmlp = 4 step 2\n", "must directly follow"},
		{"range too wide", "workload = gcc\nthreshold = 0..1000000\n", "more than"},
		{"range below axis min", "workload = gcc\ncapacity = 0..4\n", "integer >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.spec))
			if err == nil {
				t.Fatalf("spec accepted:\n%s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// Values split on commas and/or whitespace, comments strip to end of
// line, and scalars land in their fields.
func TestParseGrammar(t *testing.T) {
	spec, err := Parse(strings.NewReader(`
# a comment line
name = smoke
refs = 150            # trailing comment
workload = gcc,mcf libq   # mixed separators
policy = base dice
ber = 0, 1e-5
latency = full half
`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smoke" || spec.Refs != 150 {
		t.Fatalf("scalars: name=%q refs=%d", spec.Name, spec.Refs)
	}
	if got := strings.Join(spec.Workloads, " "); got != "gcc mcf libq" {
		t.Fatalf("workloads = %q", got)
	}
	if len(spec.Policies) != 2 || len(spec.BERs) != 2 || len(spec.HalfLats) != 2 {
		t.Fatalf("axes: %+v", spec)
	}
}

// Suite keywords expand to their catalogs, deduplicated first-wins
// against explicitly named workloads.
func TestParseSuiteKeywords(t *testing.T) {
	spec, err := Parse(strings.NewReader("workload = pr_twi gap\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Workloads) != 6 {
		t.Fatalf("gap suite with one overlap expanded to %d workloads: %v",
			len(spec.Workloads), spec.Workloads)
	}
	if spec.Workloads[0] != "pr_twi" {
		t.Fatalf("explicit name lost its first-seen position: %v", spec.Workloads)
	}
}

// Golden range expansions: "lo..hi [step N]" is pure shorthand for
// the enumerated values, on every integer axis, mixable with plain
// values on the same line.
func TestParseRangeExpansion(t *testing.T) {
	spec, err := Parse(strings.NewReader(`
workload = gcc
threshold = 24..48 step 4
capacity = 1..3
bw = 2 4..6 16
mlp = 1..8 step 3
scale = 8..12 step 2
`))
	if err != nil {
		t.Fatal(err)
	}
	intsEq := func(name string, got []int, want ...int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s expanded to %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s expanded to %v, want %v", name, got, want)
			}
		}
	}
	intsEq("threshold", spec.Thresholds, 24, 28, 32, 36, 40, 44, 48)
	intsEq("capacity", spec.Capacities, 1, 2, 3)
	intsEq("bw", spec.BWs, 2, 4, 5, 6, 16)
	intsEq("mlp", spec.MLPs, 1, 4, 7) // last value is the largest lo+k*N <= hi
	if len(spec.Scales) != 3 || spec.Scales[0] != 8 || spec.Scales[2] != 12 {
		t.Fatalf("scale expanded to %v, want [8 10 12]", spec.Scales)
	}
}

// A range spec and its enumerated equivalent expand to identical
// cells — same canonical keys, so memoization, results-log dedup and
// -resume treat them as the same sweep.
func TestParseRangeKeysMatchEnumerated(t *testing.T) {
	ranged, err := Parse(strings.NewReader("workload = gcc\npolicy = dice\nthreshold = 24..48 step 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	listed, err := Parse(strings.NewReader("workload = gcc\npolicy = dice\nthreshold = 24 32 40 48\n"))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ranged.Expand()
	if err != nil {
		t.Fatal(err)
	}
	lc, err := listed.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(rc) != len(lc) {
		t.Fatalf("ranged expands to %d cells, enumerated to %d", len(rc), len(lc))
	}
	for i := range rc {
		if rc[i].Key() != lc[i].Key() {
			t.Fatalf("cell %d key diverges: %q vs %q", i, rc[i].Key(), lc[i].Key())
		}
	}
}

// A parsed spec defaults refs so keys are always explicit.
func TestParseDefaultRefs(t *testing.T) {
	spec, err := Parse(strings.NewReader("workload = gcc\n"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Refs != DefaultRefs {
		t.Fatalf("refs defaulted to %d, want %d", spec.Refs, DefaultRefs)
	}
}

// Expansion crosses the axes, deduplicates repeated values by
// canonical key, and auto-appends exactly the missing baselines.
func TestExpand(t *testing.T) {
	spec, err := Parse(strings.NewReader(`
refs = 150
workload = gcc mcf
policy = dice dice tsi    # repeated value must not inflate the matrix
ber = 0 1e-5
`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 distinct policies x 2 BERs = 8 requested cells,
	// plus one base-policy baseline per workload = 10.
	if len(cells) != 10 {
		t.Fatalf("expanded to %d cells, want 10", len(cells))
	}
	seen := map[string]bool{}
	baselines := 0
	for _, c := range cells {
		key := c.Key()
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
		if c.Refs != 150 {
			t.Fatalf("cell %s lost the spec's refs", key)
		}
		if c.IsBaseline() {
			baselines++
		}
	}
	if baselines != 2 {
		t.Fatalf("%d baseline cells, want 2", baselines)
	}
	for _, c := range cells {
		if !seen[c.Baseline().Key()] {
			t.Fatalf("cell %s has no baseline in the matrix", c.Key())
		}
	}

	// Expansion is deterministic element-for-element.
	again, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
}
