package dse

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"dice/internal/experiments"
	"dice/internal/obs"
	"dice/internal/serve"
	"dice/internal/serve/client"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// DefaultBatch is the cells-per-job batch size for daemon-sharded
// runs when Options.Batch is zero: big enough to amortize the
// submit/poll round trips, small enough that a shard death or per-job
// deadline loses little work (every delivered batch is already
// checkpointed cell-by-cell).
const DefaultBatch = 256

// Options configures one sweep execution.
type Options struct {
	// Workers bounds concurrent simulations (0 = one per CPU; 1 is the
	// serial reference schedule — results are byte-identical at every
	// setting).
	Workers int
	// Daemons lists dicebenchd base URLs to shard the sweep across.
	// Empty means in-process execution through the experiment runner.
	Daemons []string
	// Batch is the cells-per-job bound for daemon sharding (0 =
	// DefaultBatch; capped at serve.MaxCellsPerJob).
	Batch int
	// ShardDeadline is the per-job wall-clock deadline daemons enforce
	// (0 = none). A batch that blows it fails alone; its cells stay
	// pending for -resume.
	ShardDeadline time.Duration
	// Poll is the job-status poll interval for daemon sharding
	// (0 = 100ms). With streaming (the default) it is only the
	// fallback cadence; under PollOnly it is the primary mechanism.
	Poll time.Duration
	// PollOnly disables the streaming results path for daemon
	// sharding: jobs are polled to terminal state and their output
	// decoded in one piece, as before streaming existed. Frontier
	// exports are byte-identical either way — streaming changes when
	// cells checkpoint, not what they contain.
	PollOnly bool
	// MetricsEpoch, when nonzero, attaches an epoch-metrics recorder
	// (every MetricsEpoch simulated cycles) to each cell's simulation
	// and delivers every snapshot to EpochSink — over the job stream
	// for daemon sharding, straight from the runner for in-process
	// runs. Ignored when EpochSink is nil.
	MetricsEpoch uint64
	// EpochSink receives per-epoch metric snapshots as simulations
	// run, tagged with the simulation's memoization key. Called from
	// worker goroutines, possibly concurrently: must be safe for
	// concurrent use. Delivery is best-effort telemetry: a daemon
	// restart mid-batch may re-deliver or drop epochs (cells are the
	// exactly-once layer, epochs are not).
	EpochSink func(key string, s obs.Snapshot)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// logf emits one progress line when a sink is configured.
func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Run executes every cell not already in have, checkpointing each
// completed cell to rlog (nil = no checkpointing) and merging into the
// returned map, which starts as a copy of have. Execution is sharded
// across opt.Daemons when set, in-process otherwise; either way the
// result values are identical because both paths derive them through
// serve.CellResultFrom. On cancellation or shard failure Run returns
// the results it has alongside the error — everything completed is
// already in the log, so a re-invocation with -resume picks up where
// this left off.
func Run(ctx context.Context, cells []serve.CellSpec, rlog *ResultLog, have map[string]serve.CellResult, opt Options) (map[string]serve.CellResult, error) {
	results := make(map[string]serve.CellResult, len(cells))
	for k, v := range have {
		results[k] = v
	}
	var pending []serve.CellSpec
	for _, c := range cells {
		if _, done := results[c.Key()]; !done {
			pending = append(pending, c)
		}
	}
	opt.logf("sweep: %d cells, %d already logged, %d to run", len(cells), len(cells)-len(pending), len(pending))
	if len(pending) == 0 {
		return results, nil
	}
	var (
		mu  sync.Mutex
		err error
	)
	record := func(res serve.CellResult) error {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := results[res.Key]; dup {
			return nil // duplicate delivery (retried batch) — first wins
		}
		if aerr := rlog.Append(res); aerr != nil {
			return aerr
		}
		results[res.Key] = res
		return nil
	}
	if len(opt.Daemons) == 0 {
		err = runLocal(ctx, pending, record, opt)
	} else {
		err = runSharded(ctx, pending, record, opt)
	}
	return results, err
}

// runLocal executes pending cells in-process on a fresh memoizing
// runner, checkpointing each cell the moment it completes.
func runLocal(ctx context.Context, pending []serve.CellSpec, record func(serve.CellResult) error, opt Options) error {
	ecells := make([]experiments.Cell, len(pending))
	for i, cs := range pending {
		cfg, err := cs.Config(0) // expansion stamps Refs; 0 default unused
		if err != nil {
			return fmt.Errorf("dse: cell %s: %w", cs.Key(), err)
		}
		w, err := workloads.ByName(cs.Workload)
		if err != nil {
			return fmt.Errorf("dse: cell %s: %w", cs.Key(), err)
		}
		ecells[i] = experiments.Cell{Key: cs.Key(), Cfg: cfg, W: w}
	}
	r := experiments.NewRunner(0)
	r.Workers = opt.Workers
	if opt.MetricsEpoch > 0 && opt.EpochSink != nil {
		r.MetricsEpoch = opt.MetricsEpoch
		r.MetricsEmit = opt.EpochSink
	}
	var recErr error
	var recMu sync.Mutex
	err := r.ForEachCellCtx(ctx, ecells, func(i int, res sim.Result) {
		if rerr := record(serve.CellResultFrom(ecells[i].Key, res)); rerr != nil {
			recMu.Lock()
			if recErr == nil {
				recErr = rerr
			}
			recMu.Unlock()
		}
	})
	if recErr != nil {
		return recErr
	}
	return err
}

// runSharded executes pending cells across the configured daemons:
// the cells are chunked into batches, one worker goroutine per daemon
// pulls batches off a shared queue, and each batch becomes one job —
// submitted through the retrying client (429 backpressure and
// transient failures are absorbed there), awaited, decoded, and
// checkpointed cell-by-cell. A failed batch is recorded and the
// worker moves on, so one sick shard or one deadline-blown batch
// costs only its own cells; the returned error advises -resume.
func runSharded(ctx context.Context, pending []serve.CellSpec, record func(serve.CellResult) error, opt Options) error {
	batch := opt.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	if batch > serve.MaxCellsPerJob {
		batch = serve.MaxCellsPerJob
	}
	poll := opt.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	var batches [][]serve.CellSpec
	for lo := 0; lo < len(pending); lo += batch {
		hi := min(lo+batch, len(pending))
		batches = append(batches, pending[lo:hi])
	}
	opt.logf("sweep: sharding %d cells as %d batches across %d daemons", len(pending), len(batches), len(opt.Daemons))

	queue := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	for di, base := range opt.Daemons {
		wg.Add(1)
		go func(di int, base string) {
			defer wg.Done()
			c := client.New(base, int64(di+1))
			for bi := range queue {
				if err := runBatch(ctx, c, batches[bi], record, poll, opt); err != nil {
					fail(fmt.Errorf("dse: daemon %s batch %d: %w", base, bi, err))
				}
			}
		}(di, base)
	}
	for bi := range batches {
		if ctx.Err() != nil {
			break
		}
		queue <- bi
	}
	close(queue)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%w (completed cells are logged; re-run with -resume)", errors.Join(errs...))
	}
	return nil
}

// runBatch runs one batch as one daemon job and checkpoints its
// results. The default path streams: cells are recorded — and hit the
// results log — the moment the daemon emits them, long before the job
// is terminal, and epoch snapshots flow to the sink as they happen.
// Under PollOnly the batch is awaited to terminal state and decoded
// in one piece. Both paths checkpoint identical bytes per cell; only
// the checkpoint timing differs.
func runBatch(ctx context.Context, c *client.Client, cells []serve.CellSpec, record func(serve.CellResult) error, poll time.Duration, opt Options) error {
	spec := serve.JobSpec{
		Cells:      cells,
		Workers:    opt.Workers,
		DeadlineMS: opt.ShardDeadline.Milliseconds(),
	}
	if opt.EpochSink != nil {
		spec.MetricsEpoch = opt.MetricsEpoch
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if opt.PollOnly {
		return pollBatch(ctx, c, st.ID, cells, record, poll, opt)
	}

	// delivered dedups within this batch: a daemon restart mid-stream
	// mints a new generation and re-delivers the cells the old one
	// already sent (see serve's stream delivery contract). The sweep-
	// wide record closure dedups again across batches; both layers key
	// on the canonical cell key.
	delivered := make(map[string]bool, len(cells))
	final, err := c.Stream(ctx, st.ID, func(ev serve.StreamEvent) error {
		switch ev.Kind {
		case serve.StreamCell:
			if ev.Cell == nil || delivered[ev.Cell.Key] {
				return nil
			}
			delivered[ev.Cell.Key] = true
			return record(*ev.Cell)
		case serve.StreamEpoch:
			if opt.EpochSink != nil && ev.Epoch != nil {
				opt.EpochSink(ev.Epoch.Key, ev.Epoch.Snap)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("stream %s: %w", st.ID, err)
	}
	if final.State != serve.StateDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, final.State, final.Error)
	}
	for _, cs := range cells {
		if !delivered[cs.Key()] {
			return fmt.Errorf("job %s stream omitted cell %s", st.ID, cs.Key())
		}
	}
	opt.logf("sweep: batch of %d cells streamed from job %s", len(cells), st.ID)
	return nil
}

// pollBatch is the pre-streaming consumption path: await terminal
// state, decode the whole output, checkpoint.
func pollBatch(ctx context.Context, c *client.Client, id string, cells []serve.CellSpec, record func(serve.CellResult) error, poll time.Duration, opt Options) error {
	st, err := c.Wait(ctx, id, poll)
	if err != nil {
		return fmt.Errorf("wait %s: %w", id, err)
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	results, err := serve.DecodeCellResults(strings.NewReader(st.Output))
	if err != nil {
		return fmt.Errorf("job %s: %w", st.ID, err)
	}
	if len(results) != len(cells) {
		return fmt.Errorf("job %s delivered %d results for %d cells", st.ID, len(results), len(cells))
	}
	for _, res := range results {
		if err := record(res); err != nil {
			return err
		}
	}
	opt.logf("sweep: batch of %d cells done on job %s", len(cells), st.ID)
	return nil
}
