package dse

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dice/internal/serve"
)

// smokeSpec is a small three-axis sweep the engine tests share: 8
// requested cells + 2 baselines, all on cheap synthetic workloads.
const smokeSpec = `
name = engine-smoke
refs = 150
workload = gcc mcf
policy = dice tsi
ber = 0 1e-5
`

func smokeCells(t *testing.T) []serve.CellSpec {
	t.Helper()
	spec, err := Parse(strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 {
		t.Fatalf("smoke spec expanded to %d cells, want 10", len(cells))
	}
	return cells
}

// exportBytes runs the full pipeline — execute, frontier, export —
// and returns the CSV and JSON bytes.
func exportBytes(t *testing.T, cells []serve.CellSpec, opt Options) ([]byte, []byte) {
	t.Helper()
	rlog, rep, err := OpenResultLog(filepath.Join(t.TempDir(), "sweep.results"))
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	results, err := Run(context.Background(), cells, rlog, rep.Results, opt)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Frontier(cells, results)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, points); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsonBuf, points); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), jsonBuf.Bytes()
}

// The determinism bar, local half: frontier exports are byte-identical
// at workers 1 (the serial reference schedule) and workers 8.
func TestFrontierByteEqualWorkers1Vs8(t *testing.T) {
	cells := smokeCells(t)
	csv1, json1 := exportBytes(t, cells, Options{Workers: 1})
	csv8, json8 := exportBytes(t, cells, Options{Workers: 8})
	if !bytes.Equal(csv1, csv8) {
		t.Fatalf("CSV diverges between workers 1 and 8:\n--- w1 ---\n%s--- w8 ---\n%s", csv1, csv8)
	}
	if !bytes.Equal(json1, json8) {
		t.Fatal("JSON diverges between workers 1 and 8")
	}
}

// The determinism bar, sharded half: running the same matrix through
// a live dicebenchd daemon (in-process, real HTTP) produces the same
// frontier bytes as the local pool.
func TestFrontierByteEqualLocalVsDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon round trip skipped in -short mode")
	}
	cells := smokeCells(t)
	localCSV, localJSON := exportBytes(t, cells, Options{Workers: 2})

	d, _, err := serve.New(serve.Config{
		JournalPath: filepath.Join(t.TempDir(), "d.journal"),
		DefaultRefs: 999_999, // must be irrelevant: cells carry refs explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	}()
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	daemonCSV, daemonJSON := exportBytes(t, cells, Options{
		Workers: 2,
		Daemons: []string{"http://" + addr.String()},
		Batch:   3, // force several jobs, exercising batch chunking
		Poll:    5 * time.Millisecond,
	})
	if !bytes.Equal(localCSV, daemonCSV) {
		t.Fatalf("CSV diverges between local and daemon paths:\n--- local ---\n%s--- daemon ---\n%s", localCSV, daemonCSV)
	}
	if !bytes.Equal(localJSON, daemonJSON) {
		t.Fatal("JSON diverges between local and daemon paths")
	}
}

// Resume: cells already in the results log are not re-run — a second
// Run over a complete log executes nothing, and a partial log re-runs
// only the missing cells (counted via log line growth).
func TestResumeRunsOnlyMissingCells(t *testing.T) {
	cells := smokeCells(t)
	path := filepath.Join(t.TempDir(), "sweep.results")

	// First pass: run only the first 4 cells.
	rlog, rep, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cells[:4], rlog, rep.Results, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	rlog.Close()

	// Resume: the remaining 6 run, the logged 4 replay untouched.
	rlog2, rep2, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Results) != 4 {
		t.Fatalf("replay found %d cells, want 4", len(rep2.Results))
	}
	results, err := Run(context.Background(), cells, rlog2, rep2.Results, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rlog2.Close()
	if len(results) != len(cells) {
		t.Fatalf("resumed run has %d results, want %d", len(results), len(cells))
	}
	_, rep3, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Cells != len(cells) {
		t.Fatalf("log holds %d lines after resume, want %d (only missing cells appended)", rep3.Cells, len(cells))
	}

	// A third run over the complete log must execute nothing.
	rlog4, rep4, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	results4, err := Run(context.Background(), cells, rlog4, rep4.Results, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rlog4.Close()
	if len(results4) != len(cells) {
		t.Fatalf("no-op resume has %d results", len(results4))
	}
	_, rep5, err := OpenResultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep5.Cells != len(cells) {
		t.Fatalf("no-op resume appended lines: %d, want %d", rep5.Cells, len(cells))
	}

	// And the resumed results produce the same frontier bytes as an
	// uninterrupted run.
	points, err := Frontier(cells, results)
	if err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := WriteCSV(&resumed, points); err != nil {
		t.Fatal(err)
	}
	wholeCSV, _ := exportBytes(t, cells, Options{Workers: 2})
	if !bytes.Equal(resumed.Bytes(), wholeCSV) {
		t.Fatal("resumed frontier diverges from an uninterrupted run")
	}
}

// Cancellation mid-sweep keeps the completed prefix in the log and
// returns the context error, the contract -resume is built on.
func TestRunCancellationKeepsLog(t *testing.T) {
	cells := smokeCells(t)
	rlog, rep, err := OpenResultLog(filepath.Join(t.TempDir(), "sweep.results"))
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any cell starts
	results, err := Run(ctx, cells, rlog, rep.Results, Options{Workers: 1})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if len(results) == len(cells) {
		t.Fatal("cancelled run claims completion")
	}
}
