package cache

import (
	"math/rand/v2"
	"testing"
)

// table2Hierarchy builds a scaled-down L1/L2/L3 stack in the shape of the
// paper's Table 2 (32KB/256KB/1MB-per-core, here 1/8 scale for test
// speed).
func table2Hierarchy() *Hierarchy {
	return NewHierarchy(
		Config{SizeBytes: 4 << 10, Ways: 8, LineBytes: 64, HitLatency: 4},
		Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 12},
		Config{SizeBytes: 128 << 10, Ways: 16, LineBytes: 64, HitLatency: 30},
	)
}

func TestHierarchyMissThenHitAtL1(t *testing.T) {
	h := table2Hierarchy()
	r := h.Access(100, false)
	if r.HitLevel != -1 {
		t.Fatal("cold access must miss all levels")
	}
	if r.Latency != 4+12+30 {
		t.Fatalf("miss latency = %d, want full probe chain", r.Latency)
	}
	h.Fill(100, false)
	r2 := h.Access(100, false)
	if r2.HitLevel != 0 || r2.Latency != 4 {
		t.Fatalf("expected L1 hit at 4 cycles, got %+v", r2)
	}
}

func TestHierarchyInclusiveFillOnLowerHit(t *testing.T) {
	h := table2Hierarchy()
	h.Fill(7, false)
	// Push line 7 out of L1 only: fill conflicting lines.
	l1Sets := uint64(h.Level(0).Sets())
	for i := uint64(1); i <= 8; i++ {
		h.Fill(7+i*l1Sets, false)
	}
	if h.Level(0).Contains(7) {
		t.Fatal("line should have left L1")
	}
	r := h.Access(7, false)
	if r.HitLevel != 1 {
		t.Fatalf("expected L2 hit, got level %d", r.HitLevel)
	}
	if !h.Level(0).Contains(7) {
		t.Fatal("L2 hit must refill L1")
	}
}

func TestHierarchyDirtyWritebackCascades(t *testing.T) {
	h := NewHierarchy(
		Config{SizeBytes: 2 * 64, Ways: 1, LineBytes: 64, HitLatency: 1},
		Config{SizeBytes: 4 * 64, Ways: 1, LineBytes: 64, HitLatency: 2},
	)
	// Write line 0, then conflict it out of both tiny levels.
	h.Fill(0, true)
	var out []uint64
	for i := uint64(1); i < 9; i++ {
		out = append(out, h.Fill(i*2, false)...) // same L1 set as 0 (2 sets)
	}
	found := false
	for _, l := range out {
		if l == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty line 0 never surfaced from the last level: %v", out)
	}
}

func TestHierarchyLevelsAndString(t *testing.T) {
	h := table2Hierarchy()
	if h.Levels() != 3 {
		t.Fatal("levels")
	}
	h.Access(1, false)
	if s := h.String(); s == "" {
		t.Fatal("summary empty")
	}
}

func TestHierarchyNeedsLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty hierarchy accepted")
		}
	}()
	NewHierarchy()
}

func TestHierarchyFiltering(t *testing.T) {
	// A realistic reuse-heavy stream should be filtered strongly by L1/L2,
	// leaving the L3 with the misses — the structure the simulator's
	// L3-level traces assume.
	h := table2Hierarchy()
	rng := rand.New(rand.NewPCG(3, 4))
	hot := make([]uint64, 48)
	for i := range hot {
		hot[i] = uint64(rng.UintN(1 << 16))
	}
	for i := 0; i < 30000; i++ {
		var line uint64
		if rng.UintN(10) < 8 {
			line = hot[rng.IntN(len(hot))]
		} else {
			line = uint64(rng.UintN(1 << 16))
		}
		if r := h.Access(line, rng.UintN(5) == 0); r.HitLevel == -1 {
			h.Fill(line, false)
		}
	}
	l1 := h.Level(0).Stats()
	l3 := h.Level(2).Stats()
	if l1.HitRate() < 0.5 {
		t.Fatalf("L1 hit rate = %.2f, hot set should mostly hit", l1.HitRate())
	}
	if l3.Hits+l3.Misses >= l1.Hits+l1.Misses {
		t.Fatal("upper levels must filter traffic before L3")
	}
}
