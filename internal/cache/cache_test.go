package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Config{SizeBytes: 4 * 64 * 8, Ways: 4, LineBytes: 64, HitLatency: 10})
}

func TestValidate(t *testing.T) {
	if err := (Config{SizeBytes: 1024, Ways: 4, LineBytes: 64}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{SizeBytes: 1000, Ways: 4, LineBytes: 64}, // not divisible
		{SizeBytes: 1024, Ways: 0, LineBytes: 64}, // no ways
		{SizeBytes: 1024, Ways: 4, LineBytes: 64, HitLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Lookup(100, false) {
		t.Fatal("empty cache must miss")
	}
	c.Install(100, false)
	if !c.Lookup(100, false) {
		t.Fatal("installed line must hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Installs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 8 sets, 4 ways
	sets := uint64(c.Sets())
	// Fill one set with 4 lines, touch the first again, install a 5th:
	// the 2nd line (true LRU) must be the victim.
	lines := []uint64{0, sets, 2 * sets, 3 * sets}
	for _, l := range lines {
		c.Install(l, false)
	}
	c.Lookup(0, false)
	v, evicted := c.Install(4*sets, false)
	if !evicted || v.Line != sets {
		t.Fatalf("victim = %+v (evicted=%v), want line %d", v, evicted, sets)
	}
	if c.Contains(sets) {
		t.Fatal("evicted line still resident")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := smallCache()
	sets := uint64(c.Sets())
	c.Install(0, true)
	for i := uint64(1); i <= 4; i++ {
		c.Install(i*sets, false)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Writebacks != 1 {
		t.Fatalf("stats = %+v, want one dirty eviction", s)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := smallCache()
	sets := uint64(c.Sets())
	c.Install(0, false)
	c.Lookup(0, true) // write hit
	// Evict it and check the writeback.
	for i := uint64(1); i <= 4; i++ {
		c.Install(i*sets, false)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("write hit should have marked the line dirty")
	}
}

func TestReinstallRefreshesAndMergesDirty(t *testing.T) {
	c := smallCache()
	c.Install(7, false)
	if v, evicted := c.Install(7, true); evicted {
		t.Fatalf("reinstall must not evict, got %+v", v)
	}
	if d, ok := c.Invalidate(7); !ok || !d {
		t.Fatal("reinstall should have merged dirty=true")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Install(42, true)
	if d, ok := c.Invalidate(42); !ok || !d {
		t.Fatal("invalidate should find dirty line")
	}
	if _, ok := c.Invalidate(42); ok {
		t.Fatal("double invalidate should miss")
	}
	if c.Lookup(42, false) {
		t.Fatal("invalidated line must miss")
	}
}

func TestOccupiedLines(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 10; i++ {
		c.Install(i, false)
	}
	if got := c.OccupiedLines(); got != 10 {
		t.Fatalf("occupied = %d, want 10", got)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

// Property: after Install(line), Contains(line) is always true, and the
// number of valid lines never exceeds capacity.
func TestQuickInstallContains(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 64 * 2, Ways: 2, LineBytes: 64})
	capacity := 64 * 2
	f := func(line uint64, dirty bool) bool {
		c.Install(line, dirty)
		if !c.Contains(line) {
			return false
		}
		return c.OccupiedLines() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats balance — installs = evictions + occupied (when every
// install is a distinct line).
func TestStatsBalance(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 1000; i++ {
		c.Install(i*13+1, i%3 == 0)
	}
	s := c.Stats()
	if int(s.Installs) != int(s.Evictions)+c.OccupiedLines() {
		t.Fatalf("installs=%d evictions=%d occupied=%d",
			s.Installs, s.Evictions, c.OccupiedLines())
	}
}

func TestSmallWorkingSetAlwaysHitsAfterWarmup(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitLatency: 30})
	rng := rand.New(rand.NewPCG(9, 9))
	working := make([]uint64, 512)
	for i := range working {
		working[i] = uint64(rng.UintN(1 << 20))
	}
	for _, l := range working { // warm
		if !c.Lookup(l, false) {
			c.Install(l, false)
		}
	}
	c.ResetStats()
	for i := 0; i < 10000; i++ {
		l := working[rng.IntN(len(working))]
		if !c.Lookup(l, false) {
			t.Fatalf("line %d missed after warmup", l)
		}
	}
	if c.Stats().HitRate() != 1 {
		t.Fatal("warmed working set should hit 100%")
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64})
	for i := uint64(0); i < 1024; i++ {
		c.Install(i, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i)%1024, false)
	}
}

func BenchmarkInstallEvict(b *testing.B) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Install(uint64(i), false)
	}
}
