package cache

import "fmt"

// Hierarchy composes several cache levels (e.g. the paper's L1/L2/L3,
// Table 2) with inclusive write-back semantics: a hit at level k fills
// every level above it, a miss is filled into all levels by Fill, upper-
// level dirty victims write back into the level below, and dirty victims
// of the last level are returned to the caller for the memory system
// (the L4 DRAM cache, in the full system).
type Hierarchy struct {
	levels []*Cache
}

// NewHierarchy builds a hierarchy from outermost-first configurations
// (L1 first). At least one level is required.
func NewHierarchy(cfgs ...Config) *Hierarchy {
	if len(cfgs) == 0 {
		panic("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{}
	for _, cfg := range cfgs {
		h.levels = append(h.levels, New(cfg))
	}
	return h
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Level returns level i (0 = L1) for statistics inspection.
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// AccessResult reports one hierarchy access.
type AccessResult struct {
	// HitLevel is the 0-based level that hit, or -1 on a full miss.
	HitLevel int
	// Latency is the accumulated lookup latency of the levels probed
	// (plus nothing more on a miss — the caller adds memory time).
	Latency int
	// Writebacks lists dirty lines pushed out of the LAST level by the
	// fills this access performed; the caller owns them.
	Writebacks []uint64
}

// Access looks line up level by level. On a hit the line is filled into
// every level above the hit (inclusive hierarchy); on a full miss the
// caller must fetch the data and call Fill.
func (h *Hierarchy) Access(line uint64, write bool) AccessResult {
	res := AccessResult{HitLevel: -1}
	for i, c := range h.levels {
		res.Latency += c.Config().HitLatency
		if c.Lookup(line, write) {
			res.HitLevel = i
			// Fill the levels above the hit.
			res.Writebacks = append(res.Writebacks, h.fillLevels(0, i, line, write)...)
			return res
		}
	}
	return res
}

// Fill installs a fetched line into every level (after a full miss).
// Dirty victims of the last level are returned for the memory system.
func (h *Hierarchy) Fill(line uint64, write bool) []uint64 {
	return h.fillLevels(0, len(h.levels), line, write)
}

// fillLevels installs line into levels [from, to), cascading victims
// downward. Dirty victims of the last level are returned.
func (h *Hierarchy) fillLevels(from, to int, line uint64, dirty bool) []uint64 {
	var out []uint64
	for i := from; i < to; i++ {
		v, evicted := h.levels[i].Install(line, dirty && i == 0)
		if !evicted || !v.Dirty {
			continue
		}
		// Dirty victim: write back into the next level down, or hand it
		// to the caller from the last level.
		if i+1 < len(h.levels) {
			if h.levels[i+1].Lookup(v.Line, true) {
				continue
			}
			// Inclusive hierarchies keep lower levels a superset, but a
			// shared lower level under multiple upper caches can have
			// evicted the line; reinstall it dirty.
			out = append(out, h.installDirty(i+1, v.Line)...)
		} else {
			out = append(out, v.Line)
		}
	}
	return out
}

// installDirty reinstalls a written-back line into level i, cascading.
func (h *Hierarchy) installDirty(i int, line uint64) []uint64 {
	v, evicted := h.levels[i].Install(line, true)
	if !evicted || !v.Dirty {
		return nil
	}
	if i+1 < len(h.levels) {
		if h.levels[i+1].Lookup(v.Line, true) {
			return nil
		}
		return h.installDirty(i+1, v.Line)
	}
	return []uint64{v.Line}
}

// String summarizes per-level hit rates.
func (h *Hierarchy) String() string {
	s := ""
	for i, c := range h.levels {
		st := c.Stats()
		s += fmt.Sprintf("L%d: %.1f%% of %d  ", i+1, 100*st.HitRate(), st.Hits+st.Misses)
	}
	return s
}
