// Package cache implements a set-associative write-back SRAM cache model
// with true-LRU replacement. The simulator uses it for the shared L3 (the
// level whose hit rate DICE's neighbor-line installs improve, Table 6) and
// for the private L1/L2 levels in the full-hierarchy example. The model
// tracks tags, validity and dirty state; data bytes are owned by the
// simulator's deterministic data sources, so the cache itself stays
// compact even at large geometries.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (64 throughout the paper)
	// HitLatency is the access latency in CPU cycles charged on a hit.
	HitLatency int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache: geometry must be positive: %+v", c)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line %d",
			c.SizeBytes, c.Ways*c.LineBytes)
	case c.HitLatency < 0:
		return fmt.Errorf("cache: negative hit latency")
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Installs   uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// HitRate returns hits / (hits + misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative cache indexed by 64-byte line address.
type Cache struct {
	cfg   Config
	sets  [][]way
	nsets uint64
	tick  uint64
	stats Stats
}

// New builds a cache. It panics on invalid configuration (configurations
// are static experiment inputs).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	c := &Cache{cfg: cfg, nsets: uint64(nsets), sets: make([][]way, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.nsets) }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics; contents are preserved.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) set(line uint64) []way { return c.sets[line%c.nsets] }

// Lookup probes for a line, updating LRU on a hit. When write is true a
// hit marks the line dirty (write-back policy).
func (c *Cache) Lookup(line uint64, write bool) bool {
	c.tick++
	ws := c.set(line)
	for i := range ws {
		if ws[i].valid && ws[i].tag == line {
			ws[i].used = c.tick
			if write {
				ws[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains reports residency without touching LRU or statistics.
func (c *Cache) Contains(line uint64) bool {
	for _, w := range c.set(line) {
		if w.valid && w.tag == line {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by Install.
type Victim struct {
	Line  uint64
	Dirty bool
}

// Install fills a line (write-allocate), evicting the LRU way if the set
// is full. It returns the victim, if any. Installing a line that is
// already resident refreshes its LRU state and ORs in dirty.
func (c *Cache) Install(line uint64, dirty bool) (Victim, bool) {
	c.tick++
	c.stats.Installs++
	ws := c.set(line)
	// Already resident (can happen when a prefetch races a demand fill).
	for i := range ws {
		if ws[i].valid && ws[i].tag == line {
			ws[i].used = c.tick
			ws[i].dirty = ws[i].dirty || dirty
			return Victim{}, false
		}
	}
	// Free way.
	for i := range ws {
		if !ws[i].valid {
			ws[i] = way{tag: line, valid: true, dirty: dirty, used: c.tick}
			return Victim{}, false
		}
	}
	// Evict LRU.
	lru := 0
	for i := 1; i < len(ws); i++ {
		if ws[i].used < ws[lru].used {
			lru = i
		}
	}
	v := Victim{Line: ws[lru].tag, Dirty: ws[lru].dirty}
	c.stats.Evictions++
	if v.Dirty {
		c.stats.Writebacks++
	}
	ws[lru] = way{tag: line, valid: true, dirty: dirty, used: c.tick}
	return v, true
}

// Invalidate removes a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(line uint64) (dirty, present bool) {
	ws := c.set(line)
	for i := range ws {
		if ws[i].valid && ws[i].tag == line {
			dirty = ws[i].dirty
			ws[i] = way{}
			return dirty, true
		}
	}
	return false, false
}

// OccupiedLines returns the number of valid lines (for capacity reports).
func (c *Cache) OccupiedLines() int {
	n := 0
	for _, ws := range c.sets {
		for _, w := range ws {
			if w.valid {
				n++
			}
		}
	}
	return n
}
