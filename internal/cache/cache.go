// Package cache implements a set-associative write-back SRAM cache model
// with true-LRU replacement. The simulator uses it for the shared L3 (the
// level whose hit rate DICE's neighbor-line installs improve, Table 6) and
// for the private L1/L2 levels in the full-hierarchy example. The model
// tracks tags, validity and dirty state; data bytes are owned by the
// simulator's deterministic data sources, so the cache itself stays
// compact even at large geometries.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size (64 throughout the paper)
	// HitLatency is the access latency in CPU cycles charged on a hit.
	HitLatency int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache: geometry must be positive: %+v", c)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line %d",
			c.SizeBytes, c.Ways*c.LineBytes)
	case c.HitLatency < 0:
		return fmt.Errorf("cache: negative hit latency")
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Installs   uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// HitRate returns hits / (hits + misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a set-associative cache indexed by 64-byte line address.
// State is stored as parallel flat arrays (set i occupies slots
// [i*Ways, (i+1)*Ways)): the probe loop scans only the contiguous tag
// words, touching two cache lines for a 16-way set instead of the
// eight a struct-per-way layout costs, and power-of-two set counts
// index with a mask instead of a hardware divide. Both effects are
// measurable because the L3 sits on the simulator's per-reference
// path. A slot is valid iff its used tick is nonzero (ticks start
// at 1).
type Cache struct {
	cfg     Config
	tags    []uint64
	used    []uint64 // LRU tick; 0 = invalid slot
	dirty   []bool
	nsets   uint64
	setMask uint64 // nsets-1 when nsets is a power of two, else 0
	tick    uint64
	stats   Stats
}

// New builds a cache. It panics on invalid configuration (configurations
// are static experiment inputs).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	slots := nsets * cfg.Ways
	c := &Cache{
		cfg:   cfg,
		nsets: uint64(nsets),
		tags:  make([]uint64, slots),
		used:  make([]uint64, slots),
		dirty: make([]bool, slots),
	}
	if c.nsets&(c.nsets-1) == 0 {
		c.setMask = c.nsets - 1
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.nsets) }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics; contents are preserved.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setBase returns the first slot index of the set holding line.
func (c *Cache) setBase(line uint64) int {
	var idx uint64
	if c.setMask != 0 {
		idx = line & c.setMask
	} else {
		idx = line % c.nsets
	}
	return int(idx) * c.cfg.Ways
}

// probe returns the slot index of line, or -1. The scan reads only the
// tag words; validity is checked on the (rare) match.
func (c *Cache) probe(line uint64) int {
	base := c.setBase(line)
	tags := c.tags[base : base+c.cfg.Ways]
	for i := range tags {
		if tags[i] == line && c.used[base+i] != 0 {
			return base + i
		}
	}
	return -1
}

// Lookup probes for a line, updating LRU on a hit. When write is true a
// hit marks the line dirty (write-back policy).
func (c *Cache) Lookup(line uint64, write bool) bool {
	c.tick++
	if i := c.probe(line); i >= 0 {
		c.used[i] = c.tick
		if write {
			c.dirty[i] = true
		}
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Contains reports residency without touching LRU or statistics.
func (c *Cache) Contains(line uint64) bool {
	return c.probe(line) >= 0
}

// Victim describes a line displaced by Install.
type Victim struct {
	Line  uint64
	Dirty bool
}

// Install fills a line (write-allocate), evicting the LRU way if the set
// is full. It returns the victim, if any. Installing a line that is
// already resident refreshes its LRU state and ORs in dirty.
func (c *Cache) Install(line uint64, dirty bool) (Victim, bool) {
	c.tick++
	c.stats.Installs++
	// Already resident (can happen when a prefetch races a demand fill).
	if i := c.probe(line); i >= 0 {
		c.used[i] = c.tick
		c.dirty[i] = c.dirty[i] || dirty
		return Victim{}, false
	}
	base := c.setBase(line)
	used := c.used[base : base+c.cfg.Ways]
	// Free way, else the LRU way: invalid slots carry tick 0, so the
	// minimum over used covers both cases in one scan.
	lru := 0
	for i := 1; i < len(used); i++ {
		if used[i] < used[lru] {
			lru = i
		}
	}
	slot := base + lru
	var v Victim
	evicted := used[lru] != 0
	if evicted {
		v = Victim{Line: c.tags[slot], Dirty: c.dirty[slot]}
		c.stats.Evictions++
		if v.Dirty {
			c.stats.Writebacks++
		}
	}
	c.tags[slot] = line
	c.used[slot] = c.tick
	c.dirty[slot] = dirty
	return v, evicted
}

// Invalidate removes a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(line uint64) (dirty, present bool) {
	if i := c.probe(line); i >= 0 {
		dirty = c.dirty[i]
		c.tags[i] = 0
		c.used[i] = 0
		c.dirty[i] = false
		return dirty, true
	}
	return false, false
}

// OccupiedLines returns the number of valid lines (for capacity reports).
func (c *Cache) OccupiedLines() int {
	n := 0
	for i := range c.used {
		if c.used[i] != 0 {
			n++
		}
	}
	return n
}
