package graph

import (
	"encoding/binary"
	"fmt"
	"math"

	"dice/internal/trace"
)

// Workspace lays the kernel's arrays out in a synthetic virtual address
// space, records every element access as a line-granular reference, and
// serves line bytes from the live arrays — so the DRAM cache compresses
// the kernel's real data.
//
// Array layout: each array occupies a naturally ordered region starting
// at the next 1MB boundary after its predecessor, mimicking a heap
// allocator placing large slices.
//
// Immutability contract: once Trace has returned, a Workspace is never
// written again — the kernel has finished mutating its arrays, and the
// recorded request slice is fixed. Line and FillLine only read the
// backing arrays into caller-provided (or freshly allocated) buffers.
// The workload artifact cache relies on this to share one Workspace
// across any number of concurrent simulations.
type Workspace struct {
	regions []region
	reqs    []trace.Request
	maxReqs int
	// filter is a direct-mapped recently-touched-line table standing in
	// for the private cache levels above the traced stream.
	filter []uint64
}

type region struct {
	base  uint64 // byte address
	elemN int
	elemS int
	// bytes reads the backing element i as little-endian bytes into dst.
	bytes func(i int, dst []byte)
}

const regionAlign = 1 << 20

// NewWorkspace creates a tracer that stops recording after maxReqs
// references (the kernel keeps running so final data is consistent).
func NewWorkspace(maxReqs int) *Workspace {
	return &Workspace{maxReqs: maxReqs, filter: make([]uint64, 256)}
}

// Requests returns the recorded reference stream.
func (w *Workspace) Requests() []trace.Request { return w.reqs }

// Full reports whether the recording budget is exhausted.
func (w *Workspace) Full() bool { return len(w.reqs) >= w.maxReqs }

// nextBase returns the base address for a new region.
func (w *Workspace) nextBase() uint64 {
	if len(w.regions) == 0 {
		return regionAlign
	}
	last := w.regions[len(w.regions)-1]
	end := last.base + uint64(last.elemN*last.elemS)
	return (end + regionAlign) &^ (regionAlign - 1)
}

// Array is a traced handle over a backing slice.
type Array struct {
	w     *Workspace
	base  uint64
	elemS int
}

// touch records a reference to element i. A small recently-touched-line
// filter (modeling the private L1/L2 the trace sits behind) absorbs the
// short-term reuse of sweeping several elements of the same line across
// interleaved arrays, so the stream models L3-level traffic.
func (a Array) touch(i int, write bool) {
	w := a.w
	if len(w.reqs) >= w.maxReqs {
		return
	}
	addr := a.base + uint64(i*a.elemS)
	line := addr >> 6
	slot := line & uint64(len(w.filter)-1)
	if w.filter[slot] == line+1 { // +1 so line 0 is distinguishable
		if write && len(w.reqs) > 0 {
			// Keep write intent visible on the most recent request to
			// this line if it is still the filter resident.
			for j := len(w.reqs) - 1; j >= 0 && j >= len(w.reqs)-8; j-- {
				if w.reqs[j].Line == line {
					w.reqs[j].Write = true
					break
				}
			}
		}
		return
	}
	w.filter[slot] = line + 1
	w.reqs = append(w.reqs, trace.Request{Line: line, Write: write})
}

// AddU32 registers a uint32 slice and returns its traced handle.
func (w *Workspace) AddU32(s []uint32) Array {
	base := w.nextBase()
	w.regions = append(w.regions, region{
		base: base, elemN: len(s), elemS: 4,
		bytes: func(i int, dst []byte) { binary.LittleEndian.PutUint32(dst, s[i]) },
	})
	return Array{w: w, base: base, elemS: 4}
}

// AddU64 registers a uint64 slice.
func (w *Workspace) AddU64(s []uint64) Array {
	base := w.nextBase()
	w.regions = append(w.regions, region{
		base: base, elemN: len(s), elemS: 8,
		bytes: func(i int, dst []byte) { binary.LittleEndian.PutUint64(dst, s[i]) },
	})
	return Array{w: w, base: base, elemS: 8}
}

// AddF64 registers a float64 slice.
func (w *Workspace) AddF64(s []float64) Array {
	base := w.nextBase()
	w.regions = append(w.regions, region{
		base: base, elemN: len(s), elemS: 8,
		bytes: func(i int, dst []byte) {
			binary.LittleEndian.PutUint64(dst, math.Float64bits(s[i]))
		},
	})
	return Array{w: w, base: base, elemS: 8}
}

// Line serves 64 data bytes at the given line address from the live
// arrays; gaps between regions read as zero.
func (w *Workspace) Line(line uint64) []byte {
	buf := make([]byte, 64)
	w.FillLine(line, buf)
	return buf
}

// FillLine writes the line's 64 bytes into buf (which must be zeroed or
// reused; it is cleared here), avoiding allocation in hot loops.
func (w *Workspace) FillLine(line uint64, buf []byte) {
	clear(buf)
	addr := line << 6
	for _, r := range w.regions {
		end := r.base + uint64(r.elemN*r.elemS)
		if addr+64 <= r.base || addr >= end {
			continue
		}
		for off := 0; off < 64; off += r.elemS {
			a := addr + uint64(off)
			if a < r.base || a+uint64(r.elemS) > end {
				continue
			}
			i := int((a - r.base) / uint64(r.elemS))
			r.bytes(i, buf[off:])
		}
		return
	}
}

// FootprintBytes returns the total bytes spanned by all regions.
func (w *Workspace) FootprintBytes() uint64 {
	if len(w.regions) == 0 {
		return 0
	}
	last := w.regions[len(w.regions)-1]
	return last.base + uint64(last.elemN*last.elemS)
}

// Kernel identifies a GAP kernel.
type Kernel uint8

// GAP kernels.
const (
	PageRank Kernel = iota
	ConnectedComponents
	BetweennessCentrality
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case PageRank:
		return "pr"
	case ConnectedComponents:
		return "cc"
	case BetweennessCentrality:
		return "bc"
	default:
		return fmt.Sprintf("kernel(%d)", uint8(k))
	}
}

// Trace runs a kernel over g, recording up to maxReqs line references.
// It returns the workspace, whose Requests() is the trace and whose
// Line() serves the kernel's final data image.
func Trace(k Kernel, g *CSR, maxReqs int) *Workspace {
	w := NewWorkspace(maxReqs)
	switch k {
	case PageRank:
		tracePageRank(w, g)
	case ConnectedComponents:
		traceCC(w, g)
	case BetweennessCentrality:
		traceBC(w, g)
	default:
		panic("graph: unknown kernel")
	}
	return w
}

// tracePageRank runs pull-style PageRank iterations until the trace
// budget fills or scores converge.
func tracePageRank(w *Workspace, g *CSR) {
	n := g.N
	pr := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for v := range pr {
		pr[v] = 1 / float64(n)
	}
	aRow := w.AddU32(g.RowPtr)
	aCol := w.AddU32(g.Col)
	aPR := w.AddF64(pr)
	aNext := w.AddF64(next)
	aContrib := w.AddF64(contrib)

	const damping = 0.85
	base := (1 - damping) / float64(n)
	for iter := 0; iter < 20 && !w.Full(); iter++ {
		// contrib[v] = pr[v]/deg[v]: sequential sweep.
		for v := 0; v < n; v++ {
			aPR.touch(v, false)
			aRow.touch(v, false)
			d := g.Degree(v)
			if d > 0 {
				contrib[v] = pr[v] / float64(d)
			} else {
				contrib[v] = 0
			}
			aContrib.touch(v, true)
		}
		// Pull phase: irregular gathers of contrib[u].
		var delta float64
		for v := 0; v < n && !w.Full(); v++ {
			aRow.touch(v, false)
			sum := 0.0
			for ei := g.RowPtr[v]; ei < g.RowPtr[v+1]; ei++ {
				aCol.touch(int(ei), false)
				u := g.Col[ei]
				aContrib.touch(int(u), false)
				sum += contrib[u]
			}
			nv := base + damping*sum
			aNext.touch(v, true)
			delta += math.Abs(nv - pr[v])
			next[v] = nv
		}
		copy(pr, next)
		if delta < 1e-7 {
			break
		}
	}
}

// traceCC runs label-propagation connected components (the
// Shiloach-Vishkin style hooking used by GAP's cc) to convergence or
// trace budget.
func traceCC(w *Workspace, g *CSR) {
	n := g.N
	comp := make([]uint32, n)
	for v := range comp {
		comp[v] = uint32(v)
	}
	aRow := w.AddU32(g.RowPtr)
	aCol := w.AddU32(g.Col)
	aComp := w.AddU32(comp)

	for changedAny := true; changedAny && !w.Full(); {
		changedAny = false
		for v := 0; v < n && !w.Full(); v++ {
			aRow.touch(v, false)
			aComp.touch(v, false)
			cv := comp[v]
			for ei := g.RowPtr[v]; ei < g.RowPtr[v+1]; ei++ {
				aCol.touch(int(ei), false)
				u := g.Col[ei]
				aComp.touch(int(u), false)
				if comp[u] < cv {
					cv = comp[u]
				}
			}
			if cv != comp[v] {
				comp[v] = cv
				aComp.touch(v, true)
				changedAny = true
			}
		}
		// Pointer-jumping compression pass.
		for v := 0; v < n && !w.Full(); v++ {
			aComp.touch(v, false)
			for comp[v] != comp[comp[v]] {
				aComp.touch(int(comp[v]), false)
				comp[v] = comp[comp[v]]
				aComp.touch(v, true)
			}
		}
	}
}

// traceBC runs Brandes betweenness centrality from a set of sample
// sources (GAP's bc uses sampled sources on large graphs).
func traceBC(w *Workspace, g *CSR) {
	n := g.N
	dist := make([]uint32, n)
	sigma := make([]uint64, n)
	delta := make([]float64, n)
	bc := make([]float64, n)
	queue := make([]uint32, 0, n)

	aRow := w.AddU32(g.RowPtr)
	aCol := w.AddU32(g.Col)
	aDist := w.AddU32(dist)
	aSigma := w.AddU64(sigma)
	aDelta := w.AddF64(delta)
	aBC := w.AddF64(bc)

	const inf = ^uint32(0)
	r := &rng{s: 12345}
	for src := 0; src < 8 && !w.Full(); src++ {
		s := r.intn(n)
		for v := 0; v < n; v++ {
			dist[v], sigma[v], delta[v] = inf, 0, 0
			aDist.touch(v, true)
		}
		dist[s], sigma[s] = 0, 1
		queue = append(queue[:0], uint32(s))
		// Forward BFS computing shortest-path counts.
		order := make([]uint32, 0, n)
		for qi := 0; qi < len(queue) && !w.Full(); qi++ {
			v := queue[qi]
			order = append(order, v)
			aRow.touch(int(v), false)
			for ei := g.RowPtr[v]; ei < g.RowPtr[v+1]; ei++ {
				aCol.touch(int(ei), false)
				u := g.Col[ei]
				aDist.touch(int(u), false)
				if dist[u] == inf {
					dist[u] = dist[v] + 1
					aDist.touch(int(u), true)
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					aSigma.touch(int(u), true)
					aSigma.touch(int(v), false)
					sigma[u] += sigma[v]
				}
			}
		}
		// Backward dependency accumulation.
		for i := len(order) - 1; i >= 0 && !w.Full(); i-- {
			v := order[i]
			aRow.touch(int(v), false)
			for ei := g.RowPtr[v]; ei < g.RowPtr[v+1]; ei++ {
				aCol.touch(int(ei), false)
				u := g.Col[ei]
				aDist.touch(int(u), false)
				if dist[u] == dist[v]+1 && sigma[u] > 0 {
					aSigma.touch(int(u), false)
					aSigma.touch(int(v), false)
					aDelta.touch(int(u), false)
					aDelta.touch(int(v), true)
					delta[v] += float64(sigma[v]) / float64(sigma[u]) * (1 + delta[u])
				}
			}
			if v != uint32(s) {
				aBC.touch(int(v), true)
				bc[v] += delta[v]
			}
		}
	}
}
