// Package graph provides the GAP-suite substrate: CSR graphs, generators
// for twitter-like (RMAT power-law) and web-like (locality-clustered)
// topologies, and real implementations of the three kernels the paper
// evaluates — PageRank (pr), Connected Components (cc) and Betweenness
// Centrality (bc). The kernels run on actual in-memory arrays; every
// element access is recorded as a line-granular memory reference, and the
// final array bytes serve as the data image the DRAM cache compresses.
// This preserves the two properties that make GAP the paper's biggest
// winner: highly irregular high-MPKI access streams, and integer-heavy
// data (indices, labels, counts) that FPC/BDI compress well.
package graph

import (
	"fmt"
	"sort"
)

// CSR is a graph in compressed-sparse-row form. Edges are stored once,
// symmetrized (undirected), with sorted adjacency lists — sorted
// neighbors give the small deltas BDI exploits, as real CSR builders
// produce.
type CSR struct {
	N      int      // vertices
	RowPtr []uint32 // length N+1
	Col    []uint32 // length = 2*edges (symmetrized)
}

// Edges returns the number of stored directed edges.
func (g *CSR) Edges() int { return len(g.Col) }

// Degree returns the degree of v.
func (g *CSR) Degree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Neighbors returns the adjacency slice of v.
func (g *CSR) Neighbors(v int) []uint32 { return g.Col[g.RowPtr[v]:g.RowPtr[v+1]] }

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// rng is a tiny deterministic generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s++
	return splitmix64(r.s)
}

func (r *rng) unit() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// buildCSR symmetrizes, deduplicates and sorts an edge list into CSR form.
func buildCSR(n int, src, dst []uint32) *CSR {
	type edge struct{ u, v uint32 }
	edges := make([]edge, 0, 2*len(src))
	for i := range src {
		u, v := src[i], dst[i]
		if u == v {
			continue
		}
		edges = append(edges, edge{u, v}, edge{v, u})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	// Deduplicate.
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	g := &CSR{N: n, RowPtr: make([]uint32, n+1), Col: make([]uint32, len(out))}
	for i, e := range out {
		g.Col[i] = e.v
		g.RowPtr[e.u+1]++
	}
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] += g.RowPtr[v]
	}
	return g
}

// RMAT generates a power-law graph in the Graph500/RMAT style used for
// the twitter input: 2^scale vertices, edgeFactor edges per vertex, with
// the standard (0.57, 0.19, 0.19, 0.05) quadrant probabilities producing
// the heavy-tailed degree distribution of social graphs.
func RMAT(scale, edgeFactor int, seed uint64) *CSR {
	if scale < 1 || scale > 30 || edgeFactor < 1 {
		panic(fmt.Sprintf("graph: bad RMAT parameters scale=%d ef=%d", scale, edgeFactor))
	}
	n := 1 << scale
	m := n * edgeFactor
	src := make([]uint32, m)
	dst := make([]uint32, m)
	r := &rng{s: seed}
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.unit()
			switch {
			case p < a:
				// upper-left: neither bit set
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		// Permute vertex labels so high-degree vertices are not all at
		// id 0 (standard Graph500 practice keeps locality realistic).
		src[i] = uint32(splitmix64(seed^uint64(u)) % uint64(n))
		dst[i] = uint32(splitmix64(seed^uint64(v)) % uint64(n))
	}
	return buildCSR(n, src, dst)
}

// Web generates a web-like graph for the sk-2005-style input: vertices
// form host-sized clusters with dense local links and sparse long-range
// links, yielding the high spatial locality and long chains of web
// crawls.
func Web(n, avgDeg int, seed uint64) *CSR {
	if n < 2 || avgDeg < 1 {
		panic(fmt.Sprintf("graph: bad Web parameters n=%d deg=%d", n, avgDeg))
	}
	m := n * avgDeg / 2
	src := make([]uint32, 0, m)
	dst := make([]uint32, 0, m)
	r := &rng{s: seed}
	const cluster = 256
	for i := 0; i < m; i++ {
		u := r.intn(n)
		var v int
		if r.unit() < 0.85 {
			// Local link within the cluster.
			base := u - u%cluster
			v = base + r.intn(cluster)
			if v >= n {
				v = r.intn(n)
			}
		} else {
			v = r.intn(n)
		}
		src = append(src, uint32(u))
		dst = append(dst, uint32(v))
	}
	return buildCSR(n, src, dst)
}
