package graph

import (
	"testing"
	"testing/quick"

	"dice/internal/compress"
)

func TestCSRWellFormed(t *testing.T) {
	for name, g := range map[string]*CSR{
		"rmat": RMAT(10, 8, 1),
		"web":  Web(1024, 8, 2),
	} {
		t.Run(name, func(t *testing.T) {
			if len(g.RowPtr) != g.N+1 {
				t.Fatalf("RowPtr length %d, want %d", len(g.RowPtr), g.N+1)
			}
			if int(g.RowPtr[g.N]) != len(g.Col) {
				t.Fatal("RowPtr does not terminate at len(Col)")
			}
			for v := 0; v < g.N; v++ {
				if g.RowPtr[v] > g.RowPtr[v+1] {
					t.Fatal("RowPtr not monotone")
				}
				nbrs := g.Neighbors(v)
				for i, u := range nbrs {
					if int(u) >= g.N {
						t.Fatal("neighbor out of range")
					}
					if int(u) == v {
						t.Fatal("self loop survived")
					}
					if i > 0 && nbrs[i-1] >= u {
						t.Fatal("adjacency not sorted/deduped")
					}
				}
			}
		})
	}
}

func TestCSRSymmetric(t *testing.T) {
	g := RMAT(8, 8, 3)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			found := false
			for _, back := range g.Neighbors(int(u)) {
				if int(back) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no reverse", v, u)
			}
		}
	}
}

func TestRMATPowerLaw(t *testing.T) {
	g := RMAT(12, 8, 7)
	maxDeg, sum := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.N)
	if float64(maxDeg) < 8*avg {
		t.Fatalf("max degree %d vs avg %.1f: not heavy-tailed", maxDeg, avg)
	}
}

func TestWebLocality(t *testing.T) {
	g := Web(4096, 8, 9)
	local, total := 0, 0
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			total++
			if v/256 == int(u)/256 {
				local++
			}
		}
	}
	if frac := float64(local) / float64(total); frac < 0.6 {
		t.Fatalf("local-edge fraction %.2f, want > 0.6", frac)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := RMAT(8, 4, 5), RMAT(8, 4, 5)
	if len(a.Col) != len(b.Col) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatal("nondeterministic adjacency")
		}
	}
}

func TestBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { RMAT(0, 8, 1) },
		func() { RMAT(31, 8, 1) },
		func() { RMAT(8, 0, 1) },
		func() { Web(1, 8, 1) },
		func() { Web(100, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad parameters accepted")
				}
			}()
			f()
		}()
	}
}

func TestTraceProducesRequests(t *testing.T) {
	g := RMAT(11, 8, 11)
	for _, k := range []Kernel{PageRank, ConnectedComponents, BetweennessCentrality} {
		t.Run(k.String(), func(t *testing.T) {
			w := Trace(k, g, 50000)
			reqs := w.Requests()
			if len(reqs) < 10000 {
				t.Fatalf("only %d requests traced", len(reqs))
			}
			if len(reqs) > 50000 {
				t.Fatalf("trace exceeded budget: %d", len(reqs))
			}
			writes := 0
			maxLine := w.FootprintBytes() >> 6
			for _, r := range reqs {
				if r.Line > maxLine {
					t.Fatalf("request line %d beyond footprint", r.Line)
				}
				if r.Write {
					writes++
				}
			}
			if k != ConnectedComponents && writes == 0 {
				t.Fatal("kernel performed no writes")
			}
		})
	}
}

func TestTraceDeterministic(t *testing.T) {
	g := RMAT(8, 8, 13)
	a := Trace(PageRank, g, 20000).Requests()
	b := Trace(PageRank, g, 20000).Requests()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestWorkspaceLineServesArrayBytes(t *testing.T) {
	w := NewWorkspace(10)
	vals := make([]uint32, 64)
	for i := range vals {
		vals[i] = uint32(1000 + i)
	}
	w.AddU32(vals)
	// First region starts at regionAlign; line holding vals[0..15].
	line := uint64(regionAlign) >> 6
	buf := w.Line(line)
	for i := 0; i < 16; i++ {
		got := uint32(buf[i*4]) | uint32(buf[i*4+1])<<8 | uint32(buf[i*4+2])<<16 | uint32(buf[i*4+3])<<24
		if got != vals[i] {
			t.Fatalf("element %d = %d, want %d", i, got, vals[i])
		}
	}
	// A gap line reads as zero.
	if b := w.Line(5); len(b) != 64 {
		t.Fatal("gap line must still be 64 bytes")
	}
}

func TestGraphDataIsCompressible(t *testing.T) {
	// CSR indices and labels must compress meaningfully overall — the
	// property that gives GAP its large capacity gains (Table 5).
	g := RMAT(10, 8, 17)
	w := Trace(ConnectedComponents, g, 100000)
	totalSize, lines := 0, 0
	end := w.FootprintBytes() >> 6
	for line := uint64(regionAlign >> 6); line < end; line += 37 {
		totalSize += compress.CompressedSize(w.Line(line))
		lines++
	}
	ratio := float64(lines*64) / float64(totalSize)
	if ratio < 1.5 {
		t.Fatalf("graph data compression ratio %.2f, want > 1.5", ratio)
	}
}

func TestKernelStrings(t *testing.T) {
	if PageRank.String() != "pr" || ConnectedComponents.String() != "cc" ||
		BetweennessCentrality.String() != "bc" {
		t.Fatal("kernel names wrong")
	}
	if Kernel(7).String() != "kernel(7)" {
		t.Fatal("unknown kernel name wrong")
	}
}

// Property: Workspace.Line is deterministic and always 64 bytes for
// arbitrary addresses.
func TestQuickWorkspaceLine(t *testing.T) {
	g := RMAT(8, 4, 19)
	w := Trace(PageRank, g, 5000)
	f := func(line uint64) bool {
		l := line % (w.FootprintBytes() >> 5) // include out-of-range
		a := w.Line(l)
		b := w.Line(l)
		if len(a) != 64 || len(b) != 64 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(10, 8, uint64(i))
	}
}

func BenchmarkTracePageRank(b *testing.B) {
	g := RMAT(10, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trace(PageRank, g, 100000)
	}
}
