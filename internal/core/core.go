// Package core is the library facade for DICE: Dynamic-Indexing Cache
// comprEssion for DRAM caches (Young, Nair & Qureshi, ISCA 2017). It
// assembles the pieces in internal/{compress,dram,dcache,...} behind a
// small, documented API with the paper's defaults, for programs that want
// a compressed DRAM cache without wiring a full system simulation.
//
// The central type is Cache: a stacked-DRAM cache that compresses lines
// with hybrid FPC+BDI, dynamically chooses between Traditional Set
// Indexing and Bandwidth-Aware Indexing per line (the 36B threshold of
// Section 5.2), predicts read indices with a <1KB Cache Index Predictor,
// and charges cycle-accurate timing against an HBM-like device model.
//
//	cache := core.New(core.Config{Sets: 1 << 14})
//	res := cache.Read(now, lineAddr)
//	if !res.Hit {
//	    cache.Install(res.Done, lineAddr, false)
//	}
//
// For whole-system experiments (cores, L3, main memory, workloads) use
// the sim and experiments packages; for raw compression use compress.
package core

import (
	"fmt"

	"dice/internal/compress"
	"dice/internal/dcache"
	"dice/internal/dram"
)

// Design selects a DRAM-cache design.
type Design uint8

// Designs, in the order the paper introduces them.
const (
	// Alloy is the uncompressed direct-mapped baseline (Figure 2).
	Alloy Design = iota
	// CompressTSI compresses within traditional set indexing: capacity
	// benefits only (Section 4.4).
	CompressTSI
	// CompressBAI compresses with bandwidth-aware indexing for every
	// line (Section 4.5).
	CompressBAI
	// DICE dynamically selects BAI or TSI per line by compressibility,
	// with CIP index prediction (Section 5). The paper's proposal.
	DICE
)

// String names the design.
func (d Design) String() string {
	switch d {
	case Alloy:
		return "alloy"
	case CompressTSI:
		return "compress-tsi"
	case CompressBAI:
		return "compress-bai"
	case DICE:
		return "dice"
	default:
		return fmt.Sprintf("design(%d)", uint8(d))
	}
}

func (d Design) policy() dcache.Policy {
	switch d {
	case Alloy:
		return dcache.PolicyUncompressed
	case CompressTSI:
		return dcache.PolicyTSI
	case CompressBAI:
		return dcache.PolicyBAI
	case DICE:
		return dcache.PolicyDICE
	default:
		panic("core: unknown design " + d.String())
	}
}

// DataSource supplies the 64 bytes of a line for compression, as in
// dcache. Implementations must be deterministic per line for the
// lifetime of the cache.
type DataSource = dcache.DataSource

// Config configures a Cache. The zero value is not valid: Sets is
// required.
type Config struct {
	// Sets is the number of 72-byte direct-mapped set frames (a 1GB
	// cache has 1<<24; scaled experiments use 1<<14).
	Sets int
	// Design selects the cache design; the default is DICE.
	Design Design
	// KNL switches to the Knights-Landing tag organization (tags in ECC,
	// no neighbor-tag transfer; Section 6.6).
	KNL bool
	// Threshold overrides the DICE insertion threshold (default 36B).
	Threshold int
	// CIPEntries overrides the Last-Time Table size (default 2048).
	CIPEntries int
	// Data resolves line contents; required for every design but Alloy.
	// Lines whose data is nil are treated as incompressible.
	Data DataSource
	// DRAM overrides the stacked-DRAM timing model; the default is the
	// paper's 4-channel HBM configuration.
	DRAM *dram.Config
}

// Cache is a compressed DRAM cache.
type Cache struct {
	inner *dcache.Cache
	mem   *dram.Memory
}

// New builds a Cache with the paper's defaults. It panics on invalid
// configuration, which is a programming error (configurations are static).
func New(cfg Config) *Cache {
	if cfg.Design == Alloy && cfg.Data == nil {
		// The baseline needs no data; others validate inside dcache.
	}
	dcfg := dram.HBMConfig()
	if cfg.DRAM != nil {
		dcfg = *cfg.DRAM
	}
	mem := dram.New(dcfg)
	org := dcache.OrgAlloy
	if cfg.KNL {
		org = dcache.OrgKNL
	}
	inner := dcache.New(dcache.Config{
		Sets:       cfg.Sets,
		Policy:     cfg.Design.policy(),
		Org:        org,
		Threshold:  cfg.Threshold,
		CIPEntries: cfg.CIPEntries,
		Mem:        mem,
		Data:       cfg.Data,
	})
	return &Cache{inner: inner, mem: mem}
}

// ReadResult reports one lookup; see dcache.ReadResult.
type ReadResult = dcache.ReadResult

// InstallResult reports one fill; see dcache.InstallResult.
type InstallResult = dcache.InstallResult

// Victim is a displaced line; see dcache.Victim.
type Victim = dcache.Victim

// Stats aggregates cache activity; see dcache.Stats.
type Stats = dcache.Stats

// Read looks up a 64B line at CPU cycle now. On a hit, Done is the cycle
// the data is available and Extra lists spatially adjacent lines the same
// access delivered for free. On a miss, Done is the cycle the miss was
// determined; fetch the line and call Install.
func (c *Cache) Read(now uint64, line uint64) ReadResult {
	return c.inner.Read(now, line)
}

// Install fills a line after a miss. Dirty victims must be written back
// to the next level by the caller.
func (c *Cache) Install(now uint64, line uint64, dirty bool) InstallResult {
	return c.inner.Install(now, line, dirty)
}

// Writeback delivers a dirty line from the level above (updating it in
// place on a write hit, installing it otherwise).
func (c *Cache) Writeback(now uint64, line uint64) InstallResult {
	return c.inner.Writeback(now, line)
}

// Contains reports residency without side effects.
func (c *Cache) Contains(line uint64) bool { return c.inner.Contains(line) }

// Stats returns accumulated cache statistics.
func (c *Cache) Stats() Stats { return c.inner.Stats() }

// DRAMStats returns the underlying device's activity (bandwidth, row
// locality), for performance and energy accounting.
func (c *Cache) DRAMStats() dram.Stats { return c.mem.Stats() }

// EffectiveCapacity returns resident lines per physical set — the
// compression capacity multiplier of Table 5 (1.0 for a warm Alloy).
func (c *Cache) EffectiveCapacity() float64 { return c.inner.EffectiveCapacity() }

// CIPAccuracy returns the index predictor's accuracy over scored
// predictions (Section 5.3; ~94% in the paper).
func (c *Cache) CIPAccuracy() float64 { return c.inner.CIP().Accuracy() }

// CompressedSize returns the hybrid FPC+BDI compressed size of a 64-byte
// line, the quantity DICE's insertion threshold tests.
func CompressedSize(line []byte) int { return compress.CompressedSize(line) }

// PairSize returns the compressed size of two adjacent lines packed
// together with shared tag and base (Section 4.2).
func PairSize(a, b []byte) int { return compress.PairSize(a, b) }
