package core

import (
	"encoding/binary"
	"testing"

	"dice/internal/dram"
)

// stubData serves compressible lines for even pages and incompressible
// lines for odd pages.
type stubData struct{}

func (stubData) Line(line uint64) []byte {
	buf := make([]byte, 64)
	if (line>>6)%2 == 0 {
		base := uint32(0x50000000)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], base+uint32(line)+uint32(i*13))
		}
	} else {
		h := line*0x9E3779B97F4A7C15 + 1
		for i := 0; i < 8; i++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			binary.LittleEndian.PutUint64(buf[i*8:], h)
		}
	}
	return buf
}

func TestFacadeMissInstallHit(t *testing.T) {
	c := New(Config{Sets: 256, Design: DICE, Data: stubData{}})
	r := c.Read(0, 42)
	if r.Hit {
		t.Fatal("cold read must miss")
	}
	c.Install(r.Done, 42, false)
	if !c.Contains(42) {
		t.Fatal("installed line not resident")
	}
	r2 := c.Read(r.Done+100, 42)
	if !r2.Hit || r2.Done <= r.Done {
		t.Fatalf("expected later hit, got %+v", r2)
	}
	s := c.Stats()
	if s.Reads != 2 || s.ReadHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if c.DRAMStats().Accesses() == 0 {
		t.Fatal("device saw no traffic")
	}
}

func TestFacadeDesigns(t *testing.T) {
	for _, d := range []Design{Alloy, CompressTSI, CompressBAI, DICE} {
		var data DataSource
		if d != Alloy {
			data = stubData{}
		}
		c := New(Config{Sets: 128, Design: d, Data: data})
		r := c.Read(0, 7)
		if r.Hit {
			t.Fatalf("%v: cold hit", d)
		}
		c.Install(r.Done, 7, true)
		if !c.Contains(7) {
			t.Fatalf("%v: line lost", d)
		}
	}
}

func TestFacadeKNL(t *testing.T) {
	c := New(Config{Sets: 128, Design: DICE, KNL: true, Data: stubData{}})
	c.Install(0, 3, false)
	if !c.Read(1000, 3).Hit {
		t.Fatal("KNL organization should still hit")
	}
}

func TestFacadeCustomDRAM(t *testing.T) {
	cfg := dram.DDRConfig()
	c := New(Config{Sets: 128, Design: Alloy, DRAM: &cfg})
	c.Read(0, 1)
	if c.DRAMStats().Reads != 1 {
		t.Fatal("custom device not used")
	}
}

func TestFacadeEffectiveCapacity(t *testing.T) {
	c := New(Config{Sets: 128, Design: CompressBAI, Data: stubData{}})
	// Fill with even-page (compressible) buddies.
	for line := uint64(0); line < 256; line += 2 {
		page := (line >> 6)
		if page%2 != 0 {
			continue
		}
		c.Install(0, line, false)
		c.Install(0, line+1, false)
	}
	if c.EffectiveCapacity() <= 0 {
		t.Fatal("no lines resident")
	}
}

func TestFacadeCompressHelpers(t *testing.T) {
	zero := make([]byte, 64)
	if CompressedSize(zero) != 0 {
		t.Fatal("zero line should compress to nothing")
	}
	if PairSize(zero, zero) != 0 {
		t.Fatal("zero pair should compress to nothing")
	}
	if CompressedSize(stubData{}.Line(65)) != 64 {
		t.Fatal("noise should not compress")
	}
}

func TestDesignString(t *testing.T) {
	names := map[Design]string{
		Alloy: "alloy", CompressTSI: "compress-tsi",
		CompressBAI: "compress-bai", DICE: "dice", Design(9): "design(9)",
	}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("Design(%d).String() = %q", d, d.String())
		}
	}
}

func TestFacadeCIPExercised(t *testing.T) {
	c := New(Config{Sets: 1024, Design: DICE, Data: stubData{}})
	for i := 0; i < 5000; i++ {
		line := uint64(i*7) % 4096
		r := c.Read(uint64(i)*50, line)
		if !r.Hit {
			c.Install(r.Done, line, false)
		}
	}
	if c.CIPAccuracy() <= 0 {
		t.Fatal("CIP never scored")
	}
}
