// Package clidoc keeps the README's CLI flag tables honest: it
// renders a command's flag.FlagSet as a markdown table, splices it
// between per-command HTML comment markers in a document, and — the
// part wired into every command's tests — verifies the document still
// matches the live registrations, so a flag added, renamed, or
// re-defaulted without a doc update fails `go test` instead of
// rotting silently. Each cmd registers its flags through one
// registerFlags function shared by main and its TestFlagDocsCurrent.
package clidoc

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// Table renders every flag of fs as a markdown table, one row per
// flag in lexical order (flag.VisitAll order), pipes in usage strings
// escaped. Defaults render in backticks; an empty default renders as
// an empty cell.
func Table(fs *flag.FlagSet) string {
	var b strings.Builder
	b.WriteString("| Flag | Default | Purpose |\n|---|---|---|\n")
	fs.VisitAll(func(f *flag.Flag) {
		def := ""
		if f.DefValue != "" {
			def = "`" + f.DefValue + "`"
		}
		fmt.Fprintf(&b, "| `-%s` | %s | %s |\n", f.Name, def, escape(f.Usage))
	})
	return b.String()
}

// escape neutralizes markdown table syntax inside a usage string.
func escape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}

// markers returns the begin/end comment markers delimiting name's
// table in a document.
func markers(name string) (string, string) {
	return "<!-- flagdocs:" + name + " -->", "<!-- /flagdocs:" + name + " -->"
}

// splice replaces the block between name's markers in doc with table,
// keeping the markers. The document must contain exactly one
// begin/end pair, begin before end.
func splice(doc, name, table string) (string, error) {
	begin, end := markers(name)
	bi := strings.Index(doc, begin)
	ei := strings.Index(doc, end)
	if bi < 0 || ei < 0 || ei < bi {
		return "", fmt.Errorf("clidoc: document has no %q/%q marker pair", begin, end)
	}
	if strings.Index(doc[bi+len(begin):], begin) >= 0 {
		return "", fmt.Errorf("clidoc: document has duplicate %q markers", begin)
	}
	return doc[:bi+len(begin)] + "\n" + table + doc[ei:], nil
}

// Verify checks that the document at path holds exactly Table(fs)
// between name's markers, returning a descriptive error when the
// table has drifted from the live flag registrations.
func Verify(path, name string, fs *flag.FlagSet) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("clidoc: %w", err)
	}
	want, err := splice(string(doc), name, Table(fs))
	if err != nil {
		return err
	}
	if string(doc) != want {
		return fmt.Errorf("clidoc: %s: the %s flag table has drifted from the flag registrations", path, name)
	}
	return nil
}

// Update rewrites name's table in the document at path from the live
// registrations (the -update path of each TestFlagDocsCurrent).
func Update(path, name string, fs *flag.FlagSet) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("clidoc: %w", err)
	}
	out, err := splice(string(doc), name, Table(fs))
	if err != nil {
		return err
	}
	if out == string(doc) {
		return nil
	}
	return os.WriteFile(path, []byte(out), 0o644)
}
