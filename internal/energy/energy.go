// Package energy models off-chip memory-system power, energy and
// energy-delay-product (EDP) for the heterogeneous system: the stacked
// DRAM behind the L4 cache plus the DDR main memory. The model is
// event-based — each row activation, column access and transferred byte
// carries a fixed energy, plus background power proportional to run
// length — which is sufficient for the paper's Figure 14, where DICE's
// savings come entirely from performing fewer DRAM events and finishing
// sooner.
//
// Constants are in arbitrary energy units with DDR per-byte transfer
// costing 4x the on-package stacked interface, the accepted ballpark for
// off-chip vs. on-package signaling (pJ/bit ratios from the HBM/DDR
// literature).
package energy

import "dice/internal/dram"

// Coefficients of the event-energy model, per device class.
type Coefficients struct {
	ActivateEnergy  float64 // per row activation
	AccessEnergy    float64 // per column read/write command
	ByteEnergy      float64 // per byte transferred
	BackgroundPower float64 // per CPU cycle
}

// HBMCoefficients is the on-package stacked DRAM cost model.
func HBMCoefficients() Coefficients {
	return Coefficients{
		ActivateEnergy:  90,
		AccessEnergy:    25,
		ByteEnergy:      0.5,
		BackgroundPower: 0.06,
	}
}

// DDRCoefficients is the off-chip DIMM cost model: signaling across the
// board costs ~4x per byte.
func DDRCoefficients() Coefficients {
	return Coefficients{
		ActivateEnergy:  120,
		AccessEnergy:    35,
		ByteEnergy:      2.0,
		BackgroundPower: 0.03,
	}
}

// DeviceEnergy computes the energy of one device over a run.
func DeviceEnergy(c Coefficients, s dram.Stats, cycles uint64) float64 {
	dynamic := c.ActivateEnergy*float64(s.Activates()) +
		c.AccessEnergy*float64(s.Accesses()) +
		c.ByteEnergy*float64(s.BytesRead+s.BytesWritten)
	return dynamic + c.BackgroundPower*float64(cycles)
}

// Breakdown is a run's aggregate energy report.
type Breakdown struct {
	HBMEnergy float64
	DDREnergy float64
	Cycles    uint64
}

// Total returns total energy.
func (b Breakdown) Total() float64 { return b.HBMEnergy + b.DDREnergy }

// Power returns average power (energy per cycle).
func (b Breakdown) Power() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return b.Total() / float64(b.Cycles)
}

// EDP returns the energy-delay product.
func (b Breakdown) EDP() float64 { return b.Total() * float64(b.Cycles) }

// Compute builds a Breakdown from both devices' stats and the run length.
func Compute(hbm, ddr dram.Stats, cycles uint64) Breakdown {
	return Breakdown{
		HBMEnergy: DeviceEnergy(HBMCoefficients(), hbm, cycles),
		DDREnergy: DeviceEnergy(DDRCoefficients(), ddr, cycles),
		Cycles:    cycles,
	}
}
