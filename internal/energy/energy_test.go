package energy

import (
	"testing"

	"dice/internal/dram"
)

func TestDeviceEnergyMonotone(t *testing.T) {
	c := HBMCoefficients()
	small := dram.Stats{Reads: 10, RowMisses: 5, BytesRead: 800}
	big := dram.Stats{Reads: 100, RowMisses: 50, BytesRead: 8000}
	if DeviceEnergy(c, small, 1000) >= DeviceEnergy(c, big, 1000) {
		t.Fatal("more events must cost more energy")
	}
	if DeviceEnergy(c, small, 1000) >= DeviceEnergy(c, small, 100000) {
		t.Fatal("longer runs must cost more background energy")
	}
}

func TestDDRBytesCostMoreThanHBM(t *testing.T) {
	s := dram.Stats{Reads: 1, BytesRead: 6400}
	hbm := DeviceEnergy(HBMCoefficients(), s, 0)
	ddr := DeviceEnergy(DDRCoefficients(), s, 0)
	if ddr <= hbm {
		t.Fatal("off-chip transfers must cost more than on-package")
	}
}

func TestBreakdown(t *testing.T) {
	hbm := dram.Stats{Reads: 100, RowMisses: 20, BytesRead: 8000}
	ddr := dram.Stats{Reads: 10, RowMisses: 5, BytesRead: 640}
	b := Compute(hbm, ddr, 10000)
	if b.Total() != b.HBMEnergy+b.DDREnergy {
		t.Fatal("total mismatch")
	}
	if b.Power() <= 0 {
		t.Fatal("power must be positive")
	}
	if b.EDP() != b.Total()*10000 {
		t.Fatal("EDP mismatch")
	}
	var zero Breakdown
	if zero.Power() != 0 {
		t.Fatal("zero-cycle power must be 0")
	}
}

func TestFewerEventsLowerEDP(t *testing.T) {
	// A configuration that both reduces accesses and finishes earlier
	// (what DICE does) must strictly reduce energy and EDP.
	baseHBM := dram.Stats{Reads: 1000, Writes: 300, RowMisses: 600, BytesRead: 80000, BytesWritten: 24000}
	baseDDR := dram.Stats{Reads: 500, Writes: 150, RowMisses: 400, BytesRead: 32000, BytesWritten: 9600}
	diceHBM := dram.Stats{Reads: 700, Writes: 250, RowMisses: 400, BytesRead: 56000, BytesWritten: 20000}
	diceDDR := dram.Stats{Reads: 300, Writes: 100, RowMisses: 250, BytesRead: 19200, BytesWritten: 6400}
	base := Compute(baseHBM, baseDDR, 100000)
	dice := Compute(diceHBM, diceDDR, 80000)
	if dice.Total() >= base.Total() {
		t.Fatal("fewer events must reduce energy")
	}
	if dice.EDP() >= base.EDP() {
		t.Fatal("EDP must drop with fewer events and shorter runtime")
	}
}
