package parallel

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dice/internal/leakcheck"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var counts [n]atomic.Int32
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ForEach(8, 0, func(int) { t.Fatal("fn called for empty range") })
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order %v not ascending", order)
		}
	}
}

func TestForEachPanicPropagatesAndCancels(t *testing.T) {
	var started atomic.Int32
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := p.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", p)
		}
		// Cancellation: with 2 workers and an early panic, far fewer
		// than all items should have started. The bound is loose (the
		// other worker may claim a few items before seeing the flag)
		// but a full run of 10k items would clearly violate it.
		if n := started.Load(); n > 1000 {
			t.Fatalf("%d items started after panic; cancellation failed", n)
		}
	}()
	ForEach(2, 10_000, func(i int) {
		started.Add(1)
		if i == 0 {
			panic("boom")
		}
	})
}

func TestForEachConcurrentWritesToSlots(t *testing.T) {
	const n = 200
	out := make([]int, n)
	ForEach(8, n, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestLoggerLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	var wg sync.WaitGroup
	const writers, lines = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				l.Printf("worker%d line with several words %d\n", w, i)
			}
		}(w)
	}
	wg.Wait()
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != writers*lines {
		t.Fatalf("%d lines, want %d", len(got), writers*lines)
	}
	for _, line := range got {
		if !strings.HasPrefix(line, "worker") || !strings.Contains(line, "words") {
			t.Fatalf("torn line %q", line)
		}
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	// Pre-cancelled: nothing runs, serial and pooled alike.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		ForEachCtx(ctx, workers, 100, func(i int) { ran.Add(1) })
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d items ran under a cancelled context", workers, ran.Load())
		}
	}

	// Cancelling mid-run stops new items; in-flight ones complete.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	ForEachCtx(ctx, 2, 1000, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if n := ran.Load(); n < 5 || n >= 1000 {
		t.Fatalf("cancelled pool ran %d of 1000 items", n)
	}
}

// The pool must shut down clean: every worker goroutine gone after
// ForEach returns, whether the run completed, was cancelled, or
// panicked. The stdlib-only leak checker retries, so asynchronous
// goroutine teardown does not flake it.
func TestPoolShutdownLeaksNoGoroutines(t *testing.T) {
	defer leakcheck.Check(t)()

	// Completed run.
	ForEach(8, 200, func(i int) {})

	// Cancelled run.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	ForEachCtx(ctx, 4, 1000, func(i int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})

	// Panicking run (the panic re-surfaces in this goroutine).
	func() {
		defer func() { recover() }()
		ForEach(4, 100, func(i int) {
			if i == 0 {
				panic("boom")
			}
		})
	}()
}
