// Package parallel provides the small concurrency primitives behind the
// experiment runner's worker pool: a bounded fan-out over an index space
// with deterministic claim order, first-panic cancellation, and a
// line-atomic logger for interleaved progress output.
//
// The primitives deliberately carry no results: callers that need
// per-item outputs write them to distinct slice slots, which is
// race-free because no two workers share an index.
package parallel

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n > 0 is used as given;
// n <= 0 means one worker per available CPU (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (capped at n; workers <= 0 means one per CPU). Workers claim indices
// in ascending order. With one worker the items run serially in the
// caller's goroutine — the bit-exact reference schedule.
//
// If any fn panics, no further items are started; once the in-flight
// items return, ForEach re-panics the first panic value in the caller's
// goroutine, so a panicking simulation cancels the pool rather than
// crashing a bare worker goroutine.
func ForEach(workers, n int, fn func(i int)) {
	ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// no further items are started. Items already running complete — fn is
// never interrupted mid-flight — so cancellation granularity is one
// item. ForEachCtx returns once the in-flight items finish; it does not
// report which items were skipped (callers observe that through their
// own result slots).
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}

	var (
		next    atomic.Int64
		aborted atomic.Bool
		mu      sync.Mutex
		first   any // first panic value, under mu
		wg      sync.WaitGroup
	)
	runOne := func(i int) {
		defer func() {
			if p := recover(); p != nil {
				aborted.Store(true)
				mu.Lock()
				if first == nil {
					first = p
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !aborted.Load() && ctx.Err() == nil {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
}

// Logger serializes formatted writes so concurrent workers' progress
// lines never interleave mid-line. The zero value is not usable; wrap a
// writer with NewLogger.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a line-atomic logger over w.
func NewLogger(w io.Writer) *Logger { return &Logger{w: w} }

// Printf formats and writes one message under the logger's lock.
func (l *Logger) Printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format, args...)
}
