// Package leakcheck is a stdlib-only goroutine-leak detector for
// tests: snapshot the goroutine count before the code under test,
// then verify — with retries, because goroutine teardown is
// asynchronous — that the count has returned to its starting level
// afterwards. It exists so the worker-pool and daemon lifecycle tests
// can assert "zero goroutines leaked" without importing anything
// outside the standard library.
//
// Usage:
//
//	defer leakcheck.Check(t)()
//
// The deferred call fails the test (with a full goroutine dump) if,
// after the retry window, more goroutines are running than when Check
// was called.
package leakcheck

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"time"
)

// TB is the subset of testing.TB the checker needs; tests pass *testing.T,
// the package's own tests substitute a recorder to exercise the failure
// path.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// retryWindow bounds how long Verify waits for goroutine teardown to
// settle. Exits of finished goroutines are asynchronous — a worker
// that has returned may still be counted for a few scheduler ticks —
// so the checker polls rather than asserting immediately. A variable
// so the package's own failure-path test can shrink the window.
var retryWindow = 5 * time.Second

// retryStep is the poll interval within the retry window.
var retryStep = 20 * time.Millisecond

// Check snapshots the current goroutine count and returns a function
// that verifies the count has settled back to (or below) that level.
// Defer the returned function around the code under test.
func Check(t TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		Verify(t, before)
	}
}

// Verify fails t if, after the retry window, more than before
// goroutines are running. On failure the report includes the current
// goroutine dump so the leaked stacks are identifiable.
func Verify(t TB, before int) {
	t.Helper()
	deadline := time.Now().Add(retryWindow)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(retryStep)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "goroutine leak: %d before, %d after %v\n", before, now, retryWindow)
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(&buf, 1)
	}
	t.Errorf("%s", buf.String())
}
