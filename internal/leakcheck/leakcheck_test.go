package leakcheck

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// recorder is a TB that records failures instead of failing, so the
// checker's failure path is testable.
type recorder struct {
	failures []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
}

// Goroutines that exit before verification must not trip the checker,
// even though their teardown is asynchronous.
func TestNoLeakPasses(t *testing.T) {
	done := Check(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
	done()
}

// A goroutine still alive after the retry window must fail the check,
// and the failure must carry the goroutine dump.
func TestLeakFails(t *testing.T) {
	defer func(w time.Duration) { retryWindow = w }(retryWindow)
	retryWindow = 200 * time.Millisecond

	rec := &recorder{}
	before := Check(rec)
	quit := make(chan struct{})
	defer close(quit)
	started := make(chan struct{})
	go func() {
		close(started)
		<-quit
	}()
	<-started

	// Shrink the window for the test by verifying directly against a
	// deliberately stale snapshot: the leaked goroutine keeps the
	// count above it for the whole window.
	start := time.Now()
	before()
	if len(rec.failures) != 1 {
		t.Fatalf("got %d failures, want 1 (elapsed %v)", len(rec.failures), time.Since(start))
	}
	if !strings.Contains(rec.failures[0], "goroutine leak") {
		t.Fatalf("failure message %q does not name the leak", rec.failures[0])
	}
	if !strings.Contains(rec.failures[0], "goroutine profile") {
		t.Fatalf("failure message lacks the goroutine dump:\n%s", rec.failures[0])
	}
}
