package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	var misses Counter
	misses.Add(5)
	if r := c.Ratio(misses); r != 0.5 {
		t.Fatalf("ratio = %v", r)
	}
	if r := Counter(0).Ratio(0); r != 0 {
		t.Fatalf("empty ratio = %v", r)
	}
	if f := c.Frac(10); f != 0.5 {
		t.Fatalf("frac = %v", f)
	}
	if f := c.Frac(0); f != 0 {
		t.Fatalf("zero-total frac = %v", f)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 1, 1, 5, 9, 20, -3} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Fatalf("count = %d", h.Count)
	}
	// 20 clamps to 9, -3 clamps to 0.
	if h.Buckets[9] != 2 || h.Buckets[0] != 2 {
		t.Fatalf("clamping broken: %v", h.Buckets)
	}
	if m := h.Mean(); m != float64(0+1+1+5+9+9+0)/7 {
		t.Fatalf("mean = %v", m)
	}
	if f := h.FracAtMost(1); math.Abs(f-4.0/7) > 1e-12 {
		t.Fatalf("fracAtMost(1) = %v", f)
	}
	if f := h.FracAtMost(100); f != 1 {
		t.Fatalf("fracAtMost(100) = %v", f)
	}
	if p := h.Percentile(0.5); p != 1 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(1.0); p != 9 {
		t.Fatalf("p100 = %d", p)
	}
	empty := NewHistogram(4)
	if empty.Mean() != 0 || empty.FracAtMost(2) != 0 || empty.Percentile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Add("b", 2)
	s.Add("a", 1)
	s.Add("b", 3)
	if s.Get("b") != 5 || s.Get("a") != 1 || s.Get("zzz") != 0 {
		t.Fatal("get values wrong")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v (insertion order)", names)
	}
	str := s.String()
	if !strings.Contains(str, "a=1") || !strings.Contains(str, "b=5") {
		t.Fatalf("string = %q", str)
	}
	if strings.Index(str, "a=1") > strings.Index(str, "b=5") {
		t.Fatal("String() must sort by name")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean = %v", g)
	}
	if g := GeoMean(nil); g != 1 {
		t.Fatalf("empty geomean = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 1 {
		t.Fatalf("non-positive geomean = %v", g)
	}
	if g := GeoMean([]float64{3, -1, 3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("mixed geomean = %v", g)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
}

// Property: GeoMean of positive values lies between min and max.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram count equals the number of observations and
// FracAtMost is monotone.
func TestQuickHistogramMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(64)
		for _, v := range vals {
			h.Observe(int(v))
		}
		if h.Count != uint64(len(vals)) {
			return false
		}
		prev := 0.0
		for v := 0; v < 64; v++ {
			f := h.FracAtMost(v)
			if f < prev {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
