// Package stats provides lightweight counters, histograms and ratio helpers
// used by every component of the simulator. All types are plain values with
// no locking: the simulator is single-goroutine by design (cycle-driven), so
// the hot-path counter increments stay free of synchronization cost.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter uint64

// Inc adds one event.
func (c *Counter) Inc() { *c++ }

// Add adds n events.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// Ratio returns c / (c + other), or 0 when both are zero. It is the
// canonical hit-rate helper: hits.Ratio(misses).
func (c Counter) Ratio(other Counter) float64 {
	total := uint64(c) + uint64(other)
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// Frac returns c / total, or 0 when total is zero.
func (c Counter) Frac(total Counter) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// Histogram is a fixed-bucket histogram over small non-negative integer
// samples (e.g. compressed sizes 0..72, queue depths). Samples beyond the
// last bucket are clamped into it.
type Histogram struct {
	Buckets []uint64
	Count   uint64
	Sum     uint64
}

// NewHistogram returns a histogram with buckets [0, n).
func NewHistogram(n int) *Histogram {
	return &Histogram{Buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
	}
	h.Buckets[v]++
	h.Count++
	h.Sum += uint64(v)
}

// Mean returns the average observed sample.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// FracAtMost returns the fraction of samples <= v.
func (h *Histogram) FracAtMost(v int) float64 {
	if h.Count == 0 {
		return 0
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
	}
	var n uint64
	for i := 0; i <= v; i++ {
		n += h.Buckets[i]
	}
	return float64(n) / float64(h.Count)
}

// Percentile returns the smallest bucket index at which the cumulative
// fraction of samples reaches p (0..1).
func (h *Histogram) Percentile(p float64) int {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if cum >= target {
			return i
		}
	}
	return len(h.Buckets) - 1
}

// Set is an ordered collection of named counters, useful for dumping
// component stats in a stable order.
type Set struct {
	names  []string
	values map[string]uint64
}

// NewSet returns an empty stats set.
func NewSet() *Set {
	return &Set{values: make(map[string]uint64)}
}

// Add accumulates n into the named counter, creating it on first use.
func (s *Set) Add(name string, n uint64) {
	if _, ok := s.values[name]; !ok {
		s.names = append(s.names, name)
	}
	s.values[name] += n
}

// Get returns the named counter value (0 if absent).
func (s *Set) Get(name string) uint64 { return s.values[name] }

// Names returns the counter names in insertion order.
func (s *Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// String renders the set as "name=value" lines sorted by name.
func (s *Set) String() string {
	names := make([]string, len(s.names))
	copy(names, s.names)
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, s.values[n])
	}
	return b.String()
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// skipped; an empty input yields 1.0 (the multiplicative identity), which is
// the natural normalization for speedup aggregation.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
