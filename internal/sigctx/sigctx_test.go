package sigctx

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// A SIGTERM delivered to the process must cancel the context. (The
// test sends the signal to itself; the handler is registered for the
// whole process, so this exercises the real delivery path.)
func TestSIGTERMCancels(t *testing.T) {
	ctx, stop := WithShutdown(context.Background())
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled within 5s of SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}

// stop must cancel the context even when no signal ever arrives, so
// `defer stop()` never leaks the handler goroutine.
func TestStopCancels(t *testing.T) {
	ctx, stop := WithShutdown(context.Background())
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop() did not cancel the context")
	}
}

// Cancelling the parent flows through to the derived context.
func TestParentCancelFlowsThrough(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := WithShutdown(parent)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
}
