// Package sigctx is the one shared signal-to-context bridge for every
// DICE process: the CLIs (dicebench, dicesim) and the experiment
// daemon (dicebenchd) all derive their shutdown context here, so
// SIGINT and SIGTERM behave identically everywhere — first signal
// cancels the context (cooperative shutdown: queued work is skipped,
// in-flight work completes, partial results print), second signal
// falls through to the Go runtime's default handler and terminates
// the process immediately.
package sigctx

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// Signals are the shutdown signals every DICE process listens for:
// interactive interrupt (Ctrl-C) and the supervisor's terminate.
var Signals = []os.Signal{os.Interrupt, syscall.SIGTERM}

// WithShutdown returns a child of parent that is cancelled on the
// first SIGINT or SIGTERM. The signal handler unregisters itself as
// soon as the context is done (whether by signal or by the returned
// stop function), so a second signal kills the process the default
// way — the escape hatch when cooperative shutdown hangs.
//
// The returned stop function releases the handler and must be called
// on every exit path (defer it).
func WithShutdown(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, Signals...)
	go func() {
		// Once cancelled — by signal or programmatically — drop the
		// handler so the next signal is fatal rather than absorbed.
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
