package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"dice/internal/obs"
	"dice/internal/sim"
)

// simcoreRefs is the sampled per-core reference budget for the
// differential sweep: large enough to cross the warm boundary and
// exercise contention, small enough that the cycle-stepped core's
// cycle-by-cycle scan stays affordable across the whole matrix.
const simcoreRefs = 1_200

// sampleCells picks a bounded, deterministic sample of an experiment's
// cell matrix: the first and last cell (distinct configs usually sit at
// the corners of the config x workload product).
func sampleCells(cells []Cell) []Cell {
	if len(cells) <= 2 {
		return cells
	}
	return []Cell{cells[0], cells[len(cells)-1]}
}

// TestEventCoreMatchesReference sweeps every experiment's cell configs
// (sampled) and asserts the discrete-event core and the cycle-stepped
// reference produce byte-identical Results — including the embedded
// dcache.Stats and fault.Stats — and byte-identical obs CSV and JSON
// epoch exports.
func TestEventCoreMatchesReference(t *testing.T) {
	r := NewRunner(simcoreRefs)
	seen := make(map[string]bool)
	for _, e := range All() {
		if e.Cells == nil {
			continue // fig4 runs no simulations
		}
		cells := e.Cells(r)
		if len(cells) == 0 {
			t.Fatalf("%s: no cells", e.ID)
		}
		for _, cell := range sampleCells(cells) {
			if seen[cell.Key] {
				continue
			}
			seen[cell.Key] = true
			cell := cell
			t.Run(e.ID+"/"+cell.Key, func(t *testing.T) {
				cfg := cell.Cfg
				cfg.RefsPerCore = simcoreRefs

				evOb := &obs.Observer{Rec: obs.NewRecorder(20_000, 0)}
				evRes, _, err := sim.RunEventObserved(cfg, cell.W, evOb)
				if err != nil {
					t.Fatal(err)
				}
				refOb := &obs.Observer{Rec: obs.NewRecorder(20_000, 0)}
				refRes, err := sim.RunReferenceObserved(cfg, cell.W, refOb)
				if err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(evRes, refRes) {
					t.Fatalf("results diverged\nevent: %+v\nref:   %+v", evRes, refRes)
				}
				if evRes.L4 != refRes.L4 {
					t.Fatal("dcache.Stats diverged")
				}
				if evRes.Fault != refRes.Fault {
					t.Fatal("fault.Stats diverged")
				}

				var evCSV, refCSV, evJSON, refJSON bytes.Buffer
				if err := evOb.Rec.Series().WriteCSV(&evCSV); err != nil {
					t.Fatal(err)
				}
				if err := refOb.Rec.Series().WriteCSV(&refCSV); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(evCSV.Bytes(), refCSV.Bytes()) {
					t.Error("obs CSV exports differ")
				}
				if err := evOb.Rec.Series().WriteJSON(&evJSON); err != nil {
					t.Fatal(err)
				}
				if err := refOb.Rec.Series().WriteJSON(&refJSON); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(evJSON.Bytes(), refJSON.Bytes()) {
					t.Error("obs JSON exports differ")
				}
			})
		}
	}
	// 19 experiments contribute up to 2 corner cells each; corners shared
	// between experiments (base|mcf and friends) dedup away.
	if len(seen) < 15 {
		t.Fatalf("sampled only %d distinct cells — sweep shrank?", len(seen))
	}
}

// TestReportsBytesIdenticalAcrossCores renders full experiment reports
// under -sim-core=event and -sim-core=cycle (via the process toggle the
// CLIs use) at worker counts 1 and 8, and requires byte-identical
// report text. This is the end-to-end form of the differential
// guarantee: the runner's memoization, worker pool, and report
// formatting all sit between the core and the bytes.
func TestReportsBytesIdenticalAcrossCores(t *testing.T) {
	if sim.CurrentCoreKind() != sim.CoreEvent {
		t.Fatal("default core is not event")
	}
	for _, id := range []string{"metrics-demo", "ablate-index"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			render := func(k sim.CoreKind) string {
				sim.SetCoreKind(k)
				defer sim.SetCoreKind(sim.CoreEvent)
				r := NewRunner(simcoreRefs)
				r.Workers = workers
				return e.Run(r).String()
			}
			ev := render(sim.CoreEvent)
			cy := render(sim.CoreCycle)
			if ev != cy {
				t.Errorf("%s at workers=%d: event and cycle reports differ:\n%s",
					id, workers, firstDiff(ev, cy))
			}
		}
	}
}
