package experiments

import (
	"fmt"

	"dice/internal/compress"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// Each figure driver declares its simulation matrix as a cells function
// (registered in All so RunAll can batch across experiments) and
// prefetches it through the worker pool before assembling rows.

func fig01Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "base-2cap", "base-2bw", "base-2both"}, workloads.All26())
}

// Fig01Potential regenerates Figure 1(f): the speedup available from an
// idealized DRAM cache with double capacity, double bandwidth, or both —
// the headroom DICE aims at. Paper: ~1.10 / (BW benefit) / ~1.22.
func Fig01Potential(r *Runner) *Report {
	r.Prefetch(fig01Cells(r)...)
	rep := &Report{ID: "fig1", Title: "Potential speedup of 2x capacity / 2x BW / 2x both",
		Columns: []string{"2xCap", "2xBW", "2xBoth"}}
	for _, w := range workloads.All26() {
		rep.AddRow(w.Name, w.Suite,
			r.Speedup("base-2cap", w),
			r.Speedup("base-2bw", w),
			r.Speedup("base-2both", w))
	}
	rep.GroupGeoMeans()
	rep.Notes = append(rep.Notes,
		"paper Fig 1(f): 2xCap ~1.10, 2xBoth ~1.22 average over ALL26")
	return rep
}

// Fig04Compressibility regenerates Figure 4: per workload, the fraction
// of installed lines compressing to <=32B and <=36B, and of adjacent
// pairs to <=68B. No simulation needed — this is a property of the data
// images. Paper: 52% of pairs fit 68B on average.
func Fig04Compressibility(r *Runner) *Report {
	rep := &Report{ID: "fig4", Title: "Fraction of compressible lines",
		Columns: []string{"Single<=32", "Single<=36", "Double<=68"}}
	const samples = 4000
	for _, w := range workloads.All26() {
		insts := w.Build(10)
		var le32, le36, pair68, n, pairs int
		for ci := 0; ci < len(insts); ci += 4 { // sample a few cores
			in := insts[ci]
			span := in.FootprintLines
			if span == 0 {
				continue
			}
			step := span/samples + 1
			for line := uint64(0); line < span; line += step {
				sz := compress.CompressedSize(in.Data(line))
				n++
				if sz <= 32 {
					le32++
				}
				if sz <= 36 {
					le36++
				}
				if line%2 == 0 && line+1 < span {
					pairs++
					if compress.PairSize(in.Data(line), in.Data(line+1)) <= 68 {
						pair68++
					}
				}
			}
		}
		if n == 0 {
			continue
		}
		rep.AddRow(w.Name, w.Suite,
			float64(le32)/float64(n),
			float64(le36)/float64(n),
			float64(pair68)/float64(pairs))
	}
	// Figure 4 averages arithmetically across workloads.
	var s32, s36, s68 float64
	for _, row := range rep.Rows {
		s32 += row.Get("Single<=32")
		s36 += row.Get("Single<=36")
		s68 += row.Get("Double<=68")
	}
	n := float64(len(rep.Rows))
	rep.Rows = append(rep.Rows, Row{Name: "ALL26", Values: map[string]float64{
		"Single<=32": s32 / n, "Single<=36": s36 / n, "Double<=68": s68 / n,
	}})
	rep.Notes = append(rep.Notes,
		"paper Fig 4: on average 52% of adjacent pairs compress to <=68B")
	return rep
}

// Fig07StaticIndexing regenerates Figure 7: compression under TSI and
// BAI against the idealized caches. Paper: TSI +7%, BAI ~0% (wins on
// compressible workloads, big losses on lbm/libq), 2xBoth +22%.
func fig07Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "tsi", "bai", "base-2cap", "base-2both"}, workloads.All26())
}

// Fig07StaticIndexing regenerates Figure 7: speedup of the TSI and
// BAI static-indexing schemes over the uncompressed Alloy baseline,
// bracketed by the doubled-capacity/doubled-both idealizations.
func Fig07StaticIndexing(r *Runner) *Report {
	r.Prefetch(fig07Cells(r)...)
	rep := &Report{ID: "fig7", Title: "Speedup of TSI and BAI static indexing",
		Columns: []string{"TSI", "BAI", "2xCap", "2xCap2xBW"}}
	for _, w := range workloads.All26() {
		rep.AddRow(w.Name, w.Suite,
			r.Speedup("tsi", w),
			r.Speedup("bai", w),
			r.Speedup("base-2cap", w),
			r.Speedup("base-2both", w))
	}
	rep.GroupGeoMeans()
	rep.Notes = append(rep.Notes,
		"paper Fig 7: TSI +7% avg; BAI ~baseline avg with per-workload swings")
	return rep
}

// Fig10DICE regenerates Figure 10, the headline result. Paper: TSI +7%,
// BAI +0.1%, DICE +19.0%, double-capacity double-bandwidth +21.9%.
func fig10Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "tsi", "bai", "dice", "base-2both"}, workloads.All26())
}

// Fig10DICE regenerates Figure 10, the paper's headline result:
// DICE's dynamic index selection against TSI and BAI, with the
// doubled-capacity-and-bandwidth ideal as the upper bracket.
func Fig10DICE(r *Runner) *Report {
	r.Prefetch(fig10Cells(r)...)
	rep := &Report{ID: "fig10", Title: "DICE speedup vs static indexing",
		Columns: []string{"TSI", "BAI", "DICE", "2xCap2xBW"}}
	for _, w := range workloads.All26() {
		rep.AddRow(w.Name, w.Suite,
			r.Speedup("tsi", w),
			r.Speedup("bai", w),
			r.Speedup("dice", w),
			r.Speedup("base-2both", w))
	}
	rep.GroupGeoMeans()
	rep.Notes = append(rep.Notes,
		"paper Fig 10: DICE +19.0% avg, within 3% of the 2x/2x design (+21.9%)")
	return rep
}

// Fig11IndexDistribution regenerates Figure 11: of all DICE installs, the
// invariant fraction (TSI == BAI, exactly half by construction) and the
// BAI/TSI split of the rest. Paper: remaining lines skew 52% TSI / 48%
// BAI.
func fig11Cells(r *Runner) []Cell {
	return r.namedCells([]string{"dice"}, workloads.All26())
}

// Fig11IndexDistribution regenerates Figure 11: the fraction of L4
// installs DICE steers to BAI versus TSI indexing per workload.
func Fig11IndexDistribution(r *Runner) *Report {
	r.Prefetch(fig11Cells(r)...)
	rep := &Report{ID: "fig11", Title: "Distribution of BAI and TSI indices under DICE",
		Columns: []string{"Invariant", "BAI", "TSI"}}
	for _, w := range workloads.All26() {
		res := r.Run("dice", w)
		total := float64(res.L4.InstallInvariant + res.L4.InstallBAI + res.L4.InstallTSI)
		if total == 0 {
			continue
		}
		rep.AddRow(w.Name, w.Suite,
			float64(res.L4.InstallInvariant)/total,
			float64(res.L4.InstallBAI)/total,
			float64(res.L4.InstallTSI)/total)
	}
	var sb, st float64
	var n float64
	for _, row := range rep.Rows {
		den := row.Get("BAI") + row.Get("TSI")
		if den > 0 {
			sb += row.Get("BAI") / den
			st += row.Get("TSI") / den
			n++
		}
	}
	if n > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"non-invariant split: %.0f%% BAI / %.0f%% TSI (paper: 48%% / 52%%)",
			100*sb/n, 100*st/n))
	}
	return rep
}

// Fig12KNL regenerates Figure 12: DICE on the Knights-Landing-style
// organization (tags in ECC, no neighbor-tag visibility). Paper: +17.5%,
// within 2% of DICE on Alloy.
func fig12Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "dice-knl", "dice"}, workloads.All26())
}

// Fig12KNL regenerates Figure 12: DICE applied to the KNL-style
// direct-mapped tag organization versus the Alloy organization.
func Fig12KNL(r *Runner) *Report {
	r.Prefetch(fig12Cells(r)...)
	rep := &Report{ID: "fig12", Title: "DICE on the KNL DRAM-cache organization",
		Columns: []string{"DICE-KNL", "DICE-Alloy"}}
	for _, w := range workloads.All26() {
		rep.AddRow(w.Name, w.Suite,
			r.Speedup("dice-knl", w),
			r.Speedup("dice", w))
	}
	rep.GroupGeoMeans()
	rep.Notes = append(rep.Notes,
		"paper Fig 12: KNL-organization DICE +17.5% vs +19.0% on Alloy")
	return rep
}

// Fig13NonIntensive regenerates Figure 13: DICE on the 13 low-MPKI SPEC
// benchmarks. Paper: no degradation anywhere, ~+2% average.
func fig13Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "dice"}, workloads.LowMPKI13())
}

// Fig13NonIntensive regenerates Figure 13: DICE on the 13 low-MPKI
// (non-memory-intensive) workloads, where it must do no harm.
func Fig13NonIntensive(r *Runner) *Report {
	r.Prefetch(fig13Cells(r)...)
	rep := &Report{ID: "fig13", Title: "DICE on non-memory-intensive workloads",
		Columns: []string{"DICE"}}
	var xs []float64
	for _, w := range workloads.LowMPKI13() {
		s := r.Speedup("dice", w)
		rep.AddRow(w.Name, "", s)
		xs = append(xs, s)
	}
	rep.Rows = append(rep.Rows, Row{Name: "gmean",
		Values: map[string]float64{"DICE": geoMean(xs)}})
	rep.Notes = append(rep.Notes,
		"paper Fig 13: ~+2% average, no workload degraded")
	return rep
}

// Fig14Energy regenerates Figure 14: L4+memory power, performance,
// energy and EDP of TSI/BAI/DICE normalized to baseline, averaged over
// ALL26. Paper: DICE energy -24%, EDP -36%.
func fig14Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "tsi", "bai", "dice"}, workloads.All26())
}

// Fig14Energy regenerates Figure 14: memory-system power,
// performance, energy and EDP of TSI/BAI/DICE, normalized to the
// uncompressed baseline.
func Fig14Energy(r *Runner) *Report {
	r.Prefetch(fig14Cells(r)...)
	rep := &Report{ID: "fig14", Title: "Power, performance, energy, EDP (normalized)",
		Columns: []string{"Power", "Performance", "Energy", "EDP"}}
	for _, cfg := range []string{"base", "tsi", "bai", "dice"} {
		var pw, pf, en, edp []float64
		for _, w := range workloads.All26() {
			b := r.Run("base", w)
			t := r.Run(cfg, w)
			pw = append(pw, t.Energy.Power()/b.Energy.Power())
			pf = append(pf, sim.Speedup(b, t))
			en = append(en, t.Energy.Total()/b.Energy.Total())
			edp = append(edp, t.Energy.EDP()/b.Energy.EDP())
		}
		rep.AddRow(cfg, "", geoMean(pw), geoMean(pf), geoMean(en), geoMean(edp))
	}
	rep.Notes = append(rep.Notes,
		"paper Fig 14: DICE reduces energy by 24% and EDP by 36%")
	return rep
}

// Fig15SCC regenerates Figure 15: a Skewed Compressed Cache design on the
// DRAM substrate vs DICE. Paper: SCC's serialized tag accesses cost 22%
// slowdown while DICE gains 19%.
func fig15Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "scc", "dice"}, workloads.All26())
}

// Fig15SCC regenerates Figure 15: the SCC compressed-cache design
// retargeted to a DRAM cache, versus DICE.
func Fig15SCC(r *Runner) *Report {
	r.Prefetch(fig15Cells(r)...)
	rep := &Report{ID: "fig15", Title: "SCC on DRAM cache vs DICE",
		Columns: []string{"SCC", "DICE"}}
	for _, w := range workloads.All26() {
		rep.AddRow(w.Name, w.Suite,
			r.Speedup("scc", w),
			r.Speedup("dice", w))
	}
	rep.GroupGeoMeans()
	rep.Notes = append(rep.Notes,
		"paper Fig 15: SCC -22% (4 DRAM accesses per request), DICE +19%")
	return rep
}

// cipLTTSizes is the Last-Time-Table sweep of Section 5.3.
var cipLTTSizes = []int{512, 2048, 8192}

func cipCells(r *Runner) []Cell {
	var cells []Cell
	for _, w := range workloads.All26() {
		for _, n := range cipLTTSizes {
			cfg := r.config("dice")
			cfg.CIPEntries = n
			cells = append(cells, Cell{
				Key: fmt.Sprintf("dice-cip%d|%s", n, w.Name), Cfg: cfg, W: w,
			})
		}
	}
	return cells
}

// CIPAccuracy regenerates the Section 5.3 study: read-index prediction
// accuracy as the Last-Time Table grows from 512 to 8192 entries.
// Paper: 93.2% at 512 entries rising to 94.1% at 8192; writes 95%.
func CIPAccuracy(r *Runner) *Report {
	r.Prefetch(cipCells(r)...)
	rep := &Report{ID: "cip", Title: "CIP accuracy vs LTT size",
		Columns: []string{"512", "2048", "8192"}}
	sizes := cipLTTSizes
	perSize := make([][]float64, len(sizes))
	for _, w := range workloads.All26() {
		vals := make([]float64, len(sizes))
		for i, n := range sizes {
			cfg := r.config("dice")
			cfg.CIPEntries = n
			res := r.RunConfig(fmt.Sprintf("dice-cip%d|%s", n, w.Name), cfg, w)
			vals[i] = res.CIPAccuracy
			perSize[i] = append(perSize[i], res.CIPAccuracy)
		}
		rep.AddRow(w.Name, w.Suite, vals...)
	}
	avg := make([]float64, len(sizes))
	for i := range sizes {
		avg[i] = mean(perSize[i])
	}
	rep.Rows = append(rep.Rows, Row{Name: "AVG26", Values: map[string]float64{
		"512": avg[0], "2048": avg[1], "8192": avg[2],
	}})
	rep.Notes = append(rep.Notes,
		"paper Sec 5.3: 93.2% (512 entries) to 94.1% (8192); default 2048 = 93.8%")
	return rep
}
