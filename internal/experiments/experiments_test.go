package experiments

import (
	"strings"
	"testing"

	"dice/internal/workloads"
)

// sharedTiny is one memoized runner for the whole test package: the
// baseline and DICE runs that almost every experiment needs execute only
// once. Shape assertions are loose at this size (the full-size run
// happens in dicebench / bench_test.go).
var sharedTiny = NewRunner(15_000)

func tinyRunner() *Runner { return sharedTiny }

func findRow(t *testing.T, rep *Report, name string) Row {
	t.Helper()
	for _, r := range rep.Rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("report %s has no row %q", rep.ID, name)
	return Row{}
}

func TestAllRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	want := []string{"fig1", "fig4", "fig7", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "table4", "table5", "table6", "table7",
		"table8", "cip"}
	for _, id := range want {
		if !ids[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig10"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestByIDErrorListsAllIDs parses the "(have ...)" list out of the
// unknown-id error and checks it names exactly the 20 registered
// experiments — the message is the CLI user's discovery surface.
func TestByIDErrorListsAllIDs(t *testing.T) {
	if n := len(All()); n != 20 {
		t.Fatalf("registry has %d experiments, want 20", n)
	}
	_, err := ByID("nope")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	msg := err.Error()
	open := strings.Index(msg, "(have ")
	if open < 0 || !strings.HasSuffix(msg, ")") {
		t.Fatalf("error message %q lacks the (have ...) id list", msg)
	}
	listed := map[string]bool{}
	for _, id := range strings.Split(msg[open+len("(have "):len(msg)-1], ", ") {
		listed[id] = true
	}
	for _, e := range All() {
		if !listed[e.ID] {
			t.Errorf("error message missing experiment %q: %s", e.ID, msg)
		}
	}
	if len(listed) != len(All()) {
		t.Errorf("error message lists %d ids, registry has %d", len(listed), len(All()))
	}
}

func TestFig04CompressibilityShape(t *testing.T) {
	rep := Fig04Compressibility(tinyRunner())
	// Monotonicity: <=32 implies <=36 for every workload.
	for _, row := range rep.Rows {
		if row.Get("Single<=32") > row.Get("Single<=36")+1e-9 {
			t.Fatalf("%s: <=32 fraction exceeds <=36", row.Name)
		}
	}
	gcc := findRow(t, rep, "gcc")
	libq := findRow(t, rep, "libq")
	if gcc.Get("Double<=68") < 0.5 {
		t.Fatalf("gcc pair compressibility = %.2f, want high", gcc.Get("Double<=68"))
	}
	if libq.Get("Double<=68") > 0.35 {
		t.Fatalf("libq pair compressibility = %.2f, want low", libq.Get("Double<=68"))
	}
	// Paper: ~52% of pairs fit on average; allow a generous band.
	all := findRow(t, rep, "ALL26")
	if avg := all.Get("Double<=68"); avg < 0.35 || avg > 0.75 {
		t.Fatalf("average pair compressibility = %.2f, want ~0.5", avg)
	}
}

func TestFig10Shape(t *testing.T) {
	rep := Fig10DICE(tinyRunner())
	all := findRow(t, rep, "ALL26")
	tsi, bai, dice := all.Get("TSI"), all.Get("BAI"), all.Get("DICE")
	if !(dice > tsi) {
		t.Fatalf("DICE (%.3f) must beat TSI (%.3f) on average", dice, tsi)
	}
	if !(dice > bai) {
		t.Fatalf("DICE (%.3f) must beat BAI (%.3f) on average", dice, bai)
	}
	if dice < 1.05 {
		t.Fatalf("DICE average %.3f, want a clear speedup", dice)
	}
	// Per-workload crossovers: BAI must lose on libq and win on gcc;
	// DICE must not degrade either.
	libq := findRow(t, rep, "libq")
	if libq.Get("BAI") > 0.85 {
		t.Fatalf("libq BAI = %.3f, want thrashing slowdown", libq.Get("BAI"))
	}
	if libq.Get("DICE") < 0.95 {
		t.Fatalf("libq DICE = %.3f, must not degrade", libq.Get("DICE"))
	}
	gcc := findRow(t, rep, "gcc")
	if gcc.Get("BAI") < 1.02 {
		t.Fatalf("gcc BAI = %.3f, want bandwidth win", gcc.Get("BAI"))
	}
}

func TestFig11IndexSplit(t *testing.T) {
	rep := Fig11IndexDistribution(tinyRunner())
	for _, row := range rep.Rows {
		inv := row.Get("Invariant")
		sum := inv + row.Get("BAI") + row.Get("TSI")
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: fractions sum to %.3f", row.Name, sum)
		}
		// Exactly half of lines are invariant by construction; installs
		// sample that population, so expect ~0.5.
		if inv < 0.3 || inv > 0.7 {
			t.Fatalf("%s: invariant fraction %.2f far from 0.5", row.Name, inv)
		}
	}
}

func TestTable04ThresholdColumns(t *testing.T) {
	rep := Table04Threshold(tinyRunner())
	g := findRow(t, rep, "GMEAN26")
	for _, col := range []string{"<=32B", "<=36B", "<=40B"} {
		if g.Get(col) <= 0 {
			t.Fatalf("missing column %s", col)
		}
	}
	// 36B must be at least competitive with the neighbors.
	if g.Get("<=36B") < g.Get("<=32B")-0.05 || g.Get("<=36B") < g.Get("<=40B")-0.05 {
		t.Fatalf("36B threshold (%.3f) should be near-best (32B %.3f, 40B %.3f)",
			g.Get("<=36B"), g.Get("<=32B"), g.Get("<=40B"))
	}
}

func TestTable05CapacityOrdering(t *testing.T) {
	rep := Table05Capacity(tinyRunner())
	g := findRow(t, rep, "GMEAN26")
	tsi, bai, dice := g.Get("TSI"), g.Get("BAI"), g.Get("DICE")
	if tsi < 1.0 || bai < 1.0 || dice < 1.0 {
		t.Fatalf("compression must not shrink capacity: %.2f %.2f %.2f", tsi, bai, dice)
	}
	// Spatial-indexing designs (with pair tag/base sharing) must hold
	// more than capacity-only TSI compression.
	if max := maxf(bai, dice); max <= tsi {
		t.Fatalf("BAI/DICE (%.2f) should exceed TSI capacity (%.2f)", max, tsi)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestTable06L3HitRate(t *testing.T) {
	rep := Table06L3HitRate(tinyRunner())
	g := findRow(t, rep, "GMEAN26")
	if g.Get("DICE") <= g.Get("BASE") {
		t.Fatalf("DICE must raise L3 hit rate: %.3f vs %.3f",
			g.Get("DICE"), g.Get("BASE"))
	}
}

func TestTable07PrefetchOrdering(t *testing.T) {
	rep := Table07Prefetch(tinyRunner())
	g := findRow(t, rep, "GMEAN26")
	if g.Get("DICE") <= g.Get("128B-PF") || g.Get("DICE") <= g.Get("Nextline-PF") {
		t.Fatalf("DICE (%.3f) must beat prefetch-only designs (%.3f / %.3f)",
			g.Get("DICE"), g.Get("128B-PF"), g.Get("Nextline-PF"))
	}
}

func TestFig15SCCLosesToDICE(t *testing.T) {
	rep := Fig15SCC(tinyRunner())
	all := findRow(t, rep, "ALL26")
	if all.Get("SCC") >= all.Get("DICE") {
		t.Fatalf("SCC (%.3f) must underperform DICE (%.3f)",
			all.Get("SCC"), all.Get("DICE"))
	}
	if all.Get("SCC") >= 1.0 {
		t.Fatalf("SCC average %.3f, want a slowdown", all.Get("SCC"))
	}
}

func TestFig13NoDegradation(t *testing.T) {
	rep := Fig13NonIntensive(tinyRunner())
	for _, row := range rep.Rows {
		if s := row.Get("DICE"); s < 0.9 {
			t.Fatalf("%s degraded to %.3f under DICE", row.Name, s)
		}
	}
}

func TestFig14EnergyShape(t *testing.T) {
	rep := Fig14Energy(tinyRunner())
	dice := findRow(t, rep, "dice")
	base := findRow(t, rep, "base")
	if base.Get("EDP") != 1.0 || base.Get("Energy") != 1.0 {
		t.Fatal("baseline row must be the normalization unit")
	}
	if dice.Get("EDP") >= 1.0 {
		t.Fatalf("DICE EDP = %.3f, must improve on baseline", dice.Get("EDP"))
	}
	if dice.Get("Performance") <= 1.0 {
		t.Fatalf("DICE performance = %.3f", dice.Get("Performance"))
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(5_000)
	w := workloads.Rate16()[4] // gcc
	a := r.Run("base", w)
	b := r.Run("base", w)
	if a.Cycles != b.Cycles {
		t.Fatal("memoized result differs")
	}
	if len(r.cache) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(r.cache))
	}
}

func TestFig07BAISwingsWiderThanTSI(t *testing.T) {
	rep := Fig07StaticIndexing(tinyRunner())
	// TSI never degrades any workload (capacity-only); BAI must show
	// both a winner and a loser.
	var baiMin, baiMax = 10.0, 0.0
	for _, row := range rep.Rows {
		if row.Suite == "" {
			continue
		}
		if v := row.Get("TSI"); v < 0.95 {
			t.Fatalf("%s: TSI degraded to %.3f", row.Name, v)
		}
		if v := row.Get("BAI"); v > 0 {
			if v < baiMin {
				baiMin = v
			}
			if v > baiMax {
				baiMax = v
			}
		}
	}
	if baiMin > 0.9 || baiMax < 1.1 {
		t.Fatalf("BAI swings [%.2f, %.2f] too narrow; expected wins and losses",
			baiMin, baiMax)
	}
}

func TestFig12KNLTracksAlloy(t *testing.T) {
	rep := Fig12KNL(tinyRunner())
	all := findRow(t, rep, "ALL26")
	knl, alloy := all.Get("DICE-KNL"), all.Get("DICE-Alloy")
	if knl <= 1.0 {
		t.Fatalf("KNL DICE = %.3f, must still speed up", knl)
	}
	// The paper's gap is ~1.5 points; allow a loose band but KNL should
	// not beat Alloy by a margin (it only loses the neighbor-tag trick).
	if knl > alloy*1.05 {
		t.Fatalf("KNL (%.3f) should not beat Alloy (%.3f)", knl, alloy)
	}
}

func TestFig01PotentialOrdering(t *testing.T) {
	rep := Fig01Potential(tinyRunner())
	all := findRow(t, rep, "ALL26")
	cap2, bw2, both := all.Get("2xCap"), all.Get("2xBW"), all.Get("2xBoth")
	if cap2 < 1.0 || bw2 < 1.0 {
		t.Fatalf("idealized caches must not slow down: %.3f %.3f", cap2, bw2)
	}
	if both < cap2*0.98 || both < bw2*0.98 {
		t.Fatalf("2xBoth (%.3f) must dominate its parts (%.3f, %.3f)",
			both, cap2, bw2)
	}
}

func TestTable08DICEHelpsEveryConfiguration(t *testing.T) {
	rep := Table08Sensitivity(tinyRunner())
	g := findRow(t, rep, "GMEAN26")
	for _, col := range rep.Columns {
		if v := g.Get(col); v < 1.0 {
			t.Fatalf("DICE on %s = %.3f, must not degrade", col, v)
		}
	}
	// 2x bandwidth amplifies DICE (paper: +24.5% vs +19.0%); 2x capacity
	// dampens it (+13.2%).
	if g.Get("2xCap") > g.Get("Base(1GB)") {
		t.Fatalf("2x capacity should dampen DICE: %.3f vs %.3f",
			g.Get("2xCap"), g.Get("Base(1GB)"))
	}
}

func TestCIPAccuracyExperiment(t *testing.T) {
	rep := CIPAccuracy(tinyRunner())
	avg := findRow(t, rep, "AVG26")
	small, large := avg.Get("512"), avg.Get("8192")
	if small < 0.7 || small > 1 || large < 0.7 || large > 1 {
		t.Fatalf("accuracies out of range: %.3f / %.3f", small, large)
	}
	if large < small-0.02 {
		t.Fatalf("larger LTT (%.3f) should not be clearly worse than smaller (%.3f)",
			large, small)
	}
}

func TestRunnerUnknownConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown config accepted")
		}
	}()
	tinyRunner().Run("bogus", workloads.Rate16()[0])
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", Columns: []string{"A", "B"}}
	rep.AddRow("w1", workloads.SuiteRate, 1.5, 2.5)
	rep.Notes = append(rep.Notes, "hello")
	s := rep.String()
	for _, want := range []string{"== x: t ==", "w1", "1.500", "2.500", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string missing %q:\n%s", want, s)
		}
	}
}

func TestAddRowTooManyValuesPanics(t *testing.T) {
	rep := &Report{Columns: []string{"A", "B"}}
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow silently accepted more values than columns")
		}
	}()
	rep.AddRow("w", workloads.SuiteRate, 1, 2, 3)
}

func TestAddRowFewerValuesAllowed(t *testing.T) {
	rep := &Report{Columns: []string{"A", "B"}}
	rep.AddRow("w", workloads.SuiteRate, 1.5)
	if got := rep.Rows[0].Get("A"); got != 1.5 {
		t.Fatalf("A = %v", got)
	}
	if got := rep.Rows[0].Get("B"); got != 0 {
		t.Fatalf("missing column B reads %v, want 0", got)
	}
}

func TestGroupGeoMeans(t *testing.T) {
	rep := &Report{Columns: []string{"V"}}
	rep.AddRow("a", workloads.SuiteRate, 2.0)
	rep.AddRow("b", workloads.SuiteRate, 8.0)
	rep.AddRow("c", workloads.SuiteGAP, 1.0)
	rep.GroupGeoMeans()
	rate := findRow(t, rep, "RATE")
	if rate.Get("V") != 4.0 {
		t.Fatalf("RATE geomean = %v, want 4", rate.Get("V"))
	}
	all := findRow(t, rep, "ALL26")
	if all.Get("V") < 2.5 || all.Get("V") > 2.6 {
		t.Fatalf("ALL26 geomean = %v, want ~2.52", all.Get("V"))
	}
}
