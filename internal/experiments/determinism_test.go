package experiments

import (
	"reflect"
	"sync"
	"testing"

	"dice/internal/workloads"
)

// The load-bearing tests for the parallel scheduler: simulations run
// through an N-worker pool must be byte-identical to the serial
// reference schedule, and singleflight memoization must collapse
// duplicate (config, workload) cells to exactly one execution.

func detWorkloads(t *testing.T) []workloads.Workload {
	t.Helper()
	var wls []workloads.Workload
	for _, name := range []string{"gcc", "soplex"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	return wls
}

func detRunner(workers int) *Runner {
	r := NewRunner(4_000)
	r.Workers = workers
	return r
}

func TestDeterminismSerialVsPool(t *testing.T) {
	wls := detWorkloads(t)
	cfgs := []string{"base", "dice"}

	serial := detRunner(1)
	serial.Prefetch(serial.namedCells(cfgs, wls)...)

	// The pooled runner gets every cell twice in one submission: the
	// duplicates must ride singleflight, not re-simulate.
	pooled := detRunner(8)
	cells := pooled.namedCells(cfgs, wls)
	cells = append(cells, pooled.namedCells(cfgs, wls)...)
	pooled.Prefetch(cells...)

	if got, want := pooled.Sims(), int64(len(cfgs)*len(wls)); got != want {
		t.Fatalf("pool executed %d simulations for %d unique cells (singleflight broken)",
			got, want)
	}
	for _, w := range wls {
		for _, cfg := range cfgs {
			a, b := serial.Run(cfg, w), pooled.Run(cfg, w)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s|%s: serial and 8-worker results differ:\n%+v\nvs\n%+v",
					cfg, w.Name, a, b)
			}
		}
	}

	// Report bytes must match too: assemble the same report from both
	// runners' memoized results.
	mini := func(r *Runner) string {
		rep := &Report{ID: "mini", Title: "determinism probe", Columns: []string{"DICE"}}
		for _, w := range wls {
			rep.AddRow(w.Name, w.Suite, r.Speedup("dice", w))
		}
		rep.GroupGeoMeans()
		return rep.String()
	}
	if a, b := mini(serial), mini(pooled); a != b {
		t.Fatalf("serial and pooled reports differ:\n%s\nvs\n%s", a, b)
	}
}

// TestDeterminismRepeatWithinPool re-runs the same cells through the
// same pool and through a second pool; all three must agree exactly.
func TestDeterminismRepeatWithinPool(t *testing.T) {
	w := detWorkloads(t)[0]
	a := detRunner(8)
	cells := a.namedCells([]string{"base", "dice"}, []workloads.Workload{w})
	a.Prefetch(cells...)
	first := a.Run("dice", w)
	a.Prefetch(cells...) // second pass: fully memoized
	second := a.Run("dice", w)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeat prefetch changed a memoized result")
	}
	if got, want := a.Sims(), int64(2); got != want {
		t.Fatalf("executed %d simulations, want %d", got, want)
	}

	b := detRunner(8)
	b.Prefetch(b.namedCells([]string{"base", "dice"}, []workloads.Workload{w})...)
	if !reflect.DeepEqual(first, b.Run("dice", w)) {
		t.Fatal("two pools disagree on the same cell")
	}
}

// TestRunConcurrentCallersSingleflight hammers Run directly from many
// goroutines (no Prefetch): one simulation, identical results for all.
func TestRunConcurrentCallersSingleflight(t *testing.T) {
	w := detWorkloads(t)[0]
	r := detRunner(8)
	const callers = 16
	results := make([]uint64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run("base", w).Cycles
		}(i)
	}
	wg.Wait()
	if r.Sims() != 1 {
		t.Fatalf("%d concurrent callers executed %d simulations, want 1", callers, r.Sims())
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %d cycles, caller 0 saw %d", i, results[i], results[0])
		}
	}
}

// TestPrefetchPanicPropagates: a panicking cell (invalid config) must
// cancel the pool and re-panic in the caller, and later requests for
// the same key must re-panic rather than hang or return garbage.
func TestPrefetchPanicPropagates(t *testing.T) {
	w := detWorkloads(t)[0]
	r := detRunner(4)
	bad := r.config("base")
	bad.CapacityMult = 99 // fails Validate inside sim.Run
	cell := Cell{Key: "bad|" + w.Name, Cfg: bad, W: w}

	mustPanic := func(step string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", step)
			}
		}()
		fn()
	}
	mustPanic("Prefetch with invalid cell", func() { r.Prefetch(cell) })
	mustPanic("waiting on the failed key", func() { r.RunConfig(cell.Key, cell.Cfg, cell.W) })
}
