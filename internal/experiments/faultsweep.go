// Fault sweep: how gracefully does each cache design degrade as the
// stacked DRAM's raw bit-error rate rises? Compression concentrates
// many lines behind one set of ECC words, so a detected-uncorrectable
// error costs a compressed design up to MaxLinesPerSet resident lines
// where the uncompressed Alloy baseline loses one — the sweep makes
// that reliability/performance trade-off measurable.
package experiments

import (
	"fmt"

	"dice/internal/sim"
	"dice/internal/stats"
	"dice/internal/workloads"
)

// faultSweepBERs are the swept raw bit-error rates: clean, a moderate
// rate where ECC corrects almost everything, and a harsh rate where
// detected-uncorrectable frames become routine.
var faultSweepBERs = []float64{0, 3e-4, 3e-3}

// faultSweepConfigs are the designs compared: the uncompressed Alloy
// baseline versus the two compressed designs.
var faultSweepConfigs = []string{"base", "tsi", "dice"}

// faultSweepSeed fixes the fault stream so the sweep is reproducible.
const faultSweepSeed = 0xD1CE

// faultSweepWorkloads keeps the sweep affordable: one compressible
// winner, one broad mix, one incompressible workload.
func faultSweepWorkloads() []workloads.Workload {
	names := []string{"gcc", "soplex", "libq"}
	wls := make([]workloads.Workload, len(names))
	for i, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			panic(err)
		}
		wls[i] = w
	}
	return wls
}

// faultCell builds the memoized cell for one (config, BER, workload)
// point. BER zero still carries the fault policy so the key space is
// uniform; sim.Run short-circuits injection entirely at BER 0.
func (r *Runner) faultCell(cfgName string, ber float64, w workloads.Workload) Cell {
	cfg := r.config(cfgName)
	cfg.FaultBER = ber
	cfg.FaultSeed = faultSweepSeed
	cfg.FaultPolicy = "ecc+quarantine"
	return Cell{Key: fmt.Sprintf("%s-ber%g|%s", cfgName, ber, w.Name), Cfg: cfg, W: w}
}

func faultSweepCells(r *Runner) []Cell {
	var cells []Cell
	for _, w := range faultSweepWorkloads() {
		for _, name := range faultSweepConfigs {
			for _, ber := range faultSweepBERs {
				cells = append(cells, r.faultCell(name, ber, w))
			}
		}
	}
	return cells
}

// FaultSweep tabulates weighted speedup (vs the clean uncompressed
// baseline) and L4 hit rate per design as BER rises. Every design's
// ber=0 row is its fault-free reference, so reading down a column shows
// that design's degradation; comparing columns shows compression's
// fault amplification.
func FaultSweep(r *Runner) *Report {
	r.Prefetch(faultSweepCells(r)...)
	rep := &Report{ID: "fault-sweep", Title: "Degradation under injected bit errors (ecc+quarantine)",
		Columns: []string{"base", "baseHR", "tsi", "tsiHR", "dice", "diceHR"}}

	wls := faultSweepWorkloads()
	run := func(name string, ber float64, w workloads.Workload) sim.Result {
		c := r.faultCell(name, ber, w)
		return r.RunConfig(c.Key, c.Cfg, c.W)
	}

	for _, ber := range faultSweepBERs {
		var vals []float64
		for _, name := range faultSweepConfigs {
			var sp, hr []float64
			for _, w := range wls {
				clean := run("base", 0, w)
				faulty := run(name, ber, w)
				sp = append(sp, sim.Speedup(clean, faulty))
				hr = append(hr, faulty.L4.HitRate())
			}
			vals = append(vals, stats.GeoMean(sp), stats.Mean(hr))
		}
		rep.AddRow(fmt.Sprintf("ber=%g", ber), "", vals...)
	}

	// Reliability counters at the harshest point, summed over workloads.
	hi := faultSweepBERs[len(faultSweepBERs)-1]
	var det, ref, flushed, quar uint64
	var silentBase uint64
	for _, w := range wls {
		d := run("dice", hi, w)
		det += d.L4.FaultDetectedFrames
		ref += d.L4.FaultRefetches
		flushed += d.L4.FaultFlushedLines
		quar += uint64(d.QuarantinedSets)
		silentBase += run("base", hi, w).L4.FaultSilentHits
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("dice at ber=%g: detected=%d refetches=%d flushed-lines=%d quarantined-sets=%d",
			hi, det, ref, flushed, quar),
		fmt.Sprintf("base at ber=%g serves %d silently corrupt hits (raw lines carry no checksum)",
			hi, silentBase),
		"compressed frames amplify faults: one detected error flushes a whole set (up to 28 lines) vs 1 line on Alloy")
	return rep
}
