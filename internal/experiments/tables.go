package experiments

import (
	"math"

	"dice/internal/sim"
	"dice/internal/workloads"
)

func geoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(logSum / float64(n))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// groupSets returns the paper's aggregation groups over the evaluation
// set: SPEC RATE, SPEC MIX, GAP, and the combined 26.
func groupSets() []struct {
	Label string
	WLs   []workloads.Workload
} {
	return []struct {
		Label string
		WLs   []workloads.Workload
	}{
		{"SPEC RATE", workloads.Rate16()},
		{"SPEC MIX", workloads.Mixes()},
		{"GAP", workloads.GAP6()},
		{"GMEAN26", workloads.All26()},
	}
}

// Table04Threshold regenerates Table 4: DICE speedup with the BAI
// insertion threshold at 32B, 36B and 40B, by suite group. Paper: 36B is
// best (+19.0% overall); 32B and 40B lose 1-2%.
func table04Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "dice-t32", "dice", "dice-t40"}, workloads.All26())
}

// Table04Threshold regenerates Table 4: DICE's sensitivity to the
// BAI-insertion threshold (32/36/40 bytes).
func Table04Threshold(r *Runner) *Report {
	r.Prefetch(table04Cells(r)...)
	rep := &Report{ID: "table4", Title: "Sensitivity to DICE insertion threshold",
		Columns: []string{"<=32B", "<=36B", "<=40B"}}
	for _, g := range groupSets() {
		var s32, s36, s40 []float64
		for _, w := range g.WLs {
			s32 = append(s32, r.Speedup("dice-t32", w))
			s36 = append(s36, r.Speedup("dice", w))
			s40 = append(s40, r.Speedup("dice-t40", w))
		}
		rep.AddRow(g.Label, "", geoMean(s32), geoMean(s36), geoMean(s40))
	}
	rep.Notes = append(rep.Notes,
		"paper Table 4: 36B maximizes performance (+19.0% GMEAN26)")
	return rep
}

// Table05Capacity regenerates Table 5: effective DRAM-cache capacity of
// TSI, BAI and DICE relative to the baseline's occupancy. Paper: TSI
// 1.24x, BAI 1.69x, DICE 1.62x overall; GAP up to 5.57x under BAI.
func table05Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "tsi", "bai", "dice"}, workloads.All26())
}

// Table05Capacity regenerates Table 5: average effective L4 capacity
// under TSI, BAI and DICE.
func Table05Capacity(r *Runner) *Report {
	r.Prefetch(table05Cells(r)...)
	rep := &Report{ID: "table5", Title: "Effective capacity of TSI/BAI/DICE",
		Columns: []string{"TSI", "BAI", "DICE"}}
	for _, g := range groupSets() {
		var ct, cb, cd []float64
		for _, w := range g.WLs {
			base := r.Run("base", w).EffCapacity
			if base == 0 {
				continue
			}
			ct = append(ct, r.Run("tsi", w).EffCapacity/base)
			cb = append(cb, r.Run("bai", w).EffCapacity/base)
			cd = append(cd, r.Run("dice", w).EffCapacity/base)
		}
		rep.AddRow(g.Label, "", geoMean(ct), geoMean(cb), geoMean(cd))
	}
	rep.Notes = append(rep.Notes,
		"paper Table 5: TSI 1.24x, BAI 1.69x, DICE 1.62x (GMEAN26); GAP highest")
	return rep
}

// Table06L3HitRate regenerates Table 6: shared-L3 hit rate without and
// with DICE (whose free adjacent lines are installed in L3). Paper:
// 37.0% -> 43.6% average.
func table06Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "dice"}, workloads.All26())
}

// Table06L3HitRate regenerates Table 6: DICE's effect on the L3 hit
// rate (compression perturbs hot-line residency).
func Table06L3HitRate(r *Runner) *Report {
	r.Prefetch(table06Cells(r)...)
	rep := &Report{ID: "table6", Title: "Effect of DICE on L3 hit rate",
		Columns: []string{"BASE", "DICE"}}
	for _, g := range groupSets() {
		var hb, hd []float64
		for _, w := range g.WLs {
			hb = append(hb, r.Run("base", w).L3.HitRate())
			hd = append(hd, r.Run("dice", w).L3.HitRate())
		}
		rep.AddRow(g.Label, "", mean(hb), mean(hd))
	}
	rep.Notes = append(rep.Notes,
		"paper Table 6: average L3 hit rate 37.0% baseline vs 43.6% with DICE")
	return rep
}

// Table07Prefetch regenerates Table 7: wider L3 fetch and next-line
// prefetching vs DICE, and DICE combined with next-line prefetch.
// Paper: 128B-PF +1.9%, NL-PF +1.6%, DICE +19.0%, DICE+NL +20.9%.
func table07Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "base-128pf", "base-nlpf", "dice", "dice-nlpf"},
		workloads.All26())
}

// Table07Prefetch regenerates Table 7: DICE against next-line and
// wide-128B prefetching, separately and combined.
func Table07Prefetch(r *Runner) *Report {
	r.Prefetch(table07Cells(r)...)
	rep := &Report{ID: "table7", Title: "Comparison of DICE to prefetch",
		Columns: []string{"128B-PF", "Nextline-PF", "DICE", "DICE+NL"}}
	for _, g := range groupSets() {
		var p128, pnl, pd, pdnl []float64
		for _, w := range g.WLs {
			p128 = append(p128, r.Speedup("base-128pf", w))
			pnl = append(pnl, r.Speedup("base-nlpf", w))
			pd = append(pd, r.Speedup("dice", w))
			pdnl = append(pdnl, r.Speedup("dice-nlpf", w))
		}
		rep.AddRow(g.Label, "", geoMean(p128), geoMean(pnl), geoMean(pd), geoMean(pdnl))
	}
	rep.Notes = append(rep.Notes,
		"paper Table 7: prefetch alone ~+2%; DICE +19.0%; DICE+NL +20.9%")
	return rep
}

// Table08Sensitivity regenerates Table 8: DICE's speedup over the
// matching uncompressed design as the cache's capacity, bandwidth and
// latency change. Paper: base +19.0%, 2x capacity +13.2%, 2x BW +24.5%,
// half latency +24.4%.
func table08Cells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "dice", "base-2cap", "dice-2cap",
		"base-2bw", "dice-2bw", "base-half", "dice-half"}, workloads.All26())
}

// Table08Sensitivity regenerates Table 8: DICE's speedup holding
// under doubled capacity, doubled bandwidth and halved latency.
func Table08Sensitivity(r *Runner) *Report {
	r.Prefetch(table08Cells(r)...)
	rep := &Report{ID: "table8", Title: "DICE sensitivity to cache capacity/BW/latency",
		Columns: []string{"Base(1GB)", "2xCap", "2xBW", "50%Lat"}}
	pairs := [][2]string{
		{"base", "dice"},
		{"base-2cap", "dice-2cap"},
		{"base-2bw", "dice-2bw"},
		{"base-half", "dice-half"},
	}
	for _, g := range groupSets() {
		vals := make([]float64, len(pairs))
		for i, p := range pairs {
			var xs []float64
			for _, w := range g.WLs {
				xs = append(xs, sim.Speedup(r.Run(p[0], w), r.Run(p[1], w)))
			}
			vals[i] = geoMean(xs)
		}
		rep.AddRow(g.Label, "", vals...)
	}
	rep.Notes = append(rep.Notes,
		"paper Table 8: +19.0% / +13.2% / +24.5% / +24.4% (GMEAN26); each column normalized to its own uncompressed design")
	return rep
}
