// Concurrent simulation scheduler. An experiment's work is a
// config×workload matrix of independent, deterministic sim.Run calls;
// Prefetch fans a matrix out across a bounded worker pool and RunAll
// submits the union of several experiments' matrices up front, so the
// serial report-assembly loops afterwards find every result memoized.
// Report bytes are identical for every worker count: assembly order is
// fixed, and sim.Run is a pure function of (config, workload).
package experiments

import (
	"context"

	"dice/internal/parallel"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// Cell is one (configuration, workload) simulation in an experiment's
// matrix, memoized under Key (see Runner.RunConfig for the key scheme).
type Cell struct {
	// Key is the memoization key: cells sharing it simulate once.
	Key string
	// Cfg is the simulator configuration to run.
	Cfg sim.Config
	// W is the workload to drive it with.
	W workloads.Workload
}

// namedCells builds the matrix of named configurations × workloads.
func (r *Runner) namedCells(cfgNames []string, wls []workloads.Workload) []Cell {
	cells := make([]Cell, 0, len(cfgNames)*len(wls))
	for _, w := range wls {
		for _, name := range cfgNames {
			cells = append(cells, Cell{Key: name + "|" + w.Name, Cfg: r.config(name), W: w})
		}
	}
	return cells
}

// Prefetch simulates every cell across the runner's worker pool and
// returns once all results are memoized. Cells sharing a key — within
// one call or with concurrent callers — simulate once (singleflight);
// the duplicates block until the first finishes. With Workers == 1 the
// cells run serially in submission order, the reference schedule. A
// panicking simulation cancels the remaining queue and re-panics here.
func (r *Runner) Prefetch(cells ...Cell) {
	r.PrefetchCtx(context.Background(), cells...)
}

// PrefetchCtx is Prefetch with cooperative cancellation: once ctx is
// done no further cells start; in-flight simulations complete (their
// results stay memoized, so a later retry resumes where this left off).
func (r *Runner) PrefetchCtx(ctx context.Context, cells ...Cell) {
	r.warmArtifacts(ctx, cells)
	parallel.ForEachCtx(ctx, r.Workers, len(cells), func(i int) {
		r.RunConfig(cells[i].Key, cells[i].Cfg, cells[i].W)
	})
}

// ForEachCellCtx simulates every cell across the worker pool and
// invokes done(i, result) as each cell i completes — the hook the
// sweep engine uses to checkpoint results the moment they exist
// instead of after the whole matrix. done may be nil; when non-nil it
// is called from worker goroutines (possibly concurrently) and must
// be safe for concurrent use. Duplicate keys simulate once; each
// duplicate still gets its own done call. Returns ctx.Err() if the
// fan-out was cut short.
func (r *Runner) ForEachCellCtx(ctx context.Context, cells []Cell, done func(i int, res sim.Result)) error {
	r.warmArtifacts(ctx, cells)
	parallel.ForEachCtx(ctx, r.Workers, len(cells), func(i int) {
		res := r.RunConfig(cells[i].Key, cells[i].Cfg, cells[i].W)
		if done != nil {
			done(i, res)
		}
	})
	return ctx.Err()
}

// Peek returns the memoized result for key without simulating: ok is
// false when the key was never requested or its simulation has not
// finished. It never blocks, so collection loops can skim a partially
// cancelled fan-out for the cells that did complete.
func (r *Runner) Peek(key string) (res sim.Result, ok bool) {
	r.mu.Lock()
	f := r.cache[key]
	r.mu.Unlock()
	if f == nil {
		return sim.Result{}, false
	}
	select {
	case <-f.done:
		if f.panicked != nil {
			return sim.Result{}, false
		}
		return f.res, true
	default:
		return sim.Result{}, false
	}
}

// warmCell is one distinct (workload, scale) build a prefetch pays for
// up front.
type warmCell struct {
	w     workloads.Workload
	scale uint
}

// warmArtifacts builds the artifact cache entry for every distinct
// (workload, effective scale) in cells before the simulation fan-out.
// Dozens of configs share each workload, so without warming the first
// worker to reach a workload would build its graphs while the cache's
// singleflight blocks every other worker needing the same entry —
// warming moves that serialization ahead of the fan-out and spreads the
// distinct builds across the pool instead. No-op when the artifact
// cache is disabled (each run then builds cold by design, and a warm
// build would be thrown away).
func (r *Runner) warmArtifacts(ctx context.Context, cells []Cell) {
	if !workloads.CacheEnabled() {
		return
	}
	var warm []warmCell
	seen := map[artifactID]bool{}
	for _, c := range cells {
		id := artifactID{c.W.Name, c.Cfg.EffectiveScale()}
		if !seen[id] {
			seen[id] = true
			warm = append(warm, warmCell{c.W, id.scale})
		}
	}
	parallel.ForEachCtx(ctx, r.Workers, len(warm), func(i int) {
		warm[i].w.Warm(warm[i].scale)
	})
}

// artifactID mirrors the artifact cache's key for dedup during warming.
type artifactID struct {
	name  string
	scale uint
}

// RunAll regenerates the given experiments. It submits the union of
// their simulation matrices to the worker pool first (deduplicated by
// key, preserving first-seen order), then assembles each report
// serially in the order given — so the printed output is byte-identical
// to a fully serial run while the simulations use every worker.
func RunAll(r *Runner, exps []Experiment) []*Report {
	reports, _ := RunAllCtx(context.Background(), r, exps)
	return reports
}

// RunAllCtx is RunAll with cooperative cancellation. When ctx is
// cancelled, queued simulations are skipped (in-flight ones complete)
// and the reports already assembled are returned alongside ctx's error,
// so the caller can print a partial run. An experiment whose assembly
// has started finishes — any of its cells the prefetch skipped are
// simulated synchronously — so a cancelled report is never half-built.
func RunAllCtx(ctx context.Context, r *Runner, exps []Experiment) ([]*Report, error) {
	var cells []Cell
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Cells == nil {
			continue
		}
		for _, c := range e.Cells(r) {
			if !seen[c.Key] {
				seen[c.Key] = true
				cells = append(cells, c)
			}
		}
	}
	r.PrefetchCtx(ctx, cells...)

	reports := make([]*Report, 0, len(exps))
	for _, e := range exps {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		reports = append(reports, e.Run(r))
	}
	return reports, nil
}
