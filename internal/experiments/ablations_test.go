package experiments

import "testing"

func TestAblationIndexingOrdering(t *testing.T) {
	rep := AblationIndexing(tinyRunner())
	if len(rep.Rows) < 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// NSI must be no better than DICE on average (static spatial indexing
	// has no incompressible fallback).
	var nsi, dice float64
	for _, row := range rep.Rows {
		if row.Name == "ALL26" {
			nsi, dice = row.Get("NSI"), row.Get("DICE")
		}
	}
	if nsi > dice {
		t.Fatalf("NSI (%.3f) should not beat DICE (%.3f)", nsi, dice)
	}
}

func TestAblationCompressorHybridCompetitive(t *testing.T) {
	rep := AblationCompressor(tinyRunner())
	var f, b, h float64
	for _, row := range rep.Rows {
		if row.Name == "GMEAN" {
			f, b, h = row.Get("FPC-only"), row.Get("BDI-only"), row.Get("Hybrid")
		}
	}
	if h <= 0 || f <= 0 || b <= 0 {
		t.Fatal("missing gmean values")
	}
	if h < f-0.05 || h < b-0.05 {
		t.Fatalf("hybrid (%.3f) should be at least competitive (fpc %.3f, bdi %.3f)", h, f, b)
	}
}

func TestAblationMLPPersistentBenefit(t *testing.T) {
	rep := AblationMLP(tinyRunner())
	for _, row := range rep.Rows {
		if row.Name != "GMEAN" {
			continue
		}
		for _, col := range rep.Columns {
			if row.Get(col) < 1.0 {
				t.Fatalf("DICE benefit lost at %s: %.3f", col, row.Get(col))
			}
		}
		return
	}
	t.Fatal("no GMEAN row")
}
