package experiments

import (
	"reflect"
	"testing"

	"dice/internal/sim"
	"dice/internal/workloads"
)

// Artifact-cache integration tests: many configs sharing one GAP
// workload through the process-wide cache must produce Results
// byte-identical to cold per-run builds, under concurrency (run these
// with -race via the CI race job), and the cache must actually be hit.

// cacheTestScale keeps the GAP graph build small; the runner still
// exercises the full warm-then-fan-out path.
const cacheTestScale = 12

// resetArtifactCache gives the test a cold, enabled cache and restores
// the default state afterwards.
func resetArtifactCache(t *testing.T) {
	t.Helper()
	workloads.DropCache()
	workloads.SetCacheEnabled(true)
	t.Cleanup(func() {
		workloads.DropCache()
		workloads.SetCacheEnabled(true)
	})
}

// TestCachedGAPConfigsMatchColdBuilds runs the same GAP workload under
// 8 concurrent configs through the artifact cache and asserts every
// Result is identical to a cold-build reference of the same cell.
func TestCachedGAPConfigsMatchColdBuilds(t *testing.T) {
	resetArtifactCache(t)
	w, err := workloads.ByName("cc_twi")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []string{"base", "tsi", "nsi", "bai", "dice", "scc", "dice-knl", "dice-t32"}

	// Cold reference: cache disabled, serial, each Run builds from
	// scratch.
	workloads.SetCacheEnabled(false)
	cold := detRunner(1)
	cold.Scale = cacheTestScale
	cold.Prefetch(cold.namedCells(cfgs, []workloads.Workload{w})...)

	// Cached run: 8 workers race through one warmed entry.
	workloads.SetCacheEnabled(true)
	cached := detRunner(8)
	cached.Scale = cacheTestScale
	cached.Prefetch(cached.namedCells(cfgs, []workloads.Workload{w})...)

	if _, m := workloads.CacheStats(); m != 1 {
		t.Fatalf("8 configs x 1 workload performed %d artifact builds, want 1", m)
	}
	for _, cfg := range cfgs {
		a, b := cold.Run(cfg, w), cached.Run(cfg, w)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s|%s: cold and cached results differ:\n%+v\nvs\n%+v",
				cfg, w.Name, a, b)
		}
	}
}

// TestCacheOffMatchesOn pins the escape hatch: -artifact-cache=off must
// not change a single result.
func TestCacheOffMatchesOn(t *testing.T) {
	resetArtifactCache(t)
	for _, name := range []string{"cc_twi", "gcc"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r := detRunner(1)
		r.Scale = cacheTestScale
		cfg := r.config("dice")
		workloads.SetCacheEnabled(true)
		on, err := sim.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		workloads.SetCacheEnabled(false)
		off, err := sim.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(on, off) {
			t.Fatalf("%s: cache on and off results differ:\n%+v\nvs\n%+v", name, on, off)
		}
	}
}

// TestArtifactCacheSmoke is the CI bench-smoke guard: running a GAP
// experiment cell matrix twice in one process must build each artifact
// once — the second pass must be served entirely from the cache. A
// regression that silently stops caching (key drift, accidental
// disable) fails here before it costs wall-clock in real matrices.
func TestArtifactCacheSmoke(t *testing.T) {
	resetArtifactCache(t)
	w, err := workloads.ByName("pr_twi")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []string{"base", "dice"}

	first := detRunner(2)
	first.Scale = cacheTestScale
	first.Prefetch(first.namedCells(cfgs, []workloads.Workload{w})...)
	_, missesAfterFirst := workloads.CacheStats()
	if missesAfterFirst != 1 {
		t.Fatalf("first run built %d artifacts for one workload, want 1", missesAfterFirst)
	}

	second := detRunner(2)
	second.Scale = cacheTestScale
	second.Prefetch(second.namedCells(cfgs, []workloads.Workload{w})...)
	hits, misses := workloads.CacheStats()
	if misses != missesAfterFirst {
		t.Fatalf("second in-process run rebuilt artifacts: misses %d -> %d",
			missesAfterFirst, misses)
	}
	if hits == 0 {
		t.Fatal("second run never hit the artifact cache")
	}
	for _, cfg := range cfgs {
		a, b := first.Run(cfg, w), second.Run(cfg, w)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s|%s: first and second runs differ", cfg, w.Name)
		}
	}
}
