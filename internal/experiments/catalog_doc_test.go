package experiments

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// The EXPERIMENTS.md experiment catalog must list exactly the IDs
// experiments.All() registers, in catalog order — an experiment
// cannot be added, renamed or removed without the document noticing.
func TestExperimentCatalogDocCurrent(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- experiment-catalog -->", "<!-- /experiment-catalog -->"
	body := string(doc)
	i, j := strings.Index(body, begin), strings.Index(body, end)
	if i < 0 || j < i {
		t.Fatalf("EXPERIMENTS.md is missing the %s markers", begin)
	}
	idCell := regexp.MustCompile("^\\| `([a-z0-9-]+)` \\|")
	var documented []string
	for _, line := range strings.Split(body[i+len(begin):j], "\n") {
		if m := idCell.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			documented = append(documented, m[1])
		}
	}
	var registered []string
	for _, e := range All() {
		registered = append(registered, e.ID)
	}
	if got, want := strings.Join(documented, " "), strings.Join(registered, " "); got != want {
		t.Fatalf("EXPERIMENTS.md catalog has drifted from experiments.All():\n documented: %s\n registered: %s", got, want)
	}
}
