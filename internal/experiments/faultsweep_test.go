package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// The fault sweep must be reproducible at any worker count: the fault
// stream is tick-hashed per simulation, never shared across goroutines.
func TestFaultSweepDeterministicAcrossWorkers(t *testing.T) {
	a := FaultSweep(detRunner(1)).String()
	b := FaultSweep(detRunner(8)).String()
	if a != b {
		t.Fatalf("fault-sweep differs between 1 and 8 workers:\n%s\nvs\n%s", a, b)
	}
}

// BER=0 must be bit-identical to a run with fault injection absent —
// the guarantee that keeps the existing goldens stable.
func TestFaultSweepZeroBERMatchesCleanRun(t *testing.T) {
	r := detRunner(4)
	w := detWorkloads(t)[0]
	clean := r.Run("dice", w)
	cell := r.faultCell("dice", 0, w)
	zero := r.RunConfig(cell.Key, cell.Cfg, cell.W)
	// The configs differ only in inert fault fields; scrub those before
	// comparing so any behavioral difference stands out alone.
	zero.Config.FaultPolicy = clean.Config.FaultPolicy
	zero.Config.FaultSeed = clean.Config.FaultSeed
	if !reflect.DeepEqual(clean, zero) {
		t.Fatalf("BER=0 result differs from fault-free run:\n%+v\nvs\n%+v", clean, zero)
	}
}

// The sweep's reason to exist: compression amplifies faults, so the
// compressed designs must lose more of their clean-run speedup than the
// uncompressed baseline at the harsh end of the sweep.
func TestFaultSweepDegradationOrdering(t *testing.T) {
	rep := FaultSweep(sharedTiny)
	get := func(rowName, col string) float64 {
		for _, row := range rep.Rows {
			if row.Name == rowName {
				return row.Get(col)
			}
		}
		t.Fatalf("row %q missing from:\n%s", rowName, rep.String())
		return 0
	}
	rel := func(col string) float64 { return get("ber=0.003", col) / get("ber=0", col) }
	base, tsi, dice := rel("base"), rel("tsi"), rel("dice")
	if base <= 0 {
		t.Fatalf("degenerate baseline ratio %v", base)
	}
	if tsi >= base || dice >= base {
		t.Fatalf("compressed designs must degrade faster than base: base=%.4f tsi=%.4f dice=%.4f",
			base, tsi, dice)
	}
	if !strings.Contains(strings.Join(rep.Notes, "\n"), "quarantined-sets=") {
		t.Fatalf("notes lack reliability counters:\n%s", rep.String())
	}
}

// Cancellation is cooperative at cell granularity: a pre-cancelled
// context runs nothing and surfaces the context error with whatever
// reports were already assembled (none, here).
func TestRunAllCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := detRunner(4)
	reports, err := RunAllCtx(ctx, r, []Experiment{mustByID(t, "fig10")})
	if err == nil {
		t.Fatal("cancelled RunAllCtx reported no error")
	}
	if len(reports) != 0 {
		t.Fatalf("cancelled RunAllCtx assembled %d reports", len(reports))
	}
	if r.Sims() != 0 {
		t.Fatalf("cancelled RunAllCtx executed %d simulations", r.Sims())
	}
}

func mustByID(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
