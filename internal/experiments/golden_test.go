package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report files under testdata/")

// goldenIDs are the representative experiments pinned byte-for-byte:
// the headline figure, a sensitivity table, the CIP predictor sweep,
// and an ablation (which also covers the GAP graph workloads). They
// run on the shared small-scale runner, so regenerating them costs no
// simulations beyond what the shape tests already execute — and on a
// multi-core machine the shared runner's pool exercises the parallel
// scheduler, making any schedule-dependence show up as a golden diff.
var goldenIDs = []string{"fig10", "table4", "cip", "ablate-index", "fault-sweep", "metrics-demo"}

// TestGoldenReports compares each report's rendered bytes against
// testdata/<id>.golden. After an intentional simulator change, refresh
// the files with:
//
//	go test ./internal/experiments -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			got := e.Run(tinyRunner()).String()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output differs from %s (refresh with -update if intended):\n%s",
					id, path, firstDiff(got, string(want)))
			}
		})
	}
}

// firstDiff renders the first differing line of two reports.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) || i < len(w); i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl != wl {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, gl, wl)
		}
	}
	return "(identical lines; trailing bytes differ)"
}
