// Package experiments regenerates every table and figure of the paper's
// evaluation (Figures 1f, 4, 7, 10-15; Tables 4-8; the CIP accuracy sweep
// of Section 5.3). Each experiment is a named driver producing a Report;
// a shared Runner memoizes simulation results so the baseline runs that
// many experiments normalize against are executed once.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dice/internal/dcache"
	"dice/internal/obs"
	"dice/internal/parallel"
	"dice/internal/sim"
	"dice/internal/stats"
	"dice/internal/workloads"
)

// Runner executes and memoizes simulations. All methods are safe for
// concurrent use: memoization is singleflight, so a (config, workload)
// pair is simulated exactly once no matter how many experiments request
// it concurrently, and every later caller blocks until that one result
// is ready.
type Runner struct {
	// RefsPerCore overrides the measured reference count (0 = auto).
	// Tests use small values; the CLI uses larger ones.
	RefsPerCore int
	// Scale is the system scale shift (0 = default 10, i.e. 1/1024).
	Scale uint
	// Verbose prints progress lines as runs complete.
	Verbose bool
	// Workers bounds the simulations Prefetch and RunAll execute
	// concurrently (0 = one per CPU). Workers == 1 is the bit-exact
	// serial reference schedule; because sim.Run is deterministic per
	// (config, workload), every worker count produces byte-identical
	// results — the determinism tests enforce this.
	Workers int
	// FaultBER, FaultSeed and FaultPolicy apply fault injection to every
	// named configuration this runner launches (sim.Config fields of the
	// same names). Zero BER leaves injection off; the fault-sweep
	// experiment instead mints per-BER configs itself.
	FaultBER float64
	// FaultSeed pins the deterministic fault stream (see FaultBER).
	FaultSeed uint64
	// FaultPolicy selects the recovery policy (see FaultBER).
	FaultPolicy string

	// MetricsEpoch, when nonzero, attaches an epoch-metrics recorder
	// (sampling every MetricsEpoch cycles) to every simulation this
	// runner executes; the collected series are retrievable with Metrics
	// and exportable with WriteMetrics. Recording never changes results:
	// sim.RunObserved is read-only with respect to the simulation.
	MetricsEpoch uint64
	// MetricsCap bounds each recording's epoch ring (0 = obs.DefaultRingCap).
	MetricsCap int
	// MetricsEmit, when non-nil (and MetricsEpoch is set), receives
	// every recorded epoch snapshot the moment it is recorded, tagged
	// with the simulation's memoization key — the incremental-export
	// hook behind the daemon's stream. Because memoization runs each
	// key once, duplicate requests of a key emit its epochs once. The
	// hook runs on simulation worker goroutines, possibly several
	// concurrently for different keys: it must be safe for concurrent
	// use and should not block.
	MetricsEmit func(key string, s obs.Snapshot)

	mu      sync.Mutex
	cache   map[string]*flight
	metrics map[string]obs.Series
	sims    atomic.Int64
	cycles  atomic.Uint64

	logOnce sync.Once
	log     *parallel.Logger

	// testHookSimDone, when non-nil, runs after every executed
	// simulation with its memoization key. Test instrumentation only:
	// the cancellation-latency tests use it to cancel a context at a
	// precise point between cells.
	testHookSimDone func(key string)
}

// flight is one memoization slot. The first requester simulates and
// closes done; concurrent requesters of the same key block on done and
// then read res (or re-panic a recorded panic).
type flight struct {
	done     chan struct{}
	res      sim.Result
	panicked any
}

// NewRunner returns a Runner with the given per-core reference budget.
func NewRunner(refsPerCore int) *Runner {
	return &Runner{RefsPerCore: refsPerCore, cache: make(map[string]*flight)}
}

// Sims reports how many simulations actually executed (memoized recalls
// and singleflight waits excluded).
func (r *Runner) Sims() int64 { return r.sims.Load() }

// TotalCycles reports the simulated cycles summed over every executed
// simulation — the denominator for allocs-per-simulated-tick self-stats.
func (r *Runner) TotalCycles() uint64 { return r.cycles.Load() }

// Metrics returns a copy of the epoch series recorded so far, keyed by
// memoization key ("<config>|<workload>"). Empty unless MetricsEpoch
// was set before the runs executed.
func (r *Runner) Metrics() map[string]obs.Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]obs.Series, len(r.metrics))
	for k, v := range r.metrics {
		out[k] = v
	}
	return out
}

// WriteMetrics exports every recorded epoch series to w in the given
// format ("json" or "csv"), in sorted key order so the bytes are
// deterministic. CSV output separates series with "# <key>" comment
// lines; JSON output is one object keyed by memoization key.
func (r *Runner) WriteMetrics(w io.Writer, format string) error {
	ms := r.Metrics()
	keys := make([]string, 0, len(ms))
	for k := range ms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(ms) // map keys marshal in sorted order
	case "csv":
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "# %s\n", k); err != nil {
				return err
			}
			s := ms[k]
			if err := s.WriteCSV(w); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("experiments: unknown metrics format %q (want json or csv)", format)
	}
}

// logf emits one line-atomic progress message when Verbose is set.
func (r *Runner) logf(format string, args ...any) {
	if !r.Verbose {
		return
	}
	r.logOnce.Do(func() { r.log = parallel.NewLogger(os.Stdout) })
	r.log.Printf(format, args...)
}

// named configurations used across experiments.
func (r *Runner) config(name string) sim.Config {
	cfg := sim.Config{RefsPerCore: r.RefsPerCore, ScaleShift: r.Scale}
	switch name {
	case "base":
		cfg.Policy = dcache.PolicyUncompressed
	case "tsi":
		cfg.Policy = dcache.PolicyTSI
	case "nsi":
		cfg.Policy = dcache.PolicyNSI
	case "bai":
		cfg.Policy = dcache.PolicyBAI
	case "dice":
		cfg.Policy = dcache.PolicyDICE
	case "scc":
		cfg.Policy = dcache.PolicySCC
	case "dice-knl":
		cfg.Policy = dcache.PolicyDICE
		cfg.Org = dcache.OrgKNL
	case "dice-t32":
		cfg.Policy = dcache.PolicyDICE
		cfg.Threshold = 32
	case "dice-t40":
		cfg.Policy = dcache.PolicyDICE
		cfg.Threshold = 40
	case "base-2cap":
		cfg.Policy = dcache.PolicyUncompressed
		cfg.CapacityMult = 2
	case "base-2bw":
		cfg.Policy = dcache.PolicyUncompressed
		cfg.BWMult = 2
	case "base-2both":
		cfg.Policy = dcache.PolicyUncompressed
		cfg.CapacityMult = 2
		cfg.BWMult = 2
	case "base-half":
		cfg.Policy = dcache.PolicyUncompressed
		cfg.HalfLatency = true
	case "dice-2cap":
		cfg.Policy = dcache.PolicyDICE
		cfg.CapacityMult = 2
	case "dice-2bw":
		cfg.Policy = dcache.PolicyDICE
		cfg.BWMult = 2
	case "dice-half":
		cfg.Policy = dcache.PolicyDICE
		cfg.HalfLatency = true
	case "base-128pf":
		cfg.Policy = dcache.PolicyUncompressed
		cfg.Prefetch = sim.PrefetchWide128
	case "base-nlpf":
		cfg.Policy = dcache.PolicyUncompressed
		cfg.Prefetch = sim.PrefetchNextLine
	case "dice-nlpf":
		cfg.Policy = dcache.PolicyDICE
		cfg.Prefetch = sim.PrefetchNextLine
	default:
		panic("experiments: unknown config " + name)
	}
	cfg.FaultBER = r.FaultBER
	cfg.FaultSeed = r.FaultSeed
	cfg.FaultPolicy = r.FaultPolicy
	return cfg
}

// Run executes (or recalls) one workload under a named configuration.
func (r *Runner) Run(cfgName string, w workloads.Workload) sim.Result {
	return r.RunConfig(cfgName+"|"+w.Name, r.config(cfgName), w)
}

// RunConfig executes (or recalls) workload w under an arbitrary
// configuration, memoized under key. Keys follow the "<config>|<workload>"
// convention; experiments that sweep parameters outside the named set
// (the CIP size sweep, the ablations) mint their own config labels.
//
// Concurrent calls with the same key simulate exactly once: the first
// caller runs sim.Run while the rest block until the result is ready. A
// panicking simulation is re-panicked in every waiter, so a pool worker
// failure propagates instead of deadlocking the queue.
func (r *Runner) RunConfig(key string, cfg sim.Config, w workloads.Workload) sim.Result {
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*flight)
	}
	if f, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-f.done
		if f.panicked != nil {
			panic(f.panicked)
		}
		return f.res
	}
	f := &flight{done: make(chan struct{})}
	r.cache[key] = f
	r.mu.Unlock()

	defer func() {
		if p := recover(); p != nil {
			f.panicked = p
			close(f.done)
			panic(p)
		}
		close(f.done)
	}()
	var ob *obs.Observer
	if r.MetricsEpoch > 0 {
		rec := obs.NewRecorder(r.MetricsEpoch, r.MetricsCap)
		if r.MetricsEmit != nil {
			rec.OnRecord = func(s obs.Snapshot) { r.MetricsEmit(key, s) }
		}
		ob = &obs.Observer{Rec: rec}
	}
	res, err := sim.RunObserved(cfg, w, ob)
	if err != nil {
		// Experiment configs are internal code, not user input: a bad one
		// is a programming error, and panicking keeps the singleflight
		// propagation semantics (every waiter re-panics).
		panic(err)
	}
	f.res = res
	r.sims.Add(1)
	r.cycles.Add(res.Cycles)
	if r.testHookSimDone != nil {
		r.testHookSimDone(key)
	}
	if ob != nil {
		r.mu.Lock()
		if r.metrics == nil {
			r.metrics = make(map[string]obs.Series)
		}
		r.metrics[key] = ob.Rec.Series()
		r.mu.Unlock()
	}
	if cut := strings.IndexByte(key, '|'); cut >= 0 {
		r.logf("  ran %-12s %-10s L4hit=%.2f L3hit=%.2f\n",
			key[:cut], w.Name, f.res.L4.HitRate(), f.res.L3.HitRate())
	} else {
		r.logf("  ran %-23s L4hit=%.2f L3hit=%.2f\n",
			key, f.res.L4.HitRate(), f.res.L3.HitRate())
	}
	return f.res
}

// Speedup returns the weighted speedup of cfgName over the uncompressed
// baseline for workload w.
func (r *Runner) Speedup(cfgName string, w workloads.Workload) float64 {
	return sim.Speedup(r.Run("base", w), r.Run(cfgName, w))
}

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment's catalog identifier (fig10, table4, ...).
	ID string
	// Title is the human-readable heading the renderers print.
	Title string
	// Columns lists the value columns, in print order.
	Columns []string
	// Rows holds the result lines, in print order.
	Rows []Row
	// Notes carries the paper-vs-measured commentary.
	Notes []string
}

// Row is one labeled result line.
type Row struct {
	// Name labels the row (usually a workload or config name).
	Name string
	// Suite is the workload suite the row belongs to.
	Suite workloads.Suite
	// Values maps column name to the measured value.
	Values map[string]float64
}

// Get returns a row value (0 when missing).
func (row Row) Get(col string) float64 { return row.Values[col] }

// AddRow appends a row built from parallel column values. Passing more
// values than the report has columns is a programmer error (the extras
// would silently vanish from the rendered table) and panics; passing
// fewer is allowed — missing columns read as zero.
func (rep *Report) AddRow(name string, suite workloads.Suite, vals ...float64) {
	if len(vals) > len(rep.Columns) {
		panic(fmt.Sprintf("experiments: AddRow(%q): %d values for %d columns",
			name, len(vals), len(rep.Columns)))
	}
	row := Row{Name: name, Suite: suite, Values: map[string]float64{}}
	for i, v := range vals {
		row.Values[rep.Columns[i]] = v
	}
	rep.Rows = append(rep.Rows, row)
}

// GroupGeoMeans appends the paper's aggregation rows — RATE, MIX, GAP and
// ALL26 geometric means — computed over the existing rows.
func (rep *Report) GroupGeoMeans() {
	groups := []struct {
		label string
		match func(Row) bool
	}{
		{"RATE", func(r Row) bool { return r.Suite == workloads.SuiteRate }},
		{"MIX", func(r Row) bool { return r.Suite == workloads.SuiteMix }},
		{"GAP", func(r Row) bool { return r.Suite == workloads.SuiteGAP }},
		{"ALL26", func(r Row) bool { return r.Suite != "" }},
	}
	base := make([]Row, len(rep.Rows))
	copy(base, rep.Rows)
	for _, g := range groups {
		vals := map[string]float64{}
		for _, col := range rep.Columns {
			var xs []float64
			for _, row := range base {
				if g.match(row) {
					xs = append(xs, row.Get(col))
				}
			}
			if len(xs) > 0 {
				vals[col] = stats.GeoMean(xs)
			}
		}
		if len(vals) > 0 {
			rep.Rows = append(rep.Rows, Row{Name: g.label, Values: vals})
		}
	}
}

// String renders the report as an aligned text table.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", rep.ID, rep.Title)
	nameW := 10
	for _, row := range rep.Rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, "workload")
	for _, c := range rep.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "%-*s", nameW+2, row.Name)
		for _, c := range rep.Columns {
			fmt.Fprintf(&b, "%12.3f", row.Get(c))
		}
		b.WriteByte('\n')
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one regenerable table/figure. Cells (optional) lists
// the experiment's full config×workload simulation matrix so RunAll can
// submit every cell to the worker pool before any report is assembled;
// experiments that run no simulations (fig4) leave it nil.
type Experiment struct {
	// ID is the catalog identifier (-run selector in cmd/dicebench).
	ID string
	// Title is the one-line description shown in listings.
	Title string
	// Run assembles the experiment's report (simulations memoized).
	Run func(*Runner) *Report
	// Cells enumerates the simulation matrix for up-front prefetch.
	Cells func(*Runner) []Cell
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Potential from doubling capacity/bandwidth (Fig 1f)", Fig01Potential, fig01Cells},
		{"fig4", "Fraction of compressible lines (Fig 4)", Fig04Compressibility, nil},
		{"fig7", "Static indexing: TSI vs BAI (Fig 7)", Fig07StaticIndexing, fig07Cells},
		{"fig10", "DICE speedup (Fig 10)", Fig10DICE, fig10Cells},
		{"fig11", "Distribution of BAI/TSI indices (Fig 11)", Fig11IndexDistribution, fig11Cells},
		{"fig12", "DICE on Knights Landing organization (Fig 12)", Fig12KNL, fig12Cells},
		{"fig13", "Non-memory-intensive workloads (Fig 13)", Fig13NonIntensive, fig13Cells},
		{"fig14", "Power/Energy/EDP (Fig 14)", Fig14Energy, fig14Cells},
		{"fig15", "Skewed Compressed Cache on DRAM (Fig 15)", Fig15SCC, fig15Cells},
		{"table4", "Sensitivity to DICE threshold (Table 4)", Table04Threshold, table04Cells},
		{"table5", "Effective capacity (Table 5)", Table05Capacity, table05Cells},
		{"table6", "Effect of DICE on L3 hit rate (Table 6)", Table06L3HitRate, table06Cells},
		{"table7", "Comparison to prefetch (Table 7)", Table07Prefetch, table07Cells},
		{"table8", "Sensitivity to capacity/BW/latency (Table 8)", Table08Sensitivity, table08Cells},
		{"cip", "CIP accuracy vs LTT size (Sec 5.3)", CIPAccuracy, cipCells},
		{"fault-sweep", "Degradation under injected bit errors", FaultSweep, faultSweepCells},
		{"ablate-index", "Ablation: NSI vs BAI vs DICE indexing", AblationIndexing, ablateIndexCells},
		{"ablate-compress", "Ablation: FPC-only vs BDI-only vs hybrid", AblationCompressor, ablateCompressCells},
		{"ablate-mlp", "Ablation: core MLP-window sensitivity", AblationMLP, ablateMLPCells},
		{"metrics-demo", "Observability demo: epoch metrics schema", MetricsDemo, metricsDemoCells},
	}
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)",
		id, strings.Join(ids, ", "))
}
