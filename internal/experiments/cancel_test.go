package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dice/internal/workloads"
)

// Cancellation-latency tests: the daemon's per-job deadlines are only
// as tight as the runner's cancellation granularity, so these pin that
// a cancelled context is observed between individual simulation cells
// — not just between experiments. The testHookSimDone hook cancels at
// an exact point in the schedule, making the assertions deterministic.

// cancelCells builds a small multi-cell matrix (4 cells: 2 configs x
// 2 workloads) at a cheap reference budget.
func cancelCells(t *testing.T, r *Runner) []Cell {
	t.Helper()
	var wls []workloads.Workload
	for _, name := range []string{"gcc", "soplex"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	return r.namedCells([]string{"base", "dice"}, wls)
}

// A cancel fired right after the first cell must stop the serial
// prefetch before the second cell starts: exactly one simulation runs.
func TestPrefetchCtxCancelsBetweenCells(t *testing.T) {
	r := NewRunner(2_000)
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.testHookSimDone = func(string) { cancel() }

	r.PrefetchCtx(ctx, cancelCells(t, r)...)

	if got := r.Sims(); got != 1 {
		t.Fatalf("serial prefetch ran %d simulations after a cancel fired during cell 1; want 1 (cancellation must be observed between cells)", got)
	}
}

// With a worker pool, a cancel fired during the first completed cell
// bounds further starts to the cells already in flight: at most
// `workers` simulations total, never the full matrix.
func TestPrefetchCtxCancelBoundsInFlight(t *testing.T) {
	const workers = 2
	r := NewRunner(2_000)
	r.Workers = workers
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	r.testHookSimDone = func(string) {
		if !fired.Swap(true) {
			cancel()
		}
	}

	cells := cancelCells(t, r)
	r.PrefetchCtx(ctx, cells...)

	if got := r.Sims(); got > workers {
		t.Fatalf("pooled prefetch ran %d simulations after an early cancel; want <= %d (only in-flight cells may finish)", got, workers)
	}
	if got := r.Sims(); int(got) == len(cells) {
		t.Fatalf("cancel was ignored: all %d cells simulated", len(cells))
	}
}

// RunAllCtx must observe a cancel that lands mid-prefetch before
// assembling any report: the partial-run contract is "reports already
// assembled", and a report whose cells were skipped must never be
// half-built from synchronous re-simulations.
func TestRunAllCtxCancelDuringPrefetch(t *testing.T) {
	r := NewRunner(2_000)
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.testHookSimDone = func(string) { cancel() }

	exps := []Experiment{
		mustExperiment(t, "ablate-index"),
		mustExperiment(t, "table4"),
	}
	reports, err := RunAllCtx(ctx, r, exps)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAllCtx error = %v, want context.Canceled", err)
	}
	if len(reports) != 0 {
		t.Fatalf("RunAllCtx assembled %d reports after a cancel during the first cell; want 0", len(reports))
	}
	if got := r.Sims(); got != 1 {
		t.Fatalf("RunAllCtx ran %d simulations after a cancel during cell 1; want 1", got)
	}
}

// An already-cancelled context runs nothing at all.
func TestRunAllCtxPreCancelled(t *testing.T) {
	r := NewRunner(2_000)
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	reports, err := RunAllCtx(ctx, r, []Experiment{mustExperiment(t, "ablate-index")})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAllCtx error = %v, want context.Canceled", err)
	}
	if len(reports) != 0 || r.Sims() != 0 {
		t.Fatalf("pre-cancelled RunAllCtx assembled %d reports and ran %d sims; want 0 and 0",
			len(reports), r.Sims())
	}
}

func mustExperiment(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
