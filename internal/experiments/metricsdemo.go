// Metrics demo: exercises the observability layer end to end and pins
// its export schema in a golden report. The demo runs one workload
// under DICE with an epoch recorder attached, tabulates a few
// per-epoch series, and records two invariants in its notes: the
// exact epoch-snapshot schema (so a field addition or rename shows up
// as a golden diff in review) and the recording-on-vs-off determinism
// check (observation never changes simulation results).
package experiments

import (
	"fmt"
	"reflect"
	"strings"

	"dice/internal/obs"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// metricsDemoEpochs is how many epochs the demo aims for: few enough
// to read as a table, enough to show the warmup-to-steady transition.
const metricsDemoEpochs = 8

// metricsDemoWorkload picks gcc — compressible and CIP-active, so the
// indexing-policy columns move.
func metricsDemoWorkload() workloads.Workload {
	w, err := workloads.ByName("gcc")
	if err != nil {
		panic(err)
	}
	return w
}

func metricsDemoCells(r *Runner) []Cell {
	w := metricsDemoWorkload()
	return []Cell{{Key: "dice|" + w.Name, Cfg: r.config("dice"), W: w}}
}

// MetricsDemo runs gcc under DICE with an epoch-metrics recorder and
// tabulates the run's time series, one row per epoch.
func MetricsDemo(r *Runner) *Report {
	w := metricsDemoWorkload()
	ref := r.Run("dice", w) // memoized reference result, recorder state per runner

	// Size the epoch so the whole run (warmup included) lands near
	// metricsDemoEpochs samples. ref.Cycles is the measured window —
	// about two-thirds of the run at the default 0.5 warmup fraction.
	epoch := ref.Cycles*3/2/metricsDemoEpochs + 1

	rec := obs.NewRecorder(epoch, 0)
	res, err := sim.RunObserved(r.config("dice"), w, &obs.Observer{Rec: rec})
	if err != nil {
		panic(err)
	}

	rep := &Report{ID: "metrics-demo", Title: "Observability demo: epoch metrics for gcc under DICE",
		Columns: []string{"ipc", "l4hit", "effcap", "baifrac", "cipacc", "ddrutil"}}
	for _, e := range rec.Snapshots() {
		rep.AddRow(fmt.Sprintf("epoch%d", e.Epoch), "",
			e.IPC, e.L4HitRate, e.EffCapacity, e.CIPBAIFrac, e.CIPAccuracy, e.DDRBusUtil)
	}

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("epoch = %d cycles; %d epochs recorded, %d dropped", epoch, len(rec.Snapshots()), rec.Dropped()),
		fmt.Sprintf("schema v%d: %s", obs.SchemaVersion, strings.Join(obs.SchemaFields(), ",")),
		fmt.Sprintf("recording on vs off produced identical results: %v", reflect.DeepEqual(ref, res)),
	)
	return rep
}
