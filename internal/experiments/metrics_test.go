package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// metricsRunner is a detRunner with epoch recording switched on.
func metricsRunner(workers int) *Runner {
	r := detRunner(workers)
	r.MetricsEpoch = 25_000
	return r
}

// TestMetricsRecordingPreservesDeterminism is the acceptance check for
// the observability layer: with recording ON, results must be
// byte-identical between the serial schedule and an 8-worker pool, and
// identical to a runner with recording OFF — and the exported metrics
// bytes themselves must be schedule-independent.
func TestMetricsRecordingPreservesDeterminism(t *testing.T) {
	wls := detWorkloads(t)
	cfgs := []string{"base", "dice"}

	serialOn := metricsRunner(1)
	pooledOn := metricsRunner(8)
	pooledOff := detRunner(8)
	for _, r := range []*Runner{serialOn, pooledOn, pooledOff} {
		r.Prefetch(r.namedCells(cfgs, wls)...)
	}

	for _, w := range wls {
		for _, cfg := range cfgs {
			on1, on8, off8 := serialOn.Run(cfg, w), pooledOn.Run(cfg, w), pooledOff.Run(cfg, w)
			if !reflect.DeepEqual(on1, on8) {
				t.Fatalf("%s|%s: recording on, workers 1 vs 8 differ", cfg, w.Name)
			}
			if !reflect.DeepEqual(on1, off8) {
				t.Fatalf("%s|%s: recording on vs off differ", cfg, w.Name)
			}
		}
	}

	// The exported series must be deterministic too, byte for byte, in
	// both formats.
	for _, format := range []string{"json", "csv"} {
		var a, b bytes.Buffer
		if err := serialOn.WriteMetrics(&a, format); err != nil {
			t.Fatal(err)
		}
		if err := pooledOn.WriteMetrics(&b, format); err != nil {
			t.Fatal(err)
		}
		if a.Len() == 0 {
			t.Fatalf("%s export is empty with recording on", format)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s metrics export differs between workers 1 and 8", format)
		}
	}

	// One series per executed simulation, keyed by memoization key.
	ms := pooledOn.Metrics()
	if want := len(cfgs) * len(wls); len(ms) != want {
		t.Fatalf("recorded %d series, want %d", len(ms), want)
	}
	for key, s := range ms {
		if len(s.Epochs) == 0 {
			t.Fatalf("series %q has no epochs", key)
		}
		if s.EpochCycles != 25_000 {
			t.Fatalf("series %q sampled every %d cycles, want 25000", key, s.EpochCycles)
		}
	}
	if pooledOff.TotalCycles() == 0 || pooledOn.TotalCycles() != serialOn.TotalCycles() {
		t.Fatalf("TotalCycles mismatch: serial %d, pooled %d",
			serialOn.TotalCycles(), pooledOn.TotalCycles())
	}

	// WriteMetrics rejects unknown formats instead of guessing.
	if err := serialOn.WriteMetrics(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("unknown format must error")
	}
}
