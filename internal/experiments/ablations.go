package experiments

import (
	"fmt"

	"dice/internal/sim"
	"dice/internal/workloads"
)

// Ablation experiments: studies of the design choices DESIGN.md calls
// out, beyond the paper's own tables. They are registered alongside the
// paper experiments so dicebench and the benchmark harness can run them.

// ablationWorkloads is a representative slice covering the behavior
// classes: capacity-bound compressible (soplex), bandwidth-bound
// compressible (gcc), incompressible streaming (libq, lbm), pointer
// chasing (mcf), and one graph kernel (cc_twi). Full runs are available
// through the paper experiments; ablations trade coverage for speed.
func ablationWorkloads() []workloads.Workload {
	names := []string{"mcf", "lbm", "soplex", "gcc", "libq", "cc_twi"}
	out := make([]workloads.Workload, 0, len(names))
	for _, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

// AblationIndexing compares the three spatial-indexing choices the paper
// walks through in Section 4.5: naive spatial indexing (NSI, nearly every
// line moves), bandwidth-aware indexing (BAI, half the lines invariant),
// and DICE's dynamic selection. NSI's cost shows up both in thrashing
// (like BAI) and in having no cheap fallback.
func ablateIndexCells(r *Runner) []Cell {
	return r.namedCells([]string{"base", "nsi", "bai", "dice"}, ablationWorkloads())
}

// AblationIndexing is the indexing ablation (beyond the paper):
// naive set-indexing (NSI) versus BAI versus full DICE, isolating
// how much of the win is index choice rather than compression.
func AblationIndexing(r *Runner) *Report {
	r.Prefetch(ablateIndexCells(r)...)
	rep := &Report{ID: "ablate-index", Title: "Indexing ablation: NSI vs BAI vs DICE",
		Columns: []string{"NSI", "BAI", "DICE"}}
	for _, w := range ablationWorkloads() {
		rep.AddRow(w.Name, w.Suite,
			r.Speedup("nsi", w),
			r.Speedup("bai", w),
			r.Speedup("dice", w))
	}
	rep.GroupGeoMeans()
	rep.Notes = append(rep.Notes,
		"paper Sec 4.5: NSI degrades incompressible workloads by as much as 63%")
	return rep
}

// diceWithAlg is the DICE configuration restricted to one compression
// algorithm (the Section 7.1 ablation).
func diceWithAlg(r *Runner, alg string) sim.Config {
	cfg := r.config("dice")
	cfg.CompressAlg = alg
	return cfg
}

func ablateCompressCells(r *Runner) []Cell {
	cells := r.namedCells([]string{"base", "dice"}, ablationWorkloads())
	for _, w := range ablationWorkloads() {
		for _, alg := range []string{"fpc", "bdi"} {
			cells = append(cells, Cell{
				Key: "dice-" + alg + "|" + w.Name, Cfg: diceWithAlg(r, alg), W: w,
			})
		}
	}
	return cells
}

// AblationCompressor re-runs DICE with FPC alone and BDI alone instead of
// the hybrid selector (Section 7.1 argues DICE is orthogonal to the
// compression algorithm; the hybrid should win but not by much on
// integer-heavy data where both algorithms overlap).
func AblationCompressor(r *Runner) *Report {
	r.Prefetch(ablateCompressCells(r)...)
	rep := &Report{ID: "ablate-compress", Title: "Compression-algorithm ablation under DICE",
		Columns: []string{"FPC-only", "BDI-only", "Hybrid"}}
	var fs, bs, hs []float64
	for _, w := range ablationWorkloads() {
		f := r.ablateOne("dice-fpc", diceWithAlg(r, "fpc"), w)
		bd := r.ablateOne("dice-bdi", diceWithAlg(r, "bdi"), w)
		h := r.Speedup("dice", w)
		rep.AddRow(w.Name, w.Suite, f, bd, h)
		fs, bs, hs = append(fs, f), append(bs, bd), append(hs, h)
	}
	rep.Rows = append(rep.Rows, Row{Name: "GMEAN", Values: map[string]float64{
		"FPC-only": geoMean(fs), "BDI-only": geoMean(bs), "Hybrid": geoMean(hs),
	}})
	rep.Notes = append(rep.Notes,
		"paper Sec 7.1: DICE works with any low-latency compressor; hybrid is best")
	return rep
}

// ablateOne runs one custom configuration on one workload and returns
// its speedup over the uncompressed baseline.
func (r *Runner) ablateOne(key string, cfg sim.Config, w workloads.Workload) float64 {
	res := r.RunConfig(key+"|"+w.Name, cfg, w)
	return sim.Speedup(r.Run("base", w), res)
}

// mlpWindows is the AblationMLP sweep of the per-core MLP window.
var mlpWindows = []int{2, 6, 16}

// mlpCfg is a named configuration with its MLP window overridden.
func mlpCfg(r *Runner, name string, win int) sim.Config {
	cfg := r.config(name)
	cfg.MLPWindow = win
	return cfg
}

func ablateMLPCells(r *Runner) []Cell {
	var cells []Cell
	for _, w := range ablationWorkloads() {
		for _, win := range mlpWindows {
			for _, name := range []string{"base", "dice"} {
				cells = append(cells, Cell{
					Key: fmt.Sprintf("%s-mlp%d|%s", name, win, w.Name),
					Cfg: mlpCfg(r, name, win), W: w,
				})
			}
		}
	}
	return cells
}

// AblationMLP sweeps the per-core memory-level-parallelism window, the
// main free parameter of the core model (DESIGN.md decision 4). DICE's
// advantage should persist across the sweep — it relieves bandwidth, not
// latency, so more outstanding misses do not substitute for it.
func AblationMLP(r *Runner) *Report {
	r.Prefetch(ablateMLPCells(r)...)
	rep := &Report{ID: "ablate-mlp", Title: "Core MLP-window sensitivity of DICE's speedup",
		Columns: []string{"MLP=2", "MLP=6", "MLP=16"}}
	windows := mlpWindows
	sums := make([][]float64, len(windows))
	for _, w := range ablationWorkloads() {
		vals := make([]float64, len(windows))
		for i, win := range windows {
			base := r.RunConfig(fmt.Sprintf("base-mlp%d|%s", win, w.Name), mlpCfg(r, "base", win), w)
			dice := r.RunConfig(fmt.Sprintf("dice-mlp%d|%s", win, w.Name), mlpCfg(r, "dice", win), w)
			vals[i] = sim.Speedup(base, dice)
			sums[i] = append(sums[i], vals[i])
		}
		rep.AddRow(w.Name, w.Suite, vals...)
	}
	gm := make(map[string]float64, len(windows))
	for i, win := range windows {
		gm[fmt.Sprintf("MLP=%d", win)] = geoMean(sums[i])
	}
	rep.Rows = append(rep.Rows, Row{Name: "GMEAN", Values: gm})
	rep.Notes = append(rep.Notes,
		"DICE's benefit is bandwidth-side, so it should survive deeper MLP windows")
	return rep
}
