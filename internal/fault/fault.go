// Package fault models stacked-DRAM reliability for the compressed DRAM
// cache: a seeded, deterministic bit-error injector applied to frame
// reads, plus a per-word SECDED ECC model (single-error correct,
// double-error detect). Compression amplifies faults — one flipped
// payload bit corrupts many decompressed bytes, and a flipped metadata
// bit mis-indexes a whole lookup — so the cache layer consumes these
// outcomes to degrade gracefully (refetch from main memory, flush the
// untrusted frame, quarantine repeat offenders) instead of trusting
// corrupt frames or crashing.
//
// Determinism: every outcome is a pure function of (seed, draw index).
// Each simulation owns one Model and consults it from the simulator's
// single goroutine, so a run's fault sequence is byte-reproducible at
// any experiment-pool worker count.
package fault

import (
	"fmt"
	"math"

	"dice/internal/stats"
)

// Policy selects the protection and degradation scheme.
type Policy uint8

// Protection policies.
const (
	// PolicyNone stores frames unprotected: every flipped bit reaches the
	// consumer undetected by the device (a per-line checksum downstream
	// may still catch it).
	PolicyNone Policy = iota
	// PolicyECC protects each 8-byte word with SECDED (72,64): single-bit
	// errors are corrected, double-bit errors are detected-uncorrectable
	// and the frame is refetched from main memory.
	PolicyECC
	// PolicyECCQuarantine is PolicyECC plus set quarantine: a frame that
	// takes QuarantineAfter detected-uncorrectable faults falls back to
	// uncompressed single-line storage, bounding the blast radius of its
	// next fault to one line instead of a whole compressed set.
	PolicyECCQuarantine
)

// String names the policy with the same spelling ParsePolicy accepts.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyECC:
		return "ecc"
	case PolicyECCQuarantine:
		return "ecc+quarantine"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy resolves a CLI policy name. The empty string selects the
// default, PolicyECCQuarantine.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "ecc+quarantine", "quarantine":
		return PolicyECCQuarantine, nil
	case "ecc":
		return PolicyECC, nil
	case "none":
		return PolicyNone, nil
	default:
		return 0, fmt.Errorf("fault: unknown policy %q (have none, ecc, ecc+quarantine)", s)
	}
}

// QuarantineAfter is the number of detected-uncorrectable faults a set
// frame absorbs before PolicyECCQuarantine demotes it to uncompressed
// storage.
const QuarantineAfter = 2

// MaxBER bounds the raw bit-error rate: beyond ~1e-1 the binomial
// per-word model stops being meaningful (every word is multi-bit faulty).
const MaxBER = 0.1

// Outcome classifies one protected frame read, worst word first.
type Outcome uint8

// Read outcomes, in increasing severity.
const (
	// Clean: no bit errors in the frame.
	Clean Outcome = iota
	// Corrected: every faulty word had a single-bit error; SECDED
	// corrected them all and the data is intact.
	Corrected
	// Silent: some word took enough flips to escape detection (three or
	// more under SECDED, any under PolicyNone) — corruption passes the
	// device unflagged.
	Silent
	// Detected: some word had a detected-uncorrectable (double-bit)
	// error. The frame cannot be trusted and must be refetched. Detected
	// dominates Silent: once the controller flags the frame, the whole
	// read is discarded regardless of other words.
	Detected
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case Silent:
		return "silent"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Config describes one injector instance.
type Config struct {
	// BER is the raw per-bit error probability applied to each protected
	// word of a frame read. Must be in (0, MaxBER].
	BER float64
	// Seed makes the fault sequence reproducible; any value is valid.
	Seed uint64
	// Policy selects the protection scheme.
	Policy Policy
}

// Stats counts injector activity at word granularity.
type Stats struct {
	// Frames is the number of protected frame reads drawn.
	Frames stats.Counter
	// Words is the number of protected words drawn across all frames.
	Words stats.Counter
	// Flipped is the number of raw bit errors injected (multi-bit words
	// beyond double count as three: the model classifies, it does not
	// enumerate individual flips past the SECDED decision point).
	Flipped stats.Counter
	// Corrected counts single-bit-faulty words fixed by SECDED.
	Corrected stats.Counter
	// Detected counts words with detected-uncorrectable errors.
	Detected stats.Counter
	// Silent counts words whose corruption escaped device detection.
	Silent stats.Counter
}

// Dump renders the counters as an ordered stats.Set for reporting.
func (s Stats) Dump() *stats.Set {
	set := stats.NewSet()
	set.Add("frames", s.Frames.Value())
	set.Add("words", s.Words.Value())
	set.Add("flipped-bits", s.Flipped.Value())
	set.Add("corrected", s.Corrected.Value())
	set.Add("detected", s.Detected.Value())
	set.Add("silent", s.Silent.Value())
	return set
}

// Model is one deterministic fault injector. Not safe for concurrent
// use; each simulation owns its own instance.
type Model struct {
	cfg   Config
	tick  uint64
	stats Stats

	// Cumulative per-word outcome thresholds over the uniform draw:
	// [0,p0) -> 0 flips, [p0,p1) -> 1 flip, [p1,p2) -> 2 flips,
	// [p2,1) -> 3+ flips.
	p0, p1, p2 float64
	wordBits   int
}

// New builds a Model, validating the configuration.
func New(cfg Config) (*Model, error) {
	if cfg.BER <= 0 || cfg.BER > MaxBER {
		return nil, fmt.Errorf("fault: BER %v out of range (0, %v]", cfg.BER, MaxBER)
	}
	switch cfg.Policy {
	case PolicyNone, PolicyECC, PolicyECCQuarantine:
	default:
		return nil, fmt.Errorf("fault: invalid policy %v", cfg.Policy)
	}
	m := &Model{cfg: cfg}
	// SECDED(72,64) protects 64 data bits with 8 check bits; check bits
	// fault too, so the exposure is 72 bits per word. Unprotected words
	// expose only the 64 data bits.
	m.wordBits = 72
	if cfg.Policy == PolicyNone {
		m.wordBits = 64
	}
	n, p := float64(m.wordBits), cfg.BER
	q := math.Pow(1-p, n)            // P(0 flips)
	q1 := n * p * math.Pow(1-p, n-1) // P(1 flip)
	q2 := n * (n - 1) / 2 * p * p * math.Pow(1-p, n-2)
	m.p0 = q
	m.p1 = q + q1
	m.p2 = q + q1 + q2
	return m, nil
}

// Policy returns the protection scheme.
func (m *Model) Policy() Policy { return m.cfg.Policy }

// Stats returns a copy of the accumulated counters.
func (m *Model) Stats() Stats { return m.stats }

// Tick reports how many random draws the model has consumed. The draw
// stream is a pure function of (Seed, tick), so two models with equal
// seeds and equal ticks are in identical states and will produce
// identical outcome sequences — the differential tests use this to
// prove the event-driven and cycle-stepped simulator cores consume the
// fault stream in lockstep.
func (m *Model) Tick() uint64 { return m.tick }

// ResetStats zeroes the counters; the draw sequence continues (ticks are
// not rewound, so warmup and measurement share one fault stream).
func (m *Model) ResetStats() { m.stats = Stats{} }

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, so distinct ticks give independent-looking draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// draw returns the next uniform value in [0, 1).
func (m *Model) draw() float64 {
	m.tick++
	return float64(splitmix64(m.cfg.Seed^m.tick*0x2545F4914F6CDD1D)>>11) / (1 << 53)
}

// ReadFrame draws the fault outcome of one protected read transferring
// frameBytes, classifying each 8-byte word independently and returning
// the worst word's outcome.
func (m *Model) ReadFrame(frameBytes int) Outcome {
	m.stats.Frames.Inc()
	words := (frameBytes + 7) / 8
	out := Clean
	for w := 0; w < words; w++ {
		m.stats.Words.Inc()
		u := m.draw()
		var flips int
		switch {
		case u < m.p0:
			continue
		case u < m.p1:
			flips = 1
		case u < m.p2:
			flips = 2
		default:
			flips = 3
		}
		m.stats.Flipped.Add(uint64(flips))
		var wordOut Outcome
		if m.cfg.Policy == PolicyNone {
			// No ECC: any corruption passes the device unflagged.
			wordOut = Silent
			m.stats.Silent.Inc()
		} else {
			switch flips {
			case 1:
				wordOut = Corrected
				m.stats.Corrected.Inc()
			case 2:
				wordOut = Detected
				m.stats.Detected.Inc()
			default:
				// Three or more flips alias into SECDED's correctable or
				// clean syndromes: miscorrection, silent corruption.
				wordOut = Silent
				m.stats.Silent.Inc()
			}
		}
		if wordOut > out {
			out = wordOut
		}
	}
	return out
}
