package fault

import (
	"testing"
)

func mustModel(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero BER", Config{BER: 0}, false},
		{"negative BER", Config{BER: -1e-3}, false},
		{"BER above max", Config{BER: 0.5}, false},
		{"BER at max", Config{BER: MaxBER}, true},
		{"typical", Config{BER: 1e-4, Seed: 7}, true},
		{"bad policy", Config{BER: 1e-4, Policy: Policy(9)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err == nil) != tc.ok {
				t.Fatalf("New(%+v) err = %v, want ok=%v", tc.cfg, err, tc.ok)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyECCQuarantine, true},
		{"ecc+quarantine", PolicyECCQuarantine, true},
		{"quarantine", PolicyECCQuarantine, true},
		{"ecc", PolicyECC, true},
		{"none", PolicyNone, true},
		{"secded", 0, false},
		{"ECC", 0, false},
	}
	for _, tc := range cases {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParsePolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, p := range []Policy{PolicyNone, PolicyECC, PolicyECCQuarantine} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %v -> %q -> %v (%v)", p, p.String(), back, err)
		}
	}
}

// TestDeterminism: two models with the same (seed, BER) produce the
// identical outcome sequence; a different seed diverges.
func TestDeterminism(t *testing.T) {
	const frames = 20_000
	cfg := Config{BER: 2e-3, Seed: 42, Policy: PolicyECC}
	a, b := mustModel(t, cfg), mustModel(t, cfg)
	diverged := false
	other := mustModel(t, Config{BER: 2e-3, Seed: 43, Policy: PolicyECC})
	for i := 0; i < frames; i++ {
		oa, ob := a.ReadFrame(80), b.ReadFrame(80)
		if oa != ob {
			t.Fatalf("frame %d: same seed diverged (%v vs %v)", i, oa, ob)
		}
		if oa != other.ReadFrame(80) {
			diverged = true
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("same-seed stats differ:\n%+v\n%+v", a.Stats(), b.Stats())
	}
	if !diverged {
		t.Fatal("different seeds produced an identical outcome sequence")
	}
}

// TestOutcomeDistribution: at a BER high enough to see every class, the
// frequencies follow single >> double >> triple, and the worst-word
// frame classification matches the word counters.
func TestOutcomeDistribution(t *testing.T) {
	m := mustModel(t, Config{BER: 3e-3, Seed: 1, Policy: PolicyECCQuarantine})
	var clean, corrected, detected, silent int
	const frames = 300_000
	for i := 0; i < frames; i++ {
		switch m.ReadFrame(80) {
		case Clean:
			clean++
		case Corrected:
			corrected++
		case Detected:
			detected++
		case Silent:
			silent++
		}
	}
	s := m.Stats()
	if s.Frames.Value() != frames {
		t.Fatalf("frames = %d, want %d", s.Frames.Value(), frames)
	}
	if s.Words.Value() != frames*10 {
		t.Fatalf("words = %d, want %d (80B frames)", s.Words.Value(), frames*10)
	}
	if clean == 0 || corrected == 0 || detected == 0 {
		t.Fatalf("distribution degenerate: clean=%d corrected=%d detected=%d silent=%d",
			clean, corrected, detected, silent)
	}
	if !(corrected > detected && detected > silent) {
		t.Fatalf("severity ordering violated: corrected=%d detected=%d silent=%d",
			corrected, detected, silent)
	}
	if s.Flipped.Value() < s.Corrected.Value()+2*s.Detected.Value() {
		t.Fatalf("flip count %d below implied minimum", s.Flipped.Value())
	}
}

// TestHigherBERFaultsMore: the injected-fault rate is monotone in BER.
func TestHigherBERFaultsMore(t *testing.T) {
	rate := func(ber float64) uint64 {
		m := mustModel(t, Config{BER: ber, Seed: 9, Policy: PolicyECC})
		for i := 0; i < 50_000; i++ {
			m.ReadFrame(80)
		}
		return m.Stats().Flipped.Value()
	}
	lo, hi := rate(1e-4), rate(3e-3)
	if hi <= lo {
		t.Fatalf("flips(3e-3)=%d not above flips(1e-4)=%d", hi, lo)
	}
}

// TestPolicyNoneIsAllSilent: with no ECC every faulty word is silent
// corruption — nothing is corrected or detected.
func TestPolicyNoneIsAllSilent(t *testing.T) {
	m := mustModel(t, Config{BER: 5e-3, Seed: 3, Policy: PolicyNone})
	sawSilent := false
	for i := 0; i < 50_000; i++ {
		switch m.ReadFrame(72) {
		case Silent:
			sawSilent = true
		case Corrected, Detected:
			t.Fatal("PolicyNone produced an ECC outcome")
		}
	}
	if !sawSilent {
		t.Fatal("no silent corruption at BER 5e-3")
	}
	s := m.Stats()
	if s.Corrected.Value() != 0 || s.Detected.Value() != 0 {
		t.Fatalf("PolicyNone counted ECC events: %+v", s)
	}
	if s.Silent.Value() == 0 {
		t.Fatal("PolicyNone counted no silent words")
	}
}

// TestResetStatsKeepsStream: resetting counters must not rewind the draw
// sequence (warmup and measurement share one fault stream).
func TestResetStatsKeepsStream(t *testing.T) {
	cfg := Config{BER: 2e-3, Seed: 11, Policy: PolicyECC}
	ref := mustModel(t, cfg)
	var refSeq []Outcome
	for i := 0; i < 2_000; i++ {
		refSeq = append(refSeq, ref.ReadFrame(80))
	}

	m := mustModel(t, cfg)
	for i := 0; i < 1_000; i++ {
		if got := m.ReadFrame(80); got != refSeq[i] {
			t.Fatalf("frame %d diverged before reset", i)
		}
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats left counters")
	}
	for i := 1_000; i < 2_000; i++ {
		if got := m.ReadFrame(80); got != refSeq[i] {
			t.Fatalf("frame %d diverged after reset (stream rewound?)", i)
		}
	}
}

func TestDumpOrdersCounters(t *testing.T) {
	m := mustModel(t, Config{BER: 1e-3, Seed: 2, Policy: PolicyECC})
	for i := 0; i < 10_000; i++ {
		m.ReadFrame(80)
	}
	set := m.Stats().Dump()
	names := set.Names()
	want := []string{"frames", "words", "flipped-bits", "corrected", "detected", "silent"}
	if len(names) != len(want) {
		t.Fatalf("Dump has %d counters, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Dump order[%d] = %q, want %q", i, names[i], n)
		}
	}
	if set.Get("frames") != 10_000 {
		t.Fatalf("frames = %d", set.Get("frames"))
	}
}

// TestTickCountsDraws pins the Tick accessor's contract: one tick per
// 8-byte word drawn, monotone, untouched by ResetStats, and equal ticks
// on equal-seed models imply identical future outcomes (the stream-
// alignment property the sim differential tests assert through it).
func TestTickCountsDraws(t *testing.T) {
	cfg := Config{BER: 2e-3, Seed: 9, Policy: PolicyECC}
	m := mustModel(t, cfg)
	if m.Tick() != 0 {
		t.Fatalf("fresh model tick = %d, want 0", m.Tick())
	}
	m.ReadFrame(80) // 10 words
	if m.Tick() != 10 {
		t.Fatalf("after one 80B frame tick = %d, want 10", m.Tick())
	}
	m.ReadFrame(72) // 9 words
	if m.Tick() != 19 {
		t.Fatalf("after 80B+72B frames tick = %d, want 19", m.Tick())
	}
	m.ResetStats()
	if m.Tick() != 19 {
		t.Fatalf("ResetStats moved tick to %d, want 19 (stream must not rewind)", m.Tick())
	}

	// Equal seed + equal tick => identical continuations.
	other := mustModel(t, cfg)
	other.ReadFrame(80)
	other.ReadFrame(72)
	if other.Tick() != m.Tick() {
		t.Fatalf("tick mismatch: %d vs %d", other.Tick(), m.Tick())
	}
	for i := 0; i < 1_000; i++ {
		if a, b := m.ReadFrame(80), other.ReadFrame(80); a != b {
			t.Fatalf("frame %d: aligned ticks diverged (%v vs %v)", i, a, b)
		}
	}
}
