package sim

import (
	"bytes"
	"reflect"
	"testing"

	"dice/internal/dcache"
	"dice/internal/dram"
	"dice/internal/obs"
	"dice/internal/workloads"
)

// The differential harness: run the same (cfg, workload) on the event
// core and the cycle-stepped reference and require the two machines to
// be indistinguishable afterwards — not just equal Results, but equal
// cache contents (dcache.Fingerprint), aligned fault-draw streams
// (fault.Model.Tick), matching DRAM channel ready-times
// (dram.NextBusFree/NextCompletion on both devices), and byte-identical
// epoch exports.

// runDiff executes cfg/w on both cores, with recorders attached when
// epoch > 0, and returns both finished states plus results.
func runDiff(t *testing.T, cfg Config, w workloads.Workload, epoch uint64) (ev, ref *runState, evRes, refRes Result, es EventStats) {
	t.Helper()
	var evOb, refOb *obs.Observer
	if epoch > 0 {
		evOb = &obs.Observer{Rec: obs.NewRecorder(epoch, 0)}
		refOb = &obs.Observer{Rec: obs.NewRecorder(epoch, 0)}
	}
	ev, err := prepare(cfg, w, evOb)
	if err != nil {
		t.Fatal(err)
	}
	es = runEvent(ev)
	evRes = ev.result()

	ref, err = prepare(cfg, w, refOb)
	if err != nil {
		t.Fatal(err)
	}
	runReference(ref)
	refRes = ref.result()
	return ev, ref, evRes, refRes, es
}

// checkMachinesEqual asserts every observable timing and content
// surface of the two finished machines matches.
func checkMachinesEqual(t *testing.T, ev, ref *runState) {
	t.Helper()
	if ef, rf := ev.m.l4.Fingerprint(), ref.m.l4.Fingerprint(); ef != rf {
		t.Errorf("L4 cache fingerprints diverged: %#x vs %#x", ef, rf)
	}
	if ev.fm != nil || ref.fm != nil {
		if (ev.fm == nil) != (ref.fm == nil) {
			t.Fatal("fault model present on one core only")
		}
		if et2, rt := ev.fm.Tick(), ref.fm.Tick(); et2 != rt {
			t.Errorf("fault draw streams diverged: tick %d vs %d", et2, rt)
		}
	}
	for _, pair := range []struct {
		name   string
		em, rm *dram.Memory
	}{
		{"hbm", ev.m.hbm, ref.m.hbm},
		{"ddr", ev.m.ddr, ref.m.ddr},
	} {
		chans := pair.em.Config().Channels
		for c := 0; c < chans; c++ {
			loc := dram.Loc{Channel: c}
			if a, b := pair.em.NextBusFree(loc), pair.rm.NextBusFree(loc); a != b {
				t.Errorf("%s ch%d NextBusFree diverged: %d vs %d", pair.name, c, a, b)
			}
			an, aok := pair.em.NextCompletion(loc)
			bn, bok := pair.rm.NextCompletion(loc)
			if aok != bok || an != bn {
				t.Errorf("%s ch%d NextCompletion diverged: (%d,%v) vs (%d,%v)",
					pair.name, c, an, aok, bn, bok)
			}
		}
	}
}

// checkSeriesEqual asserts the two recorders exported byte-identical
// epoch series in both CSV and JSON forms.
func checkSeriesEqual(t *testing.T, ev, ref *runState) {
	t.Helper()
	evS, refS := ev.et.rec.Series(), ref.et.rec.Series()
	if !reflect.DeepEqual(evS, refS) {
		t.Fatalf("epoch series diverged:\nevent: %d epochs\nref:   %d epochs",
			len(evS.Epochs), len(refS.Epochs))
	}
	var evJSON, refJSON, evCSV, refCSV bytes.Buffer
	if err := evS.WriteJSON(&evJSON); err != nil {
		t.Fatal(err)
	}
	if err := refS.WriteJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(evJSON.Bytes(), refJSON.Bytes()) {
		t.Error("JSON exports differ")
	}
	if err := evS.WriteCSV(&evCSV); err != nil {
		t.Fatal(err)
	}
	if err := refS.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(evCSV.Bytes(), refCSV.Bytes()) {
		t.Error("CSV exports differ")
	}
}

// TestEventCoreMatchesReferenceInternals sweeps the config axes the
// event core could plausibly break — compression policies, fault
// injection, bandwidth/latency knobs, prefetching, MLP-window size —
// and requires machine-level equivalence after every run.
func TestEventCoreMatchesReferenceInternals(t *testing.T) {
	const refs = 1_500
	cases := []struct {
		name string
		wl   string
		cfg  Config
	}{
		{"base-gcc", "gcc", Config{Policy: dcache.PolicyUncompressed}},
		{"dice-gcc", "gcc", Config{Policy: dcache.PolicyDICE}},
		{"dice-libq", "libq", Config{Policy: dcache.PolicyDICE}},
		{"tsi-milc", "milc", Config{Policy: dcache.PolicyTSI}},
		{"fault", "gcc", Config{Policy: dcache.PolicyDICE, FaultBER: 3e-3, FaultSeed: 7}},
		{"knobs", "gcc", Config{Policy: dcache.PolicyDICE, BWMult: 2, HalfLatency: true}},
		{"prefetch", "gcc", Config{Policy: dcache.PolicyDICE, Prefetch: PrefetchNextLine}},
		{"mlp1", "gcc", Config{Policy: dcache.PolicyDICE, MLPWindow: 1}},
		{"nowarm", "gcc", Config{Policy: dcache.PolicyDICE, WarmupFrac: -0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := workloads.ByName(tc.wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.RefsPerCore = refs
			ev, ref, evRes, refRes, es := runDiff(t, cfg, w, 10_000)
			if !reflect.DeepEqual(evRes, refRes) {
				t.Fatalf("results diverged:\nevent: %+v\nref:   %+v", evRes, refRes)
			}
			checkMachinesEqual(t, ev, ref)
			checkSeriesEqual(t, ev, ref)
			wantCore := uint64(cores) * uint64(ev.warm+ev.refs)
			if es.CoreEvents != wantCore {
				t.Errorf("CoreEvents = %d, want %d", es.CoreEvents, wantCore)
			}
			if want := uint64(len(ev.et.rec.Snapshots())) + ev.et.rec.Series().Dropped; es.EpochEvents != want {
				t.Errorf("EpochEvents = %d, want %d (snapshots recorded)", es.EpochEvents, want)
			}
			if es.CyclesSkipped == 0 {
				t.Error("CyclesSkipped = 0: the event core never skipped an idle cycle")
			}
		})
	}
}

// TestWarmResetEpochAlignment is the regression test for the warm-reset
// epoch-delta audit: under clock-skipping, the first snapshot after the
// all-cores-warm statistics reset must land on exactly the same
// boundary cycle as the cycle-stepped core's, and its delta counters —
// computed against counters that shrank at the reset — must match
// field-for-field. A scheduler that records boundaries early or late by
// even one event shifts refs between epochs and breaks this.
func TestWarmResetEpochAlignment(t *testing.T) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	// Small epoch: many boundaries, several of them straddling warmup.
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: 2_000}
	ev, ref, _, _, _ := runDiff(t, cfg, w, 5_000)

	evSnaps, refSnaps := ev.et.rec.Snapshots(), ref.et.rec.Snapshots()
	if len(evSnaps) == 0 || len(evSnaps) != len(refSnaps) {
		t.Fatalf("snapshot counts diverged: %d vs %d", len(evSnaps), len(refSnaps))
	}
	for i := range evSnaps {
		if evSnaps[i].EndCycle != refSnaps[i].EndCycle {
			t.Fatalf("epoch %d boundary cycle diverged: %d vs %d",
				i, evSnaps[i].EndCycle, refSnaps[i].EndCycle)
		}
		if !reflect.DeepEqual(evSnaps[i], refSnaps[i]) {
			t.Fatalf("epoch %d snapshot diverged:\nevent: %+v\nref:   %+v",
				i, evSnaps[i], refSnaps[i])
		}
	}
	// Boundaries must be the exact multiples of the epoch length: the
	// event core schedules them as events rather than polling, and must
	// not drift.
	for i, s := range evSnaps {
		if want := uint64(i+1) * 5_000; s.EndCycle != want {
			t.Fatalf("epoch %d ends at cycle %d, want %d", i, s.EndCycle, want)
		}
	}
}

// TestRunReferenceExported pins the exported reference entry points:
// RunReference must equal Run (the event core) for a representative
// config, and the -sim-core=cycle process toggle must route RunObserved
// through it.
func TestRunReferenceExported(t *testing.T) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: 1_000}
	evRes, _, err := RunEvent(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := RunReference(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evRes, refRes) {
		t.Fatal("RunEvent and RunReference disagree")
	}

	if CurrentCoreKind() != CoreEvent {
		t.Fatalf("default core = %v, want event", CurrentCoreKind())
	}
	SetCoreKind(CoreCycle)
	defer SetCoreKind(CoreEvent)
	if CurrentCoreKind() != CoreCycle {
		t.Fatalf("core after SetCoreKind = %v, want cycle", CurrentCoreKind())
	}
	viaToggle, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaToggle, refRes) {
		t.Fatal("Run under -sim-core=cycle does not match RunReference")
	}
}

// TestParseCoreKind pins the flag-value parser both CLIs share.
func TestParseCoreKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CoreKind
		ok   bool
	}{
		{"event", CoreEvent, true},
		{"cycle", CoreCycle, true},
		{"", 0, false},
		{"EVENT", 0, false},
		{"reference", 0, false},
	} {
		got, err := ParseCoreKind(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseCoreKind(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if CoreEvent.String() != "event" || CoreCycle.String() != "cycle" {
		t.Error("CoreKind.String does not round-trip the flag spelling")
	}
}
