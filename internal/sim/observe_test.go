package sim

import (
	"reflect"
	"testing"

	"dice/internal/dcache"
	"dice/internal/obs"
	"dice/internal/workloads"
)

// TestRunObservedIsReadOnly is the observability determinism contract:
// attaching a recorder and a full-component tracer must leave the
// simulation result byte-identical to an unobserved run. Fault
// injection is enabled so the fault/dcache trace paths (set flushes,
// quarantines, refetches) execute during the check.
func TestRunObservedIsReadOnly(t *testing.T) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := map[string]Config{
		"dice":       {Policy: dcache.PolicyDICE, RefsPerCore: 4_000},
		"dice-fault": {Policy: dcache.PolicyDICE, RefsPerCore: 4_000, FaultBER: 3e-3, FaultSeed: 7},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			plain, err := Run(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := obs.NewTracer("all", 0)
			if err != nil {
				t.Fatal(err)
			}
			ob := &obs.Observer{Rec: obs.NewRecorder(10_000, 0), Trace: tr}
			observed, err := RunObserved(cfg, w, ob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, observed) {
				t.Fatalf("observation changed the result:\n%+v\nvs\n%+v", plain, observed)
			}
			if len(ob.Rec.Snapshots()) == 0 {
				t.Fatal("recorder attached but no epochs sampled")
			}
		})
	}
}

// TestEpochSeriesShape sanity-checks the sampled series: regular time
// axis, refs accounted, and the warmup measurement-start event
// present when sim tracing is on.
func TestEpochSeriesShape(t *testing.T) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: 4_000}
	tr, err := obs.NewTracer("sim", 0)
	if err != nil {
		t.Fatal(err)
	}
	ob := &obs.Observer{Rec: obs.NewRecorder(20_000, 0), Trace: tr}
	if _, err := RunObserved(cfg, w, ob); err != nil {
		t.Fatal(err)
	}

	snaps := ob.Rec.Snapshots()
	if len(snaps) < 2 {
		t.Fatalf("want several epochs, got %d", len(snaps))
	}
	var refs uint64
	for i, s := range snaps {
		if s.Epoch != uint64(i) {
			t.Fatalf("epoch %d stamped %d", i, s.Epoch)
		}
		if s.Cycles != 20_000 || s.EndCycle != uint64(i+1)*20_000 {
			t.Fatalf("irregular time axis at epoch %d: %+v", i, s)
		}
		if len(s.CoreIPC) != cores {
			t.Fatalf("epoch %d has %d core IPCs, want %d", i, len(s.CoreIPC), cores)
		}
		refs += s.Refs
	}
	// Epoch refs must account for (almost) the whole run — everything
	// but the tail after the last boundary.
	total := uint64(cfg.RefsPerCore) * cores * 3 / 2 // warmup 0.5 included
	if refs > total || refs < total/2 {
		t.Fatalf("epochs account for %d refs of %d run", refs, total)
	}

	evs := ob.Trace.Events()
	if len(evs) != 1 || evs[0].Kind != "measurement-start" {
		t.Fatalf("sim tracing should yield exactly the measurement-start event, got %v", evs)
	}
}
