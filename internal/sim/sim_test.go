package sim

import (
	"strings"
	"testing"

	"dice/internal/dcache"
	"dice/internal/workloads"
)

// quickRefs keeps unit-test runs fast; experiments use larger windows.
const quickRefs = 30_000

func run(t *testing.T, name string, cfg Config) Result {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RefsPerCore == 0 {
		cfg.RefsPerCore = quickRefs
	}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error; "" means valid
	}{
		{"zero value", Config{}, ""},
		{"ScaleShift 18 boundary", Config{ScaleShift: 18}, ""},
		{"ScaleShift 19 over", Config{ScaleShift: 19}, "ScaleShift"},
		{"ScaleShift far over", Config{ScaleShift: 25}, "ScaleShift"},
		{"CapacityMult -1", Config{CapacityMult: -1}, "CapacityMult"},
		{"CapacityMult 0 default", Config{CapacityMult: 0}, ""},
		{"CapacityMult 4 boundary", Config{CapacityMult: 4}, ""},
		{"CapacityMult 5 over", Config{CapacityMult: 5}, "CapacityMult"},
		{"BWMult -1", Config{BWMult: -1}, "BWMult"},
		{"BWMult 0 default", Config{BWMult: 0}, ""},
		{"BWMult 4 boundary", Config{BWMult: 4}, ""},
		{"BWMult 5 over", Config{BWMult: 5}, "BWMult"},
		{"WarmupFrac 4 boundary", Config{WarmupFrac: 4}, ""},
		{"WarmupFrac 4.1 over", Config{WarmupFrac: 4.1}, "WarmupFrac"},
		{"WarmupFrac negative", Config{WarmupFrac: -0.5}, "WarmupFrac"},
		{"FaultBER negative", Config{FaultBER: -1e-6}, "FaultBER"},
		{"FaultBER over max", Config{FaultBER: 0.5}, "FaultBER"},
		{"FaultBER boundary", Config{FaultBER: 0.1}, ""},
		{"FaultPolicy ecc", Config{FaultPolicy: "ecc"}, ""},
		{"FaultPolicy bogus", Config{FaultPolicy: "parity"}, "unknown policy"},
		{"CompressAlg fpc", Config{CompressAlg: "fpc"}, ""},
		{"CompressAlg bogus", Config{CompressAlg: "zip"}, "CompressAlg"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %s", err, tc.wantErr)
			}
		})
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	r := run(t, "gcc", Config{Policy: dcache.PolicyUncompressed})
	if len(r.IPC) != 8 {
		t.Fatalf("IPC entries = %d", len(r.IPC))
	}
	for i, ipc := range r.IPC {
		if ipc <= 0 || ipc > 32 {
			t.Fatalf("core %d IPC = %v out of plausible range", i, ipc)
		}
	}
	if r.Cycles == 0 {
		t.Fatal("no cycles measured")
	}
	if r.L3.Hits+r.L3.Misses == 0 {
		t.Fatal("L3 saw no traffic")
	}
	if r.L4.Reads == 0 {
		t.Fatal("L4 saw no reads")
	}
	if r.HBM.Accesses() == 0 {
		t.Fatal("stacked DRAM saw no traffic")
	}
	if r.Energy.Total() <= 0 {
		t.Fatal("energy must be positive")
	}
	// A capacity-stressed workload must reach main memory after warmup.
	big := run(t, "mcf", Config{Policy: dcache.PolicyUncompressed})
	if big.DDR.Accesses() == 0 {
		t.Fatal("mcf must miss to main memory")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Policy: dcache.PolicyDICE}
	a := run(t, "soplex", cfg)
	b := run(t, "soplex", cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("core %d IPC differs", i)
		}
	}
	if a.L4 != b.L4 {
		t.Fatalf("L4 stats differ:\n%+v\n%+v", a.L4, b.L4)
	}
}

func TestDICEBeatsBaselineOnCompressibleWorkload(t *testing.T) {
	base := run(t, "gcc", Config{Policy: dcache.PolicyUncompressed})
	dice := run(t, "gcc", Config{Policy: dcache.PolicyDICE})
	s := Speedup(base, dice)
	if s < 1.05 {
		t.Fatalf("DICE speedup on gcc = %.3f, want > 1.05", s)
	}
	if dice.L3.HitRate() <= base.L3.HitRate() {
		t.Fatalf("DICE must raise L3 hit rate: %.3f vs %.3f",
			dice.L3.HitRate(), base.L3.HitRate())
	}
}

func TestBAIHurtsIncompressibleButDICEDoesNot(t *testing.T) {
	base := run(t, "libq", Config{Policy: dcache.PolicyUncompressed})
	bai := run(t, "libq", Config{Policy: dcache.PolicyBAI})
	dice := run(t, "libq", Config{Policy: dcache.PolicyDICE})
	if s := Speedup(base, bai); s > 0.9 {
		t.Fatalf("BAI on libq = %.3f, want significant slowdown", s)
	}
	if s := Speedup(base, dice); s < 0.97 {
		t.Fatalf("DICE on libq = %.3f, must not degrade", s)
	}
}

func TestTSIGivesCapacityBenefitOnLargeFootprint(t *testing.T) {
	base := run(t, "mcf", Config{Policy: dcache.PolicyUncompressed})
	tsi := run(t, "mcf", Config{Policy: dcache.PolicyTSI})
	if s := Speedup(base, tsi); s < 1.02 {
		t.Fatalf("TSI on mcf = %.3f, want capacity speedup", s)
	}
	if tsi.L4.HitRate() <= base.L4.HitRate() {
		t.Fatal("TSI compression must raise L4 hit rate on mcf")
	}
	if tsi.EffCapacity <= base.EffCapacity {
		t.Fatal("TSI must hold more lines than baseline")
	}
}

func TestDoubleCapacityDoubleBWUpperBound(t *testing.T) {
	base := run(t, "soplex", Config{Policy: dcache.PolicyUncompressed})
	ideal := run(t, "soplex", Config{Policy: dcache.PolicyUncompressed,
		CapacityMult: 2, BWMult: 2})
	if s := Speedup(base, ideal); s < 1.0 {
		t.Fatalf("2x capacity + 2x BW = %.3f, must not slow down", s)
	}
}

func TestSCCSlowerThanDICE(t *testing.T) {
	base := run(t, "gcc", Config{Policy: dcache.PolicyUncompressed})
	scc := run(t, "gcc", Config{Policy: dcache.PolicySCC})
	dice := run(t, "gcc", Config{Policy: dcache.PolicyDICE})
	if Speedup(base, scc) >= Speedup(base, dice) {
		t.Fatal("SCC's 4 accesses per request must underperform DICE")
	}
	if scc.L4.Probes < 3*scc.L4.Reads {
		t.Fatalf("SCC probes = %d for %d reads, want ~4x", scc.L4.Probes, scc.L4.Reads)
	}
}

func TestKNLClosesToAlloy(t *testing.T) {
	base := run(t, "gcc", Config{Policy: dcache.PolicyUncompressed})
	alloy := run(t, "gcc", Config{Policy: dcache.PolicyDICE, Org: dcache.OrgAlloy})
	knl := run(t, "gcc", Config{Policy: dcache.PolicyDICE, Org: dcache.OrgKNL})
	sa, sk := Speedup(base, alloy), Speedup(base, knl)
	if sk < 1.0 {
		t.Fatalf("KNL DICE = %.3f, must still beat baseline on gcc", sk)
	}
	if sk > sa+0.05 {
		t.Fatalf("KNL (%.3f) should not beat Alloy (%.3f) by a margin", sk, sa)
	}
}

func TestPrefetchModesRun(t *testing.T) {
	base := run(t, "leslie3d", Config{Policy: dcache.PolicyUncompressed})
	nl := run(t, "leslie3d", Config{Policy: dcache.PolicyUncompressed,
		Prefetch: PrefetchNextLine})
	wide := run(t, "leslie3d", Config{Policy: dcache.PolicyUncompressed,
		Prefetch: PrefetchWide128})
	// Prefetching must add L4 traffic.
	if nl.L4.Reads <= base.L4.Reads || wide.L4.Reads <= base.L4.Reads {
		t.Fatal("prefetch modes must add L4 reads")
	}
	// And must not catastrophically degrade.
	if s := Speedup(base, nl); s < 0.7 {
		t.Fatalf("nextline prefetch speedup = %.3f", s)
	}
}

func TestMixWorkloadRuns(t *testing.T) {
	w := workloads.Mixes()[0]
	r, err := Run(Config{Policy: dcache.PolicyDICE, RefsPerCore: quickRefs}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IPC) != 8 {
		t.Fatal("mix must produce 8 per-core IPCs")
	}
	// Mixed cores run different benchmarks, so IPCs should differ.
	same := true
	for i := 1; i < len(r.IPC); i++ {
		if r.IPC[i] != r.IPC[0] {
			same = false
		}
	}
	if same {
		t.Fatal("mix cores all produced identical IPC")
	}
}

func TestGAPWorkloadRuns(t *testing.T) {
	w, err := workloads.ByName("cc_twi")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Config{Policy: dcache.PolicyUncompressed, RefsPerCore: quickRefs}, w)
	if err != nil {
		t.Fatal(err)
	}
	dice, err := Run(Config{Policy: dcache.PolicyDICE, RefsPerCore: quickRefs}, w)
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(base, dice); s < 1.0 {
		t.Fatalf("DICE on cc_twi = %.3f, graph workloads must benefit", s)
	}
	if dice.EffCapacity <= base.EffCapacity {
		t.Fatal("graph data must compress into extra capacity")
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := Result{IPC: []float64{1, 2}}
	b := Result{IPC: []float64{2, 2}}
	if s := Speedup(a, b); s != 1.5 {
		t.Fatalf("speedup = %v, want 1.5", s)
	}
	if Speedup(Result{}, Result{}) != 0 {
		t.Fatal("empty speedup must be 0")
	}
	if Speedup(a, Result{IPC: []float64{1}}) != 0 {
		t.Fatal("mismatched cores must be 0")
	}
}

func TestCIPAccuracyHighUnderDICE(t *testing.T) {
	r := run(t, "soplex", Config{Policy: dcache.PolicyDICE})
	if r.CIPPredictions == 0 {
		t.Fatal("DICE must exercise the CIP")
	}
	if r.CIPAccuracy < 0.8 {
		t.Fatalf("CIP accuracy = %.3f, want > 0.8", r.CIPAccuracy)
	}
}

func TestWritebacksReachMainMemory(t *testing.T) {
	r := run(t, "lbm", Config{Policy: dcache.PolicyUncompressed})
	if r.DDR.Writes == 0 {
		t.Fatal("a write-heavy workload must produce DDR writebacks")
	}
}

func TestCompressAlgRestriction(t *testing.T) {
	// soplex data is a broad mix; restricting the compressor must still
	// run and produce a valid result, and the hybrid should hold at
	// least as much as either restricted algorithm.
	hybrid := run(t, "soplex", Config{Policy: dcache.PolicyDICE})
	fpc := run(t, "soplex", Config{Policy: dcache.PolicyDICE, CompressAlg: "fpc"})
	bdi := run(t, "soplex", Config{Policy: dcache.PolicyDICE, CompressAlg: "bdi"})
	if fpc.L4.Reads == 0 || bdi.L4.Reads == 0 {
		t.Fatal("restricted runs produced no traffic")
	}
	if hybrid.EffCapacity < fpc.EffCapacity-0.05 ||
		hybrid.EffCapacity < bdi.EffCapacity-0.05 {
		t.Fatalf("hybrid capacity %.2f below restricted (%.2f fpc, %.2f bdi)",
			hybrid.EffCapacity, fpc.EffCapacity, bdi.EffCapacity)
	}
	w, _ := workloads.ByName("gcc")
	_, err := Run(Config{Policy: dcache.PolicyDICE, CompressAlg: "zip", RefsPerCore: 1000}, w)
	if err == nil || !strings.Contains(err.Error(), "CompressAlg") {
		t.Fatalf("bogus CompressAlg: err = %v, want CompressAlg error", err)
	}
}

func TestFaultInjectionDegradesAndReports(t *testing.T) {
	clean := run(t, "gcc", Config{Policy: dcache.PolicyDICE})
	faulty := run(t, "gcc", Config{Policy: dcache.PolicyDICE, FaultBER: 3e-3})
	if faulty.Fault.Frames.Value() == 0 || faulty.Fault.Flipped.Value() == 0 {
		t.Fatalf("no faults injected at BER 3e-3: %+v", faulty.Fault)
	}
	if faulty.L4.FaultDetectedFrames == 0 {
		t.Fatal("no detected-uncorrectable frames reached the cache")
	}
	if faulty.L4.HitRate() >= clean.L4.HitRate() {
		t.Fatalf("faults must cost hits: %.4f faulty vs %.4f clean",
			faulty.L4.HitRate(), clean.L4.HitRate())
	}
	if clean.Fault.Frames.Value() != 0 || clean.QuarantinedSets != 0 {
		t.Fatal("fault stats moved with injection off")
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	cfg := Config{Policy: dcache.PolicyDICE, FaultBER: 1e-3, FaultSeed: 11}
	a := run(t, "soplex", cfg)
	b := run(t, "soplex", cfg)
	if a.L4 != b.L4 || a.Fault != b.Fault || a.Cycles != b.Cycles {
		t.Fatal("identical (seed, BER) runs diverged")
	}
	c := run(t, "soplex", Config{Policy: dcache.PolicyDICE, FaultBER: 1e-3, FaultSeed: 12})
	if a.Fault == c.Fault {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestHalfLatencyHelps(t *testing.T) {
	base := run(t, "milc", Config{Policy: dcache.PolicyUncompressed})
	fast := run(t, "milc", Config{Policy: dcache.PolicyUncompressed, HalfLatency: true})
	if s := Speedup(base, fast); s < 1.0 {
		t.Fatalf("half-latency L4 speedup = %.3f, want >= 1", s)
	}
}
