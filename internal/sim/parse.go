package sim

import "fmt"

// String names the prefetch mode.
func (p PrefetchMode) String() string {
	switch p {
	case PrefetchNone:
		return "none"
	case PrefetchNextLine:
		return "nextline"
	case PrefetchWide128:
		return "wide128"
	default:
		return fmt.Sprintf("prefetch(%d)", uint8(p))
	}
}

// ParsePrefetchMode maps a prefetch-mode name ("none", "nextline" or
// "wide128"; "" means none) back to its PrefetchMode value.
func ParsePrefetchMode(s string) (PrefetchMode, error) {
	switch s {
	case "", "none":
		return PrefetchNone, nil
	case "nextline":
		return PrefetchNextLine, nil
	case "wide128":
		return PrefetchWide128, nil
	default:
		return 0, fmt.Errorf("sim: unknown prefetch mode %q (want none, nextline or wide128)", s)
	}
}
