package sim

import (
	"math/rand"
	"testing"
)

// TestEventHeapOrdering checks the hand-rolled heap pops events in
// (when, kind, core-index) order — the strict total order the event
// core's determinism rests on — across random push/pop interleavings
// mixing core and epoch events.
func TestEventHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(16)
		var h eventHeap
		for i := 0; i < n; i++ {
			ev := schedEvent{when: uint64(rng.Intn(8))}
			if rng.Intn(4) == 0 {
				ev.kind = evEpoch
			} else {
				ev.kind = evCore
				ev.c = &core{idx: i}
			}
			h = append(h, ev)
		}
		// Heapify by re-pushing (append above built an arbitrary slice).
		raw := append(eventHeap(nil), h...)
		h = h[:0]
		for _, ev := range raw {
			h.push(ev)
		}
		var prev *schedEvent
		for len(h) > 0 {
			ev := h.pop()
			if prev != nil && ev.before(*prev) {
				t.Fatalf("trial %d: popped (%d,%d) after (%d,%d)",
					trial, ev.when, ev.kind, prev.when, prev.kind)
			}
			p := ev
			prev = &p
			// Re-push with a later time half the time, like the scheduler.
			if ev.kind == evCore && rng.Intn(2) == 0 && len(h) < n {
				ev.when += uint64(1 + rng.Intn(4))
				h.push(ev)
				prev = nil
			}
		}
	}
}

// TestEventHeapSameCycleOrder pins the same-cycle tie-breaks the
// determinism argument depends on: epoch events precede core events at
// an equal cycle, and same-cycle core events dispatch in core-index
// order.
func TestEventHeapSameCycleOrder(t *testing.T) {
	var h eventHeap
	for _, idx := range []int{5, 2, 7, 0, 3} {
		h.push(schedEvent{when: 10, kind: evCore, c: &core{idx: idx}})
	}
	h.push(schedEvent{when: 10, kind: evEpoch})
	h.push(schedEvent{when: 9, kind: evCore, c: &core{idx: 6}})

	want := []struct {
		when uint64
		kind eventKind
		idx  int
	}{
		{9, evCore, 6},
		{10, evEpoch, -1},
		{10, evCore, 0},
		{10, evCore, 2},
		{10, evCore, 3},
		{10, evCore, 5},
		{10, evCore, 7},
	}
	for i, w := range want {
		ev := h.pop()
		if ev.when != w.when || ev.kind != w.kind {
			t.Fatalf("pop %d: got (when=%d, kind=%d), want (when=%d, kind=%d)",
				i, ev.when, ev.kind, w.when, w.kind)
		}
		if w.kind == evCore && ev.c.idx != w.idx {
			t.Fatalf("pop %d: got core %d, want core %d", i, ev.c.idx, w.idx)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d events left", len(h))
	}
}

// TestEventHeapPopClearsSlot is the regression test for the heap-slot
// leak carried over from the retired coreHeap: pop must nil the vacated
// slot's core pointer so the last-popped *core doesn't stay reachable
// (pinning the core and everything it references) for as long as the
// slice's backing array lives.
func TestEventHeapPopClearsSlot(t *testing.T) {
	h := make(eventHeap, 0, 8)
	for i := 0; i < 8; i++ {
		h.push(schedEvent{when: uint64(100 - i), kind: evCore, c: &core{idx: i}})
	}
	for len(h) > 0 {
		h.pop()
	}
	// Every slot of the backing array must have been cleared on pop.
	for i, ev := range h[:cap(h)] {
		if ev.c != nil {
			t.Fatalf("backing array slot %d still pins core %d after pop", i, ev.c.idx)
		}
	}
}

// TestInsertSorted pins the outstanding-window insert: ascending order
// maintained for front, middle and back insertions (the append-pad-
// then-shift path), including duplicates.
func TestInsertSorted(t *testing.T) {
	cases := []struct {
		name string
		have []uint64
		v    uint64
		want []uint64
	}{
		{name: "empty", have: nil, v: 5, want: []uint64{5}},
		{name: "back", have: []uint64{1, 2, 3}, v: 9, want: []uint64{1, 2, 3, 9}},
		{name: "front", have: []uint64{4, 5, 6}, v: 1, want: []uint64{1, 4, 5, 6}},
		{name: "middle", have: []uint64{1, 5, 9}, v: 6, want: []uint64{1, 5, 6, 9}},
		{name: "duplicate", have: []uint64{3, 3, 7}, v: 3, want: []uint64{3, 3, 3, 7}},
		{name: "equal to back", have: []uint64{2, 8}, v: 8, want: []uint64{2, 8, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := insertSorted(append([]uint64(nil), tc.have...), tc.v)
			if len(got) != len(tc.want) {
				t.Fatalf("insertSorted(%v, %d) = %v, want %v", tc.have, tc.v, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("insertSorted(%v, %d) = %v, want %v", tc.have, tc.v, got, tc.want)
				}
			}
		})
	}
}

// TestInsertSortedReusesCapacity checks the retire-then-insert cycle
// never grows past the pre-sized window capacity, so the hot loop runs
// allocation-free.
func TestInsertSortedReusesCapacity(t *testing.T) {
	const window = 6
	s := make([]uint64, 0, window+1)
	base := &s[:1][0]
	for i := 0; i < 1000; i++ {
		if len(s) >= window {
			n := copy(s, s[1:])
			s = s[:n]
		}
		s = insertSorted(s, uint64(i*7%97))
		if cap(s) != window+1 || &s[:1][0] != base {
			t.Fatalf("iteration %d: backing array reallocated (cap %d)", i, cap(s))
		}
	}
}
