package sim

import (
	"math/rand"
	"testing"
)

// TestCoreHeapOrdering checks the hand-rolled heap pops cores in
// (clock, idx) order — the strict total order the event loop's
// determinism rests on — across random push/pop interleavings.
func TestCoreHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(16)
		var h coreHeap
		for i := 0; i < n; i++ {
			h = append(h, &core{idx: i, clock: uint64(rng.Intn(8))})
		}
		h.init()
		var prev *core
		for len(h) > 0 {
			c := h.pop()
			if prev != nil {
				if c.clock < prev.clock || (c.clock == prev.clock && c.idx < prev.idx) {
					t.Fatalf("trial %d: popped (%d,%d) after (%d,%d)",
						trial, c.clock, c.idx, prev.clock, prev.idx)
				}
			}
			prev = c
			// Re-push with a later clock half the time, like the event loop.
			if rng.Intn(2) == 0 && len(h) < n {
				c.clock += uint64(1 + rng.Intn(4))
				h.push(c)
				prev = nil
			}
		}
	}
}

// TestCoreHeapPopClearsSlot is the regression test for the heap-slot
// leak: the former container/heap-based Pop re-sliced the backing array
// without nilling the vacated slot, so the last-popped *core stayed
// reachable (pinning the core and everything it references) for as long
// as the slice's backing array lived.
func TestCoreHeapPopClearsSlot(t *testing.T) {
	h := make(coreHeap, 0, 8)
	for i := 0; i < 8; i++ {
		h.push(&core{idx: i, clock: uint64(100 - i)})
	}
	for len(h) > 0 {
		h.pop()
	}
	// Every slot of the backing array must have been cleared on pop.
	for i, c := range h[:cap(h)] {
		if c != nil {
			t.Fatalf("backing array slot %d still pins core %d after pop", i, c.idx)
		}
	}
}

// TestInsertSorted pins the outstanding-window insert: ascending order
// maintained for front, middle and back insertions (the append-pad-
// then-shift path), including duplicates.
func TestInsertSorted(t *testing.T) {
	cases := []struct {
		name string
		have []uint64
		v    uint64
		want []uint64
	}{
		{name: "empty", have: nil, v: 5, want: []uint64{5}},
		{name: "back", have: []uint64{1, 2, 3}, v: 9, want: []uint64{1, 2, 3, 9}},
		{name: "front", have: []uint64{4, 5, 6}, v: 1, want: []uint64{1, 4, 5, 6}},
		{name: "middle", have: []uint64{1, 5, 9}, v: 6, want: []uint64{1, 5, 6, 9}},
		{name: "duplicate", have: []uint64{3, 3, 7}, v: 3, want: []uint64{3, 3, 3, 7}},
		{name: "equal to back", have: []uint64{2, 8}, v: 8, want: []uint64{2, 8, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := insertSorted(append([]uint64(nil), tc.have...), tc.v)
			if len(got) != len(tc.want) {
				t.Fatalf("insertSorted(%v, %d) = %v, want %v", tc.have, tc.v, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("insertSorted(%v, %d) = %v, want %v", tc.have, tc.v, got, tc.want)
				}
			}
		})
	}
}

// TestInsertSortedReusesCapacity checks the retire-then-insert cycle
// never grows past the pre-sized window capacity, so the hot loop runs
// allocation-free.
func TestInsertSortedReusesCapacity(t *testing.T) {
	const window = 6
	s := make([]uint64, 0, window+1)
	base := &s[:1][0]
	for i := 0; i < 1000; i++ {
		if len(s) >= window {
			n := copy(s, s[1:])
			s = s[:n]
		}
		s = insertSorted(s, uint64(i*7%97))
		if cap(s) != window+1 || &s[:1][0] != base {
			t.Fatalf("iteration %d: backing array reallocated (cap %d)", i, cap(s))
		}
	}
}
