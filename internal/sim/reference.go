// The cycle-stepped reference core: the trivially-correct scheduling
// discipline the event core is differentially tested against. The
// global clock advances one virtual cycle at a time; every cycle, each
// core is polled in index order and stepped if its clock has arrived.
// No clock-skipping, no event heap — just the textbook loop. It stays
// in the tree build-tag-free as the differential-testing oracle and the
// -sim-core=cycle escape hatch.
package sim

import (
	"dice/internal/obs"
	"dice/internal/workloads"
)

// runReference drives the prepared state to completion one cycle at a
// time. Cores are visited in (clock, index) order by construction —
// the per-cycle index scan — which is exactly the event heap's dispatch
// order, so both cores produce byte-identical results.
func runReference(st *runState) {
	remaining := len(st.cs)
	done := make([]bool, len(st.cs))
	for now := uint64(0); remaining > 0; now++ {
		for _, c := range st.cs {
			if done[c.idx] || c.clock != now {
				continue
			}
			// Record any due epoch boundaries before stepping, exactly as
			// the pre-event-core loop did at each heap pop.
			if st.et != nil {
				for st.et.rec.Due(c.clock) {
					st.et.record()
				}
			}
			if !st.processRef(c) {
				done[c.idx] = true
				remaining--
			}
		}
	}
}

// RunReference executes workload w under cfg on the cycle-stepped
// reference core.
func RunReference(cfg Config, w workloads.Workload) (Result, error) {
	return RunReferenceObserved(cfg, w, nil)
}

// RunReferenceObserved is RunReference with an observer attached (see
// RunObserved for observer semantics).
func RunReferenceObserved(cfg Config, w workloads.Workload, ob *obs.Observer) (Result, error) {
	st, err := prepare(cfg, w, ob)
	if err != nil {
		return Result{}, err
	}
	runReference(st)
	return st.result(), nil
}
