// Epoch-metrics adaptation: turns the machine's cumulative component
// statistics into per-epoch obs.Snapshot deltas. Everything here is
// read-only with respect to the simulation — the tracker copies stats,
// computes differences against its own previous copies, and appends to
// the recorder's ring. It never feeds anything back, which is what
// keeps results byte-identical with recording on or off.
package sim

import (
	"dice/internal/dcache"
	"dice/internal/dram"
	"dice/internal/fault"
	"dice/internal/obs"
)

// epochCums holds the cumulative counters as of the previous epoch
// boundary, so the tracker can emit deltas.
type epochCums struct {
	refs   []int
	clocks []uint64
	l4     dcache.Stats
	hbm    dram.Stats
	ddr    dram.Stats
	fault  fault.Stats
	cipPre uint64
	cipFlp uint64
}

// epochTracker samples one machine into one recorder.
type epochTracker struct {
	rec         *obs.Recorder
	m           *machine
	fm          *fault.Model
	cs          []*core
	instrPerRef []float64
	refsSeen    uint64
	prev        epochCums
}

// newEpochTracker builds a tracker over the assembled machine.
func newEpochTracker(rec *obs.Recorder, m *machine, fm *fault.Model, cs []*core) *epochTracker {
	et := &epochTracker{rec: rec, m: m, fm: fm, cs: cs}
	et.instrPerRef = make([]float64, len(cs))
	for i, c := range cs {
		et.instrPerRef[i] = 1200 / c.inst.MPKI
	}
	et.prev.refs = make([]int, len(cs))
	et.prev.clocks = make([]uint64, len(cs))
	return et
}

// du returns cur-prev for cumulative counters, treating a counter that
// shrank (the warm-boundary statistics reset) as restarted from zero.
func du(cur, prev uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// ratio returns num/den, or 0 when den is zero.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// record emits one snapshot at the recorder's current boundary and
// rolls the cumulative baselines forward.
func (et *epochTracker) record() {
	boundary := et.rec.Boundary()
	m := et.m

	l4 := m.l4.Stats()
	hbm := m.hbm.Stats()
	ddr := m.ddr.Stats()
	var fs fault.Stats
	if et.fm != nil {
		fs = et.fm.Stats()
	}
	cip := m.l4.CIP()

	var s obs.Snapshot

	// Per-core and aggregate IPC over the epoch.
	s.CoreIPC = make([]float64, len(et.cs))
	var refs uint64
	var instr float64
	for i, c := range et.cs {
		dRefs := c.refsDone - et.prev.refs[i]
		dCyc := c.clock - et.prev.clocks[i]
		dInstr := float64(dRefs) * et.instrPerRef[i]
		s.CoreIPC[i] = ratio(dInstr, float64(dCyc))
		refs += uint64(dRefs)
		instr += dInstr
		et.prev.refs[i] = c.refsDone
		et.prev.clocks[i] = c.clock
	}
	s.Refs = refs
	s.IPC = instr / float64(et.rec.EpochCycles())

	// L4 cache.
	dReads := du(l4.Reads, et.prev.l4.Reads)
	s.L4Reads = dReads
	s.L4HitRate = ratio(float64(du(l4.ReadHits, et.prev.l4.ReadHits)), float64(dReads))
	s.InstallBAI = du(l4.InstallBAI, et.prev.l4.InstallBAI)
	s.InstallTSI = du(l4.InstallTSI, et.prev.l4.InstallTSI)
	s.InstallInvariant = du(l4.InstallInvariant, et.prev.l4.InstallInvariant)
	s.EffCapacity = m.l4.EffectiveCapacity()

	// DRAM devices: queue depth at the boundary, utilization and bytes
	// per access over the epoch.
	epoch := float64(et.rec.EpochCycles())
	s.L4Queue = uint64(m.hbm.InFlightTotal(boundary))
	s.L4BusUtil = ratio(float64(du(hbm.BusBusyCycles, et.prev.hbm.BusBusyCycles)),
		epoch*float64(m.hbm.Config().Channels))
	dBytes := du(hbm.BytesRead+hbm.BytesWritten, et.prev.hbm.BytesRead+et.prev.hbm.BytesWritten)
	dAcc := du(hbm.Accesses(), et.prev.hbm.Accesses())
	s.L4BytesPerAccess = ratio(float64(dBytes), float64(dAcc))
	s.DDRReads = du(ddr.Reads, et.prev.ddr.Reads)
	s.DDRWrites = du(ddr.Writes, et.prev.ddr.Writes)
	s.DDRQueue = uint64(m.ddr.InFlightTotal(boundary))
	s.DDRBusUtil = ratio(float64(du(ddr.BusBusyCycles, et.prev.ddr.BusBusyCycles)),
		epoch*float64(m.ddr.Config().Channels))

	// Index predictor: policy bias gauge plus per-epoch activity.
	s.CIPBAIFrac = cip.BAIFraction()
	if s.CIPBAIFrac >= 0.5 {
		s.CIPPolicyBAI = 1
	}
	s.CIPAccuracy = cip.Accuracy()
	s.CIPPredictions = du(cip.Predictions(), et.prev.cipPre)
	s.CIPFlips = du(cip.Flips(), et.prev.cipFlp)

	// Fault injection (all zero when injection is off).
	s.FaultCorrected = du(fs.Corrected.Value(), et.prev.fault.Corrected.Value())
	s.FaultDetected = du(fs.Detected.Value(), et.prev.fault.Detected.Value())
	s.FaultSilent = du(fs.Silent.Value(), et.prev.fault.Silent.Value())
	s.FaultRefetches = du(l4.FaultRefetches, et.prev.l4.FaultRefetches)
	s.QuarantinedSets = uint64(m.l4.QuarantineCount())

	et.prev.l4, et.prev.hbm, et.prev.ddr, et.prev.fault = l4, hbm, ddr, fs
	et.prev.cipPre, et.prev.cipFlp = cip.Predictions(), cip.Flips()

	et.rec.Record(s)
}
