// The discrete-event simulation core. Instead of sweeping the virtual
// clock one cycle at a time, the scheduler keeps a min-heap of pending
// events — per-core next-reference times plus epoch-sampling
// boundaries — and jumps the clock straight to the next one, skipping
// every idle cycle in between. Core wakeup times already fold in all
// the machine's timing sources: the issue gap, MLP-window retire
// stalls, and DRAM bus/queue delays (the channel ready-times that
// dram.NextBusFree/NextCompletion surface are what a core's next clock
// is made of). Determinism: events are dispatched in strict
// (when, kind, core-index) order, which is exactly the (clock, idx)
// order the cycle-stepped reference visits cores in, so both cores
// produce byte-identical Results — the differential tests enforce it.
package sim

import (
	"fmt"
	"sync/atomic"

	"dice/internal/obs"
	"dice/internal/workloads"
)

// CoreKind selects the simulation core RunObserved executes on.
type CoreKind int32

// Simulation cores.
const (
	// CoreEvent is the discrete-event scheduler (the default): the clock
	// jumps between scheduled events, skipping idle cycles.
	CoreEvent CoreKind = iota
	// CoreCycle is the cycle-stepped reference core: the clock advances
	// one cycle at a time and every core is polled each cycle. Slow, but
	// trivially correct — the differential-testing oracle.
	CoreCycle
)

// String names the core kind as the -sim-core flag spells it.
func (k CoreKind) String() string {
	switch k {
	case CoreEvent:
		return "event"
	case CoreCycle:
		return "cycle"
	}
	return fmt.Sprintf("CoreKind(%d)", int32(k))
}

// ParseCoreKind parses a -sim-core flag value ("event" or "cycle").
func ParseCoreKind(s string) (CoreKind, error) {
	switch s {
	case "event":
		return CoreEvent, nil
	case "cycle":
		return CoreCycle, nil
	}
	return 0, fmt.Errorf("sim: unknown core %q (want event or cycle)", s)
}

// coreKind holds the process-wide core selection (mirrors the
// workloads artifact-cache toggle: set once from flags, read per run).
var coreKind atomic.Int32

// SetCoreKind selects the simulation core used by Run/RunObserved
// process-wide. The default is CoreEvent; CLIs expose it as -sim-core.
func SetCoreKind(k CoreKind) { coreKind.Store(int32(k)) }

// CurrentCoreKind reports the process-wide core selection.
func CurrentCoreKind() CoreKind { return CoreKind(coreKind.Load()) }

// eventKind orders same-cycle events: epoch boundaries record the
// machine state as of the boundary cycle, so they must run before any
// core event scheduled at that same cycle mutates it — matching the
// reference core, which checks due boundaries before stepping a core.
type eventKind uint8

const (
	evEpoch eventKind = iota // epoch-sampling boundary
	evCore                   // core ready to issue its next reference
)

// schedEvent is one pending event. For evCore events c is the ready
// core; for evEpoch events c is nil and `when` is the recorder's next
// boundary.
type schedEvent struct {
	when uint64
	kind eventKind
	c    *core
}

// before is the scheduler's strict total order:
// (when, kind, core-index) lexicographic. Epoch events precede core
// events at the same cycle; same-cycle core events dispatch in core-
// index order, which is what makes event dispatch order identical to
// the cycle-stepped reference's per-cycle core scan.
func (e schedEvent) before(o schedEvent) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	if e.kind == evCore {
		return e.c.idx < o.c.idx
	}
	return false
}

// eventHeap is a hand-rolled binary min-heap of schedEvents under
// before — same shape as the retired coreHeap, kept free of
// container/heap's interface boxing on the hot path.
type eventHeap []schedEvent

func (h *eventHeap) push(e schedEvent) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() schedEvent {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = schedEvent{} // clear the vacated slot: don't pin the core
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		next := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			next = r
		}
		if !h[next].before(h[i]) {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
}

// EventStats reports the discrete-event scheduler's work for one run.
// It is returned alongside the Result — never folded into it — so the
// Result stays byte-identical across simulation cores.
type EventStats struct {
	// CoreEvents is the number of core-reference events dispatched
	// (= total references processed).
	CoreEvents uint64
	// EpochEvents is the number of epoch-boundary events dispatched
	// (= snapshots recorded; 0 without an observer).
	EpochEvents uint64
	// CyclesSkipped is the number of idle virtual cycles the scheduler
	// jumped over instead of stepping through — the cycle core's wasted
	// work, and the event core's speedup source.
	CyclesSkipped uint64
}

// runEvent drives the prepared state to completion on the event
// scheduler.
func runEvent(st *runState) EventStats {
	var stats EventStats
	h := make(eventHeap, 0, cores+1)
	for _, c := range st.cs {
		h.push(schedEvent{when: c.clock, kind: evCore, c: c})
	}
	live := len(h) // cores still running; epoch events only fire among them

	// Epoch boundaries enter the heap as first-class events so snapshots
	// land on exactly the boundary cycles — but only while core events
	// remain: the reference core stops checking boundaries once all
	// cores finish, and the last reference's clock bounds recording.
	if st.et != nil && live > 0 {
		h.push(schedEvent{when: st.et.rec.Boundary(), kind: evEpoch})
	}

	now := uint64(0)
	for len(h) > 0 {
		ev := h.pop()
		if ev.when > now+1 {
			stats.CyclesSkipped += ev.when - now - 1
		}
		if ev.when > now {
			now = ev.when
		}
		if ev.kind == evEpoch {
			// A boundary is only due once a core reaches it; the popped
			// epoch event has when == Boundary(), and every remaining core
			// event has when >= it, so the next core to run would see it
			// due. Dispatching it now, before that core, reproduces the
			// reference's check-boundaries-then-step order exactly.
			st.et.record()
			stats.EpochEvents++
			if live > 0 {
				h.push(schedEvent{when: st.et.rec.Boundary(), kind: evEpoch})
			}
			continue
		}
		c := ev.c
		stats.CoreEvents++
		if st.processRef(c) {
			h.push(schedEvent{when: c.clock, kind: evCore, c: c})
		} else {
			live--
			if live == 0 {
				// Only the pending epoch event (if any) can remain, and its
				// when is strictly past the final core event's — a boundary
				// no core will ever reach, which the reference never records
				// either. Drop it.
				for i := range h {
					h[i] = schedEvent{}
				}
				h = h[:0]
			}
		}
	}
	return stats
}

// RunEvent executes workload w under cfg on the discrete-event core and
// returns the result plus the scheduler's work counters.
func RunEvent(cfg Config, w workloads.Workload) (Result, EventStats, error) {
	return RunEventObserved(cfg, w, nil)
}

// RunEventObserved is RunEvent with an observer attached (see
// RunObserved for observer semantics).
func RunEventObserved(cfg Config, w workloads.Workload, ob *obs.Observer) (Result, EventStats, error) {
	st, err := prepare(cfg, w, ob)
	if err != nil {
		return Result{}, EventStats{}, err
	}
	stats := runEvent(st)
	return st.result(), stats, nil
}
