package sim

import (
	"os"
	"testing"
	"time"

	"dice/internal/dcache"
	"dice/internal/workloads"
)

// benchRefsPerCore keeps the full-sim benchmark short enough for CI
// smoke runs while still exercising warmup, contention and eviction.
const benchRefsPerCore = 4000

// benchTotalRefs is the number of simulated references one benchmark
// iteration processes (warmup included), for per-ref normalization.
func benchTotalRefs() int {
	warm := benchRefsPerCore / 2 // WarmupFrac 0.5
	return cores * (benchRefsPerCore + warm)
}

// BenchmarkRunMix1 measures one full simulation of the mix1 workload
// under the DICE policy — the end-to-end number the ROADMAP's
// "fast as the hardware allows" goal tracks. Reports ns/ref and
// refs/sec over all simulated references (warmup included).
func BenchmarkRunMix1(b *testing.B) {
	w, err := workloads.ByName("mix1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: benchRefsPerCore}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(benchTotalRefs())
	nsPerRef := float64(b.Elapsed().Nanoseconds()) / (float64(b.N) * total)
	b.ReportMetric(nsPerRef, "ns/ref")
	b.ReportMetric(1e9/nsPerRef, "refs/sec")
}

// BenchmarkRunGccCycle measures the same gcc/DICE simulation on the
// cycle-stepped reference core, the baseline the discrete-event
// scheduler's speedup is quoted against (BenchmarkRunGcc runs the
// event core via the default Run dispatch).
func BenchmarkRunGccCycle(b *testing.B) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: benchRefsPerCore}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunReference(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(benchTotalRefs())
	nsPerRef := float64(b.Elapsed().Nanoseconds()) / (float64(b.N) * total)
	b.ReportMetric(nsPerRef, "ns/ref")
	b.ReportMetric(1e9/nsPerRef, "refs/sec")
}

// TestEventCoreSmokeSpeedup asserts the discrete-event core beats the
// cycle-stepped reference on the smoke workload. The config is the
// most idle-heavy in the catalog (streaming misses with a single-slot
// MLP window maximize the gaps the event core skips); the measured
// ratio on it is 1.1-1.2x, and the assertion floor sits at 1.05x so a
// dispatch regression fails loudly without load-induced flakes. The
// gap is structural, not a tuning shortfall: every component model is
// timestamp-lazy, so the cycle-stepped loop does no per-cycle
// component work either — its only extra cost is the idle-cycle core
// scan, a few percent of one reference's simulation cost (see
// DESIGN.md §12). Wall-clock assertions are load-sensitive, so the
// test only runs when DICE_SMOKE=1 (`make bench-smoke`), never in
// tier-1 `go test ./...`.
func TestEventCoreSmokeSpeedup(t *testing.T) {
	if os.Getenv("DICE_SMOKE") != "1" {
		t.Skip("timing assertion; set DICE_SMOKE=1 (make bench-smoke) to run")
	}
	w, err := workloads.ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyUncompressed, RefsPerCore: benchRefsPerCore, MLPWindow: 1}
	// One untimed run of each core warms the workload artifact cache so
	// neither side pays the build cost.
	if _, _, err := RunEvent(cfg, w); err != nil {
		t.Fatal(err)
	}
	if _, err := RunReference(cfg, w); err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	timeCore := func(run func() error) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if err := run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	ev := timeCore(func() error { _, _, err := RunEvent(cfg, w); return err })
	cy := timeCore(func() error { _, err := RunReference(cfg, w); return err })
	ratio := float64(cy) / float64(ev)
	t.Logf("event %v, cycle %v: %.2fx", ev, cy, ratio)
	if ratio < 1.05 {
		t.Fatalf("event core only %.2fx the cycle-stepped reference, want >= 1.05x", ratio)
	}
}

// BenchmarkRunGcc measures a single-benchmark rate workload under DICE
// (gcc: small footprint, compressible) as a second full-sim point.
func BenchmarkRunGcc(b *testing.B) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: benchRefsPerCore}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(benchTotalRefs())
	nsPerRef := float64(b.Elapsed().Nanoseconds()) / (float64(b.N) * total)
	b.ReportMetric(nsPerRef, "ns/ref")
	b.ReportMetric(1e9/nsPerRef, "refs/sec")
}
