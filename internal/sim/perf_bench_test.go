package sim

import (
	"testing"

	"dice/internal/dcache"
	"dice/internal/workloads"
)

// benchRefsPerCore keeps the full-sim benchmark short enough for CI
// smoke runs while still exercising warmup, contention and eviction.
const benchRefsPerCore = 4000

// benchTotalRefs is the number of simulated references one benchmark
// iteration processes (warmup included), for per-ref normalization.
func benchTotalRefs() int {
	warm := benchRefsPerCore / 2 // WarmupFrac 0.5
	return cores * (benchRefsPerCore + warm)
}

// BenchmarkRunMix1 measures one full simulation of the mix1 workload
// under the DICE policy — the end-to-end number the ROADMAP's
// "fast as the hardware allows" goal tracks. Reports ns/ref and
// refs/sec over all simulated references (warmup included).
func BenchmarkRunMix1(b *testing.B) {
	w, err := workloads.ByName("mix1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: benchRefsPerCore}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(benchTotalRefs())
	nsPerRef := float64(b.Elapsed().Nanoseconds()) / (float64(b.N) * total)
	b.ReportMetric(nsPerRef, "ns/ref")
	b.ReportMetric(1e9/nsPerRef, "refs/sec")
}

// BenchmarkRunGcc measures a single-benchmark rate workload under DICE
// (gcc: small footprint, compressible) as a second full-sim point.
func BenchmarkRunGcc(b *testing.B) {
	w, err := workloads.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Policy: dcache.PolicyDICE, RefsPerCore: benchRefsPerCore}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(benchTotalRefs())
	nsPerRef := float64(b.Elapsed().Nanoseconds()) / (float64(b.N) * total)
	b.ReportMetric(nsPerRef, "ns/ref")
	b.ReportMetric(1e9/nsPerRef, "refs/sec")
}
