// Package sim assembles the full system of Table 2 and executes
// workloads on it: eight cores (modeled at the memory system's level of
// detail — an issue-rate gap between references plus a memory-level-
// parallelism window), a shared L3, the L4 DRAM cache in any of the
// paper's configurations, and DDR main memory, with a MAP-I hit/miss
// predictor coordinating parallel main-memory fetches, first-touch
// virtual-to-physical page allocation, optional L3 prefetching (Table 7),
// and the idealized capacity/bandwidth/latency knobs the paper sweeps
// (Figure 1f, Table 8).
package sim

import (
	"fmt"

	"dice/internal/cache"
	"dice/internal/dcache"
	"dice/internal/dram"
	"dice/internal/energy"
	"dice/internal/fault"
	"dice/internal/obs"
	"dice/internal/workloads"
)

// PrefetchMode selects the L3 fetch-width comparison of Table 7.
type PrefetchMode uint8

// Prefetch modes.
const (
	PrefetchNone PrefetchMode = iota
	// PrefetchNextLine issues a prefetch of line+1 after each L3 demand
	// miss ("Nextline-PF").
	PrefetchNextLine
	// PrefetchWide128 fetches both halves of the 128B-aligned pair on
	// each L3 demand miss ("128B-PF": two separate 64B requests).
	PrefetchWide128
)

// Config selects one system configuration.
type Config struct {
	// Policy, Org, Threshold and CIPEntries configure the L4 (see dcache).
	Policy     dcache.Policy
	Org        dcache.Org
	Threshold  int
	CIPEntries int

	// ScaleShift scales the whole system to 1/2^shift of the paper's
	// sizes (cache capacity and workload footprints together), keeping
	// the footprint:capacity and bandwidth:capacity ratios intact.
	// Default 10 (1GB -> 1MB).
	ScaleShift uint

	// CapacityMult (1 or 2) doubles L4 sets; BWMult (1 or 2) doubles L4
	// channels; HalfLatency halves L4 DRAM timing — the idealized knobs
	// of Figure 1(f) and Table 8.
	CapacityMult int
	BWMult       int
	HalfLatency  bool

	Prefetch PrefetchMode

	// CompressAlg restricts the cache's compression algorithm for the
	// ablation of Section 7.1: "fpc", "bdi", or "" for the default
	// hybrid FPC+BDI.
	CompressAlg string

	// FaultBER is the raw bit-error rate injected into L4 demand-read
	// transfers; 0 (the default) disables fault injection entirely.
	FaultBER float64
	// FaultSeed seeds the deterministic fault stream (fault.Config.Seed).
	FaultSeed uint64
	// FaultPolicy names the ECC/recovery policy: "none", "ecc", or
	// "ecc+quarantine" (the default when empty). See fault.ParsePolicy.
	FaultPolicy string

	// MLPWindow is the per-core outstanding-reference window (models
	// out-of-order memory-level parallelism). Default 6.
	MLPWindow int
	// RefsPerCore is the measured reference count per core; 0 sizes it
	// from the workload footprint.
	RefsPerCore int
	// WarmupFrac is the fraction of additional references run before
	// measurement to warm caches. Default 0.5 (of RefsPerCore).
	WarmupFrac float64
}

// system-wide constants at full scale.
const (
	fullL4Sets  = 1 << 24 // 1GB / 64B lines, direct-mapped
	fullL3Bytes = 8 << 20 // 8MB shared L3
	l3Ways      = 16
	l3HitLat    = 30 // CPU cycles
	issueWidth  = 4  // 4-wide cores (Table 2)
	cores       = 8
)

// EffectiveScale returns the scale shift a Run with this config actually
// uses (0 defaults to 10). Callers that pre-build workload artifacts —
// the experiment runner's cache warming — must key on this, not the raw
// field, or a default-scale warm would miss.
func (c Config) EffectiveScale() uint {
	if c.ScaleShift == 0 {
		return 10
	}
	return c.ScaleShift
}

func (c *Config) setDefaults() {
	c.ScaleShift = c.EffectiveScale()
	if c.CapacityMult == 0 {
		c.CapacityMult = 1
	}
	if c.BWMult == 0 {
		c.BWMult = 1
	}
	if c.MLPWindow == 0 {
		c.MLPWindow = 6
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.5
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ScaleShift > 18:
		return fmt.Errorf("sim: ScaleShift %d too large (cache would vanish)", c.ScaleShift)
	case c.CapacityMult < 0 || c.CapacityMult > 4:
		return fmt.Errorf("sim: CapacityMult %d out of range", c.CapacityMult)
	case c.BWMult < 0 || c.BWMult > 4:
		return fmt.Errorf("sim: BWMult %d out of range", c.BWMult)
	case c.WarmupFrac < 0 || c.WarmupFrac > 4:
		return fmt.Errorf("sim: WarmupFrac %v out of range", c.WarmupFrac)
	case c.FaultBER < 0 || c.FaultBER > fault.MaxBER:
		return fmt.Errorf("sim: FaultBER %v out of range [0, %v]", c.FaultBER, fault.MaxBER)
	}
	switch c.CompressAlg {
	case "", "fpc", "bdi":
	default:
		return fmt.Errorf("sim: unknown CompressAlg %q (want fpc, bdi or empty)", c.CompressAlg)
	}
	if _, err := fault.ParsePolicy(c.FaultPolicy); err != nil {
		return fmt.Errorf("sim: %v", err)
	}
	return nil
}

// Result reports one run.
type Result struct {
	Workload string
	Config   Config

	// IPC per core over the measured window; the weighted-speedup inputs.
	IPC []float64
	// Cycles is the measured-window length (max core finish - warm start).
	Cycles uint64

	L3  cache.Stats
	L4  dcache.Stats
	HBM dram.Stats
	DDR dram.Stats

	Energy         energy.Breakdown
	CIPAccuracy    float64
	CIPPredictions uint64
	MAPIAccuracy   float64
	// Fault reports injected/corrected/detected/silent fault activity over
	// the measured window (all zero when fault injection is off);
	// QuarantinedSets is the number of L4 sets quarantined to uncompressed
	// storage by the end of the run.
	Fault           fault.Stats
	QuarantinedSets int
	// EffCapacity is the average L4 effective-capacity multiplier sampled
	// over the measured window (Table 5).
	EffCapacity float64
}

// Speedup returns the weighted speedup of test over base: the mean of
// per-core IPC ratios (rate mode reduces to the IPC ratio; mixes weight
// each benchmark equally), as the paper normalizes Figures 7/10/12/15.
func Speedup(base, test Result) float64 {
	if len(base.IPC) != len(test.IPC) || len(base.IPC) == 0 {
		return 0
	}
	sum := 0.0
	for i := range base.IPC {
		if base.IPC[i] > 0 {
			sum += test.IPC[i] / base.IPC[i]
		}
	}
	return sum / float64(len(base.IPC))
}

// core tracks one core's execution state.
type core struct {
	idx         int
	inst        workloads.Instance
	clock       uint64
	gapCycles   uint64
	outstanding []uint64 // completion times, ascending
	refsDone    int
	refsTarget  int
}

// machine is the assembled system.
type machine struct {
	cfg   Config
	l3    *cache.Cache
	l4    *dcache.Cache
	hbm   *dram.Memory
	ddr   *dram.Memory
	mapi  *dcache.MAPI
	insts []workloads.Instance

	// First-touch page translation. Each core's table maps its virtual
	// page number directly to physical page + 1 (0 = unallocated) — a
	// two-level slice lookup on the per-reference hot path, replacing the
	// former global map keyed by core-tagged virtual page. Tables grow on
	// demand; footprints bound the virtual page space per core.
	pageTables [cores][]uint64
	revMap     []vpageRef // physical page -> owner
	nextPP     uint64
}

type vpageRef struct {
	inst  int
	vpage uint64
}

// translate maps a core's virtual line to a physical line, allocating
// the page on first touch. Allocation order (and therefore every
// physical address) is identical to the former map-based translation:
// physical pages are handed out in global first-touch order.
func (m *machine) translate(coreIdx int, vline uint64) uint64 {
	vpage := vline >> 6
	pt := m.pageTables[coreIdx]
	if vpage >= uint64(len(pt)) {
		grown := make([]uint64, vpage+vpage/2+64)
		copy(grown, pt)
		m.pageTables[coreIdx] = grown
		pt = grown
	}
	pp := pt[vpage]
	if pp == 0 {
		m.nextPP++
		pp = m.nextPP // stored biased by one; 0 means unallocated
		pt[vpage] = pp
		m.revMap = append(m.revMap, vpageRef{inst: coreIdx, vpage: vpage})
	}
	return (pp-1)<<6 | vline&63
}

// Line implements dcache.DataSource over physical lines.
func (m *machine) Line(paLine uint64) []byte {
	pp := paLine >> 6
	if pp >= uint64(len(m.revMap)) {
		return nil // untranslated line: treat as incompressible
	}
	ref := m.revMap[pp]
	return m.insts[ref.inst].Data(ref.vpage<<6 | paLine&63)
}

// FillLine implements dcache.Filler: the allocation-free variant of Line
// used on the cache's sizing hot path.
func (m *machine) FillLine(paLine uint64, buf []byte) bool {
	pp := paLine >> 6
	if pp >= uint64(len(m.revMap)) {
		return false
	}
	ref := m.revMap[pp]
	in := &m.insts[ref.inst]
	vline := ref.vpage<<6 | paLine&63
	if in.Fill != nil {
		in.Fill(vline, buf)
		return true
	}
	copy(buf, in.Data(vline))
	return true
}

// Run executes workload w under cfg and returns the measured result. It
// returns an error (never panics) on invalid configuration, so callers
// assembling configs from flags or files get a clean failure.
func Run(cfg Config, w workloads.Workload) (Result, error) {
	return RunObserved(cfg, w, nil)
}

// RunObserved is Run with an optional observer attached: ob's recorder
// samples epoch metrics and its tracer collects component events as
// the simulation executes. Observation is strictly read-only — the
// returned Result is byte-identical to Run's for the same (cfg, w),
// with or without an observer, which the determinism tests enforce. A
// nil observer makes RunObserved exactly Run.
//
// The simulation executes on the process-selected core (SetCoreKind):
// the discrete-event scheduler by default, or the cycle-stepped
// reference. Both produce byte-identical Results and epoch exports for
// every (cfg, w) — the differential tests enforce it.
func RunObserved(cfg Config, w workloads.Workload, ob *obs.Observer) (Result, error) {
	if CurrentCoreKind() == CoreCycle {
		return RunReferenceObserved(cfg, w, ob)
	}
	res, _, err := RunEventObserved(cfg, w, ob)
	return res, err
}

// step processes one reference of core c, advancing its clock.
func (m *machine) step(c *core) {
	req, ok := c.inst.Gen.Next()
	if !ok {
		// Streams are endless by construction (Looping/Synthetic); treat
		// exhaustion as a repeat of the last line.
		req.Line = 0
	}
	now := c.clock
	// MLP window: block on the oldest outstanding reference if full.
	// Retire by shifting down in place rather than re-slicing, so the
	// pre-sized backing array is reused for the whole run.
	if len(c.outstanding) >= m.cfg.MLPWindow {
		if t := c.outstanding[0]; t > now {
			now = t
		}
		n := copy(c.outstanding, c.outstanding[1:])
		c.outstanding = c.outstanding[:n]
	}

	pa := m.translate(c.idx, req.Line)
	l3HitBefore := m.l3.Contains(pa)
	done := m.accessMemSystem(now, pa, req.Write, true)

	// Stores retire through the store buffer; only loads occupy the MLP
	// window.
	if !req.Write {
		c.outstanding = insertSorted(c.outstanding, done)
	}

	// Prefetch options (Table 7) trigger on demand L3 misses only: an L3
	// hit means the spatial region is already on chip.
	if !l3HitBefore {
		switch m.cfg.Prefetch {
		case PrefetchNextLine:
			m.prefetch(now, c, req.Line+1)
		case PrefetchWide128:
			m.prefetch(now, c, req.Line^1)
		}
	}

	c.clock = now + c.gapCycles
}

// prefetch brings vline into L3 without blocking the core. Prefetches
// are low-priority traffic: when the target channel's queue is loaded the
// controller drops them rather than delaying demand requests, as hardware
// prefetchers do.
func (m *machine) prefetch(now uint64, c *core, vline uint64) {
	if vline >= c.inst.FootprintLines {
		return
	}
	pa := m.translate(c.idx, vline)
	if m.l3.Contains(pa) {
		return
	}
	loc := m.hbm.Decode(pa << 6)
	if m.hbm.InFlight(now, loc) > m.hbm.Config().QueueDepth/8 {
		return
	}
	m.accessMemSystem(now, pa, false, false)
}

// accessMemSystem walks one reference through L3 -> L4 -> DDR and returns
// its data-ready cycle. demand distinguishes demand requests (which train
// MAP-I) from prefetches.
func (m *machine) accessMemSystem(now uint64, pa uint64, write bool, demand bool) uint64 {
	if m.l3.Lookup(pa, write) {
		return now + l3HitLat
	}
	tL4 := now + l3HitLat // L3 miss determination

	// MAP-I: on a predicted miss, launch the main-memory fetch in
	// parallel with the L4 probe.
	predHit := true
	var parallelDDR uint64
	if demand {
		predHit = m.mapi.PredictHit(pa)
		if !predHit {
			parallelDDR = m.ddr.AccessAddr(tL4, pa<<6, false, 64)
		}
	}

	r := m.l4.Read(tL4, pa)
	var dataAt uint64
	if r.Hit {
		dataAt = r.Done
	} else {
		switch {
		case demand && !predHit:
			dataAt = max64(parallelDDR, tL4)
		default:
			dataAt = m.ddr.AccessAddr(r.Done, pa<<6, false, 64)
		}
		inst := m.l4.Install(dataAt, pa, false)
		m.drainVictims(inst.Done, inst.Victims)
	}
	if demand {
		m.mapi.Update(pa, predHit, r.Hit)
	}

	// Fill L3 with the demand line, plus any adjacent lines the L4
	// delivered for free (the DICE/BAI bandwidth benefit, Table 6).
	m.installL3(dataAt, pa, write)
	if r.HasExtra {
		m.installL3(dataAt, r.Extra, false)
	}
	return dataAt
}

// installL3 fills a line into L3, routing any dirty victim back to the L4
// as a writeback (whose own victims go to main memory).
func (m *machine) installL3(now uint64, pa uint64, dirty bool) {
	v, evicted := m.l3.Install(pa, dirty)
	if evicted && v.Dirty {
		res := m.l4.Writeback(now, v.Line)
		m.drainVictims(res.Done, res.Victims)
	}
}

// drainVictims writes dirty L4 victims back to main memory.
func (m *machine) drainVictims(now uint64, victims []dcache.Victim) {
	for _, v := range victims {
		if v.Dirty {
			m.ddr.AccessAddr(now, v.Line<<6, true, 64)
		}
	}
}

// insertSorted keeps the small outstanding-completion slice ascending.
func insertSorted(s []uint64, v uint64) []uint64 {
	i := len(s)
	for i > 0 && s[i-1] > v {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
