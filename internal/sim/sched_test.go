package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Quick-checks for the scheduler primitives, pinned against a naive
// sorted-slice reference scheduler (the same pattern as the dram
// reserveBus quick-checks): every dispatch order the heap produces must
// match a stable sort under the (when, kind, core-index) total order.

// naiveSched is the executable specification: a plain slice re-sorted
// before every pop with a stable comparator over the same total order
// the heap's before() implements.
type naiveSched struct {
	evs []schedEvent
}

func (n *naiveSched) push(e schedEvent) { n.evs = append(n.evs, e) }

func (n *naiveSched) pop() schedEvent {
	sort.SliceStable(n.evs, func(i, j int) bool { return n.evs[i].before(n.evs[j]) })
	e := n.evs[0]
	n.evs = n.evs[1:]
	return e
}

// sameEvent compares dispatch identity (when, kind, core).
func sameEvent(a, b schedEvent) bool {
	return a.when == b.when && a.kind == b.kind && a.c == b.c
}

// TestQuickSchedulerMatchesNaive drives random event streams — pushes
// interleaved with pops, same-cycle collisions forced by a tiny time
// range — through both schedulers and requires identical dispatch
// sequences.
func TestQuickSchedulerMatchesNaive(t *testing.T) {
	coresPool := make([]*core, 8)
	for i := range coresPool {
		coresPool[i] = &core{idx: i}
	}
	f := func(ops []uint16) bool {
		var h eventHeap
		var n naiveSched
		for _, op := range ops {
			if op%3 != 0 && len(h) > 0 {
				if !sameEvent(h.pop(), n.pop()) {
					return false
				}
				continue
			}
			ev := schedEvent{when: uint64(op % 7)} // tiny range: force ties
			if op%5 == 0 {
				ev.kind = evEpoch
			} else {
				ev.kind = evCore
				ev.c = coresPool[int(op)%len(coresPool)]
			}
			h.push(ev)
			n.push(ev)
		}
		for len(h) > 0 {
			if !sameEvent(h.pop(), n.pop()) {
				return false
			}
		}
		return len(n.evs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWakeupCoalescing models the scheduler's reschedule pattern:
// each popped core event re-enters at a strictly later wakeup time
// (issue gap, MLP retire, or DRAM ready-time — all strictly positive
// delays). The property: dispatch times are globally nondecreasing and
// every core's own dispatches are strictly increasing, under arbitrary
// wakeup deltas — including many cores coalescing onto the same cycle.
func TestQuickWakeupCoalescing(t *testing.T) {
	f := func(deltas []uint8, rounds uint8) bool {
		cs := make([]*core, 4)
		var h eventHeap
		for i := range cs {
			cs[i] = &core{idx: i}
			h.push(schedEvent{when: 0, kind: evCore, c: cs[i]})
		}
		lastPer := map[*core]uint64{}
		first := map[*core]bool{cs[0]: true, cs[1]: true, cs[2]: true, cs[3]: true}
		last := uint64(0)
		budget := int(rounds)%64 + 8
		di := 0
		for len(h) > 0 {
			ev := h.pop()
			if ev.when < last {
				return false // global dispatch order went backwards
			}
			last = ev.when
			if !first[ev.c] && ev.when <= lastPer[ev.c] {
				return false // a core dispatched twice at one cycle
			}
			first[ev.c] = false
			lastPer[ev.c] = ev.when
			if budget > 0 {
				budget--
				d := uint64(1) // strictly positive wakeup delay
				if di < len(deltas) {
					d += uint64(deltas[di]) % 16
					di++
				}
				ev.when += d
				h.push(ev)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyQueueIdleSkip pins the idle-skip accounting on a stream with
// huge gaps: a single core rescheduled far into the future must charge
// every skipped cycle to CyclesSkipped, and a drained heap must end the
// run (no busy-wait on an empty queue).
func TestEmptyQueueIdleSkip(t *testing.T) {
	var h eventHeap
	c := &core{idx: 0}
	h.push(schedEvent{when: 0, kind: evCore, c: c})

	wakeups := []uint64{1_000, 1_000_000, 1_000_001, 5_000_000}
	now := uint64(0)
	var skipped, dispatched uint64
	i := 0
	for len(h) > 0 {
		ev := h.pop()
		if ev.when > now+1 {
			skipped += ev.when - now - 1
		}
		if ev.when > now {
			now = ev.when
		}
		dispatched++
		if i < len(wakeups) {
			h.push(schedEvent{when: wakeups[i], kind: evCore, c: c})
			i++
		}
	}
	if dispatched != uint64(len(wakeups))+1 {
		t.Fatalf("dispatched %d events, want %d", dispatched, len(wakeups)+1)
	}
	// Idle cycles: (0,1000) skips 999, (1000,1000000) skips 998999,
	// (1000000,1000001) adjacent skips 0, (1000001,5000000) skips 3999998.
	if want := uint64(999 + 998_999 + 0 + 3_999_998); skipped != want {
		t.Fatalf("CyclesSkipped accounting = %d, want %d", skipped, want)
	}
}

// TestSchedulerRandomSoak cross-checks a longer randomized soak of the
// full push/pop mix against the naive scheduler, with wider time ranges
// than the quick-check's tie-forcing band.
func TestSchedulerRandomSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	coresPool := make([]*core, cores)
	for i := range coresPool {
		coresPool[i] = &core{idx: i}
	}
	var h eventHeap
	var n naiveSched
	for i := 0; i < 20_000; i++ {
		if rng.Intn(3) > 0 && len(h) > 0 {
			if !sameEvent(h.pop(), n.pop()) {
				t.Fatalf("step %d: heap and naive scheduler diverged", i)
			}
			continue
		}
		ev := schedEvent{when: uint64(rng.Intn(1 << 20))}
		if rng.Intn(8) == 0 {
			ev.kind = evEpoch
		} else {
			ev.kind = evCore
			ev.c = coresPool[rng.Intn(len(coresPool))]
		}
		h.push(ev)
		n.push(ev)
	}
	for len(h) > 0 {
		if !sameEvent(h.pop(), n.pop()) {
			t.Fatal("drain: heap and naive scheduler diverged")
		}
	}
}
