package sim

import (
	"reflect"
	"testing"

	"dice/internal/dcache"
	"dice/internal/workloads"
)

// fuzzWorkloads is the pool of small, structurally distinct workloads
// the fuzzer draws from (cache-friendly, streaming, and compressible
// kinds exercise different L4 policy paths).
var fuzzWorkloads = []string{"gcc", "libq", "milc"}

// fuzzConfig derives a valid sim Config from raw fuzz knobs. Every
// reachable value is valid by construction — the oracle is equality of
// the two simulation cores, not input validation.
func fuzzConfig(knobs uint32, refs16 uint16, faultSel uint64) Config {
	policies := []dcache.Policy{
		dcache.PolicyUncompressed, dcache.PolicyTSI, dcache.PolicyNSI,
		dcache.PolicyBAI, dcache.PolicyDICE, dcache.PolicySCC,
	}
	cfg := Config{
		Policy:      policies[knobs%uint32(len(policies))],
		RefsPerCore: 32 + int(refs16)%384,
		MLPWindow:   1 + int(knobs>>3)%8,
		Prefetch:    PrefetchMode((knobs >> 6) % 3),
		ScaleShift:  12 + uint(knobs>>8)%3,
	}
	if knobs>>11&1 == 1 {
		cfg.Threshold = 40 + int(knobs>>12)%25 // within dcache's [?, 64] bound
	}
	if knobs>>17&1 == 1 {
		cfg.BWMult = 2
	}
	if knobs>>18&1 == 1 {
		cfg.HalfLatency = true
	}
	switch (knobs >> 19) % 3 {
	case 1:
		cfg.CompressAlg = "fpc"
	case 2:
		cfg.CompressAlg = "bdi"
	}
	if faultSel != 0 {
		cfg.FaultBER = 1e-3
		cfg.FaultSeed = faultSel
	}
	return cfg
}

// FuzzEventSchedule is the event-vs-cycle equality oracle under fuzzed
// config knobs and short reference streams: for any reachable
// configuration, the discrete-event core and the cycle-stepped
// reference must produce deeply equal Results and leave
// indistinguishable machines (cache fingerprint, fault-stream tick).
func FuzzEventSchedule(f *testing.F) {
	// Seed corpus: one per policy family, fault injection on and off,
	// prefetch and knob variants (mirrored in testdata/fuzz).
	f.Add(uint32(0), uint16(100), uint32(0), uint64(0))
	f.Add(uint32(4), uint16(200), uint32(1), uint64(0))             // DICE on libq
	f.Add(uint32(4), uint16(300), uint32(2), uint64(7))             // DICE + faults
	f.Add(uint32(1<<17|1<<18|2), uint16(150), uint32(0), uint64(0)) // knobs + NSI
	f.Add(uint32(5|1<<6|1<<19), uint16(250), uint32(1), uint64(0))  // SCC + prefetch + fpc
	f.Fuzz(func(t *testing.T, knobs uint32, refs16 uint16, wl uint32, faultSel uint64) {
		w, err := workloads.ByName(fuzzWorkloads[wl%uint32(len(fuzzWorkloads))])
		if err != nil {
			t.Fatal(err)
		}
		cfg := fuzzConfig(knobs, refs16, faultSel)

		evSt, err := prepare(cfg, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		runEvent(evSt)
		evRes := evSt.result()

		refSt, err := prepare(cfg, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		runReference(refSt)
		refRes := refSt.result()

		if !reflect.DeepEqual(evRes, refRes) {
			t.Fatalf("cores diverged under cfg %+v:\nevent: %+v\nref:   %+v", cfg, evRes, refRes)
		}
		if ef, rf := evSt.m.l4.Fingerprint(), refSt.m.l4.Fingerprint(); ef != rf {
			t.Fatalf("cache fingerprints diverged under cfg %+v: %#x vs %#x", cfg, ef, rf)
		}
		if evSt.fm != nil && evSt.fm.Tick() != refSt.fm.Tick() {
			t.Fatalf("fault streams diverged under cfg %+v: tick %d vs %d",
				cfg, evSt.fm.Tick(), refSt.fm.Tick())
		}
	})
}
