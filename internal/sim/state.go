// Shared run state: everything a simulation core needs that is not the
// scheduling discipline itself. prepare assembles the machine, cores
// and phase bookkeeping; processRef advances one core by one reference
// (warmup accounting included); result folds the finished state into a
// Result. Both the event core (event.go) and the cycle-stepped
// reference core (reference.go) drive exactly these three hooks, which
// is the structural half of the byte-identical-results guarantee — the
// other half is that both cores process references in the same
// (clock, core-index) order.
package sim

import (
	"fmt"

	"dice/internal/cache"
	"dice/internal/compress"
	"dice/internal/dcache"
	"dice/internal/dram"
	"dice/internal/energy"
	"dice/internal/fault"
	"dice/internal/obs"
	"dice/internal/workloads"
)

// runState carries one run's machine plus the loop-invariant sizing and
// phase bookkeeping shared by both simulation cores.
type runState struct {
	cfg   Config
	wName string

	m  *machine
	fm *fault.Model
	tr *obs.Tracer
	et *epochTracker
	cs []*core

	warm int // per-core warmup references before measurement
	refs int // per-core measured references

	warmClock   []uint64
	warmedCores int
	warmed      bool

	capSum      float64
	capSamples  float64
	sampleEvery int
	processed   int
}

// prepare validates cfg, assembles the machine and cores for workload
// w, and returns the ready-to-run state. It is the setup half of the
// former monolithic run loop, byte-for-byte: allocation order, sizing
// and defaulting are unchanged.
func prepare(cfg Config, w workloads.Workload, ob *obs.Observer) (*runState, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr := ob.Tracer()

	m := &machine{cfg: cfg}
	m.insts = w.Build(cfg.ScaleShift)

	// L4 DRAM device, with the bandwidth/latency knobs applied.
	hbmCfg := dram.HBMConfig()
	hbmCfg.Channels *= cfg.BWMult
	if cfg.HalfLatency {
		hbmCfg.TCAS /= 2
		hbmCfg.TRCD /= 2
		hbmCfg.TRP /= 2
		hbmCfg.TRAS /= 2
	}
	hbmCfg.Name, hbmCfg.Trace = "l4", tr
	ddrCfg := dram.DDRConfig()
	ddrCfg.Name, ddrCfg.Trace = "ddr", tr
	m.hbm = dram.New(hbmCfg)
	m.ddr = dram.New(ddrCfg)

	sets := (fullL4Sets >> cfg.ScaleShift) * cfg.CapacityMult
	if sets < 64 {
		sets = 64
	}
	l4cfg := dcache.Config{
		Sets:       sets,
		Policy:     cfg.Policy,
		Org:        cfg.Org,
		Threshold:  cfg.Threshold,
		CIPEntries: cfg.CIPEntries,
		Mem:        m.hbm,
		Data:       m,
		Trace:      tr,
	}
	switch cfg.CompressAlg {
	case "":
		// hybrid FPC+BDI, the paper's default
	case "fpc":
		sc := compress.NewSizeCache(0)
		l4cfg.SingleSizer = func(l []byte) int { return sc.SingleWith(compress.AlgFPC, l) }
		l4cfg.PairSizer = func(a, b []byte) int { return sc.PairWith(compress.AlgFPC, a, b) }
	case "bdi":
		sc := compress.NewSizeCache(0)
		l4cfg.SingleSizer = func(l []byte) int { return sc.SingleWith(compress.AlgBDI, l) }
		l4cfg.PairSizer = func(a, b []byte) int { return sc.PairWith(compress.AlgBDI, a, b) }
	default:
		// Unreachable: Validate rejects unknown algorithms up front.
		return nil, fmt.Errorf("sim: unknown CompressAlg %q", cfg.CompressAlg)
	}
	var fm *fault.Model
	if cfg.FaultBER > 0 {
		pol, err := fault.ParsePolicy(cfg.FaultPolicy)
		if err != nil {
			return nil, fmt.Errorf("sim: %v", err)
		}
		fm, err = fault.New(fault.Config{BER: cfg.FaultBER, Seed: cfg.FaultSeed, Policy: pol})
		if err != nil {
			return nil, fmt.Errorf("sim: %v", err)
		}
		l4cfg.Faults = fm
	}
	m.l4 = dcache.New(l4cfg)

	l3Bytes := fullL3Bytes >> cfg.ScaleShift
	if l3Bytes < 64*64*l3Ways {
		l3Bytes = 64 * 64 * l3Ways
	}
	m.l3 = cache.New(cache.Config{
		SizeBytes: l3Bytes, Ways: l3Ways, LineBytes: 64, HitLatency: l3HitLat,
	})
	m.mapi = dcache.NewMAPI(4096)

	// Size the run.
	refs := cfg.RefsPerCore
	if refs == 0 {
		maxFP := uint64(0)
		for _, in := range m.insts {
			if in.FootprintLines > maxFP {
				maxFP = in.FootprintLines
			}
		}
		refs = int(5 * maxFP)
		if refs < 120_000 {
			refs = 120_000
		}
		if refs > 400_000 {
			refs = 400_000
		}
	}
	warm := int(float64(refs) * cfg.WarmupFrac)

	cs := make([]*core, cores)
	for i := range cs {
		in := m.insts[i%len(m.insts)]
		instrPerRef := 1200 / in.MPKI
		gap := uint64(instrPerRef / issueWidth)
		if gap == 0 {
			gap = 1
		}
		cs[i] = &core{
			idx: i, inst: in, gapCycles: gap, refsTarget: warm + refs,
			outstanding: make([]uint64, 0, cfg.MLPWindow+1),
		}
	}

	st := &runState{
		cfg: cfg, wName: w.Name,
		m: m, fm: fm, tr: tr, cs: cs,
		warm: warm, refs: refs,
		warmClock: make([]uint64, cores),
	}

	// Epoch sampling rides the cores' virtual clocks: references are
	// processed in nondecreasing clock order, so boundaries are crossed
	// in order under either scheduling discipline.
	if rec := ob.Recorder(); rec != nil {
		st.et = newEpochTracker(rec, m, fm, cs)
	}

	st.sampleEvery = (refs * cores) / 64
	if st.sampleEvery == 0 {
		st.sampleEvery = 1
	}
	return st, nil
}

// processRef executes one reference on core c — the loop body shared by
// both simulation cores: step the machine, account warmup (resetting
// shared-structure stats once every core is warm), and sample effective
// capacity. It reports whether c still has references to run. Epoch
// recording is NOT done here: each core decides when boundaries are due
// (that is precisely the scheduling discipline), but both must call
// st.et.record() at the same points in the reference order.
func (st *runState) processRef(c *core) bool {
	m := st.m
	m.step(c)
	c.refsDone++
	st.processed++

	if c.refsDone == st.warm {
		st.warmClock[c.idx] = c.clock
		st.warmedCores++
		if st.warmedCores == cores {
			st.warmed = true
			m.l3.ResetStats()
			m.l4.ResetStats()
			m.hbm.ResetStats()
			m.ddr.ResetStats()
			if st.fm != nil {
				// Counters restart with the measured window; the fault
				// stream itself keeps advancing (no tick rewind).
				st.fm.ResetStats()
			}
			if st.tr.Enabled(obs.CompSim) {
				st.tr.Emitf(c.clock, obs.CompSim, "measurement-start",
					"all %d cores warm, shared-structure stats reset", cores)
			}
		}
	}
	if st.warmed && st.processed%st.sampleEvery == 0 {
		st.capSum += m.l4.EffectiveCapacity()
		st.capSamples++
	}
	return c.refsDone < c.refsTarget
}

// result folds the finished run state into a Result: per-core IPC over
// each core's measured window, then the shared-structure statistics.
func (st *runState) result() Result {
	m := st.m
	res := Result{Workload: st.wName, Config: st.cfg, IPC: make([]float64, cores)}
	var maxFinish, minStart uint64
	minStart = ^uint64(0)
	for i, c := range st.cs {
		finish := c.clock
		for _, t := range c.outstanding {
			if t > finish {
				finish = t
			}
		}
		start := st.warmClock[i]
		if st.warm == 0 {
			start = 0
		}
		span := finish - start
		if span == 0 {
			span = 1
		}
		instr := float64(st.refs) * (1200 / c.inst.MPKI)
		res.IPC[i] = instr / float64(span)
		if finish > maxFinish {
			maxFinish = finish
		}
		if start < minStart {
			minStart = start
		}
	}
	res.Cycles = maxFinish - minStart
	res.L3 = m.l3.Stats()
	res.L4 = m.l4.Stats()
	res.HBM = m.hbm.Stats()
	res.DDR = m.ddr.Stats()
	res.Energy = energy.Compute(res.HBM, res.DDR, res.Cycles)
	res.CIPAccuracy = m.l4.CIP().Accuracy()
	res.CIPPredictions = m.l4.CIP().Predictions()
	res.MAPIAccuracy = m.mapi.Accuracy()
	if st.capSamples > 0 {
		res.EffCapacity = st.capSum / st.capSamples
	} else {
		res.EffCapacity = m.l4.EffectiveCapacity()
	}
	if st.fm != nil {
		res.Fault = st.fm.Stats()
	}
	res.QuarantinedSets = m.l4.QuarantineCount()
	return res
}
