// Full four-level hierarchy, end to end: private L1/L2 and a shared L3
// built from the cache.Hierarchy component (the paper's Table 2 levels),
// backed by a DICE-compressed L4 DRAM cache and DDR main memory. This is
// the complete memory path a reference travels in the paper's system,
// assembled from the library's public pieces — useful as a template for
// embedding the DICE cache behind your own frontend.
//
// Run with:
//
//	go run ./examples/fullhierarchy
package main

import (
	"encoding/binary"
	"fmt"

	"dice/internal/cache"
	"dice/internal/core"
	"dice/internal/dram"
)

// workloadData: database-page-like lines — row ids and field offsets near
// per-page bases (compressible), with a quarter of pages holding packed
// blobs (incompressible).
type workloadData struct{}

func (workloadData) Line(line uint64) []byte {
	buf := make([]byte, 64)
	page := line >> 6
	if page%4 == 1 {
		h := line*0xA24BAED4963EE407 + 3
		for i := 0; i < 8; i++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			binary.LittleEndian.PutUint64(buf[i*8:], h)
		}
		return buf
	}
	base := uint32(0x2000_0000) + uint32(page)<<12
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(buf[i*4:], base+uint32(line%64)*64+uint32(i*28))
	}
	return buf
}

func main() {
	// Table 2 shapes, scaled 1/64 so the demo runs in a blink:
	// L1 32KB/8w, L2 256KB/8w, shared L3 8MB/16w -> here 512B/4KB/128KB.
	hier := cache.NewHierarchy(
		cache.Config{SizeBytes: 512, Ways: 8, LineBytes: 64, HitLatency: 4},
		cache.Config{SizeBytes: 4 << 10, Ways: 8, LineBytes: 64, HitLatency: 12},
		cache.Config{SizeBytes: 128 << 10, Ways: 16, LineBytes: 64, HitLatency: 30},
	)
	// L4: 1GB/64 = 256K sets -> here 4096 sets (288KB), DICE design.
	l4 := core.New(core.Config{Sets: 1 << 12, Design: core.DICE, Data: workloadData{}})
	ddr := dram.New(dram.DDRConfig())

	// 384KB working set: overflows every SRAM level and exceeds the L4,
	// so all four levels and main memory stay exercised.
	const footprint = 6 << 10
	now := uint64(0)
	var l4Extras int

	// A scan-plus-lookup workload: sequential sweeps (table scans) mixed
	// with pointer lookups into a hot index region.
	var x uint64 = 88172645463325252
	rnd := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	next := func(i int) uint64 {
		if i%3 == 0 {
			return rnd() % (footprint / 8) // hot index
		}
		return uint64(i) % footprint // scan
	}

	for i := 0; i < 200_000; i++ {
		line := next(i)
		write := i%11 == 0
		r := hier.Access(line, write)
		for _, wb := range r.Writebacks {
			l4.Writeback(now, wb)
		}
		if r.HitLevel >= 0 {
			now += uint64(r.Latency)
			continue
		}
		// Full SRAM miss: go to the DRAM cache.
		lr := l4.Read(now+uint64(r.Latency), line)
		dataAt := lr.Done
		if !lr.Hit {
			dataAt = ddr.AccessAddr(lr.Done, line<<6, false, 64)
			inst := l4.Install(dataAt, line, false)
			for _, v := range inst.Victims {
				if v.Dirty {
					ddr.AccessAddr(inst.Done, v.Line<<6, true, 64)
				}
			}
		}
		// Fill the SRAM levels with the demand line and any free
		// adjacent lines the compressed access delivered.
		for _, wb := range hier.Fill(line, write) {
			l4.Writeback(dataAt, wb)
		}
		if lr.HasExtra {
			l4Extras++
			for _, wb := range hier.Fill(lr.Extra, false) {
				l4.Writeback(dataAt, wb)
			}
		}
		now = dataAt
	}

	fmt.Println("four-level hierarchy with a DICE L4 (200k references)")
	fmt.Println("per-level hit rates:")
	names := []string{"L1 (private)", "L2 (private)", "L3 (shared)"}
	for i := 0; i < hier.Levels(); i++ {
		st := hier.Level(i).Stats()
		fmt.Printf("  %-13s %6.1f%%  (%d lookups)\n",
			names[i], 100*st.HitRate(), st.Hits+st.Misses)
	}
	l4s := l4.Stats()
	fmt.Printf("  %-13s %6.1f%%  (%d lookups)\n", "L4 (DICE)", 100*l4s.HitRate(), l4s.Reads)
	fmt.Printf("\nDICE delivered %d free adjacent lines into the SRAM levels\n", l4Extras)
	fmt.Printf("effective L4 capacity: %.2fx; CIP accuracy: %.1f%%\n",
		l4.EffectiveCapacity(), 100*l4.CIPAccuracy())
	d := ddr.Stats()
	fmt.Printf("main-memory traffic: %d reads, %d writebacks\n", d.Reads, d.Writes)
}
