// Hybrid-memory sweep: the motivating scenario of the paper's
// introduction. A heterogeneous memory system pairs a small
// high-bandwidth stacked-DRAM cache with large, slow DDR. This example
// sweeps the working-set size from "fits easily" to "three times the
// cache" and shows how the uncompressed Alloy baseline and DICE behave
// across the range: compression for capacity delays the fall off the
// cliff, and compression for bandwidth keeps paying even when everything
// fits (the paper's core argument for compressing for both).
//
// Run with:
//
//	go run ./examples/hybridmemory
package main

import (
	"encoding/binary"
	"fmt"

	"dice/internal/core"
	"dice/internal/dram"
)

// recordData is moderately compressible record data: 8-byte fields near
// per-page bases (BDI b8d2, 24B/line), with every fourth page high
// entropy.
type recordData struct{}

func (recordData) Line(line uint64) []byte {
	buf := make([]byte, 64)
	page := line >> 6
	if page%4 == 3 {
		h := line*0xD6E8FEB86659FD93 + 99
		for i := 0; i < 8; i++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			binary.LittleEndian.PutUint64(buf[i*8:], h)
		}
		return buf
	}
	base := (page*0x9E3779B97F4A7C15)&0xFFFF_FFFF_0000 + 0x4000_0000_0000
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], base+uint64(line%64)*512+uint64(i*40))
	}
	return buf
}

const sets = 1 << 12

// ddrPenalty approximates a main-memory fetch behind the cache for this
// single-level demo: a DDR access is the same latency but an eighth the
// bandwidth of the stacked device.
const ddrPenalty = 160

// sweep runs a mixed sequential/strided scan of the working set through
// one design and returns average cycles per reference.
func sweep(design core.Design, wsLines uint64) float64 {
	ddr := dram.New(dram.DDRConfig())
	cache := core.New(core.Config{Sets: sets, Design: design, Data: recordData{}})
	now := uint64(0)
	refs := 0
	// Two passes: warm, then measure.
	for pass := 0; pass < 2; pass++ {
		start := now
		n := 0
		pos := uint64(0)
		for i := uint64(0); i < 3*wsLines; i++ {
			// Mixed pattern: mostly sequential with periodic strides.
			if i%7 == 6 {
				pos += 64
			} else {
				pos++
			}
			line := pos % wsLines
			r := cache.Read(now, line)
			if r.Hit {
				now = r.Done
			} else {
				fetched := ddr.AccessAddr(r.Done, line<<6, false, 64)
				if fetched < r.Done+ddrPenalty {
					fetched = r.Done + ddrPenalty
				}
				res := cache.Install(fetched, line, false)
				now = res.Done
			}
			n++
		}
		if pass == 1 {
			return float64(now-start) / float64(n)
		}
		refs += n
	}
	return 0
}

func main() {
	fmt.Println("hybrid memory sweep: working set vs a fixed stacked-DRAM cache")
	fmt.Printf("cache: %d sets (%dKB); record-like data, ~75%% compressible\n\n", sets, sets*72/1024)
	fmt.Printf("%-12s %14s %14s %10s\n", "working set", "Alloy cyc/ref", "DICE cyc/ref", "speedup")
	for _, frac := range []float64{0.5, 0.9, 1.2, 1.5, 1.8, 2.4, 3.0} {
		ws := uint64(frac * sets)
		alloy := sweep(core.Alloy, ws)
		dice := sweep(core.DICE, ws)
		fmt.Printf("%9.1fx %14.1f %14.1f %9.2fx\n", frac, alloy, dice, alloy/dice)
	}
	fmt.Println("\nreading the sweep:")
	fmt.Println("  <1.0x  both designs hit everything and track each other; with a")
	fmt.Println("         single requester there is no bandwidth pressure to relieve")
	fmt.Println("         (the 8-core runs in examples/graphanalytics show that side)")
	fmt.Println("  1-2x   Alloy falls off the capacity cliff; DICE's compressed")
	fmt.Println("         sets keep the working set resident (capacity + bandwidth)")
	fmt.Println("  >2x    both miss more; DICE still holds a compressed-capacity edge")
}
