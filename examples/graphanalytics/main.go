// Graph analytics through the full memory hierarchy: run real PageRank
// over a power-law (RMAT) graph, trace its actual memory references, and
// replay them through the eight-core system with the L4 DRAM cache as an
// uncompressed Alloy baseline and as DICE. Graph workloads are the
// paper's biggest winners (Fig 10: GAP +48.9% with DICE) because CSR
// indices, labels and degree arrays compress well while the access
// stream is irregular and bandwidth-hungry.
//
// Run with:
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"

	"dice/internal/compress"
	"dice/internal/dcache"
	"dice/internal/graph"
	"dice/internal/sim"
	"dice/internal/workloads"
)

func main() {
	fmt.Println("PageRank on an RMAT power-law graph through the DRAM cache")

	// First, look at the raw ingredients: the graph and its data image.
	g := graph.RMAT(14, 8, 42)
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.N, g.Edges())
	ws := graph.Trace(graph.PageRank, g, 200_000)
	fmt.Printf("kernel trace: %d L3-level references over a %.1f MB footprint\n",
		len(ws.Requests()), float64(ws.FootprintBytes())/(1<<20))

	// How compressible is the kernel's live data?
	var total, n int
	end := ws.FootprintBytes() >> 6
	for line := uint64(1 << 14); line < end; line += 23 {
		total += compress.CompressedSize(ws.Line(line))
		n++
	}
	fmt.Printf("kernel data compression ratio (hybrid FPC+BDI): %.2fx\n\n",
		float64(n*64)/float64(total))

	// Now the full-system comparison using the cataloged pr_twi workload
	// (PageRank on the twitter-like input, Table 3: 112.9 MPKI, 23.1GB).
	w, err := workloads.ByName("pr_twi")
	if err != nil {
		panic(err)
	}
	const refs = 60_000
	base, err := sim.Run(sim.Config{Policy: dcache.PolicyUncompressed, RefsPerCore: refs}, w)
	if err != nil {
		panic(err)
	}
	dice, err := sim.Run(sim.Config{Policy: dcache.PolicyDICE, RefsPerCore: refs}, w)
	if err != nil {
		panic(err)
	}

	fmt.Println("pr_twi on the 8-core system (scaled 1/1024):")
	fmt.Printf("%-28s %10s %10s\n", "", "Alloy", "DICE")
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "L4 hit rate",
		100*base.L4.HitRate(), 100*dice.L4.HitRate())
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "L3 hit rate",
		100*base.L3.HitRate(), 100*dice.L3.HitRate())
	fmt.Printf("%-28s %9.2fx %9.2fx\n", "effective L4 capacity",
		base.EffCapacity, dice.EffCapacity)
	fmt.Printf("%-28s %10d %10d\n", "main-memory accesses",
		base.DDR.Accesses(), dice.DDR.Accesses())
	fmt.Printf("%-28s %10s %9.3fx\n", "weighted speedup", "1.000x",
		sim.Speedup(base, dice))
	fmt.Printf("%-28s %10s %9.3fx\n", "energy-delay product", "1.000x",
		dice.Energy.EDP()/base.Energy.EDP())
	fmt.Printf("\nCIP predicted the right index for %.1f%% of DICE's reads\n",
		100*dice.CIPAccuracy)
}
