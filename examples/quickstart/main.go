// Quickstart: build a DICE-compressed DRAM cache next to an uncompressed
// Alloy baseline, drive both with the same access stream, and watch the
// paper's mechanisms at work — dynamic BAI/TSI index selection, free
// adjacent lines on compressed hits, effective-capacity gains, and the
// index predictor's accuracy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"

	"dice/internal/core"
)

// appData models an application heap with page-granular structure, the
// way real programs lay out data: four of five pages hold integer/
// pointer-like records (BDI-compressible to 36B), the fifth holds
// high-entropy data (incompressible). Compressibility being uniform
// within a page is exactly the structure DICE's page-based predictor
// exploits.
type appData struct{}

func (appData) Line(line uint64) []byte {
	buf := make([]byte, 64)
	if (line>>6)%5 != 4 {
		base := uint32(0x10000000) + uint32(line>>6)<<16
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], base+uint32(line*64)+uint32(i*24))
		}
		return buf
	}
	h := line*0x9E3779B97F4A7C15 + 0x1234
	for i := 0; i < 8; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		binary.LittleEndian.PutUint64(buf[i*8:], h)
	}
	return buf
}

const (
	sets      = 1 << 12 // a 288KB slice of a DRAM cache (4096 72B sets)
	footprint = sets + sets/2
	sweeps    = 4
)

type outcome struct {
	hitRate  float64
	extras   int
	capacity float64
	cycles   uint64
}

// run sweeps the footprint sequentially several times through one cache
// design and reports what happened.
func run(design core.Design) outcome {
	cache := core.New(core.Config{Sets: sets, Design: design, Data: appData{}})
	now := uint64(0)
	extras := 0
	for sweep := 0; sweep < sweeps; sweep++ {
		for line := uint64(0); line < footprint; line++ {
			r := cache.Read(now, line)
			if r.Hit {
				if r.HasExtra {
					extras++
				}
				now = r.Done
			} else {
				res := cache.Install(r.Done, line, false)
				now = res.Done
			}
		}
	}
	return outcome{
		hitRate:  cache.Stats().HitRate(),
		extras:   extras,
		capacity: cache.EffectiveCapacity(),
		cycles:   now,
	}
}

func main() {
	fmt.Println("DICE quickstart: one working set, two DRAM-cache designs")
	fmt.Printf("cache: %d sets (%dKB); working set: %d lines (%dKB, 1.5x the cache)\n\n",
		sets, sets*72/1024, footprint, footprint*64/1024)

	alloy := run(core.Alloy)
	dice := run(core.DICE)

	fmt.Printf("%-22s %12s %12s\n", "", "Alloy (base)", "DICE")
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "hit rate", 100*alloy.hitRate, 100*dice.hitRate)
	fmt.Printf("%-22s %12d %12d\n", "free adjacent lines", alloy.extras, dice.extras)
	fmt.Printf("%-22s %11.2fx %11.2fx\n", "effective capacity", alloy.capacity, dice.capacity)
	fmt.Printf("%-22s %12d %12d\n", "total cycles", alloy.cycles, dice.cycles)
	fmt.Printf("%-22s %12s %11.2fx\n", "speedup", "1.00x",
		float64(alloy.cycles)/float64(dice.cycles))

	// Peek inside DICE's decision machinery.
	cache := core.New(core.Config{Sets: sets, Design: core.DICE, Data: appData{}})
	for line := uint64(0); line < footprint; line++ {
		r := cache.Read(0, line)
		if !r.Hit {
			cache.Install(r.Done, line, false)
		}
	}
	s := cache.Stats()
	fmt.Printf("\nDICE install decisions over one cold sweep:\n")
	fmt.Printf("  %d invariant (TSI == BAI set, no decision needed)\n", s.InstallInvariant)
	fmt.Printf("  %d BAI (compressed <= 36B, placed for bandwidth)\n", s.InstallBAI)
	fmt.Printf("  %d TSI (incompressible, placed for capacity safety)\n", s.InstallTSI)

	fmt.Println("\nper-line compression under hybrid FPC+BDI:")
	data := appData{}
	for _, line := range []uint64{0, 1, 4*64 + 1} {
		sz := core.CompressedSize(data.Line(line))
		verdict := "-> BAI candidate"
		if sz > 36 {
			verdict = "-> TSI"
		}
		fmt.Printf("  line %6d: %2dB %s\n", line, sz, verdict)
	}
	pair := core.PairSize(data.Line(0), data.Line(1))
	fmt.Printf("  pair (0,1) with shared tag+base: %dB (fits one 72B set: %v)\n",
		pair, pair <= 68)
}
