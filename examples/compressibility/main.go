// Compressibility explorer: feed data through the line-compression
// substrate DICE is built on (FPC, BDI, zero-content, and the hybrid
// selector) and see how each 64-byte line fares — which algorithm wins,
// what size it reaches, whether it clears DICE's 36B BAI-insertion
// threshold, and whether adjacent pairs fit a shared-tag TAD (<=68B).
//
// Run with:
//
//	go run ./examples/compressibility
package main

import (
	"encoding/binary"
	"fmt"
	"math"

	"dice/internal/compress"
)

// sample builds a buffer of several 64B lines with a given character.
type sample struct {
	name  string
	lines [][]byte
}

func mkLines(n int, fill func(i int, buf []byte)) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, 64)
		fill(i, out[i])
	}
	return out
}

func samples() []sample {
	return []sample{
		{"zero-initialized allocation", mkLines(4, func(i int, b []byte) {})},
		{"int32 counters (0..99)", mkLines(4, func(i int, b []byte) {
			for j := 0; j < 16; j++ {
				binary.LittleEndian.PutUint32(b[j*4:], uint32(i*16+j)%100)
			}
		})},
		{"heap pointers (same arena)", mkLines(4, func(i int, b []byte) {
			base := uint64(0x7F8A_2C00_0000)
			for j := 0; j < 8; j++ {
				binary.LittleEndian.PutUint64(b[j*8:], base+uint64(i*1024+j*48))
			}
		})},
		{"pixel-ish rgba (repeated)", mkLines(4, func(i int, b []byte) {
			for j := 0; j < 64; j += 4 {
				copy(b[j:], []byte{0x20, 0x40, 0x80, 0xFF})
			}
		})},
		{"float64 physics state", mkLines(4, func(i int, b []byte) {
			for j := 0; j < 8; j++ {
				v := 1.0 + math.Sin(float64(i*8+j))*1e-3
				binary.LittleEndian.PutUint64(b[j*8:], math.Float64bits(v))
			}
		})},
		{"encrypted / compressed blob", mkLines(4, func(i int, b []byte) {
			h := uint64(i)*0x9E3779B97F4A7C15 + 7
			for j := 0; j < 8; j++ {
				h ^= h << 13
				h ^= h >> 7
				h ^= h << 17
				binary.LittleEndian.PutUint64(b[j*8:], h)
			}
		})},
	}
}

func main() {
	fmt.Println("line compression under DICE's algorithms (64B lines)")
	fmt.Printf("%-30s %6s %6s %8s %6s %9s %9s\n",
		"data", "fpc", "bdi", "hybrid", "alg", "<=36B?", "pair<=68?")
	for _, s := range samples() {
		var fpcSz, bdiSz, hybSz int
		var alg compress.AlgID
		for _, line := range s.lines {
			if enc, ok := (compress.FPC{}).Compress(line); ok {
				fpcSz += enc.Size()
			} else {
				fpcSz += 64
			}
			if enc, ok := (compress.BDI{}).Compress(line); ok {
				bdiSz += enc.Size()
			} else {
				bdiSz += 64
			}
			enc := compress.CompressBest(line)
			hybSz += enc.Size()
			alg = enc.Alg
		}
		n := len(s.lines)
		pair := compress.PairSize(s.lines[0], s.lines[1])
		fmt.Printf("%-30s %6.1f %6.1f %8.1f %6s %9v %9v\n",
			s.name,
			float64(fpcSz)/float64(n), float64(bdiSz)/float64(n),
			float64(hybSz)/float64(n), alg,
			hybSz/n <= 36, pair <= 68)
	}

	fmt.Println("\nwhat the sizes mean for the DRAM cache:")
	fmt.Println("  <=32B: two singles share a 72B set even with separate tags")
	fmt.Println("  <=36B: DICE installs the line at its BAI (bandwidth) index;")
	fmt.Println("         two such adjacent lines fit one set via tag+base sharing")
	fmt.Println("  > 36B: DICE falls back to TSI so capacity never degrades")

	// Round-trip proof on one line of each kind.
	fmt.Println("\nround-trip check:")
	for _, s := range samples() {
		enc := compress.CompressBest(s.lines[0])
		dec := compress.Decompress(enc)
		ok := true
		for i := range dec {
			if dec[i] != s.lines[0][i] {
				ok = false
			}
		}
		fmt.Printf("  %-30s %v (alg %s, %dB)\n", s.name, ok, enc.Alg, enc.Size())
	}
}
