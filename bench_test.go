// Package-level benchmark harness: one benchmark per table and figure of
// the paper's evaluation (DESIGN.md section 3 maps each to its
// experiment). Each benchmark regenerates its result and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints paper-comparable values
// (e.g. dice_speedup for Fig 10, edp_ratio for Fig 14). Benchmarks share
// one memoized runner: the baseline simulations run once.
//
// BENCH_REFS overrides the per-core reference budget (default 30000 here;
// cmd/dicebench uses 60000 for tighter numbers). BENCH_WORKERS bounds the
// simulations run concurrently by each experiment's prefetch phase
// (default: one per CPU; 1 = serial reference schedule). Reported
// numbers are byte-identical for every worker count.
package main

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"dice/internal/compress"
	"dice/internal/experiments"
	"dice/internal/workloads"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func sharedRunner() *experiments.Runner {
	runnerOnce.Do(func() {
		refs := 30_000
		if s := os.Getenv("BENCH_REFS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				refs = v
			}
		}
		runner = experiments.NewRunner(refs)
		if s := os.Getenv("BENCH_WORKERS"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				runner.Workers = v
			}
		}
	})
	return runner
}

// runExperiment executes one experiment per benchmark iteration and
// returns the last report (memoization makes extra iterations cheap).
func runExperiment(b *testing.B, id string) *experiments.Report {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = e.Run(sharedRunner())
	}
	return rep
}

func metricRow(b *testing.B, rep *experiments.Report, row string, cols map[string]string) {
	b.Helper()
	for _, r := range rep.Rows {
		if r.Name != row {
			continue
		}
		for col, metric := range cols {
			b.ReportMetric(r.Get(col), metric)
		}
		return
	}
	b.Fatalf("report %s has no row %q", rep.ID, row)
}

// BenchmarkFig01Potential regenerates Figure 1(f): idealized 2x capacity /
// 2x bandwidth / 2x both speedups.
func BenchmarkFig01Potential(b *testing.B) {
	rep := runExperiment(b, "fig1")
	metricRow(b, rep, "ALL26", map[string]string{
		"2xCap": "cap2x_speedup", "2xBW": "bw2x_speedup", "2xBoth": "both2x_speedup",
	})
}

// BenchmarkFig04Compressibility regenerates Figure 4: compressible-line
// fractions (paper: 52% of pairs fit 68B).
func BenchmarkFig04Compressibility(b *testing.B) {
	rep := runExperiment(b, "fig4")
	metricRow(b, rep, "ALL26", map[string]string{
		"Single<=32": "frac_le32", "Single<=36": "frac_le36", "Double<=68": "frac_pair68",
	})
}

// BenchmarkFig07StaticIndexing regenerates Figure 7: TSI vs BAI static
// compression (paper: TSI +7%, BAI ~0%).
func BenchmarkFig07StaticIndexing(b *testing.B) {
	rep := runExperiment(b, "fig7")
	metricRow(b, rep, "ALL26", map[string]string{
		"TSI": "tsi_speedup", "BAI": "bai_speedup",
	})
}

// BenchmarkFig10DICE regenerates the headline Figure 10 (paper: DICE
// +19.0%, within 3% of the 2x/2x design's +21.9%).
func BenchmarkFig10DICE(b *testing.B) {
	rep := runExperiment(b, "fig10")
	metricRow(b, rep, "ALL26", map[string]string{
		"DICE": "dice_speedup", "2xCap2xBW": "ideal_speedup",
	})
}

// BenchmarkFig11IndexDistribution regenerates Figure 11: the BAI/TSI
// install split under DICE (paper: 50% invariant; rest 48%/52%).
func BenchmarkFig11IndexDistribution(b *testing.B) {
	rep := runExperiment(b, "fig11")
	if len(rep.Rows) == 0 {
		b.Fatal("no rows")
	}
	var inv, bai, tsi float64
	for _, r := range rep.Rows {
		inv += r.Get("Invariant")
		bai += r.Get("BAI")
		tsi += r.Get("TSI")
	}
	n := float64(len(rep.Rows))
	b.ReportMetric(inv/n, "frac_invariant")
	b.ReportMetric(bai/n, "frac_bai")
	b.ReportMetric(tsi/n, "frac_tsi")
}

// BenchmarkFig12KNL regenerates Figure 12: DICE on the KNL organization
// (paper: +17.5% vs +19.0% on Alloy).
func BenchmarkFig12KNL(b *testing.B) {
	rep := runExperiment(b, "fig12")
	metricRow(b, rep, "ALL26", map[string]string{
		"DICE-KNL": "knl_speedup", "DICE-Alloy": "alloy_speedup",
	})
}

// BenchmarkFig13NonIntensive regenerates Figure 13: low-MPKI workloads
// (paper: ~+2%, no degradation).
func BenchmarkFig13NonIntensive(b *testing.B) {
	rep := runExperiment(b, "fig13")
	metricRow(b, rep, "gmean", map[string]string{"DICE": "dice_speedup"})
}

// BenchmarkFig14Energy regenerates Figure 14 (paper: DICE energy -24%,
// EDP -36%).
func BenchmarkFig14Energy(b *testing.B) {
	rep := runExperiment(b, "fig14")
	metricRow(b, rep, "dice", map[string]string{
		"Energy": "energy_ratio", "EDP": "edp_ratio", "Performance": "perf_ratio",
	})
}

// BenchmarkFig15SCC regenerates Figure 15 (paper: SCC -22% vs DICE +19%).
func BenchmarkFig15SCC(b *testing.B) {
	rep := runExperiment(b, "fig15")
	metricRow(b, rep, "ALL26", map[string]string{
		"SCC": "scc_speedup", "DICE": "dice_speedup",
	})
}

// BenchmarkTable04Threshold regenerates Table 4 (paper: 36B best).
func BenchmarkTable04Threshold(b *testing.B) {
	rep := runExperiment(b, "table4")
	metricRow(b, rep, "GMEAN26", map[string]string{
		"<=32B": "t32_speedup", "<=36B": "t36_speedup", "<=40B": "t40_speedup",
	})
}

// BenchmarkTable05Capacity regenerates Table 5 (paper: TSI 1.24x, BAI
// 1.69x, DICE 1.62x).
func BenchmarkTable05Capacity(b *testing.B) {
	rep := runExperiment(b, "table5")
	metricRow(b, rep, "GMEAN26", map[string]string{
		"TSI": "tsi_capacity", "BAI": "bai_capacity", "DICE": "dice_capacity",
	})
}

// BenchmarkTable06L3HitRate regenerates Table 6 (paper: 37.0% -> 43.6%).
func BenchmarkTable06L3HitRate(b *testing.B) {
	rep := runExperiment(b, "table6")
	metricRow(b, rep, "GMEAN26", map[string]string{
		"BASE": "l3_hit_base", "DICE": "l3_hit_dice",
	})
}

// BenchmarkTable07Prefetch regenerates Table 7 (paper: prefetch ~+2%,
// DICE +19.0%, DICE+NL +20.9%).
func BenchmarkTable07Prefetch(b *testing.B) {
	rep := runExperiment(b, "table7")
	metricRow(b, rep, "GMEAN26", map[string]string{
		"128B-PF": "pf128_speedup", "Nextline-PF": "nlpf_speedup",
		"DICE": "dice_speedup", "DICE+NL": "dicenl_speedup",
	})
}

// BenchmarkTable08Sensitivity regenerates Table 8 (paper: +19.0% /
// +13.2% / +24.5% / +24.4%).
func BenchmarkTable08Sensitivity(b *testing.B) {
	rep := runExperiment(b, "table8")
	metricRow(b, rep, "GMEAN26", map[string]string{
		"Base(1GB)": "dice_base", "2xCap": "dice_2cap",
		"2xBW": "dice_2bw", "50%Lat": "dice_halflat",
	})
}

// BenchmarkCIPAccuracy regenerates the Section 5.3 LTT-size sweep
// (paper: 93.2% at 512 entries to 94.1% at 8192).
func BenchmarkCIPAccuracy(b *testing.B) {
	rep := runExperiment(b, "cip")
	metricRow(b, rep, "AVG26", map[string]string{
		"512": "acc_512", "2048": "acc_2048", "8192": "acc_8192",
	})
}

// --- substrate micro-benchmarks (ablation-grade, no simulation) ---

func benchLines() [][]byte {
	w, err := workloads.ByName("soplex")
	if err != nil {
		panic(err)
	}
	in := w.Build(10)[0]
	lines := make([][]byte, 512)
	for i := range lines {
		lines[i] = in.Data(uint64(i))
	}
	return lines
}

// BenchmarkCompressFPC measures the FPC encoder on realistic line data.
func BenchmarkCompressFPC(b *testing.B) {
	lines := benchLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.FPC{}.Compress(lines[i%len(lines)])
	}
}

// BenchmarkCompressBDI measures the BDI encoder on realistic line data.
func BenchmarkCompressBDI(b *testing.B) {
	lines := benchLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.BDI{}.Compress(lines[i%len(lines)])
	}
}

// BenchmarkCompressHybrid measures the full hybrid selector DICE uses.
func BenchmarkCompressHybrid(b *testing.B) {
	lines := benchLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.CompressBest(lines[i%len(lines)])
	}
}

// BenchmarkCompressPair measures adjacent-pair compression with tag and
// base sharing.
func BenchmarkCompressPair(b *testing.B) {
	lines := benchLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * 2) % (len(lines) - 1)
		compress.PairSize(lines[j], lines[j+1])
	}
}
