# Standard workflows for the DICE reproduction.

GO ?= go

.PHONY: all build test test-race fuzz vet lint bench evaluate examples clean

# LINTDOC_PKGS are the packages held to the 100%-documented bar; grow
# the list as packages reach it.
LINTDOC_PKGS = ./internal/obs ./internal/fault ./internal/parallel

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static checks beyond vet: cmd/lintdoc (stdlib-only golint/revive
# analogue) requires a doc comment on every exported identifier of the
# packages listed above.
lint: vet
	$(GO) run ./cmd/lintdoc $(LINTDOC_PKGS)

test:
	$(GO) test ./...

# Race-detector pass over everything, including the parallel experiment
# scheduler's determinism tests (slow: the simulations run ~10x under
# the detector, so the experiments package far exceeds go test's
# default 10m timeout).
test-race:
	$(GO) test -race -timeout 90m ./...

# Short fuzz pass over the validated-decompress boundary (go's fuzzer
# accepts one target per invocation).
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecompressChecked$$' -fuzztime=30s ./internal/compress
	$(GO) test -run='^$$' -fuzz='^FuzzCompressRoundtrip$$' -fuzztime=30s ./internal/compress

# Full benchmark harness: regenerates every paper table/figure as
# testing.B benchmarks plus the compression microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# The evaluation as readable tables (several minutes).
evaluate:
	$(GO) run ./cmd/dicebench -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compressibility
	$(GO) run ./examples/hybridmemory
	$(GO) run ./examples/graphanalytics

clean:
	$(GO) clean ./...
