# Standard workflows for the DICE reproduction.

GO ?= go

.PHONY: all build test vet bench evaluate examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark harness: regenerates every paper table/figure as
# testing.B benchmarks plus the compression microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# The evaluation as readable tables (several minutes).
evaluate:
	$(GO) run ./cmd/dicebench -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compressibility
	$(GO) run ./examples/hybridmemory
	$(GO) run ./examples/graphanalytics

clean:
	$(GO) clean ./...
