# Standard workflows for the DICE reproduction.

GO ?= go

.PHONY: all build test test-race fuzz vet lint bench bench-smoke soak daemon-smoke sweep-smoke evaluate examples clean

# LINTDOC_PKGS are the packages held to the 100%-documented bar; grow
# the list as packages reach it.
LINTDOC_PKGS = ./internal/obs ./internal/fault ./internal/parallel \
	./internal/serve ./internal/serve/client ./internal/sigctx \
	./internal/leakcheck ./internal/dse ./internal/clidoc \
	./internal/experiments ./internal/commitlog ./cmd/dicesweep

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static checks beyond vet: cmd/lintdoc (stdlib-only golint/revive
# analogue) requires a doc comment on every exported identifier of the
# packages listed above.
lint: vet
	$(GO) run ./cmd/lintdoc $(LINTDOC_PKGS)

test:
	$(GO) test ./...

# Race-detector pass over everything, including the parallel experiment
# scheduler's determinism tests (slow: the simulations run ~10x under
# the detector, so the experiments package far exceeds go test's
# default 10m timeout).
test-race:
	$(GO) test -race -timeout 90m ./...

# Short fuzz pass over the validated-decompress boundary and the
# event-vs-cycle simulation core equality oracle (go's fuzzer accepts
# one target per invocation).
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecompressChecked$$' -fuzztime=30s ./internal/compress
	$(GO) test -run='^$$' -fuzz='^FuzzCompressRoundtrip$$' -fuzztime=30s ./internal/compress
	$(GO) test -run='^$$' -fuzz='^FuzzEventSchedule$$' -fuzztime=30s ./internal/sim

# Full benchmark harness: regenerates every paper table/figure as
# testing.B benchmarks plus the compression microbenchmarks, then
# records the per-layer hot-path numbers (ns/ref, allocs/ref, refs/sec)
# into BENCH_pr10.json under the "pr10" label — including the
# daemon/submit entries, latency distributions (mean plus p50/p99/p999
# tail quantiles) over the job-submission path against an in-process
# daemon, sequential and at 32 concurrent clients riding the journal's
# group commit, and the commitlog/append-{1,64} pair whose appends/sec
# ratio is the fsync amortization factor on this machine. The
# simcore/{event,cycle} pair is the discrete-event scheduler's
# dispatch comparison, the matrix/gap8-{cold,warm} pair the artifact
# cache's headline warm-vs-cold wall-clock ratio, and the "pr10-sweep"
# label in the same file is sweep-smoke's cells/hour record.
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/perfbench -label pr10 -out BENCH_pr10.json

# Short benchmark smoke pass for CI: a few iterations of every per-layer
# benchmark, just enough to catch a benchmark that no longer compiles or
# panics — not a performance measurement. The artifact-cache smoke test
# then runs one GAP experiment matrix twice in-process and asserts the
# second pass is served from the cache (workloads.CacheStats), guarding
# against silent caching regressions. The event-core smoke (DICE_SMOKE=1
# gates its wall-clock assertion out of plain `go test ./...`) asserts
# the discrete-event scheduler still beats the cycle-stepped reference
# on the idle-heaviest catalog config, the golden-report run pins the
# experiment bytes under the event core, and the group-commit guard
# (same DICE_SMOKE gate) asserts the batched journal beats the
# fsync-per-append reference discipline at p99 by the 1.05x smoke
# floor under concurrent submission load, with the journal's counters
# proving the batching structurally.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=5x ./internal/compress ./internal/dcache ./internal/dram ./internal/workloads ./internal/sim
	$(GO) test -run='^TestArtifactCacheSmoke$$' -count=1 -v ./internal/experiments
	DICE_SMOKE=1 $(GO) test -run='^TestEventCoreSmokeSpeedup$$' -count=1 -v ./internal/sim
	$(GO) test -run='^TestGoldenReports$$' -count=1 ./internal/experiments
	$(GO) test -run='^TestSubmitLatencyEntry$$|^TestCommitLogAppendEntry$$' -count=1 -v ./cmd/perfbench
	DICE_SMOKE=1 $(GO) test -run='^TestGroupCommitSubmitGuard$$' -count=1 -v ./cmd/perfbench

# Daemon load/soak proof, two passes: concurrent submissions through
# the retrying client against a queue bounded at 32 (so backpressure
# 429s are exercised and absorbed), every job's output byte-compared
# against a serial reference, zero goroutine leaks after shutdown, and
# the per-submission latency histogram (p50/p90/p99/p999 through the
# retrying client, backpressure retries included) logged. The first
# pass runs under the race detector at the hundreds scale (the
# detector's instrumentation makes a thousands-scale flood intractable
# on small machines); the second runs the full 2000-job thousands-scale
# soak without it. DICE_SMOKE=1 raises both from the quick tier-1 size.
soak:
	DICE_SMOKE=1 $(GO) test -race -timeout 30m -run='^TestSoakConcurrentSubmissions$$' -count=1 -v ./internal/serve
	DICE_SMOKE=1 $(GO) test -timeout 30m -run='^TestSoakConcurrentSubmissions$$' -count=1 -v ./internal/serve

# Daemon smoke: build the real dicebenchd binary and drive it as an
# operator would — HTTP submit/poll/healthz, SIGTERM clean drain,
# restart-with-journal replay, the SIGKILL crash/restart byte-equality
# check, and the streaming bar: cells and epoch metrics over
# GET /jobs/{id}/stream byte-equal to the terminal output, plus a
# SIGKILL landing mid-stream that the same Stream call rides through
# (reconnect at offset, new-generation re-delivery, exactly-once after
# dedup).
daemon-smoke:
	$(GO) test -run='^TestDaemon' -count=1 -v ./cmd/dicebenchd

# Sweep smoke: build the real dicesweep and dicebenchd binaries and
# run the DSE acceptance bar end to end — a three-axis spec expanding
# to 320 cells through the local pool at workers 8 and workers 1 AND
# sharded over a live daemon four ways (streamed partial results and
# -poll-only, each at workers 8 and 1), frontier exports byte-compared
# across all of them, with the streamed epoch-metrics NDJSON checked
# for well-formedness; plus the SIGINT-mid-sweep / -resume round trip
# and a daemon SIGKILLed mid-stream and restarted on the same port
# (the sweep rides through with no duplicate cells in its results
# log). Records the headline cells/hour number to BENCH_pr10.json
# under the "pr10-sweep" label.
sweep-smoke:
	DICE_SMOKE=1 $(GO) test -run='^TestSweepSmoke' -count=1 -v ./cmd/dicesweep

# The evaluation as readable tables (several minutes).
evaluate:
	$(GO) run ./cmd/dicebench -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compressibility
	$(GO) run ./examples/hybridmemory
	$(GO) run ./examples/graphanalytics

clean:
	$(GO) clean ./...
