// Command dicetrace inspects the workload substrate without running the
// timing simulator: it reports a workload's access-pattern statistics
// (spatial adjacency, write fraction, footprint) and its data
// compressibility under FPC+BDI (the per-workload bars of Figure 4),
// or dumps the first N requests of the trace.
//
// Usage:
//
//	dicetrace -workload mcf
//	dicetrace -workload pr_twi -dump 20
package main

import (
	"flag"
	"fmt"
	"os"

	"dice/internal/compress"
	"dice/internal/trace"
	"dice/internal/workloads"
)

// cliFlags holds every dicetrace flag; registerFlags is the one place
// they are declared, shared by main and the flag-docs pin test.
type cliFlags struct {
	workload *string
	samples  *int
	dump     *int
	scale    *uint
	save     *string
	n        *int
}

// registerFlags declares the dicetrace flags on fs.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		workload: fs.String("workload", "gcc", "workload name"),
		samples:  fs.Int("samples", 4000, "lines sampled for compressibility"),
		dump:     fs.Int("dump", 0, "dump the first N trace requests"),
		scale:    fs.Uint("scale", 10, "system scale shift"),
		save:     fs.String("save", "", "save the first -n requests to a binary trace file"),
		n:        fs.Int("n", 200000, "requests captured with -save"),
	}
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	var (
		workload = o.workload
		samples  = o.samples
		dump     = o.dump
		scale    = o.scale
		save     = o.save
		n        = o.n
	)

	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	insts := w.Build(*scale)
	in := insts[0]

	fmt.Printf("workload %s (%s), per-core footprint %d lines (%.1f MB at scale 1/%d)\n",
		w.Name, w.Suite, in.FootprintLines,
		float64(in.FootprintLines*64)/(1<<20), 1<<*scale)
	fmt.Printf("L3 MPKI (Table 3): %.1f\n", in.MPKI)

	if *save != "" {
		reqs := trace.Generate(in.Gen, *n)
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Write(f, reqs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved %d requests to %s\n", len(reqs), *save)
		return
	}

	if *dump > 0 {
		for i := 0; i < *dump; i++ {
			r, ok := in.Gen.Next()
			if !ok {
				break
			}
			op := "R"
			if r.Write {
				op = "W"
			}
			fmt.Printf("  %s line %d (page %d)\n", op, r.Line, r.Line>>6)
		}
		return
	}

	// Access-pattern statistics over a window.
	const window = 50000
	var writes, adjacent int
	var prev uint64
	for i := 0; i < window; i++ {
		r, ok := in.Gen.Next()
		if !ok {
			break
		}
		if r.Write {
			writes++
		}
		if i > 0 && r.Line == prev+1 {
			adjacent++
		}
		prev = r.Line
	}
	fmt.Printf("write fraction: %.3f; next-line adjacency: %.3f\n",
		float64(writes)/window, float64(adjacent)/window)

	// Compressibility (Figure 4 bars).
	span := in.FootprintLines
	step := span/uint64(*samples) + 1
	var le32, le36, sampled, pairs, pair68 int
	for line := uint64(0); line < span; line += step {
		sz := compress.CompressedSize(in.Data(line))
		sampled++
		if sz <= 32 {
			le32++
		}
		if sz <= 36 {
			le36++
		}
		if line%2 == 0 && line+1 < span {
			pairs++
			if compress.PairSize(in.Data(line), in.Data(line+1)) <= 68 {
				pair68++
			}
		}
	}
	fmt.Printf("compressibility over %d sampled lines (Fig 4):\n", sampled)
	fmt.Printf("  single <= 32B: %5.1f%%\n", 100*float64(le32)/float64(sampled))
	fmt.Printf("  single <= 36B: %5.1f%%\n", 100*float64(le36)/float64(sampled))
	fmt.Printf("  double <= 68B: %5.1f%%\n", 100*float64(pair68)/float64(pairs))
}
