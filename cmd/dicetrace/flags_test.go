package main

import (
	"flag"
	"testing"

	"dice/internal/clidoc"
)

var updateFlagDocs = flag.Bool("update", false, "rewrite the README flag table from the live registrations")

// TestFlagDocsCurrent pins README's dicetrace flag table to the live flag
// registrations: the table is generated from registerFlags, so a flag
// added, renamed, or re-defaulted without regenerating the docs fails
// here. Run with -update to regenerate.
func TestFlagDocsCurrent(t *testing.T) {
	fs := flag.NewFlagSet("dicetrace", flag.ContinueOnError)
	registerFlags(fs)
	if *updateFlagDocs {
		if err := clidoc.Update("../../README.md", "dicetrace", fs); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := clidoc.Verify("../../README.md", "dicetrace", fs); err != nil {
		t.Fatalf("%v\n(regenerate with: go test ./cmd/dicetrace -run FlagDocsCurrent -update)", err)
	}
}
