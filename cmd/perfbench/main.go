// Command perfbench measures the simulator's hot paths with the
// testing.Benchmark harness and records the numbers as JSON, so the
// repository carries a performance trajectory that future PRs extend
// (and CI can diff). One entry per layer: hybrid single/pair
// compression sizing, the DRAM-cache demand path (probe + install +
// repack), the DRAM channel hot paths (Access scheduling and the
// in-flight queue gauge), workload artifact construction cold vs served
// from the process-wide cache, a full simulation of a fixed mix, the
// discrete-event versus cycle-stepped simulation cores on one config
// (the scheduler's headline number), and a GAP 8-configuration matrix
// cold vs warm (the artifact cache's headline number).
//
// Usage:
//
//	perfbench                          # print the table
//	perfbench -out BENCH_pr4.json -label pr4
//
// -out merges the run into the JSON file under -label, preserving any
// other labels already recorded there (so "baseline" and "pr4" runs of
// the same file are directly comparable). Every entry reports ns/ref,
// allocs/ref and refs/sec; for the microbenchmarks one reference is
// one benchmark op, for the full-sim entries it is one simulated
// memory reference (warmup included).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"dice/internal/compress"
	"dice/internal/data"
	"dice/internal/dcache"
	"dice/internal/dram"
	"dice/internal/experiments"
	"dice/internal/sim"
	"dice/internal/workloads"
)

// Entry is one benchmark's recorded numbers, normalized per reference.
// Latency-distribution entries (daemon/submit) additionally carry tail
// quantiles: NsPerRef is then the mean per-operation latency and the
// P*Ns fields the nearest-rank percentiles of the same distribution.
type Entry struct {
	NsPerRef     float64 `json:"ns_per_ref"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
	BytesPerRef  float64 `json:"bytes_per_ref"`
	RefsPerSec   float64 `json:"refs_per_sec"`
	Iterations   int     `json:"iterations"`
	P50Ns        float64 `json:"p50_ns,omitempty"`
	P99Ns        float64 `json:"p99_ns,omitempty"`
	P999Ns       float64 `json:"p999_ns,omitempty"`
}

// Run is one labeled perfbench invocation.
type Run struct {
	Go      string           `json:"go"`
	Date    string           `json:"date"`
	Entries map[string]Entry `json:"entries"`
}

// cliFlags holds every perfbench flag; registerFlags is the one place
// they are declared, shared by main and the flag-docs pin test.
type cliFlags struct {
	out   *string
	label *string
}

// registerFlags declares the perfbench flags on fs.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		out:   fs.String("out", "", "merge results into this JSON file (empty = print only)"),
		label: fs.String("label", "run", "label to record the results under in -out"),
	}
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	var (
		out   = o.out
		label = o.label
	)

	entries := map[string]Entry{}
	for _, b := range benches() {
		r := testing.Benchmark(b.fn)
		refs := float64(r.N) * b.refsPerOp
		ns := float64(r.T.Nanoseconds())
		e := Entry{
			NsPerRef:     ns / refs,
			AllocsPerRef: float64(r.MemAllocs) / refs,
			BytesPerRef:  float64(r.MemBytes) / refs,
			Iterations:   r.N,
		}
		if e.NsPerRef > 0 {
			e.RefsPerSec = 1e9 / e.NsPerRef
		}
		entries[b.name] = e
		fmt.Printf("%-24s %12.1f ns/ref %10.2f allocs/ref %12.0f refs/sec\n",
			b.name, e.NsPerRef, e.AllocsPerRef, e.RefsPerSec)
	}

	// Raw commit-log append throughput, 1 vs 64 concurrent appenders:
	// the appends/sec ratio between the two is the fsync amortization
	// factor group commit achieves on this machine.
	for _, cl := range []struct {
		name      string
		appenders int
		per       int
	}{
		{"commitlog/append-1", 1, 512},
		{"commitlog/append-64", 64, 16},
	} {
		e, err := measureCommitLogAppend(cl.appenders, cl.per)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		entries[cl.name] = e
		fmt.Printf("%-24s %12.1f ns/append %24.0f appends/sec\n", cl.name, e.NsPerRef, e.RefsPerSec)
	}

	sub, err := measureSubmitLatency(submitSamples)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	entries["daemon/submit"] = sub
	fmt.Printf("%-24s %12.1f ns/op  p50 %.0fns p99 %.0fns p999 %.0fns\n",
		"daemon/submit", sub.NsPerRef, sub.P50Ns, sub.P99Ns, sub.P999Ns)

	// The concurrent submit distribution — submitConcurrency clients in
	// flight at once, the regime the journal's group commit batches.
	subc, _, err := measureSubmitLatencyWith(submitSamples, submitConcurrency, submitLinger, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	name := fmt.Sprintf("daemon/submit-c%d", submitConcurrency)
	entries[name] = subc
	fmt.Printf("%-24s %12.1f ns/op  p50 %.0fns p99 %.0fns p999 %.0fns\n",
		name, subc.NsPerRef, subc.P50Ns, subc.P99Ns, subc.P999Ns)

	if *out == "" {
		return
	}
	if err := merge(*out, *label, Run{
		Go:      runtime.Version(),
		Date:    time.Now().UTC().Format("2006-01-02"),
		Entries: entries,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d entries under %q in %s\n", len(entries), *label, *out)
}

// merge writes run under label into the JSON file at path, keeping
// every other label intact.
func merge(path, label string, run Run) error {
	all := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &all); err != nil {
			return fmt.Errorf("perfbench: %s exists but is not a label map: %v", path, err)
		}
	}
	rb, err := json.Marshal(run)
	if err != nil {
		return err
	}
	all[label] = rb
	// Stable key order for reviewable diffs.
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	buf = append(buf, '{', '\n')
	for i, k := range keys {
		var pretty []byte
		pretty, err = json.MarshalIndent(json.RawMessage(all[k]), "  ", "  ")
		if err != nil {
			return err
		}
		kb, _ := json.Marshal(k)
		buf = append(buf, ' ', ' ')
		buf = append(buf, kb...)
		buf = append(buf, ':', ' ')
		buf = append(buf, pretty...)
		if i < len(keys)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, '}', '\n')
	return os.WriteFile(path, buf, 0o644)
}

// bench is one named benchmark plus how many simulated references each
// benchmark op covers.
type bench struct {
	name      string
	refsPerOp float64
	fn        func(*testing.B)
}

// mixedProfile weights every data kind equally: the corpus spans the
// whole compressibility spectrum the workload catalog exercises.
func mixedProfile() data.Profile {
	var p data.Profile
	for k := data.Kind(0); k < data.KindCount; k++ {
		p.Weights[k] = 1
	}
	p.PageCoherence = 0.9
	return p
}

func corpus(n int) [][]byte {
	s := data.NewSynth(0xD1CE, mixedProfile())
	lines := make([][]byte, n)
	for i := range lines {
		lines[i] = s.Line(uint64(i))
	}
	return lines
}

// benchSource adapts a data.Synth to dcache.DataSource, the same role
// the simulator's machine plays for its L4.
type benchSource struct{ s *data.Synth }

// Line returns the 64 bytes of a line.
func (b *benchSource) Line(line uint64) []byte { return b.s.Line(line) }

// benchLine generates the dcache benchmark's address stream: runs of
// sequential lines interleaved with jumps over a footprint ~4x the
// cache's line capacity.
func benchLine(i int) uint64 {
	h := uint64(i) * 0x9E3779B97F4A7C15
	return (h>>40)%(1<<15)*8 + uint64(i)&7
}

const simRefsPerCore = 4000

// simTotalRefs mirrors the sim benchmark's per-op reference count:
// 8 cores, measured refs plus 50% warmup.
func simTotalRefs() float64 {
	return 8 * (simRefsPerCore + simRefsPerCore/2)
}

func benches() []bench {
	return []bench{
		{name: "compress/single-size", refsPerOp: 1, fn: func(b *testing.B) {
			lines := corpus(512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				compress.CompressedSize(lines[i%len(lines)])
			}
		}},
		{name: "compress/pair-size", refsPerOp: 1, fn: func(b *testing.B) {
			lines := corpus(512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := (i * 2) % (len(lines) - 1)
				compress.PairSize(lines[j], lines[j+1])
			}
		}},
		{name: "dcache/read-install", refsPerOp: 1, fn: func(b *testing.B) {
			c := dcache.New(dcache.Config{
				Sets:   1 << 13,
				Policy: dcache.PolicyDICE,
				Mem:    dram.New(dram.HBMConfig()),
				Data:   &benchSource{s: data.NewSynth(0xD1CE, mixedProfile())},
			})
			now := uint64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				line := benchLine(i)
				r := c.Read(now, line)
				if !r.Hit {
					c.Install(r.Done, line, false)
				}
				now += 12
			}
		}},
		{name: "dram/access", refsPerOp: 1, fn: func(b *testing.B) {
			m := dram.New(dram.HBMConfig())
			now := uint64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := uint64(i) * 0x9E3779B97F4A7C15
				loc := dram.Loc{Channel: int(h % 4), Bank: int(h >> 2 % 16), Row: h >> 6 % 256}
				m.Access(now, loc, i&7 == 0, 80)
				now += 6
			}
		}},
		{name: "dram/inflight-total", refsPerOp: 1, fn: func(b *testing.B) {
			cfg := dram.HBMConfig()
			m := dram.New(cfg)
			for c := 0; c < cfg.Channels; c++ {
				for i := 0; i < cfg.QueueDepth; i++ {
					m.Access(0, dram.Loc{Channel: c, Bank: 0, Row: 1}, false, 80)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.InFlightTotal(0)
			}
		}},
		{name: "workloads/build-cold", refsPerOp: 1, fn: func(b *testing.B) {
			w, err := workloads.ByName("cc_twi")
			if err != nil {
				b.Fatal(err)
			}
			// The sim-default scale (workloads.Build itself takes the raw
			// shift; the 0 -> 10 defaulting lives in sim.Config).
			scale := sim.Config{}.EffectiveScale()
			workloads.SetCacheEnabled(false)
			defer workloads.SetCacheEnabled(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Build(scale)
			}
		}},
		{name: "workloads/build-warm", refsPerOp: 1, fn: func(b *testing.B) {
			w, err := workloads.ByName("cc_twi")
			if err != nil {
				b.Fatal(err)
			}
			scale := sim.Config{}.EffectiveScale()
			workloads.SetCacheEnabled(true)
			w.Warm(scale)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Build(scale)
			}
		}},
		{name: "sim/mix1", refsPerOp: simTotalRefs(), fn: simBench("mix1")},
		{name: "sim/gcc", refsPerOp: simTotalRefs(), fn: simBench("gcc")},
		{name: "simcore/event", refsPerOp: simTotalRefs(), fn: simCoreBench(false)},
		{name: "simcore/cycle", refsPerOp: simTotalRefs(), fn: simCoreBench(true)},
		{name: "matrix/gap8-cold", refsPerOp: 8 * simTotalRefs(), fn: matrixBench(false)},
		{name: "matrix/gap8-warm", refsPerOp: 8 * simTotalRefs(), fn: matrixBench(true)},
	}
}

// matrixBench runs a fig10-class slice of the evaluation — one GAP
// workload under 8 configurations — through the experiment runner, with
// the artifact cache either cold-disabled (the pre-cache behavior:
// every simulation rebuilds the graph and kernel trace) or warmed. The
// warm:cold wall-clock ratio is the artifact cache's headline win.
func matrixBench(warm bool) func(*testing.B) {
	return func(b *testing.B) {
		w, err := workloads.ByName("cc_twi")
		if err != nil {
			b.Fatal(err)
		}
		cfgs := []string{"base", "tsi", "nsi", "bai", "dice", "scc", "dice-knl", "dice-t32"}
		workloads.SetCacheEnabled(warm)
		defer workloads.SetCacheEnabled(true)
		if warm {
			w.Warm(sim.Config{}.EffectiveScale())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh runner per op: its per-key memoization must not
			// absorb the work the artifact cache is being measured on.
			r := experiments.NewRunner(simRefsPerCore)
			for _, cfg := range cfgs {
				r.Run(cfg, w)
			}
		}
	}
}

// simCoreBench pits the two simulation cores against each other on an
// identical (config, workload) pair: the discrete-event scheduler
// (sim.RunEvent) versus the cycle-stepped reference (sim.RunReference).
// Both produce byte-identical Results. The config is the catalog's
// idle-heaviest (streaming misses, single-slot MLP window) — the same
// one `make bench-smoke` asserts on — because the dispatch disciplines
// only differ on idle cycles: every component model is timestamp-lazy,
// so the cycle-stepped loop's whole overhead is its idle-cycle core
// scan (see DESIGN.md §12).
func simCoreBench(cycle bool) func(*testing.B) {
	return func(b *testing.B) {
		w, err := workloads.ByName("milc")
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.Config{Policy: dcache.PolicyUncompressed, RefsPerCore: simRefsPerCore, MLPWindow: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cycle {
				_, err = sim.RunReference(cfg, w)
			} else {
				_, _, err = sim.RunEvent(cfg, w)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func simBench(workload string) func(*testing.B) {
	return func(b *testing.B) {
		w, err := workloads.ByName(workload)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.Config{Policy: dcache.PolicyDICE, RefsPerCore: simRefsPerCore}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, w); err != nil {
				b.Fatal(err)
			}
		}
	}
}
