package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dice/internal/obs"
	"dice/internal/serve"
	"dice/internal/serve/client"
)

// submitSamples is the distribution size for the daemon/submit latency
// entry: enough samples that p99 is a real rank (the 507th of 512) and
// p999 is the max, cheap enough that the whole measurement is a few
// seconds.
const submitSamples = 512

// measureSubmitLatency measures the daemon's job-submission path —
// HTTP POST through the retrying client, spec validation, journal
// append, queue insert, response — as a latency distribution over n
// sequential submissions against an in-process daemon on a real
// socket. The queue is sized to hold every submission so no sample is
// inflated by 429 backpressure retries; the jobs themselves are tiny
// single-cell sims that drain during shutdown.
func measureSubmitLatency(n int) (Entry, error) {
	dir, err := os.MkdirTemp("", "perfbench-submit-*")
	if err != nil {
		return Entry{}, err
	}
	defer os.RemoveAll(dir)
	d, _, err := serve.New(serve.Config{
		JournalPath: filepath.Join(dir, "bench.journal"),
		QueueCap:    n + 16,
		JobWorkers:  2,
	})
	if err != nil {
		return Entry{}, fmt.Errorf("perfbench: daemon: %w", err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		return Entry{}, fmt.Errorf("perfbench: daemon listen: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		d.Shutdown(ctx)
	}()

	c := client.New("http://"+addr.String(), 1)
	spec := serve.JobSpec{
		Cells: []serve.CellSpec{{Workload: "gcc", Policy: "dice", Refs: 200, Scale: 10}},
	}
	var lat obs.Latencies
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		st, err := c.Submit(context.Background(), spec)
		if err != nil {
			return Entry{}, fmt.Errorf("perfbench: submit %d: %w", i, err)
		}
		lat.Observe(time.Since(t0))
		ids = append(ids, st.ID)
	}
	// Cancel the still-queued tail so shutdown drains in bounded time;
	// cells already run (or running) are tiny either way.
	for _, id := range ids {
		c.Cancel(context.Background(), id)
	}

	s := lat.Summary()
	e := Entry{
		NsPerRef:   float64(s.Mean.Nanoseconds()),
		Iterations: s.Count,
		P50Ns:      float64(s.P50.Nanoseconds()),
		P99Ns:      float64(s.P99.Nanoseconds()),
		P999Ns:     float64(s.P999.Nanoseconds()),
	}
	if e.NsPerRef > 0 {
		e.RefsPerSec = 1e9 / e.NsPerRef
	}
	return e, nil
}
