package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dice/internal/commitlog"
	"dice/internal/obs"
	"dice/internal/serve"
	"dice/internal/serve/client"
)

// submitSamples is the distribution size for the daemon/submit latency
// entries: enough samples that p99 is a real rank (the 507th of 512)
// and p999 is the max, cheap enough that the whole measurement is a
// few seconds.
const submitSamples = 512

// submitConcurrency is how many clients the concurrent daemon/submit
// entry drives at once — the regime group commit exists for: every
// in-flight submit shares the journal batch behind the sync in
// progress instead of queueing its own fsync.
const submitConcurrency = 32

// submitLinger is the -journal-linger setting for the concurrent
// daemon/submit entries. A short linger consolidates the commit
// cadence: instead of the committer waking per enqueue and paying a
// scheduler handoff per tiny batch, it gathers everything that
// arrives inside the window into one write+fsync, which is the
// configuration the tunable exists for under concurrent load.
const submitLinger = 2 * time.Millisecond

// measureSubmitLatency measures the daemon's job-submission path —
// HTTP POST through the retrying client, spec validation, journal
// append, queue insert, response — as a latency distribution over n
// sequential submissions against an in-process daemon on a real
// socket (the historical daemon/submit entry).
func measureSubmitLatency(n int) (Entry, error) {
	e, _, err := measureSubmitLatencyWith(n, 1, 0, false)
	return e, err
}

// measureSubmitLatencyWith generalizes measureSubmitLatency: n total
// submissions issued by `concurrency` goroutines, against a journal
// in group-commit (default, with the given linger) or
// fsync-per-append reference mode (noGroupCommit — the pre-commitlog
// discipline, kept for same-machine A/B). It also returns the
// journal's group-commit counters so the bench-smoke guard can assert
// the batching actually happened. The queue is sized to hold every
// submission so no sample is inflated by 429 backpressure retries;
// the jobs themselves are tiny single-cell sims that are cancelled
// before shutdown.
func measureSubmitLatencyWith(n, concurrency int, linger time.Duration, noGroupCommit bool) (Entry, *commitlog.Stats, error) {
	dir, err := os.MkdirTemp("", "perfbench-submit-*")
	if err != nil {
		return Entry{}, nil, err
	}
	defer os.RemoveAll(dir)
	d, _, err := serve.New(serve.Config{
		JournalPath:          filepath.Join(dir, "bench.journal"),
		JournalLinger:        linger,
		JournalNoGroupCommit: noGroupCommit,
		QueueCap:             n + 16,
		JobWorkers:           2,
	})
	if err != nil {
		return Entry{}, nil, fmt.Errorf("perfbench: daemon: %w", err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		return Entry{}, nil, fmt.Errorf("perfbench: daemon listen: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		d.Shutdown(ctx)
	}()

	// Sequential runs keep the historical daemon/submit workload (a
	// small but real cell). Concurrent runs shrink the cell to one
	// reference: with tens of clients in flight on few cores, running
	// sims would otherwise saturate the CPU and the distribution would
	// measure scheduler contention, not the submission path the entry
	// (and the group-commit guard) exists to track.
	refs := 200
	if concurrency > 1 {
		refs = 1
	}
	spec := serve.JobSpec{
		Cells: []serve.CellSpec{{Workload: "gcc", Policy: "dice", Refs: refs, Scale: 10}},
	}
	var (
		lat      obs.Latencies
		ids      = make([]string, n)
		next     atomic.Int64
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	if concurrency < 1 {
		concurrency = 1
	}
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client.New("http://"+addr.String(), int64(w))
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				st, err := c.Submit(context.Background(), spec)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("perfbench: submit %d: %w", i, err))
					return
				}
				lat.Observe(time.Since(t0))
				ids[i] = st.ID
			}
		}(w)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return Entry{}, nil, err
	}

	c := client.New("http://"+addr.String(), 1)
	health, err := c.Health(context.Background())
	if err != nil {
		return Entry{}, nil, fmt.Errorf("perfbench: health: %w", err)
	}
	// Cancel the still-queued tail so shutdown drains in bounded time;
	// cells already run (or running) are tiny either way.
	for _, id := range ids {
		if id != "" {
			c.Cancel(context.Background(), id)
		}
	}

	s := lat.Summary()
	e := Entry{
		NsPerRef:   float64(s.Mean.Nanoseconds()),
		Iterations: s.Count,
		P50Ns:      float64(s.P50.Nanoseconds()),
		P99Ns:      float64(s.P99.Nanoseconds()),
		P999Ns:     float64(s.P999.Nanoseconds()),
	}
	if e.NsPerRef > 0 {
		e.RefsPerSec = 1e9 / e.NsPerRef
	}
	return e, health.Journal, nil
}

// commitLogPayload is the append payload for the raw commit-log
// throughput entries: the size class of a typical journal record.
var commitLogPayload = []byte(`{"t":"submit","id":"j1","seq":1,"spec":{"experiments":["fig10"],"refs":60000}}`)

// measureCommitLogAppend measures raw commit-log append throughput:
// `appenders` goroutines each durably appending perAppender records
// to one log. At appenders=1 every append pays its own uncontended
// fsync (the floor group commit cannot beat); at appenders=64 the
// committer batches everything queued behind the in-flight sync, and
// the appends/sec ratio over the 1-appender entry is the amortization
// factor on this machine.
func measureCommitLogAppend(appenders, perAppender int) (Entry, error) {
	dir, err := os.MkdirTemp("", "perfbench-commitlog-*")
	if err != nil {
		return Entry{}, err
	}
	defer os.RemoveAll(dir)
	l, _, err := commitlog.Open(filepath.Join(dir, "bench.log"), commitlog.Options{}, nil)
	if err != nil {
		return Entry{}, fmt.Errorf("perfbench: commitlog: %w", err)
	}
	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
	)
	start := time.Now()
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if err := l.Append(commitLogPayload); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("perfbench: commitlog append: %w", err))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := l.Close(); err != nil {
		return Entry{}, fmt.Errorf("perfbench: commitlog close: %w", err)
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return Entry{}, err
	}
	total := appenders * perAppender
	e := Entry{
		NsPerRef:   float64(elapsed.Nanoseconds()) / float64(total),
		Iterations: total,
	}
	if e.NsPerRef > 0 {
		e.RefsPerSec = 1e9 / e.NsPerRef
	}
	return e, nil
}
