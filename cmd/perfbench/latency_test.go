package main

import "testing"

// TestSubmitLatencyEntry is the bench-smoke guard for the daemon/submit
// latency axis: a reduced-sample measurement must produce a sane,
// ordered distribution (0 < p50 <= p99 <= p999) — catching a broken
// daemon path or quantile extraction without being a performance
// assertion.
func TestSubmitLatencyEntry(t *testing.T) {
	e, err := measureSubmitLatency(32)
	if err != nil {
		t.Fatal(err)
	}
	if e.Iterations != 32 {
		t.Fatalf("measured %d samples, want 32", e.Iterations)
	}
	if !(e.P50Ns > 0 && e.P50Ns <= e.P99Ns && e.P99Ns <= e.P999Ns) {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v", e.P50Ns, e.P99Ns, e.P999Ns)
	}
	if e.NsPerRef <= 0 || e.RefsPerSec <= 0 {
		t.Fatalf("mean/rate not positive: %+v", e)
	}
}
