package main

import (
	"os"
	"testing"
)

// TestSubmitLatencyEntry is the bench-smoke guard for the daemon/submit
// latency axis: a reduced-sample measurement must produce a sane,
// ordered distribution (0 < p50 <= p99 <= p999) — catching a broken
// daemon path or quantile extraction without being a performance
// assertion.
func TestSubmitLatencyEntry(t *testing.T) {
	e, err := measureSubmitLatency(32)
	if err != nil {
		t.Fatal(err)
	}
	if e.Iterations != 32 {
		t.Fatalf("measured %d samples, want 32", e.Iterations)
	}
	if !(e.P50Ns > 0 && e.P50Ns <= e.P99Ns && e.P99Ns <= e.P999Ns) {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v", e.P50Ns, e.P99Ns, e.P999Ns)
	}
	if e.NsPerRef <= 0 || e.RefsPerSec <= 0 {
		t.Fatalf("mean/rate not positive: %+v", e)
	}
}

// TestCommitLogAppendEntry is the plain-tier sanity check for the raw
// commit-log throughput entries: both appender counts measure, and the
// numbers are positive — not a performance assertion.
func TestCommitLogAppendEntry(t *testing.T) {
	for _, appenders := range []int{1, 64} {
		e, err := measureCommitLogAppend(appenders, 4)
		if err != nil {
			t.Fatal(err)
		}
		if e.Iterations != appenders*4 || e.NsPerRef <= 0 || e.RefsPerSec <= 0 {
			t.Fatalf("appenders=%d: %+v", appenders, e)
		}
	}
}

// TestGroupCommitSubmitGuard is the bench-smoke regression guard for
// the group-commit journal (DICE_SMOKE=1 gates the wall-clock
// assertion out of plain `go test ./...`, PR 6 style): under
// concurrent submission load on the same machine, the batched journal
// must beat the fsync-per-append reference discipline at p99 by at
// least the 1.05x smoke floor, and the journal counters must prove
// the batching structurally — materially fewer syncs than appends,
// with at least one multi-record batch — while the reference mode
// pays exactly one sync per append.
func TestGroupCommitSubmitGuard(t *testing.T) {
	if os.Getenv("DICE_SMOKE") == "" {
		t.Skip("set DICE_SMOKE=1 (make bench-smoke) to run the group-commit regression guard")
	}
	const n = 256
	batched, bstats, err := measureSubmitLatencyWith(n, submitConcurrency, submitLinger, false)
	if err != nil {
		t.Fatal(err)
	}
	reference, rstats, err := measureSubmitLatencyWith(n, submitConcurrency, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("batched:   p50 %.2fms p99 %.2fms (%d appends, %d syncs, max batch %d)",
		batched.P50Ns/1e6, batched.P99Ns/1e6, bstats.Appends, bstats.Syncs, bstats.MaxBatchRecords)
	t.Logf("reference: p50 %.2fms p99 %.2fms (%d appends, %d syncs)",
		reference.P50Ns/1e6, reference.P99Ns/1e6, rstats.Appends, rstats.Syncs)

	if bstats == nil || rstats == nil {
		t.Fatal("journal stats missing from /healthz")
	}
	if rstats.Syncs != rstats.Appends {
		t.Fatalf("reference mode must sync per append: %d syncs for %d appends", rstats.Syncs, rstats.Appends)
	}
	if bstats.Syncs*2 > bstats.Appends || bstats.MaxBatchRecords < 2 {
		t.Fatalf("group commit did not batch: %d syncs for %d appends, max batch %d",
			bstats.Syncs, bstats.Appends, bstats.MaxBatchRecords)
	}
	const floor = 1.05
	if reference.P99Ns < batched.P99Ns*floor {
		t.Fatalf("batched submit p99 %.2fms does not beat fsync-per-append p99 %.2fms by the %.2fx smoke floor",
			batched.P99Ns/1e6, reference.P99Ns/1e6, floor)
	}
}
