package main

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"

	"dice/internal/obs"
)

// metricsSink appends streamed epoch snapshots to an NDJSON file: one
// {"key": ..., "snap": {...}} object per line, in arrival order. The
// sink is the sweep's -metrics-out target; it is called from worker
// goroutines concurrently, so every append holds the mutex. Epoch
// delivery is best-effort telemetry (see dse.Options.EpochSink): a
// daemon restart mid-batch may duplicate or drop lines, so consumers
// must treat the file as a sample stream, not an exact record.
type metricsSink struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	count  int
	closed bool
	err    error
}

// epochLine is the NDJSON shape of one streamed snapshot.
type epochLine struct {
	Key  string       `json:"key"`
	Snap obs.Snapshot `json:"snap"`
}

// openMetricsSink creates (or truncates) the NDJSON file at path.
func openMetricsSink(path string) (*metricsSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &metricsSink{f: f, w: bufio.NewWriter(f)}, nil
}

// Emit appends one snapshot line. Write errors are remembered and
// surfaced by Close — an epoch sink failure must not abort the sweep.
func (m *metricsSink) Emit(key string, s obs.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.err != nil {
		return
	}
	b, err := json.Marshal(epochLine{Key: key, Snap: s})
	if err != nil {
		m.err = err
		return
	}
	b = append(b, '\n')
	if _, err := m.w.Write(b); err != nil {
		m.err = err
		return
	}
	m.count++
}

// Count returns how many lines were appended.
func (m *metricsSink) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Close flushes and closes the file, returning the first error the
// sink hit. Idempotent: later calls return the same result.
func (m *metricsSink) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err
	}
	m.closed = true
	if ferr := m.w.Flush(); m.err == nil {
		m.err = ferr
	}
	if cerr := m.f.Close(); m.err == nil {
		m.err = cerr
	}
	return m.err
}
