package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Sweep acceptance smoke (make sweep-smoke, DICE_SMOKE=1): build the
// real dicesweep and dicebenchd binaries and drive the full
// acceptance bar from the outside — a three-axis spec expanding past
// 200 cells runs locally at workers 8 and workers 1 and sharded over
// a live daemon with byte-identical frontier exports, and a sweep
// killed mid-run resumes without re-running logged cells.

var (
	buildOnce  sync.Once
	buildErr   error
	sweepBin   string
	benchdBin  string
	cellCensus = regexp.MustCompile(`expands to (\d+) cells`)
	ranCounts  = regexp.MustCompile(`\((\d+) run now, (\d+) replayed\)`)
)

func binaries(t *testing.T) (sweep, benchd string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dicesweep-bin")
		if err != nil {
			buildErr = err
			return
		}
		sweepBin = filepath.Join(dir, "dicesweep")
		benchdBin = filepath.Join(dir, "dicebenchd")
		for bin, pkg := range map[string]string{sweepBin: "dice/cmd/dicesweep", benchdBin: "dice/cmd/dicebenchd"} {
			out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return sweepBin, benchdBin
}

// sweepSmoke is the acceptance spec: three swept axes (policy,
// threshold, latency) over the 16-workload rate suite — 288 requested
// cells plus 32 auto-added baselines, comfortably past the 200-cell
// bar at a reference budget small enough to finish in seconds.
const sweepSmoke = `
name = sweep-smoke
refs = 120
workload = rate
policy = base tsi dice
threshold = 24 36 48
latency = full half
`

// runSweep invokes the dicesweep binary and returns its combined
// output, failing the test unless the exit status matches wantOK.
func runSweep(t *testing.T, wantOK bool, args ...string) string {
	t.Helper()
	sweep, _ := binaries(t)
	cmd := exec.Command(sweep, args...)
	out, err := cmd.CombinedOutput()
	if wantOK && err != nil {
		t.Fatalf("dicesweep %v: %v\n%s", args, err, out)
	}
	if !wantOK && err == nil {
		t.Fatalf("dicesweep %v succeeded, expected failure\n%s", args, out)
	}
	return string(out)
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepSmokeLocalDaemonParity is the headline acceptance run:
// local workers 8 vs workers 1 vs daemon-sharded — the latter both
// streaming (the default) and -poll-only, at workers 1 and 8 — all
// frontier exports byte-identical, cells/hour recorded to
// BENCH_pr10.json, and the streamed epoch-metrics NDJSON non-empty and
// well-formed.
func TestSweepSmokeLocalDaemonParity(t *testing.T) {
	if os.Getenv("DICE_SMOKE") == "" {
		t.Skip("set DICE_SMOKE=1 (make sweep-smoke) to run the sweep acceptance smoke")
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "smoke.sweep")
	if err := os.WriteFile(specPath, []byte(sweepSmoke), 0o644); err != nil {
		t.Fatal(err)
	}
	benchPath, err := filepath.Abs("../../BENCH_pr10.json")
	if err != nil {
		t.Fatal(err)
	}

	out8 := runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "l8.results"),
		"-out", filepath.Join(dir, "f8"), "-workers", "8", "-bench-out", benchPath)
	m := cellCensus.FindStringSubmatch(out8)
	if m == nil {
		t.Fatalf("no cell census in output:\n%s", out8)
	}
	if n, _ := strconv.Atoi(m[1]); n < 200 {
		t.Fatalf("spec expands to %d cells, acceptance bar is >= 200", n)
	}
	if _, err := os.Stat(benchPath); err != nil {
		t.Fatalf("bench record not written: %v", err)
	}

	runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "l1.results"),
		"-out", filepath.Join(dir, "f1"), "-workers", "1")
	for _, ext := range []string{".csv", ".json"} {
		w8 := readFile(t, filepath.Join(dir, "f8"+ext))
		w1 := readFile(t, filepath.Join(dir, "f1"+ext))
		if string(w8) != string(w1) {
			t.Fatalf("frontier%s diverges between workers 8 and 1", ext)
		}
	}

	// Shard the same matrix over a live dicebenchd subprocess — four
	// ways: streaming (the default) and -poll-only, each at workers 8
	// and workers 1. All four frontiers must match the local bytes;
	// streaming changes when cells checkpoint, never what they contain.
	d := startBenchd(t, "-journal", filepath.Join(dir, "d.journal"), "-q")
	metricsPath := filepath.Join(dir, "epochs.ndjson")
	shardRuns := []struct {
		name string
		args []string
	}{
		{"fd8", []string{"-workers", "8", "-metrics-epoch", "500", "-metrics-out", metricsPath}},
		{"fp8", []string{"-workers", "8", "-poll-only"}},
		{"fd1", []string{"-workers", "1"}},
		{"fp1", []string{"-workers", "1", "-poll-only"}},
	}
	for _, sr := range shardRuns {
		runSweep(t, true, append([]string{
			"-spec", specPath, "-log", filepath.Join(dir, sr.name+".results"),
			"-out", filepath.Join(dir, sr.name),
			"-daemons", "http://" + d.addr, "-batch", "64", "-poll", "10ms",
		}, sr.args...)...)
		for _, ext := range []string{".csv", ".json"} {
			local := readFile(t, filepath.Join(dir, "f8"+ext))
			shard := readFile(t, filepath.Join(dir, sr.name+ext))
			if string(local) != string(shard) {
				t.Fatalf("frontier%s diverges between local and daemon-sharded run %s", ext, sr.name)
			}
		}
	}

	// The streamed epoch metrics landed as parseable NDJSON.
	lines := strings.Split(strings.TrimRight(string(readFile(t, metricsPath)), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no epoch snapshots streamed to -metrics-out")
	}
	for i, ln := range lines {
		var ep struct {
			Key  string          `json:"key"`
			Snap json.RawMessage `json:"snap"`
		}
		if err := json.Unmarshal([]byte(ln), &ep); err != nil || ep.Key == "" || len(ep.Snap) == 0 {
			t.Fatalf("metrics line %d malformed (%v): %s", i, err, ln)
		}
	}
	t.Logf("sweep-smoke: %d epoch snapshots streamed", len(lines))
}

// TestSweepSmokeStreamSurvivesDaemonKill SIGKILLs the daemon while a
// streaming sweep is mid-flight — cells already checkpointed, the job
// stream open — then restarts it on the same port with the same
// journal. The sweep's reconnect loop must ride through the outage,
// absorb the new generation's re-delivery without duplicating cells in
// the results log, and finish with frontier bytes identical to a local
// run.
func TestSweepSmokeStreamSurvivesDaemonKill(t *testing.T) {
	if os.Getenv("DICE_SMOKE") == "" {
		t.Skip("set DICE_SMOKE=1 (make sweep-smoke) to run the sweep acceptance smoke")
	}
	dir := t.TempDir()
	// A heavier budget over a 32-cell matrix so the kill reliably lands
	// while batches are still streaming.
	spec := "name = stream-kill\nrefs = 5000\nworkload = rate\npolicy = base dice\n"
	specPath := filepath.Join(dir, "kill.sweep")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "ls.results")
	journal := filepath.Join(dir, "d.journal")

	// A fixed port so the restarted daemon is reachable at the same
	// base URL the sweep is retrying.
	addr := freeAddr(t)
	d1 := startBenchd(t, "-addr", addr, "-journal", journal, "-q")

	sweep, _ := binaries(t)
	cmd := exec.Command(sweep,
		"-spec", specPath, "-log", logPath, "-out", filepath.Join(dir, "fs"),
		"-daemons", "http://"+addr, "-batch", "8", "-workers", "2", "-poll", "10ms")
	var outBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &outBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sweepDone := make(chan error, 1)
	go func() { sweepDone <- cmd.Wait() }()

	// Wait until streamed cells are hitting the results log — proof the
	// stream is live — then kill the daemon without ceremony.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fi, err := os.Stat(logPath); err == nil && fi.Size() > 0 {
			break
		}
		select {
		case err := <-sweepDone:
			t.Fatalf("sweep exited before streaming began: %v\n%s", err, outBuf.String())
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no streamed cell ever reached the results log\n%s", outBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.cmd.Process.Kill()
	<-d1.done

	// Restart on the same port with the same journal; unfinished jobs
	// replay under a fresh generation and re-deliver.
	startBenchd(t, "-addr", addr, "-journal", journal, "-q")

	if err := <-sweepDone; err != nil {
		t.Fatalf("sweep did not survive the daemon kill: %v\n%s", err, outBuf.String())
	}

	// Exactly-once checkpointing: 32 distinct cells, no duplicates,
	// despite the new generation re-streaming delivered cells.
	keys := map[string]int{}
	for _, ln := range strings.Split(strings.TrimRight(string(readFile(t, logPath)), "\n"), "\n") {
		var cell struct {
			Key string `json:"key"`
		}
		payload := ln
		if i := strings.IndexByte(ln, ' '); i >= 0 {
			payload = ln[i+1:] // strip the CRC frame prefix
		}
		if err := json.Unmarshal([]byte(payload), &cell); err != nil || cell.Key == "" {
			t.Fatalf("results-log line malformed (%v): %s", err, ln)
		}
		keys[cell.Key]++
	}
	if len(keys) != 32 {
		t.Fatalf("results log holds %d distinct cells, want 32", len(keys))
	}
	for k, n := range keys {
		if n != 1 {
			t.Fatalf("cell %s checkpointed %d times (restart re-delivery not deduplicated)", k, n)
		}
	}

	// And the survived sweep's frontier matches an uninterrupted local run.
	runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "lref.results"),
		"-out", filepath.Join(dir, "fref"), "-workers", "4")
	for _, ext := range []string{".csv", ".json"} {
		got := readFile(t, filepath.Join(dir, "fs"+ext))
		want := readFile(t, filepath.Join(dir, "fref"+ext))
		if string(got) != string(want) {
			t.Fatalf("frontier%s diverges after daemon kill/restart", ext)
		}
	}
}

// freeAddr picks a free localhost TCP address by binding and releasing
// it — the daemon restart needs a port known in advance.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestSweepSmokeKillResume interrupts a serial sweep mid-run with
// SIGINT, then re-invokes it with -resume: the logged cells replay
// instead of re-running, the sweep completes, and the resumed
// frontier is byte-identical to an uninterrupted run's.
func TestSweepSmokeKillResume(t *testing.T) {
	if os.Getenv("DICE_SMOKE") == "" {
		t.Skip("set DICE_SMOKE=1 (make sweep-smoke) to run the sweep acceptance smoke")
	}
	dir := t.TempDir()
	// A heavier per-cell budget over a smaller matrix (32 cells), so
	// SIGINT reliably lands while cells are still queued at workers 1.
	spec := "name = kill-resume\nrefs = 5000\nworkload = rate\npolicy = base dice\n"
	specPath := filepath.Join(dir, "kill.sweep")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "lk.results")

	sweep, _ := binaries(t)
	cmd := exec.Command(sweep,
		"-spec", specPath, "-log", logPath,
		"-out", filepath.Join(dir, "fk"), "-workers", "1")
	var outBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &outBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the first completed cell to hit the results log, then
	// interrupt without ceremony.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fi, err := os.Stat(logPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no cell ever reached the results log\n%s", outBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	interrupted := err != nil // exit 1 unless the sweep won the race and finished

	// Resume: logged cells replay, only the rest run.
	resumeOut := runSweep(t, true,
		"-spec", specPath, "-log", logPath,
		"-out", filepath.Join(dir, "fk"), "-workers", "1", "-resume")
	m := ranCounts.FindStringSubmatch(resumeOut)
	if m == nil {
		t.Fatalf("no run/replay counts in resume output:\n%s", resumeOut)
	}
	ran, _ := strconv.Atoi(m[1])
	replayed, _ := strconv.Atoi(m[2])
	if replayed == 0 {
		t.Fatalf("resume replayed no cells (interrupted=%v):\n%s", interrupted, resumeOut)
	}
	if interrupted && ran == 0 {
		t.Fatalf("interrupted sweep left nothing to run:\n%s", resumeOut)
	}
	if ran+replayed != 32 {
		t.Fatalf("resume accounts for %d+%d cells, want 32", ran, replayed)
	}

	// Without -resume, a populated log is an error, never overwritten.
	refuse := runSweep(t, false,
		"-spec", specPath, "-log", logPath, "-out", filepath.Join(dir, "fx"))
	if !strings.Contains(refuse, "-resume") {
		t.Fatalf("populated-log refusal does not mention -resume:\n%s", refuse)
	}

	// The interrupted-then-resumed frontier matches an uninterrupted run.
	runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "lref.results"),
		"-out", filepath.Join(dir, "fref"), "-workers", "4")
	for _, ext := range []string{".csv", ".json"} {
		resumed := readFile(t, filepath.Join(dir, "fk"+ext))
		ref := readFile(t, filepath.Join(dir, "fref"+ext))
		if string(resumed) != string(ref) {
			t.Fatalf("resumed frontier%s diverges from an uninterrupted run", ext)
		}
	}
}

// benchdProc is one running dicebenchd subprocess plus its scraped
// address (the same harness cmd/dicebenchd's own smoke tests use).
type benchdProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error
}

// startBenchd launches dicebenchd on an ephemeral port and scrapes
// the "listening on" line for the bound address.
func startBenchd(t *testing.T, args ...string) *benchdProc {
	t.Helper()
	_, benchd := binaries(t)
	cmd := exec.Command(benchd, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &benchdProc{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "dicebenchd: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(a):
				default:
				}
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	go func() { p.done <- cmd.Wait() }()
	select {
	case p.addr = <-addrCh:
	case err := <-p.done:
		t.Fatalf("dicebenchd exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("dicebenchd never printed its address")
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}
