package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Sweep acceptance smoke (make sweep-smoke, DICE_SMOKE=1): build the
// real dicesweep and dicebenchd binaries and drive the full
// acceptance bar from the outside — a three-axis spec expanding past
// 200 cells runs locally at workers 8 and workers 1 and sharded over
// a live daemon with byte-identical frontier exports, and a sweep
// killed mid-run resumes without re-running logged cells.

var (
	buildOnce  sync.Once
	buildErr   error
	sweepBin   string
	benchdBin  string
	cellCensus = regexp.MustCompile(`expands to (\d+) cells`)
	ranCounts  = regexp.MustCompile(`\((\d+) run now, (\d+) replayed\)`)
)

func binaries(t *testing.T) (sweep, benchd string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dicesweep-bin")
		if err != nil {
			buildErr = err
			return
		}
		sweepBin = filepath.Join(dir, "dicesweep")
		benchdBin = filepath.Join(dir, "dicebenchd")
		for bin, pkg := range map[string]string{sweepBin: "dice/cmd/dicesweep", benchdBin: "dice/cmd/dicebenchd"} {
			out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return sweepBin, benchdBin
}

// sweepSmoke is the acceptance spec: three swept axes (policy,
// threshold, latency) over the 16-workload rate suite — 288 requested
// cells plus 32 auto-added baselines, comfortably past the 200-cell
// bar at a reference budget small enough to finish in seconds.
const sweepSmoke = `
name = sweep-smoke
refs = 120
workload = rate
policy = base tsi dice
threshold = 24 36 48
latency = full half
`

// runSweep invokes the dicesweep binary and returns its combined
// output, failing the test unless the exit status matches wantOK.
func runSweep(t *testing.T, wantOK bool, args ...string) string {
	t.Helper()
	sweep, _ := binaries(t)
	cmd := exec.Command(sweep, args...)
	out, err := cmd.CombinedOutput()
	if wantOK && err != nil {
		t.Fatalf("dicesweep %v: %v\n%s", args, err, out)
	}
	if !wantOK && err == nil {
		t.Fatalf("dicesweep %v succeeded, expected failure\n%s", args, out)
	}
	return string(out)
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepSmokeLocalDaemonParity is the headline acceptance run:
// local workers 8 vs workers 1 vs daemon-sharded, all three frontier
// exports byte-identical, cells/hour recorded to BENCH_pr8.json.
func TestSweepSmokeLocalDaemonParity(t *testing.T) {
	if os.Getenv("DICE_SMOKE") == "" {
		t.Skip("set DICE_SMOKE=1 (make sweep-smoke) to run the sweep acceptance smoke")
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "smoke.sweep")
	if err := os.WriteFile(specPath, []byte(sweepSmoke), 0o644); err != nil {
		t.Fatal(err)
	}
	benchPath, err := filepath.Abs("../../BENCH_pr8.json")
	if err != nil {
		t.Fatal(err)
	}

	out8 := runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "l8.results"),
		"-out", filepath.Join(dir, "f8"), "-workers", "8", "-bench-out", benchPath)
	m := cellCensus.FindStringSubmatch(out8)
	if m == nil {
		t.Fatalf("no cell census in output:\n%s", out8)
	}
	if n, _ := strconv.Atoi(m[1]); n < 200 {
		t.Fatalf("spec expands to %d cells, acceptance bar is >= 200", n)
	}
	if _, err := os.Stat(benchPath); err != nil {
		t.Fatalf("bench record not written: %v", err)
	}

	runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "l1.results"),
		"-out", filepath.Join(dir, "f1"), "-workers", "1")
	for _, ext := range []string{".csv", ".json"} {
		w8 := readFile(t, filepath.Join(dir, "f8"+ext))
		w1 := readFile(t, filepath.Join(dir, "f1"+ext))
		if string(w8) != string(w1) {
			t.Fatalf("frontier%s diverges between workers 8 and 1", ext)
		}
	}

	// Shard the same matrix over a live dicebenchd subprocess.
	d := startBenchd(t, "-journal", filepath.Join(dir, "d.journal"), "-q")
	runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "ld.results"),
		"-out", filepath.Join(dir, "fd"),
		"-daemons", "http://"+d.addr, "-batch", "64", "-poll", "10ms")
	for _, ext := range []string{".csv", ".json"} {
		local := readFile(t, filepath.Join(dir, "f8"+ext))
		shard := readFile(t, filepath.Join(dir, "fd"+ext))
		if string(local) != string(shard) {
			t.Fatalf("frontier%s diverges between local and daemon-sharded runs", ext)
		}
	}
}

// TestSweepSmokeKillResume interrupts a serial sweep mid-run with
// SIGINT, then re-invokes it with -resume: the logged cells replay
// instead of re-running, the sweep completes, and the resumed
// frontier is byte-identical to an uninterrupted run's.
func TestSweepSmokeKillResume(t *testing.T) {
	if os.Getenv("DICE_SMOKE") == "" {
		t.Skip("set DICE_SMOKE=1 (make sweep-smoke) to run the sweep acceptance smoke")
	}
	dir := t.TempDir()
	// A heavier per-cell budget over a smaller matrix (32 cells), so
	// SIGINT reliably lands while cells are still queued at workers 1.
	spec := "name = kill-resume\nrefs = 5000\nworkload = rate\npolicy = base dice\n"
	specPath := filepath.Join(dir, "kill.sweep")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "lk.results")

	sweep, _ := binaries(t)
	cmd := exec.Command(sweep,
		"-spec", specPath, "-log", logPath,
		"-out", filepath.Join(dir, "fk"), "-workers", "1")
	var outBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &outBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the first completed cell to hit the results log, then
	// interrupt without ceremony.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fi, err := os.Stat(logPath); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no cell ever reached the results log\n%s", outBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	interrupted := err != nil // exit 1 unless the sweep won the race and finished

	// Resume: logged cells replay, only the rest run.
	resumeOut := runSweep(t, true,
		"-spec", specPath, "-log", logPath,
		"-out", filepath.Join(dir, "fk"), "-workers", "1", "-resume")
	m := ranCounts.FindStringSubmatch(resumeOut)
	if m == nil {
		t.Fatalf("no run/replay counts in resume output:\n%s", resumeOut)
	}
	ran, _ := strconv.Atoi(m[1])
	replayed, _ := strconv.Atoi(m[2])
	if replayed == 0 {
		t.Fatalf("resume replayed no cells (interrupted=%v):\n%s", interrupted, resumeOut)
	}
	if interrupted && ran == 0 {
		t.Fatalf("interrupted sweep left nothing to run:\n%s", resumeOut)
	}
	if ran+replayed != 32 {
		t.Fatalf("resume accounts for %d+%d cells, want 32", ran, replayed)
	}

	// Without -resume, a populated log is an error, never overwritten.
	refuse := runSweep(t, false,
		"-spec", specPath, "-log", logPath, "-out", filepath.Join(dir, "fx"))
	if !strings.Contains(refuse, "-resume") {
		t.Fatalf("populated-log refusal does not mention -resume:\n%s", refuse)
	}

	// The interrupted-then-resumed frontier matches an uninterrupted run.
	runSweep(t, true,
		"-spec", specPath, "-log", filepath.Join(dir, "lref.results"),
		"-out", filepath.Join(dir, "fref"), "-workers", "4")
	for _, ext := range []string{".csv", ".json"} {
		resumed := readFile(t, filepath.Join(dir, "fk"+ext))
		ref := readFile(t, filepath.Join(dir, "fref"+ext))
		if string(resumed) != string(ref) {
			t.Fatalf("resumed frontier%s diverges from an uninterrupted run", ext)
		}
	}
}

// benchdProc is one running dicebenchd subprocess plus its scraped
// address (the same harness cmd/dicebenchd's own smoke tests use).
type benchdProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error
}

// startBenchd launches dicebenchd on an ephemeral port and scrapes
// the "listening on" line for the bound address.
func startBenchd(t *testing.T, args ...string) *benchdProc {
	t.Helper()
	_, benchd := binaries(t)
	cmd := exec.Command(benchd, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &benchdProc{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "dicebenchd: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(a):
				default:
				}
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	go func() { p.done <- cmd.Wait() }()
	select {
	case p.addr = <-addrCh:
	case err := <-p.done:
		t.Fatalf("dicebenchd exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("dicebenchd never printed its address")
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}
