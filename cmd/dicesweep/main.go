// Command dicesweep is the design-space-exploration driver: it
// expands a declarative sweep spec (SWEEPS.md) into a deduplicated
// matrix of simulation cells, runs every cell not already
// checkpointed — in-process on a memoizing worker pool, or sharded
// across one or more dicebenchd daemons — and post-processes the
// results into per-workload Pareto frontiers over speedup, energy,
// EDP and fault resilience, exported as CSV and JSON.
//
// Usage:
//
//	dicesweep -spec fig10.sweep                     # run locally, one worker per CPU
//	dicesweep -spec fig10.sweep -workers 1          # serial reference schedule
//	dicesweep -spec fig10.sweep -daemons http://a:8377,http://b:8377
//	dicesweep -spec fig10.sweep -resume             # continue an interrupted sweep
//	dicesweep -spec fig10.sweep -dry-run            # expansion census only
//
// Every completed cell is appended to a crash-safe CRC-32C results
// log (-log, default "<spec>.results") the moment it finishes, so a
// killed sweep resumes with -resume without re-running logged cells;
// without -resume an existing non-empty log is an error, never
// silently overwritten. Frontier exports are byte-identical at every
// -workers setting and whether cells ran locally or on daemons,
// because simulations are pure functions of their cell spec. See
// DESIGN.md §14 for the architecture and failure matrix.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dice/internal/commitlog"
	"dice/internal/dse"
	"dice/internal/sigctx"
)

// cliFlags holds every dicesweep flag; registerFlags is the one place
// they are declared, shared by main and the flag-docs pin test.
type cliFlags struct {
	spec          *string
	log           *string
	logLinger     *time.Duration
	logBatch      *int
	resume        *bool
	workers       *int
	daemons       *string
	batch         *int
	shardDeadline *time.Duration
	poll          *time.Duration
	pollOnly      *bool
	metricsEpoch  *uint64
	metricsOut    *string
	out           *string
	dryRun        *bool
	benchOut      *string
	verbose       *bool
}

// registerFlags declares the dicesweep flags on fs.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		spec:          fs.String("spec", "", "sweep spec file (required; see SWEEPS.md)"),
		log:           fs.String("log", "", "results-log path ('' = <spec>.results)"),
		logLinger:     fs.Duration("log-linger", 0, "results-log group-commit linger: how long the committer waits for batch-mates (0 = commit immediately; batching still occurs behind in-flight syncs)"),
		logBatch:      fs.Int("log-batch-bytes", 1<<20, "results-log group-commit batch bound in bytes"),
		resume:        fs.Bool("resume", false, "continue from an existing results log instead of erroring on it"),
		workers:       fs.Int("workers", 0, "concurrent simulations (0 = one per CPU, 1 = serial)"),
		daemons:       fs.String("daemons", "", "comma-separated dicebenchd base URLs to shard across ('' = run in-process)"),
		batch:         fs.Int("batch", 0, "cells per daemon job (0 = 256)"),
		shardDeadline: fs.Duration("shard-deadline", 0, "per-job deadline daemons enforce (0 = none)"),
		poll:          fs.Duration("poll", 100*time.Millisecond, "job-status poll interval for daemon sharding"),
		pollOnly:      fs.Bool("poll-only", false, "disable result streaming for daemon sharding; poll jobs to terminal state (frontier bytes identical either way)"),
		metricsEpoch:  fs.Uint64("metrics-epoch", 0, "emit per-epoch metric snapshots every N simulated cycles (0 = off; requires -metrics-out)"),
		metricsOut:    fs.String("metrics-out", "", "append streamed epoch snapshots to this NDJSON file (requires -metrics-epoch)"),
		out:           fs.String("out", "frontier", "frontier export path prefix (writes <out>.csv and <out>.json)"),
		dryRun:        fs.Bool("dry-run", false, "expand the spec, print the cell census, and exit without simulating"),
		benchOut:      fs.String("bench-out", "", "write a cells/hour benchmark record to this JSON file"),
		verbose:       fs.Bool("v", false, "print progress lines"),
	}
}

func main() {
	opts := registerFlags(flag.CommandLine)
	flag.Parse()
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run owns the sweep lifecycle so every exit path flows through one
// return.
func run(opts *cliFlags) error {
	if *opts.spec == "" {
		return fmt.Errorf("dicesweep: -spec is required")
	}
	spec, err := dse.ParseFile(*opts.spec)
	if err != nil {
		return err
	}
	cells, err := spec.Expand()
	if err != nil {
		return err
	}
	baselines := 0
	for _, c := range cells {
		if c.IsBaseline() {
			baselines++
		}
	}
	fmt.Printf("dicesweep: spec %s expands to %d cells (%d workloads, %d baseline cells)\n",
		*opts.spec, len(cells), len(spec.Workloads), baselines)
	if *opts.dryRun {
		return nil
	}

	logPath := *opts.log
	if logPath == "" {
		logPath = *opts.spec + ".results"
	}
	if *opts.logLinger < 0 {
		return fmt.Errorf("dicesweep: -log-linger must be non-negative, got %v", *opts.logLinger)
	}
	if *opts.logBatch <= 0 {
		return fmt.Errorf("dicesweep: -log-batch-bytes must be positive, got %d", *opts.logBatch)
	}
	rlog, replay, err := dse.OpenResultLogWith(logPath, commitlog.Options{
		MaxLinger:     *opts.logLinger,
		MaxBatchBytes: *opts.logBatch,
	})
	if err != nil {
		return err
	}
	defer rlog.Close()
	if replay.Cells > 0 && !*opts.resume {
		return fmt.Errorf("dicesweep: results log %s already holds %d cells; pass -resume to continue or remove it",
			logPath, replay.Cells)
	}
	if replay.TruncatedBytes > 0 {
		fmt.Printf("dicesweep: dropped %d bytes of torn results-log tail\n", replay.TruncatedBytes)
	}
	if *opts.resume && len(replay.Results) > 0 {
		fmt.Printf("dicesweep: resuming with %d logged cells\n", len(replay.Results))
	}

	runOpts := dse.Options{
		Workers:       *opts.workers,
		Batch:         *opts.batch,
		ShardDeadline: *opts.shardDeadline,
		Poll:          *opts.poll,
		PollOnly:      *opts.pollOnly,
	}
	if (*opts.metricsEpoch > 0) != (*opts.metricsOut != "") {
		return fmt.Errorf("dicesweep: -metrics-epoch and -metrics-out must be set together")
	}
	var metrics *metricsSink
	if *opts.metricsOut != "" {
		if metrics, err = openMetricsSink(*opts.metricsOut); err != nil {
			return err
		}
		defer metrics.Close()
		runOpts.MetricsEpoch = *opts.metricsEpoch
		runOpts.EpochSink = metrics.Emit
	}
	if *opts.daemons != "" {
		for _, d := range strings.Split(*opts.daemons, ",") {
			if d = strings.TrimSpace(d); d != "" {
				runOpts.Daemons = append(runOpts.Daemons, d)
			}
		}
	}
	if *opts.verbose {
		runOpts.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}

	// First SIGINT/SIGTERM cancels queued cells; completed ones are
	// already in the log, so a second invocation with -resume picks up
	// exactly where this one stopped.
	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()

	start := time.Now()
	results, runErr := dse.Run(ctx, cells, rlog, replay.Results, runOpts)
	elapsed := time.Since(start)
	ran := len(results) - len(replay.Results)
	fmt.Printf("dicesweep: %d cells done (%d run now, %d replayed) in %.1fs\n",
		len(results), ran, len(replay.Results), elapsed.Seconds())
	if *opts.benchOut != "" {
		if err := writeBench(*opts.benchOut, ran, elapsed, runOpts); err != nil {
			return err
		}
	}
	if metrics != nil {
		if err := metrics.Close(); err != nil {
			return err
		}
		fmt.Printf("dicesweep: %d epoch snapshots appended to %s\n", metrics.Count(), *opts.metricsOut)
	}
	if runErr != nil {
		return fmt.Errorf("dicesweep: %w", runErr)
	}

	points, err := dse.Frontier(cells, results)
	if err != nil {
		return err
	}
	if err := writeFrontier(*opts.out, points); err != nil {
		return err
	}
	onFrontier := 0
	for _, p := range points {
		if p.Frontier {
			onFrontier++
		}
	}
	fmt.Printf("dicesweep: %d of %d points Pareto-optimal; wrote %s.csv and %s.json\n",
		onFrontier, len(points), *opts.out, *opts.out)
	return nil
}

// writeFrontier exports the points under prefix as CSV and JSON.
func writeFrontier(prefix string, points []dse.Point) error {
	cf, err := os.Create(prefix + ".csv")
	if err != nil {
		return err
	}
	err = dse.WriteCSV(cf, points)
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	jf, err := os.Create(prefix + ".json")
	if err != nil {
		return err
	}
	err = dse.WriteJSON(jf, points)
	if cerr := jf.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeBench records the sweep's throughput — the headline cells/hour
// metric — into the JSON benchmark file under the "pr10-sweep" label,
// preserving every other label already there (cmd/perfbench records
// its per-layer entries into the same file under "pr10").
func writeBench(path string, ran int, elapsed time.Duration, opt dse.Options) error {
	cph := 0.0
	if s := elapsed.Seconds(); s > 0 {
		cph = float64(ran) / s * 3600
	}
	all := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &all); err != nil {
			return fmt.Errorf("dicesweep: %s exists but is not a label map: %v", path, err)
		}
	}
	all["pr10-sweep"] = json.RawMessage(fmt.Sprintf(
		`{"cells": %d, "seconds": %.3f, "cells_per_hour": %.1f, "workers": %d, "daemons": %d}`,
		ran, elapsed.Seconds(), cph, opt.Workers, len(opt.Daemons)))
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Stable key order and indentation for reviewable diffs.
	var buf []byte
	buf = append(buf, '{', '\n')
	for i, k := range keys {
		pretty, err := json.MarshalIndent(all[k], "  ", "  ")
		if err != nil {
			return err
		}
		kb, _ := json.Marshal(k)
		buf = append(buf, ' ', ' ')
		buf = append(buf, kb...)
		buf = append(buf, ':', ' ')
		buf = append(buf, pretty...)
		if i < len(keys)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, '}', '\n')
	return os.WriteFile(path, buf, 0o644)
}
