// Command dicebenchd is the long-running experiment daemon: the batch
// evaluation of dicebench promoted to a service. It accepts experiment
// jobs over an HTTP/JSON API, runs them through a bounded queue with
// explicit backpressure, journals every job's lifecycle to a crash-safe
// append-only file, and — because simulations are pure functions of
// their configuration — re-runs interrupted jobs after a restart with
// byte-identical results.
//
// Usage:
//
//	dicebenchd                                  # listen on 127.0.0.1:8377
//	dicebenchd -addr :9000 -queue-cap 128
//	dicebenchd -journal /var/lib/dice/jobs.journal -job-workers 2
//	dicebenchd -deadline 10m -drain 30s
//
// API (see DESIGN.md §13):
//
//	POST   /jobs        {"experiments":["fig10"],"refs":60000}  → 202 {id,...}
//	GET    /jobs        all job statuses
//	GET    /jobs/{id}   one status; "output" holds the report text when done
//	DELETE /jobs/{id}   cancel
//	GET    /healthz     self-stats (queue depth, jobs active/failed, allocs)
//	GET    /readyz      200 while admitting, 503 once draining
//
// When the queue is full, POST /jobs answers 429 with a Retry-After
// header — clients (internal/serve/client) back off and retry. SIGINT
// or SIGTERM stops admission, drains in-flight jobs for -drain, then
// exits; jobs still queued (or cut off by the drain bound) stay in the
// journal and re-run on the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dice/internal/serve"
	"dice/internal/sigctx"
)

// cliFlags holds every dicebenchd flag; registerFlags is the one
// place they are declared, shared by main and the flag-docs pin test.
type cliFlags struct {
	addr          *string
	journal       *string
	journalLinger *time.Duration
	journalBatch  *int
	queueCap      *int
	jobWorkers    *int
	refs          *int
	deadline      *time.Duration
	drain         *time.Duration
	retain        *int
	quiet         *bool
}

// registerFlags declares the dicebenchd flags on fs.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		addr:          fs.String("addr", "127.0.0.1:8377", "listen address (host:0 picks an ephemeral port)"),
		journal:       fs.String("journal", "dicebenchd.journal", "crash-safe job journal path ('' disables persistence)"),
		journalLinger: fs.Duration("journal-linger", 0, "journal group-commit linger: how long the committer waits for batch-mates (0 = commit immediately; batching still occurs behind in-flight syncs)"),
		journalBatch:  fs.Int("journal-batch-bytes", 1<<20, "journal group-commit batch bound in bytes"),
		queueCap:      fs.Int("queue-cap", 64, "queued-job bound; submissions beyond it get 429 + Retry-After"),
		jobWorkers:    fs.Int("job-workers", 1, "jobs run concurrently (each job fans out its own simulations)"),
		refs:          fs.Int("refs", 60_000, "default measured references per core for specs that omit refs"),
		deadline:      fs.Duration("deadline", 0, "default per-job deadline for specs that omit one (0 = none)"),
		drain:         fs.Duration("drain", 30*time.Second, "graceful-shutdown bound: how long to let in-flight jobs finish"),
		retain:        fs.Int("retain-outputs", 256, "terminal jobs whose output bytes stay in memory (older ones remain in the journal)"),
		quiet:         fs.Bool("q", false, "suppress per-job log lines"),
	}
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run owns the daemon lifecycle so every exit path flows through one
// return (and main maps it to the exit code).
func run(o *cliFlags) error {
	if *o.queueCap <= 0 {
		return fmt.Errorf("-queue-cap must be positive, got %d", *o.queueCap)
	}
	if *o.jobWorkers <= 0 {
		return fmt.Errorf("-job-workers must be positive, got %d", *o.jobWorkers)
	}
	if *o.refs <= 0 {
		return fmt.Errorf("-refs must be positive, got %d", *o.refs)
	}
	if *o.journalLinger < 0 {
		return fmt.Errorf("-journal-linger must be non-negative, got %v", *o.journalLinger)
	}
	if *o.journalBatch <= 0 {
		return fmt.Errorf("-journal-batch-bytes must be positive, got %d", *o.journalBatch)
	}
	drain, quiet := *o.drain, *o.quiet
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Printf(format+"\n", args...)
		}
	}

	d, replay, err := serve.New(serve.Config{
		JournalPath:       *o.journal,
		JournalLinger:     *o.journalLinger,
		JournalBatchBytes: *o.journalBatch,
		QueueCap:          *o.queueCap,
		JobWorkers:        *o.jobWorkers,
		DefaultRefs:       *o.refs,
		DefaultDeadline:   *o.deadline,
		RetainOutputs:     *o.retain,
		Logf:              logf,
	})
	if err != nil {
		return err
	}
	if replay != nil && len(replay.Jobs) > 0 {
		rerun := 0
		for _, rj := range replay.Jobs {
			if rj.Unfinished() {
				rerun++
			}
		}
		fmt.Printf("dicebenchd: journal replayed %d jobs (%d re-enqueued)\n", len(replay.Jobs), rerun)
	}

	bound, err := d.Start(*o.addr)
	if err != nil {
		return err
	}
	// The smoke harness (and humans) scrape this line for the bound
	// port when -addr ends in :0.
	fmt.Printf("dicebenchd: listening on %s\n", bound)

	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()
	<-ctx.Done()
	fmt.Printf("dicebenchd: shutdown signal received, draining for up to %v\n", drain)

	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := d.Shutdown(dctx); err != nil {
		return fmt.Errorf("dicebenchd: %w", err)
	}
	fmt.Println("dicebenchd: clean shutdown")
	return nil
}
