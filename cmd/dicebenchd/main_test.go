package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dice/internal/serve"
	"dice/internal/serve/client"
)

// Subprocess smoke tests: build the real binary once, then drive it
// over HTTP and signals the way an operator (or CI's daemon-smoke
// job) would — including the SIGKILL crash that no in-process test
// can stage.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func daemonBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dicebenchd-bin")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dicebenchd")
		out, err := exec.Command("go", "build", "-o", binPath, "dice/cmd/dicebenchd").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// daemonProc is one running daemon subprocess plus its scraped address.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
	done chan error // resolves with cmd.Wait
	out  *strings.Builder
	mu   *sync.Mutex
}

// startDaemon launches the binary on an ephemeral port and scrapes
// the "listening on" line for the bound address.
func startDaemon(t *testing.T, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(daemonBinary(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, done: make(chan error, 1), out: &strings.Builder{}, mu: &sync.Mutex{}}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			if a, ok := strings.CutPrefix(line, "dicebenchd: listening on "); ok {
				select {
				case addrCh <- strings.TrimSpace(a):
				default:
				}
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	go func() { p.done <- cmd.Wait() }()

	select {
	case p.addr = <-addrCh:
	case err := <-p.done:
		t.Fatalf("daemon exited before listening: %v\n%s", err, p.output())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never printed its address\n%s", p.output())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}

func (p *daemonProc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// waitExit waits for the process to exit within the bound and returns
// its wait error (nil = exit 0).
func (p *daemonProc) waitExit(t *testing.T, bound time.Duration) error {
	t.Helper()
	select {
	case err := <-p.done:
		return err
	case <-time.After(bound):
		p.cmd.Process.Kill()
		t.Fatalf("daemon did not exit within %v\n%s", bound, p.output())
		return nil
	}
}

func (p *daemonProc) client(seed int64) *client.Client {
	return client.New("http://"+p.addr, seed)
}

var smokeSpec = serve.JobSpec{Experiments: []string{"metrics-demo"}, Refs: 400, Scale: 12}

// The operator path end to end: start, submit over HTTP, poll to
// done, check /healthz, SIGTERM → clean exit 0 within the drain
// bound; then restart on the same journal and read the finished job
// back (replayed, same bytes).
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	want, err := serve.RunSpec(context.Background(), smokeSpec, 0)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "smoke.journal")
	p := startDaemon(t, "-journal", journal, "-q")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := p.client(1)

	st, err := c.Submit(ctx, smokeSpec)
	if err != nil {
		t.Fatalf("submit: %v\n%s", err, p.output())
	}
	st, err = c.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.Output != want {
		t.Fatalf("job finished %s; output matches reference: %v", st.State, st.Output == want)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Stats.Done != 1 || h.Self.Goroutines <= 0 {
		t.Fatalf("healthz = %+v", h)
	}

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.waitExit(t, 45*time.Second); err != nil {
		t.Fatalf("SIGTERM exit: %v\n%s", err, p.output())
	}
	if out := p.output(); !strings.Contains(out, "clean shutdown") {
		t.Fatalf("no clean-shutdown line:\n%s", out)
	}

	// Restart on the same journal: the finished job must replay with
	// its output intact, not re-run.
	p2 := startDaemon(t, "-journal", journal, "-q")
	st2, err := p2.client(2).Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Replayed || st2.State != serve.StateDone || st2.Output != want {
		t.Fatalf("replayed status: replayed=%v state=%s output-match=%v",
			st2.Replayed, st2.State, st2.Output == want)
	}
	if out := p2.output(); !strings.Contains(out, "journal replayed 1 jobs (0 re-enqueued)") {
		t.Fatalf("replay summary missing:\n%s", out)
	}
	p2.cmd.Process.Signal(syscall.SIGTERM)
	p2.waitExit(t, 45*time.Second)
}

// The crash bar from the issue: SIGKILL the daemon mid-job, restart
// it on the same journal, and the interrupted job re-runs to bytes
// identical to a run that was never interrupted.
func TestDaemonSIGKILLRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	// A heavier spec so SIGKILL reliably lands while it is running.
	spec := serve.JobSpec{Experiments: []string{"metrics-demo"}, Refs: 150_000, Scale: 12}
	want, err := serve.RunSpec(context.Background(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "crash.journal")
	p := startDaemon(t, "-journal", journal, "-q")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := p.client(3)

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the daemon journals the start (state running), then
	// kill it without ceremony.
	deadline := time.Now().Add(time.Minute)
	for {
		got, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == serve.StateRunning {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("job finished (%s) before SIGKILL could land; raise its refs", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-p.done // SIGKILL: no clean shutdown, journal has submit+start only

	p2 := startDaemon(t, "-journal", journal, "-q")
	if out := p2.output(); !strings.Contains(out, "journal replayed 1 jobs (1 re-enqueued)") {
		t.Fatalf("interrupted job not re-enqueued:\n%s", out)
	}
	st2, err := p2.client(4).Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != serve.StateDone {
		t.Fatalf("re-run finished %s (%s)", st2.State, st2.Error)
	}
	if !st2.Replayed {
		t.Fatal("re-run not marked replayed")
	}
	if st2.Output != want {
		t.Fatalf("re-run diverged from uninterrupted reference (%d vs %d bytes)", len(st2.Output), len(want))
	}
	p2.cmd.Process.Signal(syscall.SIGTERM)
	if err := p2.waitExit(t, 45*time.Second); err != nil {
		t.Fatalf("SIGTERM exit after replay: %v\n%s", err, p2.output())
	}
}

// Flag validation fails fast with exit 1, before binding or journal
// creation.
func TestDaemonRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	cmd := exec.Command(daemonBinary(t), "-queue-cap", "0")
	out, err := cmd.CombinedOutput()
	if err == nil {
		cmd.Process.Kill()
		t.Fatalf("daemon accepted -queue-cap 0:\n%s", out)
	}
	if !strings.Contains(string(out), "queue-cap") {
		t.Fatalf("unhelpful error: %s", out)
	}
}
